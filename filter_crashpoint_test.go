package cachekv

// Extends the filter-soundness suite (filter_soundness_test.go) across the
// crash dimension: TestFilterRebuildAfterCrash there exercises one scripted
// crash; here the fault-injection harness crashes the engine at a table of
// points through a 200-op workload — including torn-write schedules — and
// after each recovery the durability oracle's probe set must flow through
// the REBUILT memory-component filters. A filter rebuilt from a stale or
// truncated view would either lose keys (oracle violation) or answer no
// probes at all (probe counter stays zero).

import (
	"testing"

	"cachekv/internal/faultinject"
	"cachekv/internal/hw/cache"
)

func TestFilterRebuildAcrossCrashPoints(t *testing.T) {
	spec, ok := faultinject.FindEngine("cachekv")
	if !ok {
		t.Fatal("cachekv engine spec missing")
	}
	wl := faultinject.NewWorkload(9, 200)
	total, _, err := faultinject.CountEvents(spec, cache.EADR, wl)
	if err != nil {
		t.Fatal(err)
	}

	points := []struct {
		name    string
		crashAt int64
	}{
		{"first-event", 1},
		{"quarter", total / 4},
		{"midpoint", total / 2},
		{"three-quarters", 3 * total / 4},
		{"last-event", total},
	}
	faults := []faultinject.Fault{faultinject.FaultNone, faultinject.FaultTorn}
	for _, p := range points {
		for _, fault := range faults {
			t.Run(p.name+"/"+fault.String(), func(t *testing.T) {
				r := faultinject.RunSchedule(spec, cache.EADR, wl, p.crashAt, fault)
				if err := r.Err(); err != nil {
					t.Fatal(err)
				}
				if !r.Frozen {
					t.Fatalf("crash point %d not reached (workload generated %d events)", p.crashAt, r.Events)
				}
				// The oracle probed every key in the universe through the
				// recovered engine; those reads must have consulted the
				// rebuilt filters.
				if r.FilterProbes == 0 {
					t.Fatal("recovered engine answered the oracle without consulting its rebuilt filters")
				}
				// With ~48 live keys and a universe that includes never-
				// written ghost keys, a sound rebuilt filter must short-
				// circuit at least some probes negatively.
				if r.FilterNegatives == 0 {
					t.Fatalf("rebuilt filters produced no negative verdicts across %d probes", r.FilterProbes)
				}
			})
		}
	}
}
