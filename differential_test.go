package cachekv

// Differential tests: every engine is a key-value store, so an identical
// operation sequence must produce identical visible state on all nine of
// them — and on a plain Go map. Divergence pinpoints correctness bugs that
// single-engine tests miss.

import (
	"fmt"
	"testing"

	"cachekv/internal/hw/sim"
)

var allEngines = []Engine{
	EngineCacheKV, EnginePCSM, EnginePCSMLIU,
	EngineNoveLSM, EngineNoveLSMNoFlush, EngineNoveLSMCache,
	EngineSLMDB, EngineSLMDBNoFlush, EngineSLMDBCache,
}

// opSeq generates a deterministic mixed op sequence over a small key space
// so overwrites and deletes are frequent.
type op struct {
	kind  int // 0 put, 1 delete
	key   string
	value string
}

func genOps(n int, seed uint64) []op {
	rng := sim.NewRNG(seed)
	ops := make([]op, n)
	for i := range ops {
		k := fmt.Sprintf("key%04d", rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			ops[i] = op{kind: 1, key: k}
		default:
			ops[i] = op{kind: 0, key: k, value: fmt.Sprintf("v%d-%s", i, k)}
		}
	}
	return ops
}

func applyToModel(model map[string]string, ops []op) {
	for _, o := range ops {
		if o.kind == 1 {
			delete(model, o.key)
		} else {
			model[o.key] = o.value
		}
	}
}

func applyToEngine(t *testing.T, db *DB, ops []op) {
	t.Helper()
	s := db.Session(0)
	for _, o := range ops {
		var err error
		if o.kind == 1 {
			err = s.Delete([]byte(o.key))
		} else {
			err = s.Put([]byte(o.key), []byte(o.value))
		}
		if err != nil {
			t.Fatalf("%s: %v", db.EngineName(), err)
		}
	}
}

func checkAgainstModel(t *testing.T, db *DB, model map[string]string) {
	t.Helper()
	s := db.Session(1)
	for k, want := range model {
		got, err := s.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: Get(%s): %v (want %q)", db.EngineName(), k, err, want)
		}
		if string(got) != want {
			t.Fatalf("%s: Get(%s) = %q, want %q", db.EngineName(), k, got, want)
		}
	}
	// Deleted/absent keys must be absent.
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%04d", i)
		if _, inModel := model[k]; !inModel {
			if _, err := s.Get([]byte(k)); err != ErrNotFound {
				t.Fatalf("%s: Get(%s) should be not-found, got %v", db.EngineName(), k, err)
			}
		}
	}
	// Scan must enumerate exactly the model's keys, in order.
	seen := map[string]string{}
	var prev string
	s.Scan(nil, 0, func(k, v []byte) bool {
		if prev != "" && string(k) <= prev {
			t.Fatalf("%s: scan order violation: %q after %q", db.EngineName(), k, prev)
		}
		prev = string(k)
		seen[string(k)] = string(v)
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("%s: scan saw %d keys, model has %d", db.EngineName(), len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("%s: scan %s = %q, want %q", db.EngineName(), k, seen[k], v)
		}
	}
}

func TestDifferentialAllEngines(t *testing.T) {
	ops := genOps(8000, 42)
	model := map[string]string{}
	applyToModel(model, ops)
	for _, eng := range allEngines {
		t.Run(string(eng), func(t *testing.T) {
			db, err := Open(Options{Engine: eng, PMemMB: 1024})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			applyToEngine(t, db, ops)
			checkAgainstModel(t, db, model)
			// The same state must hold after forcing everything to storage.
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			checkAgainstModel(t, db, model)
		})
	}
}

func TestDifferentialAcrossCrash(t *testing.T) {
	// The eADR engines must preserve the full model across a power failure.
	ops := genOps(6000, 99)
	model := map[string]string{}
	applyToModel(model, ops)
	for _, eng := range []Engine{EngineCacheKV, EngineNoveLSM, EngineSLMDB} {
		t.Run(string(eng), func(t *testing.T) {
			db, err := Open(Options{Engine: eng, PMemMB: 1024})
			if err != nil {
				t.Fatal(err)
			}
			applyToEngine(t, db, ops)
			db2, err := db.SimulateCrash()
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			checkAgainstModel(t, db2, model)
		})
	}
}

func TestDifferentialInterleavedFlushes(t *testing.T) {
	// Flush points must not change visible state; interleave them randomly.
	ops := genOps(5000, 7)
	model := map[string]string{}
	applyToModel(model, ops)
	for _, eng := range []Engine{EngineCacheKV, EngineNoveLSM, EngineSLMDB} {
		t.Run(string(eng), func(t *testing.T) {
			db, err := Open(Options{Engine: eng, PMemMB: 1024})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			s := db.Session(0)
			rng := sim.NewRNG(5)
			for _, o := range ops {
				if o.kind == 1 {
					s.Delete([]byte(o.key))
				} else {
					s.Put([]byte(o.key), []byte(o.value))
				}
				if rng.Intn(500) == 0 {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkAgainstModel(t, db, model)
		})
	}
}
