// Quickstart: open a CacheKV store on the simulated eADR platform, write and
// read a few keys, scan a range, survive a simulated power failure, and
// print the hardware counters the paper's evaluation is built on.
package main

import (
	"fmt"
	"log"

	"cachekv"
)

func main() {
	db, err := cachekv.Open(cachekv.Options{PMemMB: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s on a simulated eADR platform\n", db.EngineName())

	s := db.Session(0)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("user:%05d", i)
		val := fmt.Sprintf(`{"id":%d,"score":%d}`, i, i*7%100)
		if err := s.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 10000 records in %.2f virtual ms\n",
		float64(s.VirtualNanos())/1e6)

	v, err := s.Get([]byte("user:04242"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:04242 -> %s\n", v)

	if err := s.Delete([]byte("user:04242")); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Get([]byte("user:04242")); err == cachekv.ErrNotFound {
		fmt.Println("user:04242 deleted")
	}

	fmt.Println("range scan from user:04240:")
	s.Scan([]byte("user:04240"), 4, func(k, v []byte) bool {
		fmt.Printf("  %s -> %s\n", k, v)
		return true
	})

	// Power failure: the persistent CPU caches (eADR) preserve every
	// committed write; recovery rebuilds the DRAM indexes from them.
	db2, err := db.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	v, err = s2.Get([]byte("user:09999"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery: user:09999 -> %s\n", v)

	m := db2.Metrics()
	fmt.Printf("XPBuffer write hit ratio: %.1f%%, write amplification: %.2fx\n",
		m.WriteHitRatio*100, m.WriteAmplification)
}
