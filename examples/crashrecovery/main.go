// Crashrecovery demonstrates the paper's central durability claim: on an
// eADR platform the persistent CPU caches make every committed sub-MemTable
// write crash-safe without a WAL, while the same store on an ADR platform
// (volatile caches) loses whatever was never flushed. The example runs both
// platforms through an identical write-then-power-failure sequence and
// reports what survived.
package main

import (
	"fmt"
	"log"

	"cachekv"
)

const records = 20000

func main() {
	fmt.Println("Writing", records, "records, then pulling the plug...")
	eadr := surviving(false)
	adr := surviving(true)
	fmt.Printf("eADR platform (persistent caches): %d/%d records survived\n", eadr, records)
	fmt.Printf("ADR  platform (volatile caches):   %d/%d records survived\n", adr, records)
	if eadr == records && adr < records {
		fmt.Println("-> the persistent cache IS the write-ahead log: CacheKV needs no WAL on eADR.")
	}
}

func surviving(volatileCaches bool) int {
	db, err := cachekv.Open(cachekv.Options{
		PMemMB:         1024,
		VolatileCaches: volatileCaches,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session(0)
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("order:%08d", i)
		val := fmt.Sprintf(`{"sku":"A-%d","qty":%d}`, i%997, i%9+1)
		if err := s.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	// No Flush, no graceful close: power failure right here.
	db2, err := db.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	alive := 0
	for i := 0; i < records; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("order:%08d", i))); err == nil {
			alive++
		}
	}
	return alive
}
