// Socialgraph drives CacheKV with the workload the paper's introduction
// motivates: a social-networking store with small values (Facebook's
// RocksDB values average 57-153 bytes), a zipfian-skewed read mix, and
// bursts of writes from many cores. It compares CacheKV against NoveLSM on
// identical simulated hardware and prints the virtual-time throughput of
// each phase.
package main

import (
	"fmt"
	"log"
	"sync"

	"cachekv"
)

const (
	users     = 50000
	followers = 100000
	timeline  = 150000
	writers   = 8
)

func main() {
	for _, engine := range []cachekv.Engine{cachekv.EngineCacheKV, cachekv.EngineNoveLSM} {
		run(engine)
	}
}

func run(engine cachekv.Engine) {
	db, err := cachekv.Open(cachekv.Options{Engine: engine, PMemMB: 2048})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("=== %s ===\n", db.EngineName())

	// Phase 1: bulk-load user profiles from concurrent ingest workers.
	var wg sync.WaitGroup
	var maxNs int64
	var mu sync.Mutex
	perWorker := users / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session(w)
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				key := fmt.Sprintf("profile:%08d", id)
				val := fmt.Sprintf(`{"name":"user%d","bio":"hello","joined":17000%02d}`, id, id%100)
				if err := s.Put([]byte(key), []byte(val)); err != nil {
					log.Fatal(err)
				}
			}
			mu.Lock()
			if s.VirtualNanos() > maxNs {
				maxNs = s.VirtualNanos()
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	fmt.Printf("profile load: %d records, %.0f Kops/s (virtual)\n",
		users, float64(users)/float64(maxNs)*1e6)

	// Phase 2: follower-edge writes (append-heavy, tiny values).
	s := db.Session(0)
	base := s.VirtualNanos()
	for i := 0; i < followers; i++ {
		key := fmt.Sprintf("follows:%07d:%07d", i%users, (i*31)%users)
		if err := s.Put([]byte(key), []byte{1}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("edge writes:  %d edges,   %.0f Kops/s (virtual)\n",
		followers, float64(followers)/float64(s.VirtualNanos()-base)*1e6)

	// Phase 3: timeline reads, zipfian-skewed toward hot profiles.
	base = s.VirtualNanos()
	hits := 0
	for i := 0; i < timeline; i++ {
		// A cheap zipf-ish skew: quadratic bias toward low ids.
		r := (i*i*2654435761 + i) % (users * users)
		id := r % users * r % users % users
		if _, err := s.Get([]byte(fmt.Sprintf("profile:%08d", id))); err == nil {
			hits++
		}
	}
	fmt.Printf("timeline reads: %d gets, %.0f Kops/s (virtual), %.1f%% hit\n",
		timeline, float64(timeline)/float64(s.VirtualNanos()-base)*1e6,
		float64(hits)/float64(timeline)*100)

	m := db.Metrics()
	fmt.Printf("hw: write-hit %.1f%%, amplification %.2fx, media written %d MB\n\n",
		m.WriteHitRatio*100, m.WriteAmplification, m.MediaWriteBytes>>20)
}
