// Sensorlog exercises the sequential-ingest path: a time-series of sensor
// readings appended in key order (the fillseq shape of the paper's Figure
// 10(a)), followed by time-range scans. Sequential small writes are exactly
// the traffic the Optane XPBuffer combines best, so the example also prints
// the write hit ratio the ingest achieved.
package main

import (
	"fmt"
	"log"

	"cachekv"
)

const (
	sensors  = 40
	readings = 5000 // per sensor
)

func main() {
	db, err := cachekv.Open(cachekv.Options{PMemMB: 1024, SubMemTableKB: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s := db.Session(0)
	// Ingest: interleaved sensors, monotonically increasing timestamps.
	total := 0
	for t := 0; t < readings; t++ {
		for sen := 0; sen < sensors; sen++ {
			key := fmt.Sprintf("ts/%06d/s%02d", t, sen)
			val := fmt.Sprintf("%d.%02d", 20+(t+sen)%15, (t*sen)%100)
			if err := s.Put([]byte(key), []byte(val)); err != nil {
				log.Fatal(err)
			}
			total++
		}
	}
	fmt.Printf("ingested %d readings at %.0f Kops/s (virtual)\n",
		total, float64(total)/float64(s.VirtualNanos())*1e6)

	// Time-range query: all sensors for timestamps 2500-2502.
	fmt.Println("readings for t in [2500, 2503):")
	count := 0
	s.Scan([]byte("ts/002500/"), 3*sensors, func(k, v []byte) bool {
		if count < 5 {
			fmt.Printf("  %s = %s\n", k, v)
		}
		count++
		return true
	})
	fmt.Printf("  ... %d rows total\n", count)

	// Latest-value query per sensor (the last timestamp written).
	last := fmt.Sprintf("ts/%06d/s%02d", readings-1, 7)
	v, err := s.Get([]byte(last))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest reading of sensor 7: %s\n", v)

	m := db.Metrics()
	fmt.Printf("sequential ingest write-hit ratio: %.1f%% (combining in the XPBuffer)\n",
		m.WriteHitRatio*100)
}
