package cachekv

// Race stress: one session per simulated core running a mixed workload
// concurrently against the shared block cache and the slot filters, with a
// simulated power failure between rounds. Run with -race; the assertions are
// deliberately weak (no lost updates for thread-owned keys) because the value
// of the test is the detector coverage over the lock-free filter paths, the
// sharded cache, and recovery.

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/hw/sim"
)

func TestStressConcurrentSessions(t *testing.T) {
	const cores = 4
	const rounds = 3
	const opsPerCore = 1500

	db, err := Open(Options{Engine: EngineCacheKV, PMemMB: 1024, Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for core := 0; core < cores; core++ {
			wg.Add(1)
			go func(core int) {
				defer wg.Done()
				s := db.Session(core)
				rng := sim.NewRNG(uint64(round*100 + core))
				for i := 0; i < opsPerCore; i++ {
					// Thread-owned keys avoid cross-thread ordering assertions;
					// shared keys still collide through the filters and cache.
					own := fmt.Sprintf("c%d-k%04d", core, rng.Intn(400))
					shared := fmt.Sprintf("shared-k%04d", rng.Intn(200))
					switch rng.Intn(10) {
					case 0, 1, 2:
						if err := s.Put([]byte(own), []byte(fmt.Sprintf("r%d-i%d", round, i))); err != nil {
							t.Errorf("core %d Put: %v", core, err)
							return
						}
					case 3:
						if err := s.Put([]byte(shared), []byte("sv")); err != nil {
							t.Errorf("core %d Put shared: %v", core, err)
							return
						}
					case 4, 5, 6:
						if _, err := s.Get([]byte(own)); err != nil && err != ErrNotFound {
							t.Errorf("core %d Get: %v", core, err)
							return
						}
					case 7:
						if _, err := s.Get([]byte(fmt.Sprintf("absent-%d", rng.Intn(1<<20)))); err != ErrNotFound {
							t.Errorf("core %d Get absent: %v", core, err)
							return
						}
					case 8:
						if _, err := s.Scan([]byte(fmt.Sprintf("c%d-", core)), 20, func(k, v []byte) bool { return true }); err != nil {
							t.Errorf("core %d Scan: %v", core, err)
							return
						}
					case 9:
						if err := s.Delete([]byte(own)); err != nil {
							t.Errorf("core %d Delete: %v", core, err)
							return
						}
					}
				}
			}(core)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Crash between rounds: all sessions quiesced, recover, keep going on
		// the recovered store.
		db, err = db.SimulateCrash()
		if err != nil {
			t.Fatalf("round %d crash/recover: %v", round, err)
		}
	}
	// Post-stress sanity: the store still serves a coherent view.
	s := db.Session(0)
	if err := s.Put([]byte("final"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("final")); err != nil || string(v) != "ok" {
		t.Fatalf("final Get = %q, %v", v, err)
	}
	if m := db.Metrics(); m.FilterProbes == 0 {
		t.Fatal("stress run never probed a filter")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
