package core

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
)

func testMachine() *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 1 << 30
	return hw.NewMachine(cfg)
}

// smallOpts shrinks everything so tests exercise seal/flush/spill quickly.
func smallOpts() Options {
	o := DefaultOptions()
	o.PoolBytes = 1 << 20
	o.SubMemTableBytes = 128 << 10
	o.ImmZoneBytes = 1 << 20
	o.FSBytes = 64 << 20
	return o
}

func openEngine(t *testing.T, m *hw.Machine, opts Options) (*Engine, *hw.Thread) {
	t.Helper()
	th := m.NewThread(0)
	e, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	return e, th
}

func TestPackedHeaderRoundTrip(t *testing.T) {
	cases := []struct{ count, state, tail uint64 }{
		{0, stateFree, 0},
		{1, stateAllocated, 64},
		{1<<38 - 1, stateImmutable, 1<<24 - 1},
		{12345, stateAllocated, 987654},
	}
	for _, c := range cases {
		count, state, tail := unpackHdr(packHdr(c.count, c.state, c.tail))
		if count != c.count || state != c.state || tail != c.tail {
			t.Fatalf("roundtrip %v -> %d/%d/%d", c, count, state, tail)
		}
	}
}

func TestPutGet(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v := []byte(fmt.Sprintf("value-%d", i))
		if err := e.Put(th, k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := e.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(%s) = %q", k, v)
		}
	}
	if _, err := e.Get(th, []byte("absent")); err != kvstore.ErrNotFound {
		t.Fatalf("absent key: %v", err)
	}
}

func TestOverwriteReturnsFreshest(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	k := []byte("hot")
	for i := 0; i < 100; i++ {
		if err := e.Put(th, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.Get(th, k)
	if err != nil || string(v) != "v99" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestDelete(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	e.Put(th, []byte("k"), []byte("v"))
	if err := e.Delete(th, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(th, []byte("k")); err != kvstore.ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	// Re-insert after delete.
	e.Put(th, []byte("k"), []byte("v2"))
	if v, err := e.Get(th, []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("reinsert: %q, %v", v, err)
	}
}

func TestSealFlushAndReadFromImmZone(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	// Write far more than one 128 KiB sub-MemTable holds so seals happen.
	n := 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := e.Put(th, k, []byte(fmt.Sprintf("val-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if e.stats.Flushes.Load() == 0 {
		t.Fatal("no copy-based flushes happened")
	}
	for i := 0; i < n; i += 71 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := e.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s) after flush: %v", k, err)
		}
		if string(v) != fmt.Sprintf("val-%06d", i) {
			t.Fatalf("Get(%s) = %q", k, v)
		}
	}
}

func TestSpillToL0(t *testing.T) {
	opts := smallOpts()
	opts.ImmZoneBytes = 512 << 10 // force early spills
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	n := 20000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i%8000)) // overwrites mixed in
		if err := e.Put(th, k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if e.stats.Spills.Load() == 0 {
		t.Fatal("no L0 spills")
	}
	if e.tree.NumFiles(0)+e.tree.NumFiles(1) == 0 {
		t.Fatal("nothing reached the LSM tree")
	}
	// Freshest version of every key visible: the last write of key k was at
	// op 16000+k (k < 4000) or 8000+k (k >= 4000).
	for i := 0; i < 8000; i += 113 {
		k := []byte(fmt.Sprintf("key%06d", i))
		last := 16000 + i
		if i >= 4000 {
			last = 8000 + i
		}
		want := fmt.Sprintf("v-%d", last)
		v, err := e.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
}

func TestScan(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	for i := 0; i < 3000; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	e.Delete(th, []byte("key000100"))
	// Scan across memtable + flushed data.
	var got []string
	n, err := e.Scan(th, []byte("key000095"), 10, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d", n)
	}
	want := []string{"key000095", "key000096", "key000097", "key000098", "key000099",
		"key000101", "key000102", "key000103", "key000104", "key000105"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	for i := 0; i < 100; i++ {
		e.Put(th, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	count := 0
	e.Scan(th, nil, 0, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestConcurrentWriters(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	defer e.Close(th)
	const (
		writers = 8
		perW    = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < perW; i++ {
				k := []byte(fmt.Sprintf("w%d-key%06d", w, i))
				if err := e.Put(wth, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i += 211 {
			k := []byte(fmt.Sprintf("w%d-key%06d", w, i))
			v, err := e.Get(th, k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			if string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("Get(%s) = %q", k, v)
			}
		}
	}
	if e.stats.Puts.Load() != writers*perW {
		t.Fatalf("puts = %d", e.stats.Puts.Load())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	defer e.Close(th)
	// Preload.
	for i := 0; i < 2000; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte("base"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < 2000; i++ {
				e.Put(wth, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("w%d", w)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rth := m.NewThread(8 + r)
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key%06d", i))
				if _, err := e.Get(rth, k); err != nil && err != kvstore.ErrNotFound {
					t.Errorf("Get(%s): %v", k, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestLazyIndexReadSync(t *testing.T) {
	opts := smallOpts()
	opts.SyncThreshold = 1 << 20 // never background-sync: reads must do it
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	for i := 0; i < 500; i++ {
		e.Put(th, []byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	if _, err := e.Get(th, []byte("k0250")); err != nil {
		t.Fatal(err)
	}
	if e.stats.ReadSyncs.Load() == 0 {
		t.Fatal("read did not trigger a lazy sync")
	}
}

func TestPCSMModeEagerIndex(t *testing.T) {
	opts := smallOpts()
	opts.LazyIndex = false
	opts.SkiplistCompaction = false
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	if e.Name() != "PCSM" {
		t.Fatalf("Name() = %s", e.Name())
	}
	for i := 0; i < 2000; i++ {
		e.Put(th, []byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 2000; i += 97 {
		v, err := e.Get(th, []byte(fmt.Sprintf("k%05d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("PCSM Get: %q, %v", v, err)
		}
	}
	if e.stats.ReadSyncs.Load() != 0 {
		t.Fatal("PCSM should never need read syncs")
	}
}

func TestNameVariants(t *testing.T) {
	opts := smallOpts()
	opts.LazyIndex = true
	opts.SkiplistCompaction = false
	e, th := openEngine(t, testMachine(), opts)
	if e.Name() != "PCSM+LIU" {
		t.Fatalf("Name() = %s", e.Name())
	}
	e.Close(th)
	e2, th2 := openEngine(t, testMachine(), smallOpts())
	if e2.Name() != "CacheKV" {
		t.Fatalf("Name() = %s", e2.Name())
	}
	e2.Close(th2)
}

func TestElasticitySplitsUnderPressure(t *testing.T) {
	opts := smallOpts()
	opts.PoolBytes = 512 << 10
	opts.SubMemTableBytes = 224 << 10 // two slots
	opts.MissThreshold = 2
	m := testMachine()
	e, th := openEngine(t, m, opts)
	defer e.Close(th)
	before := e.PoolSlots()
	// Hammer writes from many cores so slots run out and misses accumulate.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < 4000; i++ {
				e.Put(wth, []byte(fmt.Sprintf("w%d-%06d", w, i)), make([]byte, 100))
			}
		}(w)
	}
	wg.Wait()
	if e.PoolSlots() <= before {
		t.Fatalf("elasticity never split: %d -> %d slots", before, e.PoolSlots())
	}
}

func TestCloseIdempotent(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	if err := e.Close(th); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(th); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(th, []byte("k"), []byte("v")); err == nil {
		t.Fatal("Put after Close should fail")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	before := th.Clock.Now()
	for i := 0; i < 100; i++ {
		e.Put(th, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if th.Clock.Now() <= before {
		t.Fatal("writes charged no virtual time")
	}
	perOp := (th.Clock.Now() - before) / 100
	if perOp < 50 || perOp > 100000 {
		t.Fatalf("implausible per-op virtual cost: %d ns", perOp)
	}
}

func TestWriteHitRatioHighForCacheKV(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	defer e.Close(th)
	before := m.PMem.Snapshot()
	for i := 0; i < 20000; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%08d", i)), make([]byte, 64))
	}
	e.FlushAll(th)
	var fth = m.NewThread(0)
	m.PMem.Flush(fth.Clock)
	delta := m.PMem.Snapshot().Sub(before)
	// Copy-based flush should keep the XPBuffer combining nearly perfectly.
	if hr := delta.WriteHitRatio(); hr < 0.70 {
		t.Fatalf("CacheKV write hit ratio = %.3f, want >= 0.70", hr)
	}
	if wa := delta.WriteAmplification(); wa > 1.6 {
		t.Fatalf("CacheKV write amplification = %.3f", wa)
	}
}

func TestPoolPinnedLinesSurviveOtherTraffic(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	defer e.Close(th)
	e.Put(th, []byte("pinned-key"), []byte("pinned-val"))
	// Blast unrelated traffic through the default partition.
	scratch := m.Alloc("scratch", 64<<20, 0)
	for i := uint64(0); i < 1<<16; i++ {
		m.Cache.Write(th.Clock, scratch.Addr+i*64, []byte{1}, cache.DefaultPartition)
	}
	if v, err := e.Get(th, []byte("pinned-key")); err != nil || string(v) != "pinned-val" {
		t.Fatalf("pinned data lost: %q, %v", v, err)
	}
}

func TestElasticityMergesWhenQuiet(t *testing.T) {
	// Merge elasticity serves the over-provisioned case: a pool fragmented
	// into many small sub-MemTables but written by a single calm core. Every
	// seal/free happens with zero allocation misses, so free buddies should
	// coalesce back into larger tables, cutting background flush overhead.
	opts := smallOpts()
	opts.PoolBytes = 1 << 20
	opts.SubMemTableBytes = 64 << 10 // 15 small slots from the start
	opts.FSBytes = 256 << 20         // several calm rounds' compaction churn
	m := testMachine()
	e, th := openEngine(t, m, opts)
	defer e.Close(th)
	before := e.PoolSlots()
	if before < 10 {
		t.Fatalf("expected a fragmented pool, got %d slots", before)
	}
	// Whether a given quiet stretch is long enough depends on real flush
	// scheduling; write calm rounds until coalescing shows (bounded).
	merged := false
	for round := 0; round < 5 && !merged; round++ {
		for i := 0; i < 120000; i++ {
			k := fmt.Sprintf("calm%d-%08d", round, i)
			if err := e.Put(th, []byte(k), make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.FlushAll(th); err != nil {
			t.Fatal(err)
		}
		merged = e.PoolSlots() < before
	}
	if !merged {
		t.Fatalf("quiet periods never merged slots: still %d", e.PoolSlots())
	}
	// Data stays intact through the geometry changes.
	for i := 0; i < 120000; i += 7919 {
		if _, err := e.Get(th, []byte(fmt.Sprintf("calm0-%08d", i))); err != nil {
			t.Fatalf("lost calm0-%08d: %v", i, err)
		}
	}
}
