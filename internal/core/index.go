package core

import (
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/memfilter"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// Sub-skiplist node values are the 8-byte offset of the entry inside the
// owning table's data region; the entry bytes themselves stay in the cache
// (active slots) or the ImmZone (flushed tables). Keeping only offsets in
// DRAM is what saves the cache footprint (Section III-B).

// syncSlot brings a slot's sub-skiplist up to date with its sub-MemTable by
// replaying the data region from listTail to the current tail pointer — the
// paper's synchronization procedure, comparing list counter and table
// counter. Costs are charged to th (a reader performing trigger-1 sync pays
// for it; the background index thread pays on its own clock otherwise).
// Returns the number of entries applied.
func (e *Engine) syncSlot(th *hw.Thread, s *slot) int {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	// The header must be read under the same syncMu section as the list
	// state: a header loaded before the lock can belong to a previous
	// incarnation of the slot (sealed, flushed, freed, and re-acquired while
	// this thread was descheduled). Replaying a stale count/tail against the
	// new incarnation would index leftover bytes of the old table past the
	// new commit point — entries the writer then overwrites, leaving the
	// sub-skiplist pointing one key at another key's bytes — and the inflated
	// listCount would make the final pre-flush sync stop early, dropping the
	// table's tail entries from the index.
	count, _, tail := unpackHdr(s.hdr.Load())
	if s.list == nil || s.listCount >= count {
		return 0
	}
	applied := 0
	for s.listCount < count && s.listTail < tail {
		off := s.listTail
		// Read the entry header to size the fetch.
		var hdr [8]byte
		e.m.Cache.Read(th.Clock, s.dataAddr()+off, hdr[:], e.poolPart)
		blen := uint64(util.Fixed32(hdr[:]))
		if blen == 0 || off+8+blen > tail {
			break // torn tail; the committed counter should prevent this
		}
		buf := make([]byte, 8+blen)
		e.m.Cache.Read(th.Clock, s.dataAddr()+off, buf, e.poolPart)
		ik, _, n, err := kvstore.DecodeEntry(buf)
		if err != nil {
			break
		}
		val := util.PutFixed64(nil, off)
		// Bulk sequential index building keeps the skiplist's upper levels
		// hot in the private caches: cheaper per hop than a cold lookup.
		s.list.Insert(ik, val, func(visits int) {
			th.Clock.Advance(int64(visits) * (e.m.Costs.DRAMAccess + e.m.Costs.SkiplistVisit) / 16)
		})
		s.listTail += uint64(n)
		s.listTail = (s.listTail + 7) &^ 7
		s.listCount++
		applied++
	}
	return applied
}

// needsSync reports whether the slot's sub-skiplist lags its table counter.
func needsSync(s *slot) bool {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	count, _, _ := unpackHdr(s.hdr.Load())
	return s.list != nil && s.listCount < count
}

// fetchEntry reads and decodes the entry stored at off within a data region
// of limit bytes starting at base, reading through the cache under partition
// part. The bounds check runs before the length header is trusted: a scan or
// get racing a flush may hold a sub-skiplist whose table bytes were recycled,
// and the torn header must not drive an unbounded read (the CRC inside
// DecodeEntry then rejects any in-bounds torn payload, so a stale entry is
// skipped, never fabricated).
func (e *Engine) fetchEntry(th *hw.Thread, base, off, limit uint64, part cache.PartitionID) (util.InternalKey, []byte, bool) {
	if off >= limit || limit-off < 8 {
		return nil, nil, false
	}
	var hdr [8]byte
	e.m.Cache.Read(th.Clock, base+off, hdr[:], part)
	blen := uint64(util.Fixed32(hdr[:]))
	if blen == 0 || blen > limit-off-8 {
		return nil, nil, false
	}
	buf := make([]byte, 8+blen)
	e.m.Cache.Read(th.Clock, base+off, buf, part)
	ik, val, _, err := kvstore.DecodeEntry(buf)
	if err != nil {
		return nil, nil, false
	}
	return ik, val, true
}

// searchList looks ukey up (at or below seq) in one sub-skiplist, resolving
// the stored offset against base. Node visits are charged at DRAM latency —
// the point of keeping sub-skiplists in DRAM.
func (e *Engine) searchList(th *hw.Thread, list *skiplist.List, base, limit uint64, part cache.PartitionID, ukey []byte, seq uint64) (value []byte, foundSeq uint64, kind util.ValueKind, ok bool) {
	if list == nil {
		return nil, 0, 0, false
	}
	target := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	it := list.NewIterator()
	it.Seek(target, func(visits int) {
		th.Clock.Advance(int64(visits) * (e.m.Costs.DRAMAccess + e.m.Costs.SkiplistVisit) / 8)
	})
	if !it.Valid() {
		return nil, 0, 0, false
	}
	found := util.InternalKey(it.Key())
	if string(found.UserKey()) != string(ukey) {
		return nil, 0, 0, false
	}
	off := util.Fixed64(it.Value())
	ik, val, okFetch := e.fetchEntry(th, base, off, limit, part)
	// The fetched entry must carry the exact internal key the index node
	// promised: a table recycled under a stale list reference can hold a
	// boundary-aligned foreign entry at this offset whose CRC is perfectly
	// valid, and returning its value would serve another key's bytes.
	if !okFetch || string(ik) != string(found) {
		return nil, 0, 0, false
	}
	return val, found.Seq(), found.Kind(), true
}

// tableIter adapts (sub-skiplist, data base address) to lsm.Iterator,
// decoding entry bytes lazily. It serves scans over active slots and imm
// tables, and feeds the L0 spill.
type tableIter struct {
	e     *Engine
	th    *hw.Thread
	it    *skiplist.Iterator
	base  uint64
	limit uint64 // data-region bytes at base; fetches past it are stale
	part  cache.PartitionID
	val   []byte
	ok    bool
}

func (e *Engine) newTableIter(th *hw.Thread, list *skiplist.List, base, limit uint64, part cache.PartitionID) *tableIter {
	return &tableIter{e: e, th: th, it: list.NewIterator(), base: base, limit: limit, part: part}
}

func (t *tableIter) load() {
	t.ok = false
	if !t.it.Valid() {
		return
	}
	off := util.Fixed64(t.it.Value())
	ik, val, ok := t.e.fetchEntry(t.th, t.base, off, t.limit, t.part)
	// Same stale-table defence as searchList: only a fetch that returns the
	// indexed internal key verbatim is trusted.
	if !ok || string(ik) != string(t.it.Key()) {
		return
	}
	t.val = val
	t.ok = true
}

// Valid reports whether the iterator is on an entry.
func (t *tableIter) Valid() bool { return t.ok }

// SeekToFirst positions at the table's smallest internal key.
func (t *tableIter) SeekToFirst() { t.it.SeekToFirst(); t.load() }

// Seek positions at the first entry >= ik.
func (t *tableIter) Seek(ik util.InternalKey) { t.it.Seek(ik, nil); t.load() }

// Next advances the iterator.
func (t *tableIter) Next() { t.it.Next(); t.load() }

// Key returns the current internal key.
func (t *tableIter) Key() util.InternalKey { return util.InternalKey(t.it.Key()) }

// Value returns the current value bytes.
func (t *tableIter) Value() []byte { return t.val }

var _ lsm.Iterator = (*tableIter)(nil)

// snapIter walks a sub-skiplist whose entry bytes were bulk-read into a DRAM
// snapshot; the spill merge uses it so its reads are one sequential pass
// instead of per-entry media accesses.
type snapIter struct {
	it   *skiplist.Iterator
	snap []byte
	val  []byte
	ok   bool
}

func (e *Engine) newSnapIter(list *skiplist.List, snap []byte) *snapIter {
	return &snapIter{it: list.NewIterator(), snap: snap}
}

func (t *snapIter) load() {
	t.ok = false
	if !t.it.Valid() {
		return
	}
	off := util.Fixed64(t.it.Value())
	if off >= uint64(len(t.snap)) {
		return
	}
	_, val, _, err := kvstore.DecodeEntry(t.snap[off:])
	if err != nil {
		return
	}
	t.val = val
	t.ok = true
}

// Valid reports whether the iterator is on an entry.
func (t *snapIter) Valid() bool { return t.ok }

// SeekToFirst positions at the table's smallest internal key.
func (t *snapIter) SeekToFirst() { t.it.SeekToFirst(); t.load() }

// Seek positions at the first entry >= ik.
func (t *snapIter) Seek(ik util.InternalKey) { t.it.Seek(ik, nil); t.load() }

// Next advances the iterator.
func (t *snapIter) Next() { t.it.Next(); t.load() }

// Key returns the current internal key.
func (t *snapIter) Key() util.InternalKey { return util.InternalKey(t.it.Key()) }

// Value returns the current value bytes.
func (t *snapIter) Value() []byte { return t.val }

var _ lsm.Iterator = (*snapIter)(nil)

// Global-skiplist node values pack {seq, kind, absolute entry address} so a
// Get hitting the compacted view can fetch the value straight from the
// ImmZone without touching any per-table sub-skiplist.
func encodeGlobalVal(seq uint64, kind util.ValueKind, addr uint64) []byte {
	b := util.PutFixed64(nil, seq)
	b = append(b, byte(kind))
	return util.PutFixed64(b, addr)
}

func decodeGlobalVal(b []byte) (seq uint64, kind util.ValueKind, addr uint64) {
	return util.Fixed64(b), util.ValueKind(b[8]), util.Fixed64(b[9:])
}

// compactInto merges one flushed table's sub-skiplist into the global
// skiplist, keeping only the freshest version per user key — the
// sub-skiplist compaction of Section III-D, which removes invalid nodes so
// later reads walk one list instead of many. Every inserted key is also
// recorded in the global negative filter (keys skipped as stale are already
// present from a fresher insert), keeping the filter sound for the
// compacted-view read path. Runs on the background index thread's clock.
func (e *Engine) compactInto(th *hw.Thread, global *skiplist.List, globalFilter *memfilter.Filter, t *immTable) int {
	it := t.list.NewIterator()
	it.SeekToFirst()
	merged := 0
	charge := func(visits int) {
		th.Clock.Advance(int64(visits) * (e.m.Costs.DRAMAccess + e.m.Costs.SkiplistVisit) / 16)
	}
	for it.Valid() {
		ik := util.InternalKey(it.Key())
		off := util.Fixed64(it.Value())
		ukey := append([]byte(nil), ik.UserKey()...)
		cur, ok := global.Get(ukey, charge)
		if !ok || func() bool { s, _, _ := decodeGlobalVal(cur); return ik.Seq() > s }() {
			// Filter first, list second: a reader that finds the key in the
			// list must also find it in the filter.
			if globalFilter != nil {
				globalFilter.Add(ukey)
			}
			global.Insert(ukey, encodeGlobalVal(ik.Seq(), ik.Kind(), t.base+off), charge)
			merged++
		}
		it.Next()
	}
	return merged
}
