package core

// shard.go implements the sharded multi-core deployment of CacheKV: the
// keyspace is hash-partitioned across N full engine instances — each with its
// own sub-MemTable pool, flush/spill/index pipelines, ImmZone, LSM tree, and
// lock domain — behind a router that preserves the kvstore.DB surface. Two
// mechanisms ride on top of the partitioning:
//
//   - Group commit: one writer goroutine per shard coalesces concurrently
//     arriving Put/Delete/Batch requests into a single sub-MemTable append
//     committed by one CAS and made durable by one fence, amortizing the
//     persistence point across the group. Callers park until their group's
//     fence lands (the wait is attributed to the "lock" layer).
//
//   - Two-phase commit for cross-shard atomic batches: per-shard prepare
//     records plus a single commit marker in a global commit log (twopc.go),
//     so recovery can resolve in-doubt groups all-or-nothing.
//
// The LLC is way-granular, so the router reserves ONE pinned partition sized
// for the sum of all shard pools and hands it to every shard engine
// (Options.SharedPartition); per-shard pool regions are distinct PMem ranges
// inside that shared partition's capacity.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
	"cachekv/internal/util"
)

// ShardedOptions configure OpenSharded. The Base options carry TOTAL budgets
// (pool, ImmZone, FS, manifest) that are divided across shards, so a sharded
// store consumes the same pinned-cache and PMem budget as a single-shard one.
type ShardedOptions struct {
	// Shards is the number of engine shards (>= 1).
	Shards int
	// GroupCommitWindow is the virtual-time window (ns) within which
	// concurrently arriving write requests coalesce into one group; requests
	// arriving later than the group leader's arrival + window start the next
	// group. 0 takes the default (10µs). Negative disables coalescing
	// (every request commits alone — useful for A/B measurement).
	GroupCommitWindow int64
	// GroupCommitMaxOps caps the operations batched into one group commit.
	// 0 takes the default (64).
	GroupCommitMaxOps int
	// PrepareLogBytes / CommitLogBytes size the per-shard two-phase prepare
	// logs and the global commit-marker log (defaults 256 KiB each).
	PrepareLogBytes uint64
	CommitLogBytes  uint64
	// Base is the per-engine configuration; PoolBytes, ImmZoneBytes, FSBytes
	// and ManifestBytes are totals split across shards, SubMemTableBytes is
	// clamped so every shard keeps at least two slots.
	Base Options
}

const (
	defaultGroupCommitWindow = 10_000 // 10µs of virtual time
	defaultGroupCommitMaxOps = 64
	defaultTwoPCLogBytes     = 256 << 10
)

func (o ShardedOptions) withDefaults() ShardedOptions {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = defaultGroupCommitWindow
	}
	if o.GroupCommitMaxOps <= 0 {
		o.GroupCommitMaxOps = defaultGroupCommitMaxOps
	}
	if o.PrepareLogBytes == 0 {
		o.PrepareLogBytes = defaultTwoPCLogBytes
	}
	if o.CommitLogBytes == 0 {
		o.CommitLogBytes = defaultTwoPCLogBytes
	}
	o.Base = o.Base.withDefaults()
	return o
}

// shardOptions derives shard k's engine options from the totals.
func (o ShardedOptions) shardOptions(k int, prefix string, seq *atomic.Uint64, part *cache.PartitionID) Options {
	n := uint64(o.Shards)
	eo := o.Base
	eo.Shard = k
	eo.RegionPrefix = fmt.Sprintf("%s.s%d", prefix, k)
	eo.SharedSeq = seq
	eo.SharedPartition = part

	eo.PoolBytes = o.Base.PoolBytes / n
	if min := uint64(poolHeaderBytes + 2*(64<<10)); eo.PoolBytes < min {
		eo.PoolBytes = min
	}
	// Keep at least two slots per shard so one can flush while the other
	// absorbs writes.
	if max := (eo.PoolBytes - poolHeaderBytes) / 2; eo.SubMemTableBytes > max {
		eo.SubMemTableBytes = max &^ 7
	}
	if eo.SubMemTableBytes < 64<<10 {
		eo.SubMemTableBytes = 64 << 10
	}
	eo.ImmZoneBytes = o.Base.ImmZoneBytes / n
	if min := 2 * eo.PoolBytes; eo.ImmZoneBytes < min {
		eo.ImmZoneBytes = min
	}
	if eo.ImmZoneBytes < 1<<20 {
		eo.ImmZoneBytes = 1 << 20
	}
	eo.FSBytes = o.Base.FSBytes / n
	if eo.FSBytes < 8<<20 {
		eo.FSBytes = 8 << 20
	}
	eo.ManifestBytes = o.Base.ManifestBytes / n
	if eo.ManifestBytes < 1<<20 {
		eo.ManifestBytes = 1 << 20
	}
	return eo
}

// writeReq is one caller's parked write: its operations with pre-assigned
// sequence numbers, the virtual arrival time, and the completion signal. The
// writer fills doneV/err before closing done.
type writeReq struct {
	ops   []batchOp
	seqs  []uint64
	bytes uint64 // rough encoded-size estimate for group byte budgeting
	at    int64  // caller's virtual clock at submission
	// deadlineV is the caller's absolute virtual-time write deadline (0 =
	// none). The group inherits the laxest member deadline; a member whose
	// own deadline expires fails alone via the degrade path.
	deadlineV int64
	doneV     int64 // group fence's virtual completion time
	err       error
	done      chan struct{}
}

// shardWriter is one shard's group-commit loop: a dedicated goroutine (with
// its own virtual thread pinned to core shard%cores) that drains the request
// channel, coalesces adjacent requests into one commit, and answers every
// member with the group's fence time.
type shardWriter struct {
	sh  *Sharded
	eng *Engine
	id  int
	th  *hw.Thread
	ch  chan *writeReq

	maxOps   int
	maxBytes uint64
	windowNs int64

	mu     sync.RWMutex // guards closed against concurrent submits
	closed bool
}

func (w *shardWriter) submit(req *writeReq) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return errEngineClosed
	}
	w.ch <- req
	return nil
}

func (w *shardWriter) stop() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	w.mu.Unlock()
}

// loop drains requests, assembling groups bounded by op count, encoded bytes,
// and the virtual arrival window. pending carries a request that arrived past
// the current group's window into the next group.
func (w *shardWriter) loop() {
	defer w.sh.wg.Done()
	var pending *writeReq
	group := make([]*writeReq, 0, 16)
	for {
		var first *writeReq
		if pending != nil {
			first, pending = pending, nil
		} else {
			var ok bool
			first, ok = <-w.ch
			if !ok {
				return
			}
		}
		group = append(group[:0], first)
		nOps := len(first.ops)
		nBytes := first.bytes
		drained := false
	coalesce:
		for nOps < w.maxOps && nBytes < w.maxBytes && w.windowNs >= 0 {
			select {
			case r, ok := <-w.ch:
				if !ok {
					drained = true
					break coalesce
				}
				if r.at-first.at > w.windowNs {
					pending = r
					break coalesce
				}
				group = append(group, r)
				nOps += len(r.ops)
				nBytes += r.bytes
			default:
				break coalesce
			}
		}
		w.commitGroup(group)
		if drained && pending == nil {
			return
		}
	}
}

// commitGroup appends the whole group with one commitOps call (one slot
// append, one commit CAS) and one fsync-equivalent fence, then releases every
// member at the fence's virtual time. On a multi-member failure each request
// retries alone so one oversized batch cannot poison its neighbours.
func (w *shardWriter) commitGroup(group []*writeReq) {
	th := w.th
	// The group starts when the writer is free AND the last member arrived.
	start := th.Clock.Now()
	for _, r := range group {
		if r.at > start {
			start = r.at
		}
	}
	th.Clock.AdvanceTo(start)

	// The group-commit queue is the write path's last unbounded wait: under
	// sustained overload requests park behind earlier groups for longer than
	// any in-engine stall. A member whose deadline passed while it queued is
	// rejected here, before any of its ops reach the commit CAS, so it is
	// fully absent and its caller observes ErrStalled at exactly its own
	// deadline instead of an arbitrarily late ack.
	kept := group[:0]
	for _, r := range group {
		if r.deadlineV > 0 && start > r.deadlineV {
			r.doneV = r.deadlineV
			r.err = ErrStalled
			w.eng.flow.rejectedWrites.Add(1)
			close(r.done)
			continue
		}
		kept = append(kept, r)
	}
	group = kept
	if len(group) == 0 {
		return
	}

	// The group's slot wait runs under the laxest member deadline: if any
	// member carries no deadline the group must not fail on one, and on a
	// stall the degrade path below retries members individually so only the
	// writers whose own deadlines expired observe ErrStalled — rejection
	// happens before the commit CAS, so a failed member is fully absent.
	groupDeadline := int64(-1)
	for _, r := range group {
		if r.deadlineV == 0 {
			groupDeadline = 0
			break
		}
		if r.deadlineV > groupDeadline {
			groupDeadline = r.deadlineV
		}
	}
	if groupDeadline < 0 {
		groupDeadline = 0
	}

	var err error
	if len(group) == 1 {
		err = w.eng.commitOps(th, group[0].ops, group[0].seqs, group[0].deadlineV)
	} else {
		total := 0
		for _, r := range group {
			total += len(r.ops)
		}
		ops := make([]batchOp, 0, total)
		seqs := make([]uint64, 0, total)
		for _, r := range group {
			ops = append(ops, r.ops...)
			seqs = append(seqs, r.seqs...)
		}
		err = w.eng.commitOps(th, ops, seqs, groupDeadline)
		if err != nil {
			// Degrade to per-request commits: a capacity error (or stall)
			// belongs to the request that overflowed or expired, not to the
			// whole group.
			for _, r := range group {
				w.commitGroup([]*writeReq{r})
			}
			return
		}
	}
	if err == nil {
		// The group's single persistence fence (the amortized fsync).
		th.InPhase(hw.PhaseWAL, func() {
			th.Clock.Advance(w.sh.m.Costs.Fence)
		})
	}
	doneV := th.Clock.Now()

	w.sh.stats.groups.Add(1)
	w.sh.stats.groupedOps.Add(int64(len(group)))
	w.sh.perShardGroups[w.id].Add(1)
	w.sh.batchHist.Record(int64(len(group)))
	for _, r := range group {
		r.doneV = doneV
		r.err = err
		w.sh.waitHist.Record(doneV - r.at)
		close(r.done)
	}
}

// shardStats aggregates router-level counters.
type shardStats struct {
	groups     atomic.Int64 // group commits executed
	groupedOps atomic.Int64 // write requests that went through group commit
	crossBatch atomic.Int64 // cross-shard two-phase batches committed
}

// Sharded is the N-shard CacheKV deployment. It implements kvstore.DB.
type Sharded struct {
	m    *hw.Machine
	opts ShardedOptions

	prefix  string
	seq     *atomic.Uint64
	part    cache.PartitionID
	ownPart bool

	shards  []*Engine
	writers []*shardWriter
	wg      sync.WaitGroup

	tpc *twoPC

	stats          shardStats
	perShardGroups []atomic.Int64
	batchHist      *histogram.H // ops per group commit
	waitHist       *histogram.H // caller park time (virtual ns)

	trace  *obs.Trace
	closed atomic.Bool
	halted atomic.Bool
}

// OpenSharded creates (or recovers) an N-shard CacheKV deployment on m.
func OpenSharded(m *hw.Machine, o ShardedOptions, th *hw.Thread) (*Sharded, error) {
	o = o.withDefaults()
	prefix := o.Base.RegionPrefix
	if prefix == "" {
		prefix = "cachekv"
	}
	sh := &Sharded{
		m:              m,
		opts:           o,
		prefix:         prefix,
		trace:          o.Base.Trace,
		batchHist:      histogram.New(),
		waitHist:       histogram.New(),
		perShardGroups: make([]atomic.Int64, o.Shards),
	}
	if o.Base.SharedSeq != nil {
		sh.seq = o.Base.SharedSeq
	} else {
		sh.seq = new(atomic.Uint64)
	}
	if o.Base.SharedPartition != nil {
		sh.part = *o.Base.SharedPartition
	} else {
		part, err := m.Cache.Reserve(int(o.Base.PoolBytes))
		if err != nil {
			return nil, fmt.Errorf("cachekv: pinning sharded pool: %w", err)
		}
		sh.part = part
		sh.ownPart = true
	}

	for k := 0; k < o.Shards; k++ {
		eo := o.shardOptions(k, prefix, sh.seq, &sh.part)
		eng, err := Open(m, eo, th)
		if err != nil {
			sh.teardown(th)
			return nil, fmt.Errorf("cachekv: opening shard %d/%d: %w", k, o.Shards, err)
		}
		sh.shards = append(sh.shards, eng)
	}

	// Two-phase commit logs, and replay of any in-doubt cross-shard groups.
	tpc, err := openTwoPC(sh, th)
	if err != nil {
		sh.teardown(th)
		return nil, err
	}
	sh.tpc = tpc
	// Wire the two-phase log occupancy into each shard's flow controller as
	// its WAL pressure signal: a safety valve above the half-capacity
	// auto-reset, so runaway cross-shard traffic escalates admission before a
	// log-full failure.
	walCap := o.PrepareLogBytes + o.CommitLogBytes
	for k := range sh.shards {
		k := k
		sh.shards[k].flow.setWALSignal(func() uint64 {
			return tpc.prepBytes[k].Load() + tpc.commitBytes.Load()
		}, walCap*3/4, walCap*15/16)
	}

	// Group-commit writers, one per shard, pinned round-robin over the cores.
	maxBytes := o.Base.SubMemTableBytes / 4
	if maxBytes > 32<<10 {
		maxBytes = 32 << 10
	}
	if maxBytes < 4<<10 {
		maxBytes = 4 << 10
	}
	for k := 0; k < o.Shards; k++ {
		w := &shardWriter{
			sh:       sh,
			eng:      sh.shards[k],
			id:       k,
			th:       m.NewThread(k).SetName(fmt.Sprintf("shard%d/writer", k)),
			ch:       make(chan *writeReq, 1024),
			maxOps:   o.GroupCommitMaxOps,
			maxBytes: maxBytes,
			windowNs: o.GroupCommitWindow,
		}
		if o.GroupCommitWindow < 0 {
			w.windowNs = -1
		}
		sh.writers = append(sh.writers, w)
		sh.wg.Add(1)
		go w.loop()
	}
	return sh, nil
}

// teardown closes whatever opened during a failed OpenSharded.
func (sh *Sharded) teardown(th *hw.Thread) {
	for _, e := range sh.shards {
		_ = e.Close(th)
	}
	if sh.ownPart {
		sh.m.Cache.Release(sh.part)
	}
}

// ShardOf returns the shard index key routes to: a hash partition, so every
// version of a key lives in exactly one shard and per-key max-seq resolution
// stays shard-local.
func (sh *Sharded) ShardOf(key []byte) int {
	return int(util.Hash64(key) % uint64(len(sh.shards)))
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Shard exposes shard k's engine (tests and tooling).
func (sh *Sharded) Shard(k int) *Engine { return sh.shards[k] }

// WriterCore reports the virtual core shard k's group-commit writer is pinned
// to (k modulo the machine's core count) — the deterministic session/shard
// core mapping documented on cachekv.DB.Session.
func (sh *Sharded) WriterCore(k int) int { return sh.writers[k].th.Core }

func (sh *Sharded) err() error {
	if sh.closed.Load() {
		return errEngineClosed
	}
	if sh.halted.Load() {
		return errEngineCrashed
	}
	return nil
}

// Name implements kvstore.DB.
func (sh *Sharded) Name() string {
	return fmt.Sprintf("CacheKV(shards=%d)", len(sh.shards))
}

// submitAndWait routes one pre-sequenced request to shard idx's writer and
// parks the caller until the group's fence lands. The park is attributed to
// the lock layer: it is commit-ordering wait, the sharded analogue of the
// single-writer lock the paper's Figure 5(b) charges there.
func (sh *Sharded) submitAndWait(th *hw.Thread, idx int, ops []batchOp, seqs []uint64, deadlineV int64) error {
	var bytes uint64
	for _, op := range ops {
		bytes += uint64(len(op.key)+len(op.value)) + 24
	}
	req := &writeReq{ops: ops, seqs: seqs, bytes: bytes, at: th.Clock.Now(),
		deadlineV: deadlineV, done: make(chan struct{})}
	if err := sh.writers[idx].submit(req); err != nil {
		return err
	}
	th.InPhase(hw.PhaseLock, func() {
		<-req.done
		th.Clock.AdvanceTo(req.doneV)
	})
	return req.err
}

func (sh *Sharded) write1(th *hw.Thread, key, value []byte, kind util.ValueKind, deadlineNs int64) error {
	if err := sh.err(); err != nil {
		return err
	}
	// Router lookup: one DRAM access, same charge as the engine's global
	// metadata structure.
	th.ChargeDRAM(1)
	idx := sh.ShardOf(key)
	// Admission runs on the owning shard's flow controller before a sequence
	// number is drawn or the request reaches the writer, so a rejected write
	// is fully absent and the group-commit pipeline only carries admitted
	// work.
	deadlineV := absDeadline(th, deadlineNs)
	if err := sh.shards[idx].flow.admitWrite(th, deadlineV); err != nil {
		return err
	}
	seq := sh.seq.Add(1)
	return sh.submitAndWait(th, idx,
		[]batchOp{{key: key, value: value, kind: kind}}, []uint64{seq}, deadlineV)
}

// Put implements kvstore.DB.
func (sh *Sharded) Put(th *hw.Thread, key, value []byte) error {
	return sh.write1(th, key, value, util.KindValue, sh.opts.Base.WriteStallDeadline)
}

// PutWithDeadline is Put bounded by deadlineNs virtual ns (see
// Engine.PutWithDeadline): admission, the group-commit slot wait, and
// ImmZone backpressure all honour the deadline and fail with ErrStalled.
func (sh *Sharded) PutWithDeadline(th *hw.Thread, key, value []byte, deadlineNs int64) error {
	return sh.write1(th, key, value, util.KindValue, deadlineNs)
}

// Delete implements kvstore.DB.
func (sh *Sharded) Delete(th *hw.Thread, key []byte) error {
	return sh.DeleteWithDeadline(th, key, sh.opts.Base.WriteStallDeadline)
}

// DeleteWithDeadline is Delete under a write deadline.
func (sh *Sharded) DeleteWithDeadline(th *hw.Thread, key []byte, deadlineNs int64) error {
	if err := sh.write1(th, key, nil, util.KindDelete, deadlineNs); err != nil {
		return err
	}
	sh.shards[sh.ShardOf(key)].stats.Deletes.Add(1)
	return nil
}

// DeleteRange deletes every key in [start, end) across the whole keyspace.
// Keys hash-partition across shards, so any key in the span may live on any
// shard: a range tombstone is committed to EVERY shard — through the
// two-phase protocol when there is more than one, so after a crash either
// all shards carry the tombstone or none does.
func (sh *Sharded) DeleteRange(th *hw.Thread, start, end []byte) error {
	return sh.DeleteRangeWithDeadline(th, start, end, sh.opts.Base.WriteStallDeadline)
}

// DeleteRangeWithDeadline is DeleteRange under a write deadline. Like
// cross-shard Apply, every participant must admit the write before its
// deadline or the whole operation fails with ErrStalled before any durable
// state changes.
func (sh *Sharded) DeleteRangeWithDeadline(th *hw.Thread, start, end []byte, deadlineNs int64) error {
	if err := sh.err(); err != nil {
		return err
	}
	if bytes.Compare(start, end) >= 0 {
		return nil
	}
	th.ChargeDRAM(1)
	deadlineV := absDeadline(th, deadlineNs)
	op := batchOp{
		key:   append([]byte(nil), start...),
		value: append([]byte(nil), end...),
		kind:  util.KindRangeDel,
	}
	n := uint64(len(sh.shards))
	firstSeq := sh.seq.Add(n) - n + 1
	if len(sh.shards) == 1 {
		if err := sh.shards[0].flow.admitWrite(th, deadlineV); err != nil {
			return err
		}
		return sh.submitAndWait(th, 0, []batchOp{op}, []uint64{firstSeq}, deadlineV)
	}
	portions := make([]*shardPortion, len(sh.shards))
	for k := range sh.shards {
		portions[k] = &shardPortion{shard: k, ops: []batchOp{op}, seqs: []uint64{firstSeq + uint64(k)}}
	}
	return sh.tpc.commit(th, portions, deadlineV)
}

// Ingest bulk-loads sorted entries, routing each to its owning shard. Each
// shard's slice installs atomically (one manifest record); the call is not
// atomic ACROSS shards — a crash between installs leaves whole per-shard
// slices present or absent, never a torn table.
func (sh *Sharded) Ingest(th *hw.Thread, entries []lsm.IngestEntry) error {
	if err := sh.err(); err != nil {
		return err
	}
	th.ChargeDRAM(1)
	// A globally ascending batch stays ascending within each shard's
	// subsequence, so per-shard validation passes whenever the input is valid.
	byShard := make([][]lsm.IngestEntry, len(sh.shards))
	for _, ent := range entries {
		k := sh.ShardOf(ent.Key)
		byShard[k] = append(byShard[k], ent)
	}
	for k, part := range byShard {
		if len(part) == 0 {
			continue
		}
		if err := sh.shards[k].Ingest(th, part); err != nil {
			return err
		}
	}
	return nil
}

// Get implements kvstore.DB: reads route directly to the owning shard on the
// caller's thread — no group, no park.
func (sh *Sharded) Get(th *hw.Thread, key []byte) ([]byte, error) {
	if err := sh.err(); err != nil {
		return nil, err
	}
	th.ChargeDRAM(1)
	return sh.shards[sh.ShardOf(key)].Get(th, key)
}

// Scan implements kvstore.DB: an ordered merge over every shard's sources at
// one shared-sequence snapshot.
func (sh *Sharded) Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	if err := sh.err(); err != nil {
		return 0, err
	}
	snapshot := sh.seq.Load()
	var its []lsm.Iterator
	var tombs []lsm.RangeDel
	for _, e := range sh.shards {
		sits, err := e.internalIterators(th)
		if err != nil {
			return 0, err
		}
		its = append(its, sits...)
		tombs = append(tombs, e.visibleRangeTombs(snapshot)...)
	}
	merged := lsm.NewMergingIterator(its...)
	return kvstore.UserScanTombs(merged, start, snapshot, limit, tombs, fn), nil
}

// Apply commits an atomic multi-key batch. A batch whose keys all hash to one
// shard commits exactly like the single-engine path (one CAS); a cross-shard
// batch goes through the two-phase protocol in twopc.go.
func (sh *Sharded) Apply(th *hw.Thread, b *Batch) error {
	return sh.ApplyWithDeadline(th, b, sh.opts.Base.WriteStallDeadline)
}

// ApplyWithDeadline is Apply under a write deadline. For a cross-shard batch
// every participant shard must admit the batch before its deadline or the
// whole batch fails with ErrStalled before any prepare record is written —
// once the two-phase commit marker lands, the apply runs to completion
// regardless of the deadline (an in-doubt prepare is never abandoned
// half-committed).
func (sh *Sharded) ApplyWithDeadline(th *hw.Thread, b *Batch, deadlineNs int64) error {
	if err := sh.err(); err != nil {
		return err
	}
	if len(b.ops) == 0 {
		return nil
	}
	th.ChargeDRAM(1)
	deadlineV := absDeadline(th, deadlineNs)
	// Partition the batch by shard, preserving op order within each shard.
	n := uint64(len(b.ops))
	firstSeq := sh.seq.Add(n) - n + 1
	byShard := make(map[int]*shardPortion)
	order := make([]int, 0, 2)
	for i, op := range b.ops {
		k := sh.ShardOf(op.key)
		p := byShard[k]
		if p == nil {
			p = &shardPortion{shard: k}
			byShard[k] = p
			order = append(order, k)
		}
		p.ops = append(p.ops, op)
		p.seqs = append(p.seqs, firstSeq+uint64(i))
	}
	if len(byShard) == 1 {
		k := order[0]
		if err := sh.shards[k].flow.admitWrite(th, deadlineV); err != nil {
			return err
		}
		return sh.submitAndWait(th, k, byShard[k].ops, byShard[k].seqs, deadlineV)
	}
	portions := make([]*shardPortion, 0, len(byShard))
	// Deterministic shard order for the prepare/apply sequence.
	for k := range sh.shards {
		if p, ok := byShard[k]; ok {
			portions = append(portions, p)
		}
	}
	return sh.tpc.commit(th, portions, deadlineV)
}

// FlushAll implements kvstore.DB: flush every shard's pipeline.
func (sh *Sharded) FlushAll(th *hw.Thread) error {
	if err := sh.err(); err != nil {
		return err
	}
	for _, e := range sh.shards {
		if err := e.FlushAll(th); err != nil {
			return err
		}
	}
	return nil
}

// Halt crash-stops every shard (power failure semantics).
func (sh *Sharded) Halt() {
	sh.halted.Store(true)
	for _, e := range sh.shards {
		e.Halt()
	}
	if sh.tpc != nil {
		sh.tpc.abort()
	}
}

// Close implements kvstore.DB: drain the writers, close every shard, release
// the shared partition.
func (sh *Sharded) Close(th *hw.Thread) error {
	if sh.closed.Swap(true) {
		return nil
	}
	for _, w := range sh.writers {
		w.stop()
	}
	sh.wg.Wait()
	var first error
	for _, e := range sh.shards {
		if err := e.Close(th); err != nil && first == nil {
			first = err
		}
	}
	if sh.ownPart {
		sh.m.Cache.Release(sh.part)
	}
	return first
}

// FilterStats aggregates the shards' negative-filter counters.
func (sh *Sharded) FilterStats() (probes, negatives int64) {
	for _, e := range sh.shards {
		p, n := e.FilterStats()
		probes += p
		negatives += n
	}
	return probes, negatives
}

// BlockCacheStats aggregates the shards' block-cache counters.
func (sh *Sharded) BlockCacheStats() (hits, misses int64) {
	for _, e := range sh.shards {
		h, m := e.BlockCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// GroupCommitStats reports the router's batching effectiveness: groups
// committed, write requests coalesced into them, and cross-shard two-phase
// batches.
func (sh *Sharded) GroupCommitStats() (groups, groupedOps, crossShardBatches int64) {
	return sh.stats.groups.Load(), sh.stats.groupedOps.Load(), sh.stats.crossBatch.Load()
}

// GroupCommitHists exposes the group-size and caller-wait histograms.
func (sh *Sharded) GroupCommitHists() (batchSize, waitNs *histogram.H) {
	return sh.batchHist, sh.waitHist
}

// RegisterObs publishes aggregate engine counters under the standard names
// (so existing dashboards keep working), per-shard labeled variants, and the
// group-commit instrumentation.
func (sh *Sharded) RegisterObs(r *obs.Registry) {
	sum := func(f func(*Stats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, e := range sh.shards {
				t += f(&e.stats)
			}
			return t
		}
	}
	r.Counter("engine_puts", sum(func(s *Stats) int64 { return s.Puts.Load() }))
	r.Counter("engine_gets", sum(func(s *Stats) int64 { return s.Gets.Load() }))
	r.Counter("engine_deletes", sum(func(s *Stats) int64 { return s.Deletes.Load() }))
	r.Counter("engine_flushes", sum(func(s *Stats) int64 { return s.Flushes.Load() }))
	r.Counter("engine_spills", sum(func(s *Stats) int64 { return s.Spills.Load() }))
	r.Counter("engine_compactions", sum(func(s *Stats) int64 { return s.Compactions.Load() }))
	r.Counter("engine_read_syncs", sum(func(s *Stats) int64 { return s.ReadSyncs.Load() }))
	r.Counter("engine_range_deletes", sum(func(s *Stats) int64 { return s.RangeDeletes.Load() }))
	r.Counter("engine_ingests", sum(func(s *Stats) int64 { return s.Ingests.Load() }))
	r.Counter("compact_bytes_in", func() int64 {
		var t int64
		for _, e := range sh.shards {
			in, _ := e.tree.CompactionLevelStats()
			for _, v := range in {
				t += v
			}
		}
		return t
	})
	r.Counter("compact_bytes_out", func() int64 {
		var t int64
		for _, e := range sh.shards {
			_, out := e.tree.CompactionLevelStats()
			for _, v := range out {
				t += v
			}
		}
		return t
	})
	r.Counter("compact_jobs", func() int64 {
		var t int64
		for _, e := range sh.shards {
			t += e.tree.SchedulerStats().JobsRun
		}
		return t
	})
	r.Counter("engine_pool_slots", func() int64 {
		var t int64
		for _, e := range sh.shards {
			t += int64(e.pool.numSlots())
		}
		return t
	})
	r.Counter("engine_shards", func() int64 { return int64(len(sh.shards)) })

	flowSum := func(f func(FlowStats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, e := range sh.shards {
				t += f(e.flow.snapshot())
			}
			return t
		}
	}
	r.Gauge("flow_state", func() float64 { return float64(sh.FlowState()) })
	r.Counter("flow_slowdown_entries", flowSum(func(s FlowStats) int64 { return s.SlowdownEntries }))
	r.Counter("flow_stop_entries", flowSum(func(s FlowStats) int64 { return s.StopEntries }))
	r.Counter("flow_writes_delayed", flowSum(func(s FlowStats) int64 { return s.DelayedWrites }))
	r.Counter("flow_delay_ns", flowSum(func(s FlowStats) int64 { return s.DelayedNs }))
	r.Counter("flow_writes_rejected", flowSum(func(s FlowStats) int64 { return s.RejectedWrites }))
	r.Counter("flow_stop_waits", flowSum(func(s FlowStats) int64 { return s.StopWaits }))
	r.Counter("flow_stop_wait_ns", flowSum(func(s FlowStats) int64 { return s.StopWaitNs }))
	r.Counter("flow_dwell_ok_ns", flowSum(func(s FlowStats) int64 { return s.DwellOKNs }))
	r.Counter("flow_dwell_slowdown_ns", flowSum(func(s FlowStats) int64 { return s.DwellSlowdownNs }))
	r.Counter("flow_dwell_stop_ns", flowSum(func(s FlowStats) int64 { return s.DwellStopNs }))

	r.Counter("group_commits", func() int64 { return sh.stats.groups.Load() })
	r.Counter("group_commit_ops", func() int64 { return sh.stats.groupedOps.Load() })
	r.Counter("cross_shard_batches", func() int64 { return sh.stats.crossBatch.Load() })
	r.Gauge("group_commit_batch_mean", func() float64 { return sh.batchHist.Mean() })
	r.Gauge("group_commit_batch_p99", func() float64 { return float64(sh.batchHist.Percentile(0.99)) })
	r.Gauge("group_commit_wait_mean_ns", func() float64 { return sh.waitHist.Mean() })
	r.Gauge("group_commit_wait_p99_ns", func() float64 { return float64(sh.waitHist.Percentile(0.99)) })

	for k := range sh.shards {
		k := k
		e := sh.shards[k]
		r.Counter(fmt.Sprintf("shard%d_engine_puts", k), func() int64 { return e.stats.Puts.Load() })
		r.Counter(fmt.Sprintf("shard%d_engine_gets", k), func() int64 { return e.stats.Gets.Load() })
		r.Counter(fmt.Sprintf("shard%d_engine_flushes", k), func() int64 { return e.stats.Flushes.Load() })
		r.Counter(fmt.Sprintf("shard%d_group_commits", k), func() int64 { return sh.perShardGroups[k].Load() })
		r.Gauge(fmt.Sprintf("shard%d_flow_state", k), func() float64 { return float64(e.flow.current()) })
	}
}

// FlowState reports the most severe shard's write-admission state.
func (sh *Sharded) FlowState() FlowState {
	s := FlowOK
	for _, e := range sh.shards {
		if cur := e.flow.current(); cur > s {
			s = cur
		}
	}
	return s
}

// FlowStats aggregates the shards' flow-control counters (State is the most
// severe shard's).
func (sh *Sharded) FlowStats() FlowStats {
	var t FlowStats
	for _, e := range sh.shards {
		t = t.Add(e.flow.snapshot())
	}
	return t
}

// FlowSignals sums the shards' raw pressure signals (see Engine.FlowSignals):
// total L0 files/bytes and flush-backlog bytes across the deployment.
func (sh *Sharded) FlowSignals() (l0Files int, l0Bytes int64, backlogBytes uint64) {
	for _, e := range sh.shards {
		f, b, bk := e.FlowSignals()
		l0Files += f
		l0Bytes += b
		backlogBytes += bk
	}
	return l0Files, l0Bytes, backlogBytes
}

// DebugForceFlowState pins shard k's flow state (harness hook; see
// Engine.DebugForceFlowState).
func (sh *Sharded) DebugForceFlowState(at int64, k int, s FlowState) {
	sh.shards[k].flow.force(at, s)
}

// DebugUnforceFlowState releases every shard's force pin.
func (sh *Sharded) DebugUnforceFlowState() {
	for _, e := range sh.shards {
		e.flow.forceOff()
	}
}

var (
	_ kvstore.DB       = (*Sharded)(nil)
	_ obs.ObsRegistrar = (*Sharded)(nil)
)

// errBatchTooLarge rejects cross-shard portions that could never replay into
// a minimum-size sub-MemTable.
var errBatchTooLarge = errors.New("cachekv: cross-shard batch portion exceeds sub-MemTable capacity")
