package core

// twopc.go implements the two-phase commit protocol for cross-shard atomic
// batches (DESIGN.md §8.3). A batch whose keys span several shards cannot be
// committed by one header CAS, so the router writes write-ahead records:
//
//	prepare (per shard k, into cachekv.s<k>.2pc):
//	  'P' | batchID u64 | shard u32 | nops u32 |
//	      { kind u8 | seq u64 | klen u32 | vlen u32 | key | value } * nops
//	commit marker (into cachekv.2pc.commit):
//	  'C' | batchID u64
//
// The commit marker's fence is the batch's commit point. Recovery reads the
// commit log first; prepare records whose batchID carries a durable marker are
// replayed into their shard (idempotently — the recorded sequence numbers are
// reused, so a replay over an already-recovered entry resolves to the same
// version), and prepare records without a marker are in-doubt and discarded.
// Either every shard's portion becomes visible or none does.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/hw"
	"cachekv/internal/util"
	"cachekv/internal/wal"
)

// shardPortion is the slice of a cross-shard batch owned by one shard.
type shardPortion struct {
	shard int
	ops   []batchOp
	seqs  []uint64
}

// encodedSize mirrors commitOps' slot footprint: per entry, EncodeEntry's
// len/CRC header + body (uvarint klen, uvarint vlen, fixed64 trailer, key,
// value), rounded up to 8-byte alignment.
func (p *shardPortion) encodedSize() uint64 {
	var need uint64
	for _, op := range p.ops {
		k := uint64(len(op.key))
		v := uint64(len(op.value))
		need += align8(8 + uvarintLen(k) + uvarintLen(v) + 8 + k + v)
	}
	return need
}

func uvarintLen(v uint64) uint64 {
	n := uint64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// twoPC owns the prepare/commit logs and the in-flight bookkeeping.
type twoPC struct {
	sh *Sharded

	mu       sync.Mutex
	cond     *sync.Cond
	prepare  []*wal.Writer // one per shard
	prepRgs  []hw.Region
	commitW  *wal.Writer
	commitRg hw.Region
	nextID   uint64
	inflight int // committed batches whose portions are still being applied
	aborted  bool

	// Lock-free mirrors of the log offsets, updated under t.mu after every
	// append/reset: the per-shard flow controllers read them as the WAL
	// pressure signal without contending on t.mu.
	prepBytes   []atomic.Uint64
	commitBytes atomic.Uint64
}

func (sh *Sharded) prepareRegionName(k int) string {
	return fmt.Sprintf("%s.s%d.2pc", sh.prefix, k)
}

func (sh *Sharded) commitRegionName() string {
	return sh.prefix + ".2pc.commit"
}

// openTwoPC allocates (or, after a crash, recovers and replays) the two-phase
// logs. Shard engines must already be open: replay feeds committed portions
// back through each shard's commitOps.
func openTwoPC(sh *Sharded, th *hw.Thread) (*twoPC, error) {
	t := &twoPC{sh: sh, nextID: 1}
	t.cond = sync.NewCond(&t.mu)

	m := sh.m
	commitRg, recovered := m.LookupRegion(sh.commitRegionName())
	if !recovered {
		commitRg = m.Alloc(sh.commitRegionName(), sh.opts.CommitLogBytes, 0)
	}
	t.commitRg = commitRg
	for k := range sh.shards {
		rg, ok := m.LookupRegion(sh.prepareRegionName(k))
		if !ok {
			rg = m.Alloc(sh.prepareRegionName(k), sh.opts.PrepareLogBytes, 0)
		}
		t.prepRgs = append(t.prepRgs, rg)
	}

	if recovered {
		if err := t.replay(th); err != nil {
			return nil, err
		}
	}

	// Fresh writers zero the head block, logically truncating both logs:
	// everything replayed above now lives in the shards' sub-MemTables.
	t.commitW = wal.NewWriter(m, t.commitRg, th)
	for _, rg := range t.prepRgs {
		t.prepare = append(t.prepare, wal.NewWriter(m, rg, th))
	}
	t.prepBytes = make([]atomic.Uint64, len(t.prepare))
	return t, nil
}

// replay resolves in-doubt cross-shard groups after a crash: collect durable
// commit markers, then re-apply every prepare record whose batch committed.
func (t *twoPC) replay(th *hw.Thread) error {
	sh := t.sh
	committed := make(map[uint64]bool)
	var maxID, maxSeq uint64
	cr := wal.NewReader(sh.m, t.commitRg)
	_ = cr.ReplayAll(th, func(rec []byte) error {
		if len(rec) == 9 && rec[0] == twopcCommitTag {
			id := util.Fixed64(rec[1:])
			committed[id] = true
			if id > maxID {
				maxID = id
			}
		}
		return nil
	})

	replayed, indoubt := 0, 0
	var err error
	th.InPhase(hw.PhaseRecovery, func() {
		for k := range sh.shards {
			pr := wal.NewReader(sh.m, t.prepRgs[k])
			rerr := pr.ReplayAll(th, func(rec []byte) error {
				p, id, ok := decodePrepare(rec)
				if !ok || p.shard != k {
					return nil // torn tail or foreign record: durable prefix ends here
				}
				if id > maxID {
					maxID = id
				}
				if !committed[id] {
					indoubt++
					return nil // no durable marker: the batch never committed
				}
				for _, s := range p.seqs {
					if s > maxSeq {
						maxSeq = s
					}
				}
				replayed++
				// Replay must complete regardless of overload state: no
				// admission, no deadline (the batch already committed).
				return sh.shards[k].commitOps(th, p.ops, p.seqs, 0)
			})
			if rerr != nil && err == nil {
				err = rerr
			}
		}
	})
	if err != nil {
		return fmt.Errorf("cachekv: two-phase replay: %w", err)
	}
	// The shared counter may lag the replayed sequence numbers.
	for {
		cur := sh.seq.Load()
		if maxSeq <= cur || sh.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	t.nextID = maxID + 1
	sh.trace.Emit(th.Clock.Now(), "twopc_recovery",
		"replayed", replayed, "indoubt", indoubt, "next_id", t.nextID)
	return nil
}

const (
	twopcPrepareTag = byte('P')
	twopcCommitTag  = byte('C')
)

func encodePrepare(id uint64, p *shardPortion) []byte {
	rec := make([]byte, 0, 64)
	rec = append(rec, twopcPrepareTag)
	rec = util.PutFixed64(rec, id)
	rec = util.PutFixed32(rec, uint32(p.shard))
	rec = util.PutFixed32(rec, uint32(len(p.ops)))
	for i, op := range p.ops {
		rec = append(rec, byte(op.kind))
		rec = util.PutFixed64(rec, p.seqs[i])
		rec = util.PutFixed32(rec, uint32(len(op.key)))
		rec = util.PutFixed32(rec, uint32(len(op.value)))
		rec = append(rec, op.key...)
		rec = append(rec, op.value...)
	}
	return rec
}

func decodePrepare(rec []byte) (*shardPortion, uint64, bool) {
	if len(rec) < 17 || rec[0] != twopcPrepareTag {
		return nil, 0, false
	}
	id := util.Fixed64(rec[1:])
	p := &shardPortion{shard: int(util.Fixed32(rec[9:]))}
	nops := int(util.Fixed32(rec[13:]))
	off := 17
	for i := 0; i < nops; i++ {
		if off+17 > len(rec) {
			return nil, 0, false
		}
		kind := util.ValueKind(rec[off])
		seq := util.Fixed64(rec[off+1:])
		klen := int(util.Fixed32(rec[off+9:]))
		vlen := int(util.Fixed32(rec[off+13:]))
		off += 17
		if off+klen+vlen > len(rec) {
			return nil, 0, false
		}
		op := batchOp{
			key:  append([]byte(nil), rec[off:off+klen]...),
			kind: kind,
		}
		off += klen
		if vlen > 0 {
			op.value = append([]byte(nil), rec[off:off+vlen]...)
		}
		off += vlen
		p.ops = append(p.ops, op)
		p.seqs = append(p.seqs, seq)
	}
	if off != len(rec) {
		return nil, 0, false
	}
	return p, id, true
}

func encodeCommit(id uint64) []byte {
	rec := make([]byte, 0, 9)
	rec = append(rec, twopcCommitTag)
	return util.PutFixed64(rec, id)
}

// needsResetLocked reports whether either log is past half capacity.
func (t *twoPC) needsResetLocked() bool {
	if t.commitW.Offset() > t.commitRg.Size/2 {
		return true
	}
	for _, w := range t.prepare {
		if w.Offset() > t.prepRgs[0].Size/2 {
			return true
		}
	}
	return false
}

// maybeResetLocked truncates both logs once no committed batch is still
// applying. Safe because every batch recorded in the logs has either fully
// applied to its shards' sub-MemTables (inflight == 0) or never got a marker.
func (t *twoPC) maybeResetLocked(th *hw.Thread) {
	if !t.needsResetLocked() {
		return
	}
	for t.inflight > 0 && !t.aborted {
		t.cond.Wait()
	}
	if t.aborted {
		return
	}
	t.commitW.Reset(th)
	t.commitBytes.Store(t.commitW.Offset())
	for k, w := range t.prepare {
		w.Reset(th)
		t.prepBytes[k].Store(w.Offset())
	}
}

// abort wakes anyone parked in maybeResetLocked after a crash-stop.
func (t *twoPC) abort() {
	t.mu.Lock()
	t.aborted = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// commit runs the two-phase protocol for portions (ascending shard order):
// prepare records on every participant, one fence, then the commit marker and
// its fence — the commit point — and finally the portions flow through each
// shard's group-commit writer. The caller's thread performs all log appends
// under t.mu, so the persistence-op stream is deterministic for a
// single-threaded workload (crashsweep relies on this).
//
// deadlineV (0 = none) is enforced strictly BEFORE the first prepare record:
// every participant shard must admit the batch, and the deadline is
// re-checked after any log-reset wait. Once the commit marker's fence lands
// the batch is committed and the apply phase runs without a deadline — an
// in-doubt prepare is never abandoned half-committed.
func (t *twoPC) commit(th *hw.Thread, portions []*shardPortion, deadlineV int64) error {
	// Capacity pre-check against the smallest slot elasticity can produce:
	// a portion that cannot replay into a minimum-size sub-MemTable must be
	// rejected before any record is written.
	for _, p := range portions {
		if p.encodedSize() > (64<<10)-slotHdrSize {
			return errBatchTooLarge
		}
	}

	sh := t.sh
	// Admission on every participant shard, before any durable state: one
	// overloaded participant rejects the whole batch with nothing to undo.
	for _, p := range portions {
		if err := sh.shards[p.shard].flow.admitWrite(th, deadlineV); err != nil {
			return err
		}
	}

	t.mu.Lock()
	if t.aborted {
		t.mu.Unlock()
		return errEngineCrashed
	}
	if sh.closed.Load() {
		t.mu.Unlock()
		return errEngineClosed
	}
	t.maybeResetLocked(th)
	if t.aborted {
		t.mu.Unlock()
		return errEngineCrashed
	}
	if deadlineV > 0 && th.Clock.Now() >= deadlineV {
		// The reset wait (or earlier admission delays) consumed the deadline;
		// still nothing written, so the batch can fail cleanly.
		t.mu.Unlock()
		sh.shards[portions[0].shard].flow.rejectedWrites.Add(1)
		return ErrStalled
	}
	id := t.nextID
	t.nextID++
	var logErr error
	th.InPhase(hw.PhaseWAL, func() {
		for _, p := range portions {
			if _, err := t.prepare[p.shard].Append(th, encodePrepare(id, p)); err != nil {
				logErr = err
				return
			}
			t.prepBytes[p.shard].Store(t.prepare[p.shard].Offset())
		}
		// Fence 1: every participant's prepare record is durable.
		th.Clock.Advance(sh.m.Costs.Fence)
		if _, err := t.commitW.Append(th, encodeCommit(id)); err != nil {
			logErr = err
			return
		}
		t.commitBytes.Store(t.commitW.Offset())
		// Fence 2: the marker is durable — the batch's commit point.
		th.Clock.Advance(sh.m.Costs.Fence)
	})
	if logErr != nil {
		t.mu.Unlock()
		return fmt.Errorf("cachekv: two-phase log: %w", logErr)
	}
	t.inflight++
	t.mu.Unlock()

	// Apply each portion through its shard's writer. Submissions share one
	// virtual arrival stamp so the shards absorb their portions in parallel
	// virtual time; the host-side waits are sequential for determinism.
	at := th.Clock.Now()
	doneV := at
	var applyErr error
	th.InPhase(hw.PhaseLock, func() {
		for _, p := range portions {
			var bytes uint64
			for _, op := range p.ops {
				bytes += uint64(len(op.key)+len(op.value)) + 24
			}
			// deadlineV stays zero: the commit marker already landed, so the
			// apply must run to completion however stalled the shard is.
			req := &writeReq{ops: p.ops, seqs: p.seqs, bytes: bytes, at: at, done: make(chan struct{})}
			if err := sh.writers[p.shard].submit(req); err != nil {
				if applyErr == nil {
					applyErr = err
				}
				continue
			}
			<-req.done
			if req.err != nil && applyErr == nil {
				applyErr = req.err
			}
			if req.doneV > doneV {
				doneV = req.doneV
			}
		}
		th.Clock.AdvanceTo(doneV)
	})

	t.mu.Lock()
	t.inflight--
	t.cond.Broadcast()
	t.mu.Unlock()
	sh.stats.crossBatch.Add(1)
	return applyErr
}
