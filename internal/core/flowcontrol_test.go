package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// testFlow builds a flowControl with injected pressure signals so the state
// machine can be driven without a real engine behind it.
func testFlow(th FlowThresholds) (fc *flowControl, setL0 func(int), setBacklog func(uint64)) {
	var l0 int
	var backlog uint64
	o := DefaultOptions()
	o.Flow = th
	fc = newFlowControl(o, false,
		func() (int, int64) { return l0, 0 },
		func() uint64 { return backlog }, nil)
	return fc, func(v int) { l0 = v }, func(v uint64) { backlog = v }
}

// testThresholds: L0 enters Slowdown at 4 / Stop at 8, exits at 3 / 6;
// backlog enters at 100 / 200 bytes, exits at 75 / 150.
func testThresholds() FlowThresholds {
	return FlowThresholds{
		L0Slowdown: 4, L0Stop: 8, L0SlowdownExit: 3, L0StopExit: 6,
		BacklogSlowdown: 100, BacklogStop: 200,
		BacklogSlowdownExit: 75, BacklogStopExit: 150,
		SlowdownBaseDelay: 1_000, SlowdownMaxDelay: 8_000,
	}
}

func TestFlowTransitions(t *testing.T) {
	// Each step recomputes with the given signals and expects a state; the
	// sequence walks every threshold crossing in both directions, including
	// the held (hysteresis) values between exit and enter.
	steps := []struct {
		l0      int
		backlog uint64
		want    FlowState
		note    string
	}{
		{0, 0, FlowOK, "idle"},
		{3, 0, FlowOK, "below L0 slowdown enter"},
		{4, 0, FlowSlowdown, "L0 crosses slowdown enter"},
		{3, 0, FlowSlowdown, "held: at exit, above nothing new"},
		{2, 0, FlowOK, "below L0 slowdown exit"},
		{8, 0, FlowStop, "L0 crosses stop enter"},
		{7, 0, FlowStop, "held: between stop exit and enter"},
		{6, 0, FlowStop, "held: at stop exit"},
		{5, 0, FlowSlowdown, "below stop exit, still above slowdown enter"},
		{0, 0, FlowOK, "drained"},
		{0, 100, FlowSlowdown, "backlog crosses slowdown enter"},
		{0, 80, FlowSlowdown, "held: backlog between exit and enter"},
		{0, 200, FlowStop, "backlog crosses stop enter"},
		{0, 160, FlowStop, "held: backlog between stop exit and enter"},
		{0, 140, FlowSlowdown, "backlog below stop exit"},
		{0, 10, FlowOK, "backlog drained"},
		{4, 190, FlowSlowdown, "both signals in slowdown band take the max"},
		{9, 0, FlowStop, "single signal suffices for stop"},
		{0, 0, FlowOK, "reset"},
	}
	fc, setL0, setBacklog := testFlow(testThresholds())
	var now int64
	for i, s := range steps {
		now += 10
		setL0(s.l0)
		setBacklog(s.backlog)
		fc.recompute(now, "test")
		if got := fc.current(); got != s.want {
			t.Fatalf("step %d (%s): l0=%d backlog=%d: state %v, want %v",
				i, s.note, s.l0, s.backlog, got, s.want)
		}
	}
	st := fc.snapshot()
	if st.SlowdownEntries == 0 || st.StopEntries == 0 {
		t.Fatalf("entry counters not advanced: %+v", st)
	}
	if st.DwellSlowdownNs == 0 || st.DwellStopNs == 0 || st.DwellOKNs == 0 {
		t.Fatalf("dwell accounting missing: %+v", st)
	}
}

func TestFlowDisabledSignalNeverTriggers(t *testing.T) {
	// A zero enter threshold disables the signal entirely — it must neither
	// enter nor hold a state. A zero zone keeps the derived backlog enter
	// thresholds at zero (withDefaults refills zeros otherwise).
	var backlog uint64
	o := DefaultOptions()
	o.ImmZoneBytes = 0
	o.Flow = FlowThresholds{
		L0Slowdown: 4, L0Stop: 8, L0SlowdownExit: 3, L0StopExit: 6,
		BacklogSlowdownExit: 1, BacklogStopExit: 1, // must not resurrect it
	}
	fc := newFlowControl(o, false,
		func() (int, int64) { return 0, 0 },
		func() uint64 { return backlog }, nil)
	setBacklog := func(v uint64) { backlog = v }
	setBacklog(1 << 40)
	fc.recompute(10, "test")
	if got := fc.current(); got != FlowOK {
		t.Fatalf("disabled backlog signal drove state to %v", got)
	}
}

func TestFlowHysteresisNoFlap(t *testing.T) {
	// Oscillating between the enter threshold and the exit band must produce
	// exactly one Slowdown entry, not one per oscillation.
	fc, setL0, _ := testFlow(testThresholds())
	var now int64
	setL0(4)
	now += 10
	fc.recompute(now, "test")
	for i := 0; i < 50; i++ {
		setL0(3) // at exit threshold: held
		now += 10
		fc.recompute(now, "test")
		setL0(4)
		now += 10
		fc.recompute(now, "test")
		if fc.current() != FlowSlowdown {
			t.Fatalf("iteration %d: state %v", i, fc.current())
		}
	}
	if n := fc.snapshot().SlowdownEntries; n != 1 {
		t.Fatalf("flapped: %d slowdown entries, want 1", n)
	}
}

func TestFlowWALSignal(t *testing.T) {
	var wal uint64
	fc, _, _ := testFlow(testThresholds())
	fc.setWALSignal(func() uint64 { return wal }, 1000, 2000)
	wal = 1000
	fc.recompute(10, "test")
	if fc.current() != FlowSlowdown {
		t.Fatalf("wal slowdown enter: %v", fc.current())
	}
	wal = 2000
	fc.recompute(20, "test")
	if fc.current() != FlowStop {
		t.Fatalf("wal stop enter: %v", fc.current())
	}
	wal = 1600 // between stop exit (1500) and enter: held
	fc.recompute(30, "test")
	if fc.current() != FlowStop {
		t.Fatalf("wal stop hold: %v", fc.current())
	}
	wal = 400 // below slowdown exit (500)
	fc.recompute(40, "test")
	if fc.current() != FlowOK {
		t.Fatalf("wal drained: %v", fc.current())
	}
}

func TestFlowSlowdownTokenPacing(t *testing.T) {
	m := testMachine()
	th := m.NewThread(0)
	fc, setL0, _ := testFlow(testThresholds())
	setL0(4)
	fc.recompute(th.Clock.Now(), "test")

	// First admit takes the transition-time token without waiting; each
	// subsequent admit waits one refill interval, and the interval doubles up
	// to the cap — so the inter-admission gaps must be the base, 2x, 4x, ...
	// capped sequence.
	base := testThresholds().SlowdownBaseDelay
	max := testThresholds().SlowdownMaxDelay
	if err := fc.admit(th, 0); err != nil {
		t.Fatal(err)
	}
	if d := fc.snapshot().DelayedWrites; d != 0 {
		t.Fatalf("first token should be free, delayed=%d", d)
	}
	wantGap := base
	prev := th.Clock.Now()
	for i := 0; i < 6; i++ {
		if err := fc.admit(th, 0); err != nil {
			t.Fatal(err)
		}
		gap := th.Clock.Now() - prev
		if gap != wantGap {
			t.Fatalf("admit %d: gap %d, want %d", i, gap, wantGap)
		}
		prev = th.Clock.Now()
		wantGap *= 2
		if wantGap > max {
			wantGap = max
		}
	}
	st := fc.snapshot()
	if st.DelayedWrites != 6 || st.DelayedNs == 0 {
		t.Fatalf("delay accounting: %+v", st)
	}
}

func TestFlowSlowdownDeadlineRejectKeepsToken(t *testing.T) {
	m := testMachine()
	th := m.NewThread(0)
	fc, setL0, _ := testFlow(testThresholds())
	setL0(4)
	fc.recompute(th.Clock.Now(), "test")
	// Burn tokens so the next slot is well in the future.
	for i := 0; i < 5; i++ {
		if err := fc.admit(th, 0); err != nil {
			t.Fatal(err)
		}
	}
	fc.mu.Lock()
	tokenBefore := fc.nextTokenV
	fc.mu.Unlock()
	th2 := m.NewThread(1) // fresh clock, far behind the token queue
	if err := fc.admit(th2, th2.Clock.Now()+1); err == nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("admit past deadline: %v, want ErrStalled", err)
	}
	fc.mu.Lock()
	tokenAfter := fc.nextTokenV
	fc.mu.Unlock()
	if tokenAfter != tokenBefore {
		t.Fatalf("rejected write consumed a token: %d -> %d", tokenBefore, tokenAfter)
	}
	if fc.snapshot().RejectedWrites != 1 {
		t.Fatalf("rejection not counted: %+v", fc.snapshot())
	}
}

func TestFlowStopFastFailAndLegacyBlock(t *testing.T) {
	m := testMachine()
	th := m.NewThread(0)
	fc, setL0, _ := testFlow(testThresholds())
	setL0(8)
	fc.recompute(th.Clock.Now(), "test")

	// A deadline write fails fast without blocking.
	if err := fc.admit(th, th.Clock.Now()+1_000_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("deadline admit in Stop: %v, want ErrStalled", err)
	}

	// A legacy (deadline 0) write blocks until the state de-escalates.
	th2 := m.NewThread(1)
	done := make(chan error, 1)
	go func() { done <- fc.admit(th2, 0) }()
	for fc.snapshot().StopWaits == 0 { // until the writer is parked
		runtime.Gosched()
	}
	select {
	case err := <-done:
		t.Fatalf("legacy admit returned during Stop: %v", err)
	default:
	}
	setL0(0)
	fc.recompute(th.Clock.Now()+500, "test")
	if err := <-done; err != nil {
		t.Fatalf("legacy admit after de-escalation: %v", err)
	}
	st := fc.snapshot()
	if st.StopWaits != 1 || st.RejectedWrites != 1 {
		t.Fatalf("stop accounting: %+v", st)
	}
}

func TestFlowAbortWakesLegacyWaiter(t *testing.T) {
	m := testMachine()
	fc, setL0, _ := testFlow(testThresholds())
	setL0(8)
	fc.recompute(10, "test")
	th2 := m.NewThread(1)
	done := make(chan error, 1)
	go func() { done <- fc.admit(th2, 0) }()
	fc.abort()
	if err := <-done; err != nil {
		t.Fatalf("admit after abort: %v (engine error surfaces elsewhere)", err)
	}
}

func TestFlowEngineDeadlineUnderForcedStop(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)

	if err := e.Put(th, []byte("before"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	e.DebugForceFlowState(th.Clock.Now(), FlowStop)
	if got := e.FlowState(); got != FlowStop {
		t.Fatalf("forced state: %v", got)
	}
	err := e.PutWithDeadline(th, []byte("stalled"), []byte("v"), 1_000)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("PutWithDeadline under Stop: %v, want ErrStalled", err)
	}
	if err := e.DeleteWithDeadline(th, []byte("before"), 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("DeleteWithDeadline under Stop: %v, want ErrStalled", err)
	}
	var b Batch
	b.Put([]byte("batch"), []byte("v"))
	if err := e.ApplyWithDeadline(th, &b, 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("ApplyWithDeadline under Stop: %v, want ErrStalled", err)
	}

	// The rejected writes left nothing behind, and the pre-stall key survived.
	e.DebugUnforceFlowState()
	e.flow.recompute(th.Clock.Now(), "test")
	if got := e.FlowState(); got != FlowOK {
		t.Fatalf("state after unforce: %v", got)
	}
	if _, err := e.Get(th, []byte("stalled")); err == nil {
		t.Fatal("stalled put is visible")
	}
	if _, err := e.Get(th, []byte("batch")); err == nil {
		t.Fatal("stalled batch is visible")
	}
	if v, err := e.Get(th, []byte("before")); err != nil || string(v) != "v" {
		t.Fatalf("pre-stall key: %q, %v", v, err)
	}
	if err := e.Put(th, []byte("after"), []byte("v")); err != nil {
		t.Fatalf("put after recovery from Stop: %v", err)
	}
	if e.FlowStats().RejectedWrites != 3 {
		t.Fatalf("rejection count: %+v", e.FlowStats())
	}
}

func TestFlowPerShardIndependence(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)

	// Pin shard 1 to Stop; writes routed there stall, every other shard
	// admits freely, and the aggregate state reports the most severe shard.
	sh.DebugForceFlowState(th.Clock.Now(), 1, FlowStop)
	if got := sh.FlowState(); got != FlowStop {
		t.Fatalf("aggregate state: %v", got)
	}
	var stalled, admitted int
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		err := sh.PutWithDeadline(th, k, []byte("v"), 1_000)
		switch {
		case err == nil:
			if sh.ShardOf(k) == 1 {
				t.Fatalf("write to stopped shard 1 admitted: %s", k)
			}
			admitted++
		case errors.Is(err, ErrStalled):
			if got := sh.ShardOf(k); got != 1 {
				t.Fatalf("write to healthy shard %d stalled: %s", got, k)
			}
			stalled++
		default:
			t.Fatal(err)
		}
	}
	if stalled == 0 || admitted == 0 {
		t.Fatalf("keys did not cover both halves: stalled=%d admitted=%d", stalled, admitted)
	}
	sh.DebugUnforceFlowState()
	for k := range sh.shards {
		sh.shards[k].flow.recompute(th.Clock.Now(), "test")
	}
	if got := sh.FlowState(); got != FlowOK {
		t.Fatalf("aggregate state after unforce: %v", got)
	}
	if err := sh.Put(th, []byte("post"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if st := sh.FlowStats(); st.RejectedWrites != int64(stalled) {
		t.Fatalf("aggregate rejections %d, want %d", st.RejectedWrites, stalled)
	}
}

func TestFlowCrossShardBatchDeadline(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)

	// Find keys on two different shards, then stop one of them: the
	// cross-shard batch must be rejected before any prepare record exists,
	// leaving both keys absent.
	var k0, k1 []byte
	for i := 0; k0 == nil || k1 == nil; i++ {
		k := []byte(fmt.Sprintf("xkey%06d", i))
		switch sh.ShardOf(k) {
		case 0:
			if k0 == nil {
				k0 = k
			}
		case 1:
			if k1 == nil {
				k1 = k
			}
		}
	}
	sh.DebugForceFlowState(th.Clock.Now(), 1, FlowStop)
	var b Batch
	b.Put(k0, []byte("v0"))
	b.Put(k1, []byte("v1"))
	if err := sh.ApplyWithDeadline(th, &b, 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("cross-shard batch with a stopped participant: %v, want ErrStalled", err)
	}
	if _, err := sh.Get(th, k0); err == nil {
		t.Fatal("rejected batch leaked a key on the healthy shard")
	}
	if _, err := sh.Get(th, k1); err == nil {
		t.Fatal("rejected batch leaked a key on the stopped shard")
	}
	// After release the same batch commits whole.
	sh.DebugUnforceFlowState()
	sh.shards[1].flow.recompute(th.Clock.Now(), "test")
	if err := sh.ApplyWithDeadline(th, &b, 1_000_000); err != nil {
		t.Fatalf("batch after release: %v", err)
	}
	for _, k := range [][]byte{k0, k1} {
		if _, err := sh.Get(th, k); err != nil {
			t.Fatalf("committed batch key %s: %v", k, err)
		}
	}
}

func TestFlowPoolAcquireDeadline(t *testing.T) {
	// With flow control disabled and a single tiny slot per core, a write
	// that cannot get a slot before its deadline must stall instead of
	// blocking forever — exercised through the public deadline API so the
	// admission fast path stays out of the way.
	o := smallOpts()
	o.DisableFlowControl = true
	o.PoolBytes = 256 << 10 // 2 slots of 128 KiB
	o.FlushThreads = 1
	e, th := openEngine(t, testMachine(), o)
	defer e.Close(th)

	val := make([]byte, 4<<10)
	var sawStall bool
	for i := 0; i < 2000; i++ {
		err := e.PutWithDeadline(th, []byte(fmt.Sprintf("k%06d", i)), val, 50)
		if err != nil {
			if !errors.Is(err, ErrStalled) {
				t.Fatal(err)
			}
			sawStall = true
			break
		}
	}
	// Whether a stall occurs depends on flush keeping up; either way the
	// engine must still accept unbounded writes afterwards.
	_ = sawStall
	if err := e.Put(th, []byte("tail"), []byte("v")); err != nil {
		t.Fatalf("legacy write after deadline traffic: %v", err)
	}
	if v, err := e.Get(th, []byte("tail")); err != nil || string(v) != "v" {
		t.Fatalf("tail read: %q %v", v, err)
	}
}

func TestFlowStateString(t *testing.T) {
	for s, want := range map[FlowState]string{
		FlowOK: "ok", FlowSlowdown: "slowdown", FlowStop: "stop", FlowState(9): "invalid",
	} {
		if got := s.String(); got != want {
			t.Fatalf("FlowState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
