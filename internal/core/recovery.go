package core

import (
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/memfilter"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// recover rebuilds the engine after a power failure (Section III-E). Under
// eADR the whole sub-MemTable pool was drained from the caches into the PMem
// backing, so the committed prefix of every sub-MemTable — everything the
// packed header's counter covers — is intact. The DRAM side (sub-skiplists,
// global skiplist, imm-table registry) is gone and is reconstructed here:
//
//  1. re-discover flushed sub-ImmMemTables by scanning the ImmZone headers;
//  2. for each non-Free sub-MemTable, rebuild its sub-skiplist from the data
//     region, flush it into the ImmZone, and mark the slot Free so it can be
//     re-assigned (the paper's recovery resets allocated tables to Free);
//  3. re-run the sub-skiplist compaction to rebuild the global skiplist.
func (e *Engine) recover(poolRegion hw.Region, th *hw.Thread) error {
	p, err := loadGeometry(e.m, poolRegion, e.m.Cores(), e.opts.Elastic, e.opts.MissThreshold)
	if err != nil {
		return err
	}
	p.partition = e.poolPart
	p.filterBits = e.mem.filterBits
	e.pool = p

	// Step 1: ImmZone scan.
	zone := e.immArena.Region()
	addr := zone.Addr
	for addr+immZoneHdrSize <= zone.End() {
		var hdr [immZoneHdrSize]byte
		e.m.PMem.Read(th.Clock, addr, hdr[:])
		if util.Fixed64(hdr[:]) != immHeaderMagic {
			break
		}
		dataLen := util.Fixed64(hdr[8:])
		count := util.Fixed64(hdr[16:])
		maxSeq := util.Fixed64(hdr[24:])
		if addr+immZoneHdrSize+dataLen > zone.End() {
			break
		}
		base := addr + immZoneHdrSize
		list, filter, scanned, hiSeq := e.rebuildList(th, base, dataLen, count)
		t := &immTable{base: base, dataLen: dataLen, count: scanned, maxSeq: maxSeq, list: list, filter: filter}
		if hiSeq > maxSeq {
			t.maxSeq = hiSeq
		}
		e.mem.imms = append(e.mem.imms, t)
		e.bumpSeq(t.maxSeq)
		addr += immZoneHdrSize + dataLen
		addr = (addr + immZoneAlign - 1) &^ (immZoneAlign - 1)
	}
	e.immArena.Restore(addr)

	// Step 2: non-Free sub-MemTables become sub-ImmMemTables in the zone.
	for _, s := range p.slotList() {
		count, state, tail := unpackHdr(s.hdr.Load())
		if state == stateFree || s.size.Load() == 0 {
			continue
		}
		if tail > 0 {
			list, filter, scanned, hiSeq := e.rebuildList(th, s.dataAddr(), tail, count)
			dst, err := e.immArena.Alloc(immZoneHdrSize+tail, immZoneAlign)
			if err != nil {
				// The zone cannot hold the pre-crash tables plus the pool's
				// contents: spill what is already registered down to L0 and
				// retry — the same deferred reclamation the engine performs
				// at runtime.
				e.spillLocked(th)
				dst, err = e.immArena.Alloc(immZoneHdrSize+tail, immZoneAlign)
				if err != nil {
					return fmt.Errorf("cachekv: recovery ImmZone overflow: %w", err)
				}
			}
			hdr := util.PutFixed64(nil, immHeaderMagic)
			hdr = util.PutFixed64(hdr, tail)
			hdr = util.PutFixed64(hdr, scanned)
			hdr = util.PutFixed64(hdr, hiSeq)
			e.m.Cache.NTWrite(th.Clock, dst, hdr)
			buf := make([]byte, tail)
			e.m.PMem.Read(th.Clock, s.dataAddr(), buf)
			e.m.Cache.NTWrite(th.Clock, dst+immZoneHdrSize, buf)
			// Rebase the rebuilt sub-skiplist onto the ImmZone copy: offsets
			// are table-relative, so the list transfers unchanged.
			e.mem.imms = append(e.mem.imms, &immTable{
				base: dst + immZoneHdrSize, dataLen: tail, count: scanned,
				maxSeq: hiSeq, list: list, filter: filter,
			})
			e.bumpSeq(hiSeq)
		}
		p.writeHdr(th, s, packHdr(0, stateFree, 0))
	}

	// Step 3: rebuild the global skiplist.
	if e.opts.SkiplistCompaction {
		for _, t := range e.mem.imms {
			e.compactInto(th, e.mem.global, e.mem.globalFilter, t)
			t.compacted = true
		}
	}
	return nil
}

// rebuildList reconstructs one table's sub-skiplist by scanning its data
// region; it stops after count entries or at the first torn encoding, and
// returns the list, a freshly built negative filter covering every recovered
// key (the DRAM filters are volatile, so recovery rebuilds them before the
// engine serves reads), the entries recovered, and the highest sequence seen.
func (e *Engine) rebuildList(th *hw.Thread, base, limit uint64, count uint64) (*skiplist.List, *memfilter.Filter, uint64, uint64) {
	list := skiplist.New(icmp, base|1)
	expected := int(count)
	// The header's counter is untrusted input here: media corruption (or a
	// torn header write) can inflate it arbitrarily, and it must not size
	// allocations. Clamp to the densest packing the data region could
	// physically hold — the scan below stops at the first torn entry anyway.
	if maxEntries := int(limit/16) + 1; expected > maxEntries || expected < 0 {
		expected = maxEntries
	}
	if expected < 16 {
		expected = 16
	}
	filter := newFilter(expected, e.mem.filterBits)
	var off, scanned, hiSeq uint64
	for scanned < count && off+8 <= limit {
		var hdr [8]byte
		e.m.PMem.Read(th.Clock, base+off, hdr[:])
		blen := uint64(util.Fixed32(hdr[:]))
		if blen == 0 || off+8+blen > limit {
			break
		}
		buf := make([]byte, 8+blen)
		e.m.PMem.Read(th.Clock, base+off, buf)
		ik, val, n, err := kvstore.DecodeEntry(buf)
		if err != nil {
			break
		}
		if ik.Kind() == util.KindRangeDel {
			// Rebuild the DRAM tombstone mirror alongside the filters: the
			// recovered entry is memory-resident again, so Get needs its
			// coverage before the engine serves reads.
			e.rangeTombs.add(lsm.RangeDel{
				Start: append([]byte(nil), ik.UserKey()...),
				End:   append([]byte(nil), val...),
				Seq:   ik.Seq(),
			})
		}
		if filter != nil {
			filter.Add(ik.UserKey())
		}
		list.Insert(ik, util.PutFixed64(nil, off), nil)
		if s := ik.Seq(); s > hiSeq {
			hiSeq = s
		}
		off = align8(off + uint64(n))
		scanned++
	}
	return list, filter, scanned, hiSeq
}

func (e *Engine) bumpSeq(s uint64) {
	for {
		cur := e.seq.Load()
		if s <= cur || e.seq.CompareAndSwap(cur, s) {
			return
		}
	}
}
