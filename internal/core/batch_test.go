package core

import (
	"fmt"
	"testing"

	"cachekv/internal/kvstore"
)

func TestBatchBasic(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := e.Get(th, []byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%03d = %q, %v", i, v, err)
		}
	}
}

func TestBatchWithDeletes(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	e.Put(th, []byte("old"), []byte("v"))
	var b Batch
	b.Put([]byte("new"), []byte("x"))
	b.Delete([]byte("old"))
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(th, []byte("old")); err != kvstore.ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	if v, _ := e.Get(th, []byte("new")); string(v) != "x" {
		t.Fatalf("new key: %q", v)
	}
}

func TestBatchEmptyAndReset(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	var b Batch
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(th, []byte("k")); err != kvstore.ErrNotFound {
		t.Fatal("reset batch still applied")
	}
}

func TestBatchTooLarge(t *testing.T) {
	opts := smallOpts()
	opts.SubMemTableBytes = 64 << 10
	opts.Elastic = false
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	var b Batch
	for i := 0; i < 2000; i++ {
		b.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64))
	}
	if err := e.Apply(th, &b); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestBatchAtomicAcrossCrash(t *testing.T) {
	// Every applied batch must be fully visible after a crash; the partial
	// batch (appended but never committed) must be fully invisible. We can't
	// interrupt a CAS mid-flight, but we can verify committed batches
	// survive whole.
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	for n := 0; n < 50; n++ {
		var b Batch
		for i := 0; i < 20; i++ {
			b.Put([]byte(fmt.Sprintf("b%03d-%02d", n, i)), []byte(fmt.Sprintf("v%d", n)))
		}
		if err := e.Apply(th, &b); err != nil {
			t.Fatal(err)
		}
	}
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	for n := 0; n < 50; n++ {
		for i := 0; i < 20; i++ {
			k := []byte(fmt.Sprintf("b%03d-%02d", n, i))
			v, err := e2.Get(th2, k)
			if err != nil || string(v) != fmt.Sprintf("v%d", n) {
				t.Fatalf("batch %d entry %d lost: %q, %v", n, i, v, err)
			}
		}
	}
}

func TestBatchSealsWhenFull(t *testing.T) {
	opts := smallOpts()
	opts.Elastic = false // keep slot geometry fixed so rollover is forced
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	// Many medium batches must roll over sub-MemTables transparently.
	for n := 0; n < 200; n++ {
		var b Batch
		for i := 0; i < 50; i++ {
			b.Put([]byte(fmt.Sprintf("n%04d-%02d", n, i)), make([]byte, 60))
		}
		if err := e.Apply(th, &b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(th); err != nil { // drain the async flush pipeline
		t.Fatal(err)
	}
	if e.stats.Flushes.Load() == 0 {
		t.Fatal("no seals despite writing far past one sub-MemTable")
	}
	if v, err := e.Get(th, []byte("n0150-25")); err != nil || len(v) != 60 {
		t.Fatalf("mid-rollover batch entry: %v", err)
	}
}

func TestBatchPCSMEagerIndex(t *testing.T) {
	opts := smallOpts()
	opts.LazyIndex = false
	opts.SkiplistCompaction = false
	e, th := openEngine(t, testMachine(), opts)
	defer e.Close(th)
	var b Batch
	for i := 0; i < 300; i++ {
		b.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	// PCSM reads never sync lazily; the eager index must already cover the
	// batch.
	for i := 0; i < 300; i += 17 {
		if _, err := e.Get(th, []byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("eager index missed batch entry: %v", err)
		}
	}
	if e.stats.ReadSyncs.Load() != 0 {
		t.Fatal("PCSM performed lazy syncs")
	}
}
