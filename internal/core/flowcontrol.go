package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/obs"
)

// ErrStalled is returned by deadline-aware writes that cannot be admitted
// before their deadline: the engine is in Stop, or the Slowdown token queue
// (or a slot/ImmZone wait) would push the write past its deadline. The write
// left no trace in any durable structure — retrying later is always safe.
var ErrStalled = errors.New("cachekv: write stalled past deadline (overload)")

// FlowState is the write-admission state of one engine (one shard).
type FlowState int32

// Flow-control states, ordered by severity: transitions escalate immediately
// and de-escalate with hysteresis.
const (
	FlowOK       FlowState = iota // admit freely
	FlowSlowdown                  // delayed admission: paced tokens with exponential refill
	FlowStop                      // deadline writes fail fast; legacy writes block
)

func (s FlowState) String() string {
	switch s {
	case FlowOK:
		return "ok"
	case FlowSlowdown:
		return "slowdown"
	case FlowStop:
		return "stop"
	default:
		return "invalid"
	}
}

// FlowThresholds are the RocksDB-style soft (Slowdown) and hard (Stop)
// pressure bounds, each with a lower exit bound providing hysteresis: a state
// is entered when any signal crosses its enter threshold and left only when
// every signal is back under the exit threshold of the state being held.
// Zero fields take defaults derived from the engine's zone and LSM budgets.
type FlowThresholds struct {
	// L0 file count (the storage component's compaction debt).
	L0Slowdown, L0Stop         int
	L0SlowdownExit, L0StopExit int

	// Backlog bytes: ImmZone occupancy plus sealed-but-unflushed slot bytes
	// (the memory component's flush debt). May legitimately exceed the zone
	// size while seals queue, hence Stop above 100%.
	BacklogSlowdown, BacklogStop         uint64
	BacklogSlowdownExit, BacklogStopExit uint64

	// WAL bytes: the cross-shard two-phase logs (zero when the engine is not
	// part of a sharded deployment; a zero enter threshold disables a signal).
	WALSlowdown, WALStop         uint64
	WALSlowdownExit, WALStopExit uint64

	// Compaction-debt bytes: the storage component's reorganization backlog
	// (L0 bytes once the trigger is reached plus every deeper level's overage;
	// see lsm.Tree.CompactionDebt). Unlike the L0 file count this tracks what
	// the background compaction scheduler still owes in bytes, so admission
	// reacts to a deep-level pileup before it cascades back into L0. Zero
	// enter thresholds disable the signal; engines running a background
	// scheduler (Options.CompactionWorkers > 0) derive them from the LSM
	// level budget.
	DebtSlowdown, DebtStop         uint64
	DebtSlowdownExit, DebtStopExit uint64

	// Slowdown token pacing: the first delayed writer waits SlowdownBaseDelay
	// virtual ns, and each admitted token doubles the refill interval up to
	// SlowdownMaxDelay, so sustained pressure converges on a hard admission
	// rate while short bursts pay almost nothing.
	SlowdownBaseDelay int64
	SlowdownMaxDelay  int64
}

// withDefaults derives unset thresholds from the engine configuration.
func (t FlowThresholds) withDefaults(opts Options) FlowThresholds {
	trigger := opts.LSM.L0CompactionTrigger
	if trigger <= 0 {
		trigger = 4
	}
	if t.L0Slowdown == 0 {
		t.L0Slowdown = 2 * trigger
	}
	if t.L0Stop == 0 {
		t.L0Stop = 4 * trigger
	}
	if t.L0SlowdownExit == 0 {
		t.L0SlowdownExit = t.L0Slowdown * 3 / 4
	}
	if t.L0StopExit == 0 {
		t.L0StopExit = t.L0Stop * 3 / 4
	}
	zone := opts.ImmZoneBytes
	if t.BacklogSlowdown == 0 {
		t.BacklogSlowdown = zone * 85 / 100
	}
	if t.BacklogStop == 0 {
		t.BacklogStop = zone * 110 / 100
	}
	if t.BacklogSlowdownExit == 0 {
		t.BacklogSlowdownExit = t.BacklogSlowdown * 3 / 4
	}
	if t.BacklogStopExit == 0 {
		t.BacklogStopExit = t.BacklogStop * 3 / 4
	}
	// WAL thresholds stay zero (disabled) until a sharded deployment installs
	// its two-phase log signal; OpenSharded fills them from the log capacity.
	if t.WALSlowdownExit == 0 {
		t.WALSlowdownExit = t.WALSlowdown / 2
	}
	if t.WALStopExit == 0 {
		t.WALStopExit = t.WALStop * 3 / 4
	}
	// The debt signal arms only under a background compaction scheduler —
	// without one the inline spill-path compaction clears debt synchronously
	// and the L0 count already tells the whole story.
	if opts.CompactionWorkers > 0 {
		base := opts.LSM.BaseLevelBytes
		if base <= 0 {
			base = 8 << 20
		}
		if t.DebtSlowdown == 0 {
			t.DebtSlowdown = uint64(base)
		}
		if t.DebtStop == 0 {
			t.DebtStop = uint64(4 * base)
		}
	}
	if t.DebtSlowdownExit == 0 {
		t.DebtSlowdownExit = t.DebtSlowdown / 2
	}
	if t.DebtStopExit == 0 {
		t.DebtStopExit = t.DebtStop * 3 / 4
	}
	if t.SlowdownBaseDelay == 0 {
		t.SlowdownBaseDelay = 2_000 // 2µs virtual
	}
	if t.SlowdownMaxDelay == 0 {
		t.SlowdownMaxDelay = 1 << 18 // ~262µs virtual
	}
	return t
}

// FlowStats is a point-in-time snapshot of one engine's flow-control
// counters (aggregated across shards by the sharded router).
type FlowStats struct {
	State           FlowState
	SlowdownEntries int64 // transitions into Slowdown
	StopEntries     int64 // transitions into Stop
	DelayedWrites   int64 // writes admitted after a paced token wait
	DelayedNs       int64 // total virtual ns spent in token waits
	RejectedWrites  int64 // deadline writes refused with ErrStalled
	StopWaits       int64 // legacy (no-deadline) writes that blocked in Stop
	StopWaitNs      int64 // total virtual ns legacy writes spent blocked
	DwellOKNs       int64 // completed-dwell virtual ns per state
	DwellSlowdownNs int64
	DwellStopNs     int64
}

// flowControl is one engine's admission state machine. Signals are polled on
// every flush/spill/compaction lifecycle event (never per-write), so the hot
// path costs one atomic load while the state is OK.
type flowControl struct {
	th    FlowThresholds
	shard int
	trace *obs.Trace

	disabled bool

	// shapeLegacy extends admission shaping (Slowdown pacing, Stop blocking)
	// to deadline-0 writes. It is set only when the engine is opened with a
	// non-zero WriteStallDeadline — i.e. the operator explicitly turned on
	// overload protection. Without it, legacy writes bypass shaping entirely:
	// token pacing couples the writer's virtual clock to background lifecycle
	// timing, and an unconfigured engine must keep the byte-identical
	// deterministic virtual schedule of the pre-flow-control write path.
	shapeLegacy bool

	// Pressure signals, installed at Open. wal is nil until a sharded
	// deployment wires its two-phase log size (installed under mu); debt is
	// nil unless a background compaction scheduler runs.
	l0      func() (files int, bytes int64)
	backlog func() uint64
	debt    func() uint64

	mu         sync.Mutex
	cond       *sync.Cond
	state      atomic.Int32 // FlowState, readable without mu
	wal        func() uint64
	lastTransV int64 // virtual time of the last transition
	nextTokenV int64 // next Slowdown admission slot
	refillNs   int64 // current token refill interval
	forced     bool  // test/harness override: recompute becomes a no-op
	aborted    bool

	dwellHist [3]*histogram.H
	dwellNs   [3]atomic.Int64

	slowdownEntries atomic.Int64
	stopEntries     atomic.Int64
	delayedWrites   atomic.Int64
	delayedNs       atomic.Int64
	rejectedWrites  atomic.Int64
	stopWaits       atomic.Int64
	stopWaitNs      atomic.Int64
}

func newFlowControl(opts Options, disabled bool, l0 func() (int, int64), backlog, debt func() uint64) *flowControl {
	fc := &flowControl{
		th:          opts.Flow.withDefaults(opts),
		shard:       opts.Shard,
		trace:       opts.Trace,
		disabled:    disabled,
		shapeLegacy: opts.WriteStallDeadline != 0 || opts.ShapeLegacyWrites,
		l0:          l0,
		backlog:     backlog,
		debt:        debt,
	}
	fc.cond = sync.NewCond(&fc.mu)
	fc.refillNs = fc.th.SlowdownBaseDelay
	for i := range fc.dwellHist {
		fc.dwellHist[i] = histogram.New()
	}
	return fc
}

// setWALSignal installs the two-phase log size signal and its thresholds
// (called once by OpenSharded after the logs are allocated).
func (fc *flowControl) setWALSignal(f func() uint64, slowdown, stop uint64) {
	if fc == nil {
		return
	}
	fc.mu.Lock()
	fc.wal = f
	fc.th.WALSlowdown = slowdown
	fc.th.WALStop = stop
	fc.th.WALSlowdownExit = slowdown / 2
	fc.th.WALStopExit = stop * 3 / 4
	fc.mu.Unlock()
}

// enterLevel maps one signal to the state it demands via enter thresholds;
// holdLevel uses the lower exit thresholds (the state the signal can still
// justify holding). A zero enter threshold disables the signal.
func level3(v, slow, stop uint64) FlowState {
	switch {
	case stop > 0 && v >= stop:
		return FlowStop
	case slow > 0 && v >= slow:
		return FlowSlowdown
	default:
		return FlowOK
	}
}

func (fc *flowControl) rawLevelLocked(l0 int, backlog, wal, debt uint64) FlowState {
	s := level3(uint64(l0), uint64(fc.th.L0Slowdown), uint64(fc.th.L0Stop))
	if b := level3(backlog, fc.th.BacklogSlowdown, fc.th.BacklogStop); b > s {
		s = b
	}
	if w := level3(wal, fc.th.WALSlowdown, fc.th.WALStop); w > s {
		s = w
	}
	if d := level3(debt, fc.th.DebtSlowdown, fc.th.DebtStop); d > s {
		s = d
	}
	return s
}

func (fc *flowControl) holdLevelLocked(l0 int, backlog, wal, debt uint64) FlowState {
	// A disabled signal (zero enter threshold) must not hold a state either.
	hold := func(v, slowEnter, slowExit, stopEnter, stopExit uint64) FlowState {
		switch {
		case stopEnter > 0 && v >= stopExit:
			return FlowStop
		case slowEnter > 0 && v >= slowExit:
			return FlowSlowdown
		default:
			return FlowOK
		}
	}
	s := hold(uint64(l0), uint64(fc.th.L0Slowdown), uint64(fc.th.L0SlowdownExit),
		uint64(fc.th.L0Stop), uint64(fc.th.L0StopExit))
	if b := hold(backlog, fc.th.BacklogSlowdown, fc.th.BacklogSlowdownExit,
		fc.th.BacklogStop, fc.th.BacklogStopExit); b > s {
		s = b
	}
	if w := hold(wal, fc.th.WALSlowdown, fc.th.WALSlowdownExit,
		fc.th.WALStop, fc.th.WALStopExit); w > s {
		s = w
	}
	if d := hold(debt, fc.th.DebtSlowdown, fc.th.DebtSlowdownExit,
		fc.th.DebtStop, fc.th.DebtStopExit); d > s {
		s = d
	}
	return s
}

// recompute re-evaluates the pressure signals and transitions the state
// machine. Called from lifecycle events (seal, flush end, spill end,
// compaction end) — escalation is immediate, de-escalation held back by the
// exit thresholds so the state cannot flap around a boundary.
func (fc *flowControl) recompute(at int64, reason string) {
	if fc == nil || fc.disabled {
		return
	}
	// Signals take their own locks (tree mu, arena atomics); evaluate them
	// before fc.mu so admission is never blocked behind a signal read.
	files, _ := fc.l0()
	backlog := fc.backlog()
	var debt uint64
	if fc.debt != nil {
		debt = fc.debt()
	}

	fc.mu.Lock()
	if fc.forced || fc.aborted {
		fc.mu.Unlock()
		return
	}
	var wal uint64
	if fc.wal != nil {
		wal = fc.wal()
	}
	cur := FlowState(fc.state.Load())
	next := fc.rawLevelLocked(files, backlog, wal, debt)
	if hold := fc.holdLevelLocked(files, backlog, wal, debt); cur > next && cur <= hold {
		next = cur // hysteresis: signals dropped below enter but not below exit
	} else if cur > next && hold > next {
		next = hold // step down one severity at most as far as exits allow
	}
	if next != cur {
		fc.transitionLocked(at, cur, next, reason, files, backlog, wal, debt)
	}
	fc.mu.Unlock()
}

// transitionLocked performs the state change bookkeeping under fc.mu.
func (fc *flowControl) transitionLocked(at int64, from, to FlowState, reason string, l0 int, backlog, wal, debt uint64) {
	if d := at - fc.lastTransV; d > 0 {
		fc.dwellHist[from].Record(d)
		fc.dwellNs[from].Add(d)
		fc.lastTransV = at
	}
	fc.state.Store(int32(to))
	switch to {
	case FlowSlowdown:
		fc.slowdownEntries.Add(1)
		if from == FlowOK {
			// A fresh Slowdown starts pacing from the base interval.
			fc.refillNs = fc.th.SlowdownBaseDelay
			fc.nextTokenV = at
		}
	case FlowStop:
		fc.stopEntries.Add(1)
	case FlowOK:
		fc.refillNs = fc.th.SlowdownBaseDelay
	}
	fc.trace.Emit(at, "flow_state", "shard", fc.shard,
		"from", from.String(), "to", to.String(), "reason", reason,
		"l0_files", l0, "backlog_bytes", backlog, "wal_bytes", wal,
		"debt_bytes", debt)
	fc.cond.Broadcast()
}

// admit gates one write. deadlineV is an absolute virtual-clock deadline
// (0 = none, the legacy contract). In OK it is one atomic load. In Slowdown
// the write takes the next token and advances its clock to that slot — or is
// rejected without consuming a token when the slot lies past its deadline,
// so rejected writers cannot stretch the queue for everyone behind them. In
// Stop a deadline write fails fast and a legacy write blocks until the state
// de-escalates.
// admitWrite is admit as called from the engine's write paths: a deadline-0
// write on an engine with no configured WriteStallDeadline skips shaping (see
// shapeLegacy). State tracking, tracing, and metrics continue regardless —
// only the foreground clock coupling is gated.
func (fc *flowControl) admitWrite(th *hw.Thread, deadlineV int64) error {
	if fc == nil || (deadlineV == 0 && !fc.shapeLegacy) {
		return nil
	}
	return fc.admit(th, deadlineV)
}

func (fc *flowControl) admit(th *hw.Thread, deadlineV int64) error {
	if fc == nil || fc.disabled {
		return nil
	}
	if FlowState(fc.state.Load()) == FlowOK {
		return nil
	}
	for {
		fc.mu.Lock()
		if fc.aborted {
			fc.mu.Unlock()
			return nil // the engine error surfaces at the caller's err() check
		}
		switch FlowState(fc.state.Load()) {
		case FlowOK:
			fc.mu.Unlock()
			return nil
		case FlowSlowdown:
			now := th.Clock.Now()
			turn := fc.nextTokenV
			if turn < now {
				turn = now
			}
			if deadlineV > 0 && turn > deadlineV {
				fc.mu.Unlock()
				fc.rejectedWrites.Add(1)
				fc.trace.Emit(now, "write_stall", "shard", fc.shard, "state", "slowdown",
					"next_token_v_ns", turn, "deadline_v_ns", deadlineV)
				return ErrStalled
			}
			fc.nextTokenV = turn + fc.refillNs
			if fc.refillNs < fc.th.SlowdownMaxDelay {
				fc.refillNs *= 2
				if fc.refillNs > fc.th.SlowdownMaxDelay {
					fc.refillNs = fc.th.SlowdownMaxDelay
				}
			}
			fc.mu.Unlock()
			if turn > now {
				fc.delayedWrites.Add(1)
				fc.delayedNs.Add(turn - now)
				fc.trace.Emit(turn, "write_delay", "shard", fc.shard, "wait_ns", turn-now)
				th.InPhase(hw.PhaseOther, func() {
					th.Clock.AdvanceTo(turn)
				})
			}
			return nil
		default: // FlowStop
			if deadlineV > 0 {
				fc.mu.Unlock()
				fc.rejectedWrites.Add(1)
				fc.trace.Emit(th.Clock.Now(), "write_stall", "shard", fc.shard, "state", "stop",
					"deadline_v_ns", deadlineV)
				return ErrStalled
			}
			fc.stopWaits.Add(1)
			start := th.Clock.Now()
			for FlowState(fc.state.Load()) == FlowStop && !fc.aborted {
				fc.cond.Wait()
			}
			wakeV := fc.lastTransV
			fc.mu.Unlock()
			if wakeV > start {
				th.InPhase(hw.PhaseOther, func() {
					th.Clock.AdvanceTo(wakeV)
				})
			}
			fc.stopWaitNs.Add(th.Clock.Now() - start)
			fc.trace.Emit(th.Clock.Now(), "write_stop_wait", "shard", fc.shard,
				"wait_ns", th.Clock.Now()-start)
			// Loop: the state is now Slowdown or OK (or Stop again).
		}
	}
}

// abort wakes legacy writers blocked in Stop so they observe the engine
// failure (wired into Engine.fail).
func (fc *flowControl) abort() {
	if fc == nil {
		return
	}
	fc.mu.Lock()
	fc.aborted = true
	fc.cond.Broadcast()
	fc.mu.Unlock()
}

// force pins the state machine to state s at virtual time at and suspends
// recompute until forceOff. Deterministic crash-schedule harnesses use it to
// script stall phases without real (and nondeterministic) backlog pressure.
func (fc *flowControl) force(at int64, s FlowState) {
	if fc == nil {
		return
	}
	fc.mu.Lock()
	fc.forced = true
	if cur := FlowState(fc.state.Load()); cur != s {
		fc.transitionLocked(at, cur, s, "forced", 0, 0, 0, 0)
	}
	fc.mu.Unlock()
}

// forceOff releases a force pin; the next lifecycle event re-evaluates the
// real signals.
func (fc *flowControl) forceOff() {
	if fc == nil {
		return
	}
	fc.mu.Lock()
	fc.forced = false
	fc.mu.Unlock()
}

// current returns the state without taking the mutex.
func (fc *flowControl) current() FlowState {
	if fc == nil {
		return FlowOK
	}
	return FlowState(fc.state.Load())
}

// snapshot returns the counter snapshot.
func (fc *flowControl) snapshot() FlowStats {
	if fc == nil {
		return FlowStats{}
	}
	return FlowStats{
		State:           fc.current(),
		SlowdownEntries: fc.slowdownEntries.Load(),
		StopEntries:     fc.stopEntries.Load(),
		DelayedWrites:   fc.delayedWrites.Load(),
		DelayedNs:       fc.delayedNs.Load(),
		RejectedWrites:  fc.rejectedWrites.Load(),
		StopWaits:       fc.stopWaits.Load(),
		StopWaitNs:      fc.stopWaitNs.Load(),
		DwellOKNs:       fc.dwellNs[FlowOK].Load(),
		DwellSlowdownNs: fc.dwellNs[FlowSlowdown].Load(),
		DwellStopNs:     fc.dwellNs[FlowStop].Load(),
	}
}

// snapshotAt is snapshot with the in-progress dwell segment folded in: a run
// sampled while still under pressure books the open lastTransV..at stretch
// into the current state's dwell, so "time spent in Slowdown/Stop" does not
// depend on whether the state happened to de-escalate before the sample.
func (fc *flowControl) snapshotAt(at int64) FlowStats {
	if fc == nil {
		return FlowStats{}
	}
	fc.mu.Lock()
	open := at - fc.lastTransV
	cur := FlowState(fc.state.Load())
	fc.mu.Unlock()
	s := fc.snapshot()
	if open > 0 {
		switch cur {
		case FlowOK:
			s.DwellOKNs += open
		case FlowSlowdown:
			s.DwellSlowdownNs += open
		case FlowStop:
			s.DwellStopNs += open
		}
	}
	return s
}

// Add merges another snapshot (the sharded router's aggregation): counters
// sum, State takes the most severe shard.
func (s FlowStats) Add(o FlowStats) FlowStats {
	if o.State > s.State {
		s.State = o.State
	}
	s.SlowdownEntries += o.SlowdownEntries
	s.StopEntries += o.StopEntries
	s.DelayedWrites += o.DelayedWrites
	s.DelayedNs += o.DelayedNs
	s.RejectedWrites += o.RejectedWrites
	s.StopWaits += o.StopWaits
	s.StopWaitNs += o.StopWaitNs
	s.DwellOKNs += o.DwellOKNs
	s.DwellSlowdownNs += o.DwellSlowdownNs
	s.DwellStopNs += o.DwellStopNs
	return s
}

// registerObs publishes the flow-control surface on r under prefix.
func (fc *flowControl) registerObs(r *obs.Registry, prefix string) {
	r.Gauge(prefix+"flow_state", func() float64 { return float64(fc.current()) })
	r.Counter(prefix+"flow_slowdown_entries", func() int64 { return fc.slowdownEntries.Load() })
	r.Counter(prefix+"flow_stop_entries", func() int64 { return fc.stopEntries.Load() })
	r.Counter(prefix+"flow_writes_delayed", func() int64 { return fc.delayedWrites.Load() })
	r.Counter(prefix+"flow_delay_ns", func() int64 { return fc.delayedNs.Load() })
	r.Counter(prefix+"flow_writes_rejected", func() int64 { return fc.rejectedWrites.Load() })
	r.Counter(prefix+"flow_stop_waits", func() int64 { return fc.stopWaits.Load() })
	r.Counter(prefix+"flow_stop_wait_ns", func() int64 { return fc.stopWaitNs.Load() })
	r.Counter(prefix+"flow_dwell_ok_ns", func() int64 { return fc.dwellNs[FlowOK].Load() })
	r.Counter(prefix+"flow_dwell_slowdown_ns", func() int64 { return fc.dwellNs[FlowSlowdown].Load() })
	r.Counter(prefix+"flow_dwell_stop_ns", func() int64 { return fc.dwellNs[FlowStop].Load() })
	r.Gauge(prefix+"flow_dwell_slowdown_mean_ns", func() float64 { return fc.dwellHist[FlowSlowdown].Mean() })
	r.Gauge(prefix+"flow_dwell_stop_mean_ns", func() float64 { return fc.dwellHist[FlowStop].Mean() })
	if fc.debt != nil {
		r.Gauge(prefix+"flow_compaction_debt_bytes", func() float64 { return float64(fc.debt()) })
	}
}

// absDeadline converts a relative deadline (ns on the virtual clock; <= 0
// means none) into the absolute deadline admit and the wait loops compare
// against.
func absDeadline(th *hw.Thread, deadlineNs int64) int64 {
	if deadlineNs <= 0 {
		return 0
	}
	return th.Clock.Now() + deadlineNs
}

// Backoff bounds for deadline-aware waits on host-side condition variables
// (slot allocation, ImmZone space): each retry advances the virtual clock by
// a doubling, capped step so a stalled writer's virtual wait converges on its
// deadline instead of spinning at zero cost or waiting forever.
const (
	stallBackoffBaseNs = 1 << 10 // ~1µs virtual
	stallBackoffMaxNs  = 1 << 16 // ~65µs virtual
)
