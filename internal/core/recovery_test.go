package core

import (
	"fmt"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
)

// crashAndReopen simulates power failure and recovers a fresh engine over the
// same machine (DRAM structures are dropped by discarding the old Engine).
func crashAndReopen(t *testing.T, m *hw.Machine, opts Options) (*Engine, *hw.Thread) {
	t.Helper()
	m.Crash()
	m.Recover()
	th := m.NewThread(0)
	e, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	return e, th
}

func TestRecoveryFromActiveSubMemTables(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	for i := 0; i < 500; i++ {
		if err := e.Put(th, []byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No FlushAll, no Close: everything lives in the (persistent) cache.
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, err := e2.Get(th2, k)
		if err != nil {
			t.Fatalf("lost %s across eADR crash: %v", k, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q", k, v)
		}
	}
}

func TestRecoveryFromImmZoneAndTree(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	opts.ImmZoneBytes = 512 << 10
	e, th := openEngine(t, m, opts)
	n := 20000
	for i := 0; i < n; i++ {
		if err := e.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let flushes and spills land, then crash without closing.
	e.FlushAll(th)
	if e.stats.Spills.Load() == 0 {
		t.Fatal("test needs spills to be meaningful")
	}
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	for i := 0; i < n; i += 307 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := e2.Get(th2, k)
		if err != nil {
			t.Fatalf("lost %s: %v", k, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q", k, v)
		}
	}
}

func TestRecoveryPreservesFreshness(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	// Old versions forced down into flushed tables...
	for i := 0; i < 5000; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%04d", i%500)), []byte(fmt.Sprintf("old%d", i)))
	}
	e.FlushAll(th)
	// ...then fresh versions left in active sub-MemTables at crash time.
	for i := 0; i < 500; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("new%d", i)))
	}
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	for i := 0; i < 500; i += 17 {
		k := []byte(fmt.Sprintf("key%04d", i))
		v, err := e2.Get(th2, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != fmt.Sprintf("new%d", i) {
			t.Fatalf("recovery resurrected stale value for %s: %q", k, v)
		}
	}
}

func TestRecoveryPreservesTombstones(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	e.Put(th, []byte("doomed"), []byte("v"))
	e.FlushAll(th)
	e.Delete(th, []byte("doomed"))
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	if _, err := e2.Get(th2, []byte("doomed")); err != kvstore.ErrNotFound {
		t.Fatalf("tombstone lost across crash: %v", err)
	}
}

func TestRecoveredEngineKeepsWorking(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	for i := 0; i < 1000; i++ {
		e.Put(th, []byte(fmt.Sprintf("pre%05d", i)), []byte("x"))
	}
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	// New writes must get sequence numbers above everything recovered.
	for i := 0; i < 1000; i++ {
		e2.Put(th2, []byte(fmt.Sprintf("pre%05d", i)), []byte("y"))
	}
	for i := 0; i < 1000; i += 97 {
		v, err := e2.Get(th2, []byte(fmt.Sprintf("pre%05d", i)))
		if err != nil || string(v) != "y" {
			t.Fatalf("post-recovery write lost: %q, %v", v, err)
		}
	}
	if err := e2.FlushAll(th2); err != nil {
		t.Fatal(err)
	}
}

func TestADRCrashLosesUnflushedWrites(t *testing.T) {
	// Control experiment: on an ADR machine (volatile caches) the same crash
	// loses data that only ever lived in the cache, proving the eADR tests
	// above are not vacuous.
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 1 << 30
	cfg.Cache.Domain = cache.ADR
	m := hw.NewMachine(cfg)
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	for i := 0; i < 100; i++ {
		e.Put(th, []byte(fmt.Sprintf("key%03d", i)), []byte("v"))
	}
	_ = e // crash without flush
	m.Crash()
	m.Recover()
	th2 := m.NewThread(0)
	e2, err := Open(m, opts, th2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close(th2)
	lost := 0
	for i := 0; i < 100; i++ {
		if _, err := e2.Get(th2, []byte(fmt.Sprintf("key%03d", i))); err == kvstore.ErrNotFound {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("ADR crash lost nothing — persistence domains are not being modeled")
	}
}

func TestDoubleCrash(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	for i := 0; i < 300; i++ {
		e.Put(th, []byte(fmt.Sprintf("a%04d", i)), []byte("1"))
	}
	e2, th2 := crashAndReopen(t, m, opts)
	for i := 0; i < 300; i++ {
		e2.Put(th2, []byte(fmt.Sprintf("b%04d", i)), []byte("2"))
	}
	e3, th3 := crashAndReopen(t, m, opts)
	defer e3.Close(th3)
	for i := 0; i < 300; i += 29 {
		if v, err := e3.Get(th3, []byte(fmt.Sprintf("a%04d", i))); err != nil || string(v) != "1" {
			t.Fatalf("first-generation key lost: %q, %v", v, err)
		}
		if v, err := e3.Get(th3, []byte(fmt.Sprintf("b%04d", i))); err != nil || string(v) != "2" {
			t.Fatalf("second-generation key lost: %q, %v", v, err)
		}
	}
}
