package core

import (
	"fmt"
	"testing"

	"cachekv/internal/kvstore"
)

// TestFaultImmZoneTooSmallForTable verifies the engine fails cleanly (rather
// than deadlocking) when a sub-MemTable cannot fit the ImmZone at all.
func TestFaultImmZoneTooSmallForTable(t *testing.T) {
	m := testMachine()
	opts := DefaultOptions()
	opts.PoolBytes = 8 << 20
	opts.SubMemTableBytes = 4 << 20
	opts.ImmZoneBytes = 1 << 20 // smaller than one table: config error
	opts.FSBytes = 64 << 20
	th := m.NewThread(0)
	e, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(th)
	var lastErr error
	for i := 0; i < 200000; i++ {
		if lastErr = e.Put(th, []byte(fmt.Sprintf("k%08d", i)), make([]byte, 64)); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("engine accepted writes forever despite an impossible ImmZone")
	}
}

// TestFaultFSExhaustion verifies the storage layer's out-of-space error
// surfaces through the engine instead of hanging background threads.
func TestFaultFSExhaustion(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	opts.FSBytes = 4 << 20 // tiny SSTable space: spills must run out
	th := m.NewThread(0)
	e, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(th)
	var lastErr error
	for i := 0; i < 500000; i++ {
		if lastErr = e.Put(th, []byte(fmt.Sprintf("k%08d", i%100000)), make([]byte, 64)); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = e.FlushAll(th)
	}
	if lastErr == nil {
		t.Fatal("no error despite exhausting the SSTable file layer")
	}
}

// TestFaultOperationsAfterFailure verifies the engine stays failed (and
// consistent about it) once a background error is recorded.
func TestFaultOperationsAfterFailure(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	defer e.Close(th)
	e.fail(fmt.Errorf("injected failure"))
	if err := e.Put(th, []byte("k"), []byte("v")); err == nil {
		t.Fatal("Put succeeded on a failed engine")
	}
	if _, err := e.Get(th, []byte("k")); err == nil || err == kvstore.ErrNotFound {
		t.Fatalf("Get on failed engine returned %v", err)
	}
	if err := e.FlushAll(th); err == nil {
		t.Fatal("FlushAll succeeded on a failed engine")
	}
}

// TestFaultHaltStopsEverything verifies Halt makes all operations fail and
// Close still terminates cleanly.
func TestFaultHaltStopsEverything(t *testing.T) {
	m := testMachine()
	e, th := openEngine(t, m, smallOpts())
	for i := 0; i < 5000; i++ {
		e.Put(th, []byte(fmt.Sprintf("k%06d", i)), make([]byte, 64))
	}
	e.Halt()
	if err := e.Put(th, []byte("post"), []byte("v")); err == nil {
		t.Fatal("Put succeeded after Halt")
	}
	if err := e.Close(th); err == nil {
		t.Fatal("Close after Halt should surface the crash-stop")
	}
}
