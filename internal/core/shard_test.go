package core

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/util"
)

func smallShardedOpts(shards int) ShardedOptions {
	return ShardedOptions{
		Shards: shards,
		Base: func() Options {
			o := DefaultOptions()
			o.PoolBytes = 1 << 20 // total, split across shards
			o.SubMemTableBytes = 128 << 10
			o.ImmZoneBytes = 4 << 20
			o.FSBytes = 64 << 20
			return o
		}(),
	}
}

func openSharded(t *testing.T, m *hw.Machine, so ShardedOptions) (*Sharded, *hw.Thread) {
	t.Helper()
	th := m.NewThread(0)
	sh, err := OpenSharded(m, so, th)
	if err != nil {
		t.Fatal(err)
	}
	return sh, th
}

func TestShardedPutGetDeleteScan(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)

	n := 3000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := sh.Put(th, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := sh.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q", k, v)
		}
	}
	if _, err := sh.Get(th, []byte("absent")); err != kvstore.ErrNotFound {
		t.Fatalf("absent key: %v", err)
	}

	// Scan merges the shards back into one ordered keyspace.
	var last string
	seen := 0
	if _, err := sh.Scan(th, nil, n+10, func(k, v []byte) bool {
		if string(k) <= last {
			t.Fatalf("scan out of order: %q after %q", k, last)
		}
		last = string(k)
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scan saw %d of %d keys", seen, n)
	}

	if err := sh.Delete(th, []byte("key000042")); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Get(th, []byte("key000042")); err != kvstore.ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestShardRoutingStable(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("route%d", i))
		want := int(util.Hash64(k) % 4)
		if got := sh.ShardOf(k); got != want {
			t.Fatalf("ShardOf(%s) = %d, want %d", k, got, want)
		}
		if got := sh.ShardOf(k); got != want {
			t.Fatalf("ShardOf(%s) unstable", k)
		}
	}
}

func TestShardedWriterPinning(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(8))
	defer sh.Close(th)
	cores := m.Cores()
	for k := 0; k < sh.Shards(); k++ {
		if got, want := sh.WriterCore(k), k%cores; got != want {
			t.Fatalf("shard %d writer pinned to core %d, want %d", k, got, want)
		}
	}
}

func TestShardedConcurrentWritersGroupCommit(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)

	const writers, per = 8, 400
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-key%05d", w, i))
				if err := sh.Put(wth, k, []byte(fmt.Sprintf("w%d-v%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("w%d-key%05d", w, i))
			v, err := sh.Get(th, k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			if string(v) != fmt.Sprintf("w%d-v%d", w, i) {
				t.Fatalf("Get(%s) = %q", k, v)
			}
		}
	}

	groups, ops, _ := sh.GroupCommitStats()
	if ops != writers*per {
		t.Fatalf("group commit saw %d ops, want %d", ops, writers*per)
	}
	if groups <= 0 || groups > ops {
		t.Fatalf("implausible group count %d for %d ops", groups, ops)
	}
	batch, wait := sh.GroupCommitHists()
	if batch.Count() != groups {
		t.Fatalf("batch histogram count %d != groups %d", batch.Count(), groups)
	}
	if wait.Count() != ops {
		t.Fatalf("wait histogram count %d != ops %d", wait.Count(), ops)
	}
}

func crashAndReopenSharded(t *testing.T, m *hw.Machine, so ShardedOptions) (*Sharded, *hw.Thread) {
	t.Helper()
	m.Crash()
	m.Recover()
	th := m.NewThread(0)
	sh, err := OpenSharded(m, so, th)
	if err != nil {
		t.Fatal(err)
	}
	return sh, th
}

func TestShardedCrashRecovery(t *testing.T) {
	m := testMachine()
	so := smallShardedOpts(4)
	sh, th := openSharded(t, m, so)
	n := 2000
	for i := 0; i < n; i++ {
		if err := sh.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sh.Halt()
	sh2, th2 := crashAndReopenSharded(t, m, so)
	defer sh2.Close(th2)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := sh2.Get(th2, k)
		if err != nil {
			t.Fatalf("lost %s across eADR crash: %v", k, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q", k, v)
		}
	}
	// New writes after recovery must take fresh sequence numbers.
	if err := sh2.Put(th2, []byte("post-crash"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, _ := sh2.Get(th2, []byte("post-crash")); string(v) != "ok" {
		t.Fatalf("post-crash write lost")
	}
}

func TestShardedCrossShardBatchCommitAndRecovery(t *testing.T) {
	m := testMachine()
	so := smallShardedOpts(4)
	sh, th := openSharded(t, m, so)

	// Build batches guaranteed to span at least two shards.
	nBatches := 50
	for b := 0; b < nBatches; b++ {
		var batch Batch
		shardsHit := map[int]bool{}
		for j := 0; j < 6; j++ {
			k := []byte(fmt.Sprintf("xb%03d-%d", b, j))
			shardsHit[sh.ShardOf(k)] = true
			batch.Put(k, []byte(fmt.Sprintf("xv%d-%d", b, j)))
		}
		if len(shardsHit) < 2 {
			t.Fatalf("test batch %d does not span shards", b)
		}
		if err := sh.Apply(th, &batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, cross := sh.GroupCommitStats(); cross != int64(nBatches) {
		t.Fatalf("cross-shard batch count %d, want %d", cross, nBatches)
	}

	sh.Halt()
	sh2, th2 := crashAndReopenSharded(t, m, so)
	defer sh2.Close(th2)
	for b := 0; b < nBatches; b++ {
		for j := 0; j < 6; j++ {
			k := []byte(fmt.Sprintf("xb%03d-%d", b, j))
			v, err := sh2.Get(th2, k)
			if err != nil {
				t.Fatalf("batch %d key %s missing after recovery: %v", b, k, err)
			}
			if string(v) != fmt.Sprintf("xv%d-%d", b, j) {
				t.Fatalf("batch %d key %s = %q after recovery", b, k, v)
			}
		}
	}
}

func TestShardedInDoubtBatchDiscarded(t *testing.T) {
	m := testMachine()
	so := smallShardedOpts(4)
	sh, th := openSharded(t, m, so)

	// A prepare record with no commit marker: the batch must stay invisible.
	p := &shardPortion{shard: 1}
	p.ops = append(p.ops, batchOp{key: []byte("indoubt-key"), value: []byte("x"), kind: util.KindValue})
	p.seqs = append(p.seqs, sh.seq.Add(1))
	if _, err := sh.tpc.prepare[1].Append(th, encodePrepare(777, p)); err != nil {
		t.Fatal(err)
	}

	// And a fully committed batch that must survive.
	var batch Batch
	batch.Put([]byte("committed-a"), []byte("1"))
	batch.Put([]byte("committed-b"), []byte("2"))
	batch.Put([]byte("committed-c"), []byte("3"))
	if err := sh.Apply(th, &batch); err != nil {
		t.Fatal(err)
	}

	sh.Halt()
	sh2, th2 := crashAndReopenSharded(t, m, so)
	defer sh2.Close(th2)
	if _, err := sh2.Get(th2, []byte("indoubt-key")); err != kvstore.ErrNotFound {
		t.Fatalf("in-doubt prepare became visible: %v", err)
	}
	for _, k := range []string{"committed-a", "committed-b", "committed-c"} {
		if _, err := sh2.Get(th2, []byte(k)); err != nil {
			t.Fatalf("committed key %s lost: %v", k, err)
		}
	}
}

func TestShardedCrossShardBatchTooLarge(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)

	var batch Batch
	big := make([]byte, 70<<10) // exceeds the minimum 64 KiB slot
	// Two keys on different shards so the two-phase path (with its capacity
	// pre-check) is taken.
	k1, k2 := findKeysOnDistinctShards(sh)
	batch.Put(k1, big)
	batch.Put(k2, []byte("small"))
	if err := sh.Apply(th, &batch); err != errBatchTooLarge {
		t.Fatalf("oversized cross-shard batch: got %v, want errBatchTooLarge", err)
	}
}

func findKeysOnDistinctShards(sh *Sharded) ([]byte, []byte) {
	k1 := []byte("probe-0")
	for i := 1; ; i++ {
		k2 := []byte(fmt.Sprintf("probe-%d", i))
		if sh.ShardOf(k2) != sh.ShardOf(k1) {
			return k1, k2
		}
	}
}

func TestShardedSingleShardParity(t *testing.T) {
	// Shards=1 through the router must agree with the plain engine on
	// contents and visibility rules.
	mPlain := testMachine()
	opts := smallOpts()
	e, eth := openEngine(t, mPlain, opts)
	defer e.Close(eth)

	mShard := testMachine()
	so := smallShardedOpts(1)
	so.Base = opts
	sh, sth := openSharded(t, mShard, so)
	defer sh.Close(sth)

	for i := 0; i < 1500; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		v := []byte(fmt.Sprintf("v%d", i))
		if err := e.Put(eth, k, v); err != nil {
			t.Fatal(err)
		}
		if err := sh.Put(sth, k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		ev, eerr := e.Get(eth, k)
		sv, serr := sh.Get(sth, k)
		if (eerr == nil) != (serr == nil) || string(ev) != string(sv) {
			t.Fatalf("divergence at %s: plain (%q,%v) sharded (%q,%v)", k, ev, eerr, sv, serr)
		}
	}
}
