package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/hw"
	"cachekv/internal/lsm"
	"cachekv/internal/memfilter"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// DbgCopyTimers accumulate copy-phase virtual time for calibration tests.
var DbgCopyRead, DbgCopyWrite, DbgCopyBytes, DbgAllocStall atomic.Int64

// immTable is one sub-ImmMemTable after its copy-based flush: the entry bytes
// live in the ImmZone (PMem), its sub-skiplist stays in DRAM, and a compacted
// flag records whether the global skiplist already covers it.
type immTable struct {
	base       uint64 // ImmZone address of the data region
	dataLen    uint64
	count      uint64
	maxSeq     uint64
	list       *skiplist.List
	filter     *memfilter.Filter // negative filter over the table's user keys
	compacted  bool
	indexDoneV int64 // virtual time the index thread finished this table's sync
}

// snapshotInto bulk-reads the table's data region sequentially (one pass,
// the way a real merge streams its inputs) and returns a DRAM copy for the
// spill merge to decode from.
func (t *immTable) snapshotInto(e *Engine, th *hw.Thread) []byte {
	buf := make([]byte, t.dataLen)
	e.m.PMem.Read(th.Clock, t.base, buf)
	return buf
}

// immZoneHdrSize is the persistent per-table header written ahead of each
// flushed table so crash recovery can re-discover the ImmZone contents:
// magic, dataLen, count, maxSeq.
const (
	immZoneHdrSize = 32
	immHeaderMagic = 0x133C4E_F1A5
	immZoneAlign   = 256 // XPLine alignment keeps NT copies amplification-free
)

// memState is the engine's DRAM view of the memory component: flushed tables
// plus the global skiplist and its negative filter. Swapped wholesale at L0
// spill.
type memState struct {
	mu           sync.RWMutex
	imms         []*immTable
	global       *skiplist.List
	globalFilter *memfilter.Filter // covers every key merged into global

	// Filter sizing for replacement filters installed at spill.
	expGlobalKeys int
	filterBits    int
}

func newMemState(expGlobalKeys, filterBits int) *memState {
	return &memState{
		global:        skiplist.New(nil, 0xC0117EC7),
		globalFilter:  newFilter(expGlobalKeys, filterBits),
		expGlobalKeys: expGlobalKeys,
		filterBits:    filterBits,
	}
}

// newFilter builds a negative filter, or nil when filters are disabled
// (bitsPerKey <= 0). Every probe site tolerates nil as "may contain".
func newFilter(expectedKeys, bitsPerKey int) *memfilter.Filter {
	if bitsPerKey <= 0 {
		return nil
	}
	return memfilter.New(expectedKeys, bitsPerKey)
}

// flusher is the background copy-based flush loop: one goroutine per
// configured flush thread, all drawing from the shared channel. Virtual
// timing goes through the ServerPool so that the *number* of flush threads
// (Exp#5) governs when slots become reusable, independent of host scheduling.
func (e *Engine) flusher() {
	defer e.flushWG.Done()
	for s := range e.flushCh {
		e.flushOne(s)
	}
}

// spillLoop is the LSM background thread (LevelDB's compaction thread in the
// prototype): it serves L0 spill requests so that copy-based flushes stay
// cheap and writers only stall when the ImmZone is genuinely out of space.
func (e *Engine) spillLoop() {
	defer e.spillWG.Done()
	for at := range e.spillCh {
		e.serveSpill(at)
		e.spillState.mu.Lock()
		e.spillPending.Add(-1)
		e.spillState.cond.Broadcast()
		e.spillState.mu.Unlock()
	}
}

// serveSpill is one spillLoop iteration: the spill itself plus, in legacy
// inline mode, the compaction debt it created.
func (e *Engine) serveSpill(at int64) {
	if e.bgErr() != nil {
		// Crash-stopped: acknowledge the request so waiters re-check
		// the failure instead of sleeping forever.
		e.spillState.mu.Lock()
		e.spillState.cond.Broadcast()
		e.spillState.mu.Unlock()
		return
	}
	th := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/spill", e.opts.Shard))
	th.Clock.AdvanceTo(at)
	start := th.Clock.Now()
	th.InPhase(hw.PhaseSpill, func() {
		e.spillMu.Lock()
		e.spillLocked(th)
		e.spillMu.Unlock()
	})
	done := e.spillServer.Submit(at, th.Clock.Now()-start)
	e.spillState.mu.Lock()
	if done > e.spillState.doneV {
		e.spillState.doneV = done
	}
	e.spillState.cond.Broadcast()
	e.spillState.mu.Unlock()
	e.flow.recompute(th.Clock.Now(), "spill_end")
	if e.tree.SchedulerActive() {
		// Background scheduler: hand the new debt to the workers and let
		// the spill thread return to serving writers immediately.
		e.tree.Kick(th.Clock.Now())
		return
	}
	// Legacy inline mode: LSM compaction debt is paid after writers are
	// unblocked; its virtual cost still occupies this background server,
	// delaying future spills exactly as LevelDB's single compaction
	// thread would.
	cstart := th.Clock.Now()
	th.InPhase(hw.PhaseCompact, func() {
		if err := e.tree.MaybeCompact(th); err != nil {
			e.fail(err)
		}
	})
	if dur := th.Clock.Now() - cstart; dur > 0 {
		e.trace.Emit(th.Clock.Now(), "lsm_compaction", "ns", dur)
	}
	e.spillServer.Submit(done, th.Clock.Now()-cstart)
	e.flow.recompute(th.Clock.Now(), "lsm_compaction")
}

// requestSpill asks the spill thread to run (idempotent while one is queued).
func (e *Engine) requestSpill(at int64) {
	e.spillPending.Add(1)
	select {
	case e.spillCh <- at:
	default:
		e.spillPending.Add(-1)
	}
}

// quiesceSpills blocks until the spill thread has no queued or in-flight
// work — including the inline compaction a legacy-mode spill tows behind it.
// Only the background chain is awaited; the caller's clock is not advanced.
func (e *Engine) quiesceSpills() {
	e.spillState.mu.Lock()
	for e.spillPending.Load() > 0 && e.bgErr() == nil {
		e.spillState.cond.Wait()
	}
	e.spillState.mu.Unlock()
}

// waitForSpace blocks (really and virtually) until the ImmZone can hold need
// more bytes, driving the spill thread as necessary. deadlineV bounds the
// wait on the virtual clock: each retry charges a capped exponential backoff
// step, and once the clock passes the deadline the wait returns ErrStalled so
// the caller can refresh pressure state instead of hanging forever. Zero
// keeps the legacy unbounded wait.
func (e *Engine) waitForSpace(th *hw.Thread, need uint64, deadlineV int64) error {
	backoff := int64(0)
	e.spillState.mu.Lock()
	for e.immArena.Region().Size-e.immArena.Used() < need {
		if e.bgErr() != nil {
			e.spillState.mu.Unlock()
			return nil
		}
		if deadlineV > 0 {
			if th.Clock.Now() >= deadlineV {
				e.spillState.mu.Unlock()
				return ErrStalled
			}
			if backoff == 0 {
				backoff = stallBackoffBaseNs
			} else if backoff < stallBackoffMaxNs {
				backoff *= 2
			}
			step := backoff
			if rem := deadlineV - th.Clock.Now(); step > rem {
				step = rem
			}
			th.Clock.Advance(step)
		}
		// Request under the state lock: the spill thread's completion
		// broadcast also takes it, so the request cannot be consumed and
		// answered between our check and the Wait (no missed wakeup).
		e.requestSpill(th.Clock.Now())
		e.spillState.cond.Wait()
	}
	doneV := e.spillState.doneV
	e.spillState.mu.Unlock()
	th.Clock.AdvanceTo(doneV)
	return nil
}

// flushOne performs the copy-based flush of one sealed sub-MemTable
// (Section III-C): a final index sync, a non-temporal whole-table copy into
// the ImmZone, registration of the resulting sub-ImmMemTable, and release of
// the slot. If the ImmZone crosses its threshold, it spills to L0.
func (e *Engine) flushOne(s *slot) {
	_, _, sealedTail := unpackHdr(s.hdr.Load())
	finish := func() {
		e.pendingFlushes.Add(-1)
		e.pendingFlushBytes.Add(-int64(sealedTail))
	}
	if err := e.bgErr(); err != nil {
		// Crash-stopped: abandon the work, the power failure preempted it.
		finish()
		return
	}
	th := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/flush", e.opts.Shard))
	th.Clock.SetLabel(hw.PhaseBgFlush.Layer())
	th.Clock.AdvanceTo(s.sealedAt.Load())
	start := th.Clock.Now()
	e.trace.Emit(start, "flush_start", "shard", e.opts.Shard, "slot", s.idx)
	var stallNs int64
	// Fixed per-flush dispatch and metadata cost: the reason over-small
	// sub-MemTables hurt write throughput (the paper's Exp#6 left side).
	th.Clock.Advance(e.m.Costs.FlushFixed)

	// Trigger 3 of the lazy index update: the table is full, synchronize.
	// The work itself runs here (the sub-skiplist must be complete before it
	// moves to the ImmZone registry), but its virtual time is billed to the
	// dedicated index thread, which overlaps with the copy-based flush.
	syncTh := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/index", e.opts.Shard))
	syncTh.Clock.SetLabel(hw.PhaseIndex.Layer())
	syncTh.Clock.AdvanceTo(s.sealedAt.Load())
	e.syncSlot(syncTh, s)
	indexDoneV := e.indexServer.Submit(s.sealedAt.Load(), syncTh.Clock.Now()-s.sealedAt.Load())

	count, _, tail := unpackHdr(s.hdr.Load())
	var t *immTable
	if tail > 0 {
		// Hold the spill lock shared across the whole copy+register section:
		// a concurrent spill resets the arena and must not reclaim an
		// allocation whose NT copy is still in flight.
		var dst uint64
		for {
			e.spillMu.RLock()
			var err error
			dst, err = e.immArena.Alloc(immZoneHdrSize+tail, immZoneAlign)
			if err == nil {
				break // keep RLock held through the copy
			}
			e.spillMu.RUnlock()
			// ImmZone full: a table that cannot fit even in an empty zone is
			// a config error; otherwise wait for the spill thread to reclaim
			// space (the CacheKV analogue of an L0 write stall).
			if immZoneHdrSize+tail > e.immArena.Region().Size {
				e.fail(err)
				return
			}
			w0 := th.Clock.Now()
			werr := e.waitForSpace(th, immZoneHdrSize+tail, absDeadline(th, e.opts.WriteStallDeadline))
			stallNs += th.Clock.Now() - w0
			if e.bgErr() != nil {
				finish()
				return
			}
			if werr != nil {
				// The ImmZone wait overran the stall deadline. The flusher
				// cannot drop the sealed data, so it retries in place — but
				// each bounded round surfaces the stall in the trace and
				// refreshes the flow-control state, escalating admission to
				// Slowdown/Stop so the foreground sheds load instead of
				// piling more seals behind this one.
				e.trace.Emit(th.Clock.Now(), "flush_stall", "shard", e.opts.Shard,
					"slot", s.idx, "need", immZoneHdrSize+tail)
				e.flow.recompute(th.Clock.Now(), "flush_stall")
			}
		}
		// Persistent header first, then the modified-memcpy of the data
		// region: reads hit the pinned cache lines, stores are non-temporal.
		hdr := util.PutFixed64(nil, immHeaderMagic)
		hdr = util.PutFixed64(hdr, tail)
		hdr = util.PutFixed64(hdr, count)
		s.syncMu.Lock()
		maxSeq := maxSeqOf(s.list)
		s.syncMu.Unlock()
		hdr = util.PutFixed64(hdr, maxSeq)
		e.m.Cache.NTWrite(th.Clock, dst, hdr)

		dbgT0 := th.Clock.Now()
		buf := make([]byte, tail)
		e.m.Cache.Read(th.Clock, s.dataAddr(), buf, e.poolPart)
		dbgT1 := th.Clock.Now()
		e.m.Cache.NTWrite(th.Clock, dst+immZoneHdrSize, buf)
		// The flush thread's software share: allocation, packing, verify.
		th.Clock.Advance(int64(tail) * e.m.Costs.FlushBytePerKB / 1024)
		DbgCopyRead.Add(dbgT1 - dbgT0)
		DbgCopyWrite.Add(th.Clock.Now() - dbgT1)
		DbgCopyBytes.Add(int64(tail))

		s.syncMu.Lock()
		t = &immTable{
			base:       dst + immZoneHdrSize,
			dataLen:    tail,
			count:      count,
			maxSeq:     maxSeq,
			list:       s.list,
			filter:     s.filter.Load(), // covers exactly this slot's committed keys
			indexDoneV: indexDoneV,
		}
		s.list = nil
		s.syncMu.Unlock()
		// Register before releasing the spill lock so a racing spill either
		// sees this table or runs after it is fully installed.
		e.mem.mu.Lock()
		e.mem.imms = append(e.mem.imms, t)
		e.mem.mu.Unlock()
		e.spillMu.RUnlock()
		e.stats.Flushes.Add(1)
	}

	// Model the flush duration on the configured server pool: the slot is
	// reusable only once one of the k flush servers has actually done the
	// copy in virtual time — and not before the index thread has finished
	// the table's final sync, which keeps the whole pipeline paced by the
	// paper's one-flush-thread/one-index-thread configuration. Stall time
	// spent waiting for the spill thread is not flush-server work, but the
	// slot cannot free before the copy ended.
	duration := th.Clock.Now() - start - stallNs
	doneAt := e.flushServers.Submit(s.sealedAt.Load(), duration)
	if indexDoneV > doneAt {
		doneAt = indexDoneV
	}
	if now := th.Clock.Now(); now > doneAt {
		doneAt = now
	}
	e.pool.markFree(th, s, doneAt)

	// Hand the new table to the index/compaction thread (Section III-D).
	if t != nil && e.opts.SkiplistCompaction {
		select {
		case e.compactCh <- struct{}{}:
		default:
		}
	}

	e.trace.Emit(th.Clock.Now(), "flush_end", "shard", e.opts.Shard,
		"slot", s.idx, "bytes", tail, "entries", count, "stall_ns", stallNs)
	// Block-cache eviction pressure: surface sustained churn as a trace event
	// (every 1024 new evictions) so read-path regressions are visible in the
	// lifecycle stream, not only as an aggregate hit ratio.
	if e.trace != nil {
		if ev := e.tree.CacheStats().Evictions; ev-e.lastBCEvicts.Load() >= 1024 {
			e.lastBCEvicts.Store(ev)
			e.trace.Emit(th.Clock.Now(), "block_cache_pressure", "evictions", ev)
		}
	}

	if e.immArena.Used() > uint64(float64(e.immArena.Region().Size)*e.opts.SpillFraction) {
		e.requestSpill(th.Clock.Now())
	}
	finish()
	e.flow.recompute(th.Clock.Now(), "flush_end")
}

func maxSeqOf(list *skiplist.List) uint64 {
	if list == nil {
		return 0
	}
	it := list.NewIterator()
	it.SeekToFirst()
	var max uint64
	for it.Valid() {
		if s := util.InternalKey(it.Key()).Seq(); s > max {
			max = s
		}
		it.Next()
	}
	return max
}

// spill acquires the spill lock exclusively and, if the zone is still over
// threshold (another spiller may have raced us here), writes it out to L0.
func (e *Engine) spill(th *hw.Thread) {
	e.spillMu.Lock()
	e.spillLocked(th)
	e.spillMu.Unlock()
	// Wake any flusher stalled on ImmZone space.
	e.spillState.mu.Lock()
	if now := th.Clock.Now(); now > e.spillState.doneV {
		e.spillState.doneV = now
	}
	e.spillState.cond.Broadcast()
	e.spillState.mu.Unlock()
	e.flow.recompute(th.Clock.Now(), "spill_end")
}

// spillLocked merges every sub-ImmMemTable into L0 SSTables, then resets the
// ImmZone and the global skiplist. Deferred space reclamation happens here —
// exactly when "the total size of sub-ImmMemTables reaches a pre-configured
// threshold" (Section III-D). Caller holds spillMu.
func (e *Engine) spillLocked(th *hw.Thread) {
	e.mem.mu.RLock()
	imms := append([]*immTable(nil), e.mem.imms...)
	e.mem.mu.RUnlock()
	if len(imms) == 0 {
		return
	}
	e.trace.Emit(th.Clock.Now(), "spill_start", "shard", e.opts.Shard, "tables", len(imms))
	// The spill merges via the sub-skiplists, so it cannot start before the
	// index thread has finished syncing every table it covers: under
	// sustained load the single index thread is the pipeline's ceiling,
	// exactly as in the paper's one-index-thread configuration.
	its := make([]lsm.Iterator, 0, len(imms))
	var maxSeq uint64
	for i := len(imms) - 1; i >= 0; i-- { // newest first for merge tie-break
		t := imms[i]
		th.Clock.AdvanceTo(t.indexDoneV)
		its = append(its, e.newSnapIter(t.list, t.snapshotInto(e, th)))
		if t.maxSeq > maxSeq {
			maxSeq = t.maxSeq
		}
	}
	merged := lsm.NewMergingIterator(its...)
	if err := e.tree.FlushNoCompact(th, merged, maxSeq); err != nil {
		e.fail(err)
		return
	}
	// Install the new memory state: drop the spilled tables, fresh global
	// skiplist, reclaim the zone. Tables flushed concurrently (appended to
	// e.mem.imms after our snapshot) are preserved — but they cannot exist:
	// flushOne allocates from the arena we are about to reset, so spillMu
	// callers serialize with it via the arena retry path. Keep the general
	// code anyway.
	e.mem.mu.Lock()
	var rest []*immTable
	spilled := make(map[*immTable]bool, len(imms))
	for _, t := range imms {
		spilled[t] = true
	}
	for _, t := range e.mem.imms {
		if !spilled[t] {
			rest = append(rest, t)
		}
	}
	e.mem.imms = rest
	e.mem.global = skiplist.New(nil, 0xC0117EC7)
	e.mem.globalFilter = newFilter(e.mem.expGlobalKeys, e.mem.filterBits)
	e.mem.mu.Unlock()

	for {
		cur := e.maxSpilledSeq.Load()
		if maxSeq <= cur || e.maxSpilledSeq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	// Range tombstones that just reached the tree no longer need their DRAM
	// mirrors (retirement is by tree membership, not sequence — see
	// pruneRangeTombs).
	e.pruneRangeTombs()
	if len(rest) == 0 {
		e.immArena.Reset()
		// Invalidate the recovery scan: zero the first header's magic.
		zero := make([]byte, 8)
		e.m.Cache.NTWrite(th.Clock, e.immArena.Region().Addr, zero)
	}
	e.stats.Spills.Add(1)
	e.trace.Emit(th.Clock.Now(), "spill_end", "shard", e.opts.Shard, "tables", len(imms), "max_seq", maxSeq)
}

// syncReq is one trigger-2 lazy-sync request with the virtual time it was
// issued, so the index server can be billed from the right instant.
type syncReq struct {
	s  *slot
	at int64
}

// indexLoop is the background thread performing the lazy index updates
// (trigger 2: write-count threshold) and the sub-skiplist compaction. The
// paper dedicates one thread to both duties; so does the engine, and all of
// its work is billed to the index server so the single thread's capacity is
// a real pipeline ceiling.
func (e *Engine) indexLoop() {
	defer e.indexWG.Done()
	for {
		select {
		case req, ok := <-e.syncCh:
			if !ok {
				return
			}
			th := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/index", e.opts.Shard))
			th.Clock.SetLabel(hw.PhaseIndex.Layer())
			th.Clock.AdvanceTo(req.at)
			e.syncSlot(th, req.s)
			e.indexServer.Submit(req.at, th.Clock.Now()-req.at)
		case _, ok := <-e.compactCh:
			if !ok {
				return
			}
			th := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/compact", e.opts.Shard))
			th.Clock.SetLabel(hw.PhaseCompact.Layer())
			start := th.Clock.Now()
			e.runCompaction(th)
			e.indexServer.Submit(start, th.Clock.Now()-start)
		}
	}
}

// runCompaction merges every not-yet-compacted sub-ImmMemTable into the
// global skiplist.
func (e *Engine) runCompaction(th *hw.Thread) {
	e.mem.mu.RLock()
	var todo []*immTable
	global := e.mem.global
	globalFilter := e.mem.globalFilter
	for _, t := range e.mem.imms {
		if !t.compacted {
			todo = append(todo, t)
		}
	}
	e.mem.mu.RUnlock()
	for _, t := range todo {
		e.compactInto(th, global, globalFilter, t)
		e.mem.mu.Lock()
		// The global list may have been swapped by a spill while we merged;
		// only mark compacted if the table is still present and the list is
		// still current.
		if e.mem.global == global {
			t.compacted = true
		}
		e.mem.mu.Unlock()
	}
	if len(todo) > 0 {
		e.stats.Compactions.Add(1)
		e.trace.Emit(th.Clock.Now(), "skiplist_compaction", "tables", len(todo))
	}
}
