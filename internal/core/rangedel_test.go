package core

import (
	"fmt"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
)

func putN(t *testing.T, e *Engine, th *hw.Thread, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Put(th, []byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteRangeBasic(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	putN(t, e, th, 100, "v")
	if err := e.DeleteRange(th, []byte("key00020"), []byte("key00060")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, err := e.Get(th, k)
		covered := i >= 20 && i < 60
		if covered && err != kvstore.ErrNotFound {
			t.Fatalf("covered %s: got %q, %v", k, v, err)
		}
		if !covered && err != nil {
			t.Fatalf("uncovered %s: %v", k, err)
		}
	}
	// A write after the tombstone is newer and visible again.
	if err := e.Put(th, []byte("key00030"), []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, err := e.Get(th, []byte("key00030")); err != nil || string(v) != "reborn" {
		t.Fatalf("rewrite after DeleteRange: %q, %v", v, err)
	}
	// Scan suppresses exactly the covered keys.
	var seen []string
	if _, err := e.Scan(th, nil, 0, func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 100 - 40 + 1 // 40 covered, key00030 rewritten
	if len(seen) != want {
		t.Fatalf("scan saw %d keys, want %d (%v...)", len(seen), want, seen[:5])
	}
	if e.GetStats().RangeDeletes.Load() != 1 {
		t.Fatalf("RangeDeletes = %d", e.GetStats().RangeDeletes.Load())
	}
	// Empty and inverted ranges are no-ops.
	if err := e.DeleteRange(th, []byte("z"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if e.GetStats().RangeDeletes.Load() != 1 {
		t.Fatal("inverted range counted")
	}
}

func TestDeleteRangeAcrossSpill(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	putN(t, e, th, 200, "v")
	if err := e.DeleteRange(th, []byte("key00050"), []byte("key00150")); err != nil {
		t.Fatal(err)
	}
	// Push everything — including the tombstone — down into the LSM tree.
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 7 {
		k := []byte(fmt.Sprintf("key%05d", i))
		_, err := e.Get(th, k)
		covered := i >= 50 && i < 150
		if covered && err != kvstore.ErrNotFound {
			t.Fatalf("covered %s visible after spill: %v", k, err)
		}
		if !covered && err != nil {
			t.Fatalf("uncovered %s lost after spill: %v", k, err)
		}
	}
	var n int
	if _, err := e.Scan(th, nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("scan after spill saw %d keys, want 100", n)
	}
}

func TestDeleteRangeRecovery(t *testing.T) {
	m := testMachine()
	opts := smallOpts()
	e, th := openEngine(t, m, opts)
	putN(t, e, th, 100, "v")
	if err := e.DeleteRange(th, []byte("key00010"), []byte("key00030")); err != nil {
		t.Fatal(err)
	}
	// No FlushAll: the tombstone lives only in the persistent memtable, and
	// recovery must rebuild the DRAM coverage list from it.
	e2, th2 := crashAndReopen(t, m, opts)
	defer e2.Close(th2)
	for i := 0; i < 100; i += 3 {
		k := []byte(fmt.Sprintf("key%05d", i))
		_, err := e2.Get(th2, k)
		covered := i >= 10 && i < 30
		if covered && err != kvstore.ErrNotFound {
			t.Fatalf("covered %s visible after recovery: %v", k, err)
		}
		if !covered && err != nil {
			t.Fatalf("uncovered %s lost after recovery: %v", k, err)
		}
	}
}

func TestBatchDeleteRangeAtomic(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	putN(t, e, th, 50, "v")
	var b Batch
	b.Put([]byte("marker"), []byte("present"))
	b.DeleteRange([]byte("key00000"), []byte("key00025"))
	if err := e.Apply(th, &b); err != nil {
		t.Fatal(err)
	}
	if v, err := e.Get(th, []byte("marker")); err != nil || string(v) != "present" {
		t.Fatalf("batch put lost: %q, %v", v, err)
	}
	if _, err := e.Get(th, []byte("key00010")); err != kvstore.ErrNotFound {
		t.Fatalf("batch range delete not applied: %v", err)
	}
	if _, err := e.Get(th, []byte("key00030")); err != nil {
		t.Fatalf("key outside batch tombstone lost: %v", err)
	}
	if e.GetStats().RangeDeletes.Load() != 1 {
		t.Fatalf("RangeDeletes = %d", e.GetStats().RangeDeletes.Load())
	}
}

func ingestEntries(start, n int, tag string) []lsm.IngestEntry {
	var es []lsm.IngestEntry
	for i := 0; i < n; i++ {
		es = append(es, lsm.IngestEntry{
			Key:   []byte(fmt.Sprintf("key%05d", start+i)),
			Value: []byte(fmt.Sprintf("%s-%d", tag, start+i)),
		})
	}
	return es
}

func TestEngineIngest(t *testing.T) {
	e, th := openEngine(t, testMachine(), smallOpts())
	defer e.Close(th)
	// Pre-existing versions the ingest must shadow.
	putN(t, e, th, 20, "old")
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(th, ingestEntries(0, 40, "ing")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i += 3 {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, err := e.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if want := fmt.Sprintf("ing-%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
	// A put after the ingest is newer still.
	if err := e.Put(th, []byte("key00005"), []byte("newest")); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Get(th, []byte("key00005")); string(v) != "newest" {
		t.Fatalf("post-ingest put shadowed: %q", v)
	}
	if e.GetStats().Ingests.Load() != 1 {
		t.Fatalf("Ingests = %d", e.GetStats().Ingests.Load())
	}
	// Unsorted input is rejected whole.
	bad := []lsm.IngestEntry{{Key: []byte("b")}, {Key: []byte("a")}}
	if err := e.Ingest(th, bad); err == nil {
		t.Fatal("unsorted ingest accepted")
	}
	if _, err := e.Get(th, []byte("b")); err != kvstore.ErrNotFound {
		t.Fatalf("rejected ingest leaked a key: %v", err)
	}
}

func TestCompactionWorkersEndToEnd(t *testing.T) {
	opts := smallOpts()
	opts.CompactionWorkers = 2
	opts.LSM = lsm.Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      64 << 10,
		LevelMultiplier:     4,
		MaxLevels:           5,
		TableFileSize:       16 << 10,
	}
	e, th := openEngine(t, testMachine(), opts)
	n := 3000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := e.Put(th, k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	st := e.tree.SchedulerStats()
	if st.JobsRun == 0 {
		t.Fatal("background scheduler ran no jobs despite spills")
	}
	if debt := e.tree.CompactionDebt(); debt != 0 {
		t.Fatalf("FlushAll returned with %d bytes of compaction debt", debt)
	}
	for i := 0; i < n; i += 13 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := e.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("Get(%s) = %q", k, v)
		}
	}
	if err := e.Close(th); err != nil {
		t.Fatal(err)
	}
}

func TestShardedDeleteRangeAndIngest(t *testing.T) {
	m := testMachine()
	sh, th := openSharded(t, m, smallShardedOpts(4))
	defer sh.Close(th)
	n := 400
	for i := 0; i < n; i++ {
		if err := sh.Put(th, []byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The range spans keys hashed onto every shard; the tombstone must reach
	// all of them atomically.
	if err := sh.DeleteRange(th, []byte("key00100"), []byte("key00300")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 7 {
		k := []byte(fmt.Sprintf("key%05d", i))
		_, err := sh.Get(th, k)
		covered := i >= 100 && i < 300
		if covered && err != kvstore.ErrNotFound {
			t.Fatalf("covered %s visible: %v", k, err)
		}
		if !covered && err != nil {
			t.Fatalf("uncovered %s lost: %v", k, err)
		}
	}
	var got int
	if _, err := sh.Scan(th, nil, 0, func(k, v []byte) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != n-200 {
		t.Fatalf("sharded scan saw %d keys, want %d", got, n-200)
	}
	// Ingest routes each entry to its owning shard; the batch shadows the
	// tombstone because its sequence is newer.
	if err := sh.Ingest(th, ingestEntries(100, 50, "ing")); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i += 5 {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, err := sh.Get(th, k)
		if err != nil {
			t.Fatalf("Get(%s) after sharded ingest: %v", k, err)
		}
		if want := fmt.Sprintf("ing-%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
}
