package core

import (
	"bytes"
	"sync"

	"cachekv/internal/hw"
	"cachekv/internal/lsm"
	"cachekv/internal/util"
)

// rangeTombList is the engine's DRAM mirror of range tombstones that may
// still be resident in the memory component. write() adds to it right after
// the commit CAS; pruneRangeTombs removes an entry only once the tree's own
// metadata carries it (sub-MemTable slots flush out of sequence order, so
// maxSpilledSeq alone cannot prove a tombstone left the memory component).
type rangeTombList struct {
	mu    sync.Mutex
	tombs []lsm.RangeDel
}

func (l *rangeTombList) add(rd lsm.RangeDel) {
	l.mu.Lock()
	l.tombs = append(l.tombs, rd)
	l.mu.Unlock()
}

// coverSeq returns the highest sequence among tombstones visible at snap
// whose span contains ukey, or 0. An entry is hidden iff its sequence is
// strictly below the returned cover.
func (l *rangeTombList) coverSeq(ukey []byte, snap uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var cover uint64
	for _, rd := range l.tombs {
		if rd.Seq <= snap && rd.Seq > cover &&
			bytes.Compare(rd.Start, ukey) <= 0 && bytes.Compare(ukey, rd.End) < 0 {
			cover = rd.Seq
		}
	}
	return cover
}

// visible returns a copy of every tombstone with sequence <= snap.
func (l *rangeTombList) visible(snap uint64) []lsm.RangeDel {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []lsm.RangeDel
	for _, rd := range l.tombs {
		if rd.Seq <= snap {
			out = append(out, rd)
		}
	}
	return out
}

type tombKey struct {
	start, end string
	seq        uint64
}

// pruneTo drops every tombstone that appears in spilled (the tree's current
// metadata). Membership is the only sound retirement criterion: the tree
// never drops range tombstones, so once one shows up there it can no longer
// be lost, and every engine-visible copy outside the list is redundant.
func (l *rangeTombList) pruneTo(spilled []lsm.RangeDel) {
	if len(spilled) == 0 {
		return
	}
	in := make(map[tombKey]bool, len(spilled))
	for _, rd := range spilled {
		in[tombKey{string(rd.Start), string(rd.End), rd.Seq}] = true
	}
	l.mu.Lock()
	kept := l.tombs[:0]
	for _, rd := range l.tombs {
		if !in[tombKey{string(rd.Start), string(rd.End), rd.Seq}] {
			kept = append(kept, rd)
		}
	}
	l.tombs = kept
	l.mu.Unlock()
}

// pruneRangeTombs retires DRAM tombstone mirrors the tree now owns; called
// after a spill installs.
func (e *Engine) pruneRangeTombs() {
	e.rangeTombs.pruneTo(e.tree.RangeTombstones(util.MaxSequence))
}

// visibleRangeTombs collects every range tombstone visible at snap from both
// the memory component and the tree. An unpruned DRAM mirror may duplicate a
// tree entry; scans take the max cover, so duplicates are harmless.
func (e *Engine) visibleRangeTombs(snap uint64) []lsm.RangeDel {
	tombs := e.rangeTombs.visible(snap)
	return append(tombs, e.tree.RangeTombstones(snap)...)
}

// DeleteRange deletes every key in [start, end) by committing one range
// tombstone — O(1) in the range's size. A start >= end range is an empty
// no-op.
func (e *Engine) DeleteRange(th *hw.Thread, start, end []byte) error {
	return e.DeleteRangeWithDeadline(th, start, end, e.opts.WriteStallDeadline)
}

// DeleteRangeWithDeadline is DeleteRange under a write deadline (see
// PutWithDeadline).
func (e *Engine) DeleteRangeWithDeadline(th *hw.Thread, start, end []byte, deadlineNs int64) error {
	if err := e.err(); err != nil {
		return err
	}
	if bytes.Compare(start, end) >= 0 {
		return nil
	}
	deadlineV := absDeadline(th, deadlineNs)
	if err := e.flow.admitWrite(th, deadlineV); err != nil {
		return err
	}
	// The tombstone is an ordinary memtable entry: internal key start@seq
	// with KindRangeDel, value = exclusive end key. It rides the same
	// commit, flush, and spill path as point writes, which is what makes it
	// crash-durable.
	if err := e.write(th, start, end, util.KindRangeDel, deadlineV); err != nil {
		return err
	}
	e.stats.RangeDeletes.Add(1)
	return nil
}

// Ingest bulk-loads entries (strictly ascending unique user keys) as external
// SSTables installed atomically in the tree, bypassing the memory component.
// The whole batch commits at one sequence number drawn from the engine's
// counter, making it the newest version of each of its keys.
func (e *Engine) Ingest(th *hw.Thread, entries []lsm.IngestEntry) error {
	if err := e.err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	seq := e.seq.Add(1)
	var ierr error
	th.InPhase(hw.PhaseSST, func() {
		ierr = e.tree.Ingest(th, entries, seq)
	})
	if ierr != nil {
		return ierr
	}
	// The batch lives only in the tree yet is the freshest version of its
	// keys; lift maxSpilledSeq so reads never skip the tree based on a
	// memory-component candidate older than the ingest.
	for {
		cur := e.maxSpilledSeq.Load()
		if cur >= seq || e.maxSpilledSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	e.trace.Emit(th.Clock.Now(), "ingest", "shard", e.opts.Shard,
		"entries", len(entries), "seq", seq)
	e.tree.Kick(th.Clock.Now())
	e.flow.recompute(th.Clock.Now(), "ingest")
	e.stats.Ingests.Add(1)
	return nil
}
