package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cachekv/internal/arena"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
	"cachekv/internal/pmemfs"
	"cachekv/internal/util"
)

// Options configure a CacheKV instance. Zero values take the paper's
// Section IV-A defaults, noted per field.
type Options struct {
	PoolBytes        uint64  // sub-MemTable pool size pinned in the LLC (12 MiB)
	SubMemTableBytes uint64  // initial sub-MemTable size (2 MiB)
	FlushThreads     int     // background copy-based flush threads (1)
	SyncThreshold    int     // writes per sub-MemTable before a lazy sync (64)
	ImmZoneBytes     uint64  // PMem staging zone for flushed tables (32 MiB)
	SpillFraction    float64 // ImmZone fill fraction triggering the L0 spill (0.75)
	Elastic          bool    // enable miss-counter elasticity (on)
	MissThreshold    int64   // misses before splitting free sub-MemTables (8)

	// Ablation switches: the paper's PCSM / PCSM+LIU / CacheKV breakdown.
	LazyIndex          bool // false = update the sub-skiplist on every write (PCSM)
	SkiplistCompaction bool // false = never build the global skiplist (PCSM[+LIU])

	// FilterBitsPerKey sizes the DRAM-side negative filters kept per
	// sub-MemTable slot, per sub-ImmMemTable, and over the global skiplist
	// (10, LevelDB's bloom budget). Negative disables the filters.
	FilterBitsPerKey int

	FSBytes       uint64 // PMem file-layer capacity for SSTables (256 MiB)
	ManifestBytes uint64 // manifest log capacity (4 MiB)
	LSM           lsm.Options

	// Trace, when non-nil, receives lifecycle events (flush start/end,
	// sub-MemTable seals, spills, compactions, recovery, block-cache eviction
	// pressure). nil disables tracing; every emit site is nil-safe.
	Trace *obs.Trace

	// Sharded-deployment hooks (OpenSharded): Shard is this engine's index,
	// carried on trace events so the lifecycle stream attributes seals and
	// flushes to shards. RegionPrefix overrides the "cachekv" region-name
	// prefix so several engines coexist on one machine; empty keeps the legacy
	// names (and therefore the legacy on-media layout). SharedSeq, when
	// non-nil, is a sequence counter shared across shards so cross-shard
	// versions order globally. SharedPartition, when non-nil, is an externally
	// reserved cache partition the pool lives in: the LLC is way-granular, so
	// N shards share one reservation instead of burning a way each; the engine
	// then skips Reserve and Release.
	Shard           int
	RegionPrefix    string
	SharedSeq       *atomic.Uint64
	SharedPartition *cache.PartitionID

	// Overload protection. WriteStallDeadline bounds how long a write may
	// wait (virtual ns) for admission, a free sub-MemTable slot, or — via
	// backpressure — ImmZone space before failing with ErrStalled; 0 keeps
	// the legacy wait-forever contract. Per-op deadlines via
	// PutWithDeadline/ApplyWithDeadline override it. DisableFlowControl
	// turns the state machine off entirely (baseline measurements). Flow
	// tunes the pressure thresholds; zero fields take defaults derived from
	// the zone and LSM budgets.
	// ShapeLegacyWrites extends admission shaping (Slowdown token pacing,
	// Stop blocking) to deadline-0 writes without arming the deadline
	// machinery: writes never fail with ErrStalled, they pay the stall on
	// the virtual clock instead. Benchmarks use it to measure stall dwell
	// under the blocking-writer contract.
	WriteStallDeadline int64
	ShapeLegacyWrites  bool
	DisableFlowControl bool
	Flow               FlowThresholds

	// CompactionWorkers > 0 moves LSM compaction off the spill path onto a
	// background scheduler with that many workers (each on its own simulated
	// thread, attributed to PhaseCompact) picking jobs by priority and
	// running disjoint-range same-level jobs concurrently. 0 keeps the legacy
	// inline compaction after each spill. With workers enabled the flow
	// controller also reads the tree's compaction-debt signal (Flow.Debt*).
	CompactionWorkers int
}

// regionName returns the engine's name for one of its PMem regions,
// honouring the RegionPrefix override.
func (o Options) regionName(suffix string) string {
	p := o.RegionPrefix
	if p == "" {
		p = "cachekv"
	}
	return p + "." + suffix
}

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{
		PoolBytes:          12 << 20,
		SubMemTableBytes:   2 << 20,
		FlushThreads:       1,
		SyncThreshold:      64,
		ImmZoneBytes:       32 << 20,
		SpillFraction:      0.75,
		Elastic:            true,
		MissThreshold:      8,
		LazyIndex:          true,
		SkiplistCompaction: true,
		FilterBitsPerKey:   10,
		FSBytes:            256 << 20,
		ManifestBytes:      4 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.PoolBytes == 0 {
		o.PoolBytes = d.PoolBytes
	}
	if o.SubMemTableBytes == 0 {
		o.SubMemTableBytes = d.SubMemTableBytes
	}
	if o.FlushThreads == 0 {
		o.FlushThreads = d.FlushThreads
	}
	if o.SyncThreshold == 0 {
		o.SyncThreshold = d.SyncThreshold
	}
	if o.ImmZoneBytes == 0 {
		o.ImmZoneBytes = d.ImmZoneBytes
	}
	if o.SpillFraction == 0 {
		o.SpillFraction = d.SpillFraction
	}
	if o.MissThreshold == 0 {
		o.MissThreshold = d.MissThreshold
	}
	if o.FilterBitsPerKey == 0 {
		o.FilterBitsPerKey = d.FilterBitsPerKey
	}
	if o.FSBytes == 0 {
		o.FSBytes = d.FSBytes
	}
	if o.ManifestBytes == 0 {
		o.ManifestBytes = d.ManifestBytes
	}
	return o
}

// Stats exposes CacheKV's internal counters.
type Stats struct {
	Puts        atomic.Int64
	Gets        atomic.Int64
	Deletes     atomic.Int64
	Flushes     atomic.Int64 // copy-based flushes completed
	Spills      atomic.Int64 // L0 spills
	Compactions atomic.Int64 // sub-skiplist compaction rounds
	ReadSyncs   atomic.Int64 // trigger-1 lazy syncs performed by readers

	// Memory-component negative-filter effectiveness: probes against slot,
	// imm-table, and global filters, and how many rejected (each rejection
	// skips a sub-skiplist search, and for active slots also the trigger-1
	// lazy sync).
	FilterProbes    atomic.Int64
	FilterNegatives atomic.Int64

	RangeDeletes atomic.Int64 // DeleteRange calls (range tombstones committed)
	Ingests      atomic.Int64 // Ingest batches installed
}

// Engine is the CacheKV store.
type Engine struct {
	m    *hw.Machine
	opts Options

	poolPart cache.PartitionID
	pool     *pool
	immArena *arena.PArena
	mem      *memState
	fs       *pmemfs.FS
	tree     *lsm.Tree

	// seq is the global version counter. Standalone engines own a private
	// counter; shards of one Sharded store share a single counter (installed
	// via Options.SharedSeq) so versions order across the whole keyspace.
	seq           *atomic.Uint64
	maxSpilledSeq atomic.Uint64

	// rangeTombs mirrors every range tombstone that may still be resident in
	// the memory component, so Get applies coverage without walking slots.
	// Entries are added at commit time and pruned on spill, but only once the
	// tree's own metadata carries them (see pruneRangeTombs).
	rangeTombs rangeTombList

	flushCh        chan *slot
	syncCh         chan syncReq
	compactCh      chan struct{}
	spillCh        chan int64
	flushServers   *sim.ServerPool
	spillServer    *sim.ServerPool
	indexServer    *sim.ServerPool
	pendingFlushes atomic.Int64
	// pendingFlushBytes tracks sealed-but-unflushed slot payload bytes; with
	// ImmZone occupancy it forms the backlog signal the flow controller polls.
	pendingFlushBytes atomic.Int64
	flow              *flowControl
	flushWG           sync.WaitGroup
	indexWG           sync.WaitGroup
	spillWG           sync.WaitGroup

	spillMu    sync.RWMutex
	spillState struct {
		mu    sync.Mutex
		cond  *sync.Cond
		doneV int64 // virtual completion time of the latest spill
	}
	// spillPending counts spill requests enqueued or mid-service (including
	// the legacy inline compaction that follows a spill); quiesceSpills waits
	// for it to reach zero so callers can settle the whole background chain.
	spillPending atomic.Int64

	stats  Stats
	failed atomic.Pointer[error]
	closed atomic.Bool

	trace        *obs.Trace
	lastBCEvicts atomic.Int64 // block-cache evictions at last pressure event
}

var (
	errEngineClosed  = errors.New("cachekv: engine closed")
	errEngineCrashed = errors.New("cachekv: engine crash-stopped")
)

// Open creates (or, after a crash, recovers) a CacheKV instance on machine m.
// Region names are fixed, so reopening the same machine finds its prior
// state.
func Open(m *hw.Machine, opts Options, th *hw.Thread) (*Engine, error) {
	opts = opts.withDefaults()
	filterBits := opts.FilterBitsPerKey
	if filterBits < 0 {
		filterBits = 0 // filters disabled
	}
	e := &Engine{
		m:         m,
		opts:      opts,
		trace:     opts.Trace,
		mem:       newMemState(expectedSlotKeys(opts.ImmZoneBytes), filterBits),
		flushCh:   make(chan *slot, 1024),
		syncCh:    make(chan syncReq, 4096),
		compactCh: make(chan struct{}, 64),
		spillCh:   make(chan int64, 1),
	}
	e.flushServers = sim.NewServerPool(opts.FlushThreads)
	e.spillServer = sim.NewServerPool(1)
	// The paper dedicates one background thread to the lazy index update and
	// sub-skiplist compaction; its work is billed here, overlapping flushes.
	e.indexServer = sim.NewServerPool(1)
	e.spillState.cond = sync.NewCond(&e.spillState.mu)

	if opts.SharedSeq != nil {
		e.seq = opts.SharedSeq
	} else {
		e.seq = new(atomic.Uint64)
	}

	if opts.SharedPartition != nil {
		e.poolPart = *opts.SharedPartition
	} else {
		part, err := m.Cache.Reserve(int(opts.PoolBytes))
		if err != nil {
			return nil, fmt.Errorf("cachekv: pinning pool: %w", err)
		}
		e.poolPart = part
	}

	poolRegion, recovered := m.LookupRegion(opts.regionName("pool"))
	if !recovered {
		poolRegion = m.Alloc(opts.regionName("pool"), opts.PoolBytes, 4096)
	}
	immRegion, ok := m.LookupRegion(opts.regionName("imm"))
	if !ok {
		immRegion = m.Alloc(opts.regionName("imm"), opts.ImmZoneBytes, 4096)
	}
	fsRegion, ok := m.LookupRegion(opts.regionName("fs"))
	if !ok {
		fsRegion = m.Alloc(opts.regionName("fs"), opts.FSBytes, 4096)
	}
	manifestRegion, ok := m.LookupRegion(opts.regionName("manifest"))
	if !ok {
		manifestRegion = m.Alloc(opts.regionName("manifest"), opts.ManifestBytes, 4096)
	}

	e.immArena = arena.NewPArena(immRegion)
	var err error
	e.fs, err = pmemfs.Mount(m, fsRegion, th)
	if err != nil {
		return nil, err
	}
	e.tree, err = lsm.Open(m, e.fs, manifestRegion, opts.LSM, th)
	if err != nil {
		return nil, err
	}
	// Bump rather than store: a shared counter may already sit past this
	// shard's tree (another shard recovered first).
	e.bumpSeq(e.tree.LastSeq())
	e.maxSpilledSeq.Store(e.tree.LastSeq())

	var debtFn func() uint64
	if opts.CompactionWorkers > 0 {
		debtFn = e.tree.CompactionDebt
	}
	e.flow = newFlowControl(opts, opts.DisableFlowControl,
		e.tree.L0Pressure,
		func() uint64 {
			pending := e.pendingFlushBytes.Load()
			if pending < 0 {
				pending = 0
			}
			return e.immArena.Used() + uint64(pending)
		}, debtFn)

	if recovered {
		e.trace.Emit(th.Clock.Now(), "recovery_start", "engine", e.Name(), "shard", opts.Shard)
		var rerr error
		th.InPhase(hw.PhaseRecovery, func() {
			rerr = e.recover(poolRegion, th)
		})
		if rerr != nil {
			return nil, rerr
		}
		e.mem.mu.RLock()
		nImms := len(e.mem.imms)
		e.mem.mu.RUnlock()
		e.trace.Emit(th.Clock.Now(), "recovery_end", "shard", opts.Shard,
			"imm_tables", nImms, "filters_rebuilt", nImms, "last_seq", e.seq.Load())
	} else {
		e.pool, err = newPool(m, poolRegion, e.poolPart, opts.SubMemTableBytes, m.Cores(), opts.Elastic, opts.MissThreshold, th)
		if err != nil {
			return nil, err
		}
		e.pool.filterBits = filterBits
	}

	e.pool.sealFn = func(s *slot) {
		_, _, stail := unpackHdr(s.hdr.Load())
		e.pendingFlushes.Add(1)
		e.pendingFlushBytes.Add(int64(stail))
		select {
		case e.flushCh <- s:
		default:
			// The channel is sized far beyond the slot count; dropping here
			// would leak an immutable slot, so treat overflow as a bug.
			e.pendingFlushes.Add(-1)
			e.pendingFlushBytes.Add(-int64(stail))
			e.fail(fmt.Errorf("cachekv: flush queue overflow"))
		}
	}

	if opts.CompactionWorkers > 0 {
		e.tree.StartScheduler(lsm.SchedulerConfig{
			Workers:   opts.CompactionWorkers,
			OnError:   e.fail,
			OnJobDone: func(at int64) { e.flow.recompute(at, "lsm_compaction") },
			Err:       e.bgErr,
			Trace:     opts.Trace,
		})
		// A recovered tree may reopen with debt already due (crash mid-burst).
		e.tree.Kick(th.Clock.Now())
	}

	for i := 0; i < opts.FlushThreads; i++ {
		e.flushWG.Add(1)
		go e.flusher()
	}
	e.spillWG.Add(1)
	go e.spillLoop()
	e.indexWG.Add(1)
	go e.indexLoop()
	// A recovered engine may reopen already under pressure (crash mid-stall).
	e.flow.recompute(th.Clock.Now(), "open")
	return e, nil
}

// fail records the first background error; subsequent operations return it
// and threads blocked on background progress are woken to observe it.
func (e *Engine) fail(err error) {
	if err == nil {
		return
	}
	e.failed.CompareAndSwap(nil, &err)
	if e.pool != nil {
		e.pool.aborted.Store(true)
	}
	e.flow.abort()
	if e.tree != nil {
		e.tree.AbortScheduler()
	}
	if e.spillState.cond != nil {
		e.spillState.mu.Lock()
		e.spillState.cond.Broadcast()
		e.spillState.mu.Unlock()
	}
	if e.pool != nil {
		e.pool.mu.Lock()
		e.pool.cond.Broadcast()
		e.pool.mu.Unlock()
	}
}

func (e *Engine) err() error {
	if p := e.failed.Load(); p != nil {
		return *p
	}
	if e.closed.Load() {
		return errEngineClosed
	}
	return nil
}

// bgErr is the failure condition background threads respect: a recorded
// error or crash-stop, but NOT a graceful Close — shutdown still drains the
// flush and spill pipelines.
func (e *Engine) bgErr() error {
	if p := e.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// Name implements kvstore.DB.
func (e *Engine) Name() string {
	switch {
	case !e.opts.LazyIndex:
		return "PCSM"
	case !e.opts.SkiplistCompaction:
		return "PCSM+LIU"
	default:
		return "CacheKV"
	}
}

// GetStats returns the engine's counters.
func (e *Engine) GetStats() *Stats { return &e.stats }

// RegisterObs publishes the engine's internal counters on r (obs.RegisterKV
// discovers this via the ObsRegistrar interface).
func (e *Engine) RegisterObs(r *obs.Registry) {
	r.Counter("engine_puts", func() int64 { return e.stats.Puts.Load() })
	r.Counter("engine_gets", func() int64 { return e.stats.Gets.Load() })
	r.Counter("engine_deletes", func() int64 { return e.stats.Deletes.Load() })
	r.Counter("engine_flushes", func() int64 { return e.stats.Flushes.Load() })
	r.Counter("engine_spills", func() int64 { return e.stats.Spills.Load() })
	r.Counter("engine_compactions", func() int64 { return e.stats.Compactions.Load() })
	r.Counter("engine_read_syncs", func() int64 { return e.stats.ReadSyncs.Load() })
	r.Counter("engine_pool_slots", func() int64 { return int64(e.pool.numSlots()) })
	r.Counter("engine_range_deletes", func() int64 { return e.stats.RangeDeletes.Load() })
	r.Counter("engine_ingests", func() int64 { return e.stats.Ingests.Load() })
	r.Counter("compact_bytes_in", func() int64 {
		in, _ := e.tree.CompactionLevelStats()
		var s int64
		for _, v := range in {
			s += v
		}
		return s
	})
	r.Counter("compact_bytes_out", func() int64 {
		_, out := e.tree.CompactionLevelStats()
		var s int64
		for _, v := range out {
			s += v
		}
		return s
	})
	if e.tree.SchedulerActive() {
		r.Counter("compact_jobs", func() int64 { return e.tree.SchedulerStats().JobsRun })
		r.Gauge("compact_running", func() float64 { return float64(e.tree.SchedulerStats().Running) })
		r.Gauge("compact_queued", func() float64 { return float64(e.tree.SchedulerStats().Queued) })
		r.Counter("compact_busy_ns", func() int64 { return e.tree.SchedulerStats().BusyNs })
	}
	r.Gauge("compact_debt_bytes", func() float64 { return float64(e.tree.CompactionDebt()) })
	for lvl := 0; lvl < e.tree.NumLevels(); lvl++ {
		lvl := lvl
		r.Gauge(fmt.Sprintf("lsm_l%d_files", lvl), func() float64 { return float64(e.tree.NumFiles(lvl)) })
		r.Gauge(fmt.Sprintf("lsm_l%d_bytes", lvl), func() float64 { return float64(e.tree.LevelBytes(lvl)) })
	}
	e.flow.registerObs(r, "")
}

// FlowState reports the current write-admission state.
func (e *Engine) FlowState() FlowState { return e.flow.current() }

// FlowStats reports the flow-control counter snapshot.
func (e *Engine) FlowStats() FlowStats { return e.flow.snapshot() }

// FlowStatsAt is FlowStats with the dwell segment still open at virtual time
// at included — benchmarks sampling mid-run use it so a window that ends
// under pressure still accounts that stretch.
func (e *Engine) FlowStatsAt(at int64) FlowStats { return e.flow.snapshotAt(at) }

// FlowSignals reports the raw pressure signals the flow controller polls:
// L0 file count and bytes, and the backlog (ImmZone occupancy plus
// sealed-but-unflushed slot bytes). Harnesses use it to assert the bounded
// memory footprint oracle.
func (e *Engine) FlowSignals() (l0Files int, l0Bytes int64, backlogBytes uint64) {
	files, bytes := e.tree.L0Pressure()
	pending := e.pendingFlushBytes.Load()
	if pending < 0 {
		pending = 0
	}
	return files, bytes, e.immArena.Used() + uint64(pending)
}

// DebugForceFlowState pins the flow-control state machine to state s at
// virtual time at, suppressing signal-driven transitions until
// DebugUnforceFlowState. Deterministic crash harnesses script stall phases
// with it; production code never calls it.
func (e *Engine) DebugForceFlowState(at int64, s FlowState) { e.flow.force(at, s) }

// DebugUnforceFlowState releases a DebugForceFlowState pin.
func (e *Engine) DebugUnforceFlowState() { e.flow.forceOff() }

// FilterStats reports memory-component negative-filter probes and rejections.
func (e *Engine) FilterStats() (probes, negatives int64) {
	return e.stats.FilterProbes.Load(), e.stats.FilterNegatives.Load()
}

// BlockCacheStats reports the shared block cache's hit/miss counters.
func (e *Engine) BlockCacheStats() (hits, misses int64) {
	st := e.tree.CacheStats()
	return st.Hits, st.Misses
}

// Tree exposes the storage component (tests and tooling).
func (e *Engine) Tree() *lsm.Tree { return e.tree }

// PoolSlots reports the current number of usable sub-MemTables.
func (e *Engine) PoolSlots() int { return e.pool.numSlots() }

// DebugTimers reports internal virtual-time accounting: cumulative slot
// allocation wait, flush-server jobs and busy time, spill-server jobs and
// busy time (tests and calibration tooling).
func (e *Engine) DebugTimers() (allocWaitNs, flushJobs, flushBusyNs, spillJobs, spillBusyNs int64) {
	fj, fb := e.flushServers.Stats()
	sj, sb := e.spillServer.Stats()
	return e.pool.allocWaitNs.Load(), fj, fb, sj, sb
}

// align8 pads entry lengths so offsets stay 8-byte aligned (the recovery
// scanner and lazy sync both rely on it).
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Put implements kvstore.DB: append to the core's sub-MemTable in the
// persistent cache and commit with one CAS on the packed header.
func (e *Engine) Put(th *hw.Thread, key, value []byte) error {
	return e.PutWithDeadline(th, key, value, e.opts.WriteStallDeadline)
}

// PutWithDeadline is Put bounded by deadlineNs virtual ns: if admission, a
// slot wait, or ImmZone backpressure would stall past the deadline the write
// fails with ErrStalled instead of blocking. deadlineNs <= 0 means no
// deadline (legacy blocking).
func (e *Engine) PutWithDeadline(th *hw.Thread, key, value []byte, deadlineNs int64) error {
	if err := e.err(); err != nil {
		return err
	}
	deadlineV := absDeadline(th, deadlineNs)
	if err := e.flow.admitWrite(th, deadlineV); err != nil {
		return err
	}
	return e.write(th, key, value, util.KindValue, deadlineV)
}

// Delete implements kvstore.DB (a tombstone append).
func (e *Engine) Delete(th *hw.Thread, key []byte) error {
	return e.DeleteWithDeadline(th, key, e.opts.WriteStallDeadline)
}

// DeleteWithDeadline is Delete under a write deadline (see PutWithDeadline).
func (e *Engine) DeleteWithDeadline(th *hw.Thread, key []byte, deadlineNs int64) error {
	if err := e.err(); err != nil {
		return err
	}
	deadlineV := absDeadline(th, deadlineNs)
	if err := e.flow.admitWrite(th, deadlineV); err != nil {
		return err
	}
	if err := e.write(th, key, nil, util.KindDelete, deadlineV); err != nil {
		return err
	}
	e.stats.Deletes.Add(1)
	return nil
}

// enqueueSealed queues a sealed slot for its copy-based flush, maintaining
// the backlog accounting and pressure state the flow controller reads.
func (e *Engine) enqueueSealed(th *hw.Thread, sealed *slot) {
	cnt, _, stail := unpackHdr(sealed.hdr.Load())
	e.trace.Emit(th.Clock.Now(), "memtable_seal", "shard", e.opts.Shard,
		"slot", sealed.idx, "entries", cnt, "bytes", stail)
	e.pendingFlushes.Add(1)
	e.pendingFlushBytes.Add(int64(stail))
	e.flushCh <- sealed
	e.flow.recompute(th.Clock.Now(), "memtable_seal")
}

func (e *Engine) write(th *hw.Thread, key, value []byte, kind util.ValueKind, deadlineV int64) error {
	if err := e.err(); err != nil {
		return err
	}
	seq := e.seq.Add(1)
	ikey := util.MakeInternalKey(nil, key, seq, kind)
	enc := kvstore.EncodeEntry(nil, ikey, value)
	need := align8(uint64(len(enc)))

	// Global metadata structure lookup: one DRAM access (Section III-A).
	core := th.Core
	th.ChargeDRAM(1)

	for {
		s := e.pool.slotFor(core)
		if s == nil {
			var aerr error
			th.InPhase(hw.PhaseOther, func() {
				s, aerr = e.pool.acquire(th, core, seq, deadlineV)
			})
			if aerr != nil {
				return aerr // ErrStalled: the slot wait overran the deadline
			}
			if s == nil {
				// The pool aborted: the engine failed while we waited.
				if err := e.err(); err != nil {
					return err
				}
				continue
			}
		}
		hdr := s.hdr.Load()
		count, state, tail := unpackHdr(hdr)
		if state != stateAllocated {
			// Slot was sealed under us (FlushAll); drop the mapping and retry.
			e.pool.coreSlot[core].CompareAndSwap(int32(s.idx), -1)
			continue
		}
		if tail+need > s.dataCap() {
			// Full: seal, queue the copy-based flush, grab a fresh one.
			if sealed := e.pool.sealForCore(th, core); sealed != nil {
				e.enqueueSealed(th, sealed)
			}
			continue
		}
		// Append the entry into the pinned cache lines, then commit
		// tail+counter with a single CAS (the persistence point).
		th.InPhase(hw.PhaseAppend, func() {
			e.m.Cache.Write(th.Clock, s.dataAddr()+tail, enc, e.poolPart)
		})
		// Record the key in the slot's negative filter BEFORE the commit CAS:
		// any entry a reader can observe as committed is already covered, so a
		// filter miss proves absence. A failed CAS leaves a spurious bit — a
		// false positive, never a false negative.
		if f := s.filter.Load(); f != nil {
			th.ChargeDRAM(1)
			f.Add(key)
		}
		if !e.pool.casHdr(th, s, hdr, packHdr(count+1, stateAllocated, tail+need)) {
			// Another thread on this core raced us; retry cleanly.
			continue
		}
		if kind == util.KindRangeDel {
			// Mirror the committed tombstone in DRAM before the call returns,
			// so any Get starting after DeleteRange observes the coverage.
			e.rangeTombs.add(lsm.RangeDel{
				Start: append([]byte(nil), key...),
				End:   append([]byte(nil), value...),
				Seq:   seq,
			})
		}
		if e.opts.LazyIndex {
			// Trigger 2: hand the slot to the background index thread every
			// SyncThreshold writes.
			if (count+1)%uint64(e.opts.SyncThreshold) == 0 {
				select {
				case e.syncCh <- syncReq{s: s, at: th.Clock.Now()}:
				default:
				}
			}
		} else {
			// PCSM mode: diligently update the sub-skiplist on the spot.
			th.InPhase(hw.PhaseIndex, func() {
				s.syncMu.Lock()
				if s.list != nil {
					s.list.Insert(ikey, util.PutFixed64(nil, tail), func(visits int) {
						th.Clock.Advance(int64(visits) * (e.m.Costs.DRAMAccess + e.m.Costs.SkiplistVisit) / 8)
					})
					s.listCount++
					s.listTail = tail + need
				}
				s.syncMu.Unlock()
			})
		}
		e.stats.Puts.Add(1)
		return nil
	}
}

// Get implements kvstore.DB. The freshest version may live in any active
// sub-MemTable, any flushed sub-ImmMemTable (directly or via the global
// skiplist), or the LSM tree; candidates are compared by sequence number.
func (e *Engine) Get(th *hw.Thread, key []byte) ([]byte, error) {
	if err := e.err(); err != nil {
		return nil, err
	}
	e.stats.Gets.Add(1)
	snapshot := e.seq.Load()
	var res kvstore.UserGetResult

	// 1. Active sub-MemTables: probe the slot's negative filter first — a
	// rejection skips both the trigger-1 lazy sync and the sub-skiplist
	// search (sound: write() adds to the filter before the commit CAS, so
	// the filter always leads the lazy index).
	for _, s := range e.pool.snapshotActive() {
		if f := s.filter.Load(); f != nil {
			th.ChargeDRAM(1)
			e.stats.FilterProbes.Add(1)
			if !f.MayContain(key) {
				e.stats.FilterNegatives.Add(1)
				continue
			}
		}
		if e.opts.LazyIndex && needsSync(s) {
			th.InPhase(hw.PhaseIndex, func() {
				if e.syncSlot(th, s) > 0 {
					e.stats.ReadSyncs.Add(1)
				}
			})
		}
		s.syncMu.Lock()
		list := s.list
		s.syncMu.Unlock()
		if list == nil {
			continue
		}
		// A KindRangeDel hit is structural (its value is the span's end key,
		// not a user value); coverage comes from rangeTombs below.
		if v, fseq, kind, ok := e.searchList(th, list, s.dataAddr(), s.dataCap(), e.poolPart, key, snapshot); ok && kind != util.KindRangeDel {
			res.Consider(v, fseq, kind)
		}
	}

	// 2. Flushed sub-ImmMemTables: the global skiplist covers compacted
	// tables; uncompacted ones are searched individually.
	e.mem.mu.RLock()
	global := e.mem.global
	globalFilter := e.mem.globalFilter // swapped together with global under mu
	var uncompacted []*immTable
	for _, t := range e.mem.imms {
		if !t.compacted {
			uncompacted = append(uncompacted, t)
		}
	}
	e.mem.mu.RUnlock()
	if e.opts.SkiplistCompaction {
		searchGlobal := true
		if globalFilter != nil {
			th.ChargeDRAM(1)
			e.stats.FilterProbes.Add(1)
			// Sound: compactInto adds to the filter before inserting into the
			// list, so any key present in global is present in its filter.
			if !globalFilter.MayContain(key) {
				e.stats.FilterNegatives.Add(1)
				searchGlobal = false
			}
		}
		if searchGlobal {
			gv, ok := global.Get(key, func(visits int) {
				th.Clock.Advance(int64(visits) * (e.m.Costs.DRAMAccess + e.m.Costs.SkiplistVisit) / 8)
			})
			if ok {
				gseq, kind, addr := decodeGlobalVal(gv)
				if gseq <= snapshot && kind != util.KindRangeDel {
					// The global list stores absolute ImmZone addresses; bound
					// the fetch by the zone's remaining extent.
					if zone := e.immArena.Region(); addr < zone.End() {
						// The zone may have been spilled and refilled under this
						// global-list snapshot; only trust the fetch if the entry
						// still carries the key and sequence the node recorded.
						if ik, val, okF := e.fetchEntry(th, addr, 0, zone.End()-addr, cache.DefaultPartition); okF &&
							string(ik.UserKey()) == string(key) && ik.Seq() == gseq {
							res.Consider(val, gseq, kind)
						}
					}
				}
			}
		}
	}
	for _, t := range uncompacted {
		// The imm filter is the slot's filter handed over at flush: it covers
		// every committed key of exactly this table.
		if f := t.filter; f != nil {
			th.ChargeDRAM(1)
			e.stats.FilterProbes.Add(1)
			if !f.MayContain(key) {
				e.stats.FilterNegatives.Add(1)
				continue
			}
		}
		if v, fseq, kind, ok := e.searchList(th, t.list, t.base, t.dataLen, cache.DefaultPartition, key, snapshot); ok && kind != util.KindRangeDel {
			res.Consider(v, fseq, kind)
		}
	}

	// 3. The LSM tree — skippable when the memory component already holds a
	// version newer than anything ever spilled.
	if !res.Found || res.Seq <= e.maxSpilledSeq.Load() {
		var v []byte
		var fseq uint64
		var found, deleted bool
		var terr error
		th.InPhase(hw.PhaseSST, func() {
			v, fseq, found, deleted, terr = e.tree.Get(th, key, snapshot)
		})
		if terr != nil {
			return nil, terr
		}
		if found {
			res.Consider(v, fseq, util.KindValue)
		} else if deleted {
			res.Consider(nil, fseq, util.KindDelete)
		}
	}

	// Memory-resident range tombstones: the tree applies its own coverage,
	// but a tombstone not yet spilled can hide older versions from any layer.
	// Sound without consulting the tree here: a candidate the tree check was
	// skipped for has res.Seq > maxSpilledSeq, and every tree tombstone's
	// sequence is at or below maxSpilledSeq, so it could not cover anyway.
	if cover := e.rangeTombs.coverSeq(key, snapshot); cover > 0 && (!res.Found || cover > res.Seq) {
		return nil, kvstore.ErrNotFound
	}
	if !res.Found || res.Kind == util.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return res.Value, nil
}

// Scan implements kvstore.DB: a merged ordered walk over every source.
func (e *Engine) Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	if err := e.err(); err != nil {
		return 0, err
	}
	snapshot := e.seq.Load()
	its, err := e.internalIterators(th)
	if err != nil {
		return 0, err
	}
	merged := lsm.NewMergingIterator(its...)
	return kvstore.UserScanTombs(merged, start, snapshot, limit, e.visibleRangeTombs(snapshot), fn), nil
}

// internalIterators returns one iterator per live data source (active slots,
// flushed tables, the LSM tree), billing the same index syncs a scan performs.
// The sharded router merges these across shards for cross-shard scans.
func (e *Engine) internalIterators(th *hw.Thread) ([]lsm.Iterator, error) {
	var its []lsm.Iterator
	for _, s := range e.pool.snapshotActive() {
		// Scans need complete indexes; bill the sync like Get's trigger-1.
		th.InPhase(hw.PhaseIndex, func() {
			if e.syncSlot(th, s) > 0 {
				e.stats.ReadSyncs.Add(1)
			}
		})
		s.syncMu.Lock()
		list := s.list
		s.syncMu.Unlock()
		if list != nil {
			its = append(its, e.newTableIter(th, list, s.dataAddr(), s.dataCap(), e.poolPart))
		}
	}
	e.mem.mu.RLock()
	for i := len(e.mem.imms) - 1; i >= 0; i-- {
		t := e.mem.imms[i]
		its = append(its, e.newTableIter(th, t.list, t.base, t.dataLen, cache.DefaultPartition))
	}
	e.mem.mu.RUnlock()
	treeIt, err := e.tree.NewIterator(th)
	if err != nil {
		return nil, err
	}
	its = append(its, treeIt)
	return its, nil
}

// FlushAll implements kvstore.DB: seal everything, drain the flush pipeline,
// spill the ImmZone, and wait for the tree to settle.
func (e *Engine) FlushAll(th *hw.Thread) error {
	if err := e.err(); err != nil {
		return err
	}
	for core := range e.pool.coreSlot {
		if s := e.pool.sealForCore(th, core); s != nil {
			count, _, _ := unpackHdr(s.hdr.Load())
			if count == 0 {
				// Empty slot: free it directly rather than flushing nothing.
				e.pool.markFree(th, s, th.Clock.Now())
				continue
			}
			_, _, stail := unpackHdr(s.hdr.Load())
			e.pendingFlushes.Add(1)
			e.pendingFlushBytes.Add(int64(stail))
			e.flushCh <- s
		}
	}
	for e.pendingFlushes.Load() > 0 {
		if err := e.err(); err != nil {
			return err
		}
		runtime.Gosched()
	}
	e.spill(th)
	if e.tree.SchedulerActive() {
		e.tree.Kick(th.Clock.Now())
		e.tree.WaitCompactIdle(th)
	} else {
		// Legacy inline mode: an earlier async spill may still be mid-service
		// (including the compaction it tows behind it) — settle that chain,
		// then pay down any remaining debt so FlushAll leaves the tree as
		// quiet as the scheduler branch does.
		e.quiesceSpills()
		th.InPhase(hw.PhaseCompact, func() {
			if err := e.tree.MaybeCompact(th); err != nil {
				e.fail(err)
			}
		})
		e.flow.recompute(th.Clock.Now(), "flushall_compact")
	}
	// Advance the caller past all background virtual time.
	th.Clock.AdvanceTo(e.flushServers.EarliestFree())
	return e.err()
}

// Halt crash-stops the engine: all operations begin failing immediately and
// background threads abandon their queued work instead of completing it.
// Used by crash simulation, where a graceful Close would persist more state
// than a power failure leaves behind.
func (e *Engine) Halt() { e.fail(errEngineCrashed) }

// Close implements kvstore.DB.
func (e *Engine) Close(th *hw.Thread) error {
	if e.closed.Swap(true) {
		return nil
	}
	// Drain flushers first: an in-flight flush may still signal the spill or
	// index threads, so their channels close only after every flusher exits.
	close(e.flushCh)
	e.flushWG.Wait()
	close(e.spillCh)
	e.spillWG.Wait()
	e.tree.StopScheduler()
	close(e.syncCh)
	close(e.compactCh)
	e.indexWG.Wait()
	// Graceful shutdown: write the pinned pool back to the PMem before
	// surrendering the partition, so a close is never lossier than a crash
	// (eADR would have drained these lines anyway). A crash-stopped engine
	// skips this — the power is already off.
	if p := e.failed.Load(); p == nil || *p != errEngineCrashed {
		if r, ok := e.m.LookupRegion(e.opts.regionName("pool")); ok {
			th := e.m.NewThread(0).SetName(fmt.Sprintf("shard%d/close", e.opts.Shard))
			e.m.Cache.FlushOpt(th.Clock, r.Addr, int(r.Size))
		}
	}
	// A shared partition belongs to the Sharded router that reserved it.
	if e.opts.SharedPartition == nil {
		e.m.Cache.Release(e.poolPart)
	}
	if p := e.failed.Load(); p != nil {
		return *p
	}
	return nil
}

var _ kvstore.DB = (*Engine)(nil)
