package core

import (
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/util"
)

// Batch is a multi-key transaction in the sense of Section III-A's
// discussion: all of its writes are appended to the *same* sub-MemTable (the
// transaction thread is bound to one core) and committed by a single CAS on
// the packed header — so after a crash either every entry of the batch is
// visible or none is.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key   []byte
	value []byte
	kind  util.ValueKind
}

// Put queues a write into the batch.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		kind:  util.KindValue,
	})
}

// Delete queues a tombstone into the batch.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), kind: util.KindDelete})
}

// DeleteRange queues a range tombstone covering [start, end) into the batch.
// Like the point ops it commits atomically with the rest of the batch.
func (b *Batch) DeleteRange(start, end []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), start...),
		value: append([]byte(nil), end...),
		kind:  util.KindRangeDel,
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply commits the batch atomically. All entries go to the calling core's
// sub-MemTable; the commit point is one CAS that bumps the table counter by
// the batch size and the tail past every entry. A batch larger than a
// sub-MemTable's capacity is rejected.
func (e *Engine) Apply(th *hw.Thread, b *Batch) error {
	return e.ApplyWithDeadline(th, b, e.opts.WriteStallDeadline)
}

// ApplyWithDeadline is Apply under a write deadline (see PutWithDeadline).
// Admission and the deadline are checked before any state changes, so a
// rejected batch is fully absent.
func (e *Engine) ApplyWithDeadline(th *hw.Thread, b *Batch, deadlineNs int64) error {
	if len(b.ops) == 0 {
		return nil
	}
	if err := e.err(); err != nil {
		return err
	}
	deadlineV := absDeadline(th, deadlineNs)
	if err := e.flow.admitWrite(th, deadlineV); err != nil {
		return err
	}
	// Consecutive sequence numbers for a directly applied batch.
	firstSeq := e.seq.Add(uint64(len(b.ops))) - uint64(len(b.ops)) + 1
	seqs := make([]uint64, len(b.ops))
	for i := range seqs {
		seqs[i] = firstSeq + uint64(i)
	}
	return e.commitOps(th, b.ops, seqs, deadlineV)
}

// commitOps appends ops (with pre-assigned sequence numbers seqs, one per op)
// to the calling core's sub-MemTable and commits them all with a single CAS
// on the packed header — the common commit primitive behind Apply, the
// group-commit writers, and two-phase recovery replay. Sequence numbers are
// explicit because group commit concatenates requests whose seqs were drawn
// from the shared counter at arrival time and recovery replays the seqs the
// prepare record recorded.
//
// deadlineV bounds the slot wait (0 = none). Callers that must not fail —
// two-phase apply past its commit marker, recovery replay — pass 0; a
// deadline expiry surfaces before the commit CAS, so a stalled batch is
// fully absent.
func (e *Engine) commitOps(th *hw.Thread, ops []batchOp, seqs []uint64, deadlineV int64) error {
	if err := e.err(); err != nil {
		return err
	}
	if len(ops) == 0 {
		return nil
	}
	var enc []byte
	for i, op := range ops {
		ik := util.MakeInternalKey(nil, op.key, seqs[i], op.kind)
		entry := kvstore.EncodeEntry(nil, ik, op.value)
		enc = append(enc, entry...)
		if pad := align8(uint64(len(entry))) - uint64(len(entry)); pad > 0 {
			enc = append(enc, make([]byte, pad)...)
		}
	}
	need := uint64(len(enc))

	core := th.Core
	th.ChargeDRAM(1)
	for {
		s := e.pool.slotFor(core)
		if s == nil {
			var aerr error
			th.InPhase(hw.PhaseOther, func() {
				s, aerr = e.pool.acquire(th, core, seqs[0], deadlineV)
			})
			if aerr != nil {
				return aerr // ErrStalled before any append: nothing committed
			}
			if s == nil {
				if err := e.err(); err != nil {
					return err
				}
				continue
			}
		}
		if need > s.dataCap() {
			return fmt.Errorf("cachekv: batch of %d bytes exceeds sub-MemTable capacity %d",
				need, s.dataCap())
		}
		hdr := s.hdr.Load()
		count, state, tail := unpackHdr(hdr)
		if state != stateAllocated {
			e.pool.coreSlot[core].CompareAndSwap(int32(s.idx), -1)
			continue
		}
		if tail+need > s.dataCap() {
			if sealed := e.pool.sealForCore(th, core); sealed != nil {
				e.enqueueSealed(th, sealed)
			}
			continue
		}
		th.InPhase(hw.PhaseAppend, func() {
			e.m.Cache.Write(th.Clock, s.dataAddr()+tail, enc, e.poolPart)
		})
		// Cover every batch key in the slot's negative filter before the
		// commit CAS, mirroring write(): a failed CAS only leaves spurious
		// false-positive bits.
		if f := s.filter.Load(); f != nil {
			th.ChargeDRAM(1)
			for _, op := range ops {
				f.Add(op.key)
			}
		}
		// The transaction's commit point: counter += len(ops), tail += need,
		// in one atomic compare-and-swap.
		if !e.pool.casHdr(th, s, hdr, packHdr(count+uint64(len(ops)), stateAllocated, tail+need)) {
			continue
		}
		for i, op := range ops {
			if op.kind == util.KindRangeDel {
				e.rangeTombs.add(lsm.RangeDel{
					Start: append([]byte(nil), op.key...),
					End:   append([]byte(nil), op.value...),
					Seq:   seqs[i],
				})
				e.stats.RangeDeletes.Add(1)
			}
		}
		if e.opts.LazyIndex {
			if (count+uint64(len(ops)))%uint64(e.opts.SyncThreshold) < uint64(len(ops)) {
				select {
				case e.syncCh <- syncReq{s: s, at: th.Clock.Now()}:
				default:
				}
			}
		} else {
			th.InPhase(hw.PhaseIndex, func() {
				s.syncMu.Lock()
				if s.list != nil {
					off := tail
					for i, op := range ops {
						ik := util.MakeInternalKey(nil, op.key, seqs[i], op.kind)
						entry := kvstore.EncodeEntry(nil, ik, op.value)
						s.list.Insert(ik, util.PutFixed64(nil, off), nil)
						off += align8(uint64(len(entry)))
					}
					s.listCount = count + uint64(len(ops))
					s.listTail = tail + need
				}
				s.syncMu.Unlock()
			})
		}
		e.stats.Puts.Add(int64(len(ops)))
		return nil
	}
}
