// Package core implements CacheKV, the paper's contribution: an LSM-based KV
// store whose write buffer lives in the persistent CPU caches of an
// eADR-enabled platform. The design has four cooperating mechanisms, each in
// its own file:
//
//   - pool.go: the per-core sub-MemTable pool pinned in the LLC via CAT
//     (Section III-A), including the packed 64-bit header updated by CAS and
//     the miss-counter-driven elasticity;
//   - index.go: the lazy index update machinery — DRAM sub-skiplists synced
//     from sub-MemTables on read arrival, write thresholds, or seal
//     (Section III-B);
//   - flush.go: the copy-based flush that non-temporally copies full
//     sub-ImmMemTables into the PMem ImmZone (Section III-C), the
//     sub-skiplist compaction into a global skiplist (Section III-D), and
//     the L0 spill into the LSM tree;
//   - engine.go: the kvstore.DB surface, background threads, and crash
//     recovery (Section III-E).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/memfilter"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// Sub-MemTable states, stored in the 2-bit state field of the packed header.
const (
	stateFree      = 0
	stateAllocated = 1
	stateImmutable = 2
)

// Packed header layout (one 64-bit word, updated atomically, mirrored into
// the persistent cache): tail pointer in bits 0..23 (24 bits), state in bits
// 24..25 (2 bits), table counter in bits 26..63 (38 bits) — exactly the field
// widths of Section III-A.
const (
	tailBits    = 24
	stateShift  = tailBits
	countShift  = tailBits + 2
	tailMask    = (1 << tailBits) - 1
	stateMask   = 0x3
	slotHdrSize = 64 // one cacheline: packed word + remaining-space field + padding
)

func packHdr(count uint64, state uint64, tail uint64) uint64 {
	return count<<countShift | state<<stateShift | tail&tailMask
}

func unpackHdr(h uint64) (count, state, tail uint64) {
	return h >> countShift, h >> stateShift & stateMask, h & tailMask
}

// slot is one sub-MemTable: a header cacheline followed by an append-only
// data region, resident in the pinned cache partition. The size is atomic
// because elasticity resizes free slots while other threads may still glance
// at stale slot pointers.
type slot struct {
	idx  int
	addr uint64        // absolute PMem address of the header
	size atomic.Uint64 // total bytes including the header line

	hdr atomic.Uint64 // packed header (authoritative mirror of the cached word)

	// DRAM-side lazy index state (Section III-B), guarded by syncMu.
	syncMu    sync.Mutex
	list      *skiplist.List
	listCount uint64 // entries reflected in the sub-skiplist
	listTail  uint64 // data offset the sub-skiplist has consumed

	// filter is the DRAM-side negative filter over this slot's user keys.
	// Writers Add before the commit CAS, so a committed entry is always
	// covered and a negative probe soundly skips both the sub-skiplist
	// search and the trigger-1 lazy sync. Replaced wholesale at acquire.
	filter atomic.Pointer[memfilter.Filter]

	owner    atomic.Int32 // core the slot is assigned to (-1 when free)
	sealedAt atomic.Int64 // virtual time the slot became immutable
	freeAt   atomic.Int64 // virtual time its copy-based flush completes
}

func newSlot(idx int, addr, size uint64) *slot {
	s := &slot{idx: idx, addr: addr}
	s.size.Store(size)
	s.owner.Store(-1)
	return s
}

func (s *slot) dataCap() uint64  { return s.size.Load() - slotHdrSize }
func (s *slot) dataAddr() uint64 { return s.addr + slotHdrSize }

// pool is the sub-MemTable pool: a pinned region of the LLC carved into
// slots, plus the DRAM global metadata structure mapping cores to slots.
// The slot slice is copy-on-write (swapped under mu, read lock-free) so the
// hot write path never takes the pool lock.
type pool struct {
	m         *hw.Machine
	region    hw.Region
	partition cache.PartitionID

	mu      sync.Mutex
	cond    *sync.Cond
	slots   atomic.Pointer[[]*slot]
	minSize uint64
	maxSize uint64

	// Global metadata structure (kept in DRAM per Section III-A): index of
	// the sub-MemTable assigned to each core.
	coreSlot []atomic.Int32 // slot index per core, -1 = none

	missCounter   atomic.Int64 // cores that found no free sub-MemTable
	missThreshold int64
	elastic       bool

	// sealFn is installed by the engine: it enqueues a force-sealed slot for
	// a copy-based flush. Called with p.mu held; must not block.
	sealFn func(*slot)

	// aborted is set when the engine fails: acquire stops blocking and
	// returns nil so callers can surface the error instead of hanging.
	aborted atomic.Bool

	// filterBits is the bits-per-key budget for per-slot negative filters
	// (installed by the engine right after construction).
	filterBits int

	// freesSinceMiss counts slot releases with no allocation miss; a long
	// quiet stretch triggers the inverse elasticity move (merging free
	// neighbours back into bigger sub-MemTables to cut flush overhead).
	freesSinceMiss atomic.Int64

	allocWaitNs atomic.Int64 // cumulative virtual time spent waiting for a free slot
}

const poolHeaderMagic = 0xCAC4EC001

// mergeQuietFrees is how many consecutive miss-free slot releases signal an
// over-provisioned pool worth coalescing.
const mergeQuietFrees = 8

// poolHeaderBytes is the persistent slot-geometry table at the head of the
// pool region: magic, slot count, then {offset,size} pairs.
const poolHeaderBytes = 4096

func (p *pool) slotList() []*slot { return *p.slots.Load() }

// setSlots installs a new slot slice (p.mu held).
func (p *pool) setSlots(s []*slot) { p.slots.Store(&s) }

// newPool carves region into slots of slotBytes each and persists the
// geometry. The caller has already pinned the region into the cache.
func newPool(m *hw.Machine, region hw.Region, part cache.PartitionID, slotBytes uint64, cores int, elastic bool, missThreshold int64, th *hw.Thread) (*pool, error) {
	p := &pool{
		m:             m,
		region:        region,
		partition:     part,
		minSize:       64 << 10,
		maxSize:       region.Size - poolHeaderBytes,
		coreSlot:      make([]atomic.Int32, cores),
		missThreshold: missThreshold,
		elastic:       elastic,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.coreSlot {
		p.coreSlot[i].Store(-1)
	}
	usable := region.Size - poolHeaderBytes
	n := usable / slotBytes
	if n == 0 {
		return nil, fmt.Errorf("core: pool of %d bytes cannot hold a %d-byte sub-MemTable", region.Size, slotBytes)
	}
	var slots []*slot
	off := uint64(poolHeaderBytes)
	for i := uint64(0); i < n; i++ {
		slots = append(slots, newSlot(int(i), region.Addr+off, slotBytes))
		off += slotBytes
	}
	p.setSlots(slots)
	p.persistGeometry(th)
	for _, s := range slots {
		p.writeHdr(th, s, packHdr(0, stateFree, 0))
	}
	return p, nil
}

// persistGeometry writes the slot table so recovery can re-find the slots.
// Caller holds p.mu (or the pool is not yet shared).
func (p *pool) persistGeometry(th *hw.Thread) {
	slots := p.slotList()
	buf := util.PutFixed64(nil, poolHeaderMagic)
	buf = util.PutFixed32(buf, uint32(len(slots)))
	for _, s := range slots {
		buf = util.PutFixed32(buf, uint32(s.addr-p.region.Addr))
		buf = util.PutFixed32(buf, uint32(s.size.Load()))
	}
	if len(buf) > poolHeaderBytes {
		panic("core: pool geometry table overflow")
	}
	p.m.Cache.NTWrite(th.Clock, p.region.Addr, buf)
}

// loadGeometry reads the persisted slot table (crash recovery).
func loadGeometry(m *hw.Machine, region hw.Region, cores int, elastic bool, missThreshold int64) (*pool, error) {
	hdr := make([]byte, poolHeaderBytes)
	m.PMem.LoadRaw(region.Addr, hdr)
	if util.Fixed64(hdr) != poolHeaderMagic {
		return nil, fmt.Errorf("core: no pool found in region %q", region.Name)
	}
	n := int(util.Fixed32(hdr[8:]))
	if n <= 0 || 12+8*n > poolHeaderBytes {
		return nil, fmt.Errorf("core: corrupt pool geometry (%d slots)", n)
	}
	p := &pool{
		m:             m,
		region:        region,
		minSize:       64 << 10,
		maxSize:       region.Size - poolHeaderBytes,
		coreSlot:      make([]atomic.Int32, cores),
		missThreshold: missThreshold,
		elastic:       elastic,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.coreSlot {
		p.coreSlot[i].Store(-1)
	}
	var slots []*slot
	for i := 0; i < n; i++ {
		off := uint64(util.Fixed32(hdr[12+8*i:]))
		size := uint64(util.Fixed32(hdr[16+8*i:]))
		s := newSlot(i, region.Addr+off, size)
		var word [8]byte
		m.PMem.LoadRaw(s.addr, word[:])
		s.hdr.Store(util.Fixed64(word[:]))
		slots = append(slots, s)
	}
	p.setSlots(slots)
	return p, nil
}

// writeHdr updates a slot's packed header both in the authoritative atomic
// and in the persistent cache line, charging the thread one atomic op plus
// the cache store.
func (p *pool) writeHdr(th *hw.Thread, s *slot, word uint64) {
	s.hdr.Store(word)
	var buf [8]byte
	b := util.PutFixed64(buf[:0], word)
	p.m.Cache.Write(th.Clock, s.addr, b, p.partition)
	th.ChargeAtomic()
}

// casHdr performs the paper's single-CAS commit of {counter,state,tail},
// mirroring the new word into the cache on success.
func (p *pool) casHdr(th *hw.Thread, s *slot, old, new uint64) bool {
	if !s.hdr.CompareAndSwap(old, new) {
		return false
	}
	var buf [8]byte
	b := util.PutFixed64(buf[:0], new)
	p.m.Cache.Write(th.Clock, s.addr, b, p.partition)
	th.ChargeAtomic()
	return true
}

// slotFor returns the slot currently assigned to core, or nil.
func (p *pool) slotFor(core int) *slot {
	idx := p.coreSlot[core].Load()
	if idx < 0 {
		return nil
	}
	slots := p.slotList()
	if int(idx) >= len(slots) {
		return nil
	}
	return slots[idx]
}

// acquire assigns a free sub-MemTable to core, blocking (in both real and
// virtual time) until one is available. Waiting time is how write stalls
// surface when the background flush cannot keep up (Exp#5 / Exp#7).
//
// deadlineV bounds the wait on the virtual clock: while no slot frees, each
// retry advances the clock by a capped exponential backoff step, and once it
// passes the deadline the call returns ErrStalled instead of blocking on. A
// zero deadline keeps the legacy wait-forever contract; a nil slot with a nil
// error means the pool aborted (the caller re-checks the engine error).
func (p *pool) acquire(th *hw.Thread, core int, listSeed uint64, deadlineV int64) (*slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	backoff := int64(0)
	for {
		if p.aborted.Load() {
			return nil, nil
		}
		var best *slot
		for _, s := range p.slotList() {
			_, state, _ := unpackHdr(s.hdr.Load())
			if state == stateFree && s.size.Load() > 0 {
				best = s
				break
			}
		}
		if best != nil {
			// Wait out the (virtual) tail of the flush that freed it.
			if fa := best.freeAt.Load(); fa > th.Clock.Now() {
				if deadlineV > 0 && fa > deadlineV {
					return nil, ErrStalled
				}
				p.allocWaitNs.Add(fa - th.Clock.Now())
				th.Clock.AdvanceTo(fa)
			}
			best.syncMu.Lock()
			best.list = skiplist.New(icmp, listSeed)
			best.listCount = 0
			best.listTail = 0
			best.syncMu.Unlock()
			best.filter.Store(newFilter(expectedSlotKeys(best.dataCap()), p.filterBits))
			best.owner.Store(int32(core))
			p.writeHdr(th, best, packHdr(0, stateAllocated, 0))
			p.coreSlot[core].Store(int32(best.idx))
			return best, nil
		}
		// No free sub-MemTable: count the miss and, if the pressure is
		// sustained, let elasticity split free slots next time around.
		p.missCounter.Add(1)
		p.freesSinceMiss.Store(0)
		if p.elastic && p.missCounter.Load() >= p.missThreshold {
			if p.splitFreeSlotsLocked(th) {
				p.missCounter.Store(0)
				continue
			}
		}
		// If nothing is in flight either, every slot is parked on an idle
		// core — force-rotate the fullest one into the flush pipeline so the
		// pool cannot starve this waiter.
		inflight := false
		var fullest *slot
		var fullestTail uint64
		for _, s := range p.slotList() {
			_, state, tail := unpackHdr(s.hdr.Load())
			switch state {
			case stateImmutable:
				inflight = true
			case stateAllocated:
				if fullest == nil || tail > fullestTail {
					fullest, fullestTail = s, tail
				}
			}
		}
		if !inflight && fullest != nil && p.sealFn != nil {
			if p.forceSealLocked(th, fullest) {
				p.sealFn(fullest)
				continue
			}
		}
		if deadlineV > 0 {
			// Deadline-aware wait: charge a doubling, capped virtual backoff
			// step per retry so the stalled writer's clock converges on its
			// deadline, then fail fast instead of blocking indefinitely.
			if th.Clock.Now() >= deadlineV {
				return nil, ErrStalled
			}
			if backoff == 0 {
				backoff = stallBackoffBaseNs
			} else if backoff < stallBackoffMaxNs {
				backoff *= 2
			}
			step := backoff
			if rem := deadlineV - th.Clock.Now(); step > rem {
				step = rem
			}
			p.allocWaitNs.Add(step)
			th.Clock.Advance(step)
		}
		p.cond.Wait()
	}
}

// sealForCore marks a core's slot immutable and detaches it, returning the
// slot for flushing. Returns nil if the core had no allocated slot.
func (p *pool) sealForCore(th *hw.Thread, core int) *slot {
	s := p.slotFor(core)
	if s == nil {
		return nil
	}
	for {
		old := s.hdr.Load()
		count, state, tail := unpackHdr(old)
		if state != stateAllocated {
			return nil
		}
		if p.casHdr(th, s, old, packHdr(count, stateImmutable, tail)) {
			break
		}
	}
	s.sealedAt.Store(th.Clock.Now())
	p.coreSlot[core].Store(-1)
	s.owner.Store(-1)
	return s
}

// forceSealLocked transitions another core's allocated slot to Immutable and
// detaches it from its owner. Safe against the owner's concurrent append:
// the owner's commit CAS observes the state change and retries. p.mu held.
func (p *pool) forceSealLocked(th *hw.Thread, s *slot) bool {
	for {
		old := s.hdr.Load()
		count, state, tail := unpackHdr(old)
		if state != stateAllocated {
			return false
		}
		if p.casHdr(th, s, old, packHdr(count, stateImmutable, tail)) {
			break
		}
	}
	s.sealedAt.Store(th.Clock.Now())
	if owner := s.owner.Load(); owner >= 0 {
		p.coreSlot[owner].CompareAndSwap(int32(s.idx), -1)
	}
	s.owner.Store(-1)
	return true
}

// markFree returns a flushed slot to the pool at virtual completion time
// doneAt and wakes waiters.
func (p *pool) markFree(th *hw.Thread, s *slot, doneAt int64) {
	p.mu.Lock()
	s.freeAt.Store(doneAt)
	p.writeHdr(th, s, packHdr(0, stateFree, 0))
	// Elasticity fires here: misses accumulated while everything was busy
	// split the slot the moment it frees, doubling the supply; conversely a
	// long miss-free stretch merges free neighbours back together, trading
	// parallelism for fewer, cheaper background flushes (Section III-A).
	if p.elastic && p.missCounter.Load() >= p.missThreshold {
		if p.splitFreeSlotsLocked(th) {
			p.missCounter.Store(0)
			p.freesSinceMiss.Store(0)
		}
	} else if p.elastic {
		// Quiet release: decay residual miss pressure, and once a long
		// miss-free stretch has passed, coalesce free buddies.
		if p.missCounter.Load() > 0 {
			p.missCounter.Add(-1)
		} else if n := p.freesSinceMiss.Add(1); n >= mergeQuietFrees {
			if p.mergeFreeSlotsLocked(th) {
				p.freesSinceMiss.Store(0)
			}
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// splitFreeSlotsLocked halves every free slot above the minimum size,
// doubling the supply of sub-MemTables (the paper's elasticity response to a
// high miss counter). Returns whether anything changed. p.mu held.
func (p *pool) splitFreeSlotsLocked(th *hw.Thread) bool {
	old := p.slotList()
	changed := false
	next := make([]*slot, len(old), len(old)+8)
	copy(next, old)
	for _, s := range old {
		_, state, _ := unpackHdr(s.hdr.Load())
		sz := s.size.Load()
		if state != stateFree || sz/2 < p.minSize || sz == 0 {
			continue
		}
		half := sz / 2
		ns := newSlot(len(next), s.addr+half, half)
		s.size.Store(half)
		next = append(next, ns)
		changed = true
	}
	if !changed {
		return false
	}
	p.setSlots(next)
	p.persistGeometry(th)
	for _, s := range next[len(old):] {
		p.writeHdr(th, s, packHdr(0, stateFree, 0))
	}
	return true
}

// mergeFreeSlotsLocked coalesces adjacent free slots pairwise (the inverse
// elasticity move, reducing background flush overhead when pressure is low).
// The emptied buddy keeps size 0 and is skipped by acquire. p.mu held.
func (p *pool) mergeFreeSlotsLocked(th *hw.Thread) bool {
	slots := p.slotList()
	byAddr := make(map[uint64]*slot, len(slots))
	for _, s := range slots {
		if s.size.Load() == 0 {
			continue
		}
		byAddr[s.addr] = s
	}
	changed := false
	for _, s := range slots {
		sz := s.size.Load()
		if sz == 0 || sz*2 > p.maxSize {
			continue
		}
		_, st, _ := unpackHdr(s.hdr.Load())
		if st != stateFree {
			continue
		}
		buddy, ok := byAddr[s.addr+sz]
		if !ok || buddy.size.Load() != sz {
			continue
		}
		_, bst, _ := unpackHdr(buddy.hdr.Load())
		if bst != stateFree {
			continue
		}
		s.size.Store(sz * 2)
		delete(byAddr, buddy.addr)
		buddy.size.Store(0)
		changed = true
	}
	if changed {
		p.persistGeometry(th)
	}
	return changed
}

// snapshotActive returns the slots currently holding data (allocated or
// immutable), for the read path.
func (p *pool) snapshotActive() []*slot {
	var out []*slot
	for _, s := range p.slotList() {
		_, state, _ := unpackHdr(s.hdr.Load())
		if state == stateAllocated || state == stateImmutable {
			out = append(out, s)
		}
	}
	return out
}

// numSlots returns how many usable slots exist (for stats and tests).
func (p *pool) numSlots() int {
	n := 0
	for _, s := range p.slotList() {
		if s.size.Load() > 0 {
			n++
		}
	}
	return n
}

func icmp(a, b []byte) int {
	return util.CompareInternal(util.InternalKey(a), util.InternalKey(b))
}

// minEntryBytes is the conservative (small) entry-size estimate used to size
// per-table negative filters: 8-byte length header plus an internal key and
// no value, rounded to the 8-byte append alignment.
const minEntryBytes = 48

// expectedSlotKeys estimates how many entries a data region of cap bytes can
// hold, for filter sizing. Overestimating only widens the filter.
func expectedSlotKeys(dataCap uint64) int {
	n := dataCap / minEntryBytes
	if n < 16 {
		n = 16
	}
	return int(n)
}
