// Package lsm implements the storage component shared by every engine in the
// repository: a leveled LSM-tree of SSTables living in the PMem file layer,
// with a version set persisted through a manifest log, L0 flush, leveled
// compaction, and merged iteration — the LevelDB substrate the paper builds
// CacheKV on. A SingleLevel mode collapses the hierarchy to one sorted level,
// which is how SLM-DB organizes its on-storage data.
package lsm

import (
	"container/heap"

	"cachekv/internal/util"
)

// Iterator is the internal-key iterator every source (memtable adapters,
// SSTables, merged views) implements. Keys are internal keys ordered by
// util.CompareInternal.
type Iterator interface {
	Valid() bool
	SeekToFirst()
	Seek(ikey util.InternalKey)
	Next()
	Key() util.InternalKey
	Value() []byte
}

// mergeItem is one source inside the merge heap.
type mergeItem struct {
	it  Iterator
	ord int // tie-break: lower ord wins (newer source)
}

type mergeHeap []*mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := util.CompareInternal(h[i].it.Key(), h[j].it.Key())
	if c != 0 {
		return c < 0
	}
	return h[i].ord < h[j].ord
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergingIterator merges several sources into one ordered stream. Sources
// listed earlier win ties on identical internal keys (callers order newest
// first, although identical internal keys cannot occur between well-formed
// sources because sequence numbers are unique).
type MergingIterator struct {
	all []*mergeItem
	h   mergeHeap
}

// NewMergingIterator builds a merged view of its (unpositioned) sources.
func NewMergingIterator(its ...Iterator) *MergingIterator {
	m := &MergingIterator{}
	for i, it := range its {
		m.all = append(m.all, &mergeItem{it: it, ord: i})
	}
	return m
}

func (m *MergingIterator) rebuild() {
	m.h = m.h[:0]
	for _, item := range m.all {
		if item.it.Valid() {
			m.h = append(m.h, item)
		}
	}
	heap.Init(&m.h)
}

// SeekToFirst positions every source at its start.
func (m *MergingIterator) SeekToFirst() {
	for _, item := range m.all {
		item.it.SeekToFirst()
	}
	m.rebuild()
}

// Seek positions at the first merged entry >= ikey.
func (m *MergingIterator) Seek(ikey util.InternalKey) {
	for _, item := range m.all {
		item.it.Seek(ikey)
	}
	m.rebuild()
}

// Valid reports whether the merged stream has a current entry.
func (m *MergingIterator) Valid() bool { return len(m.h) > 0 }

// Key returns the current smallest internal key across sources.
func (m *MergingIterator) Key() util.InternalKey { return m.h[0].it.Key() }

// Value returns the value paired with Key.
func (m *MergingIterator) Value() []byte { return m.h[0].it.Value() }

// Next advances the winning source and restores heap order.
func (m *MergingIterator) Next() {
	top := m.h[0]
	top.it.Next()
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}
