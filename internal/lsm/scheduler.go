package lsm

import (
	"sync"
	"sync/atomic"

	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
	"cachekv/internal/obs"
)

// SchedulerConfig configures the background compaction scheduler: a pool of
// worker goroutines, each with its own hw.Thread attributed to PhaseCompact,
// that drain the tree's compaction debt in priority order while the
// foreground write path stays decoupled from reorganization cost.
type SchedulerConfig struct {
	// Workers is the worker-thread count; <= 0 disables the scheduler.
	Workers int
	// OnError receives background compaction failures (the engine's fail
	// hook). The scheduler stops picking after the first error.
	OnError func(error)
	// OnJobDone fires after each job's version edit installs, with the
	// job's virtual completion time — engines refresh flow control here.
	OnJobDone func(at int64)
	// Err reports the engine's sticky background error; workers idle once it
	// returns non-nil (crash-stop) instead of racing a dying engine.
	Err func() error
	// Trace receives per-job lifecycle events; nil is safe.
	Trace *obs.Trace
}

// SchedulerStats is a point-in-time snapshot of scheduler activity.
type SchedulerStats struct {
	Workers   int
	JobsRun   int64 // completed compaction jobs
	Running   int   // jobs executing right now
	Queued    int   // levels over limit with no job claimed yet
	BusyNs    int64 // virtual ns the worker pool spent compacting
	LastDoneV int64 // virtual completion time of the latest finished job
}

type scheduler struct {
	t      *Tree
	cfg    SchedulerConfig
	pool   *sim.ServerPool
	kickCh chan int64
	stopCh chan struct{}
	wg     sync.WaitGroup

	// kickV is the virtual-time frontier of debt-creating events (spills,
	// ingests). The channel drops kicks while every worker is busy, so the
	// frontier is kept separately: a worker syncs its clock to it before each
	// pick — a compaction cannot start before the event that made it due.
	kickV atomic.Int64

	mu        sync.Mutex
	cond      *sync.Cond
	running   int
	jobs      int64
	lastDoneV int64
	nextJobID int64
	stopped   bool
}

// StartScheduler launches cfg.Workers background compaction workers. It is a
// no-op when Workers <= 0 or a scheduler is already running. Engines call it
// once right after Open, before the tree is under load.
func (t *Tree) StartScheduler(cfg SchedulerConfig) {
	if cfg.Workers <= 0 || t.sched != nil {
		return
	}
	s := &scheduler{
		t:      t,
		cfg:    cfg,
		pool:   sim.NewServerPool(cfg.Workers),
		kickCh: make(chan int64, cfg.Workers),
		stopCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	t.sched = s
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
}

// SchedulerActive reports whether a background scheduler is running.
func (t *Tree) SchedulerActive() bool { return t.sched != nil }

// Kick nudges the scheduler: some event (spill, ingest) may have created
// compaction debt at virtual time at. Non-blocking and safe without a
// scheduler.
func (t *Tree) Kick(at int64) {
	if s := t.sched; s != nil {
		s.kickAt(at)
	}
}

// WaitCompactIdle blocks until no compaction is running and none is due, then
// advances th's clock past the last job's virtual completion — the
// synchronous drain FlushAll needs before reporting the tree settled.
func (t *Tree) WaitCompactIdle(th *hw.Thread) {
	if s := t.sched; s != nil {
		s.waitIdle(th)
	}
}

// AbortScheduler stops job picking without waiting for in-flight jobs — the
// crash-stop path (engine fail) that must not block. Safe from a worker.
func (t *Tree) AbortScheduler() {
	if s := t.sched; s != nil {
		s.abort()
	}
}

// StopScheduler aborts picking and joins every worker. Engines call it during
// Close, after background flushes have drained.
func (t *Tree) StopScheduler() {
	if s := t.sched; s != nil {
		s.abort()
		s.wg.Wait()
	}
}

// SchedulerStats snapshots the scheduler's activity counters (zero value when
// no scheduler runs).
func (t *Tree) SchedulerStats() SchedulerStats {
	s := t.sched
	if s == nil {
		return SchedulerStats{}
	}
	_, busy := s.pool.Stats()
	s.mu.Lock()
	st := SchedulerStats{
		Workers:   s.cfg.Workers,
		JobsRun:   s.jobs,
		Running:   s.running,
		BusyNs:    busy,
		LastDoneV: s.lastDoneV,
	}
	s.mu.Unlock()
	t.mu.RLock()
	if !t.opts.SingleLevel {
		if len(t.levels[0]) >= t.opts.L0CompactionTrigger {
			st.Queued++
		}
		for lvl := 1; lvl < t.opts.MaxLevels-1; lvl++ {
			if len(t.levels[lvl]) > 0 && t.levelBytesLocked(lvl) > t.levelLimit(lvl) {
				st.Queued++
			}
		}
	}
	t.mu.RUnlock()
	if st.Queued >= st.Running {
		st.Queued -= st.Running
	} else {
		st.Queued = 0
	}
	return st
}

func (s *scheduler) kickAt(at int64) {
	for {
		cur := s.kickV.Load()
		if at <= cur || s.kickV.CompareAndSwap(cur, at) {
			break
		}
	}
	select {
	case s.kickCh <- at:
	default:
	}
}

func (s *scheduler) abort() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	th := s.t.m.NewThread(0).SetName("compact-worker")
	th.Clock.SetLabel(hw.PhaseCompact.Layer())
	for {
		select {
		case <-s.stopCh:
			return
		case at := <-s.kickCh:
			th.Clock.AdvanceTo(at)
			s.drain(th)
		}
	}
}

// drain runs jobs back to back until the tree has no pickable work left. One
// job per iteration; when more debt is due after a pick, it recruits another
// worker so disjoint-range jobs proceed concurrently.
func (s *scheduler) drain(th *hw.Thread) {
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		if s.cfg.Err != nil && s.cfg.Err() != nil {
			s.wake()
			return
		}
		// Catch up to the kick frontier: the channel drops kicks while all
		// workers are busy, and picking at a stale clock would let this job
		// complete (virtually) before the spill that created its debt.
		if v := s.kickV.Load(); v > th.Clock.Now() {
			th.Clock.AdvanceTo(v)
		}
		s.t.mu.Lock()
		c := s.t.pickCompaction()
		due := c != nil && s.t.compactionDueLocked()
		s.t.mu.Unlock()
		if c == nil {
			s.wake()
			return
		}
		if due {
			s.kickAt(th.Clock.Now())
		}
		s.mu.Lock()
		s.running++
		id := s.nextJobID
		s.nextJobID++
		s.mu.Unlock()
		start := th.Clock.Now()
		s.cfg.Trace.Emit(start, "compact_start",
			"job", id, "level", c.level,
			"inputs", len(c.inputs), "overlap", len(c.overlap), "score", c.score)
		var res compactResult
		var err error
		th.InPhase(hw.PhaseCompact, func() {
			res, err = s.t.compact(th, c)
		})
		dur := th.Clock.Now() - start
		done := s.pool.Submit(start, dur)
		th.Clock.AdvanceTo(done)
		s.mu.Lock()
		s.running--
		s.jobs++
		if done > s.lastDoneV {
			s.lastDoneV = done
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			if s.cfg.OnError != nil {
				s.cfg.OnError(err)
			}
			return
		}
		s.cfg.Trace.Emit(done, "compact_end",
			"job", id, "level", res.Level, "out_level", res.OutLevel,
			"bytes_in", res.BytesIn, "bytes_out", res.BytesOut,
			"tables_in", res.Inputs, "tables_out", res.Outputs, "ns", dur)
		if s.cfg.OnJobDone != nil {
			s.cfg.OnJobDone(done)
		}
	}
}

func (s *scheduler) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) waitIdle(th *hw.Thread) {
	for {
		if s.cfg.Err != nil && s.cfg.Err() != nil {
			return
		}
		s.t.mu.RLock()
		due := s.t.compactionDueLocked()
		s.t.mu.RUnlock()
		s.mu.Lock()
		if s.stopped || (s.running == 0 && !due) {
			doneV := s.lastDoneV
			s.mu.Unlock()
			th.Clock.AdvanceTo(doneV)
			return
		}
		s.kickAt(th.Clock.Now())
		s.cond.Wait()
		s.mu.Unlock()
	}
}
