package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// smallOpts is a geometry that forces multi-level cascades out of a few
// hundred KiB of data: 4 KiB tables, 16 KiB base level, 4x growth.
func smallOpts() Options {
	return Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      16 << 10,
		LevelMultiplier:     4,
		MaxLevels:           5,
		TableFileSize:       4 << 10,
	}
}

// drainCompactions runs MaybeCompact until the tree reports no debt.
func drainCompactions(t *testing.T, tr *Tree, th *hw.Thread) {
	t.Helper()
	for i := 0; ; i++ {
		if err := tr.MaybeCompact(th); err != nil {
			t.Fatal(err)
		}
		if tr.CompactionDebt() == 0 {
			return
		}
		if i > 1000 {
			t.Fatal("compaction debt never drains")
		}
	}
}

// checkLevelInvariants asserts every level >= 1 holds sorted, disjoint
// user-key ranges — the invariant the L1+ overlap-set fix protects. A pick
// that misses same-level or next-level overlapping inputs installs outputs
// that violate exactly this.
func checkLevelInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	for lvl := 1; lvl < tr.opts.MaxLevels; lvl++ {
		files := tr.levels[lvl]
		for i := 1; i < len(files); i++ {
			prev, cur := files[i-1], files[i]
			if bytes.Compare(prev.Smallest.UserKey(), cur.Smallest.UserKey()) > 0 {
				t.Fatalf("L%d not sorted: file %d starts at %q after %q",
					lvl, cur.Num, cur.Smallest.UserKey(), prev.Smallest.UserKey())
			}
			if bytes.Compare(prev.Largest.UserKey(), cur.Smallest.UserKey()) >= 0 {
				t.Fatalf("L%d overlap: file %d [%q..%q] vs file %d [%q..%q]",
					lvl, prev.Num, prev.Smallest.UserKey(), prev.Largest.UserKey(),
					cur.Num, cur.Smallest.UserKey(), cur.Largest.UserKey())
			}
		}
	}
}

// TestCompactionOverlapSetsStayConsistent is the regression test for the L1+
// compaction pick: every cascade must carry the full next-level overlap set,
// or newer versions end up below older ones and reads go stale. Three
// generations of the same key space are flushed with the newest sequence
// numbers last, cascaded down several levels, and every key must still read
// its newest value.
func TestCompactionOverlapSetsStayConsistent(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, smallOpts())
	seq := uint64(1)
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 8; i++ {
			// Overlapping 250-key runs so L1+ files share boundaries.
			seq = fillTable(t, tr, th, i*125, 250, seq, fmt.Sprintf("gen%d", gen))
		}
		drainCompactions(t, tr, th)
		checkLevelInvariants(t, tr)
	}
	// The cascade must have pushed data past L1.
	deep := 0
	for lvl := 2; lvl < tr.opts.MaxLevels; lvl++ {
		deep += tr.NumFiles(lvl)
	}
	if deep == 0 {
		t.Fatal("cascade never reached L2+; geometry too large for the regression to bite")
	}
	// L1+ compactions ran, so the rotation pointer must have advanced.
	tr.mu.RLock()
	ptr := tr.compactPtr[1]
	tr.mu.RUnlock()
	if ptr == nil {
		t.Fatal("compactPtr[1] never set despite L1 compactions")
	}
	for i := 0; i < 1125; i += 7 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, _, found, deleted, err := tr.Get(th, k, util.MaxSequence)
		if err != nil {
			t.Fatal(err)
		}
		if !found || deleted {
			t.Fatalf("lost %s after cascade", k)
		}
		if want := fmt.Sprintf("gen2-%d", i); string(v) != want {
			t.Fatalf("stale read %s = %q, want %q", k, v, want)
		}
	}
}

func TestSchedulerDrainsDebt(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, smallOpts())
	tr.StartScheduler(SchedulerConfig{
		Workers: 2,
		OnError: func(err error) { t.Errorf("background compaction failed: %v", err) },
	})
	defer tr.StopScheduler()

	seq := uint64(1)
	for i := 0; i < 6; i++ {
		l := skiplist.New(icmpBytes, 1)
		maxSeq := seq
		for j := 0; j < 200; j++ {
			ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i*100+j)), seq, util.KindValue)
			l.Insert(ik, []byte(fmt.Sprintf("s%d-%d", i, i*100+j)), nil)
			maxSeq = seq
			seq++
		}
		if err := tr.FlushNoCompact(th, newMemIter(l), maxSeq); err != nil {
			t.Fatal(err)
		}
		tr.Kick(th.Clock.Now())
	}
	tr.WaitCompactIdle(th)

	if debt := tr.CompactionDebt(); debt != 0 {
		t.Fatalf("scheduler left %d bytes of debt after WaitCompactIdle", debt)
	}
	st := tr.SchedulerStats()
	if st.JobsRun == 0 {
		t.Fatal("scheduler ran no jobs despite L0 debt")
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("idle scheduler reports running=%d queued=%d", st.Running, st.Queued)
	}
	if st.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", st.Workers)
	}
	checkLevelInvariants(t, tr)
	// Newest generation of every key survives the background cascade.
	for i := 0; i < 700; i += 11 {
		k := []byte(fmt.Sprintf("key%08d", i))
		_, _, found, deleted, err := tr.Get(th, k, util.MaxSequence)
		if err != nil {
			t.Fatal(err)
		}
		if !found || deleted {
			t.Fatalf("lost %s after background compaction", k)
		}
	}
}

// TestSchedulerStopsOnStickyError checks the crash-stop contract: once the
// engine error hook reports failure, workers stop picking jobs.
func TestSchedulerStopsOnStickyError(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, smallOpts())
	sticky := errors.New("engine failed")
	tr.StartScheduler(SchedulerConfig{
		Workers: 1,
		Err:     func() error { return sticky },
	})
	defer tr.StopScheduler()
	fillTable(t, tr, th, 0, 400, 1, "v")
	tr.Kick(th.Clock.Now())
	tr.WaitCompactIdle(th)
	if st := tr.SchedulerStats(); st.JobsRun != 0 {
		t.Fatalf("scheduler ran %d jobs past a sticky engine error", st.JobsRun)
	}
}

// TestIteratorHeldAcrossCompaction pins an iterator over the pre-compaction
// version, compacts its input tables away underneath it, and checks the
// iterator still yields the snapshot it opened — the graveyard's two-cycle
// delay keeps dead tables readable for two jobs after their retirement.
func TestIteratorHeldAcrossCompaction(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, smallOpts())
	// Build L0 debt without compacting so the pinned iterator reads the
	// exact tables the next jobs will retire.
	seq := uint64(1)
	for i := 0; i < 4; i++ {
		l := skiplist.New(icmpBytes, 1)
		maxSeq := seq
		for j := 0; j < 150; j++ {
			ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i*150+j)), seq, util.KindValue)
			l.Insert(ik, []byte(fmt.Sprintf("old-%d", i*150+j)), nil)
			maxSeq = seq
			seq++
		}
		if err := tr.FlushNoCompact(th, newMemIter(l), maxSeq); err != nil {
			t.Fatal(err)
		}
	}

	it, err := tr.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	// Run up to two compaction jobs — the graveyard's guarantee window —
	// retiring the L0 files the iterator holds.
	jobs := 0
	for i := 0; i < 2; i++ {
		tr.mu.Lock()
		c := tr.pickCompaction()
		tr.mu.Unlock()
		if c == nil {
			break
		}
		if _, err := tr.compact(th, c); err != nil {
			t.Fatal(err)
		}
		jobs++
	}
	if jobs == 0 {
		t.Fatal("no compaction ran; the iterator was never at risk")
	}

	got := 0
	var lastUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.Key()
		if bytes.Equal(ik.UserKey(), lastUser) {
			continue
		}
		lastUser = append(lastUser[:0], ik.UserKey()...)
		if want := fmt.Sprintf("old-%d", got); string(it.Value()) != want {
			t.Fatalf("pinned iterator saw %q at %q, want %q", it.Value(), ik.UserKey(), want)
		}
		got++
	}
	if got != 600 {
		t.Fatalf("pinned iterator yielded %d keys, want 600", got)
	}
}

// TestConcurrentScansDuringScheduledCompactions is the -race exercise:
// foreground flushes feed the background scheduler while reader goroutines
// continuously open iterators and scan. Every scan must observe a complete
// view of its snapshot. The workload is sized to at most two compaction jobs
// — the graveyard's two-cycle window — so retired tables stay readable for
// every iterator opened before they died; more churn than that is outside
// the tree's documented iterator guarantee.
func TestConcurrentScansDuringScheduledCompactions(t *testing.T) {
	m, tr, th, _, _ := newEnv(t, Options{
		L0CompactionTrigger: 4,
		BaseLevelBytes:      256 << 10, // L1 never over limit: only L0 jobs run
		LevelMultiplier:     4,
		MaxLevels:           5,
		TableFileSize:       8 << 10,
	})
	tr.StartScheduler(SchedulerConfig{
		Workers: 2,
		OnError: func(err error) { t.Errorf("background compaction failed: %v", err) },
	})
	defer tr.StopScheduler()

	const keys = 400
	seq := uint64(1)
	flushWave := func(gen int) {
		t.Helper()
		for i := 0; i < 4; i++ {
			l := skiplist.New(icmpBytes, 1)
			maxSeq := seq
			for j := 0; j < 100; j++ {
				k := i*100 + j
				ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", k)), seq, util.KindValue)
				l.Insert(ik, []byte(fmt.Sprintf("g%d-%d", gen, k)), nil)
				maxSeq = seq
				seq++
			}
			if err := tr.FlushNoCompact(th, newMemIter(l), maxSeq); err != nil {
				t.Fatal(err)
			}
		}
		tr.Kick(th.Clock.Now())
	}
	flushWave(0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rth := m.NewThread(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				it, err := tr.NewIterator(rth)
				if err != nil {
					t.Errorf("NewIterator: %v", err)
					return
				}
				n := 0
				var last []byte
				for it.SeekToFirst(); it.Valid(); it.Next() {
					u := it.Key().UserKey()
					if !bytes.Equal(u, last) {
						n++
						last = append(last[:0], u...)
					}
				}
				if n < keys {
					t.Errorf("scan saw %d distinct keys, want >= %d", n, keys)
					return
				}
			}
		}()
	}

	flushWave(1)
	tr.WaitCompactIdle(th)
	close(stop)
	wg.Wait()

	if st := tr.SchedulerStats(); st.JobsRun == 0 {
		t.Fatal("no background jobs ran during the scan workload")
	}
	checkLevelInvariants(t, tr)
	for i := 0; i < keys; i += 17 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, _, found, _, err := tr.Get(th, k, util.MaxSequence)
		if err != nil || !found {
			t.Fatalf("Get(%s): %v found=%v", k, err, found)
		}
		if want := fmt.Sprintf("g1-%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
}

// flushRangeDel flushes a single range tombstone [start, end) at seq.
func flushRangeDel(t *testing.T, tr *Tree, th *hw.Thread, start, end string, seq uint64) {
	t.Helper()
	l := skiplist.New(icmpBytes, 2)
	ik := util.MakeInternalKey(nil, []byte(start), seq, util.KindRangeDel)
	l.Insert(ik, []byte(end), nil)
	if err := tr.Flush(th, newMemIter(l), seq); err != nil {
		t.Fatal(err)
	}
}

func TestRangeDelVisibilityEdges(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 100})
	// Points at seq 10..13: key00000000..key00000003.
	l := skiplist.New(icmpBytes, 1)
	for i := 0; i < 4; i++ {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i)), uint64(10+i), util.KindValue)
		l.Insert(ik, []byte(fmt.Sprintf("v%d", i)), nil)
	}
	if err := tr.Flush(th, newMemIter(l), 13); err != nil {
		t.Fatal(err)
	}
	// Tombstone [key00000001, key00000003) at seq 12. Coverage is strict:
	// it hides seq < 12 inside the span, so key1 (seq 11) dies, key2
	// (seq 12, equal) survives, key3 (span end, exclusive) survives.
	flushRangeDel(t, tr, th, "key00000001", "key00000003", 12)

	cases := []struct {
		key     string
		snap    uint64
		found   bool
		deleted bool
	}{
		{"key00000000", util.MaxSequence, true, false}, // before span
		{"key00000001", util.MaxSequence, false, true}, // start key, seq 11 < 12
		{"key00000002", util.MaxSequence, true, false}, // equal seq survives
		{"key00000003", util.MaxSequence, true, false}, // exclusive end
		{"key00000001", 11, true, false},               // snapshot below tombstone
	}
	for _, c := range cases {
		_, _, found, deleted, err := tr.Get(th, []byte(c.key), c.snap)
		if err != nil {
			t.Fatal(err)
		}
		if found != c.found || deleted != c.deleted {
			t.Fatalf("Get(%s@%d) found=%v deleted=%v, want %v/%v",
				c.key, c.snap, found, deleted, c.found, c.deleted)
		}
	}

	// RangeCoverSeq mirrors the same edges.
	if got := tr.RangeCoverSeq([]byte("key00000001"), util.MaxSequence); got != 12 {
		t.Fatalf("RangeCoverSeq(start key) = %d, want 12", got)
	}
	if got := tr.RangeCoverSeq([]byte("key00000003"), util.MaxSequence); got != 0 {
		t.Fatalf("RangeCoverSeq(end key) = %d, want 0", got)
	}
	if got := tr.RangeCoverSeq([]byte("key00000001"), 11); got != 0 {
		t.Fatalf("RangeCoverSeq below tombstone snapshot = %d, want 0", got)
	}

	// A scan across the boundary suppresses exactly the covered keys. The
	// suppression rule is the one kvstore.UserScanTombs applies: newest
	// visible version per user key, hidden when a tombstone with
	// rd.Seq <= snap strictly covers it.
	it, err := tr.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	tombs := tr.RangeTombstones(util.MaxSequence)
	var seen []string
	var lastUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.Key()
		if ik.Kind() == util.KindRangeDel || bytes.Equal(ik.UserKey(), lastUser) {
			continue
		}
		lastUser = append(lastUser[:0], ik.UserKey()...)
		if ik.Kind() == util.KindDelete {
			continue
		}
		covered := false
		for _, rd := range tombs {
			if rd.Covers(ik.UserKey(), ik.Seq()) {
				covered = true
				break
			}
		}
		if !covered {
			seen = append(seen, string(ik.UserKey()))
		}
	}
	want := []string{"key00000000", "key00000002", "key00000003"}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scan saw %v, want %v", seen, want)
		}
	}
}

func TestRangeDelSurvivesCompaction(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, smallOpts())
	seq := fillTable(t, tr, th, 0, 300, 1, "v")
	flushRangeDel(t, tr, th, "key00000050", "key00000150", seq+1)
	seq += 2
	// Pile on data and cascade so the tombstone's tables get compacted.
	for i := 0; i < 6; i++ {
		seq = fillTable(t, tr, th, 400+i*100, 150, seq, "pad")
	}
	drainCompactions(t, tr, th)
	checkLevelInvariants(t, tr)

	tombs := tr.RangeTombstones(util.MaxSequence)
	found := false
	for _, rd := range tombs {
		if string(rd.Start) == "key00000050" && string(rd.End) == "key00000150" {
			found = true
		}
	}
	if !found {
		t.Fatalf("range tombstone dropped by compaction: %v", tombs)
	}
	for i := 0; i < 300; i += 10 {
		k := []byte(fmt.Sprintf("key%08d", i))
		_, _, got, deleted, err := tr.Get(th, k, util.MaxSequence)
		if err != nil {
			t.Fatal(err)
		}
		covered := i >= 50 && i < 150
		if covered && (got || !deleted) {
			t.Fatalf("covered key %s visible after compaction (found=%v deleted=%v)", k, got, deleted)
		}
		if !covered && (!got || deleted) {
			t.Fatalf("uncovered key %s lost after compaction (found=%v deleted=%v)", k, got, deleted)
		}
	}
}

func TestIngestPlacementAndAtomicity(t *testing.T) {
	m, tr, th, manifest, fs := newEnv(t, Options{L0CompactionTrigger: 100})
	mk := func(n int) []IngestEntry {
		var es []IngestEntry
		for i := 0; i < n; i++ {
			es = append(es, IngestEntry{
				Key:   []byte(fmt.Sprintf("ing%06d", i)),
				Value: []byte(fmt.Sprintf("i%d", i)),
			})
		}
		return es
	}

	// Unsorted batches are rejected before any manifest state changes.
	bad := []IngestEntry{{Key: []byte("b")}, {Key: []byte("a")}}
	if err := tr.Ingest(th, bad, 5); err == nil {
		t.Fatal("unsorted ingest accepted")
	}
	if tr.NumFiles(0)+tr.NumFiles(1) != 0 {
		t.Fatal("rejected ingest left files behind")
	}

	// Zero overlap anywhere: the batch skips L0 and lands in L1.
	if err := tr.Ingest(th, mk(100), 10); err != nil {
		t.Fatal(err)
	}
	if tr.NumFiles(0) != 0 || tr.NumFiles(1) == 0 {
		t.Fatalf("no-overlap ingest landed L0=%d L1=%d, want L1 only", tr.NumFiles(0), tr.NumFiles(1))
	}

	// Overlapping batch must take the safe L0 path to preserve recency.
	if err := tr.Ingest(th, mk(50), 20); err != nil {
		t.Fatal(err)
	}
	if tr.NumFiles(0) == 0 {
		t.Fatalf("overlapping ingest skipped L0 (L0=%d L1=%d)", tr.NumFiles(0), tr.NumFiles(1))
	}

	// Newest-wins: the second batch's values shadow the first's.
	v, _, found, _, err := tr.Get(th, []byte("ing000010"), util.MaxSequence)
	if err != nil || !found {
		t.Fatalf("Get after ingest: %v found=%v", err, found)
	}
	if string(v) != "i10" {
		t.Fatalf("got %q", v)
	}
	if tr.LastSeq() < 20 {
		t.Fatalf("ingest did not advance lastSeq: %d", tr.LastSeq())
	}

	// The install is one manifest record: a reopen sees both batches whole.
	st := tr.GetStats()
	if st.Ingests != 2 || st.TablesIngested < 2 {
		t.Fatalf("stats: ingests=%d tables=%d", st.Ingests, st.TablesIngested)
	}
	m.Crash()
	m.Recover()
	tr2, err := Open(m, fs, manifest, Options{L0CompactionTrigger: 100}, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 9 {
		k := []byte(fmt.Sprintf("ing%06d", i))
		v, _, found, _, err := tr2.Get(th, k, util.MaxSequence)
		if err != nil || !found {
			t.Fatalf("lost %s after reopen: %v found=%v", k, err, found)
		}
		if string(v) != fmt.Sprintf("i%d", i) {
			t.Fatalf("reopened %s = %q", k, v)
		}
	}
}
