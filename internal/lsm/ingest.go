package lsm

import (
	"bytes"
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/util"
)

// IngestEntry is one key/value pair of a bulk-load batch.
type IngestEntry struct {
	Key   []byte
	Value []byte
}

// ingestIter adapts a sorted IngestEntry slice to the Iterator interface,
// stamping every entry with the batch's single sequence number.
type ingestIter struct {
	entries []IngestEntry
	seq     uint64
	i       int
	ikey    util.InternalKey
}

func (it *ingestIter) Valid() bool { return it.i < len(it.entries) }
func (it *ingestIter) SeekToFirst() {
	it.i = 0
	it.fill()
}
func (it *ingestIter) Seek(ikey util.InternalKey) {
	ukey := ikey.UserKey()
	it.i = 0
	for it.i < len(it.entries) && bytes.Compare(it.entries[it.i].Key, ukey) < 0 {
		it.i++
	}
	it.fill()
}
func (it *ingestIter) Next() {
	it.i++
	it.fill()
}
func (it *ingestIter) fill() {
	if it.Valid() {
		it.ikey = util.MakeInternalKey(it.ikey, it.entries[it.i].Key, it.seq, util.KindValue)
	}
}
func (it *ingestIter) Key() util.InternalKey { return it.ikey }
func (it *ingestIter) Value() []byte         { return it.entries[it.i].Value }

// Ingest bulk-loads entries (strictly ascending unique user keys) as external
// SSTables, installed all-or-nothing: the tables are written first, then one
// CRC'd manifest record adds every file. A crash before that append leaves
// the manifest pointing at exactly the old file set — the written tables are
// orphans that the next Open sweeps — and a crash after it at exactly the
// new one.
//
// Every entry carries sequence number seq (drawn by the caller from the
// engine's counter), making the batch the newest version of each of its keys.
// Placement preserves the per-key level-recency invariant: the batch lands in
// L0 unless its key range overlaps nothing at any level, in which case it
// goes to L1 and skips the L0→L1 merge entirely.
func (t *Tree) Ingest(th *hw.Thread, entries []IngestEntry, seq uint64) error {
	if len(entries) == 0 {
		return nil
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			return fmt.Errorf("lsm: ingest keys not strictly ascending at %d (%q >= %q)",
				i, entries[i-1].Key, entries[i].Key)
		}
	}
	it := &ingestIter{entries: entries, seq: seq}
	it.SeekToFirst()
	metas, err := t.writeTables(th, it, false, false, nil)
	if err != nil {
		return err
	}
	lo := entries[0].Key
	hi := entries[len(entries)-1].Key

	t.mu.Lock()
	defer t.mu.Unlock()
	level := 0
	if t.opts.SingleLevel {
		level = 1
	} else {
		clear := true
		for lvl := range t.levels {
			if len(t.overlappingRange(lvl, lo, hi)) > 0 {
				clear = false
				break
			}
		}
		if clear && t.opts.MaxLevels > 1 {
			level = 1
		}
	}
	e := &versionEdit{}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: level, meta: mmeta})
	}
	if seq > t.lastSeq {
		e.lastSeq = seq
	}
	if err := t.logAndApply(th, e); err != nil {
		return err
	}
	t.stats.Ingests++
	t.stats.TablesIngested += int64(len(metas))
	return nil
}
