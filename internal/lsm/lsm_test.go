package lsm

import (
	"fmt"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/pmemfs"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// memIter adapts a skiplist holding internal keys to the lsm.Iterator
// interface — the same adapter the engines use for memtable flushes.
type memIter struct{ it *skiplist.Iterator }

func newMemIter(l *skiplist.List) *memIter  { return &memIter{it: l.NewIterator()} }
func (m *memIter) Valid() bool              { return m.it.Valid() }
func (m *memIter) SeekToFirst()             { m.it.SeekToFirst() }
func (m *memIter) Seek(ik util.InternalKey) { m.it.Seek(ik, nil) }
func (m *memIter) Next()                    { m.it.Next() }
func (m *memIter) Key() util.InternalKey    { return util.InternalKey(m.it.Key()) }
func (m *memIter) Value() []byte            { return m.it.Value() }

func icmpBytes(a, b []byte) int {
	return util.CompareInternal(util.InternalKey(a), util.InternalKey(b))
}

func newEnv(t *testing.T, opts Options) (*hw.Machine, *Tree, *hw.Thread, hw.Region, *pmemfs.FS) {
	t.Helper()
	m := hw.NewMachine(hw.Config{PMemBytes: 512 << 20})
	th := m.NewThread(0)
	fs, err := pmemfs.Mount(m, m.Alloc("fs", 256<<20, 0), th)
	if err != nil {
		t.Fatal(err)
	}
	manifest := m.Alloc("manifest", 4<<20, 0)
	tr, err := Open(m, fs, manifest, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr, th, manifest, fs
}

// fillTable builds a skiplist memtable with n sequential entries starting at
// seq, then flushes it into the tree.
func fillTable(t *testing.T, tr *Tree, th *hw.Thread, start, n int, seq uint64, val string) uint64 {
	t.Helper()
	l := skiplist.New(icmpBytes, 1)
	maxSeq := seq
	for i := 0; i < n; i++ {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", start+i)), seq, util.KindValue)
		l.Insert(ik, []byte(fmt.Sprintf("%s-%d", val, start+i)), nil)
		maxSeq = seq
		seq++
	}
	if err := tr.Flush(th, newMemIter(l), maxSeq); err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestFlushAndGet(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{})
	fillTable(t, tr, th, 0, 1000, 1, "v")
	for i := 0; i < 1000; i += 13 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, _, found, deleted, err := tr.Get(th, k, util.MaxSequence)
		if err != nil {
			t.Fatal(err)
		}
		if !found || deleted || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("Get(%s) = %q found=%v deleted=%v", k, v, found, deleted)
		}
	}
	if _, _, found, _, _ := tr.Get(th, []byte("nope"), util.MaxSequence); found {
		t.Fatal("found absent key")
	}
}

func TestNewerTableShadowsOlder(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 100})
	fillTable(t, tr, th, 0, 100, 1, "old")
	fillTable(t, tr, th, 0, 100, 1000, "new")
	v, _, found, _, _ := tr.Get(th, []byte("key00000050"), util.MaxSequence)
	if !found || string(v) != "new-50" {
		t.Fatalf("got %q", v)
	}
	// Snapshot read below the second fill sees the old value.
	v, _, found, _, _ = tr.Get(th, []byte("key00000050"), 500)
	if !found || string(v) != "old-50" {
		t.Fatalf("snapshot read got %q", v)
	}
}

func TestTombstoneStopsSearch(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 100})
	fillTable(t, tr, th, 0, 10, 1, "v")
	// Flush a tombstone for key 5 in a newer table.
	l := skiplist.New(icmpBytes, 2)
	ik := util.MakeInternalKey(nil, []byte("key00000005"), 100, util.KindDelete)
	l.Insert(ik, nil, nil)
	if err := tr.Flush(th, newMemIter(l), 100); err != nil {
		t.Fatal(err)
	}
	_, _, found, deleted, _ := tr.Get(th, []byte("key00000005"), util.MaxSequence)
	if found || !deleted {
		t.Fatalf("tombstone not honored: found=%v deleted=%v", found, deleted)
	}
	// Other keys unaffected.
	if _, _, found, _, _ := tr.Get(th, []byte("key00000006"), util.MaxSequence); !found {
		t.Fatal("unrelated key lost")
	}
}

func TestL0CompactionTriggered(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 4})
	seq := uint64(1)
	for i := 0; i < 4; i++ {
		seq = fillTable(t, tr, th, i*500, 500, seq, fmt.Sprintf("g%d", i))
	}
	if n := tr.NumFiles(0); n != 0 {
		t.Fatalf("L0 still has %d files after trigger", n)
	}
	if tr.NumFiles(1) == 0 {
		t.Fatal("no files in L1 after compaction")
	}
	if tr.GetStats().Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	// All data still visible.
	for i := 0; i < 2000; i += 97 {
		k := []byte(fmt.Sprintf("key%08d", i))
		if _, _, found, _, _ := tr.Get(th, k, util.MaxSequence); !found {
			t.Fatalf("lost %s after compaction", k)
		}
	}
}

func TestCompactionDedupsAndDropsTombstones(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 4})
	// Table 1: keys 0..99 = v1. Table 2: keys 0..99 = v2.
	fillTable(t, tr, th, 0, 100, 1, "v1")
	fillTable(t, tr, th, 0, 100, 200, "v2")
	// Table 3: tombstones for even keys.
	l := skiplist.New(icmpBytes, 3)
	for i := 0; i < 100; i += 2 {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("key%08d", i)), uint64(400+i), util.KindDelete)
		l.Insert(ik, nil, nil)
	}
	tr.Flush(th, newMemIter(l), 500)
	// Table 4 triggers compaction of all four L0 tables into L1.
	fillTable(t, tr, th, 1000, 10, 600, "x")
	if tr.NumFiles(0) != 0 {
		t.Fatal("compaction did not run")
	}
	// After full compaction to the bottom-most populated level, tombstones
	// and shadowed versions are gone; total entries = 50 odd keys + 10 x-keys.
	var total int
	for lvl := 0; lvl < 7; lvl++ {
		for _, f := range tr.Files(lvl) {
			total += f.Count
		}
	}
	if total != 60 {
		t.Fatalf("compacted entry count = %d, want 60", total)
	}
	// Deleted keys are gone, odd keys show v2.
	if _, _, found, _, _ := tr.Get(th, []byte("key00000004"), util.MaxSequence); found {
		t.Fatal("deleted key resurfaced")
	}
	v, _, found, _, _ := tr.Get(th, []byte("key00000007"), util.MaxSequence)
	if !found || string(v) != "v2-7" {
		t.Fatalf("odd key = %q found=%v", v, found)
	}
}

func TestDeeperCompactionCascade(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      64 << 10, // tiny L1 to force cascades
		TableFileSize:       32 << 10,
	})
	seq := uint64(1)
	for i := 0; i < 12; i++ {
		seq = fillTable(t, tr, th, i*300, 300, seq, fmt.Sprintf("g%02d", i))
	}
	if tr.LevelBytes(2) == 0 {
		t.Fatal("nothing reached L2 despite tiny L1 limit")
	}
	for i := 0; i < 3600; i += 131 {
		k := []byte(fmt.Sprintf("key%08d", i))
		if _, _, found, _, _ := tr.Get(th, k, util.MaxSequence); !found {
			t.Fatalf("lost %s in cascade", k)
		}
	}
}

func TestSingleLevelMode(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{SingleLevel: true})
	fillTable(t, tr, th, 0, 500, 1, "a")
	fillTable(t, tr, th, 250, 500, 1000, "b") // overlapping range
	if tr.NumFiles(0) != 0 {
		t.Fatal("single-level mode placed files in L0")
	}
	if tr.NumFiles(1) == 0 {
		t.Fatal("single-level mode has no L1 files")
	}
	if tr.GetStats().Compactions != 0 {
		t.Fatal("single-level mode must not compact")
	}
	// Overlap resolved by recency.
	v, _, found, _, _ := tr.Get(th, []byte("key00000400"), util.MaxSequence)
	if !found || string(v) != "b-400" {
		t.Fatalf("got %q", v)
	}
	v, _, found, _, _ = tr.Get(th, []byte("key00000100"), util.MaxSequence)
	if !found || string(v) != "a-100" {
		t.Fatalf("got %q", v)
	}
}

func TestGetInTable(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{SingleLevel: true})
	fillTable(t, tr, th, 0, 100, 1, "v")
	files := tr.Files(1)
	if len(files) == 0 {
		t.Fatal("no files")
	}
	v, _, kind, ok, err := tr.GetInTable(th, files[0].Num, []byte("key00000042"), util.MaxSequence)
	if err != nil || !ok || kind != util.KindValue || string(v) != "v-42" {
		t.Fatalf("GetInTable = %q %v %v %v", v, kind, ok, err)
	}
}

func TestManifestRecovery(t *testing.T) {
	m, tr, th, manifest, fs := newEnv(t, Options{L0CompactionTrigger: 3})
	seq := uint64(1)
	for i := 0; i < 5; i++ {
		seq = fillTable(t, tr, th, i*200, 200, seq, fmt.Sprintf("g%d", i))
	}
	lastSeq := tr.LastSeq()
	m.Crash()
	m.Recover()
	tr2, err := Open(m, fs, manifest, Options{L0CompactionTrigger: 3}, th)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.LastSeq() != lastSeq {
		t.Fatalf("lastSeq lost: %d vs %d", tr2.LastSeq(), lastSeq)
	}
	for i := 0; i < 1000; i += 37 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, _, found, _, _ := tr2.Get(th, k, util.MaxSequence)
		if !found {
			t.Fatalf("lost %s after recovery", k)
		}
		want := fmt.Sprintf("g%d-%d", i/200, i)
		if string(v) != want {
			t.Fatalf("recovered %s = %q, want %q", k, v, want)
		}
	}
	// The recovered tree keeps working: more flushes and compactions.
	fillTable(t, tr2, th, 5000, 200, seq, "post")
	if _, _, found, _, _ := tr2.Get(th, []byte("key00005100"), util.MaxSequence); !found {
		t.Fatal("post-recovery flush lost")
	}
}

func TestFullScanMergesLevels(t *testing.T) {
	_, tr, th, _, _ := newEnv(t, Options{L0CompactionTrigger: 3})
	seq := fillTable(t, tr, th, 0, 500, 1, "old")
	fillTable(t, tr, th, 250, 500, seq, "new")
	it, err := tr.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst()
	// Walk and keep the freshest version per user key.
	fresh := map[string]string{}
	var prevUser string
	for it.Valid() {
		ik := it.Key()
		u := string(ik.UserKey())
		if u != prevUser {
			fresh[u] = string(it.Value())
			prevUser = u
		}
		it.Next()
	}
	if len(fresh) != 750 {
		t.Fatalf("scan saw %d user keys, want 750", len(fresh))
	}
	if fresh["key00000400"] != "new-400" {
		t.Fatalf("key00000400 = %q", fresh["key00000400"])
	}
	if fresh["key00000100"] != "old-100" {
		t.Fatalf("key00000100 = %q", fresh["key00000100"])
	}
}

func TestMergingIteratorSeek(t *testing.T) {
	a := skiplist.New(icmpBytes, 1)
	b := skiplist.New(icmpBytes, 2)
	for i := 0; i < 100; i += 2 {
		a.Insert(util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%03d", i)), uint64(i+1), util.KindValue), []byte("a"), nil)
	}
	for i := 1; i < 100; i += 2 {
		b.Insert(util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%03d", i)), uint64(i+1), util.KindValue), []byte("b"), nil)
	}
	m := NewMergingIterator(newMemIter(a), newMemIter(b))
	m.SeekToFirst()
	for i := 0; i < 100; i++ {
		if !m.Valid() {
			t.Fatalf("merge ended early at %d", i)
		}
		if want := fmt.Sprintf("k%03d", i); string(m.Key().UserKey()) != want {
			t.Fatalf("at %d: %s", i, m.Key())
		}
		m.Next()
	}
	if m.Valid() {
		t.Fatal("merge has extras")
	}
	target := util.MakeInternalKey(nil, []byte("k050"), util.MaxSequence, util.KindValue)
	m.Seek(target)
	if !m.Valid() || string(m.Key().UserKey()) != "k050" {
		t.Fatalf("merge Seek landed on %s", m.Key())
	}
}
