package lsm

import (
	"cachekv/internal/util"
)

// RangeDel is one range tombstone carried in a file's metadata: user keys in
// [Start, End) written with a sequence number strictly below Seq are dead.
// Tombstones also live as KindRangeDel entries in the data stream (so they
// survive crashes the same way point writes do); the manifest copy lets point
// reads and scans aggregate coverage without opening every table.
type RangeDel struct {
	Start []byte
	End   []byte
	Seq   uint64
}

// Covers reports whether the tombstone hides a version of ukey written at
// seq. Coverage is strict on sequence: an equal-seq point write survives.
func (rd RangeDel) Covers(ukey []byte, seq uint64) bool {
	return seq < rd.Seq &&
		string(ukey) >= string(rd.Start) && string(ukey) < string(rd.End)
}

// FileMeta describes one SSTable registered in the version set.
type FileMeta struct {
	Num      uint64
	Size     uint64
	Count    int
	Smallest util.InternalKey
	Largest  util.InternalKey
	// RangeDels lists the range tombstones stored in this table. Their spans
	// may extend beyond [Smallest, Largest]: Smallest/Largest cover the entry
	// *keys* (a tombstone entry's key is its start key), not the spans.
	RangeDels []RangeDel
}

// versionEdit is one manifest record: files added/removed plus counters.
// Replaying all edits in order reconstructs the version set after a crash.
type versionEdit struct {
	added    []addedFile
	deleted  []deletedFile
	nextFile uint64 // 0 means unchanged
	lastSeq  uint64 // 0 means unchanged
}

type addedFile struct {
	level int
	meta  FileMeta
}

type deletedFile struct {
	level int
	num   uint64
}

func (e *versionEdit) encode() []byte {
	b := util.PutUvarint(nil, uint64(len(e.added)))
	for _, a := range e.added {
		b = util.PutUvarint(b, uint64(a.level))
		b = util.PutUvarint(b, a.meta.Num)
		b = util.PutUvarint(b, a.meta.Size)
		b = util.PutUvarint(b, uint64(a.meta.Count))
		b = util.PutLengthPrefixed(b, a.meta.Smallest)
		b = util.PutLengthPrefixed(b, a.meta.Largest)
		b = util.PutUvarint(b, uint64(len(a.meta.RangeDels)))
		for _, rd := range a.meta.RangeDels {
			b = util.PutLengthPrefixed(b, rd.Start)
			b = util.PutLengthPrefixed(b, rd.End)
			b = util.PutUvarint(b, rd.Seq)
		}
	}
	b = util.PutUvarint(b, uint64(len(e.deleted)))
	for _, d := range e.deleted {
		b = util.PutUvarint(b, uint64(d.level))
		b = util.PutUvarint(b, d.num)
	}
	b = util.PutUvarint(b, e.nextFile)
	b = util.PutUvarint(b, e.lastSeq)
	return b
}

func decodeEdit(src []byte) (*versionEdit, error) {
	e := &versionEdit{}
	nAdd, n, err := util.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	for i := uint64(0); i < nAdd; i++ {
		var a addedFile
		var lvl uint64
		if lvl, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		a.level = int(lvl)
		src = src[n:]
		if a.meta.Num, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		if a.meta.Size, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		var cnt uint64
		if cnt, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		a.meta.Count = int(cnt)
		src = src[n:]
		var k []byte
		if k, n, err = util.LengthPrefixed(src); err != nil {
			return nil, err
		}
		a.meta.Smallest = append(util.InternalKey(nil), k...)
		src = src[n:]
		if k, n, err = util.LengthPrefixed(src); err != nil {
			return nil, err
		}
		a.meta.Largest = append(util.InternalKey(nil), k...)
		src = src[n:]
		var nRD uint64
		if nRD, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		for j := uint64(0); j < nRD; j++ {
			var rd RangeDel
			if k, n, err = util.LengthPrefixed(src); err != nil {
				return nil, err
			}
			rd.Start = append([]byte(nil), k...)
			src = src[n:]
			if k, n, err = util.LengthPrefixed(src); err != nil {
				return nil, err
			}
			rd.End = append([]byte(nil), k...)
			src = src[n:]
			if rd.Seq, n, err = util.Uvarint(src); err != nil {
				return nil, err
			}
			src = src[n:]
			a.meta.RangeDels = append(a.meta.RangeDels, rd)
		}
		e.added = append(e.added, a)
	}
	nDel, n, err := util.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	for i := uint64(0); i < nDel; i++ {
		var d deletedFile
		var lvl uint64
		if lvl, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		d.level = int(lvl)
		src = src[n:]
		if d.num, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		e.deleted = append(e.deleted, d)
	}
	if e.nextFile, n, err = util.Uvarint(src); err != nil {
		return nil, err
	}
	src = src[n:]
	if e.lastSeq, _, err = util.Uvarint(src); err != nil {
		return nil, err
	}
	return e, nil
}
