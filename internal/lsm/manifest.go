package lsm

import (
	"cachekv/internal/util"
)

// FileMeta describes one SSTable registered in the version set.
type FileMeta struct {
	Num      uint64
	Size     uint64
	Count    int
	Smallest util.InternalKey
	Largest  util.InternalKey
}

// versionEdit is one manifest record: files added/removed plus counters.
// Replaying all edits in order reconstructs the version set after a crash.
type versionEdit struct {
	added    []addedFile
	deleted  []deletedFile
	nextFile uint64 // 0 means unchanged
	lastSeq  uint64 // 0 means unchanged
}

type addedFile struct {
	level int
	meta  FileMeta
}

type deletedFile struct {
	level int
	num   uint64
}

func (e *versionEdit) encode() []byte {
	b := util.PutUvarint(nil, uint64(len(e.added)))
	for _, a := range e.added {
		b = util.PutUvarint(b, uint64(a.level))
		b = util.PutUvarint(b, a.meta.Num)
		b = util.PutUvarint(b, a.meta.Size)
		b = util.PutUvarint(b, uint64(a.meta.Count))
		b = util.PutLengthPrefixed(b, a.meta.Smallest)
		b = util.PutLengthPrefixed(b, a.meta.Largest)
	}
	b = util.PutUvarint(b, uint64(len(e.deleted)))
	for _, d := range e.deleted {
		b = util.PutUvarint(b, uint64(d.level))
		b = util.PutUvarint(b, d.num)
	}
	b = util.PutUvarint(b, e.nextFile)
	b = util.PutUvarint(b, e.lastSeq)
	return b
}

func decodeEdit(src []byte) (*versionEdit, error) {
	e := &versionEdit{}
	nAdd, n, err := util.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	for i := uint64(0); i < nAdd; i++ {
		var a addedFile
		var lvl uint64
		if lvl, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		a.level = int(lvl)
		src = src[n:]
		if a.meta.Num, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		if a.meta.Size, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		var cnt uint64
		if cnt, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		a.meta.Count = int(cnt)
		src = src[n:]
		var k []byte
		if k, n, err = util.LengthPrefixed(src); err != nil {
			return nil, err
		}
		a.meta.Smallest = append(util.InternalKey(nil), k...)
		src = src[n:]
		if k, n, err = util.LengthPrefixed(src); err != nil {
			return nil, err
		}
		a.meta.Largest = append(util.InternalKey(nil), k...)
		src = src[n:]
		e.added = append(e.added, a)
	}
	nDel, n, err := util.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	for i := uint64(0); i < nDel; i++ {
		var d deletedFile
		var lvl uint64
		if lvl, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		d.level = int(lvl)
		src = src[n:]
		if d.num, n, err = util.Uvarint(src); err != nil {
			return nil, err
		}
		src = src[n:]
		e.deleted = append(e.deleted, d)
	}
	if e.nextFile, n, err = util.Uvarint(src); err != nil {
		return nil, err
	}
	src = src[n:]
	if e.lastSeq, _, err = util.Uvarint(src); err != nil {
		return nil, err
	}
	return e, nil
}
