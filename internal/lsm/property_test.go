package lsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
	"cachekv/internal/pmemfs"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// TestPropertyTreeMatchesModel drives the tree with random batches of puts
// and deletes (flushed as memtables), interleaving compaction pressure, and
// checks every key against a model map — including across a crash-reopen.
func TestPropertyTreeMatchesModel(t *testing.T) {
	f := func(batchSeeds []uint16, crash bool) bool {
		if len(batchSeeds) == 0 {
			return true
		}
		if len(batchSeeds) > 8 {
			batchSeeds = batchSeeds[:8]
		}
		m := hw.NewMachine(hw.Config{PMemBytes: 512 << 20})
		th := m.NewThread(0)
		fs, err := pmemfs.Mount(m, m.Alloc("fs", 256<<20, 0), th)
		if err != nil {
			return false
		}
		manifest := m.Alloc("manifest", 4<<20, 0)
		opts := Options{L0CompactionTrigger: 2, BaseLevelBytes: 32 << 10, TableFileSize: 16 << 10}
		tr, err := Open(m, fs, manifest, opts, th)
		if err != nil {
			return false
		}
		model := map[string]string{}
		seq := uint64(1)
		for bi, bs := range batchSeeds {
			rng := sim.NewRNG(uint64(bs) + 1)
			l := skiplist.New(icmpBytes, uint64(bi+1))
			var maxSeq uint64
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key%03d", rng.Intn(300))
				if rng.Intn(8) == 0 {
					ik := util.MakeInternalKey(nil, []byte(k), seq, util.KindDelete)
					l.Insert(ik, nil, nil)
					delete(model, k)
				} else {
					v := fmt.Sprintf("v%d-%d", bi, i)
					ik := util.MakeInternalKey(nil, []byte(k), seq, util.KindValue)
					l.Insert(ik, []byte(v), nil)
					model[k] = v
				}
				maxSeq = seq
				seq++
			}
			if err := tr.Flush(th, newMemIter(l), maxSeq); err != nil {
				return false
			}
		}
		if crash {
			m.Crash()
			m.Recover()
			tr, err = Open(m, fs, manifest, opts, th)
			if err != nil {
				return false
			}
		}
		for k, want := range model {
			v, _, found, deleted, err := tr.Get(th, []byte(k), util.MaxSequence)
			if err != nil || !found || deleted || string(v) != want {
				return false
			}
		}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key%03d", i)
			if _, ok := model[k]; ok {
				continue
			}
			_, _, found, _, err := tr.Get(th, []byte(k), util.MaxSequence)
			if err != nil || found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
