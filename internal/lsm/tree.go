package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"cachekv/internal/blockcache"
	"cachekv/internal/hw"
	"cachekv/internal/pmemfs"
	"cachekv/internal/sstable"
	"cachekv/internal/util"
	"cachekv/internal/wal"
)

// Options configure the tree geometry. Zero values select the defaults noted
// per field (scaled from LevelDB's to suit experiment-sized datasets).
type Options struct {
	L0CompactionTrigger int    // L0 file count triggering compaction (4)
	BaseLevelBytes      int64  // L1 size limit; each level is Multiplier x larger (8 MiB)
	LevelMultiplier     int64  // per-level growth factor (10)
	MaxLevels           int    // total levels including L0 (7)
	TableFileSize       uint64 // target SSTable size (2 MiB)
	SingleLevel         bool   // SLM-DB mode: everything lives in one sorted-ish level, no compaction

	// BlockCacheBytes sizes the shared DRAM block cache fronting SSTable
	// data-block reads (8 MiB, LevelDB's default); negative disables it.
	BlockCacheBytes int64
	// BlockCacheShards is the cache's lock-shard count (16).
	BlockCacheShards int
}

func (o Options) withDefaults() Options {
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 7
	}
	if o.TableFileSize == 0 {
		o.TableFileSize = 2 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.BlockCacheShards == 0 {
		o.BlockCacheShards = 16
	}
	return o
}

// Stats counts tree activity.
type Stats struct {
	TablesFlushed   int64
	Compactions     int64
	CompactedBytes  int64
	TablesCompacted int64
	Ingests         int64
	TablesIngested  int64
}

// Tree is the on-PMem LSM storage component.
type Tree struct {
	m    *hw.Machine
	fs   *pmemfs.FS
	opts Options

	mu             sync.RWMutex
	levels         [][]*FileMeta
	manifest       *wal.Writer
	manifestRegion hw.Region
	nextFile       uint64
	lastSeq        uint64
	stats          Stats

	// compacting holds file numbers reserved by in-flight compaction jobs
	// (inputs and next-level overlap alike). Pickers skip any candidate whose
	// file set intersects it, so concurrent workers never double-claim an
	// extent and same-level jobs stay on disjoint key ranges.
	compacting map[uint64]bool
	// compactPtr remembers, per level, the largest user key of the last
	// picked inputs so successive picks rotate through the key space instead
	// of hammering the leftmost file.
	compactPtr [][]byte
	// rangeDelCount tracks live range tombstones across every FileMeta so
	// the common tombstone-free case skips coverage aggregation entirely.
	rangeDelCount int
	// compactIn/compactOut accumulate, per level, bytes consumed from and
	// written to that level by compactions — the write-amplification ledger.
	compactIn  []int64
	compactOut []int64

	sched *scheduler

	readerMu sync.Mutex
	readers  map[uint64]*sstable.Reader

	// blockCache is shared by every reader; nil when disabled.
	blockCache *blockcache.Cache

	// graveyard delays physical deletion of compacted-away files by two
	// compaction cycles so in-flight readers and iterators (which run
	// lock-free against a version snapshot) never lose their extents.
	graveMu   sync.Mutex
	graveyard [][]uint64
}

// Open mounts a tree whose manifest lives in manifestRegion, replaying any
// previous state (crash recovery) and starting a fresh, compacted manifest.
func Open(m *hw.Machine, fs *pmemfs.FS, manifestRegion hw.Region, opts Options, th *hw.Thread) (*Tree, error) {
	opts = opts.withDefaults()
	t := &Tree{
		m:              m,
		fs:             fs,
		opts:           opts,
		levels:         make([][]*FileMeta, opts.MaxLevels),
		manifestRegion: manifestRegion,
		nextFile:       1,
		readers:        make(map[uint64]*sstable.Reader),
		blockCache:     blockcache.New(opts.BlockCacheBytes, opts.BlockCacheShards),
		compacting:     make(map[uint64]bool),
		compactPtr:     make([][]byte, opts.MaxLevels),
		compactIn:      make([]int64, opts.MaxLevels),
		compactOut:     make([]int64, opts.MaxLevels),
	}
	// Replay the previous manifest, if any.
	r := wal.NewReader(m, manifestRegion)
	err := r.ReplayAll(th, func(rec []byte) error {
		e, err := decodeEdit(rec)
		if err != nil {
			return err
		}
		t.apply(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Drop files whose SSTable vanished (crash between manifest append and
	// file seal cannot happen in our ordering, but be defensive).
	for lvl := range t.levels {
		keep := t.levels[lvl][:0]
		for _, f := range t.levels[lvl] {
			if _, err := t.fs.Open(tableName(f.Num)); err == nil {
				keep = append(keep, f)
			}
		}
		t.levels[lvl] = keep
	}
	// Delete orphaned tables: outputs of a compaction or ingest whose
	// installing manifest record never landed (the edit is one CRC'd append,
	// so a crash leaves exactly the old file set), plus graveyarded inputs
	// whose grace period was cut short by the crash. Recovery holds no
	// iterators, so immediate deletion is safe — and necessary, because the
	// replayed nextFile may be below the orphans' numbers and new tables
	// would collide with the stale extents.
	live := make(map[uint64]bool)
	for _, files := range t.levels {
		for _, f := range files {
			live[f.Num] = true
		}
	}
	for _, name := range fs.List() {
		var num uint64
		if n, err := fmt.Sscanf(name, "%d.sst", &num); err != nil || n != 1 {
			continue
		}
		if !live[num] {
			if err := fs.Delete(th, name); err != nil {
				return nil, err
			}
		}
	}
	// Start a fresh manifest holding one snapshot edit.
	t.manifest = wal.NewWriter(m, manifestRegion, th)
	snap := &versionEdit{nextFile: t.nextFile, lastSeq: t.lastSeq}
	for lvl, files := range t.levels {
		for _, f := range files {
			snap.added = append(snap.added, addedFile{level: lvl, meta: *f})
		}
	}
	if _, err := t.manifest.Append(th, snap.encode()); err != nil {
		return nil, err
	}
	return t, nil
}

func tableName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// apply folds an edit into the in-memory version (t.mu must be held or the
// tree not yet shared).
func (t *Tree) apply(e *versionEdit) {
	for _, d := range e.deleted {
		files := t.levels[d.level]
		for i, f := range files {
			if f.Num == d.num {
				t.rangeDelCount -= len(f.RangeDels)
				t.levels[d.level] = append(files[:i:i], files[i+1:]...)
				break
			}
		}
	}
	for _, a := range e.added {
		meta := a.meta
		t.rangeDelCount += len(meta.RangeDels)
		t.levels[a.level] = append(t.levels[a.level], &meta)
		t.sortLevel(a.level)
	}
	if e.nextFile > t.nextFile {
		t.nextFile = e.nextFile
	}
	if e.lastSeq > t.lastSeq {
		t.lastSeq = e.lastSeq
	}
}

// sortLevel keeps L0 ordered by file number (recency) and other levels by
// smallest key.
func (t *Tree) sortLevel(level int) {
	files := t.levels[level]
	if level == 0 || t.opts.SingleLevel {
		sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
	} else {
		sort.Slice(files, func(i, j int) bool {
			return util.CompareInternal(files[i].Smallest, files[j].Smallest) < 0
		})
	}
}

// logAndApply persists an edit then applies it (t.mu held).
func (t *Tree) logAndApply(th *hw.Thread, e *versionEdit) error {
	e.nextFile = t.nextFile
	if _, err := t.manifest.Append(th, e.encode()); err != nil {
		return err
	}
	t.apply(e)
	return nil
}

// LastSeq returns the highest sequence number recorded by flushes.
func (t *Tree) LastSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastSeq
}

// NumFiles returns the file count at a level.
func (t *Tree) NumFiles(level int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.levels[level])
}

// LevelBytes returns a level's total byte size.
// NumLevels reports the configured level count (including L0).
func (t *Tree) NumLevels() int { return t.opts.MaxLevels }

func (t *Tree) LevelBytes(level int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, f := range t.levels[level] {
		n += int64(f.Size)
	}
	return n
}

// L0Pressure reports the L0 file count and byte total under one lock
// acquisition — the storage-component pressure signal the engine's
// flow-control state machine polls on every lifecycle event.
func (t *Tree) L0Pressure() (files int, bytes int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, f := range t.levels[0] {
		bytes += int64(f.Size)
	}
	return len(t.levels[0]), bytes
}

// GetStats returns a copy of the activity counters.
func (t *Tree) GetStats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// reader returns (opening if needed) the cached sstable reader for a file.
func (t *Tree) reader(th *hw.Thread, num uint64) (*sstable.Reader, error) {
	t.readerMu.Lock()
	defer t.readerMu.Unlock()
	if r, ok := t.readers[num]; ok {
		return r, nil
	}
	f, err := t.fs.Open(tableName(num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.NewReader(f, th)
	if err != nil {
		return nil, err
	}
	r.SetCache(t.blockCache, num)
	t.readers[num] = r
	return r, nil
}

func (t *Tree) dropReader(num uint64) {
	t.readerMu.Lock()
	delete(t.readers, num)
	t.readerMu.Unlock()
	t.blockCache.EvictFile(num)
}

// CacheStats returns the shared block cache's counters (zeros when the cache
// is disabled).
func (t *Tree) CacheStats() blockcache.Stats { return t.blockCache.Stats() }

// writeTables drains it into one or more SSTables capped at TableFileSize,
// returning their metadata. Entries must arrive in internal-key order.
//
// cover lists the range tombstones participating in this rewrite (a
// compaction passes the tombstones carried by its input files): point
// entries they cover — strictly older sequence, user key in [Start, End) —
// are dropped, since the tombstone itself is retained. Range-tombstone
// entries are never treated as key versions: they don't shadow point writes
// at the same user key, and they are recorded in the emitting file's FileMeta
// so readers can aggregate coverage from metadata alone.
//
// dropTombstones drops point tombstones (KindDelete) — compactions set it
// when no level below the output overlaps the key range. Range tombstones are
// NEVER dropped: the engine's sub-MemTable slots flush out of sequence order,
// so an entry older than an acknowledged DeleteRange can still be
// memory-resident while the tombstone compacts to the bottom; dropping it
// there would resurrect that entry when its slot finally spills. A range
// tombstone's metadata footprint is tiny, so it simply outlives every version
// it can still hide.
func (t *Tree) writeTables(th *hw.Thread, it Iterator, dropShadowed, dropTombstones bool, cover []RangeDel) ([]FileMeta, error) {
	var out []FileMeta
	var w *sstable.Writer
	var num uint64
	var lastUser []byte
	var curRDs []RangeDel
	var lastRD util.InternalKey
	haveLast := false

	finish := func() error {
		if w == nil {
			return nil
		}
		count, smallest, largest, err := w.Finish()
		if err != nil {
			return err
		}
		if count == 0 {
			// Empty output: abort the file. (Cannot happen today because we
			// only open a writer when an entry is about to be added.)
			return nil
		}
		size, err := t.fs.Size(tableName(num))
		if err != nil {
			return err
		}
		out = append(out, FileMeta{
			Num: num, Size: size, Count: count,
			Smallest:  append(util.InternalKey(nil), smallest...),
			Largest:   append(util.InternalKey(nil), largest...),
			RangeDels: curRDs,
		})
		w = nil
		curRDs = nil
		return nil
	}

	for ; it.Valid(); it.Next() {
		ikey := it.Key()
		isRD := ikey.Kind() == util.KindRangeDel
		if isRD {
			// Identical tombstone from two sources (defensive): emit once.
			if lastRD != nil && util.CompareInternal(ikey, lastRD) == 0 {
				continue
			}
			lastRD = append(lastRD[:0], ikey...)
		} else {
			if dropShadowed && haveLast && bytes.Equal(ikey.UserKey(), lastUser) {
				continue // older version of a key we already emitted
			}
			lastUser = append(lastUser[:0], ikey.UserKey()...)
			haveLast = true
			if covered(cover, ikey) {
				continue
			}
			if dropTombstones && ikey.Kind() == util.KindDelete {
				continue
			}
		}
		if w == nil {
			t.mu.Lock()
			num = t.nextFile
			t.nextFile++
			t.mu.Unlock()
			capacity := t.opts.TableFileSize + t.opts.TableFileSize/2 + (256 << 10)
			fw, err := t.fs.Create(th, tableName(num), capacity)
			if err != nil {
				return nil, err
			}
			w = sstable.NewWriter(fw, th)
		}
		if err := w.Add(ikey, it.Value()); err != nil {
			return nil, err
		}
		if isRD {
			curRDs = append(curRDs, RangeDel{
				Start: append([]byte(nil), ikey.UserKey()...),
				End:   append([]byte(nil), it.Value()...),
				Seq:   ikey.Seq(),
			})
		}
		if w.EstimatedSize() >= t.opts.TableFileSize {
			if err := finish(); err != nil {
				return nil, err
			}
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// covered reports whether some tombstone in cover hides this point entry.
func covered(cover []RangeDel, ikey util.InternalKey) bool {
	if len(cover) == 0 {
		return false
	}
	ukey, seq := ikey.UserKey(), ikey.Seq()
	for _, rd := range cover {
		if rd.Covers(ukey, seq) {
			return true
		}
	}
	return false
}

// Flush writes the contents of it (a frozen memtable view in internal-key
// order) into new tables at L0 — or L1 in SingleLevel mode — records maxSeq,
// and runs any compactions that fall due. It is called from background flush
// threads; concurrent flushes serialize on the tree lock only around version
// installation.
func (t *Tree) Flush(th *hw.Thread, it Iterator, maxSeq uint64) error {
	it.SeekToFirst()
	metas, err := t.writeTables(th, it, false, false, nil)
	if err != nil {
		return err
	}
	level := 0
	if t.opts.SingleLevel {
		level = 1
	}
	t.mu.Lock()
	e := &versionEdit{lastSeq: maxSeq}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: level, meta: mmeta})
	}
	if maxSeq > t.lastSeq {
		e.lastSeq = maxSeq
	}
	err = t.logAndApply(th, e)
	t.stats.TablesFlushed += int64(len(metas))
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.MaybeCompact(th)
}

// FlushNoCompact installs tables like Flush but leaves any due compaction to
// a later MaybeCompact call — engines whose flush latency must not absorb
// compaction debt (CacheKV's spill path) use it and compact afterwards.
func (t *Tree) FlushNoCompact(th *hw.Thread, it Iterator, maxSeq uint64) error {
	it.SeekToFirst()
	metas, err := t.writeTables(th, it, false, false, nil)
	if err != nil {
		return err
	}
	level := 0
	if t.opts.SingleLevel {
		level = 1
	}
	t.mu.Lock()
	e := &versionEdit{lastSeq: maxSeq}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: level, meta: mmeta})
	}
	if maxSeq > t.lastSeq {
		e.lastSeq = maxSeq
	}
	err = t.logAndApply(th, e)
	t.stats.TablesFlushed += int64(len(metas))
	t.mu.Unlock()
	return err
}

// levelLimit returns the size limit for level (1-based levels).
func (t *Tree) levelLimit(level int) int64 {
	limit := t.opts.BaseLevelBytes
	for i := 1; i < level; i++ {
		limit *= t.opts.LevelMultiplier
	}
	return limit
}

// compaction is one picked job: inputs at level merge with the overlapping
// files at level+1. The picker reserved every file in both slices; compact
// releases them when the version edit installs.
type compaction struct {
	level   int // input level; outputs go to level+1
	inputs  []*FileMeta
	overlap []*FileMeta
	score   float64
}

// pickCompaction chooses the next compaction under t.mu and reserves its
// files; nil means nothing is due or every due job conflicts with a running
// one. Levels are ranked by debt score — L0 by file count over the trigger,
// L1+ by bytes over the level limit — so the worker pool always digests the
// deepest debt first instead of walking levels in FIFO order.
func (t *Tree) pickCompaction() *compaction {
	if t.opts.SingleLevel {
		return nil
	}
	type cand struct {
		level int
		score float64
	}
	var cands []cand
	if n := len(t.levels[0]); n >= t.opts.L0CompactionTrigger {
		cands = append(cands, cand{0, float64(n) / float64(t.opts.L0CompactionTrigger)})
	}
	for lvl := 1; lvl < t.opts.MaxLevels-1; lvl++ {
		if len(t.levels[lvl]) == 0 {
			continue
		}
		if score := float64(t.levelBytesLocked(lvl)) / float64(t.levelLimit(lvl)); score > 1.0 {
			cands = append(cands, cand{lvl, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	for _, cd := range cands {
		if c := t.buildCompactionLocked(cd.level); c != nil {
			c.score = cd.score
			return c
		}
	}
	return nil
}

// compactionDueLocked reports whether any level is over its limit — the
// backlog probe used by WaitCompactIdle (ignores reservations: a due level
// whose files are all claimed still counts as pending work).
func (t *Tree) compactionDueLocked() bool {
	if t.opts.SingleLevel {
		return false
	}
	if len(t.levels[0]) >= t.opts.L0CompactionTrigger {
		return true
	}
	for lvl := 1; lvl < t.opts.MaxLevels-1; lvl++ {
		if len(t.levels[lvl]) > 0 && t.levelBytesLocked(lvl) > t.levelLimit(lvl) {
			return true
		}
	}
	return false
}

// buildCompactionLocked assembles and reserves a job at level, or returns nil
// when every candidate conflicts with reserved files. For L1+ it rotates
// through the key space via compactPtr and expands the seed file to the full
// same-level overlap set (defensive fixpoint — levels are disjoint by
// invariant) before selecting every overlapping next-level file.
func (t *Tree) buildCompactionLocked(level int) *compaction {
	if level == 0 {
		inputs := append([]*FileMeta(nil), t.levels[0]...)
		if t.anyReservedLocked(inputs) {
			return nil
		}
		overlap := t.overlapping(1, inputs)
		if t.anyReservedLocked(overlap) {
			return nil
		}
		return t.reserveLocked(&compaction{level: 0, inputs: inputs, overlap: overlap})
	}
	files := t.levels[level]
	start := 0
	if ptr := t.compactPtr[level]; ptr != nil {
		start = sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].Smallest.UserKey(), ptr) > 0
		})
	}
	for off := 0; off < len(files); off++ {
		seed := files[(start+off)%len(files)]
		if t.compacting[seed.Num] {
			continue
		}
		inputs := []*FileMeta{seed}
		for {
			grown := t.overlapping(level, inputs)
			if len(grown) <= len(inputs) {
				break
			}
			inputs = grown
		}
		if t.anyReservedLocked(inputs) {
			continue
		}
		overlap := t.overlapping(level+1, inputs)
		if t.anyReservedLocked(overlap) {
			continue
		}
		hi := inputs[0].Largest.UserKey()
		for _, f := range inputs[1:] {
			if bytes.Compare(f.Largest.UserKey(), hi) > 0 {
				hi = f.Largest.UserKey()
			}
		}
		t.compactPtr[level] = append([]byte(nil), hi...)
		return t.reserveLocked(&compaction{level: level, inputs: inputs, overlap: overlap})
	}
	return nil
}

func (t *Tree) anyReservedLocked(files []*FileMeta) bool {
	for _, f := range files {
		if t.compacting[f.Num] {
			return true
		}
	}
	return false
}

func (t *Tree) reserveLocked(c *compaction) *compaction {
	for _, f := range c.inputs {
		t.compacting[f.Num] = true
	}
	for _, f := range c.overlap {
		t.compacting[f.Num] = true
	}
	return c
}

func (t *Tree) releaseLocked(c *compaction) {
	for _, f := range c.inputs {
		delete(t.compacting, f.Num)
	}
	for _, f := range c.overlap {
		delete(t.compacting, f.Num)
	}
}

func (t *Tree) levelBytesLocked(level int) int64 {
	var n int64
	for _, f := range t.levels[level] {
		n += int64(f.Size)
	}
	return n
}

// overlapping returns the files at level whose user-key ranges intersect any
// input's range, with range-tombstone spans widening the inputs' range (a
// tombstone's reach can extend past its file's largest entry key).
func (t *Tree) overlapping(level int, inputs []*FileMeta) []*FileMeta {
	lo, hi := keyRange(inputs)
	return t.overlappingRange(level, lo, hi)
}

// keyRange returns the user-key span covered by files, including their range
// tombstones' [Start, End) spans (End is treated as inclusive — conservative).
func keyRange(files []*FileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || bytes.Compare(f.Smallest.UserKey(), lo) < 0 {
			lo = f.Smallest.UserKey()
		}
		if hi == nil || bytes.Compare(f.Largest.UserKey(), hi) > 0 {
			hi = f.Largest.UserKey()
		}
		for _, rd := range f.RangeDels {
			if bytes.Compare(rd.Start, lo) < 0 {
				lo = rd.Start
			}
			if bytes.Compare(rd.End, hi) > 0 {
				hi = rd.End
			}
		}
	}
	return lo, hi
}

func (t *Tree) overlappingRange(level int, lo, hi []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range t.levels[level] {
		flo, fhi := keyRange([]*FileMeta{f})
		if bytes.Compare(fhi, lo) < 0 || bytes.Compare(flo, hi) > 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

// MaybeCompact runs compactions until every level is within limits. It is
// charged to the calling (background) thread. It cooperates with a running
// scheduler through the same reservation set, so the two never double-claim.
func (t *Tree) MaybeCompact(th *hw.Thread) error {
	for {
		t.mu.Lock()
		c := t.pickCompaction()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		if _, err := t.compact(th, c); err != nil {
			return err
		}
	}
}

// compactResult summarizes one finished job for the scheduler's trace and
// write-amplification ledger.
type compactResult struct {
	Level    int
	OutLevel int
	BytesIn  int64
	BytesOut int64
	Inputs   int
	Outputs  int
}

func (t *Tree) compact(th *hw.Thread, c *compaction) (compactResult, error) {
	res := compactResult{Level: c.level, OutLevel: c.level + 1}
	all := append(append([]*FileMeta(nil), c.inputs...), c.overlap...)
	// The picker reserved every file in all; release on every exit. Releases
	// happen under t.mu together with (or after) the version-edit apply, so a
	// concurrent picker never sees a file both unreserved and already gone.
	fail := func(err error) (compactResult, error) {
		t.mu.Lock()
		t.releaseLocked(c)
		t.mu.Unlock()
		return res, err
	}
	// Newest-first ordering for the merge tie-break: higher file numbers are
	// newer at L0; between levels, the upper level is newer.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Num > all[j].Num })
	its := make([]Iterator, 0, len(all))
	var tombs []RangeDel
	for _, f := range all {
		tombs = append(tombs, f.RangeDels...)
		r, err := t.reader(th, f.Num)
		if err != nil {
			return fail(err)
		}
		ti, err := r.NewIter(th)
		if err != nil {
			return fail(err)
		}
		its = append(its, ti)
	}
	merged := NewMergingIterator(its...)
	merged.SeekToFirst()

	// Point tombstones can be dropped when no level below the output overlaps
	// the compaction's key range (range-tombstone spans included); range
	// tombstones are always retained — see writeTables.
	outLevel := c.level + 1
	lo, hi := keyRange(all)
	t.mu.Lock()
	dropTombs := true
	for lvl := outLevel + 1; lvl < t.opts.MaxLevels; lvl++ {
		if len(t.overlappingRange(lvl, lo, hi)) > 0 {
			dropTombs = false
			break
		}
	}
	t.mu.Unlock()

	metas, err := t.writeTables(th, merged, true, dropTombs, tombs)
	if err != nil {
		return fail(err)
	}

	t.mu.Lock()
	e := &versionEdit{}
	var bytesIn, bytesOut int64
	for _, f := range c.inputs {
		e.deleted = append(e.deleted, deletedFile{level: c.level, num: f.Num})
		bytesIn += int64(f.Size)
		t.compactIn[c.level] += int64(f.Size)
	}
	for _, f := range c.overlap {
		e.deleted = append(e.deleted, deletedFile{level: outLevel, num: f.Num})
		bytesIn += int64(f.Size)
		t.compactIn[outLevel] += int64(f.Size)
	}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: outLevel, meta: mmeta})
		bytesOut += int64(mmeta.Size)
	}
	t.compactOut[outLevel] += bytesOut
	err = t.logAndApply(th, e)
	t.stats.Compactions++
	t.stats.CompactedBytes += bytesIn
	t.stats.TablesCompacted += int64(len(all))
	t.releaseLocked(c)
	t.mu.Unlock()
	res.BytesIn, res.BytesOut = bytesIn, bytesOut
	res.Inputs, res.Outputs = len(all), len(metas)
	if err != nil {
		return res, err
	}
	// Retire the inputs with a grace period instead of deleting them now.
	t.graveMu.Lock()
	var dead []uint64
	for _, f := range all {
		dead = append(dead, f.Num)
	}
	t.graveyard = append(t.graveyard, dead)
	var toDelete []uint64
	if len(t.graveyard) > 2 {
		toDelete = t.graveyard[0]
		t.graveyard = t.graveyard[1:]
	}
	t.graveMu.Unlock()
	for _, num := range toDelete {
		t.dropReader(num)
		if err := t.fs.Delete(th, tableName(num)); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Get looks up ukey at snapshot seq. It returns the freshest visible value
// and its sequence number, with deleted=true when a tombstone definitively
// ends the search. Engines with multiple memtables compare foundSeq against
// memory-resident candidates to pick the globally freshest version.
func (t *Tree) Get(th *hw.Thread, ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	// A concurrent compaction can retire a file between our version snapshot
	// and the table read; retry against a fresh snapshot when that happens.
	for attempt := 0; ; attempt++ {
		value, foundSeq, found, deleted, err = t.getOnce(th, ukey, seq)
		if err == pmemfs.ErrNotFound && attempt < 5 {
			continue
		}
		break
	}
	if err != nil {
		return
	}
	// A range tombstone newer than the freshest point version hides it.
	// Coverage is strict on sequence, so an equal-seq point write survives.
	if cover := t.RangeCoverSeq(ukey, seq); cover > 0 && (!(found || deleted) || cover > foundSeq) {
		return nil, cover, false, true, nil
	}
	return
}

// RangeCoverSeq returns the highest sequence of any range tombstone visible
// at snapshot seq that spans ukey, or 0 when none does. Callers holding
// candidates from other layers (memtables) compare their sequence against it.
func (t *Tree) RangeCoverSeq(ukey []byte, seq uint64) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.rangeDelCount == 0 {
		return 0
	}
	var best uint64
	for _, files := range t.levels {
		for _, f := range files {
			for _, rd := range f.RangeDels {
				if rd.Seq > best && rd.Seq <= seq &&
					bytes.Compare(ukey, rd.Start) >= 0 && bytes.Compare(ukey, rd.End) < 0 {
					best = rd.Seq
				}
			}
		}
	}
	return best
}

// RangeTombstones returns every range tombstone visible at snapshot seq —
// scan paths aggregate these with the memory-resident tombstone list.
func (t *Tree) RangeTombstones(seq uint64) []RangeDel {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.rangeDelCount == 0 {
		return nil
	}
	var out []RangeDel
	for _, files := range t.levels {
		for _, f := range files {
			for _, rd := range f.RangeDels {
				if rd.Seq <= seq {
					out = append(out, rd)
				}
			}
		}
	}
	return out
}

func (t *Tree) getOnce(th *hw.Thread, ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	ikey := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	t.mu.RLock()
	// L0 (and SingleLevel's L1): overlapping tables, newest first.
	l0 := append([]*FileMeta(nil), t.levels[0]...)
	if t.opts.SingleLevel {
		l0 = append(l0, t.levels[1]...)
	}
	var rest [][]*FileMeta
	if !t.opts.SingleLevel {
		for lvl := 1; lvl < t.opts.MaxLevels; lvl++ {
			rest = append(rest, append([]*FileMeta(nil), t.levels[lvl]...))
		}
	}
	t.mu.RUnlock()

	sort.Slice(l0, func(i, j int) bool { return l0[i].Num > l0[j].Num })
	// Overlapping tables may each hold a version; keep the freshest.
	var bestVal []byte
	var bestSeq uint64
	var bestKind util.ValueKind
	best := false
	for _, f := range l0 {
		if bytes.Compare(ukey, f.Smallest.UserKey()) < 0 || bytes.Compare(ukey, f.Largest.UserKey()) > 0 {
			continue
		}
		v, fseq, kind, ok, err := t.getInFile(th, f.Num, ikey)
		if err != nil {
			return nil, 0, false, false, err
		}
		if ok && (!best || fseq > bestSeq) {
			bestVal, bestSeq, bestKind, best = v, fseq, kind, true
		}
	}
	if best {
		if bestKind == util.KindDelete {
			return nil, bestSeq, false, true, nil
		}
		return bestVal, bestSeq, true, false, nil
	}
	for _, files := range rest {
		// Sorted, non-overlapping: binary search the one candidate file.
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].Largest.UserKey(), ukey) >= 0
		})
		if i >= len(files) || bytes.Compare(ukey, files[i].Smallest.UserKey()) < 0 {
			continue
		}
		v, fseq, kind, ok, err := t.getInFile(th, files[i].Num, ikey)
		if err != nil {
			return nil, 0, false, false, err
		}
		if ok {
			if kind == util.KindDelete {
				return nil, fseq, false, true, nil
			}
			return v, fseq, true, false, nil
		}
	}
	return nil, 0, false, false, nil
}

func (t *Tree) getInFile(th *hw.Thread, num uint64, ikey util.InternalKey) ([]byte, uint64, util.ValueKind, bool, error) {
	r, err := t.reader(th, num)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return r.Get(th, ikey)
}

// GetInTable performs a directed lookup in one specific table — SLM-DB's
// B+-tree tells the engine exactly which table holds a key.
func (t *Tree) GetInTable(th *hw.Thread, num uint64, ukey []byte, seq uint64) ([]byte, uint64, util.ValueKind, bool, error) {
	ikey := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	return t.getInFile(th, num, ikey)
}

// NewIterator returns a merged iterator over every table in the tree.
// Callers add their memtable sources on top via NewMergingIterator.
func (t *Tree) NewIterator(th *hw.Thread) (Iterator, error) {
	t.mu.RLock()
	var all []*FileMeta
	for _, files := range t.levels {
		all = append(all, files...)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Num > all[j].Num })
	its := make([]Iterator, 0, len(all))
	for _, f := range all {
		r, err := t.reader(th, f.Num)
		if err != nil {
			return nil, err
		}
		ti, err := r.NewIter(th)
		if err != nil {
			return nil, err
		}
		its = append(its, ti)
	}
	return NewMergingIterator(its...), nil
}

// TableIterator returns an iterator over one specific table (SLM-DB walks
// individual tables when building its B+-tree index).
func (t *Tree) TableIterator(th *hw.Thread, num uint64) (Iterator, error) {
	r, err := t.reader(th, num)
	if err != nil {
		return nil, err
	}
	return r.NewIter(th)
}

// CompactionDebt sizes the reorganization backlog in bytes: every byte of L0
// once the trigger is reached, plus each level's overage beyond its limit.
// The engine's flow controller consumes it as the storage-pressure signal —
// it tracks what the compaction scheduler still owes rather than a raw file
// count.
func (t *Tree) CompactionDebt() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.opts.SingleLevel {
		return 0
	}
	var debt int64
	if len(t.levels[0]) >= t.opts.L0CompactionTrigger {
		debt += t.levelBytesLocked(0)
	}
	for lvl := 1; lvl < t.opts.MaxLevels-1; lvl++ {
		if over := t.levelBytesLocked(lvl) - t.levelLimit(lvl); over > 0 {
			debt += over
		}
	}
	return uint64(debt)
}

// CompactionLevelStats returns per-level write-amplification counters: bytes
// compactions consumed from each level and bytes they wrote into it.
func (t *Tree) CompactionLevelStats() (in, out []int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int64(nil), t.compactIn...), append([]int64(nil), t.compactOut...)
}

// Files returns a snapshot of the file metadata per level (for tests,
// tooling, and the SLM-DB engine's B+-tree construction).
func (t *Tree) Files(level int) []FileMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FileMeta, len(t.levels[level]))
	for i, f := range t.levels[level] {
		out[i] = *f
	}
	return out
}
