package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"cachekv/internal/blockcache"
	"cachekv/internal/hw"
	"cachekv/internal/pmemfs"
	"cachekv/internal/sstable"
	"cachekv/internal/util"
	"cachekv/internal/wal"
)

// Options configure the tree geometry. Zero values select the defaults noted
// per field (scaled from LevelDB's to suit experiment-sized datasets).
type Options struct {
	L0CompactionTrigger int    // L0 file count triggering compaction (4)
	BaseLevelBytes      int64  // L1 size limit; each level is Multiplier x larger (8 MiB)
	LevelMultiplier     int64  // per-level growth factor (10)
	MaxLevels           int    // total levels including L0 (7)
	TableFileSize       uint64 // target SSTable size (2 MiB)
	SingleLevel         bool   // SLM-DB mode: everything lives in one sorted-ish level, no compaction

	// BlockCacheBytes sizes the shared DRAM block cache fronting SSTable
	// data-block reads (8 MiB, LevelDB's default); negative disables it.
	BlockCacheBytes int64
	// BlockCacheShards is the cache's lock-shard count (16).
	BlockCacheShards int
}

func (o Options) withDefaults() Options {
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 7
	}
	if o.TableFileSize == 0 {
		o.TableFileSize = 2 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.BlockCacheShards == 0 {
		o.BlockCacheShards = 16
	}
	return o
}

// Stats counts tree activity.
type Stats struct {
	TablesFlushed   int64
	Compactions     int64
	CompactedBytes  int64
	TablesCompacted int64
}

// Tree is the on-PMem LSM storage component.
type Tree struct {
	m    *hw.Machine
	fs   *pmemfs.FS
	opts Options

	mu             sync.RWMutex
	levels         [][]*FileMeta
	manifest       *wal.Writer
	manifestRegion hw.Region
	nextFile       uint64
	lastSeq        uint64
	stats          Stats

	readerMu sync.Mutex
	readers  map[uint64]*sstable.Reader

	// blockCache is shared by every reader; nil when disabled.
	blockCache *blockcache.Cache

	// graveyard delays physical deletion of compacted-away files by two
	// compaction cycles so in-flight readers and iterators (which run
	// lock-free against a version snapshot) never lose their extents.
	graveMu   sync.Mutex
	graveyard [][]uint64
}

// Open mounts a tree whose manifest lives in manifestRegion, replaying any
// previous state (crash recovery) and starting a fresh, compacted manifest.
func Open(m *hw.Machine, fs *pmemfs.FS, manifestRegion hw.Region, opts Options, th *hw.Thread) (*Tree, error) {
	opts = opts.withDefaults()
	t := &Tree{
		m:              m,
		fs:             fs,
		opts:           opts,
		levels:         make([][]*FileMeta, opts.MaxLevels),
		manifestRegion: manifestRegion,
		nextFile:       1,
		readers:        make(map[uint64]*sstable.Reader),
		blockCache:     blockcache.New(opts.BlockCacheBytes, opts.BlockCacheShards),
	}
	// Replay the previous manifest, if any.
	r := wal.NewReader(m, manifestRegion)
	err := r.ReplayAll(th, func(rec []byte) error {
		e, err := decodeEdit(rec)
		if err != nil {
			return err
		}
		t.apply(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Drop files whose SSTable vanished (crash between manifest append and
	// file seal cannot happen in our ordering, but be defensive).
	for lvl := range t.levels {
		keep := t.levels[lvl][:0]
		for _, f := range t.levels[lvl] {
			if _, err := t.fs.Open(tableName(f.Num)); err == nil {
				keep = append(keep, f)
			}
		}
		t.levels[lvl] = keep
	}
	// Start a fresh manifest holding one snapshot edit.
	t.manifest = wal.NewWriter(m, manifestRegion, th)
	snap := &versionEdit{nextFile: t.nextFile, lastSeq: t.lastSeq}
	for lvl, files := range t.levels {
		for _, f := range files {
			snap.added = append(snap.added, addedFile{level: lvl, meta: *f})
		}
	}
	if _, err := t.manifest.Append(th, snap.encode()); err != nil {
		return nil, err
	}
	return t, nil
}

func tableName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// apply folds an edit into the in-memory version (t.mu must be held or the
// tree not yet shared).
func (t *Tree) apply(e *versionEdit) {
	for _, d := range e.deleted {
		files := t.levels[d.level]
		for i, f := range files {
			if f.Num == d.num {
				t.levels[d.level] = append(files[:i:i], files[i+1:]...)
				break
			}
		}
	}
	for _, a := range e.added {
		meta := a.meta
		t.levels[a.level] = append(t.levels[a.level], &meta)
		t.sortLevel(a.level)
	}
	if e.nextFile > t.nextFile {
		t.nextFile = e.nextFile
	}
	if e.lastSeq > t.lastSeq {
		t.lastSeq = e.lastSeq
	}
}

// sortLevel keeps L0 ordered by file number (recency) and other levels by
// smallest key.
func (t *Tree) sortLevel(level int) {
	files := t.levels[level]
	if level == 0 || t.opts.SingleLevel {
		sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
	} else {
		sort.Slice(files, func(i, j int) bool {
			return util.CompareInternal(files[i].Smallest, files[j].Smallest) < 0
		})
	}
}

// logAndApply persists an edit then applies it (t.mu held).
func (t *Tree) logAndApply(th *hw.Thread, e *versionEdit) error {
	e.nextFile = t.nextFile
	if _, err := t.manifest.Append(th, e.encode()); err != nil {
		return err
	}
	t.apply(e)
	return nil
}

// LastSeq returns the highest sequence number recorded by flushes.
func (t *Tree) LastSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastSeq
}

// NumFiles returns the file count at a level.
func (t *Tree) NumFiles(level int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.levels[level])
}

// LevelBytes returns a level's total byte size.
func (t *Tree) LevelBytes(level int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, f := range t.levels[level] {
		n += int64(f.Size)
	}
	return n
}

// L0Pressure reports the L0 file count and byte total under one lock
// acquisition — the storage-component pressure signal the engine's
// flow-control state machine polls on every lifecycle event.
func (t *Tree) L0Pressure() (files int, bytes int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, f := range t.levels[0] {
		bytes += int64(f.Size)
	}
	return len(t.levels[0]), bytes
}

// GetStats returns a copy of the activity counters.
func (t *Tree) GetStats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// reader returns (opening if needed) the cached sstable reader for a file.
func (t *Tree) reader(th *hw.Thread, num uint64) (*sstable.Reader, error) {
	t.readerMu.Lock()
	defer t.readerMu.Unlock()
	if r, ok := t.readers[num]; ok {
		return r, nil
	}
	f, err := t.fs.Open(tableName(num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.NewReader(f, th)
	if err != nil {
		return nil, err
	}
	r.SetCache(t.blockCache, num)
	t.readers[num] = r
	return r, nil
}

func (t *Tree) dropReader(num uint64) {
	t.readerMu.Lock()
	delete(t.readers, num)
	t.readerMu.Unlock()
	t.blockCache.EvictFile(num)
}

// CacheStats returns the shared block cache's counters (zeros when the cache
// is disabled).
func (t *Tree) CacheStats() blockcache.Stats { return t.blockCache.Stats() }

// writeTables drains it into one or more SSTables capped at TableFileSize,
// returning their metadata. Entries must arrive in internal-key order.
func (t *Tree) writeTables(th *hw.Thread, it Iterator, dropShadowed, dropTombstones bool) ([]FileMeta, error) {
	var out []FileMeta
	var w *sstable.Writer
	var num uint64
	var lastUser []byte
	haveLast := false

	finish := func() error {
		if w == nil {
			return nil
		}
		count, smallest, largest, err := w.Finish()
		if err != nil {
			return err
		}
		if count == 0 {
			// Empty output: abort the file. (Cannot happen today because we
			// only open a writer when an entry is about to be added.)
			return nil
		}
		size, err := t.fs.Size(tableName(num))
		if err != nil {
			return err
		}
		out = append(out, FileMeta{
			Num: num, Size: size, Count: count,
			Smallest: append(util.InternalKey(nil), smallest...),
			Largest:  append(util.InternalKey(nil), largest...),
		})
		w = nil
		return nil
	}

	for ; it.Valid(); it.Next() {
		ikey := it.Key()
		if dropShadowed && haveLast && bytes.Equal(ikey.UserKey(), lastUser) {
			continue // older version of a key we already emitted
		}
		lastUser = append(lastUser[:0], ikey.UserKey()...)
		haveLast = true
		if dropTombstones && ikey.Kind() == util.KindDelete {
			continue
		}
		if w == nil {
			t.mu.Lock()
			num = t.nextFile
			t.nextFile++
			t.mu.Unlock()
			capacity := t.opts.TableFileSize + t.opts.TableFileSize/2 + (256 << 10)
			fw, err := t.fs.Create(th, tableName(num), capacity)
			if err != nil {
				return nil, err
			}
			w = sstable.NewWriter(fw, th)
		}
		if err := w.Add(ikey, it.Value()); err != nil {
			return nil, err
		}
		if w.EstimatedSize() >= t.opts.TableFileSize {
			if err := finish(); err != nil {
				return nil, err
			}
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// Flush writes the contents of it (a frozen memtable view in internal-key
// order) into new tables at L0 — or L1 in SingleLevel mode — records maxSeq,
// and runs any compactions that fall due. It is called from background flush
// threads; concurrent flushes serialize on the tree lock only around version
// installation.
func (t *Tree) Flush(th *hw.Thread, it Iterator, maxSeq uint64) error {
	it.SeekToFirst()
	metas, err := t.writeTables(th, it, false, false)
	if err != nil {
		return err
	}
	level := 0
	if t.opts.SingleLevel {
		level = 1
	}
	t.mu.Lock()
	e := &versionEdit{lastSeq: maxSeq}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: level, meta: mmeta})
	}
	if maxSeq > t.lastSeq {
		e.lastSeq = maxSeq
	}
	err = t.logAndApply(th, e)
	t.stats.TablesFlushed += int64(len(metas))
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.MaybeCompact(th)
}

// FlushNoCompact installs tables like Flush but leaves any due compaction to
// a later MaybeCompact call — engines whose flush latency must not absorb
// compaction debt (CacheKV's spill path) use it and compact afterwards.
func (t *Tree) FlushNoCompact(th *hw.Thread, it Iterator, maxSeq uint64) error {
	it.SeekToFirst()
	metas, err := t.writeTables(th, it, false, false)
	if err != nil {
		return err
	}
	level := 0
	if t.opts.SingleLevel {
		level = 1
	}
	t.mu.Lock()
	e := &versionEdit{lastSeq: maxSeq}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: level, meta: mmeta})
	}
	if maxSeq > t.lastSeq {
		e.lastSeq = maxSeq
	}
	err = t.logAndApply(th, e)
	t.stats.TablesFlushed += int64(len(metas))
	t.mu.Unlock()
	return err
}

// levelLimit returns the size limit for level (1-based levels).
func (t *Tree) levelLimit(level int) int64 {
	limit := t.opts.BaseLevelBytes
	for i := 1; i < level; i++ {
		limit *= t.opts.LevelMultiplier
	}
	return limit
}

// pickCompaction chooses the next compaction under t.mu; nil means none due.
type compaction struct {
	level   int // input level; outputs go to level+1
	inputs  []*FileMeta
	overlap []*FileMeta
}

func (t *Tree) pickCompaction() *compaction {
	if t.opts.SingleLevel {
		return nil
	}
	if len(t.levels[0]) >= t.opts.L0CompactionTrigger {
		c := &compaction{level: 0, inputs: append([]*FileMeta(nil), t.levels[0]...)}
		c.overlap = t.overlapping(1, c.inputs)
		return c
	}
	for lvl := 1; lvl < t.opts.MaxLevels-1; lvl++ {
		if t.levelBytesLocked(lvl) > t.levelLimit(lvl) && len(t.levels[lvl]) > 0 {
			c := &compaction{level: lvl, inputs: []*FileMeta{t.levels[lvl][0]}}
			c.overlap = t.overlapping(lvl+1, c.inputs)
			return c
		}
	}
	return nil
}

func (t *Tree) levelBytesLocked(level int) int64 {
	var n int64
	for _, f := range t.levels[level] {
		n += int64(f.Size)
	}
	return n
}

// overlapping returns the files at level whose user-key ranges intersect any
// input's range.
func (t *Tree) overlapping(level int, inputs []*FileMeta) []*FileMeta {
	var lo, hi []byte
	for _, f := range inputs {
		if lo == nil || bytes.Compare(f.Smallest.UserKey(), lo) < 0 {
			lo = f.Smallest.UserKey()
		}
		if hi == nil || bytes.Compare(f.Largest.UserKey(), hi) > 0 {
			hi = f.Largest.UserKey()
		}
	}
	var out []*FileMeta
	for _, f := range t.levels[level] {
		if bytes.Compare(f.Largest.UserKey(), lo) < 0 || bytes.Compare(f.Smallest.UserKey(), hi) > 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

// MaybeCompact runs compactions until every level is within limits. It is
// charged to the calling (background) thread.
func (t *Tree) MaybeCompact(th *hw.Thread) error {
	for {
		t.mu.Lock()
		c := t.pickCompaction()
		t.mu.Unlock()
		if c == nil {
			return nil
		}
		if err := t.compact(th, c); err != nil {
			return err
		}
	}
}

func (t *Tree) compact(th *hw.Thread, c *compaction) error {
	all := append(append([]*FileMeta(nil), c.inputs...), c.overlap...)
	// Newest-first ordering for the merge tie-break: higher file numbers are
	// newer at L0; between levels, the upper level is newer.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Num > all[j].Num })
	its := make([]Iterator, 0, len(all))
	for _, f := range all {
		r, err := t.reader(th, f.Num)
		if err != nil {
			return err
		}
		ti, err := r.NewIter(th)
		if err != nil {
			return err
		}
		its = append(its, ti)
	}
	merged := NewMergingIterator(its...)
	merged.SeekToFirst()

	// Tombstones can be dropped when no level below the output overlaps the
	// compaction's key range.
	outLevel := c.level + 1
	t.mu.Lock()
	dropTombs := true
	for lvl := outLevel + 1; lvl < t.opts.MaxLevels; lvl++ {
		if len(t.overlapping(lvl, all)) > 0 {
			dropTombs = false
			break
		}
	}
	t.mu.Unlock()

	metas, err := t.writeTables(th, merged, true, dropTombs)
	if err != nil {
		return err
	}

	t.mu.Lock()
	e := &versionEdit{}
	var bytesIn int64
	for _, f := range c.inputs {
		e.deleted = append(e.deleted, deletedFile{level: c.level, num: f.Num})
		bytesIn += int64(f.Size)
	}
	for _, f := range c.overlap {
		e.deleted = append(e.deleted, deletedFile{level: outLevel, num: f.Num})
		bytesIn += int64(f.Size)
	}
	for _, mmeta := range metas {
		e.added = append(e.added, addedFile{level: outLevel, meta: mmeta})
	}
	err = t.logAndApply(th, e)
	t.stats.Compactions++
	t.stats.CompactedBytes += bytesIn
	t.stats.TablesCompacted += int64(len(all))
	t.mu.Unlock()
	if err != nil {
		return err
	}
	// Retire the inputs with a grace period instead of deleting them now.
	t.graveMu.Lock()
	var dead []uint64
	for _, f := range all {
		dead = append(dead, f.Num)
	}
	t.graveyard = append(t.graveyard, dead)
	var toDelete []uint64
	if len(t.graveyard) > 2 {
		toDelete = t.graveyard[0]
		t.graveyard = t.graveyard[1:]
	}
	t.graveMu.Unlock()
	for _, num := range toDelete {
		t.dropReader(num)
		if err := t.fs.Delete(th, tableName(num)); err != nil {
			return err
		}
	}
	return nil
}

// Get looks up ukey at snapshot seq. It returns the freshest visible value
// and its sequence number, with deleted=true when a tombstone definitively
// ends the search. Engines with multiple memtables compare foundSeq against
// memory-resident candidates to pick the globally freshest version.
func (t *Tree) Get(th *hw.Thread, ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	// A concurrent compaction can retire a file between our version snapshot
	// and the table read; retry against a fresh snapshot when that happens.
	for attempt := 0; ; attempt++ {
		value, foundSeq, found, deleted, err = t.getOnce(th, ukey, seq)
		if err == pmemfs.ErrNotFound && attempt < 5 {
			continue
		}
		return
	}
}

func (t *Tree) getOnce(th *hw.Thread, ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	ikey := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	t.mu.RLock()
	// L0 (and SingleLevel's L1): overlapping tables, newest first.
	l0 := append([]*FileMeta(nil), t.levels[0]...)
	if t.opts.SingleLevel {
		l0 = append(l0, t.levels[1]...)
	}
	var rest [][]*FileMeta
	if !t.opts.SingleLevel {
		for lvl := 1; lvl < t.opts.MaxLevels; lvl++ {
			rest = append(rest, append([]*FileMeta(nil), t.levels[lvl]...))
		}
	}
	t.mu.RUnlock()

	sort.Slice(l0, func(i, j int) bool { return l0[i].Num > l0[j].Num })
	// Overlapping tables may each hold a version; keep the freshest.
	var bestVal []byte
	var bestSeq uint64
	var bestKind util.ValueKind
	best := false
	for _, f := range l0 {
		if bytes.Compare(ukey, f.Smallest.UserKey()) < 0 || bytes.Compare(ukey, f.Largest.UserKey()) > 0 {
			continue
		}
		v, fseq, kind, ok, err := t.getInFile(th, f.Num, ikey)
		if err != nil {
			return nil, 0, false, false, err
		}
		if ok && (!best || fseq > bestSeq) {
			bestVal, bestSeq, bestKind, best = v, fseq, kind, true
		}
	}
	if best {
		if bestKind == util.KindDelete {
			return nil, bestSeq, false, true, nil
		}
		return bestVal, bestSeq, true, false, nil
	}
	for _, files := range rest {
		// Sorted, non-overlapping: binary search the one candidate file.
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].Largest.UserKey(), ukey) >= 0
		})
		if i >= len(files) || bytes.Compare(ukey, files[i].Smallest.UserKey()) < 0 {
			continue
		}
		v, fseq, kind, ok, err := t.getInFile(th, files[i].Num, ikey)
		if err != nil {
			return nil, 0, false, false, err
		}
		if ok {
			if kind == util.KindDelete {
				return nil, fseq, false, true, nil
			}
			return v, fseq, true, false, nil
		}
	}
	return nil, 0, false, false, nil
}

func (t *Tree) getInFile(th *hw.Thread, num uint64, ikey util.InternalKey) ([]byte, uint64, util.ValueKind, bool, error) {
	r, err := t.reader(th, num)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return r.Get(th, ikey)
}

// GetInTable performs a directed lookup in one specific table — SLM-DB's
// B+-tree tells the engine exactly which table holds a key.
func (t *Tree) GetInTable(th *hw.Thread, num uint64, ukey []byte, seq uint64) ([]byte, uint64, util.ValueKind, bool, error) {
	ikey := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	return t.getInFile(th, num, ikey)
}

// NewIterator returns a merged iterator over every table in the tree.
// Callers add their memtable sources on top via NewMergingIterator.
func (t *Tree) NewIterator(th *hw.Thread) (Iterator, error) {
	t.mu.RLock()
	var all []*FileMeta
	for _, files := range t.levels {
		all = append(all, files...)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Num > all[j].Num })
	its := make([]Iterator, 0, len(all))
	for _, f := range all {
		r, err := t.reader(th, f.Num)
		if err != nil {
			return nil, err
		}
		ti, err := r.NewIter(th)
		if err != nil {
			return nil, err
		}
		its = append(its, ti)
	}
	return NewMergingIterator(its...), nil
}

// TableIterator returns an iterator over one specific table (SLM-DB walks
// individual tables when building its B+-tree index).
func (t *Tree) TableIterator(th *hw.Thread, num uint64) (Iterator, error) {
	r, err := t.reader(th, num)
	if err != nil {
		return nil, err
	}
	return r.NewIter(th)
}

// Files returns a snapshot of the file metadata per level (for tests,
// tooling, and the SLM-DB engine's B+-tree construction).
func (t *Tree) Files(level int) []FileMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]FileMeta, len(t.levels[level]))
	for i, f := range t.levels[level] {
		out[i] = *f
	}
	return out
}
