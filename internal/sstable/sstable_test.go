package sstable

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/pmemfs"
	"cachekv/internal/util"
)

func newEnv(t *testing.T) (*pmemfs.FS, *hw.Thread) {
	t.Helper()
	m := hw.NewMachine(hw.Config{PMemBytes: 256 << 20})
	th := m.NewThread(0)
	fs, err := pmemfs.Mount(m, m.Alloc("fs", 128<<20, 0), th)
	if err != nil {
		t.Fatal(err)
	}
	return fs, th
}

type entry struct {
	key  string
	seq  uint64
	kind util.ValueKind
	val  string
}

func buildTable(t *testing.T, fs *pmemfs.FS, th *hw.Thread, name string, entries []entry) *Reader {
	t.Helper()
	fw, err := fs.Create(th, name, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fw, th)
	for _, e := range entries {
		ik := util.MakeInternalKey(nil, []byte(e.key), e.seq, e.kind)
		if err := w.Add(ik, []byte(e.val)); err != nil {
			t.Fatal(err)
		}
	}
	count, smallest, largest, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if count != len(entries) {
		t.Fatalf("count = %d, want %d", count, len(entries))
	}
	if len(entries) > 0 {
		if string(smallest.UserKey()) != entries[0].key {
			t.Fatalf("smallest = %s", smallest)
		}
		if string(largest.UserKey()) != entries[len(entries)-1].key {
			t.Fatalf("largest = %s", largest)
		}
	}
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f, th)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sortedEntries(n int) []entry {
	var es []entry
	for i := 0; i < n; i++ {
		es = append(es, entry{
			key:  fmt.Sprintf("user%08d", i),
			seq:  uint64(1000 + i),
			kind: util.KindValue,
			val:  fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte("v"), i%40)),
		})
	}
	return es
}

func TestGetEveryKey(t *testing.T) {
	fs, th := newEnv(t)
	es := sortedEntries(5000) // spans many data blocks
	r := buildTable(t, fs, th, "t1", es)
	for _, e := range es {
		ik := util.MakeInternalKey(nil, []byte(e.key), util.MaxSequence, util.KindValue)
		v, _, kind, ok, err := r.Get(th, ik)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || kind != util.KindValue || string(v) != e.val {
			t.Fatalf("Get(%s) = %q, %v, %v", e.key, v, kind, ok)
		}
	}
}

func TestGetAbsentKey(t *testing.T) {
	fs, th := newEnv(t)
	r := buildTable(t, fs, th, "t1", sortedEntries(100))
	for _, k := range []string{"aaaa", "user00000050x", "zzzz"} {
		ik := util.MakeInternalKey(nil, []byte(k), util.MaxSequence, util.KindValue)
		if _, _, _, ok, _ := r.Get(th, ik); ok {
			t.Fatalf("found absent key %q", k)
		}
	}
}

func TestGetRespectsSnapshotSeq(t *testing.T) {
	fs, th := newEnv(t)
	// Same user key at descending seq (internal key order).
	es := []entry{
		{"k", 30, util.KindValue, "v30"},
		{"k", 20, util.KindDelete, ""},
		{"k", 10, util.KindValue, "v10"},
	}
	r := buildTable(t, fs, th, "t1", es)
	// At seq >= 30 we see v30.
	ik := util.MakeInternalKey(nil, []byte("k"), 35, util.KindValue)
	v, _, kind, ok, _ := r.Get(th, ik)
	if !ok || kind != util.KindValue || string(v) != "v30" {
		t.Fatalf("seq35: %q %v %v", v, kind, ok)
	}
	// At seq 25 we see the tombstone.
	ik = util.MakeInternalKey(nil, []byte("k"), 25, util.KindValue)
	_, _, kind, ok, _ = r.Get(th, ik)
	if !ok || kind != util.KindDelete {
		t.Fatalf("seq25: kind=%v ok=%v", kind, ok)
	}
	// At seq 15 we see v10.
	ik = util.MakeInternalKey(nil, []byte("k"), 15, util.KindValue)
	v, _, kind, ok, _ = r.Get(th, ik)
	if !ok || kind != util.KindValue || string(v) != "v10" {
		t.Fatalf("seq15: %q %v %v", v, kind, ok)
	}
}

func TestFullScan(t *testing.T) {
	fs, th := newEnv(t)
	es := sortedEntries(3000)
	r := buildTable(t, fs, th, "t1", es)
	it, err := r.NewIter(th)
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst()
	for i, e := range es {
		if !it.Valid() {
			t.Fatalf("scan died at %d (err=%v)", i, it.Err())
		}
		if string(it.Key().UserKey()) != e.key || string(it.Value()) != e.val {
			t.Fatalf("at %d: %s=%q", i, it.Key(), it.Value())
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("scan has extras")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestIterSeek(t *testing.T) {
	fs, th := newEnv(t)
	es := sortedEntries(2000)
	r := buildTable(t, fs, th, "t1", es)
	it, _ := r.NewIter(th)
	// Seek to a key in the middle of some block.
	target := util.MakeInternalKey(nil, []byte("user00001234"), util.MaxSequence, util.KindValue)
	it.Seek(target)
	if !it.Valid() || string(it.Key().UserKey()) != "user00001234" {
		t.Fatalf("Seek landed on %s", it.Key())
	}
	// Seek between keys.
	target = util.MakeInternalKey(nil, []byte("user00001234a"), util.MaxSequence, util.KindValue)
	it.Seek(target)
	if !it.Valid() || string(it.Key().UserKey()) != "user00001235" {
		t.Fatalf("between-keys Seek landed on %s", it.Key())
	}
	// Seek past the end.
	target = util.MakeInternalKey(nil, []byte("zzzz"), util.MaxSequence, util.KindValue)
	it.Seek(target)
	if it.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestEmptyTable(t *testing.T) {
	fs, th := newEnv(t)
	r := buildTable(t, fs, th, "empty", nil)
	it, _ := r.NewIter(th)
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("empty table iterates")
	}
	ik := util.MakeInternalKey(nil, []byte("k"), util.MaxSequence, util.KindValue)
	if _, _, _, ok, _ := r.Get(th, ik); ok {
		t.Fatal("empty table found a key")
	}
}

func TestCorruptFooter(t *testing.T) {
	fs, th := newEnv(t)
	fw, _ := fs.Create(th, "bad", 4096)
	fw.Append(th, bytes.Repeat([]byte{7}, 100))
	fw.Finish(th)
	f, _ := fs.Open("bad")
	if _, err := NewReader(f, th); err == nil {
		t.Fatal("garbage file accepted as sstable")
	}
}

func TestMultipleTablesShareFS(t *testing.T) {
	fs, th := newEnv(t)
	r1 := buildTable(t, fs, th, "a", sortedEntries(500))
	r2 := buildTable(t, fs, th, "b", sortedEntries(500))
	ik := util.MakeInternalKey(nil, []byte("user00000250"), util.MaxSequence, util.KindValue)
	for i, r := range []*Reader{r1, r2} {
		if _, _, _, ok, _ := r.Get(th, ik); !ok {
			t.Fatalf("table %d lost key", i)
		}
	}
}

func TestKeysWithSharedPrefixesAcrossBlocks(t *testing.T) {
	fs, th := newEnv(t)
	var es []entry
	for i := 0; i < 4000; i++ {
		es = append(es, entry{
			key:  fmt.Sprintf("tenant/alpha/workspace/%08d", i),
			seq:  uint64(i + 1),
			kind: util.KindValue,
			val:  "v",
		})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].key < es[j].key })
	r := buildTable(t, fs, th, "pfx", es)
	for i := 0; i < 4000; i += 37 {
		ik := util.MakeInternalKey(nil, []byte(es[i].key), util.MaxSequence, util.KindValue)
		if _, _, _, ok, _ := r.Get(th, ik); !ok {
			t.Fatalf("lost prefixed key %s", es[i].key)
		}
	}
}
