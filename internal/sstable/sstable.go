// Package sstable implements the Sorted String Table files that form the
// LSM-tree's storage component: data blocks holding internal-key/value
// entries, one bloom filter block, an index block mapping separator keys to
// data-block handles, and a fixed footer. The layout follows LevelDB; keys
// inside a table are internal keys ordered by util.CompareInternal.
package sstable

import (
	"fmt"

	"cachekv/internal/block"
	"cachekv/internal/blockcache"
	"cachekv/internal/bloom"
	"cachekv/internal/hw"
	"cachekv/internal/pmemfs"
	"cachekv/internal/util"
)

const (
	// TargetBlockSize is the uncompressed data block size threshold.
	TargetBlockSize = 4 << 10
	footerLen       = 40
	tableMagic      = 0xdb4775248b80fb57
)

// handle locates a block within the file.
type handle struct{ offset, length uint64 }

func (h handle) encode(dst []byte) []byte {
	dst = util.PutUvarint(dst, h.offset)
	return util.PutUvarint(dst, h.length)
}

func decodeHandle(src []byte) (handle, int, error) {
	off, n1, err := util.Uvarint(src)
	if err != nil {
		return handle{}, 0, err
	}
	length, n2, err := util.Uvarint(src[n1:])
	if err != nil {
		return handle{}, 0, err
	}
	return handle{off, length}, n1 + n2, nil
}

// Writer builds one SSTable into a pmemfs file. Entries must be added in
// ascending internal-key order.
type Writer struct {
	w       *pmemfs.Writer
	th      *hw.Thread
	data    *block.Builder
	index   *block.Builder
	filter  *bloom.Filter
	keys    [][]byte // user keys for the filter
	pending bool     // an index entry awaits the next block's first key
	pendKey []byte   // last key of the finished block
	pendH   handle
	first   []byte
	last    []byte
	count   int
	err     error
}

// NewWriter wraps a pmemfs writer. th is the thread charged for the I/O.
func NewWriter(w *pmemfs.Writer, th *hw.Thread) *Writer {
	return &Writer{
		w:      w,
		th:     th,
		data:   block.NewBuilder(),
		index:  block.NewBuilder(),
		filter: bloom.New(10),
	}
}

// Add appends an internal key and value.
func (t *Writer) Add(ikey util.InternalKey, value []byte) error {
	if t.err != nil {
		return t.err
	}
	if t.pending {
		// The separator only needs to sort >= last block's keys and < this
		// key; using the last key verbatim is always correct.
		t.index.Add(t.pendKey, t.pendH.encode(nil))
		t.pending = false
	}
	if t.first == nil {
		t.first = append([]byte(nil), ikey...)
	}
	t.last = append(t.last[:0], ikey...)
	t.keys = append(t.keys, append([]byte(nil), ikey.UserKey()...))
	t.data.Add(ikey, value)
	t.count++
	if t.data.EstimatedSize() >= TargetBlockSize {
		t.flushBlock()
	}
	return t.err
}

func (t *Writer) flushBlock() {
	if t.data.Empty() {
		return
	}
	contents := t.data.Finish()
	off := t.w.Offset()
	if err := t.w.Append(t.th, contents); err != nil {
		t.err = err
		return
	}
	t.pendH = handle{off, uint64(len(contents))}
	t.pendKey = append([]byte(nil), t.last...)
	t.pending = true
	t.data.Reset()
}

// Finish flushes remaining blocks, writes the filter, index and footer, and
// seals the file. It returns the number of entries and the table's key range.
func (t *Writer) Finish() (count int, smallest, largest util.InternalKey, err error) {
	if t.err != nil {
		return 0, nil, nil, t.err
	}
	t.flushBlock()
	if t.pending {
		t.index.Add(t.pendKey, t.pendH.encode(nil))
		t.pending = false
	}
	// Filter block.
	filterData := t.filter.Build(t.keys)
	filterH := handle{t.w.Offset(), uint64(len(filterData))}
	if err := t.w.Append(t.th, filterData); err != nil {
		return 0, nil, nil, err
	}
	// Index block.
	indexData := t.index.Finish()
	indexH := handle{t.w.Offset(), uint64(len(indexData))}
	if err := t.w.Append(t.th, indexData); err != nil {
		return 0, nil, nil, err
	}
	// Footer: filter handle, index handle, padding, magic.
	footer := make([]byte, 0, footerLen)
	footer = filterH.encode(footer)
	footer = indexH.encode(footer)
	for len(footer) < footerLen-8 {
		footer = append(footer, 0)
	}
	footer = util.PutFixed64(footer, tableMagic)
	if err := t.w.Append(t.th, footer); err != nil {
		return 0, nil, nil, err
	}
	if err := t.w.Finish(t.th); err != nil {
		return 0, nil, nil, err
	}
	return t.count, t.first, t.last, nil
}

// Abort abandons the table file.
func (t *Writer) Abort() { t.w.Abort(t.th) }

// EstimatedSize returns bytes written so far plus the buffered block.
func (t *Writer) EstimatedSize() uint64 {
	return t.w.Offset() + uint64(t.data.EstimatedSize())
}

// Reader serves lookups and scans from one sealed SSTable. Data-block reads
// go through a shared DRAM block cache owned by the LSM tree (LevelDB keeps
// an 8 MiB one): cached hits cost a DRAM access instead of PMem media reads,
// and because the cache outlives the Reader, hot blocks survive reader churn
// across compactions. A nil cache disables caching.
type Reader struct {
	f      *pmemfs.File
	index  []byte
	filter []byte

	cache   *blockcache.Cache
	cacheID uint64 // file number namespacing this reader's blocks
}

// SetCache attaches the shared block cache; id must be unique per file (the
// LSM tree uses the file number, which is never reused).
func (r *Reader) SetCache(c *blockcache.Cache, id uint64) {
	r.cache = c
	r.cacheID = id
}

// readBlock returns the data block at h, through the shared block cache.
func (r *Reader) readBlock(th *hw.Thread, h handle) ([]byte, error) {
	key := blockcache.Key{File: r.cacheID, Offset: h.offset}
	if b, ok := r.cache.Get(key); ok {
		th.ChargeDRAM(1)
		return b, nil
	}
	contents := make([]byte, h.length)
	if err := r.f.ReadAt(th, h.offset, contents); err != nil {
		return nil, err
	}
	r.cache.Put(key, contents)
	return contents, nil
}

// NewReader opens a table, reading its footer, index and filter blocks.
func NewReader(f *pmemfs.File, th *hw.Thread) (*Reader, error) {
	size := f.Size()
	if size < footerLen {
		return nil, fmt.Errorf("sstable: file too small (%d bytes)", size)
	}
	footer := make([]byte, footerLen)
	if err := f.ReadAt(th, size-footerLen, footer); err != nil {
		return nil, err
	}
	if util.Fixed64(footer[footerLen-8:]) != tableMagic {
		return nil, fmt.Errorf("sstable: bad magic")
	}
	filterH, n, err := decodeHandle(footer)
	if err != nil {
		return nil, err
	}
	indexH, _, err := decodeHandle(footer[n:])
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f}
	r.filter = make([]byte, filterH.length)
	if err := f.ReadAt(th, filterH.offset, r.filter); err != nil {
		return nil, err
	}
	r.index = make([]byte, indexH.length)
	if err := f.ReadAt(th, indexH.offset, r.index); err != nil {
		return nil, err
	}
	return r, nil
}

func icmp(a, b []byte) int { return util.CompareInternal(a, b) }

// Get looks up the freshest entry for ikey's user key at or below ikey's
// sequence number. It returns the value, the entry's sequence number and
// kind, and whether anything was found.
func (r *Reader) Get(th *hw.Thread, ikey util.InternalKey) ([]byte, uint64, util.ValueKind, bool, error) {
	if !bloom.MayContain(r.filter, ikey.UserKey()) {
		return nil, 0, 0, false, nil
	}
	idx, err := block.NewIter(r.index)
	if err != nil {
		return nil, 0, 0, false, err
	}
	idx.Seek(ikey, icmp)
	if !idx.Valid() {
		return nil, 0, 0, false, idx.Err()
	}
	h, _, err := decodeHandle(idx.Value())
	if err != nil {
		return nil, 0, 0, false, err
	}
	contents, err := r.readBlock(th, h)
	if err != nil {
		return nil, 0, 0, false, err
	}
	it, err := block.NewIter(contents)
	if err != nil {
		return nil, 0, 0, false, err
	}
	it.Seek(ikey, icmp)
	if !it.Valid() {
		return nil, 0, 0, false, it.Err()
	}
	found := util.InternalKey(it.Key())
	// Range-tombstone entries are not point versions: their value is the
	// span's end key, never a user value. Step past any that share the
	// sought user key; coverage is applied by the tree from file metadata.
	for found.Kind() == util.KindRangeDel && string(found.UserKey()) == string(ikey.UserKey()) {
		it.Next()
		if !it.Valid() {
			return nil, 0, 0, false, it.Err()
		}
		found = util.InternalKey(it.Key())
	}
	if string(found.UserKey()) != string(ikey.UserKey()) {
		return nil, 0, 0, false, nil
	}
	val := append([]byte(nil), it.Value()...)
	return val, found.Seq(), found.Kind(), true, nil
}

// Iter is a two-level iterator over the whole table.
type Iter struct {
	r    *Reader
	th   *hw.Thread
	idx  *block.Iter
	data *block.Iter
	err  error
}

// NewIter returns an unpositioned table iterator.
func (r *Reader) NewIter(th *hw.Thread) (*Iter, error) {
	idx, err := block.NewIter(r.index)
	if err != nil {
		return nil, err
	}
	return &Iter{r: r, th: th, idx: idx}, nil
}

func (it *Iter) loadData() {
	it.data = nil
	if !it.idx.Valid() {
		return
	}
	h, _, err := decodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		return
	}
	contents, err := it.r.readBlock(it.th, h)
	if err != nil {
		it.err = err
		return
	}
	d, err := block.NewIter(contents)
	if err != nil {
		it.err = err
		return
	}
	it.data = d
}

// SeekToFirst positions at the table's first entry.
func (it *Iter) SeekToFirst() {
	it.idx.SeekToFirst()
	it.loadData()
	if it.data != nil {
		it.data.SeekToFirst()
	}
	it.skipForward()
}

// Seek positions at the first entry >= ikey.
func (it *Iter) Seek(ikey util.InternalKey) {
	it.idx.Seek(ikey, icmp)
	it.loadData()
	if it.data != nil {
		it.data.Seek(ikey, icmp)
	}
	it.skipForward()
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipForward()
}

func (it *Iter) skipForward() {
	for it.err == nil && (it.data == nil || !it.data.Valid()) {
		if it.data != nil && it.data.Err() != nil {
			it.err = it.data.Err()
			return
		}
		it.idx.Next()
		if !it.idx.Valid() {
			it.data = nil
			return
		}
		it.loadData()
		if it.data != nil {
			it.data.SeekToFirst()
		}
	}
}

// Valid reports whether the iterator is on an entry.
func (it *Iter) Valid() bool {
	return it.err == nil && it.data != nil && it.data.Valid()
}

// Err returns any error encountered.
func (it *Iter) Err() error { return it.err }

// Key returns the current internal key.
func (it *Iter) Key() util.InternalKey { return util.InternalKey(it.data.Key()) }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.data.Value() }
