package faultinject

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/lsm"
	"cachekv/internal/pmemfs"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// The compaction/ingest crash family drives a bare lsm.Tree through flushes,
// a range-tombstone flush, compaction cascades, and an external-SST ingest —
// all from the single workload thread, so the persistence-op stream stays
// deterministic (the background scheduler would break event numbering; the
// scheduler runs the same compact() code path this family crashes). The
// oracle checks the manifest's all-or-nothing contract: after a crash at any
// event, recovery must observe exactly the file set from before or after the
// in-flight step — compactions may never change logical content, and a
// flush/ingest is either fully visible or fully absent.

func ckTreeOpts() lsm.Options {
	return lsm.Options{
		L0CompactionTrigger: 2,
		BaseLevelBytes:      8 << 10,
		LevelMultiplier:     4,
		MaxLevels:           4,
		TableFileSize:       4 << 10,
		BlockCacheBytes:     -1, // every read hits PMem: no DRAM cache state
	}
}

type ckIter struct{ it *skiplist.Iterator }

func (m *ckIter) Valid() bool              { return m.it.Valid() }
func (m *ckIter) SeekToFirst()             { m.it.SeekToFirst() }
func (m *ckIter) Seek(ik util.InternalKey) { m.it.Seek(ik, nil) }
func (m *ckIter) Next()                    { m.it.Next() }
func (m *ckIter) Key() util.InternalKey    { return util.InternalKey(m.it.Key()) }
func (m *ckIter) Value() []byte            { return m.it.Value() }

func ckCmp(a, b []byte) int {
	return util.CompareInternal(util.InternalKey(a), util.InternalKey(b))
}

func ckKey(j int) []byte { return []byte(fmt.Sprintf("key%04d", j)) }
func ckIngKey(j int) []byte {
	return []byte(fmt.Sprintf("zig%04d", j)) // sorts after every ckKey
}

const (
	ckFlushes      = 4
	ckKeysPerFlush = 24
	ckFlushStride  = 12 // overlapping flushes: i*12 .. i*12+23
	ckRdelSeq      = 5000
	ckRdelLo       = 6
	ckRdelHi       = 18
	ckIngestN      = 20
	ckIngestSeq    = 6000
	ckNumKeys      = (ckFlushes-1)*ckFlushStride + ckKeysPerFlush
)

func ckSeq(i, j int) uint64 { return uint64(1 + i*100 + j) }

// ckStep indices: 0..3 flushes, 4 rdel, 5 compact1, 6 ingest, 7 compact2.
const (
	ckStepRdel     = ckFlushes
	ckStepCompact1 = ckFlushes + 1
	ckStepIngest   = ckFlushes + 2
	ckStepCompact2 = ckFlushes + 3
	ckNumSteps     = ckFlushes + 4
)

func ckStepName(i int) string {
	switch {
	case i < ckFlushes:
		return fmt.Sprintf("flush%d", i)
	case i == ckStepRdel:
		return "rdel"
	case i == ckStepCompact1:
		return "compact1"
	case i == ckStepIngest:
		return "ingest"
	default:
		return "compact2"
	}
}

func ckFlush(tr *lsm.Tree, th *hw.Thread, i int) error {
	l := skiplist.New(ckCmp, 1)
	var maxSeq uint64
	for j := i * ckFlushStride; j < i*ckFlushStride+ckKeysPerFlush; j++ {
		s := ckSeq(i, j)
		ik := util.MakeInternalKey(nil, ckKey(j), s, util.KindValue)
		l.Insert(ik, []byte(fmt.Sprintf("f%d-%d", i, j)), nil)
		if s > maxSeq {
			maxSeq = s
		}
	}
	return tr.FlushNoCompact(th, &ckIter{it: l.NewIterator()}, maxSeq)
}

func ckRunStep(tr *lsm.Tree, th *hw.Thread, step int, frozen func() bool) error {
	switch {
	case step < ckFlushes:
		return ckFlush(tr, th, step)
	case step == ckStepRdel:
		l := skiplist.New(ckCmp, 1)
		ik := util.MakeInternalKey(nil, ckKey(ckRdelLo), ckRdelSeq, util.KindRangeDel)
		l.Insert(ik, ckKey(ckRdelHi), nil)
		return tr.Flush(th, &ckIter{it: l.NewIterator()}, ckRdelSeq)
	case step == ckStepIngest:
		var es []lsm.IngestEntry
		for j := 0; j < ckIngestN; j++ {
			es = append(es, lsm.IngestEntry{Key: ckIngKey(j), Value: []byte(fmt.Sprintf("ing-%d", j))})
		}
		return tr.Ingest(th, es, ckIngestSeq)
	default: // compact steps: drain all due work
		for n := 0; n < 64; n++ {
			if frozen != nil && frozen() {
				return nil
			}
			if err := tr.MaybeCompact(th); err != nil {
				return err
			}
			if tr.CompactionDebt() == 0 {
				return nil
			}
		}
		return fmt.Errorf("compaction debt never drained")
	}
}

// ckOpen allocates the tree's regions on m and opens it. The region handles
// must be reused for the post-crash reopen (same machine, same addresses).
func ckOpen(m *hw.Machine, th *hw.Thread) (*lsm.Tree, hw.Region, hw.Region, error) {
	fsRegion := m.Alloc("ckfs", 64<<20, 0)
	manifest := m.Alloc("ckmanifest", 4<<20, 0)
	fs, err := pmemfs.Mount(m, fsRegion, th)
	if err != nil {
		return nil, fsRegion, manifest, err
	}
	tr, err := lsm.Open(m, fs, manifest, ckTreeOpts(), th)
	return tr, fsRegion, manifest, err
}

// ckMarks runs the workload uncrashed under a counting gate and returns the
// cumulative event count at the end of each step plus the stream hash.
func ckMarks(t *testing.T, domain cache.Domain) ([]int64, uint64) {
	t.Helper()
	m := NewMachine(domain)
	th := m.NewThread(0)
	tr, _, _, err := ckOpen(m, th)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector()
	inj.Arm(0, FaultNone, 0)
	m.SetMemGate(inj.Gate)
	marks := make([]int64, ckNumSteps)
	for i := 0; i < ckNumSteps; i++ {
		if err := ckRunStep(tr, th, i, nil); err != nil {
			t.Fatalf("%s/%s failed uncrashed: %v", domain, ckStepName(i), err)
		}
		marks[i] = inj.Events()
	}
	m.SetMemGate(nil)
	return marks, inj.StreamHash()
}

// ckExpect returns the expected visibility of every key given which steps
// applied. applied[i] is meaningful only for flush/rdel/ingest steps;
// compactions never change logical content.
type ckView struct {
	vals map[string]string // expected visible key -> value
}

func ckExpect(applied [ckNumSteps]bool) ckView {
	v := ckView{vals: make(map[string]string)}
	for j := 0; j < ckNumKeys; j++ {
		for i := ckFlushes - 1; i >= 0; i-- {
			if applied[i] && j >= i*ckFlushStride && j < i*ckFlushStride+ckKeysPerFlush {
				v.vals[string(ckKey(j))] = fmt.Sprintf("f%d-%d", i, j)
				break
			}
		}
	}
	if applied[ckStepRdel] {
		for j := ckRdelLo; j < ckRdelHi; j++ {
			delete(v.vals, string(ckKey(j)))
		}
	}
	if applied[ckStepIngest] {
		for j := 0; j < ckIngestN; j++ {
			v.vals[string(ckIngKey(j))] = fmt.Sprintf("ing-%d", j)
		}
	}
	return v
}

// ckMatches checks the recovered tree against one expected view; it returns
// a description of the first mismatch, or "".
func ckMatches(tr *lsm.Tree, th *hw.Thread, v ckView) string {
	check := func(k []byte, want string, wantFound bool) string {
		val, _, found, deleted, err := tr.Get(th, k, util.MaxSequence)
		if err != nil {
			return fmt.Sprintf("Get(%s): %v", k, err)
		}
		visible := found && !deleted
		if visible != wantFound {
			return fmt.Sprintf("%s: visible=%v want %v", k, visible, wantFound)
		}
		if wantFound && string(val) != want {
			return fmt.Sprintf("%s: %q want %q", k, val, want)
		}
		return ""
	}
	for j := 0; j < ckNumKeys; j++ {
		k := ckKey(j)
		want, ok := v.vals[string(k)]
		if msg := check(k, want, ok); msg != "" {
			return msg
		}
	}
	for j := 0; j < ckIngestN; j++ {
		k := ckIngKey(j)
		want, ok := v.vals[string(k)]
		if msg := check(k, want, ok); msg != "" {
			return msg
		}
	}
	return ""
}

// ckRunOne executes one (domain, crashAt, fault) schedule of the family and
// returns a violation description, or "".
func ckRunOne(domain cache.Domain, marks []int64, crashAt int64, fault Fault) string {
	m := NewMachine(domain)
	th := m.NewThread(0)
	tr, fsRegion, manifest, err := ckOpen(m, th)
	if err != nil {
		return fmt.Sprintf("initial open: %v", err)
	}
	inj := NewInjector()
	inj.Arm(crashAt, fault, scheduleSeed(97, crashAt, fault))
	m.SetMemGate(inj.Gate)
	for i := 0; i < ckNumSteps && !inj.Frozen(); i++ {
		if err := ckRunStep(tr, th, i, inj.Frozen); err != nil && !inj.Frozen() {
			return fmt.Sprintf("step %s failed before the crash point: %v", ckStepName(i), err)
		}
	}
	if !inj.Frozen() {
		return fmt.Sprintf("crash point %d never reached", crashAt)
	}
	m.Crash()
	m.SetMemGate(nil)
	m.Recover()

	th2 := m.NewThread(0)
	fs2, err := pmemfs.Mount(m, fsRegion, th2)
	if err != nil {
		return fmt.Sprintf("remount after crash: %v", err)
	}
	tr2, err := lsm.Open(m, fs2, manifest, ckTreeOpts(), th2)
	if err != nil {
		return fmt.Sprintf("reopen after crash: %v", err)
	}

	// Structural invariant first: L1+ levels sorted and disjoint.
	for lvl := 1; lvl < ckTreeOpts().MaxLevels; lvl++ {
		files := tr2.Files(lvl)
		for i := 1; i < len(files); i++ {
			if bytes.Compare(files[i-1].Largest.UserKey(), files[i].Smallest.UserKey()) >= 0 {
				return fmt.Sprintf("recovered L%d overlaps: %q..%q vs %q..%q", lvl,
					files[i-1].Smallest.UserKey(), files[i-1].Largest.UserKey(),
					files[i].Smallest.UserKey(), files[i].Largest.UserKey())
			}
		}
	}

	// Events 1..crashAt-1 are durable: steps with marks[i] < crashAt
	// completed; the step containing crashAt is in-flight and may appear
	// fully applied or fully absent — never partially.
	var applied [ckNumSteps]bool
	inflight := -1
	for i := 0; i < ckNumSteps; i++ {
		if marks[i] < crashAt {
			applied[i] = true
		} else {
			inflight = i
			break
		}
	}
	if msg := ckMatches(tr2, th2, ckExpect(applied)); msg == "" {
		return ""
	}
	if inflight >= 0 {
		withStep := applied
		withStep[inflight] = true
		if msg := ckMatches(tr2, th2, ckExpect(withStep)); msg == "" {
			return ""
		}
	}
	// Neither hypothesis matches: re-run the old-state check to report it.
	msg := ckMatches(tr2, th2, ckExpect(applied))
	return fmt.Sprintf("in-flight step %s neither fully applied nor fully absent: %s",
		ckStepName(max(inflight, 0)), msg)
}

// TestCompactIngestCrashDeterminism re-measures the family's event stream:
// identical totals and stream hashes are the precondition for every crash
// point below meaning the same thing twice.
func TestCompactIngestCrashDeterminism(t *testing.T) {
	for _, domain := range bothDomains {
		m1, h1 := ckMarks(t, domain)
		m2, h2 := ckMarks(t, domain)
		if h1 != h2 || m1[ckNumSteps-1] != m2[ckNumSteps-1] {
			t.Errorf("%s: event stream not deterministic: (%d, %#x) vs (%d, %#x)",
				domain, m1[ckNumSteps-1], h1, m2[ckNumSteps-1], h2)
		}
	}
}

// TestCompactIngestCrashSweep is the bounded CI member of the family: a
// stride sample of crash points (always including each step's boundary
// events) under both domains for the none and torn fault modes.
func TestCompactIngestCrashSweep(t *testing.T) {
	target := 80
	if testing.Short() {
		target = 20
	}
	runCompactIngestSweep(t, target)
}

// TestCompactIngestCrashExhaustive enumerates every crash point. Opt in with
//
//	CRASHSWEEP_EXHAUSTIVE=1 go test ./internal/faultinject -run TestCompactIngestCrashExhaustive -timeout 30m
func TestCompactIngestCrashExhaustive(t *testing.T) {
	if os.Getenv("CRASHSWEEP_EXHAUSTIVE") == "" {
		t.Skip("set CRASHSWEEP_EXHAUSTIVE=1 to enumerate every crash point")
	}
	runCompactIngestSweep(t, -1)
}

func runCompactIngestSweep(t *testing.T, target int) {
	t.Helper()
	for _, domain := range bothDomains {
		marks, _ := ckMarks(t, domain)
		total := marks[ckNumSteps-1]
		points := map[int64]bool{1: true, 2: true, total - 1: true, total: true}
		for _, mk := range marks {
			// Step boundaries: the last event of each step and the first of
			// the next are where torn manifest records concentrate.
			for _, k := range []int64{mk - 1, mk, mk + 1} {
				if k >= 1 && k <= total {
					points[k] = true
				}
			}
		}
		if target < 0 {
			for k := int64(1); k <= total; k++ {
				points[k] = true
			}
		} else {
			stride := total / int64(target)
			if stride < 1 {
				stride = 1
			}
			for k := int64(1); k <= total; k += stride {
				points[k] = true
			}
		}
		runs := 0
		for k := range points {
			for _, fault := range []Fault{FaultNone, FaultTorn} {
				if msg := ckRunOne(domain, marks, k, fault); msg != "" {
					t.Errorf("compact/ingest crash %s/%d/%s: %s", domain, k, fault, msg)
				}
				runs++
			}
		}
		t.Logf("%s: %d schedules over %d events", domain, runs, total)
	}
}
