package faultinject

import (
	"testing"

	"cachekv/internal/hw/cache"
)

// TestCrashSweepStall crashes the sharded engine at schedule points spread
// across a scripted overload episode — healthy, Slowdown (token-delayed
// admissions), Stop (rejections, including a cross-shard batch with a stopped
// participant), recovered — and holds every recovery to the stall oracle:
// rejected writes fully absent, acked writes durable (eADR), batches
// all-or-nothing, engine back in the OK state.
func TestCrashSweepStall(t *testing.T) {
	spec := shardedSpec(shardedEngineName, crossShardShards)
	wl := NewStallWorkload(42, 3, crossShardShards)

	for _, domain := range []cache.Domain{cache.EADR, cache.ADR} {
		domain := domain
		t.Run(domain.String(), func(t *testing.T) {
			total, hash, err := CountStallEvents(spec, domain, wl)
			if err != nil {
				t.Fatal(err)
			}
			if total == 0 {
				t.Fatal("workload produced no persistence events")
			}
			total2, hash2, err := CountStallEvents(spec, domain, wl)
			if err != nil {
				t.Fatal(err)
			}
			if total2 != total || hash2 != hash {
				t.Fatalf("event stream not deterministic: %d/%x vs %d/%x",
					total, hash, total2, hash2)
			}

			// A no-crash run must complete and satisfy the oracle end to end.
			if r := RunStallSchedule(spec, domain, wl, total+1, FaultNone); r.Failed() {
				t.Fatalf("complete run: %v", r.Err())
			}

			points := 24
			if testing.Short() {
				points = 8
			}
			step := total / int64(points)
			if step < 1 {
				step = 1
			}
			for crashAt := int64(1); crashAt <= total; crashAt += step {
				r := RunStallSchedule(spec, domain, wl, crashAt, FaultNone)
				if !r.Frozen {
					t.Errorf("crashAt=%d: crash point inside the stream was never reached", crashAt)
				}
				if r.Failed() {
					t.Errorf("%v", r.Err())
				}
			}
		})
	}
}
