package faultinject

import (
	"errors"
	"fmt"
	"sort"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
)

// keyState is the post-recovery state of one key: absent, or present with a
// specific value.
type keyState struct {
	present bool
	value   string
}

func (s keyState) String() string {
	if !s.present {
		return "<absent>"
	}
	return fmt.Sprintf("%q", s.value)
}

// mutation is one put or delete on a single key, tagged with its global op
// index and whether it was acknowledged before the crash point.
type mutation struct {
	index int
	op    Op
	acked bool
}

func apply(s keyState, m mutation) keyState {
	if m.op.Kind == OpDelete {
		return keyState{}
	}
	return keyState{present: true, value: m.op.Value}
}

// admissible computes, for every key in the workload universe, the set of
// post-recovery states the oracle accepts.
//
// inflight is the index of the operation the crash interrupted; operations
// 0..inflight-1 completed their trailing fence before the crash point and
// are *acknowledged*, operation inflight (if it mutates) may be partially
// persisted, and later operations were never issued. inflight ==
// len(wl.Ops) means the crash point fell after the last op's events.
//
// With durable=true (the engine guarantees persistence in this domain) the
// oracle demands exactly the state after all acknowledged mutations, with
// the in-flight mutation optionally applied on top — losing an acked write
// or resurrecting an acked delete is a violation.
//
// With durable=false (e.g. cache-resident engines under ADR, which
// legitimately lose unflushed data) the durability clause is waived but
// *validity* still holds: the recovered state of each key must equal the
// state after some prefix of that key's issued mutations — no fabricated
// values, no out-of-order survival, no resurrection of keys deleted and
// never rewritten.
func admissible(wl *Workload, inflight int, durable bool) map[string][]keyState {
	hist := make(map[string][]mutation)
	limit := inflight
	if limit > len(wl.Ops)-1 {
		limit = len(wl.Ops) - 1
	}
	for i := 0; i <= limit; i++ {
		op := wl.Ops[i]
		if op.Kind == OpGet {
			continue
		}
		hist[op.Key] = append(hist[op.Key], mutation{index: i, op: op, acked: i < inflight})
	}
	out := make(map[string][]keyState)
	for _, key := range wl.Keys() {
		ms := hist[key]
		var states []keyState
		if durable {
			base := keyState{}
			for _, m := range ms {
				if m.acked {
					base = apply(base, m)
				}
			}
			states = append(states, base)
			if len(ms) > 0 && !ms[len(ms)-1].acked {
				states = appendState(states, apply(base, ms[len(ms)-1]))
			}
		} else {
			// Every prefix of the key's issued mutation list.
			cur := keyState{}
			states = append(states, cur)
			for _, m := range ms {
				cur = apply(cur, m)
				states = appendState(states, cur)
			}
		}
		out[key] = states
	}
	return out
}

func appendState(states []keyState, s keyState) []keyState {
	for _, have := range states {
		if have == s {
			return states
		}
	}
	return append(states, s)
}

func stateAdmissible(states []keyState, s keyState) bool {
	for _, have := range states {
		if have == s {
			return true
		}
	}
	return false
}

// checkOracle probes every key in the workload universe via Get, scans the
// full store, and returns a violation message per inconsistency. It also
// returns the recovered view (present keys only) for differential tests.
func checkOracle(db kvstore.DB, th *hw.Thread, wl *Workload, inflight int, durable bool) (violations []string, recovered map[string]string) {
	adm := admissible(wl, inflight, durable)
	got := make(map[string]keyState)
	for _, key := range wl.Keys() {
		v, err := db.Get(th, []byte(key))
		switch {
		case err == nil:
			got[key] = keyState{present: true, value: string(v)}
		case errors.Is(err, kvstore.ErrNotFound):
			got[key] = keyState{}
		default:
			violations = append(violations, fmt.Sprintf("get %q: unexpected error %v", key, err))
			continue
		}
		if !stateAdmissible(adm[key], got[key]) {
			violations = append(violations, fmt.Sprintf(
				"key %q: recovered %v, admissible %v (durable=%v, inflight op %d)",
				key, got[key], adm[key], durable, inflight))
		}
	}

	// Full scan: every returned entry must belong to the universe, appear in
	// ascending key order, and agree with the Get-derived view (an entry
	// visible to Scan but not Get, or vice versa, is an index/filter
	// inconsistency even when both states are individually admissible).
	scanned := make(map[string]string)
	var prev string
	orderOK := true
	_, err := db.Scan(th, nil, 0, func(k, v []byte) bool {
		key := string(k)
		if prev != "" && key <= prev {
			orderOK = false
		}
		prev = key
		scanned[key] = string(v)
		return true
	})
	if err != nil {
		violations = append(violations, fmt.Sprintf("scan: unexpected error %v", err))
	}
	if !orderOK {
		violations = append(violations, "scan: keys not in strictly ascending order")
	}
	inUniverse := make(map[string]bool, len(adm))
	for k := range adm {
		inUniverse[k] = true
	}
	for k, v := range scanned {
		if !inUniverse[k] {
			violations = append(violations, fmt.Sprintf("scan: fabricated key %q = %q", k, v))
			continue
		}
		if g := got[k]; !g.present || g.value != v {
			violations = append(violations, fmt.Sprintf(
				"scan/get disagree on %q: scan %q, get %v", k, v, g))
		}
	}
	for k, g := range got {
		if g.present {
			if _, ok := scanned[k]; !ok {
				violations = append(violations, fmt.Sprintf(
					"key %q visible to get (%v) but missing from scan", k, g))
			}
		}
	}

	recovered = make(map[string]string)
	for k, g := range got {
		if g.present {
			recovered[k] = g.value
		}
	}
	sort.Strings(violations)
	return violations, recovered
}
