package faultinject

// stallsched.go extends the crash-schedule harness with the overload family:
// crashes that land while the engine is in flow-control Slowdown or Stop. The
// workload scripts the stall phases through the engine's forced-state hook
// (DebugForceFlowState) instead of building real backlog pressure — real
// pressure needs multi-megabyte flush traffic whose background persistence
// stream is not deterministic event-by-event, while a forced state changes no
// persistent bytes at all, so the crash-point space stays exact.
//
// The oracle adds the overload clauses to the usual ones: a write the engine
// REJECTED with ErrStalled must be absent after every crash point (rejection
// happens before any append — nothing to replay, nothing to leak), a write
// the engine ACKED after a Slowdown token delay is durable exactly like any
// other acked write (eADR), a cross-shard batch rejected because one
// participant was stopped must be fully absent on all shards, and the
// recovered engine must come back in the OK state with writes admitted.

import (
	"errors"
	"fmt"
	"sort"

	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

// stallShard is the shard the workload throttles; stallDeadline is the
// generous per-write deadline (far above the worst token-pacing delay, so a
// scripted-acked write can never stall), stallTinyDeadline the hopeless one
// rejected writes carry.
const (
	stallShard        = 1
	stallDeadline     = int64(50_000_000) // 50ms virtual
	stallTinyDeadline = int64(1)
)

type stallOpKind int

const (
	stallPut stallOpKind = iota
	stallBatch
	stallForce
)

// stallOp is one scripted step: a deadline write (single or batch) or a
// forced flow-state change on one shard.
type stallOp struct {
	Kind stallOpKind
	Keys []string // one key for stallPut, the batch keys for stallBatch
	// Reject marks writes scripted to fail with ErrStalled (issued with the
	// tiny deadline against a stopped shard); their keys must never surface.
	Reject bool
	Shard  int
	State  core.FlowState
}

// StallWorkload is a deterministic scripted overload episode: healthy writes,
// a Slowdown phase (delayed admission), a Stop phase (rejections, including a
// cross-shard batch with a stopped participant), then recovery to OK.
type StallWorkload struct {
	Seed   uint64
	Shards int
	Ops    []stallOp
}

// StallValue is the canonical value op i writes for key.
func StallValue(i int, key string) string { return fmt.Sprintf("s%04d.%s", i, key) }

// stallKeyOn generates the nonce-th key of series that the router hashes to
// shard want (onto: true) or anywhere else (onto: false).
func stallKeyOn(series string, n, want, shards int, onto bool) string {
	for nonce := 0; ; nonce++ {
		k := fmt.Sprintf("%s-%03d.%d", series, n, nonce)
		if (shardOfKey(k, shards) == want) == onto {
			return k
		}
	}
}

// NewStallWorkload scripts the overload episode. The write volume stays far
// below every seal/flush threshold so no background persistence traffic
// perturbs the event stream.
func NewStallWorkload(seed uint64, perPhase, shards int) *StallWorkload {
	wl := &StallWorkload{Seed: seed, Shards: shards}
	put := func(series string, n int, onStall bool, reject bool) {
		k := stallKeyOn(series, n, stallShard, shards, onStall)
		wl.Ops = append(wl.Ops, stallOp{Kind: stallPut, Keys: []string{k}, Reject: reject})
	}
	force := func(s core.FlowState) {
		wl.Ops = append(wl.Ops, stallOp{Kind: stallForce, Shard: stallShard, State: s})
	}
	batch := func(series string, n int, withStall bool, reject bool) {
		a := stallKeyOn(series+"a", n, stallShard, shards, withStall)
		b := stallKeyOn(series+"b", n, stallShard, shards, false)
		wl.Ops = append(wl.Ops, stallOp{Kind: stallBatch, Keys: []string{a, b}, Reject: reject})
	}

	// Healthy phase: acked singles and a cross-shard batch.
	for i := 0; i < perPhase; i++ {
		put("ok", i, i%2 == 0, false)
	}
	batch("okb", 0, true, false)

	// Slowdown on one shard: writes routed there are token-delayed but acked;
	// writes elsewhere are untouched.
	force(core.FlowSlowdown)
	for i := 0; i < perPhase; i++ {
		put("slow", i, true, false)
		put("side", i, false, false)
	}

	// Stop on that shard: tiny-deadline writes and a cross-shard batch with
	// the stopped participant are rejected; other shards keep admitting.
	force(core.FlowStop)
	for i := 0; i < perPhase; i++ {
		put("rej", i, true, true)
		put("live", i, false, false)
	}
	batch("rejb", 0, true, true)

	// Back to OK: everything admits again, including cross-shard batches
	// through the throttled shard.
	force(core.FlowOK)
	for i := 0; i < perPhase; i++ {
		put("post", i, i%2 == 0, false)
	}
	batch("postb", 0, true, false)
	return wl
}

// writes returns the number of non-force ops (the Schedule.NumOps field).
func (w *StallWorkload) writes() int {
	n := 0
	for _, op := range w.Ops {
		if op.Kind != stallForce {
			n++
		}
	}
	return n
}

// Keys returns the sorted universe of keys the workload can touch plus ghost
// keys that must never become readable.
func (w *StallWorkload) Keys() []string {
	var keys []string
	for _, op := range w.Ops {
		keys = append(keys, op.Keys...)
	}
	keys = append(keys, "zz-ghost-0", "zz-ghost-1")
	sort.Strings(keys)
	return keys
}

// stallDB is the engine surface the overload schedules need: the kvstore API
// plus deadline writes and the forced-state hook (the sharded router).
type stallDB interface {
	kvstore.DB
	PutWithDeadline(th *hw.Thread, key, value []byte, deadlineNs int64) error
	ApplyWithDeadline(th *hw.Thread, b *core.Batch, deadlineNs int64) error
	DebugForceFlowState(at int64, k int, s core.FlowState)
	FlowState() core.FlowState
	FlowStats() core.FlowStats
}

// applyStallOp issues op i. Scripted rejections must come back ErrStalled —
// an admitted "rejected" write (or a rejected "acked" one) is reported as a
// violation by the caller through the returned error.
func applyStallOp(db stallDB, th *hw.Thread, wl *StallWorkload, i int) error {
	op := wl.Ops[i]
	switch op.Kind {
	case stallForce:
		db.DebugForceFlowState(th.Clock.Now(), op.Shard, op.State)
		return nil
	case stallPut:
		deadline := stallDeadline
		if op.Reject {
			deadline = stallTinyDeadline
		}
		err := db.PutWithDeadline(th, []byte(op.Keys[0]), []byte(StallValue(i, op.Keys[0])), deadline)
		if op.Reject {
			if err == nil {
				return fmt.Errorf("op %d: scripted rejection was admitted", i)
			}
			if !errors.Is(err, core.ErrStalled) {
				return fmt.Errorf("op %d: scripted rejection failed with %v, want ErrStalled", i, err)
			}
			return nil
		}
		return err
	default: // stallBatch
		b := &core.Batch{}
		for _, k := range op.Keys {
			b.Put([]byte(k), []byte(StallValue(i, k)))
		}
		deadline := stallDeadline
		if op.Reject {
			deadline = stallTinyDeadline
		}
		err := db.ApplyWithDeadline(th, b, deadline)
		if op.Reject {
			if err == nil {
				return fmt.Errorf("op %d: scripted batch rejection was admitted", i)
			}
			if !errors.Is(err, core.ErrStalled) {
				return fmt.Errorf("op %d: scripted batch rejection failed with %v, want ErrStalled", i, err)
			}
			return nil
		}
		return err
	}
}

// CountStallEvents runs wl with a counting-only injector and returns the
// crash-point-space size plus the stream hash.
func CountStallEvents(spec EngineSpec, domain cache.Domain, wl *StallWorkload) (int64, uint64, error) {
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.Open(m, th)
	if err != nil {
		return 0, 0, fmt.Errorf("open %s: %w", spec.Name, err)
	}
	sdb, ok := db.(stallDB)
	if !ok {
		return 0, 0, fmt.Errorf("%s: engine does not support flow control", spec.Name)
	}
	inj := NewInjector()
	inj.Arm(0, FaultNone, 0)
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	for i := range wl.Ops {
		if err := applyStallOp(sdb, wth, wl, i); err != nil {
			return 0, 0, fmt.Errorf("%s: op %d failed: %w", spec.Name, i, err)
		}
	}
	m.SetMemGate(nil)
	_ = db.Close(th)
	return inj.Events(), inj.StreamHash(), nil
}

// RunStallSchedule executes one overload crash schedule end to end: script
// the stall phases, crash at event crashAt, recover, probe the oracle.
func RunStallSchedule(spec EngineSpec, domain cache.Domain, wl *StallWorkload, crashAt int64, fault Fault) *Result {
	return RunStallScheduleTraced(spec, domain, wl, crashAt, fault, nil)
}

// RunStallScheduleTraced is RunStallSchedule with crash annotations emitted
// into tr (nil-safe).
func RunStallScheduleTraced(spec EngineSpec, domain cache.Domain, wl *StallWorkload, crashAt int64, fault Fault, tr *obs.Trace) *Result {
	res := &Result{
		Schedule: Schedule{
			Engine:       spec.Name,
			Domain:       domain,
			WorkloadSeed: wl.Seed,
			NumOps:       wl.writes(),
			CrashAt:      crashAt,
			Fault:        fault,
		},
		Inflight: len(wl.Ops),
	}
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.open(m, th, tr)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("initial open failed: %v", err))
		return res
	}
	sdb, ok := db.(stallDB)
	if !ok {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: engine does not support flow control", spec.Name))
		_ = db.Close(th)
		return res
	}

	inj := NewInjector()
	inj.Arm(crashAt, fault, scheduleSeed(wl.Seed, crashAt, fault))
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	tr.Emit(wth.Clock.Now(), "crash_armed",
		"engine", spec.Name, "crash_at", crashAt, "fault", fault.String())
	for i := range wl.Ops {
		if err := applyStallOp(sdb, wth, wl, i); err != nil && !inj.Frozen() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("before the crash point: %v", err))
			break
		}
		if inj.Frozen() {
			res.Inflight = i
			break
		}
	}
	res.Frozen = inj.Frozen()
	res.Events = inj.Events()
	if res.Frozen {
		tr.Emit(wth.Clock.Now(), "crash_frozen",
			"inflight_op", res.Inflight, "events", res.Events,
			"flow_state", sdb.FlowState().String())
	}

	if h, ok := db.(haltable); ok {
		h.Halt()
	}
	m.Crash()
	_ = db.Close(th)
	m.SetMemGate(nil)
	m.Recover()
	res.StreamHash = inj.StreamHash()

	th2 := m.NewThread(0)
	tr.Emit(th2.Clock.Now(), "recovery_open", "engine", spec.Name)
	var db2 kvstore.DB
	openErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("recovery panicked: %v", r)
				res.Violations = append(res.Violations, err.Error())
			}
		}()
		db2, err = spec.open(m, th2, tr)
		return err
	}()
	if db2 == nil {
		if openErr != nil && len(res.Violations) == 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("recovery open failed: %v", openErr))
		}
		return res
	}

	// Single-key durability follows the platform contract (spec.DurableADR
	// under ADR, always under eADR); the overload clauses — rejected writes
	// absent, canonical values, batch atomicity, recovered state OK — hold
	// in every domain.
	durable := domain == cache.EADR || spec.DurableADR
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("recovered engine panicked under oracle probes: %v", r))
			}
		}()
		var v []string
		v, res.Recovered = checkStallOracle(db2, th2, wl, res.Inflight, durable)
		res.Violations = append(res.Violations, v...)
		_ = db2.Close(th2)
	}()
	tr.Emit(th2.Clock.Now(), "oracle_done",
		"violations", len(res.Violations), "recovered_keys", len(res.Recovered))
	return res
}

// checkStallOracle probes every scripted key. inflight is the op index the
// crash interrupted (len(Ops) if the workload completed); ops before it are
// acknowledged (or confirmed-rejected), the inflight op is indeterminate,
// later ops never ran.
func checkStallOracle(db kvstore.DB, th *hw.Thread, wl *StallWorkload, inflight int, durable bool) (violations []string, recovered map[string]string) {
	got := make(map[string]keyState)
	probe := func(key string) (keyState, bool) {
		v, err := db.Get(th, []byte(key))
		switch {
		case err == nil:
			s := keyState{present: true, value: string(v)}
			got[key] = s
			return s, true
		case errors.Is(err, kvstore.ErrNotFound):
			got[key] = keyState{}
			return keyState{}, true
		default:
			violations = append(violations, fmt.Sprintf("get %q: unexpected error %v", key, err))
			return keyState{}, false
		}
	}

	for i, op := range wl.Ops {
		if op.Kind == stallForce {
			continue
		}
		issued := i <= inflight
		acked := i < inflight
		present, absent := 0, 0
		for _, key := range op.Keys {
			s, ok := probe(key)
			if !ok {
				continue
			}
			if !s.present {
				absent++
				continue
			}
			present++
			if op.Reject {
				violations = append(violations, fmt.Sprintf(
					"rejected op %d leaked: key %q readable as %q (inflight op %d)",
					i, key, s.value, inflight))
				continue
			}
			if want := StallValue(i, key); s.value != want {
				violations = append(violations, fmt.Sprintf(
					"key %q: recovered %q, canonical value is %q", key, s.value, want))
			}
		}
		if op.Reject {
			continue // absence already demanded per key above
		}
		switch {
		case present > 0 && absent > 0:
			// Only batches can tear; a stallPut has one key.
			violations = append(violations, fmt.Sprintf(
				"batch op %d half-applied: %d of %d keys present (inflight op %d)",
				i, present, len(op.Keys), inflight))
		case present > 0 && !issued:
			violations = append(violations, fmt.Sprintf(
				"op %d never issued but its keys are present (inflight op %d)", i, inflight))
		case absent == len(op.Keys) && durable && acked:
			violations = append(violations, fmt.Sprintf(
				"op %d lost: acknowledged before the crash but absent after recovery (inflight op %d)",
				i, inflight))
		}
	}
	for _, ghost := range []string{"zz-ghost-0", "zz-ghost-1"} {
		if s, ok := probe(ghost); ok && s.present {
			violations = append(violations, fmt.Sprintf("ghost key %q readable: %q", ghost, s.value))
		}
	}

	// The recovered engine must come back admitting writes in the OK state.
	if fdb, ok := db.(stallDB); ok {
		if st := fdb.FlowState(); st != core.FlowOK {
			violations = append(violations, fmt.Sprintf(
				"recovered engine stuck in flow state %v", st))
		}
		if err := fdb.PutWithDeadline(th, []byte("zz-probe-post"), []byte("p"), stallDeadline); err != nil {
			violations = append(violations, fmt.Sprintf(
				"recovered engine rejected a healthy write: %v", err))
		}
	}

	// Full scan: universe membership and Get agreement.
	inUniverse := map[string]bool{"zz-probe-post": true}
	for _, k := range wl.Keys() {
		inUniverse[k] = true
	}
	scanned := make(map[string]string)
	var prev string
	orderOK := true
	_, err := db.Scan(th, nil, 0, func(k, v []byte) bool {
		key := string(k)
		if prev != "" && key <= prev {
			orderOK = false
		}
		prev = key
		scanned[key] = string(v)
		return true
	})
	if err != nil {
		violations = append(violations, fmt.Sprintf("scan: unexpected error %v", err))
	}
	if !orderOK {
		violations = append(violations, "scan: keys not in strictly ascending order")
	}
	for k, v := range scanned {
		if !inUniverse[k] {
			violations = append(violations, fmt.Sprintf("scan: fabricated key %q = %q", k, v))
			continue
		}
		if k == "zz-probe-post" {
			continue
		}
		if g := got[k]; !g.present || g.value != v {
			violations = append(violations, fmt.Sprintf(
				"scan/get disagree on %q: scan %q, get %v", k, v, g))
		}
	}
	for k, g := range got {
		if g.present {
			if _, ok := scanned[k]; !ok {
				violations = append(violations, fmt.Sprintf(
					"key %q visible to get (%v) but missing from scan", k, g))
			}
		}
	}

	recovered = make(map[string]string)
	for k, g := range got {
		if g.present {
			recovered[k] = g.value
		}
	}
	sort.Strings(violations)
	return violations, recovered
}
