package faultinject

import (
	"runtime"
	"testing"

	"cachekv/internal/hw/cache"
)

// TestCrossShardWorkloadShape pins the generator's contract: every put batch
// spans at least two shards (so every mutation takes the two-phase path),
// keys are unique per put batch, and regeneration is deterministic.
func TestCrossShardWorkloadShape(t *testing.T) {
	wl := NewBatchWorkload(3, 80, crossShardShards)
	seen := make(map[string]int)
	puts, dels := 0, 0
	for i, b := range wl.Batches {
		if b.Delete {
			dels++
			if tb := wl.Batches[b.Target]; tb.Delete || b.Target >= i {
				t.Fatalf("batch %d deletes an invalid target %d", i, b.Target)
			}
			continue
		}
		puts++
		shards := make(map[int]bool)
		for _, k := range b.Keys {
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %q appears in put batches %d and %d", k, prev, i)
			}
			seen[k] = i
			shards[shardOfKey(k, crossShardShards)] = true
		}
		if len(shards) < 2 {
			t.Fatalf("put batch %d spans only %d shard(s)", i, len(shards))
		}
	}
	if puts == 0 || dels == 0 {
		t.Fatalf("degenerate workload: %d puts, %d deletes", puts, dels)
	}
	wl2 := NewBatchWorkload(3, 80, crossShardShards)
	for i := range wl.Batches {
		a, b := wl.Batches[i], wl2.Batches[i]
		if a.Delete != b.Delete || a.Target != b.Target || len(a.Keys) != len(b.Keys) {
			t.Fatalf("batch %d not reproducible", i)
		}
	}
}

// TestCrossShardEventDeterminism re-counts the batch workload twice per
// domain: totals and stream hashes must match exactly — the precondition for
// every cross-shard reproduction claim.
func TestCrossShardEventDeterminism(t *testing.T) {
	spec, ok := FindEngine(shardedEngineName)
	if !ok {
		t.Fatal("sharded engine spec not registered")
	}
	wl := NewBatchWorkload(1, 60, crossShardShards)
	for _, domain := range bothDomains {
		n1, h1, err := CountBatchEvents(spec, domain, wl)
		if err != nil {
			t.Fatal(err)
		}
		n2, h2, err := CountBatchEvents(spec, domain, wl)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 || h1 != h2 {
			t.Errorf("%s: event stream not deterministic: (%d, %#x) vs (%d, %#x)",
				domain, n1, h1, n2, h2)
		}
		if n1 == 0 {
			t.Errorf("%s: workload generated no persistence events", domain)
		}
	}
}

// TestCrashSweepCrossShard is the CI cross-shard sweep (the -run TestCrashSweep
// step picks it up): a seeded sample of crash points under both persistence
// domains with all three fault modes, checked by the all-or-nothing oracle —
// no half-applied two-phase group may survive recovery.
func TestCrashSweepCrossShard(t *testing.T) {
	per := 10
	if testing.Short() {
		per = 4
	}
	stats, err := SweepCrossShard(CrossShardSweepConfig{
		Domains:            bothDomains,
		NumBatches:         60,
		WorkloadSeed:       1,
		SchedulesPerConfig: per,
		ScheduleSeed:       7,
		Faults:             []Fault{FaultNone, FaultTorn, FaultFlip},
		Parallel:           runtime.GOMAXPROCS(0),
		Log:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cross-shard sweep: %d schedules", stats.Runs)
	for _, r := range stats.Failures {
		t.Errorf("reproduce with: RunBatchSchedule({%s}): %v", r.Schedule, r.Err())
	}
}

// TestCrashSweepCrossShardEdges pins the boundary crash points — the first
// two events (inside the very first prepare record) and the last two (the
// final batch's apply tail) — where off-by-one bugs in commit-point
// accounting would concentrate.
func TestCrashSweepCrossShardEdges(t *testing.T) {
	spec, _ := FindEngine(shardedEngineName)
	wl := NewBatchWorkload(1, 40, crossShardShards)
	for _, domain := range bothDomains {
		total, _, err := CountBatchEvents(spec, domain, wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int64{1, 2, total - 1, total} {
			r := RunBatchSchedule(spec, domain, wl, k, FaultNone)
			if err := r.Err(); err != nil {
				t.Errorf("edge crash point: %v", err)
			}
		}
	}
}

// TestCrashSweepShardedSingleKey runs the classic single-key workload sweep
// against the sharded router, covering the group-commit write path (WAL
// append + fence per coalesced group) under crash schedules with the standard
// oracle: durable under eADR, validity-only under ADR.
func TestCrashSweepShardedSingleKey(t *testing.T) {
	per := 8
	if testing.Short() {
		per = 3
	}
	spec, _ := FindEngine(shardedEngineName)
	stats, err := Sweep(SweepConfig{
		Engines:            []EngineSpec{spec},
		Domains:            bothDomains,
		NumOps:             200,
		WorkloadSeed:       1,
		SchedulesPerConfig: per,
		ScheduleSeed:       9,
		Faults:             []Fault{FaultNone, FaultTorn},
		Parallel:           runtime.GOMAXPROCS(0),
		Log:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded single-key sweep: %d schedules", stats.Runs)
	for _, r := range stats.Failures {
		t.Errorf("reproduce with: RunSchedule({%s}): %v", r.Schedule, r.Err())
	}
}

// TestCrossShardReplayDeterminism reruns fixed cross-shard schedules and
// demands bit-identical results.
func TestCrossShardReplayDeterminism(t *testing.T) {
	spec, _ := FindEngine(shardedEngineName)
	wl := NewBatchWorkload(1, 40, crossShardShards)
	cases := []struct {
		domain  cache.Domain
		crashAt int64
		fault   Fault
	}{
		{cache.EADR, 33, FaultNone},
		{cache.ADR, 57, FaultTorn},
		{cache.EADR, 71, FaultFlip},
	}
	for _, c := range cases {
		a := RunBatchSchedule(spec, c.domain, wl, c.crashAt, c.fault)
		b := RunBatchSchedule(spec, c.domain, wl, c.crashAt, c.fault)
		if a.StreamHash != b.StreamHash || a.Inflight != b.Inflight || a.Events != b.Events {
			t.Errorf("{%s}: replay diverged: hash %#x/%#x inflight %d/%d events %d/%d",
				a.Schedule, a.StreamHash, b.StreamHash, a.Inflight, b.Inflight, a.Events, b.Events)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Errorf("{%s}: replay verdicts differ: %v vs %v", a.Schedule, a.Violations, b.Violations)
		}
	}
}
