package faultinject

import (
	"sort"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/util"
	"cachekv/internal/wal"
)

// shimDB is a deliberately minimal engine — a WAL over PMem plus a DRAM map —
// built to prove the oracle's teeth. The skipFlush variant acknowledges every
// write after plain cached stores (wal.ModeCached: no clwb, no fence) while
// still *claiming* ADR durability; a correct build uses wal.ModeFlush. The
// harness must catch the lie and pass the honest build.
type shimDB struct {
	m   *hw.Machine
	w   *wal.Writer
	mem map[string]string
}

const (
	shimPut byte = 1
	shimDel byte = 2
)

func shimEncode(kind byte, key, value []byte) []byte {
	rec := []byte{kind}
	rec = util.PutFixed32(rec, uint32(len(key)))
	rec = append(rec, key...)
	return append(rec, value...)
}

func openShim(m *hw.Machine, th *hw.Thread, mode wal.Mode) (kvstore.DB, error) {
	region, ok := m.LookupRegion("shim-wal")
	if !ok {
		region = m.Alloc("shim-wal", 4<<20, 256)
	}
	db := &shimDB{m: m, mem: make(map[string]string)}
	r := wal.NewReader(m, region)
	err := r.ReplayAll(th, func(rec []byte) error {
		if len(rec) < 5 {
			return util.ErrCorrupt
		}
		klen := int(util.Fixed32(rec[1:]))
		if 5+klen > len(rec) {
			return util.ErrCorrupt
		}
		key := string(rec[5 : 5+klen])
		if rec[0] == shimDel {
			delete(db.mem, key)
		} else {
			db.mem[key] = string(rec[5+klen:])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	db.w = wal.NewWriterMode(m, region, th, mode)
	return db, nil
}

func (s *shimDB) Put(th *hw.Thread, key, value []byte) error {
	if _, err := s.w.Append(th, shimEncode(shimPut, key, value)); err != nil {
		return err
	}
	s.mem[string(key)] = string(value)
	return nil
}

func (s *shimDB) Delete(th *hw.Thread, key []byte) error {
	if _, err := s.w.Append(th, shimEncode(shimDel, key, nil)); err != nil {
		return err
	}
	delete(s.mem, string(key))
	return nil
}

func (s *shimDB) Get(th *hw.Thread, key []byte) ([]byte, error) {
	v, ok := s.mem[string(key)]
	if !ok {
		return nil, kvstore.ErrNotFound
	}
	return []byte(v), nil
}

func (s *shimDB) Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		if k >= string(start) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	n := 0
	for _, k := range keys {
		if limit > 0 && n >= limit {
			break
		}
		n++
		if !fn([]byte(k), []byte(s.mem[k])) {
			break
		}
	}
	return n, nil
}

func (s *shimDB) FlushAll(th *hw.Thread) error { return nil }
func (s *shimDB) Close(th *hw.Thread) error    { return nil }
func (s *shimDB) Name() string                 { return "shim" }

func shimSpec(skipFlush bool) EngineSpec {
	mode := wal.ModeFlush
	name := "shim-flush"
	if skipFlush {
		mode = wal.ModeCached
		name = "shim-noflush"
	}
	return EngineSpec{
		Name:       name,
		DurableADR: true, // the honest build earns this; the buggy build lies
		Open: func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
			return openShim(m, th, mode)
		},
	}
}

// TestMissingFenceBugCaught plants a missing-fence bug (acks on cached
// stores, no flush) in an engine that contracts ADR durability and demands
// the sweep catch it: at least one crash schedule must lose an acknowledged
// write. The failing schedule must then reproduce from its tuple alone, and
// the identical engine with the flush restored must pass every crash point.
func TestMissingFenceBugCaught(t *testing.T) {
	wl := NewWorkload(3, 120)

	buggy := shimSpec(true)
	total, _, err := CountEvents(buggy, cache.ADR, wl)
	if err != nil {
		t.Fatal(err)
	}
	var caught []*Result
	for k := int64(1); k <= total; k++ {
		if r := RunSchedule(buggy, cache.ADR, wl, k, FaultNone); r.Failed() {
			caught = append(caught, r)
		}
	}
	if len(caught) == 0 {
		t.Fatalf("oracle missed the missing-fence bug across all %d crash points", total)
	}
	t.Logf("missing fence caught at %d/%d crash points; first: {%s}: %s",
		len(caught), total, caught[0].Schedule, caught[0].Violations[0])

	// Reproduce the first catch from nothing but its schedule tuple.
	s := caught[0].Schedule
	replay := RunSchedule(buggy, s.Domain, NewWorkload(s.WorkloadSeed, s.NumOps), s.CrashAt, s.Fault)
	if !replay.Failed() {
		t.Fatalf("failing schedule {%s} did not reproduce from its tuple", s)
	}
	if replay.StreamHash != caught[0].StreamHash {
		t.Fatalf("replayed schedule {%s} produced a different event stream", s)
	}

	// Control: restore the flush and the same sweep must be clean.
	good := shimSpec(false)
	goodTotal, _, err := CountEvents(good, cache.ADR, wl)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= goodTotal; k++ {
		if r := RunSchedule(good, cache.ADR, wl, k, FaultNone); r.Failed() {
			t.Fatalf("correct flush discipline flagged: %v", r.Err())
		}
	}
}
