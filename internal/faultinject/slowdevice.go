package faultinject

import "cachekv/internal/hw/sim"

// SlowDevice is the sustained-overload fault mode: a degraded PMem device
// (worn media, thermal throttling) plus an overloaded flush path. Applied to
// a cost model it slows every media-facing operation by PMemLatencyMult and
// adds FlushPauseNs to each background flush job, so the flush/compaction
// pipeline falls behind foreground writes and the engine's flow control (or
// its absence) decides what happens to the tail.
type SlowDevice struct {
	// PMemLatencyMult scales every PMem media and persistence-instruction
	// cost (reads, XPBuffer traffic, evictions, clflush/ntstore). 1 or less
	// leaves the device untouched.
	PMemLatencyMult int
	// FlushPauseNs is added to the fixed dispatch cost of every background
	// flush job, modelling a flush thread that keeps losing its CPU (cgroup
	// throttling, noisy neighbor). 0 adds nothing.
	FlushPauseNs int64
}

// Apply returns a scaled copy of base; base itself is never mutated, so one
// calibrated model can seed both the healthy and the degraded machine of a
// comparison run.
func (s SlowDevice) Apply(base *sim.CostModel) *sim.CostModel {
	c := *base
	if m := int64(s.PMemLatencyMult); m > 1 {
		c.PMemReadSeq *= m
		c.PMemReadRand *= m
		c.XPBufferHit *= m
		c.XPBufferMiss *= m
		c.RMWPenalty *= m
		c.MediaWrite *= m
		c.CLFlush *= m
		c.NTStore *= m
		c.FlushBytePerKB *= m
	}
	if s.FlushPauseNs > 0 {
		c.FlushFixed += s.FlushPauseNs
	}
	return &c
}
