// Package faultinject is the crash-schedule exploration harness: it numbers
// every persistence-plane operation an engine issues (Write / NTWrite /
// Flush / FlushOpt / Invalidate, each with its implied fence), freezes the
// simulated platform at a chosen event, applies the persistence-domain rule
// (eADR drains dirty cache lines, ADR drops them), optionally injects media
// faults — torn 256 B XPLine writes at the crash frontier, or a CRC-breaking
// bit flip into previously persisted bytes — runs the engine's recovery, and
// checks a durability oracle over the recovered store.
//
// Everything is deterministic: a schedule is fully identified by
// (engine, domain, workload seed, op count, crash-point index, fault mode),
// and re-running it reproduces the same event stream, the same durable
// state, and the same verdict. Exhaustive sweeps enumerate every crash
// point of a workload; bounded sweeps sample them from a seeded RNG.
package faultinject

import (
	"sync"

	"cachekv/internal/hw/sim"
)

// Fault selects the media-fault mode applied at the crash point.
type Fault int

const (
	// FaultNone suppresses the crash-point operation entirely: the crash
	// happened just before the operation took effect. Events 1..k-1 are
	// durable (subject to the persistence domain), event k and later never
	// reached the platform.
	FaultNone Fault = iota
	// FaultTorn applies only a prefix of the crash-point operation, cut at a
	// 256 B XPLine boundary chosen by the schedule's RNG — a torn media
	// write at the crash frontier. If the operation spans no XPLine boundary
	// it degenerates to FaultNone.
	FaultTorn
	// FaultFlip suppresses the crash-point operation and, after the domain
	// rule runs, flips one bit inside the byte range of the last operation
	// that did take effect — modelling media corruption discovered at
	// recovery time. CRC checks must detect it; recovery must not fabricate
	// data or panic, though it may legitimately lose the corrupted suffix.
	FaultFlip
)

var faultNames = [...]string{"none", "torn", "flip"}

// String returns the fault mode's short name.
func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "fault?"
}

// opRec describes one persistence-plane operation.
type opRec struct {
	op   sim.MemOp
	addr uint64
	n    int
}

// Injector is the sim.MemGate implementation behind the harness. Armed with
// a crash point k, it counts mutating operations; when the counter reaches k
// the platform freezes — the crash-point operation is suppressed (or torn),
// and every later mutating operation is suppressed while reads are served
// from the visible content without installing cache lines. The engine's
// software keeps running (a "zombie" window) until the workload runner
// notices the freeze and halts it; nothing the zombie does can reach
// durable state.
type Injector struct {
	mu      sync.Mutex
	armed   bool
	crashAt int64
	fault   Fault
	rng     *sim.RNG

	events   int64
	frozen   bool
	hash     uint64
	last     opRec // most recent fully applied mutating op
	frontier opRec // the op suppressed or torn at the crash point
	tornLen  int   // bytes of frontier that were applied (FaultTorn)

	flipOK   bool
	flipAddr uint64
	flipBit  uint
}

// NewInjector returns a disarmed injector; its Gate passes everything
// through (while still counting, so event totals can be measured without
// crashing).
func NewInjector() *Injector { return &Injector{} }

// Arm configures the injector to freeze the platform at event crashAt
// (1-based) with the given fault mode. seed drives the fault mode's random
// choices (torn cut position, flipped bit), making the schedule reproducible.
// crashAt <= 0 arms counting only: events are numbered but never suppressed.
func (inj *Injector) Arm(crashAt int64, fault Fault, seed uint64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.armed = true
	inj.crashAt = crashAt
	inj.fault = fault
	inj.rng = sim.NewRNG(seed)
	inj.events = 0
	inj.frozen = false
	inj.hash = fnvOffset
	inj.last = opRec{}
	inj.frontier = opRec{}
	inj.tornLen = 0
	inj.flipOK = false
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvMix(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// Gate is the sim.MemGate the harness installs via Machine.SetMemGate.
func (inj *Injector) Gate(op sim.MemOp, addr uint64, n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if op == sim.MemOpRead {
		if inj.frozen {
			return 0 // serve without installing lines
		}
		return n
	}
	if !inj.armed || n <= 0 {
		return n
	}
	if inj.frozen {
		return 0
	}
	inj.events++
	inj.hash = fnvMix(inj.hash, uint64(op), addr, uint64(n))
	if inj.crashAt > 0 && inj.events == inj.crashAt {
		inj.frozen = true
		inj.frontier = opRec{op: op, addr: addr, n: n}
		switch inj.fault {
		case FaultTorn:
			inj.tornLen = tornPrefix(addr, n, inj.rng)
			return inj.tornLen
		case FaultFlip:
			if inj.last.n > 0 {
				off := inj.rng.Uint64n(uint64(inj.last.n))
				inj.flipAddr = inj.last.addr + off
				inj.flipBit = uint(inj.rng.Intn(8))
				inj.flipOK = true
			}
			return 0
		default:
			return 0
		}
	}
	inj.last = opRec{op: op, addr: addr, n: n}
	return n
}

// tornPrefix picks the torn cut: the largest applied prefix ends at an
// XPLine (256 B) boundary strictly inside [addr, addr+n). When the range
// spans no interior boundary nothing is applied.
func tornPrefix(addr uint64, n int, rng *sim.RNG) int {
	const xp = 256
	first := (addr + xp) &^ (xp - 1) // first boundary strictly above addr
	end := addr + uint64(n)
	if first >= end {
		return 0
	}
	k := (end - first + xp - 1) / xp // boundaries in [first, end)
	return int(first + xp*rng.Uint64n(k) - addr)
}

// Events returns how many mutating operations have been numbered so far.
func (inj *Injector) Events() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.events
}

// Frozen reports whether the crash point has been reached.
func (inj *Injector) Frozen() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.frozen
}

// StreamHash returns the FNV-1a hash of the applied operation stream
// (kind, address, length per event) — a determinism fingerprint: identical
// schedules produce identical hashes.
func (inj *Injector) StreamHash() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hash
}

// FlipTarget returns the media address and bit the FaultFlip mode selected,
// if any. The harness applies the flip after the domain rule has run.
func (inj *Injector) FlipTarget() (addr uint64, bit uint, ok bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.flipAddr, inj.flipBit, inj.flipOK
}

// TornLen reports how many bytes of the crash-point operation were applied
// under FaultTorn (0 in every other mode).
func (inj *Injector) TornLen() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.tornLen
}
