package faultinject

import (
	"fmt"
	"sync"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

// Schedule identifies one crash run completely; re-running a schedule
// reproduces the same event stream and the same verdict. This tuple is what
// failure reports print.
type Schedule struct {
	Engine       string
	Domain       cache.Domain
	WorkloadSeed uint64
	NumOps       int
	CrashAt      int64 // 1-based index of the suppressed/torn event
	Fault        Fault
}

// String renders the reproduction line for a schedule.
func (s Schedule) String() string {
	return fmt.Sprintf("engine=%s domain=%s seed=%d ops=%d crashAt=%d fault=%s",
		s.Engine, s.Domain, s.WorkloadSeed, s.NumOps, s.CrashAt, s.Fault)
}

// Result is the outcome of one schedule run.
type Result struct {
	Schedule   Schedule
	Frozen     bool  // crash point was reached during the workload
	Events     int64 // events numbered before the run ended
	Inflight   int   // index of the op the crash interrupted (NumOps if none)
	StreamHash uint64
	// RecoveryRefused is set when reopening after a FaultFlip corruption
	// failed with a clean error — an acceptable outcome for that mode.
	RecoveryRefused error
	Violations      []string
	Recovered       map[string]string // post-recovery present keys
	// FilterProbes/FilterNegatives capture the recovered engine's negative-
	// filter counters after the oracle's probes, when the engine exposes
	// them (CacheKV family). The oracle's Gets all go through the rebuilt
	// filters, so a zero probe count would mean the filters were not
	// exercised.
	FilterProbes    int64
	FilterNegatives int64
}

// Failed reports whether the run violated the oracle.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Err summarizes a failed result for test output.
func (r *Result) Err() error {
	if !r.Failed() {
		return nil
	}
	return fmt.Errorf("schedule {%s} violated the oracle (%d violations; first: %s)",
		r.Schedule, len(r.Violations), r.Violations[0])
}

// scheduleSeed derives the RNG seed for a schedule's fault-mode choices from
// the reproduction tuple, so torn cuts and bit flips replay exactly.
func scheduleSeed(workloadSeed uint64, crashAt int64, fault Fault) uint64 {
	return fnvMix(fnvOffset, workloadSeed, uint64(crashAt), uint64(fault))
}

type haltable interface{ Halt() }

func applyOp(db kvstore.DB, th *hw.Thread, op Op) error {
	switch op.Kind {
	case OpPut:
		return db.Put(th, []byte(op.Key), []byte(op.Value))
	case OpDelete:
		return db.Delete(th, []byte(op.Key))
	default:
		_, err := db.Get(th, []byte(op.Key))
		if err == kvstore.ErrNotFound {
			err = nil
		}
		return err
	}
}

// CountEvents runs wl against a fresh engine with a counting-only injector
// and returns the total number of crash-point events the workload generates
// plus the stream hash. Sweeps use it to size the crash-point space; the
// determinism tests compare hashes across runs.
func CountEvents(spec EngineSpec, domain cache.Domain, wl *Workload) (int64, uint64, error) {
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.Open(m, th)
	if err != nil {
		return 0, 0, fmt.Errorf("open %s: %w", spec.Name, err)
	}
	inj := NewInjector()
	inj.Arm(0, FaultNone, 0)
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	for _, op := range wl.Ops {
		if err := applyOp(db, wth, op); err != nil {
			return 0, 0, fmt.Errorf("%s: workload op failed: %w", spec.Name, err)
		}
	}
	m.SetMemGate(nil)
	_ = db.Close(th)
	return inj.Events(), inj.StreamHash(), nil
}

// RunSchedule executes one crash schedule end to end: open a fresh engine,
// arm the injector, run the workload until the crash point freezes the
// platform, halt the engine, apply the persistence-domain rule and any media
// fault, recover, and check the oracle.
func RunSchedule(spec EngineSpec, domain cache.Domain, wl *Workload, crashAt int64, fault Fault) *Result {
	return RunScheduleTraced(spec, domain, wl, crashAt, fault, nil)
}

// RunScheduleTraced is RunSchedule with crash-point annotations emitted into
// tr (nil-safe), so a replayed schedule's event trace shows exactly where the
// injected crash and media fault landed relative to engine lifecycle events.
func RunScheduleTraced(spec EngineSpec, domain cache.Domain, wl *Workload, crashAt int64, fault Fault, tr *obs.Trace) *Result {
	res := &Result{
		Schedule: Schedule{
			Engine:       spec.Name,
			Domain:       domain,
			WorkloadSeed: wl.Seed,
			NumOps:       len(wl.Ops),
			CrashAt:      crashAt,
			Fault:        fault,
		},
		Inflight: len(wl.Ops),
	}
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.open(m, th, tr)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("initial open failed: %v", err))
		return res
	}

	inj := NewInjector()
	inj.Arm(crashAt, fault, scheduleSeed(wl.Seed, crashAt, fault))
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	tr.Emit(wth.Clock.Now(), "crash_armed",
		"engine", spec.Name, "crash_at", crashAt, "fault", fault.String())
	for i, op := range wl.Ops {
		if err := applyOp(db, wth, op); err != nil && !inj.Frozen() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("workload op %d failed before the crash point: %v", i, err))
			break
		}
		if inj.Frozen() {
			// The crash interrupted op i: some of its events may have taken
			// effect, its acknowledgement never completed.
			res.Inflight = i
			break
		}
	}
	res.Frozen = inj.Frozen()
	res.Events = inj.Events()
	if res.Frozen {
		tr.Emit(wth.Clock.Now(), "crash_frozen",
			"inflight_op", res.Inflight, "events", res.Events)
	}

	// Power failure: preempt the engine, apply the domain rule while
	// partitions are still pinned (the eADR drain must see them), then tear
	// the dead engine down. The media corruption is injected only after
	// Close has joined the engine's background goroutines — they may still
	// be mid-read until then, and the flip must be the last thing to touch
	// the media before recovery regardless.
	if h, ok := db.(haltable); ok {
		h.Halt()
	}
	m.Crash()
	_ = db.Close(th)
	m.SetMemGate(nil)
	if fault == FaultFlip {
		if addr, bit, ok := inj.FlipTarget(); ok {
			var b [1]byte
			m.PMem.LoadRaw(addr, b[:])
			b[0] ^= 1 << bit
			m.PMem.StoreRaw(addr, b[:])
			tr.Emit(th.Clock.Now(), "media_fault", "addr", addr, "bit", bit)
		}
	}
	m.Recover()
	res.StreamHash = inj.StreamHash()

	// Recovery. A panic is always a violation. A clean open error is
	// acceptable only for FaultFlip (corruption may damage metadata the
	// engine refuses to mount) — refusing service is honest, fabricating
	// data is not.
	th2 := m.NewThread(0)
	tr.Emit(th2.Clock.Now(), "recovery_open", "engine", spec.Name)
	var db2 kvstore.DB
	openErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("recovery panicked: %v", r)
				res.Violations = append(res.Violations, err.Error())
			}
		}()
		db2, err = spec.open(m, th2, tr)
		return err
	}()
	if db2 == nil {
		if fault == FaultFlip && len(res.Violations) == 0 {
			res.RecoveryRefused = openErr
			tr.Emit(th2.Clock.Now(), "recovery_refused", "err", openErr.Error())
			return res
		}
		if openErr != nil && len(res.Violations) == 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("recovery open failed: %v", openErr))
		}
		return res
	}

	// Oracle. Durability is demanded when the domain or the engine contract
	// guarantees it; a bit flip voids durability (corruption may eat a
	// legitimately persisted suffix) but never validity.
	durable := domain == cache.EADR || spec.DurableADR
	if fault == FaultFlip {
		durable = false
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("recovered engine panicked under oracle probes: %v", r))
			}
		}()
		res.Violations, res.Recovered = checkOracle(db2, th2, wl, res.Inflight, durable)
		if fs, ok := db2.(interface {
			FilterStats() (probes, negatives int64)
		}); ok {
			res.FilterProbes, res.FilterNegatives = fs.FilterStats()
		}
		_ = db2.Close(th2)
	}()
	tr.Emit(th2.Clock.Now(), "oracle_done",
		"violations", len(res.Violations), "recovered_keys", len(res.Recovered))
	return res
}

// SweepConfig parameterizes a sweep over the crash-point space.
type SweepConfig struct {
	Engines      []EngineSpec
	Domains      []cache.Domain
	NumOps       int
	WorkloadSeed uint64
	// SchedulesPerConfig bounds the crash points tried per (engine, domain,
	// fault) combination; 0 explores every crash point exhaustively.
	SchedulesPerConfig int
	// ScheduleSeed drives the bounded sweep's crash-point sampling.
	ScheduleSeed uint64
	Faults       []Fault
	// Parallel runs up to this many schedules concurrently (each on its own
	// platform instance); <= 1 runs sequentially. Results are independent of
	// the setting.
	Parallel int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// SweepStats aggregates a sweep.
type SweepStats struct {
	Runs        int
	Failures    []*Result
	EventTotals map[string]int64 // "engine/domain" -> workload event count
}

// Sweep enumerates or samples crash schedules per the config and runs each
// one. Every failure carries its reproduction tuple.
func Sweep(cfg SweepConfig) (*SweepStats, error) {
	if len(cfg.Faults) == 0 {
		cfg.Faults = []Fault{FaultNone}
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stats := &SweepStats{EventTotals: make(map[string]int64)}
	wl := NewWorkload(cfg.WorkloadSeed, cfg.NumOps)

	type job struct {
		spec    EngineSpec
		domain  cache.Domain
		crashAt int64
		fault   Fault
	}
	var jobs []job
	for _, spec := range cfg.Engines {
		for _, domain := range cfg.Domains {
			total, _, err := CountEvents(spec, domain, wl)
			if err != nil {
				return nil, err
			}
			stats.EventTotals[spec.Name+"/"+domain.String()] = total
			for _, fault := range cfg.Faults {
				if cfg.SchedulesPerConfig <= 0 {
					for k := int64(1); k <= total; k++ {
						jobs = append(jobs, job{spec, domain, k, fault})
					}
					continue
				}
				rng := newSampleRNG(cfg.ScheduleSeed, spec.Name, domain, fault)
				for s := 0; s < cfg.SchedulesPerConfig; s++ {
					k := 1 + int64(rng.Uint64n(uint64(total)))
					jobs = append(jobs, job{spec, domain, k, fault})
				}
			}
			logf("faultinject: %s/%s: %d events", spec.Name, domain, total)
		}
	}

	results := make([]*Result, len(jobs))
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				results[i] = RunSchedule(j.spec, j.domain, wl, j.crashAt, j.fault)
			}
		}()
	}
	wg.Wait()

	for _, r := range results {
		stats.Runs++
		if r.Failed() {
			stats.Failures = append(stats.Failures, r)
			logf("faultinject: FAIL {%s}: %s", r.Schedule, r.Violations[0])
		}
	}
	return stats, nil
}

// newSampleRNG seeds the bounded sweep's crash-point sampler so each
// (engine, domain, fault) combination draws an independent but reproducible
// sequence.
func newSampleRNG(seed uint64, engine string, domain cache.Domain, fault Fault) *rngAdapter {
	h := uint64(fnvOffset)
	for _, c := range []byte(engine) {
		h = fnvMix(h, uint64(c))
	}
	h = fnvMix(h, seed, uint64(domain), uint64(fault))
	return &rngAdapter{state: h}
}

// rngAdapter is a SplitMix64 stream over a derived seed (sim.NewRNG remaps
// seed 0; this keeps the derivation transparent).
type rngAdapter struct{ state uint64 }

func (r *rngAdapter) Uint64n(n uint64) uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z % n
}
