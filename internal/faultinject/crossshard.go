package faultinject

// crossshard.go extends the crash-schedule harness to the sharded router's
// cross-shard atomic batches (DESIGN.md §8.3). The workload is a sequence of
// batches, each spanning at least two shards, so every mutation flows through
// the two-phase commit protocol: prepare records on every participant shard,
// one fence, a commit marker, a second fence (the commit point), then the
// portions drain through the per-shard group-commit writers.
//
// The oracle is all-or-nothing: after a crash at any event and recovery,
// every batch is either fully visible on all of its shards or fully invisible
// — a half-applied two-phase group is a violation. Because the two-phase logs
// are written with non-temporal stores, a batch whose commit marker landed is
// replayable from PMem even under ADR, where the shards' cache-resident
// sub-MemTables are lost; acked batches are therefore held durable in BOTH
// persistence domains (the bit-flip fault mode alone voids durability and
// atomicity, since corruption may eat one shard's prepare record while its
// peers replay).

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
	"cachekv/internal/util"
)

// shardedEngineName is the FindEngine/report name of the harness's sharded
// router; crossShardShards is its shard count (the harness platform has 4
// cores, one writer per shard).
const (
	shardedEngineName = "cachekv-sharded"
	crossShardShards  = 4
)

// batchKeysPerBatch is the span of one atomic batch. Three unique keys force
// ≥2 participant shards (the generator re-rolls the last key if the hash
// lands all three on one shard).
const batchKeysPerBatch = 3

// BatchOp is one scripted cross-shard batch: a put batch writes its Keys
// atomically, a delete batch tombstones the keys of the put batch Target.
type BatchOp struct {
	Keys   []string
	Delete bool
	Target int // put batch whose keys a delete batch removes (== own index for puts)
}

// BatchWorkload is a deterministic scripted batch sequence, fully derived
// from its seed, length, and shard count.
type BatchWorkload struct {
	Seed    uint64
	Shards  int
	Batches []BatchOp
}

// NewBatchWorkload generates n batches (≈80% put, 20% delete-of-an-earlier-
// put) from seed. Keys are unique per put batch, so the all-or-nothing check
// is exact: a key is admissible only in its own batch's canonical state.
// Total written bytes stay far below every seal/rotation threshold, keeping
// the persistence-operation stream single-threaded and deterministic.
func NewBatchWorkload(seed uint64, n, shards int) *BatchWorkload {
	rng := sim.NewRNG(seed)
	wl := &BatchWorkload{Seed: seed, Shards: shards}
	for i := 0; i < n; i++ {
		if i >= 2 && rng.Intn(100) < 20 && !wl.Batches[i-2].Delete {
			wl.Batches = append(wl.Batches, BatchOp{
				Keys: wl.Batches[i-2].Keys, Delete: true, Target: i - 2,
			})
			continue
		}
		wl.Batches = append(wl.Batches, BatchOp{Keys: crossShardKeys(i, shards), Target: i})
	}
	return wl
}

// crossShardKeys picks batch i's key set, re-rolling the last key until the
// set spans at least two shards under the router's own hash.
func crossShardKeys(i, shards int) []string {
	keys := make([]string, batchKeysPerBatch)
	for j := range keys {
		keys[j] = fmt.Sprintf("bk-%04d-%d", i, j)
	}
	if shards < 2 {
		return keys
	}
	spans := func() bool {
		first := shardOfKey(keys[0], shards)
		for _, k := range keys[1:] {
			if shardOfKey(k, shards) != first {
				return true
			}
		}
		return false
	}
	for nonce := 0; !spans(); nonce++ {
		keys[len(keys)-1] = fmt.Sprintf("bk-%04d-%d.%d", i, batchKeysPerBatch-1, nonce)
	}
	return keys
}

// shardOfKey mirrors the router's key→shard mapping.
func shardOfKey(key string, shards int) int {
	return int(util.Hash64([]byte(key)) % uint64(shards))
}

// BatchValue is the canonical value put batch i writes for key.
func BatchValue(i int, key string) string {
	return fmt.Sprintf("b%06d.%s", i, key)
}

// Keys returns the sorted universe of keys the workload can touch plus ghost
// keys that must never become readable.
func (w *BatchWorkload) Keys() []string {
	var keys []string
	for _, b := range w.Batches {
		if !b.Delete {
			keys = append(keys, b.Keys...)
		}
	}
	keys = append(keys, "zz-ghost-0", "zz-ghost-1")
	sort.Strings(keys)
	return keys
}

// batchDB is the engine surface the cross-shard workload needs: the kvstore
// API plus the router's atomic multi-shard Apply.
type batchDB interface {
	kvstore.DB
	Apply(th *hw.Thread, b *core.Batch) error
}

// applyBatch issues workload batch i, then probes the previous batch's first
// key to keep the read path exercised before the crash (reads never number
// events, so the probe does not perturb crash-point indices).
func applyBatch(db batchDB, th *hw.Thread, wl *BatchWorkload, i int) error {
	b := &core.Batch{}
	op := wl.Batches[i]
	if op.Delete {
		for _, k := range op.Keys {
			b.Delete([]byte(k))
		}
	} else {
		for _, k := range op.Keys {
			b.Put([]byte(k), []byte(BatchValue(i, k)))
		}
	}
	if err := db.Apply(th, b); err != nil {
		return err
	}
	if i > 0 {
		if _, err := db.Get(th, []byte(wl.Batches[i-1].Keys[0])); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
			return err
		}
	}
	return nil
}

// CountBatchEvents runs wl against a fresh sharded engine with a counting-only
// injector and returns the crash-point-space size plus the stream hash.
func CountBatchEvents(spec EngineSpec, domain cache.Domain, wl *BatchWorkload) (int64, uint64, error) {
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.Open(m, th)
	if err != nil {
		return 0, 0, fmt.Errorf("open %s: %w", spec.Name, err)
	}
	bdb, ok := db.(batchDB)
	if !ok {
		return 0, 0, fmt.Errorf("%s: engine does not support atomic batches", spec.Name)
	}
	inj := NewInjector()
	inj.Arm(0, FaultNone, 0)
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	for i := range wl.Batches {
		if err := applyBatch(bdb, wth, wl, i); err != nil {
			return 0, 0, fmt.Errorf("%s: batch %d failed: %w", spec.Name, i, err)
		}
	}
	m.SetMemGate(nil)
	_ = db.Close(th)
	return inj.Events(), inj.StreamHash(), nil
}

// RunBatchSchedule executes one cross-shard crash schedule end to end.
func RunBatchSchedule(spec EngineSpec, domain cache.Domain, wl *BatchWorkload, crashAt int64, fault Fault) *Result {
	return RunBatchScheduleTraced(spec, domain, wl, crashAt, fault, nil)
}

// RunBatchScheduleTraced is RunBatchSchedule with crash annotations emitted
// into tr (nil-safe). The structure mirrors RunScheduleTraced; the workload
// unit is an atomic batch and the oracle is checkBatchOracle.
func RunBatchScheduleTraced(spec EngineSpec, domain cache.Domain, wl *BatchWorkload, crashAt int64, fault Fault, tr *obs.Trace) *Result {
	res := &Result{
		Schedule: Schedule{
			Engine:       spec.Name,
			Domain:       domain,
			WorkloadSeed: wl.Seed,
			NumOps:       len(wl.Batches),
			CrashAt:      crashAt,
			Fault:        fault,
		},
		Inflight: len(wl.Batches),
	}
	m := NewMachine(domain)
	th := m.NewThread(0)
	db, err := spec.open(m, th, tr)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("initial open failed: %v", err))
		return res
	}
	bdb, ok := db.(batchDB)
	if !ok {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: engine does not support atomic batches", spec.Name))
		_ = db.Close(th)
		return res
	}

	inj := NewInjector()
	inj.Arm(crashAt, fault, scheduleSeed(wl.Seed, crashAt, fault))
	m.SetMemGate(inj.Gate)
	wth := m.NewThread(1)
	tr.Emit(wth.Clock.Now(), "crash_armed",
		"engine", spec.Name, "crash_at", crashAt, "fault", fault.String())
	for i := range wl.Batches {
		if err := applyBatch(bdb, wth, wl, i); err != nil && !inj.Frozen() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("batch %d failed before the crash point: %v", i, err))
			break
		}
		if inj.Frozen() {
			res.Inflight = i
			break
		}
	}
	res.Frozen = inj.Frozen()
	res.Events = inj.Events()
	if res.Frozen {
		tr.Emit(wth.Clock.Now(), "crash_frozen",
			"inflight_batch", res.Inflight, "events", res.Events)
	}

	if h, ok := db.(haltable); ok {
		h.Halt()
	}
	m.Crash()
	_ = db.Close(th)
	m.SetMemGate(nil)
	if fault == FaultFlip {
		if addr, bit, ok := inj.FlipTarget(); ok {
			var b [1]byte
			m.PMem.LoadRaw(addr, b[:])
			b[0] ^= 1 << bit
			m.PMem.StoreRaw(addr, b[:])
			tr.Emit(th.Clock.Now(), "media_fault", "addr", addr, "bit", bit)
		}
	}
	m.Recover()
	res.StreamHash = inj.StreamHash()

	th2 := m.NewThread(0)
	tr.Emit(th2.Clock.Now(), "recovery_open", "engine", spec.Name)
	var db2 kvstore.DB
	openErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("recovery panicked: %v", r)
				res.Violations = append(res.Violations, err.Error())
			}
		}()
		db2, err = spec.open(m, th2, tr)
		return err
	}()
	if db2 == nil {
		if fault == FaultFlip && len(res.Violations) == 0 {
			res.RecoveryRefused = openErr
			tr.Emit(th2.Clock.Now(), "recovery_refused", "err", openErr.Error())
			return res
		}
		if openErr != nil && len(res.Violations) == 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("recovery open failed: %v", openErr))
		}
		return res
	}

	// Committed cross-shard batches replay from the NT-written two-phase logs
	// in both domains, so durability AND atomicity are demanded everywhere
	// except under bit-flip corruption (which may eat one shard's prepare
	// record or a marker — refusing or losing whole groups is honest there,
	// fabricating or tearing values is not).
	strict := fault != FaultFlip
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("recovered engine panicked under oracle probes: %v", r))
			}
		}()
		var v []string
		v, res.Recovered = checkBatchOracle(db2, th2, wl, res.Inflight, strict, strict)
		res.Violations = append(res.Violations, v...)
		if fs, ok := db2.(interface {
			FilterStats() (probes, negatives int64)
		}); ok {
			res.FilterProbes, res.FilterNegatives = fs.FilterStats()
		}
		_ = db2.Close(th2)
	}()
	tr.Emit(th2.Clock.Now(), "oracle_done",
		"violations", len(res.Violations), "recovered_keys", len(res.Recovered))
	return res
}

// checkBatchOracle probes every key of every put batch and demands, per
// batch, a uniform group outcome from the admissible set.
//
// inflight is the index of the batch the crash interrupted; batches
// 0..inflight-1 are acknowledged, batch inflight (if any) may have committed,
// later batches were never issued.
//
// With durable=true an acknowledged put batch must be fully present unless an
// acknowledged delete batch removed it (an in-flight delete leaves both
// outcomes admissible); with atomic=true a batch whose keys are part-present
// part-absent is a violation regardless of durability. Values must always be
// the canonical BatchValue of their own batch, ghost keys must stay absent,
// and Scan must agree with Get.
func checkBatchOracle(db kvstore.DB, th *hw.Thread, wl *BatchWorkload, inflight int, durable, atomic bool) (violations []string, recovered map[string]string) {
	issued := func(b int) bool { return b <= inflight && b < len(wl.Batches) }
	acked := func(b int) bool { return b < inflight }

	// deleter[p] is the index of the delete batch targeting put batch p.
	deleter := make(map[int]int)
	for i, b := range wl.Batches {
		if b.Delete {
			deleter[b.Target] = i
		}
	}

	got := make(map[string]keyState)
	probe := func(key string) (keyState, bool) {
		v, err := db.Get(th, []byte(key))
		switch {
		case err == nil:
			s := keyState{present: true, value: string(v)}
			got[key] = s
			return s, true
		case errors.Is(err, kvstore.ErrNotFound):
			got[key] = keyState{}
			return keyState{}, true
		default:
			violations = append(violations, fmt.Sprintf("get %q: unexpected error %v", key, err))
			return keyState{}, false
		}
	}

	for p, b := range wl.Batches {
		if b.Delete {
			continue
		}
		present, absent := 0, 0
		for _, key := range b.Keys {
			s, ok := probe(key)
			if !ok {
				continue
			}
			if !s.present {
				absent++
				continue
			}
			present++
			if want := BatchValue(p, key); s.value != want {
				violations = append(violations, fmt.Sprintf(
					"key %q: recovered %q, canonical value is %q", key, s.value, want))
			}
		}

		// Group admissibility.
		allowedPresent, allowedAbsent := true, true
		switch {
		case !issued(p):
			allowedPresent = false
		case durable:
			d, hasDel := deleter[p]
			if acked(p) && (!hasDel || !issued(d)) {
				allowedAbsent = false
			}
			if hasDel && acked(d) {
				allowedPresent = false
			}
		}
		switch {
		case present > 0 && absent > 0:
			if atomic {
				violations = append(violations, fmt.Sprintf(
					"batch %d half-applied: %d of %d keys present (inflight batch %d)",
					p, present, len(b.Keys), inflight))
			} else if !issued(p) {
				violations = append(violations, fmt.Sprintf(
					"batch %d never issued but %d keys present", p, present))
			}
		case present > 0:
			if !allowedPresent {
				violations = append(violations, fmt.Sprintf(
					"batch %d fully present but inadmissible (issued=%v, deleter acked; inflight batch %d)",
					p, issued(p), inflight))
			}
		default:
			if !allowedAbsent {
				violations = append(violations, fmt.Sprintf(
					"batch %d lost: acknowledged and never deleted, but absent after recovery (inflight batch %d)",
					p, inflight))
			}
		}
	}
	for _, ghost := range []string{"zz-ghost-0", "zz-ghost-1"} {
		if s, ok := probe(ghost); ok && s.present {
			violations = append(violations, fmt.Sprintf("ghost key %q readable: %q", ghost, s.value))
		}
	}

	// Full scan: universe membership, ascending order, and Get agreement.
	inUniverse := make(map[string]bool)
	for _, k := range wl.Keys() {
		inUniverse[k] = true
	}
	scanned := make(map[string]string)
	var prev string
	orderOK := true
	_, err := db.Scan(th, nil, 0, func(k, v []byte) bool {
		key := string(k)
		if prev != "" && key <= prev {
			orderOK = false
		}
		prev = key
		scanned[key] = string(v)
		return true
	})
	if err != nil {
		violations = append(violations, fmt.Sprintf("scan: unexpected error %v", err))
	}
	if !orderOK {
		violations = append(violations, "scan: keys not in strictly ascending order")
	}
	for k, v := range scanned {
		if !inUniverse[k] {
			violations = append(violations, fmt.Sprintf("scan: fabricated key %q = %q", k, v))
			continue
		}
		if g := got[k]; !g.present || g.value != v {
			violations = append(violations, fmt.Sprintf(
				"scan/get disagree on %q: scan %q, get %v", k, v, g))
		}
	}
	for k, g := range got {
		if g.present {
			if _, ok := scanned[k]; !ok {
				violations = append(violations, fmt.Sprintf(
					"key %q visible to get (%v) but missing from scan", k, g))
			}
		}
	}

	recovered = make(map[string]string)
	for k, g := range got {
		if g.present {
			recovered[k] = g.value
		}
	}
	sort.Strings(violations)
	return violations, recovered
}

// CrossShardSweepConfig parameterizes a sweep over cross-shard batch
// schedules.
type CrossShardSweepConfig struct {
	Shards       int // engine shards (0 = crossShardShards)
	Domains      []cache.Domain
	NumBatches   int
	WorkloadSeed uint64
	// SchedulesPerConfig bounds the crash points tried per (domain, fault)
	// combination; 0 explores every crash point exhaustively.
	SchedulesPerConfig int
	ScheduleSeed       uint64
	Faults             []Fault
	Parallel           int
	Log                func(format string, args ...any)
}

// SweepCrossShard enumerates or samples cross-shard crash schedules and runs
// each one; every failure carries its reproduction tuple.
func SweepCrossShard(cfg CrossShardSweepConfig) (*SweepStats, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = crossShardShards
	}
	if len(cfg.Domains) == 0 {
		cfg.Domains = []cache.Domain{cache.ADR, cache.EADR}
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = []Fault{FaultNone}
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	spec := shardedSpec(shardedEngineName, cfg.Shards)
	wl := NewBatchWorkload(cfg.WorkloadSeed, cfg.NumBatches, cfg.Shards)

	stats := &SweepStats{EventTotals: make(map[string]int64)}
	type job struct {
		domain  cache.Domain
		crashAt int64
		fault   Fault
	}
	var jobs []job
	for _, domain := range cfg.Domains {
		total, _, err := CountBatchEvents(spec, domain, wl)
		if err != nil {
			return nil, err
		}
		stats.EventTotals[spec.Name+"/"+domain.String()] = total
		for _, fault := range cfg.Faults {
			if cfg.SchedulesPerConfig <= 0 {
				for k := int64(1); k <= total; k++ {
					jobs = append(jobs, job{domain, k, fault})
				}
				continue
			}
			rng := newSampleRNG(cfg.ScheduleSeed, spec.Name, domain, fault)
			for s := 0; s < cfg.SchedulesPerConfig; s++ {
				k := 1 + int64(rng.Uint64n(uint64(total)))
				jobs = append(jobs, job{domain, k, fault})
			}
		}
		logf("faultinject: %s/%s: %d events", spec.Name, domain, total)
	}

	results := make([]*Result, len(jobs))
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				results[i] = RunBatchSchedule(spec, j.domain, wl, j.crashAt, j.fault)
			}
		}()
	}
	wg.Wait()

	for _, r := range results {
		stats.Runs++
		if r.Failed() {
			stats.Failures = append(stats.Failures, r)
			logf("faultinject: FAIL {%s}: %s", r.Schedule, r.Violations[0])
		}
	}
	return stats, nil
}
