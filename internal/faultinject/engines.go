package faultinject

import (
	"cachekv/internal/baseline"
	"cachekv/internal/baseline/novelsm"
	"cachekv/internal/baseline/slmdb"
	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

// EngineSpec describes one engine variant the harness can explore.
type EngineSpec struct {
	Name string
	// DurableADR is the engine's durability contract on the ADR platform:
	// true means an acknowledged write must survive a power failure even
	// with volatile CPU caches (the engine flushes or streams every write
	// before acking). Engines that keep acked data in cache lines — the
	// whole point of the eADR designs — get only the validity clause of the
	// oracle under ADR; under eADR every engine is held to full durability.
	DurableADR bool
	Open       func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error)
	// OpenTraced, when non-nil, is Open with a lifecycle-event trace wired
	// into the engine, so replayed schedules interleave engine events
	// (flushes, rotations, recovery) with the harness's crash annotations.
	OpenTraced func(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error)
}

// open dispatches to OpenTraced when a trace is wanted and wired.
func (s EngineSpec) open(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error) {
	if tr != nil && s.OpenTraced != nil {
		return s.OpenTraced(m, th, tr)
	}
	return s.Open(m, th)
}

// MachineConfig is the scaled-down platform the harness runs schedules on:
// an 8 MiB 12-way LLC over 256 MiB of PMem with 4 cores. Small enough that
// thousands of schedule runs stay cheap, large enough that no harness
// workload comes near a rotation or eviction threshold (which would add
// nondeterministic background persistence traffic to the event stream).
func MachineConfig(domain cache.Domain) hw.Config {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 256 << 20
	cfg.Cores = 4
	cfg.Cache = cache.Config{SizeBytes: 8 << 20, Ways: 12, Domain: domain}
	return cfg
}

// NewMachine builds a fresh harness platform in the given persistence domain.
func NewMachine(domain cache.Domain) *hw.Machine {
	return hw.NewMachine(MachineConfig(domain))
}

// coreOptions is the scaled CacheKV configuration (pool and zones shrunk to
// fit the harness LLC; behavioral knobs untouched).
func coreOptions() core.Options {
	o := core.DefaultOptions()
	o.PoolBytes = 2 << 20
	o.SubMemTableBytes = 256 << 10
	o.ImmZoneBytes = 8 << 20
	o.FSBytes = 32 << 20
	return o
}

func cacheKVSpec(name string, lazyIndex, listCompaction bool) EngineSpec {
	return EngineSpec{
		Name: name,
		// CacheKV's memory component lives in pinned cache lines; under ADR
		// those are volatile by design and acked writes may vanish (the
		// paper's point, pinned by TestADRCrashLosesUnflushedWrites).
		DurableADR: false,
		Open: func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
			o := coreOptions()
			o.LazyIndex = lazyIndex
			o.SkiplistCompaction = listCompaction
			return core.Open(m, o, th)
		},
		OpenTraced: func(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error) {
			o := coreOptions()
			o.LazyIndex = lazyIndex
			o.SkiplistCompaction = listCompaction
			o.Trace = tr
			return core.Open(m, o, th)
		},
	}
}

func novelsmSpec(name string, v baseline.Variant) EngineSpec {
	return EngineSpec{
		Name: name,
		// Vanilla NoveLSM WAL-logs DRAM-tier writes with clwb+fence and its
		// PMem tier appends with in-place flushes: durable on ADR. The
		// -w/o-flush variant drops the flushes, the -cache variant stages
		// the PMem tier in pinned cache segments; neither contracts ADR
		// durability.
		DurableADR: v == baseline.Vanilla,
		Open: func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
			return novelsm.Open(m, novelsmOptions(v, nil), th)
		},
		OpenTraced: func(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error) {
			return novelsm.Open(m, novelsmOptions(v, tr), th)
		},
	}
}

// novelsmOptions is the scaled NoveLSM harness configuration.
func novelsmOptions(v baseline.Variant, tr *obs.Trace) novelsm.Options {
	o := novelsm.DefaultOptions()
	o.Variant = v
	o.DRAMMemBytes = 1 << 20
	o.PMemMemBytes = 4 << 20
	o.SegmentBytes = 1 << 20
	o.WALBytes = 8 << 20
	o.NodeBytes = 16 << 20
	o.FSBytes = 32 << 20
	o.Trace = tr
	return o
}

func slmdbSpec(name string, v baseline.Variant) EngineSpec {
	return EngineSpec{
		Name:       name,
		DurableADR: v == baseline.Vanilla,
		Open: func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
			return slmdb.Open(m, slmdbOptions(v, nil), th)
		},
		OpenTraced: func(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error) {
			return slmdb.Open(m, slmdbOptions(v, tr), th)
		},
	}
}

// slmdbOptions is the scaled SLM-DB harness configuration.
func slmdbOptions(v baseline.Variant, tr *obs.Trace) slmdb.Options {
	o := slmdb.DefaultOptions()
	o.Variant = v
	o.MemBytes = 4 << 20
	o.SegmentBytes = 1 << 20
	o.NodeBytes = 16 << 20
	o.FSBytes = 32 << 20
	o.Trace = tr
	return o
}

// shardedSpec is the sharded CacheKV router on the harness platform: the
// coreOptions budget split across shards (the router divides the pool, zones,
// and file-layer capacity itself). Kept out of AllEngines so the classic
// per-engine sweeps and differential tests keep their historical scope; the
// cross-shard sweep and FindEngine reach it by name.
func shardedSpec(name string, shards int) EngineSpec {
	open := func(m *hw.Machine, th *hw.Thread, tr *obs.Trace) (kvstore.DB, error) {
		o := coreOptions()
		o.Trace = tr
		return core.OpenSharded(m, core.ShardedOptions{Shards: shards, Base: o}, th)
	}
	return EngineSpec{
		Name: name,
		// Single-key writes live in pinned cache lines exactly like the plain
		// engine's, so the ADR contract is unchanged. (Cross-shard batches are
		// stronger — their two-phase log is written with non-temporal stores —
		// and the cross-shard oracle asserts that separately.)
		DurableADR: false,
		Open: func(m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
			return open(m, th, nil)
		},
		OpenTraced: open,
	}
}

// AllEngines returns a spec for every engine variant the repository ships:
// CacheKV and its two ablations, and both baselines with their eADR
// variants.
func AllEngines() []EngineSpec {
	return []EngineSpec{
		cacheKVSpec("cachekv", true, true),
		cacheKVSpec("pcsm", false, false),
		cacheKVSpec("pcsm+liu", true, false),
		novelsmSpec("novelsm", baseline.Vanilla),
		novelsmSpec("novelsm-w/o-flush", baseline.WithoutFlush),
		novelsmSpec("novelsm-cache", baseline.CacheSegments),
		slmdbSpec("slm-db", baseline.Vanilla),
		slmdbSpec("slm-db-w/o-flush", baseline.WithoutFlush),
		slmdbSpec("slm-db-cache", baseline.CacheSegments),
	}
}

// FindEngine returns the spec named name. Beyond AllEngines it resolves
// "cachekv-sharded", the cross-shard harness router.
func FindEngine(name string) (EngineSpec, bool) {
	for _, s := range AllEngines() {
		if s.Name == name {
			return s, true
		}
	}
	if name == shardedEngineName {
		return shardedSpec(shardedEngineName, crossShardShards), true
	}
	return EngineSpec{}, false
}
