package faultinject

import (
	"os"
	"reflect"
	"runtime"
	"testing"

	"cachekv/internal/hw/cache"
)

var bothDomains = []cache.Domain{cache.ADR, cache.EADR}

// TestCrashSweepBounded is the CI crash sweep: a seeded sample of crash
// points for every engine variant under both persistence domains, with all
// three fault modes. Every failure prints its reproduction tuple; re-running
// RunSchedule with that tuple replays the identical event stream.
func TestCrashSweepBounded(t *testing.T) {
	per := 12
	if testing.Short() {
		per = 4
	}
	stats, err := Sweep(SweepConfig{
		Engines:            AllEngines(),
		Domains:            bothDomains,
		NumOps:             200,
		WorkloadSeed:       1,
		SchedulesPerConfig: per,
		ScheduleSeed:       7,
		Faults:             []Fault{FaultNone, FaultTorn, FaultFlip},
		Parallel:           runtime.GOMAXPROCS(0),
		Log:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bounded sweep: %d schedules", stats.Runs)
	for _, r := range stats.Failures {
		t.Errorf("reproduce with: RunSchedule({%s}): %v", r.Schedule, r.Err())
	}
}

// TestCrashSweepEdges pins the boundary crash points — the very first event,
// the second, and the last two — where off-by-one bugs in the acked-prefix
// accounting would concentrate.
func TestCrashSweepEdges(t *testing.T) {
	engines := AllEngines()
	if testing.Short() {
		var keep []EngineSpec
		for _, s := range engines {
			switch s.Name {
			case "cachekv", "novelsm", "slm-db":
				keep = append(keep, s)
			}
		}
		engines = keep
	}
	wl := NewWorkload(1, 200)
	for _, spec := range engines {
		for _, domain := range bothDomains {
			total, _, err := CountEvents(spec, domain, wl)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int64{1, 2, total - 1, total} {
				r := RunSchedule(spec, domain, wl, k, FaultNone)
				if err := r.Err(); err != nil {
					t.Errorf("edge crash point: %v", err)
				}
			}
		}
	}
}

// TestEventStreamDeterminism re-counts the same workload twice per engine and
// domain: the event totals and the FNV fingerprint of the full
// (op, addr, len) stream must match exactly. This is the precondition for
// every reproduction claim the harness makes.
func TestEventStreamDeterminism(t *testing.T) {
	engines := AllEngines()
	if testing.Short() {
		engines = engines[:3]
	}
	wl := NewWorkload(1, 200)
	for _, spec := range engines {
		for _, domain := range bothDomains {
			n1, h1, err := CountEvents(spec, domain, wl)
			if err != nil {
				t.Fatal(err)
			}
			n2, h2, err := CountEvents(spec, domain, wl)
			if err != nil {
				t.Fatal(err)
			}
			if n1 != n2 || h1 != h2 {
				t.Errorf("%s/%s: event stream not deterministic: (%d, %#x) vs (%d, %#x)",
					spec.Name, domain, n1, h1, n2, h2)
			}
		}
	}
}

// TestScheduleReplayDeterminism runs the same schedules twice and demands
// bit-identical results: stream hash, in-flight op, violations, and the full
// recovered view. Torn and flip faults derive their randomness from the
// schedule tuple, so they too must replay exactly.
func TestScheduleReplayDeterminism(t *testing.T) {
	spec, _ := FindEngine("cachekv")
	nov, _ := FindEngine("novelsm")
	wl := NewWorkload(1, 200)
	cases := []struct {
		spec    EngineSpec
		domain  cache.Domain
		crashAt int64
		fault   Fault
	}{
		{spec, cache.EADR, 180, FaultNone},
		{spec, cache.EADR, 46, FaultFlip}, // regression: the corrupt-count schedule
		{spec, cache.ADR, 99, FaultTorn},
		{nov, cache.ADR, 123, FaultTorn},
	}
	for _, c := range cases {
		a := RunSchedule(c.spec, c.domain, wl, c.crashAt, c.fault)
		b := RunSchedule(c.spec, c.domain, wl, c.crashAt, c.fault)
		if a.StreamHash != b.StreamHash || a.Inflight != b.Inflight || a.Events != b.Events {
			t.Errorf("{%s}: replay diverged: hash %#x/%#x inflight %d/%d events %d/%d",
				a.Schedule, a.StreamHash, b.StreamHash, a.Inflight, b.Inflight, a.Events, b.Events)
		}
		if !reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("{%s}: replay verdicts differ: %v vs %v", a.Schedule, a.Violations, b.Violations)
		}
		if !reflect.DeepEqual(a.Recovered, b.Recovered) {
			t.Errorf("{%s}: replay recovered views differ", a.Schedule)
		}
	}
}

// TestCorruptCountRegression pins the harness's first catch: a FaultFlip at
// event 46 of the seed-1 workload lands in a sub-MemTable header's packed
// entry counter, and recovery used to size the rebuilt negative filter from
// that unvalidated count (a multi-gigabyte allocation that hung the process).
// rebuildList now clamps the counter to what the data region can physically
// hold; the schedule must complete and satisfy the validity oracle.
func TestCorruptCountRegression(t *testing.T) {
	spec, _ := FindEngine("cachekv")
	wl := NewWorkload(1, 200)
	r := RunSchedule(spec, cache.EADR, wl, 46, FaultFlip)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Frozen {
		t.Fatal("schedule never reached its crash point")
	}
}

// TestCrashSweepExhaustive enumerates EVERY crash point of the 200-op
// workload for every engine under both domains (the acceptance sweep,
// ~7.5k schedules). It is a manual target:
//
//	CRASHSWEEP_EXHAUSTIVE=1 go test ./internal/faultinject -run TestCrashSweepExhaustive -v -timeout 30m
func TestCrashSweepExhaustive(t *testing.T) {
	if os.Getenv("CRASHSWEEP_EXHAUSTIVE") == "" {
		t.Skip("set CRASHSWEEP_EXHAUSTIVE=1 to run the exhaustive sweep")
	}
	stats, err := Sweep(SweepConfig{
		Engines:            AllEngines(),
		Domains:            bothDomains,
		NumOps:             200,
		WorkloadSeed:       1,
		SchedulesPerConfig: 0, // exhaustive
		Faults:             []Fault{FaultNone},
		Parallel:           runtime.GOMAXPROCS(0),
		Log:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exhaustive sweep: %d schedules", stats.Runs)
	for _, r := range stats.Failures {
		t.Errorf("reproduce with: RunSchedule({%s}): %v", r.Schedule, r.Err())
	}
}
