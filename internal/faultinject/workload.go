package faultinject

import (
	"fmt"
	"strconv"
	"strings"

	"cachekv/internal/hw/sim"
)

// OpKind is a workload operation kind.
type OpKind int

// Workload operation kinds. Only puts and deletes mutate durable state;
// gets ride along to exercise the read path before the crash.
const (
	OpPut OpKind = iota
	OpDelete
	OpGet
)

// Op is one scripted workload operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value string // puts only
}

// Workload is a deterministic scripted op sequence, fully derived from its
// seed and length. Values encode the index of the put that wrote them
// ("v%06d.<key>"), so the oracle can tell exactly which write a recovered
// value came from.
type Workload struct {
	Seed uint64
	Ops  []Op
}

// workloadKeys is the key-space size. It is deliberately small relative to
// the op count so keys are overwritten and deleted repeatedly — the
// interesting schedules for resurrection and lost-update checking.
const workloadKeys = 48

// NewWorkload generates n mixed operations (≈70% put, 15% delete, 15% get)
// from seed. Total written bytes stay far below every engine's rotation
// threshold, so the persistence-operation stream is single-threaded and
// deterministic: no background flush or compaction runs mid-workload.
func NewWorkload(seed uint64, n int) *Workload {
	rng := sim.NewRNG(seed)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(workloadKeys))
		switch r := rng.Intn(100); {
		case r < 70:
			ops = append(ops, Op{Kind: OpPut, Key: key, Value: PutValue(i, key)})
		case r < 85:
			ops = append(ops, Op{Kind: OpDelete, Key: key})
		default:
			ops = append(ops, Op{Kind: OpGet, Key: key})
		}
	}
	return &Workload{Seed: seed, Ops: ops}
}

// PutValue is the canonical value written by the put at op index i.
func PutValue(i int, key string) string {
	return fmt.Sprintf("v%06d.%s", i, key)
}

// ParsePutIndex recovers the op index encoded in a stored value, or -1 if
// the value is not in the canonical form (which the oracle reports as
// fabricated data).
func ParsePutIndex(v string) int {
	if len(v) < 8 || v[0] != 'v' || !strings.Contains(v, ".") {
		return -1
	}
	i, err := strconv.Atoi(v[1:7])
	if err != nil {
		return -1
	}
	return i
}

// Keys returns the sorted universe of keys the workload can touch,
// including keys never actually written (the oracle probes them to catch
// fabricated entries).
func (w *Workload) Keys() []string {
	keys := make([]string, 0, workloadKeys+2)
	for i := 0; i < workloadKeys; i++ {
		keys = append(keys, fmt.Sprintf("key-%03d", i))
	}
	// Ghost keys: never written by any workload; must never be readable.
	keys = append(keys, "zz-ghost-0", "zz-ghost-1")
	return keys
}
