package faultinject

import (
	"testing"

	"cachekv/internal/hw/cache"
)

// deleteBetween reports whether wl issues a delete of key with op index in
// (after, bound].
func deleteBetween(wl *Workload, key string, after, bound int) bool {
	for i := after + 1; i <= bound && i < len(wl.Ops); i++ {
		if op := wl.Ops[i]; op.Kind == OpDelete && op.Key == key {
			return true
		}
	}
	return false
}

// TestDomainDifferentialRecovery crashes NoveLSM and SLM-DB at the same
// event indices under ADR and eADR and compares the recovered states. The
// paper's claim is directional: persistent caches can only *add* durability.
// For every key the ADR run recovers, the eADR run must hold a state at
// least as fresh (a put with an index >= the ADR one), and a key absent
// under eADR but present under ADR is legal only when a later issued delete
// explains the absence.
func TestDomainDifferentialRecovery(t *testing.T) {
	engines := []string{"novelsm", "slm-db"}
	if !testing.Short() {
		engines = append(engines, "novelsm-w/o-flush", "slm-db-w/o-flush")
	}
	wl := NewWorkload(5, 200)
	for _, name := range engines {
		spec, ok := FindEngine(name)
		if !ok {
			t.Fatalf("unknown engine %q", name)
		}
		totalA, hashA, err := CountEvents(spec, cache.ADR, wl)
		if err != nil {
			t.Fatal(err)
		}
		totalE, hashE, err := CountEvents(spec, cache.EADR, wl)
		if err != nil {
			t.Fatal(err)
		}
		// The engine must not branch on the domain: identical event streams
		// are what make "the same crash point" meaningful across domains.
		if totalA != totalE || hashA != hashE {
			t.Fatalf("%s: event stream differs across domains: (%d, %#x) vs (%d, %#x)",
				name, totalA, hashA, totalE, hashE)
		}

		points := []int64{1, totalA / 4, totalA / 2, 3 * totalA / 4, totalA}
		if !testing.Short() {
			rng := newSampleRNG(11, name, cache.ADR, FaultNone)
			for i := 0; i < 5; i++ {
				points = append(points, 1+int64(rng.Uint64n(uint64(totalA))))
			}
		}
		for _, k := range points {
			ra := RunSchedule(spec, cache.ADR, wl, k, FaultNone)
			re := RunSchedule(spec, cache.EADR, wl, k, FaultNone)
			if err := ra.Err(); err != nil {
				t.Errorf("%v", err)
				continue
			}
			if err := re.Err(); err != nil {
				t.Errorf("%v", err)
				continue
			}
			if ra.Inflight != re.Inflight {
				t.Errorf("%s crashAt=%d: in-flight op differs across domains: %d vs %d",
					name, k, ra.Inflight, re.Inflight)
				continue
			}
			for key, av := range ra.Recovered {
				ai := ParsePutIndex(av)
				if ai < 0 {
					t.Errorf("%s crashAt=%d: ADR recovered unparseable value %q for %q", name, k, av, key)
					continue
				}
				ev, present := re.Recovered[key]
				if present {
					if ei := ParsePutIndex(ev); ei < ai {
						t.Errorf("%s crashAt=%d: eADR recovered OLDER state for %q: put %d vs ADR's put %d",
							name, k, key, ei, ai)
					}
					continue
				}
				if !deleteBetween(wl, key, ai, re.Inflight) {
					t.Errorf("%s crashAt=%d: key %q present under ADR (put %d) but lost under eADR with no later delete",
						name, k, key, ai)
				}
			}
		}
	}
}
