package hw

import (
	"testing"
)

// These tests pin Machine.Recover's power-cycle semantics on the PMem device:
// the XPBuffer's write-combining window and the sequential-read tracker are
// volatile staging state and must reset at reboot, while durable content and
// the monotonic hardware counters must not change.

func newBareMachine() (*Machine, *Thread) {
	m := NewMachine(Config{PMemBytes: 64 << 20})
	return m, m.NewThread(0)
}

// TestRecoverResetsXPBufferCombining: a cacheline written before the crash
// stages a partial XPLine; a line written to the same XPLine after
// Crash/Recover must open a fresh staging slot, not combine with the
// pre-crash entry (combining across a power cycle would mis-account the
// write-amplification the model exists to measure).
func TestRecoverResetsXPBufferCombining(t *testing.T) {
	const base = 8192 // XPLine-aligned, away from the unmapped zero page
	line := make([]byte, 64)

	// Sanity branch: without a crash the second line combines.
	m, th := newBareMachine()
	m.PMem.WriteLines(th.Clock, base, line)
	m.PMem.WriteLines(th.Clock, base+64, line)
	if hits := m.PMem.Counters.LineHits.Load(); hits != 1 {
		t.Fatalf("sanity: adjacent lines should combine in one XPLine, LineHits=%d", hits)
	}

	// Crash between the two lines: no combining allowed.
	m2, th2 := newBareMachine()
	m2.PMem.WriteLines(th2.Clock, base, line)
	m2.Crash()
	m2.Recover()
	th3 := m2.NewThread(0)
	m2.PMem.WriteLines(th3.Clock, base+64, line)
	if hits := m2.PMem.Counters.LineHits.Load(); hits != 0 {
		t.Errorf("post-recovery write combined with pre-crash XPBuffer staging (LineHits=%d)", hits)
	}
}

// TestRecoverResetsReadLocality: the DIMM's sequential-read tracker must not
// survive a reboot — the first read after Recover pays the random-access
// latency even when it lands exactly one XPLine past the last pre-crash read.
func TestRecoverResetsReadLocality(t *testing.T) {
	const a, b = 8192, 8192 + 256 // consecutive XPLines
	buf := make([]byte, 256)

	m, th := newBareMachine()
	m.PMem.Read(th.Clock, a, buf)
	c0 := th.Clock.Now()
	m.PMem.Read(th.Clock, b, buf)
	seqCost := th.Clock.Now() - c0

	m2, th2 := newBareMachine()
	m2.PMem.Read(th2.Clock, a, buf)
	m2.Crash()
	m2.Recover()
	th3 := m2.NewThread(0)
	c0 = th3.Clock.Now()
	m2.PMem.Read(th3.Clock, b, buf)
	rebootCost := th3.Clock.Now() - c0

	if rebootCost <= seqCost {
		t.Errorf("read after reboot rode pre-crash locality: cost %d, sequential cost %d (want random > sequential)",
			rebootCost, seqCost)
	}
	if want := m.Costs.PMemReadRand; rebootCost != want {
		t.Errorf("first post-reboot XPLine read cost %d, want the random latency %d", rebootCost, want)
	}
}

// TestRecoverPreservesCountersAndContent: Crash/Recover must neither disturb
// the monotonic hardware counters nor the durable bytes.
func TestRecoverPreservesCountersAndContent(t *testing.T) {
	m, th := newBareMachine()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	m.PMem.WriteLines(th.Clock, 8192, data)
	m.PMem.WriteLines(th.Clock, 16384, data[:64]) // leave a partial staged
	before := m.PMem.Snapshot()

	m.Crash()
	m.Recover()

	if after := m.PMem.Snapshot(); after != before {
		t.Errorf("hardware counters changed across Crash/Recover:\n before %+v\n after  %+v", before, after)
	}
	got := make([]byte, 256)
	m.PMem.LoadRaw(8192, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("durable content changed across Crash/Recover at byte %d: %#x != %#x", i, got[i], data[i])
		}
	}
}
