// Package hw assembles the simulated platform the engines run on: an Optane
// PMem device (internal/hw/pmem) fronted by a persistent last-level cache
// (internal/hw/cache), a shared virtual-time cost model (internal/hw/sim),
// and a simple region allocator over the PMem physical address space.
//
// Engines never touch the sub-models directly; they allocate regions, obtain
// per-thread contexts, and issue Read/Write/NTWrite/Flush operations that are
// charged to the issuing thread's virtual clock. DRAM-resident structures are
// ordinary Go values — the machine only charges their access latency — and
// they are discarded at Crash(), while PMem regions and (under eADR) cache
// contents survive.
package hw

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/hw/cache"
	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
)

// Config describes the simulated platform.
type Config struct {
	PMemBytes uint64       // PMem capacity
	Cache     cache.Config // LLC geometry and persistence domain
	Cores     int          // physical cores available to user threads
	Costs     *sim.CostModel
}

// DefaultConfig models the paper's testbed: 512 GB of Optane behind a 36 MB
// 12-way eADR LLC on a 24-core socket. The default PMem capacity here is
// smaller (4 GiB) because experiments are scaled down; raise it when needed.
func DefaultConfig() Config {
	return Config{
		PMemBytes: 4 << 30,
		Cache:     cache.DefaultConfig(),
		Cores:     24,
		Costs:     sim.DefaultCosts(),
	}
}

// Machine is one simulated platform instance.
type Machine struct {
	cfg   Config
	Costs *sim.CostModel
	PMem  *pmem.Device
	Cache *cache.LLC

	allocMu sync.Mutex
	next    uint64
	regions map[string]Region

	threadSeq atomic.Int64
	crashed   atomic.Bool

	obsTally *sim.MemTally // per-layer hardware attribution; nil until EnableObs

	profStep    int64 // virtual-time sample period; 0 until EnableProfiler
	profMu      sync.Mutex
	profThreads []*Thread // every thread created after EnableProfiler
}

// Region is a named, contiguous range of PMem physical addresses.
type Region struct {
	Name string
	Addr uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Addr + r.Size }

// NewMachine builds a platform from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	if cfg.PMemBytes == 0 {
		cfg.PMemBytes = 4 << 30
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 24
	}
	dev := pmem.NewDevice(cfg.PMemBytes, cfg.Costs)
	return &Machine{
		cfg:     cfg,
		Costs:   cfg.Costs,
		PMem:    dev,
		Cache:   cache.New(cfg.Cache, dev, cfg.Costs),
		next:    4096, // keep address 0 unmapped to catch stray zero handles
		regions: make(map[string]Region),
	}
}

// Cores returns the configured core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// EnableObs turns on per-layer hardware attribution for this platform. It
// must be called before any thread is created: the tally is attached to each
// clock at NewThread time, so threads made earlier are not tracked. Enabling
// observability adds zero virtual time — tallies are host-side atomic adds.
func (m *Machine) EnableObs() {
	if m.obsTally == nil {
		m.obsTally = &sim.MemTally{}
	}
}

// ObsTally returns the platform's attribution tally, or nil when EnableObs
// was never called. sim.MemTally's Snapshot is nil-safe, so callers may use
// the result unconditionally.
func (m *Machine) ObsTally() *sim.MemTally { return m.obsTally }

// DefaultProfileStep is the virtual-time sampling period EnableProfiler uses
// when given 0: one sample per microsecond of virtual time.
const DefaultProfileStep = int64(1000)

// EnableProfiler turns on continuous virtual-time sampling for this platform:
// every thread created afterwards carries a sim.Profile that accrues one
// sample per stepNs of virtual time, split busy/wait per attribution layer.
// Like EnableObs it must run before thread creation, and it adds zero virtual
// time — samples are host-side counter bumps driven by clock arithmetic.
func (m *Machine) EnableProfiler(stepNs int64) {
	if stepNs <= 0 {
		stepNs = DefaultProfileStep
	}
	m.profStep = stepNs
}

// ProfileStep returns the sampling period, or 0 when profiling is off.
func (m *Machine) ProfileStep() int64 { return m.profStep }

// ProfiledThreads returns every thread created since EnableProfiler, in
// creation order.
func (m *Machine) ProfiledThreads() []*Thread {
	m.profMu.Lock()
	defer m.profMu.Unlock()
	out := make([]*Thread, len(m.profThreads))
	copy(out, m.profThreads)
	return out
}

// Alloc reserves size bytes of PMem address space under name, aligned to
// align (which must be a power of two; 0 means XPLine alignment). Allocation
// is append-only: regions persist across Crash and are never recycled, like
// a fixed platform memory map.
func (m *Machine) Alloc(name string, size, align uint64) Region {
	if align == 0 {
		align = uint64(m.Costs.XPLineSize)
	}
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if _, exists := m.regions[name]; exists {
		panic(fmt.Sprintf("hw: region %q already allocated", name))
	}
	addr := (m.next + align - 1) &^ (align - 1)
	if addr+size > m.PMem.Capacity() {
		panic(fmt.Sprintf("hw: out of PMem allocating %q (%d bytes at %#x, capacity %#x)",
			name, size, addr, m.PMem.Capacity()))
	}
	m.next = addr + size
	r := Region{Name: name, Addr: addr, Size: size}
	m.regions[name] = r
	return r
}

// LookupRegion retrieves a previously allocated region; recovery code uses it
// to re-find its memory map after a crash.
func (m *Machine) LookupRegion(name string) (Region, bool) {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	r, ok := m.regions[name]
	return r, ok
}

// Crash simulates power failure: the cache applies its persistence-domain
// rule (eADR drains dirty lines, ADR drops them) and the machine is marked
// crashed until Recover. Callers are responsible for discarding their
// DRAM-resident structures — that is the point of the exercise.
func (m *Machine) Crash() {
	m.Cache.Crash()
	m.crashed.Store(true)
}

// Recover boots the platform after a Crash: the crashed flag clears, the
// cache comes up cold (Crash emptied it), and the PMem device's volatile
// staging state — the XPBuffer combining window and the sequential-read
// tracker — resets to power-on values so that post-reboot accesses cannot
// combine with (or ride the locality of) pre-crash ones. Thread contexts are
// not machine state: they are volatile, owned by the software that created
// them, and must be recreated after a crash like every other DRAM structure.
func (m *Machine) Recover() {
	m.PMem.PowerCycle()
	m.crashed.Store(false)
}

// SetMemGate installs g as the persistence-operation gate on the platform's
// cache (nil removes it). The fault-injection harness uses the gate to number
// the operation stream and freeze the platform at a chosen crash point; see
// sim.MemGate.
func (m *Machine) SetMemGate(g sim.MemGate) { m.Cache.SetGate(g) }

// Crashed reports whether the machine is between Crash and Recover.
func (m *Machine) Crashed() bool { return m.crashed.Load() }

// Phase labels the write-path segments the paper's Figure 5(b) breaks down.
type Phase int

// Phases of a KV operation, for latency breakdown accounting. The first six
// are the paper's Figure 5(b) write-path segments; the rest label background
// and lifecycle work for the observability layer (appended so existing
// Breakdown indices are stable).
const (
	PhaseWAL Phase = iota
	PhaseLock
	PhaseIndex
	PhaseAppend
	PhaseFlushInstr
	PhaseOther
	PhaseSST      // storage-component (SSTable / persistent tree) access
	PhaseBgFlush  // background memtable flush
	PhaseSpill    // ImmZone → L0 spill
	PhaseCompact  // compaction (skiplist merge or LSM level merge)
	PhaseRecovery // post-crash recovery (scan, filter rebuild, index rebuild)
	PhaseSettle   // end-of-run quiesce (engine flush + XPBuffer drain)
	PhaseClient   // modelled client-side overhead per op
	numPhases
)

// NumPhases is the number of defined phases, exported for attribution code.
const NumPhases = int(numPhases)

var phaseNames = [numPhases]string{
	"wal", "lock", "index", "append", "flush", "other",
	"sst", "bgflush", "spill", "compact", "recovery", "settle", "client",
}

// String returns the phase's short name.
func (p Phase) String() string { return phaseNames[p] }

// Layer returns the attribution-layer index for this phase in a sim.MemTally.
// Layer 0 is reserved for unlabeled ("direct") work, so phases map to 1..N.
func (p Phase) Layer() int32 { return int32(p) + 1 }

// NumLayers is the number of attribution layers in use (direct + one per
// phase). Always ≤ sim.MaxLayers.
const NumLayers = NumPhases + 1

// LayerName names attribution layer i ("direct" for 0, the phase name after).
func LayerName(i int) string {
	if i <= 0 || i > NumPhases {
		return "direct"
	}
	return phaseNames[i-1]
}

// Breakdown is virtual nanoseconds accumulated per phase.
type Breakdown [numPhases]int64

// Add merges o into b.
func (b *Breakdown) Add(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Total returns the sum across phases.
func (b Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Fraction returns phase p's share of the total, or 0 when empty.
func (b Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[p]) / float64(t)
}

// Sub returns the per-phase delta b - o, for span-style interval accounting.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	var d Breakdown
	for i := range b {
		d[i] = b[i] - o[i]
	}
	return d
}

// Thread is one simulated execution context (a user thread pinned to a
// core, or a background thread). It owns a virtual clock, a deterministic
// RNG, and per-phase accounting.
type Thread struct {
	Clock *sim.Clock
	Core  int // core the thread is pinned to
	RNG   *sim.RNG
	costs *sim.CostModel

	name   string // profiler/forensics label; "" reads as "client"
	phases Breakdown
}

// NewThread creates a thread pinned to core (wrapped modulo the core count).
func (m *Machine) NewThread(core int) *Thread {
	id := m.threadSeq.Add(1)
	th := &Thread{
		Clock: &sim.Clock{},
		Core:  core % m.cfg.Cores,
		RNG:   sim.NewRNG(uint64(id) * 0x9e3779b97f4a7c15),
		costs: m.Costs,
	}
	th.Clock.SetTally(m.obsTally)
	if m.profStep > 0 {
		th.Clock.SetProfile(&sim.Profile{}, m.profStep)
		m.profMu.Lock()
		m.profThreads = append(m.profThreads, th)
		m.profMu.Unlock()
	}
	return th
}

// SetName labels the thread for the profiler and slow-op dossiers; threads
// with the same name fold together in profile output. Returns the thread so
// creation sites can chain it.
func (t *Thread) SetName(name string) *Thread {
	t.name = name
	return t
}

// Name returns the thread's label ("client" when never set).
func (t *Thread) Name() string {
	if t.name == "" {
		return "client"
	}
	return t.name
}

// Profile returns the thread's sampling profile, or nil when the machine was
// built without EnableProfiler.
func (t *Thread) Profile() *sim.Profile { return t.Clock.Profile() }

// ChargeDRAM charges n DRAM accesses to the thread.
func (t *Thread) ChargeDRAM(n int) { t.Clock.Advance(int64(n) * t.costs.DRAMAccess) }

// ChargeCPU charges n generic CPU work quanta.
func (t *Thread) ChargeCPU(n int) { t.Clock.Advance(int64(n) * t.costs.BranchOp) }

// ChargeAtomic charges one atomic read-modify-write.
func (t *Thread) ChargeAtomic() { t.Clock.Advance(t.costs.AtomicOp) }

// InPhase runs fn and attributes the virtual time it consumed to phase p.
// While fn runs, hardware events issued by this thread are tallied under the
// phase's attribution layer (restoring the previous label on return, so
// phases nest).
func (t *Thread) InPhase(p Phase, fn func()) {
	prev := t.Clock.SetLabel(p.Layer())
	start := t.Clock.Now()
	fn()
	t.phases[p] += t.Clock.Now() - start
	t.Clock.SetLabel(prev)
}

// AddPhase directly attributes ns virtual nanoseconds to phase p.
func (t *Thread) AddPhase(p Phase, ns int64) { t.phases[p] += ns }

// PhaseBreakdown returns the accumulated per-phase accounting.
func (t *Thread) PhaseBreakdown() Breakdown { return t.phases }

// ResetPhases clears the per-phase accounting (between experiment windows).
func (t *Thread) ResetPhases() { t.phases = Breakdown{} }
