// Package sim provides the virtual-time substrate used by the hardware
// models. Real Optane PMem latencies and multi-core contention cannot be
// reproduced faithfully from a garbage-collected runtime on shared hardware,
// so every simulated thread carries its own virtual clock (in nanoseconds)
// and every modelled hardware operation charges a calibrated latency to the
// clock of the thread performing it. Shared resources (mutexes, flush-thread
// pools, PMem write bandwidth) serialize requests in virtual time, which is
// what reproduces the contention collapse the paper measures.
//
// Throughput for an experiment is then ops / (max over threads of final
// virtual time - start), which is deterministic, independent of the host
// machine, and preserves the relative shapes the paper reports.
package sim

import "sync/atomic"

// Clock is one simulated thread's virtual clock. Clocks are advanced only by
// their owning goroutine but read by reporters, so the counter is atomic.
type Clock struct {
	ns atomic.Int64
}

// Now returns the clock's current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.ns.Load() }

// Advance moves the clock forward by d nanoseconds and returns the new time.
func (c *Clock) Advance(d int64) int64 {
	if d < 0 {
		d = 0
	}
	return c.ns.Add(d)
}

// AdvanceTo moves the clock forward to at least t (it never moves backward)
// and returns the resulting time. Used when a thread blocks on a resource
// that frees up at virtual time t.
func (c *Clock) AdvanceTo(t int64) int64 {
	for {
		cur := c.ns.Load()
		if cur >= t {
			return cur
		}
		if c.ns.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Reset rewinds the clock to zero; only used between experiment runs.
func (c *Clock) Reset() { c.ns.Store(0) }
