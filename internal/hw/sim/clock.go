// Package sim provides the virtual-time substrate used by the hardware
// models. Real Optane PMem latencies and multi-core contention cannot be
// reproduced faithfully from a garbage-collected runtime on shared hardware,
// so every simulated thread carries its own virtual clock (in nanoseconds)
// and every modelled hardware operation charges a calibrated latency to the
// clock of the thread performing it. Shared resources (mutexes, flush-thread
// pools, PMem write bandwidth) serialize requests in virtual time, which is
// what reproduces the contention collapse the paper measures.
//
// Throughput for an experiment is then ops / (max over threads of final
// virtual time - start), which is deterministic, independent of the host
// machine, and preserves the relative shapes the paper reports.
package sim

import "sync/atomic"

// Clock is one simulated thread's virtual clock. Clocks are advanced only by
// their owning goroutine but read by reporters, so the counter is atomic.
//
// A clock optionally carries an attribution context for observability: a
// pointer to the machine-wide MemTally and a layer label. Every virtual
// nanosecond the clock advances — and every hardware event the devices charge
// against it — is tallied into the cell for the clock's current label, which
// is how per-layer attribution works without any virtual-time overhead (the
// tally bumps are host-side atomic adds that never advance the clock).
type Clock struct {
	ns    atomic.Int64
	wait  atomic.Int64 // total ns spent blocked (AdvanceTo jumps)
	label atomic.Int32 // attribution layer; 0 = direct/unlabeled
	tally *MemTally    // set once at creation, nil when obs is disabled

	prof     *Profile // virtual-time sampling profile, nil when profiling is off
	profStep int64    // sample period in virtual ns
}

// SetTally attaches the machine-wide tally. It must be called before the
// clock is shared (Machine.NewThread does this at creation).
func (c *Clock) SetTally(t *MemTally) { c.tally = t }

// SetProfile attaches a sampling profile with period stepNs. Like SetTally it
// must be called before the clock is shared; stepNs <= 0 disables sampling.
func (c *Clock) SetProfile(p *Profile, stepNs int64) {
	if p == nil || stepNs <= 0 {
		c.prof, c.profStep = nil, 0
		return
	}
	c.prof, c.profStep = p, stepNs
}

// Profile returns the clock's sampling profile (nil when profiling is off).
func (c *Clock) Profile() *Profile { return c.prof }

// WaitNs returns the total virtual ns this clock spent blocked (the sum of
// all AdvanceTo jumps), for wait-vs-busy splits in op forensics.
func (c *Clock) WaitNs() int64 { return c.wait.Load() }

// SetLabel switches the clock's attribution layer and returns the previous
// label so callers can restore it (labels nest like phases).
func (c *Clock) SetLabel(l int32) int32 {
	prev := c.label.Load()
	c.label.Store(l)
	return prev
}

// Label returns the clock's current attribution layer.
func (c *Clock) Label() int32 { return c.label.Load() }

// Cell returns the tally cell hardware events issued under this clock should
// be charged to, or nil when observability is disabled.
func (c *Clock) Cell() *TallyCell {
	if c.tally == nil {
		return nil
	}
	return c.tally.Cell(c.label.Load())
}

// Now returns the clock's current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.ns.Load() }

// Advance moves the clock forward by d nanoseconds and returns the new time.
func (c *Clock) Advance(d int64) int64 {
	if d < 0 {
		d = 0
	}
	if d > 0 && c.tally != nil {
		c.tally.Cell(c.label.Load()).Ns.Add(d)
	}
	now := c.ns.Add(d)
	if c.prof != nil && d > 0 {
		if k := now/c.profStep - (now-d)/c.profStep; k > 0 {
			c.prof.busy[c.label.Load()].Add(k)
		}
	}
	return now
}

// AdvanceTo moves the clock forward to at least t (it never moves backward)
// and returns the resulting time. Used when a thread blocks on a resource
// that frees up at virtual time t. The jump is tallied as wait time, not
// work, so layer work sums stay meaningful.
func (c *Clock) AdvanceTo(t int64) int64 {
	for {
		cur := c.ns.Load()
		if cur >= t {
			return cur
		}
		if c.ns.CompareAndSwap(cur, t) {
			c.wait.Add(t - cur)
			if c.tally != nil {
				c.tally.Cell(c.label.Load()).WaitNs.Add(t - cur)
			}
			if c.prof != nil {
				if k := t/c.profStep - cur/c.profStep; k > 0 {
					c.prof.wait[c.label.Load()].Add(k)
				}
			}
			return t
		}
	}
}

// Reset rewinds the clock to zero; only used between experiment runs.
func (c *Clock) Reset() { c.ns.Store(0) }
