package sim

// RNG is a small, allocation-free SplitMix64 pseudo-random generator. Every
// simulated thread and every workload generator owns its own RNG seeded
// deterministically, which keeps entire experiments reproducible run-to-run
// (the repository never consults wall-clock time or global randomness).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped so the stream is
// never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
