package sim

import "sync/atomic"

// MaxLayers bounds the attribution-layer space for hardware tallies. Layer 0
// is "direct" (work not inside any named phase); layers 1..N map to the
// platform's phase labels (see hw.Phase.Layer). The array is deliberately a
// little larger than the current phase count so adding a phase never needs a
// tally migration.
const MaxLayers = 16

// TallyCell accumulates the hardware events charged to one attribution layer.
// Every field is monotonically increasing and updated with atomics, so cells
// are safe to bump from any simulated thread.
type TallyCell struct {
	Ns     atomic.Int64 // virtual work ns (Clock.Advance) under this layer
	WaitNs atomic.Int64 // virtual wait ns (Clock.AdvanceTo jumps) under this layer

	// PMem device events (mirrors pmem.Counters, attributed per layer).
	MediaWriteB  atomic.Int64
	MediaReadB   atomic.Int64
	CallerWriteB atomic.Int64
	LineArrivals atomic.Int64
	LineHits     atomic.Int64
	XPLineEvicts atomic.Int64
	RMWEvicts    atomic.Int64

	// LLC write-traffic events.
	LLCWritebackLines atomic.Int64 // dirty lines evicted to PMem by capacity
	LLCFlushLines     atomic.Int64 // dirty lines written back by clflush/clwb
}

// MemTally is one platform's per-layer hardware attribution table. A single
// MemTally is shared by every clock the machine creates (when observability
// is enabled), so summing its cells reproduces the device's global counters
// exactly: every charged event lands in exactly one cell.
type MemTally struct {
	cells [MaxLayers]TallyCell
}

// Cell returns the cell for layer i, clamping out-of-range labels to layer 0
// so a stray label can never index out of bounds.
func (t *MemTally) Cell(i int32) *TallyCell {
	if i < 0 || i >= MaxLayers {
		i = 0
	}
	return &t.cells[i]
}

// LayerCounters is a plain copy of one cell at an instant.
type LayerCounters struct {
	Ns                int64
	WaitNs            int64
	MediaWriteB       int64
	MediaReadB        int64
	CallerWriteB      int64
	LineArrivals      int64
	LineHits          int64
	XPLineEvicts      int64
	RMWEvicts         int64
	LLCWritebackLines int64
	LLCFlushLines     int64
}

// Sub returns the delta c - o.
func (c LayerCounters) Sub(o LayerCounters) LayerCounters {
	return LayerCounters{
		Ns:                c.Ns - o.Ns,
		WaitNs:            c.WaitNs - o.WaitNs,
		MediaWriteB:       c.MediaWriteB - o.MediaWriteB,
		MediaReadB:        c.MediaReadB - o.MediaReadB,
		CallerWriteB:      c.CallerWriteB - o.CallerWriteB,
		LineArrivals:      c.LineArrivals - o.LineArrivals,
		LineHits:          c.LineHits - o.LineHits,
		XPLineEvicts:      c.XPLineEvicts - o.XPLineEvicts,
		RMWEvicts:         c.RMWEvicts - o.RMWEvicts,
		LLCWritebackLines: c.LLCWritebackLines - o.LLCWritebackLines,
		LLCFlushLines:     c.LLCFlushLines - o.LLCFlushLines,
	}
}

// Add returns the sum c + o.
func (c LayerCounters) Add(o LayerCounters) LayerCounters {
	return LayerCounters{
		Ns:                c.Ns + o.Ns,
		WaitNs:            c.WaitNs + o.WaitNs,
		MediaWriteB:       c.MediaWriteB + o.MediaWriteB,
		MediaReadB:        c.MediaReadB + o.MediaReadB,
		CallerWriteB:      c.CallerWriteB + o.CallerWriteB,
		LineArrivals:      c.LineArrivals + o.LineArrivals,
		LineHits:          c.LineHits + o.LineHits,
		XPLineEvicts:      c.XPLineEvicts + o.XPLineEvicts,
		RMWEvicts:         c.RMWEvicts + o.RMWEvicts,
		LLCWritebackLines: c.LLCWritebackLines + o.LLCWritebackLines,
		LLCFlushLines:     c.LLCFlushLines + o.LLCFlushLines,
	}
}

// IsZero reports whether every counter is zero (used to skip empty layers in
// reports).
func (c LayerCounters) IsZero() bool { return c == LayerCounters{} }

// TallySnapshot is a consistent-enough copy of every layer's counters (each
// field individually atomic; per-experiment windows quiesce before reading).
type TallySnapshot [MaxLayers]LayerCounters

// Snapshot copies the tally. Safe on a nil receiver (returns zeros) so
// callers need not special-case obs-disabled machines.
func (t *MemTally) Snapshot() TallySnapshot {
	var s TallySnapshot
	if t == nil {
		return s
	}
	for i := range t.cells {
		c := &t.cells[i]
		s[i] = LayerCounters{
			Ns:                c.Ns.Load(),
			WaitNs:            c.WaitNs.Load(),
			MediaWriteB:       c.MediaWriteB.Load(),
			MediaReadB:        c.MediaReadB.Load(),
			CallerWriteB:      c.CallerWriteB.Load(),
			LineArrivals:      c.LineArrivals.Load(),
			LineHits:          c.LineHits.Load(),
			XPLineEvicts:      c.XPLineEvicts.Load(),
			RMWEvicts:         c.RMWEvicts.Load(),
			LLCWritebackLines: c.LLCWritebackLines.Load(),
			LLCFlushLines:     c.LLCFlushLines.Load(),
		}
	}
	return s
}

// Sub returns the per-layer delta s - o.
func (s TallySnapshot) Sub(o TallySnapshot) TallySnapshot {
	var d TallySnapshot
	for i := range s {
		d[i] = s[i].Sub(o[i])
	}
	return d
}

// Total folds every layer into one LayerCounters.
func (s TallySnapshot) Total() LayerCounters {
	var t LayerCounters
	for i := range s {
		t = t.Add(s[i])
	}
	return t
}
