package sim

import (
	"sync"
	"sync/atomic"
)

// VMutex is a mutex whose critical sections are serialized in *virtual* time.
// A thread that acquires the mutex at virtual time t enters its critical
// section at max(t, time the previous holder released), pays the handoff
// cost, and — when other threads were queued behind it — an additional
// coherence penalty per waiter. This reproduces the paper's Observation 2:
// the shared-MemTable lock makes aggregate write throughput *fall* as user
// threads are added, because every critical section also grows with the
// number of contenders bouncing the lock cacheline.
type VMutex struct {
	mu       sync.Mutex
	freeAt   int64 // virtual time at which the lock becomes free
	start    int64 // virtual time the current holder entered
	held     int64 // waiters observed at acquire (drives the coherence tax)
	waiters  atomic.Int64
	costs    *CostModel
	acquires atomic.Int64
	waitedNs atomic.Int64
}

// NewVMutex returns a virtual mutex charging costs from cm.
func NewVMutex(cm *CostModel) *VMutex { return &VMutex{costs: cm} }

// Lock acquires the mutex on behalf of the thread owning clk. It advances the
// thread's clock over the virtual wait and the acquisition cost, and returns
// the virtual duration spent waiting (for latency breakdowns).
func (m *VMutex) Lock(clk *Clock) int64 {
	m.waiters.Add(1)
	m.mu.Lock()
	w := m.waiters.Add(-1)
	now := clk.Now()
	start := now
	if m.freeAt > start {
		start = m.freeAt
	}
	start += m.costs.LockHandoff + w*m.costs.LockCoherence
	clk.AdvanceTo(start)
	m.start = start
	m.held = w
	waited := start - now
	m.acquires.Add(1)
	m.waitedNs.Add(waited)
	return waited
}

// Unlock releases the mutex; the critical section is everything the thread's
// clock accumulated between Lock and Unlock, inflated by the coherence tax:
// with w threads spinning on the lock and the shared structure's cachelines,
// every access inside the critical section slows down, so the section's
// duration grows with the number of waiters. This is what makes aggregate
// write throughput *fall* as user threads are added to a shared-MemTable
// store (the paper's Figure 5(a)).
func (m *VMutex) Unlock(clk *Clock) {
	hold := clk.Now() - m.start
	if w := m.held; w > 0 && hold > 0 {
		clk.Advance(hold * w * m.costs.ContentionPerMille / 1000)
	}
	m.freeAt = clk.Now()
	m.mu.Unlock()
}

// Stats returns the total acquisitions and cumulative virtual wait.
func (m *VMutex) Stats() (acquires, waitedNs int64) {
	return m.acquires.Load(), m.waitedNs.Load()
}

// ServerPool models k identical background servers (e.g. flush threads) in
// virtual time. Submitting a job at virtual time t with duration d occupies
// the earliest-free server: it starts at max(t, serverFree), and the job
// completes at start+d. Callers that must wait for completion advance their
// own clock to the returned completion time.
type ServerPool struct {
	mu   sync.Mutex
	free []int64 // per-server virtual free time
	busy atomic.Int64
	jobs atomic.Int64
}

// NewServerPool creates a pool with k servers, all free at virtual time 0.
func NewServerPool(k int) *ServerPool {
	if k < 1 {
		k = 1
	}
	return &ServerPool{free: make([]int64, k)}
}

// Submit schedules a job of duration d that becomes runnable at virtual time
// t, and returns the virtual time at which it completes. The caller's clock
// is not advanced: fire-and-forget background work only delays callers that
// later Wait on the returned completion time.
func (p *ServerPool) Submit(t, d int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start := t
	if p.free[best] > start {
		start = p.free[best]
	}
	done := start + d
	p.free[best] = done
	p.jobs.Add(1)
	p.busy.Add(d)
	return done
}

// EarliestFree returns the virtual time at which some server is free.
func (p *ServerPool) EarliestFree() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	min := p.free[0]
	for _, f := range p.free[1:] {
		if f < min {
			min = f
		}
	}
	return min
}

// Size returns the number of servers in the pool.
func (p *ServerPool) Size() int { return len(p.free) }

// Stats returns the number of jobs served and total busy virtual time.
func (p *ServerPool) Stats() (jobs, busyNs int64) { return p.jobs.Load(), p.busy.Load() }

// Bandwidth models a shared pipe (the PMem media write path) with a fixed
// service time per unit. Concurrent users serialize: each transfer starts at
// max(caller time, pipe free time).
type Bandwidth struct {
	mu     sync.Mutex
	freeAt int64
	units  atomic.Int64
}

// Acquire reserves the pipe at virtual time t for units*perUnit nanoseconds
// and returns the completion time.
func (b *Bandwidth) Acquire(t int64, units, perUnit int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := t
	if b.freeAt > start {
		start = b.freeAt
	}
	done := start + units*perUnit
	b.freeAt = done
	b.units.Add(units)
	return done
}

// Units returns the cumulative units transferred.
func (b *Bandwidth) Units() int64 { return b.units.Load() }
