package sim

// CostModel holds every latency constant (virtual nanoseconds) charged by the
// hardware models. The defaults are calibrated from Yang et al., "An
// Empirical Guide to the Behavior and Use of Scalable Persistent Memory"
// (FAST'20), the Intel eADR technical note, and the absolute numbers the
// paper itself reports in Section II. Experiments that want a different
// machine swap in a different model; there is deliberately exactly one place
// where these constants live.
type CostModel struct {
	// CPU cache (the simulated persistent LLC).
	CacheHitRead   int64 // load that hits the LLC
	CacheHitWrite  int64 // store that hits the LLC
	CacheMissExtra int64 // extra line-fill cost on top of the media read
	CacheLineSize  int64 // bytes per cacheline

	// DRAM (native Go structures; charged per logical access).
	DRAMAccess int64 // one DRAM-resident node/field access

	// Optane PMem media and XPBuffer.
	PMemReadSeq   int64 // sequential 256 B media read
	PMemReadRand  int64 // random 256 B media read
	XPBufferHit   int64 // 64 B line arrival that combines into a buffered XPLine
	XPBufferMiss  int64 // line arrival that allocates a fresh XPLine slot
	RMWPenalty    int64 // extra cost when evicting a partially-filled XPLine
	MediaWrite    int64 // writing one full 256 B XPLine to the media (per DIMM)
	XPLineSize    int64 // bytes per XPLine (Optane media access granularity)
	DIMMs         int64 // interleaved DIMM count (bandwidth multiplier)
	InterleaveKiB int64 // interleave stripe size in KiB (4 KiB on Optane)
	XPBufferLines int64 // write-combining window, in XPLines (0 = 64 per DIMM)

	// Instructions.
	CLFlush  int64 // one clflush/clwb of a line, excluding the media cost
	Fence    int64 // sfence/mfence
	NTStore  int64 // one 64 B non-temporal store (bypasses cache)
	AtomicOp int64 // one CAS / fetch-add on a shared word

	// Software costs.
	SyscallWrite       int64 // per-write syscall + kernel I/O stack share (block path)
	ClientOp           int64 // benchmark-client work per op (key gen, dispatch, accounting)
	FlushFixed         int64 // fixed dispatch/metadata cost per background flush job
	FlushBytePerKB     int64 // flush-thread work per KiB copied (allocation, packing, verify)
	LockHandoff        int64 // uncontended mutex acquire/release pair
	LockCoherence      int64 // extra per waiting thread when contended
	ContentionPerMille int64 // critical-section slowdown per waiter (permille of hold time)
	SkiplistVisit      int64 // per-node bookkeeping on top of the memory access
	BranchOp           int64 // generic small CPU work quantum
}

// DefaultCosts returns the calibrated cost model described in DESIGN.md §4.
func DefaultCosts() *CostModel {
	return &CostModel{
		CacheHitRead:   20,
		CacheHitWrite:  8,
		CacheMissExtra: 25,
		CacheLineSize:  64,

		DRAMAccess: 80,

		PMemReadSeq:   170,
		PMemReadRand:  320,
		XPBufferHit:   90,
		XPBufferMiss:  110,
		RMWPenalty:    430,
		MediaWrite:    111,
		XPLineSize:    256,
		DIMMs:         4,
		InterleaveKiB: 4,
		XPBufferLines: 1024,

		CLFlush:  220,
		Fence:    30,
		NTStore:  60,
		AtomicOp: 15,

		SyscallWrite:       700,
		ClientOp:           200,
		FlushFixed:         250_000,
		FlushBytePerKB:     3_500,
		LockHandoff:        25,
		LockCoherence:      60,
		ContentionPerMille: 600,
		SkiplistVisit:      6,
		BranchOp:           2,
	}
}
