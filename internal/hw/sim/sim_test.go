package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	if got := c.Advance(100); got != 100 {
		t.Fatalf("Advance(100) = %d", got)
	}
	if got := c.Advance(-5); got != 100 {
		t.Fatalf("negative Advance moved the clock: %d", got)
	}
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) moved clock backward: %d", got)
	}
	if got := c.AdvanceTo(250); got != 250 {
		t.Fatalf("AdvanceTo(250) = %d", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []int16) bool {
		var c Clock
		prev := int64(0)
		for _, s := range steps {
			now := c.Advance(int64(s))
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVMutexSerializesVirtualTime(t *testing.T) {
	cm := DefaultCosts()
	m := NewVMutex(cm)
	const (
		threads = 8
		iters   = 200
		csWork  = int64(1000)
	)
	clocks := make([]*Clock, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		clocks[i] = &Clock{}
		wg.Add(1)
		go func(clk *Clock) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Lock(clk)
				clk.Advance(csWork)
				m.Unlock(clk)
			}
		}(clocks[i])
	}
	wg.Wait()
	// All critical sections serialize, so the maximum clock must cover at
	// least threads*iters*csWork virtual nanoseconds.
	var max int64
	for _, c := range clocks {
		if c.Now() > max {
			max = c.Now()
		}
	}
	if min := int64(threads * iters * int(csWork)); max < min {
		t.Fatalf("virtual span %d < serialized lower bound %d", max, min)
	}
	acq, _ := m.Stats()
	if acq != threads*iters {
		t.Fatalf("acquires = %d, want %d", acq, threads*iters)
	}
}

func TestServerPoolParallelism(t *testing.T) {
	// Two servers: four unit jobs submitted at t=0 should finish by 2d, not 4d.
	p := NewServerPool(2)
	const d = 100
	var latest int64
	for i := 0; i < 4; i++ {
		if done := p.Submit(0, d); done > latest {
			latest = done
		}
	}
	if latest != 2*d {
		t.Fatalf("4 jobs on 2 servers finished at %d, want %d", latest, 2*d)
	}
	if p.Size() != 2 {
		t.Fatalf("Size() = %d", p.Size())
	}
	jobs, busy := p.Stats()
	if jobs != 4 || busy != 4*d {
		t.Fatalf("Stats() = %d, %d", jobs, busy)
	}
}

func TestServerPoolRespectsReadyTime(t *testing.T) {
	p := NewServerPool(1)
	if done := p.Submit(500, 100); done != 600 {
		t.Fatalf("job ready at 500 finished at %d, want 600", done)
	}
	// Server busy until 600; a job ready at 0 must queue behind it.
	if done := p.Submit(0, 100); done != 700 {
		t.Fatalf("queued job finished at %d, want 700", done)
	}
	if f := p.EarliestFree(); f != 700 {
		t.Fatalf("EarliestFree() = %d", f)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	var b Bandwidth
	if done := b.Acquire(0, 10, 7); done != 70 {
		t.Fatalf("first transfer done at %d", done)
	}
	if done := b.Acquire(0, 1, 7); done != 77 {
		t.Fatalf("second transfer done at %d, want 77", done)
	}
	if done := b.Acquire(1000, 1, 7); done != 1007 {
		t.Fatalf("idle pipe transfer done at %d, want 1007", done)
	}
	if b.Units() != 12 {
		t.Fatalf("Units() = %d", b.Units())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if n := r.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if u := r.Uint64n(3); u >= 3 {
			t.Fatalf("Uint64n out of range: %d", u)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestDefaultCostsSane(t *testing.T) {
	cm := DefaultCosts()
	if cm.XPLineSize != 256 || cm.CacheLineSize != 64 {
		t.Fatalf("granularities wrong: XPLine=%d line=%d", cm.XPLineSize, cm.CacheLineSize)
	}
	if cm.PMemReadSeq <= cm.DRAMAccess {
		t.Fatal("PMem reads must be slower than DRAM")
	}
	if cm.RMWPenalty <= 0 || cm.XPBufferHit <= 0 {
		t.Fatal("write path costs must be positive")
	}
}
