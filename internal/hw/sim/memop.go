package sim

// MemOp classifies the persistence-plane operations software issues against
// the simulated platform. The fault-injection harness numbers these to build
// crash schedules: every mutating MemOp the cache accepts is one crash-point
// event. Reads are classified too (so a frozen platform can serve them
// without installing lines) but are never counted as crash points.
type MemOp int

// The persistence-plane operation kinds. Fences are not a separate kind:
// the model charges the trailing sfence inside the operation that carries it
// (Flush, FlushOpt and NTWrite all end with one), so the completion of such
// an operation is its fence completion — the acknowledgement point crash
// schedules are defined against.
const (
	MemOpRead MemOp = iota
	MemOpWrite
	MemOpNTWrite
	MemOpFlush
	MemOpFlushOpt
	MemOpInvalidate
)

var memOpNames = [...]string{"read", "write", "ntwrite", "flush", "flushopt", "invalidate"}

// String returns the operation's short name.
func (op MemOp) String() string {
	if int(op) < len(memOpNames) {
		return memOpNames[op]
	}
	return "memop?"
}

// MemGate intercepts persistence-plane operations before they take effect.
// It returns how many of the n bytes the operation may apply: n lets the
// operation proceed unchanged, 0 suppresses it entirely, and an intermediate
// value applies only the leading prefix (a torn write at the media's access
// granularity). For MemOpRead the return value is interpreted as a boolean:
// anything less than n serves the read from the currently visible content
// without mutating cache state (no line installs, hence no evictions).
//
// A nil gate — the normal configuration — imposes no interception and no
// overhead. The type lives in sim because both the cache and the device
// import this package, keeping the hook free of import cycles.
type MemGate func(op MemOp, addr uint64, n int) int
