package sim

import "sync/atomic"

// Profile is one clock's virtual-time sampling profile. When a machine has
// profiling enabled, every clock carries a Profile and a sample step S: each
// time the clock crosses a multiple of S while advancing, one sample is
// credited to the clock's current attribution layer — as busy when the
// crossing happened inside Advance (modelled work) or as wait when it
// happened inside AdvanceTo (blocking on a shared resource).
//
// Sampling is driven purely by virtual time, so the profile is a
// deterministic function of the simulated schedule: a clock that ends at time
// T holds exactly floor(T/S) samples, spread across layers in proportion to
// where its virtual time actually went. That exact-count property is the
// profiler's verification invariant (obs.VerifyProfiles).
type Profile struct {
	busy [MaxLayers]atomic.Int64
	wait [MaxLayers]atomic.Int64
}

// Busy returns the busy samples credited to layer.
func (p *Profile) Busy(layer int) int64 {
	if p == nil || layer < 0 || layer >= MaxLayers {
		return 0
	}
	return p.busy[layer].Load()
}

// Wait returns the wait samples credited to layer.
func (p *Profile) Wait(layer int) int64 {
	if p == nil || layer < 0 || layer >= MaxLayers {
		return 0
	}
	return p.wait[layer].Load()
}

// TotalSamples returns the profile's sample count across all layers.
func (p *Profile) TotalSamples() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for i := 0; i < MaxLayers; i++ {
		t += p.busy[i].Load() + p.wait[i].Load()
	}
	return t
}
