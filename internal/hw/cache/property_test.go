package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
)

// TestPropertyCacheContentFidelity checks the cache+PMem stack against a
// shadow byte array under arbitrary interleavings of writes, reads, flushes
// and NT stores: reads must always return the freshest bytes, and after an
// eADR crash the backing store must equal the shadow exactly.
func TestPropertyCacheContentFidelity(t *testing.T) {
	type step struct {
		Op   uint8
		Addr uint16
		Data []byte
	}
	f := func(steps []step, seed uint64) bool {
		cm := sim.DefaultCosts()
		dev := pmem.NewDevice(16<<20, cm)
		c := New(Config{SizeBytes: 16 << 10, Ways: 4, Domain: EADR}, dev, cm)
		var clk sim.Clock
		const span = 1 << 14
		shadow := make([]byte, span+512)
		for _, s := range steps {
			addr := uint64(s.Addr) % span
			data := s.Data
			if len(data) > 256 {
				data = data[:256]
			}
			switch s.Op % 4 {
			case 0:
				c.Write(&clk, addr, data, DefaultPartition)
				copy(shadow[addr:], data)
			case 1:
				buf := make([]byte, len(data))
				c.Read(&clk, addr, buf, DefaultPartition)
				if !bytes.Equal(buf, shadow[addr:addr+uint64(len(data))]) {
					return false
				}
			case 2:
				c.Flush(&clk, addr, len(data))
			case 3:
				c.NTWrite(&clk, addr, data)
				copy(shadow[addr:], data)
			}
		}
		c.Crash() // eADR drains every dirty line
		got := make([]byte, len(shadow))
		dev.LoadRaw(0, got)
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPinnedRegionFidelity does the same through a pseudo-locked
// partition, mixing in hostile traffic on the default partition.
func TestPropertyPinnedRegionFidelity(t *testing.T) {
	f := func(writes [][]byte, seed uint64) bool {
		cm := sim.DefaultCosts()
		dev := pmem.NewDevice(16<<20, cm)
		c := New(Config{SizeBytes: 64 << 10, Ways: 8, Domain: EADR}, dev, cm)
		part, err := c.Reserve(16 << 10)
		if err != nil {
			return false
		}
		var clk sim.Clock
		rng := sim.NewRNG(seed)
		shadow := make([]byte, 16<<10)
		var off uint64
		for _, w := range writes {
			if len(w) == 0 {
				continue
			}
			if len(w) > 128 {
				w = w[:128]
			}
			if off+uint64(len(w)) > uint64(len(shadow)) {
				off = 0
			}
			c.Write(&clk, off, w, part)
			copy(shadow[off:], w)
			off += uint64(len(w))
			// Hostile traffic on the shared partition.
			c.Write(&clk, 1<<20+rng.Uint64n(1<<18), []byte{1}, DefaultPartition)
		}
		// Everything must read back through the pinned partition.
		got := make([]byte, off)
		c.Read(&clk, 0, got, part)
		return bytes.Equal(got, shadow[:off])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCounterInvariants checks the XPBuffer accounting identities:
// hits never exceed arrivals, media writes are whole XPLines covering every
// eviction, and RMW evictions are a subset of evictions.
func TestPropertyCounterInvariants(t *testing.T) {
	f := func(addrs []uint16, sizes []uint8) bool {
		cm := sim.DefaultCosts()
		dev := pmem.NewDevice(16<<20, cm)
		var clk sim.Clock
		for i, a := range addrs {
			n := 64
			if i < len(sizes) {
				n = (int(sizes[i])%8 + 1) * 64
			}
			dev.WriteLines(&clk, uint64(a)*64, make([]byte, n))
		}
		dev.Flush(&clk)
		s := dev.Snapshot()
		if s.LineHits > s.LineArrivals {
			return false
		}
		if s.MediaWriteB != s.XPLineEvicts*cm.XPLineSize {
			return false
		}
		if s.RMWEvicts > s.XPLineEvicts {
			return false
		}
		// Every caller byte is eventually covered by a media write.
		return s.MediaWriteB >= 0 && s.CallerWriteB >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
