package cache

import (
	"bytes"
	"testing"

	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
)

func newLLC(cfg Config) (*LLC, *pmem.Device) {
	cm := sim.DefaultCosts()
	dev := pmem.NewDevice(256<<20, cm)
	return New(cfg, dev, cm), dev
}

func smallCfg(domain Domain) Config {
	// 64 KiB, 4-way: tiny enough to force evictions quickly in tests.
	return Config{SizeBytes: 64 << 10, Ways: 4, Domain: domain}
}

func TestWriteReadThroughCache(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	var clk sim.Clock
	data := []byte("hello persistent caches")
	c.Write(&clk, 1000, data, DefaultPartition)
	got := make([]byte, len(data))
	c.Read(&clk, 1000, got, DefaultPartition)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestUnalignedWriteSpanningLines(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	var clk sim.Clock
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	c.Write(&clk, 77, data, DefaultPartition) // crosses several line boundaries
	got := make([]byte, len(data))
	c.Read(&clk, 77, got, DefaultPartition)
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned span corrupted")
	}
}

func TestDirtyLineNotVisibleToPMemUntilWriteback(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	c.Write(&clk, 4096, []byte("dirty"), DefaultPartition)
	raw := make([]byte, 5)
	dev.LoadRaw(4096, raw)
	if bytes.Equal(raw, []byte("dirty")) {
		t.Fatal("store reached media without writeback")
	}
	c.Flush(&clk, 4096, 5)
	dev.LoadRaw(4096, raw)
	if !bytes.Equal(raw, []byte("dirty")) {
		t.Fatal("clflush did not persist the line")
	}
}

func TestFlushOptKeepsLineResident(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	var clk sim.Clock
	c.Write(&clk, 4096, []byte("x"), DefaultPartition)
	c.FlushOpt(&clk, 4096, 1)
	present, dirty := c.Contains(4096)
	if !present || dirty {
		t.Fatalf("after clwb: present=%v dirty=%v, want present clean", present, dirty)
	}
	c.Flush(&clk, 4096, 1)
	if present, _ := c.Contains(4096); present {
		t.Fatal("clflush must invalidate")
	}
}

func TestCapacityEvictionWritesBack(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	// Dirty far more lines than the cache holds; evictions must push content
	// to the PMem.
	for i := 0; i < 4096; i++ {
		addr := uint64(i) * 64
		c.Write(&clk, addr, []byte{byte(i), byte(i >> 8)}, DefaultPartition)
	}
	st := c.Stats()
	if st.Writebacks == 0 {
		t.Fatal("no writebacks despite capacity pressure")
	}
	// Early lines must have been evicted and be readable from raw media.
	raw := make([]byte, 2)
	dev.LoadRaw(0, raw)
	if raw[0] != 0 || raw[1] != 0 {
		// line at addr 0 holds bytes {0,0}; check line 1 instead
	}
	dev.LoadRaw(64, raw)
	if raw[0] != 1 {
		t.Fatalf("evicted content not on media: %v", raw)
	}
}

func TestPartitionPseudoLocking(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	var clk sim.Clock
	part, err := c.Reserve(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Install pinned lines across the partition.
	pinned := make([]uint64, 0, 128)
	for i := 0; i < 128; i++ {
		addr := uint64(i) * 64
		c.Write(&clk, addr, []byte{0xAA}, part)
		pinned = append(pinned, addr)
	}
	// Blast the default partition with enough traffic to churn it many times.
	for i := 0; i < 1<<15; i++ {
		addr := uint64(1<<20) + uint64(i)*64
		c.Write(&clk, addr, []byte{1}, DefaultPartition)
	}
	for _, addr := range pinned {
		if present, _ := c.Contains(addr); !present {
			t.Fatalf("pinned line %#x was evicted by default-partition traffic", addr)
		}
	}
}

func TestReserveExhaustion(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	// 4 ways total; reserving everything must fail (default needs >=1 way).
	if _, err := c.Reserve(c.SizeBytes()); err == nil {
		t.Fatal("reserving the whole cache should fail")
	}
	p, err := c.Reserve(c.SizeBytes() / 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PartitionBytes(p); got < c.SizeBytes()/4 {
		t.Fatalf("partition too small: %d", got)
	}
}

func TestReleaseReturnsWays(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	before := c.PartitionBytes(DefaultPartition)
	p, err := c.Reserve(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.PartitionBytes(DefaultPartition) >= before {
		t.Fatal("reserve did not shrink default partition")
	}
	c.Release(p)
	if c.PartitionBytes(DefaultPartition) != before {
		t.Fatal("release did not restore default partition")
	}
}

func TestNTWriteBypassesCache(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 3)
	}
	c.NTWrite(&clk, 8192, data)
	if present, _ := c.Contains(8192); present {
		t.Fatal("NT store installed a cacheline")
	}
	raw := make([]byte, len(data))
	dev.LoadRaw(8192, raw)
	if !bytes.Equal(raw, data) {
		t.Fatal("NT store content missing from media")
	}
}

func TestNTWriteFullLinesNoAmplification(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	before := dev.Snapshot()
	data := make([]byte, 1<<20) // 1 MiB aligned NT copy, like a copy-based flush
	c.NTWrite(&clk, 1<<20, data)
	dev.Flush(&clk)
	delta := dev.Snapshot().Sub(before)
	if delta.RMWEvicts != 0 {
		t.Fatalf("aligned NT copy caused %d RMWs", delta.RMWEvicts)
	}
	if wa := delta.WriteAmplification(); wa > 1.01 {
		t.Fatalf("aligned NT copy amplification %v", wa)
	}
}

func TestNTWriteUnalignedPreservesNeighbors(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	// Pre-persist neighbor bytes.
	edge := make([]byte, 64)
	for i := range edge {
		edge[i] = 0xEE
	}
	c.NTWrite(&clk, 0, edge)
	// Unaligned NT write inside the line must not clobber the rest.
	c.NTWrite(&clk, 10, []byte{1, 2, 3})
	raw := make([]byte, 64)
	dev.LoadRaw(0, raw)
	if raw[9] != 0xEE || raw[13] != 0xEE {
		t.Fatalf("NT edge write clobbered neighbors: % x", raw[:16])
	}
	if raw[10] != 1 || raw[12] != 3 {
		t.Fatalf("NT payload missing: % x", raw[8:16])
	}
}

func TestCrashEADRDrainsDirtyLines(t *testing.T) {
	c, dev := newLLC(smallCfg(EADR))
	var clk sim.Clock
	c.Write(&clk, 4096, []byte("survive"), DefaultPartition)
	c.Crash()
	raw := make([]byte, 7)
	dev.LoadRaw(4096, raw)
	if !bytes.Equal(raw, []byte("survive")) {
		t.Fatalf("eADR crash lost dirty data: %q", raw)
	}
	if present, _ := c.Contains(4096); present {
		t.Fatal("cache must be cold after crash")
	}
}

func TestCrashADRDropsDirtyLines(t *testing.T) {
	c, dev := newLLC(smallCfg(ADR))
	var clk sim.Clock
	// Persist a baseline value, then overwrite in cache without flushing.
	c.Write(&clk, 4096, []byte("old"), DefaultPartition)
	c.Flush(&clk, 4096, 3)
	c.Write(&clk, 4096, []byte("new"), DefaultPartition)
	c.Crash()
	raw := make([]byte, 3)
	dev.LoadRaw(4096, raw)
	if !bytes.Equal(raw, []byte("old")) {
		t.Fatalf("ADR crash preserved unflushed write: %q", raw)
	}
}

func TestDomainString(t *testing.T) {
	if ADR.String() != "ADR" || EADR.String() != "eADR" {
		t.Fatal("Domain.String wrong")
	}
}

func TestStatsHitMissAccounting(t *testing.T) {
	c, _ := newLLC(smallCfg(EADR))
	var clk sim.Clock
	c.Write(&clk, 0, make([]byte, 64), DefaultPartition) // miss (full line)
	c.Write(&clk, 0, []byte{1}, DefaultPartition)        // hit
	buf := make([]byte, 1)
	c.Read(&clk, 0, buf, DefaultPartition) // hit
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
}
