package cache

import (
	"testing"

	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
)

func BenchmarkCacheWrite64(b *testing.B) {
	cm := sim.DefaultCosts()
	dev := pmem.NewDevice(256<<20, cm)
	c := New(DefaultConfig(), dev, cm)
	var clk sim.Clock
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(&clk, uint64(i%1000000)*64, buf, DefaultPartition)
	}
}

func BenchmarkNTWrite4K(b *testing.B) {
	cm := sim.DefaultCosts()
	dev := pmem.NewDevice(256<<20, cm)
	c := New(DefaultConfig(), dev, cm)
	var clk sim.Clock
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NTWrite(&clk, uint64(i%10000)*4096, buf)
	}
}
