// Package cache models the shared last-level CPU cache that the eADR-enabled
// platform turns into persistent storage. It is a set-associative write-back
// cache of 64 B lines with:
//
//   - per-set LRU replacement (the source of the paper's Figure 3(c) problem:
//     capacity evictions push isolated 64 B lines into the PMem and reawaken
//     write amplification);
//   - Intel CAT-style way partitioning with pseudo-locking — a reserved
//     partition's lines are never victims of ordinary replacement, which is
//     how CacheKV pins its sub-MemTable pool;
//   - explicit clflush / clwb / invalidate, and a non-temporal store path
//     that bypasses the cache entirely;
//   - a persistence-domain switch: on simulated power failure, eADR drains
//     every dirty line into the PMem device while ADR discards them.
//
// Dirty lines hold their own 64-byte payload; the PMem backing array only
// sees bytes when a line is written back. That separation is what makes
// crash simulation honest: under ADR, un-flushed stores genuinely vanish.
package cache

import (
	"fmt"
	"sync"

	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
)

// Domain selects the persistence domain of the platform.
type Domain int

const (
	// ADR keeps only the memory controller write-pending queue and the PMem
	// in the persistence domain: CPU caches are volatile and software must
	// clflush/clwb explicitly.
	ADR Domain = iota
	// EADR extends the persistence domain up to the CPU caches: dirty lines
	// survive power failure and flush instructions become unnecessary.
	EADR
)

func (d Domain) String() string {
	if d == EADR {
		return "eADR"
	}
	return "ADR"
}

const lineSize = 64

// PartitionID names a CAT allocation class. DefaultPartition is the shared
// pool every ordinary access uses.
type PartitionID int

// DefaultPartition is the unreserved portion of the cache.
const DefaultPartition PartitionID = 0

type line struct {
	addr      uint64 // line-aligned address; valid only when present
	present   bool
	dirty     bool
	partition PartitionID
	lruTick   uint64
	data      [lineSize]byte
}

type set struct {
	mu   sync.Mutex
	ways []line
	tick uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64 // capacity evictions (dirty or clean)
	Writebacks int64 // dirty lines pushed to PMem by eviction
	Flushes    int64 // lines written back by explicit clflush/clwb
}

// partition describes a contiguous run of ways granted to one allocation
// class, mirroring a CAT way mask.
type partition struct {
	firstWay, nWays int
	locked          bool // pseudo-locked: immune to ordinary replacement
}

// lockedRegion is the storage behind a pseudo-locked partition. Cache
// Pseudo-Locking guarantees that nothing else can evict the locked lines and
// the locked working set fits by construction, so the model keeps them in a
// dedicated exact-fit store instead of the hashed set array. Should a caller
// overcommit, the oldest line is written back FIFO (and counted) rather than
// corrupting anything.
type lockedRegion struct {
	mu       sync.Mutex
	capLines int
	lines    map[uint64]*line
	fifo     []uint64
	overflow int64
}

// LLC is the modelled last-level cache.
type LLC struct {
	costs  *sim.CostModel
	dev    *pmem.Device
	domain Domain

	nSets int
	nWays int
	sets  []set

	partMu     sync.Mutex
	partitions []partition
	locked     map[PartitionID]*lockedRegion

	// gate, when non-nil, intercepts every persistence-plane operation the
	// cache accepts (see sim.MemGate). The fault-injection harness installs
	// it to number crash-point events and to freeze the platform at a chosen
	// one; ordinary operation leaves it nil.
	gateMu sync.RWMutex
	gate   sim.MemGate

	statMu sync.Mutex
	stats  Stats
}

// Config sizes the cache. The paper's testbed LLC is 36 MB with (typically)
// 12 ways; experiments that restrict CacheKV to 3-30 MB do so with CAT
// partitions, not by shrinking the cache.
type Config struct {
	SizeBytes int
	Ways      int
	Domain    Domain
}

// DefaultConfig returns the paper's 36 MB, 12-way LLC in eADR mode.
func DefaultConfig() Config { return Config{SizeBytes: 36 << 20, Ways: 12, Domain: EADR} }

// New creates an LLC bound to the given PMem device.
func New(cfg Config, dev *pmem.Device, cm *sim.CostModel) *LLC {
	if cm == nil {
		cm = sim.DefaultCosts()
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 12
	}
	nSets := cfg.SizeBytes / (cfg.Ways * lineSize)
	if nSets < 1 {
		nSets = 1
	}
	c := &LLC{
		costs:  cm,
		dev:    dev,
		domain: cfg.Domain,
		nSets:  nSets,
		nWays:  cfg.Ways,
		sets:   make([]set, nSets),
		// Partition 0 initially owns every way.
		partitions: []partition{{firstWay: 0, nWays: cfg.Ways}},
		locked:     make(map[PartitionID]*lockedRegion),
	}
	for i := range c.sets {
		c.sets[i].ways = make([]line, cfg.Ways)
	}
	return c
}

// Domain returns the configured persistence domain.
func (c *LLC) Domain() Domain { return c.domain }

// SetGate installs g as the persistence-operation gate (nil removes it).
// Crash-schedule exploration uses the gate to number and suppress operations;
// see sim.MemGate for the interception contract.
func (c *LLC) SetGate(g sim.MemGate) {
	c.gateMu.Lock()
	c.gate = g
	c.gateMu.Unlock()
}

// gateOp consults the installed gate, returning the permitted byte count
// (n when no gate is installed).
func (c *LLC) gateOp(op sim.MemOp, addr uint64, n int) int {
	c.gateMu.RLock()
	g := c.gate
	c.gateMu.RUnlock()
	if g == nil {
		return n
	}
	return g(op, addr, n)
}

// SizeBytes returns the total cache capacity.
func (c *LLC) SizeBytes() int { return c.nSets * c.nWays * lineSize }

// PartitionBytes returns the capacity granted to partition p.
func (c *LLC) PartitionBytes(p PartitionID) int {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	return c.partitions[p].nWays * c.nSets * lineSize
}

// Reserve carves a pseudo-locked CAT partition of at least sizeBytes out of
// the default partition's ways and returns its ID. Lines installed under the
// returned partition are never victims of ordinary replacement. It fails if
// the default partition would drop below one way.
func (c *LLC) Reserve(sizeBytes int) (PartitionID, error) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	perWay := c.nSets * lineSize
	ways := (sizeBytes + perWay - 1) / perWay
	if ways < 1 {
		ways = 1
	}
	def := &c.partitions[DefaultPartition]
	if def.nWays-ways < 1 {
		return 0, fmt.Errorf("cache: cannot reserve %d ways, only %d available", ways, def.nWays-1)
	}
	// Take ways from the top of the default range.
	def.nWays -= ways
	c.partitions = append(c.partitions, partition{
		firstWay: def.firstWay + def.nWays,
		nWays:    ways,
		locked:   true,
	})
	id := PartitionID(len(c.partitions) - 1)
	c.locked[id] = &lockedRegion{
		capLines: ways * c.nSets,
		lines:    make(map[uint64]*line),
	}
	return id, nil
}

// Release returns a reserved partition's ways to the default pool and drops
// (without writeback) any lines it still holds; callers flush first if the
// contents matter.
func (c *LLC) Release(p PartitionID) {
	if p == DefaultPartition {
		return
	}
	c.partMu.Lock()
	part := c.partitions[p]
	c.partitions[p].nWays = 0
	c.partitions[p].locked = false
	if part.firstWay == c.partitions[DefaultPartition].firstWay+c.partitions[DefaultPartition].nWays {
		c.partitions[DefaultPartition].nWays += part.nWays
	}
	delete(c.locked, p)
	c.partMu.Unlock()
}

// lockedFor returns the locked region backing p, or nil for unlocked
// partitions.
func (c *LLC) lockedFor(p PartitionID) *lockedRegion {
	if p == DefaultPartition {
		return nil
	}
	c.partMu.Lock()
	defer c.partMu.Unlock()
	return c.locked[p]
}

func (c *LLC) waysFor(p PartitionID) (first, n int) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	part := c.partitions[p]
	return part.firstWay, part.nWays
}

// setFor hashes the line address to a set. Modern LLCs select slice and set
// through an address hash, so consecutive lines land in unrelated sets —
// which is why capacity evictions emit cachelines in a shuffled order and
// reawaken write amplification once flush instructions are removed (the
// paper's Figure 3(c) / Observation 1: "the small-sized and randomized
// eviction will amplify the internal write traffic").
func (c *LLC) setFor(addr uint64) *set {
	line := addr / lineSize
	line ^= line >> 17
	line *= 0x9E3779B97F4A7C15
	line ^= line >> 29
	return &c.sets[line%uint64(c.nSets)]
}

// findWay locates addr within the set, searching every way (an address may
// have been installed under any partition).
func findWay(s *set, addr uint64) int {
	for i := range s.ways {
		if s.ways[i].present && s.ways[i].addr == addr {
			return i
		}
	}
	return -1
}

// victimWay picks the least-recently-used way within the partition's range.
func (c *LLC) victimWay(s *set, p PartitionID) int {
	first, n := c.waysFor(p)
	best := -1
	for w := first; w < first+n; w++ {
		if !s.ways[w].present {
			return w
		}
		if best == -1 || s.ways[w].lruTick < s.ways[best].lruTick {
			best = w
		}
	}
	return best
}

// install places addr into the set under partition p, evicting the LRU line
// of that partition if necessary. Returns the way index. The set lock must be
// held; eviction writeback is performed with the lock held (the model
// tolerates this because WriteLines never re-enters the cache).
func (c *LLC) install(clk *sim.Clock, s *set, addr uint64, p PartitionID) int {
	w := c.victimWay(s, p)
	if w < 0 {
		panic("cache: partition has no ways")
	}
	v := &s.ways[w]
	if v.present {
		c.statMu.Lock()
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
		c.statMu.Unlock()
		if v.dirty {
			if cell := clk.Cell(); cell != nil {
				cell.LLCWritebackLines.Add(1)
			}
			c.dev.WriteLines(clk, v.addr, v.data[:])
		}
	}
	s.tick++
	*v = line{addr: addr, present: true, partition: p, lruTick: s.tick}
	return w
}

// Write stores data at addr through the cache under partition p. Partial-line
// writes to absent lines fetch the line from PMem first (write-allocate).
// data need not be aligned.
func (c *LLC) Write(clk *sim.Clock, addr uint64, data []byte, p PartitionID) {
	if n := c.gateOp(sim.MemOpWrite, addr, len(data)); n < len(data) {
		if n <= 0 {
			return
		}
		data = data[:n]
	}
	for len(data) > 0 {
		base := addr &^ (lineSize - 1)
		off := int(addr - base)
		n := lineSize - off
		if n > len(data) {
			n = len(data)
		}
		c.writeLine(clk, base, off, data[:n], p)
		addr += uint64(n)
		data = data[n:]
	}
}

func (c *LLC) writeLine(clk *sim.Clock, base uint64, off int, data []byte, p PartitionID) {
	if lr := c.lockedFor(p); lr != nil {
		c.lockedWrite(clk, lr, base, off, data)
		return
	}
	s := c.setFor(base)
	s.mu.Lock()
	w := findWay(s, base)
	if w >= 0 {
		c.statMu.Lock()
		c.stats.Hits++
		c.statMu.Unlock()
		clk.Advance(c.costs.CacheHitWrite)
	} else {
		c.statMu.Lock()
		c.stats.Misses++
		c.statMu.Unlock()
		w = c.install(clk, s, base, p)
		if off != 0 || len(data) != lineSize {
			// Write-allocate: fetch the rest of the line from the media.
			s.mu.Unlock()
			var fill [lineSize]byte
			c.dev.Read(clk, base, fill[:])
			s.mu.Lock()
			// Re-find: the line may have moved while unlocked.
			w = findWay(s, base)
			if w < 0 {
				w = c.install(clk, s, base, p)
			}
			if !s.ways[w].dirty {
				s.ways[w].data = fill
			}
		}
		clk.Advance(c.costs.CacheHitWrite + c.costs.CacheMissExtra)
	}
	ln := &s.ways[w]
	copy(ln.data[off:], data)
	ln.dirty = true
	s.tick++
	ln.lruTick = s.tick
	s.mu.Unlock()
}

// Read loads len(buf) bytes at addr through the cache under partition p.
func (c *LLC) Read(clk *sim.Clock, addr uint64, buf []byte, p PartitionID) {
	if c.gateOp(sim.MemOpRead, addr, len(buf)) < len(buf) {
		// Frozen platform: serve the currently visible content without
		// installing lines, so the read causes no eviction writebacks.
		c.readBypass(addr, buf)
		return
	}
	for len(buf) > 0 {
		base := addr &^ (lineSize - 1)
		off := int(addr - base)
		n := lineSize - off
		if n > len(buf) {
			n = len(buf)
		}
		c.readLine(clk, base, off, buf[:n], p)
		addr += uint64(n)
		buf = buf[n:]
	}
}

func (c *LLC) readLine(clk *sim.Clock, base uint64, off int, buf []byte, p PartitionID) {
	if lr := c.lockedFor(p); lr != nil {
		c.lockedRead(clk, lr, base, off, buf)
		return
	}
	s := c.setFor(base)
	s.mu.Lock()
	if w := findWay(s, base); w >= 0 {
		c.statMu.Lock()
		c.stats.Hits++
		c.statMu.Unlock()
		copy(buf, s.ways[w].data[off:])
		s.tick++
		s.ways[w].lruTick = s.tick
		s.mu.Unlock()
		clk.Advance(c.costs.CacheHitRead)
		return
	}
	c.statMu.Lock()
	c.stats.Misses++
	c.statMu.Unlock()
	s.mu.Unlock()

	var fill [lineSize]byte
	c.dev.Read(clk, base, fill[:])

	s.mu.Lock()
	w := findWay(s, base)
	if w < 0 {
		w = c.install(clk, s, base, p)
		s.ways[w].data = fill
	}
	copy(buf, s.ways[w].data[off:])
	s.tick++
	s.ways[w].lruTick = s.tick
	s.mu.Unlock()
	clk.Advance(c.costs.CacheHitRead + c.costs.CacheMissExtra)
}

// readBypass serves a read from the currently visible content — the cached
// line when present, the media backing otherwise — without installing lines
// or touching LRU state. The gate's freeze mode uses it so that reads issued
// after the crash point cannot mutate what is durable.
func (c *LLC) readBypass(addr uint64, buf []byte) {
	for len(buf) > 0 {
		base := addr &^ (lineSize - 1)
		off := int(addr - base)
		n := lineSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if ln, ok := c.peekLine(base); ok {
			copy(buf[:n], ln[off:])
		} else {
			c.dev.LoadRaw(addr, buf[:n])
		}
		addr += uint64(n)
		buf = buf[n:]
	}
}

// lockedWrite stores into a pseudo-locked region's line, allocating it on
// first touch (with write-allocate fill for partial first writes).
func (c *LLC) lockedWrite(clk *sim.Clock, lr *lockedRegion, base uint64, off int, data []byte) {
	lr.mu.Lock()
	ln, ok := lr.lines[base]
	if !ok {
		if len(lr.lines) >= lr.capLines {
			// Overcommit: FIFO-writeback the oldest locked line.
			for len(lr.fifo) > 0 {
				old := lr.fifo[0]
				lr.fifo = lr.fifo[1:]
				if v, present := lr.lines[old]; present {
					if v.dirty {
						if cell := clk.Cell(); cell != nil {
							cell.LLCWritebackLines.Add(1)
						}
						c.dev.WriteLines(clk, old, v.data[:])
					}
					delete(lr.lines, old)
					lr.overflow++
					break
				}
			}
		}
		ln = &line{addr: base, present: true}
		if off != 0 || len(data) != lineSize {
			lr.mu.Unlock()
			var fill [lineSize]byte
			c.dev.Read(clk, base, fill[:])
			lr.mu.Lock()
			if existing, present := lr.lines[base]; present {
				ln = existing
			} else {
				ln.data = fill
			}
		}
		if _, present := lr.lines[base]; !present {
			lr.lines[base] = ln
			lr.fifo = append(lr.fifo, base)
		}
		clk.Advance(c.costs.CacheHitWrite + c.costs.CacheMissExtra)
	} else {
		clk.Advance(c.costs.CacheHitWrite)
	}
	copy(ln.data[off:], data)
	ln.dirty = true
	lr.mu.Unlock()
}

// lockedRead loads from a pseudo-locked region, filling from media on a miss.
func (c *LLC) lockedRead(clk *sim.Clock, lr *lockedRegion, base uint64, off int, buf []byte) {
	lr.mu.Lock()
	if ln, ok := lr.lines[base]; ok {
		copy(buf, ln.data[off:])
		lr.mu.Unlock()
		clk.Advance(c.costs.CacheHitRead)
		return
	}
	lr.mu.Unlock()
	var fill [lineSize]byte
	c.dev.Read(clk, base, fill[:])
	lr.mu.Lock()
	ln, ok := lr.lines[base]
	if !ok {
		ln = &line{addr: base, present: true, data: fill}
		lr.lines[base] = ln
		lr.fifo = append(lr.fifo, base)
	}
	copy(buf, ln.data[off:])
	lr.mu.Unlock()
	clk.Advance(c.costs.CacheHitRead + c.costs.CacheMissExtra)
}

// lockedRegions snapshots the live locked regions.
func (c *LLC) lockedRegions() []*lockedRegion {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	out := make([]*lockedRegion, 0, len(c.locked))
	for _, lr := range c.locked {
		out = append(out, lr)
	}
	return out
}

// Flush performs clflush over [addr, addr+n): dirty lines are written back to
// the PMem (arriving at the XPBuffer in ascending address order, which is
// what lets adjacent lines combine) and every touched line is invalidated.
func (c *LLC) Flush(clk *sim.Clock, addr uint64, n int) {
	if g := c.gateOp(sim.MemOpFlush, addr, n); g < n {
		// A torn flush writes back only the leading lines: the crash landed
		// mid-loop, before the trailing fence completed.
		if g <= 0 {
			return
		}
		n = g
	}
	c.flushRange(clk, addr, n, true)
}

// FlushOpt performs clwb: dirty lines are written back but remain valid
// (clean) in the cache.
func (c *LLC) FlushOpt(clk *sim.Clock, addr uint64, n int) {
	if g := c.gateOp(sim.MemOpFlushOpt, addr, n); g < n {
		if g <= 0 {
			return
		}
		n = g
	}
	c.flushRange(clk, addr, n, false)
}

func (c *LLC) flushRange(clk *sim.Clock, addr uint64, n int, invalidate bool) {
	if n <= 0 {
		return
	}
	first := addr &^ (lineSize - 1)
	last := (addr + uint64(n) - 1) &^ (lineSize - 1)
	regions := c.lockedRegions()
	for base := first; ; base += lineSize {
		s := c.setFor(base)
		s.mu.Lock()
		if w := findWay(s, base); w >= 0 {
			ln := &s.ways[w]
			if ln.dirty {
				c.statMu.Lock()
				c.stats.Flushes++
				c.statMu.Unlock()
				if cell := clk.Cell(); cell != nil {
					cell.LLCFlushLines.Add(1)
				}
				c.dev.WriteLines(clk, base, ln.data[:])
				ln.dirty = false
			}
			if invalidate {
				*ln = line{}
			}
		}
		s.mu.Unlock()
		for _, lr := range regions {
			lr.mu.Lock()
			if ln, ok := lr.lines[base]; ok {
				if ln.dirty {
					c.statMu.Lock()
					c.stats.Flushes++
					c.statMu.Unlock()
					if cell := clk.Cell(); cell != nil {
						cell.LLCFlushLines.Add(1)
					}
					c.dev.WriteLines(clk, base, ln.data[:])
					ln.dirty = false
				}
				if invalidate {
					delete(lr.lines, base)
				}
			}
			lr.mu.Unlock()
		}
		clk.Advance(c.costs.CLFlush)
		if base == last {
			break
		}
	}
	clk.Advance(c.costs.Fence)
}

// Invalidate drops lines in [addr, addr+n) without writing them back. It
// models reusing a region whose contents were already copied elsewhere.
func (c *LLC) Invalidate(addr uint64, n int) {
	if c.gateOp(sim.MemOpInvalidate, addr, n) < n {
		return
	}
	c.invalidate(addr, n)
}

// invalidate is Invalidate without gate interception; internal paths that
// already passed the gate (NTWrite) use it.
func (c *LLC) invalidate(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr &^ (lineSize - 1)
	last := (addr + uint64(n) - 1) &^ (lineSize - 1)
	regions := c.lockedRegions()
	for base := first; ; base += lineSize {
		s := c.setFor(base)
		s.mu.Lock()
		if w := findWay(s, base); w >= 0 {
			s.ways[w] = line{}
		}
		s.mu.Unlock()
		for _, lr := range regions {
			lr.mu.Lock()
			delete(lr.lines, base)
			lr.mu.Unlock()
		}
		if base == last {
			break
		}
	}
}

// NTWrite stores data at addr with non-temporal semantics: the cache is
// bypassed (stale copies are dropped) and full cachelines stream straight
// into the PMem's XPBuffer, which is why a sub-MemTable-sized NT copy fills
// whole XPLines and avoids read-modify-write amplification.
func (c *LLC) NTWrite(clk *sim.Clock, addr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	if n := c.gateOp(sim.MemOpNTWrite, addr, len(data)); n < len(data) {
		if n <= 0 {
			return
		}
		data = data[:n]
	}
	// Align the bulk of the transfer to cachelines; ragged edges pay a
	// read-modify-write at line granularity. Edge bytes are merged from the
	// *visible* content — dirty cache lines included — not the stale backing.
	base := addr &^ (lineSize - 1)
	head := int(addr - base)
	padded := head + len(data)
	if rem := padded % lineSize; rem != 0 {
		padded += lineSize - rem
	}
	buf := make([]byte, padded)
	if head > 0 || padded != len(data) {
		c.dev.LoadRaw(base, buf)
		if ln, ok := c.peekLine(base); ok {
			copy(buf[:lineSize], ln)
		}
		lastBase := base + uint64(padded) - lineSize
		if lastBase != base {
			if ln, ok := c.peekLine(lastBase); ok {
				copy(buf[padded-lineSize:], ln)
			}
		}
	}
	copy(buf[head:], data)
	// Stale cached copies are dropped only after the edge merge read them.
	c.invalidate(addr, len(data))
	lines := padded / lineSize
	clk.Advance(int64(lines) * c.costs.NTStore)
	c.dev.WriteLinesPipelined(clk, base, buf)
	clk.Advance(c.costs.Fence)
}

// peekLine returns a copy of the line's current cached content, searching
// both the set array and every locked region.
func (c *LLC) peekLine(base uint64) ([]byte, bool) {
	s := c.setFor(base)
	s.mu.Lock()
	if w := findWay(s, base); w >= 0 {
		out := make([]byte, lineSize)
		copy(out, s.ways[w].data[:])
		s.mu.Unlock()
		return out, true
	}
	s.mu.Unlock()
	for _, lr := range c.lockedRegions() {
		lr.mu.Lock()
		if ln, ok := lr.lines[base]; ok {
			out := make([]byte, lineSize)
			copy(out, ln.data[:])
			lr.mu.Unlock()
			return out, true
		}
		lr.mu.Unlock()
	}
	return nil, false
}

// Contains reports whether addr's line is present (and if so, dirty). Tests
// and crash accounting use it; engines must not.
func (c *LLC) Contains(addr uint64) (present, dirty bool) {
	base := addr &^ (lineSize - 1)
	s := c.setFor(base)
	s.mu.Lock()
	if w := findWay(s, base); w >= 0 {
		d := s.ways[w].dirty
		s.mu.Unlock()
		return true, d
	}
	s.mu.Unlock()
	for _, lr := range c.lockedRegions() {
		lr.mu.Lock()
		if ln, ok := lr.lines[base]; ok {
			d := ln.dirty
			lr.mu.Unlock()
			return true, d
		}
		lr.mu.Unlock()
	}
	return false, false
}

// Crash applies the persistence-domain rule at power failure. Under eADR all
// dirty lines drain to the PMem backing (content only — the event counters do
// not move, as the platform does this with stored energy, not software).
// Under ADR dirty lines are discarded. In both cases the cache ends empty.
func (c *LLC) Crash() {
	for i := range c.sets {
		s := &c.sets[i]
		s.mu.Lock()
		for w := range s.ways {
			ln := &s.ways[w]
			if ln.present && ln.dirty && c.domain == EADR {
				c.dev.StoreRaw(ln.addr, ln.data[:])
			}
			*ln = line{}
		}
		s.mu.Unlock()
	}
	for _, lr := range c.lockedRegions() {
		lr.mu.Lock()
		for addr, ln := range lr.lines {
			if ln.dirty && c.domain == EADR {
				c.dev.StoreRaw(addr, ln.data[:])
			}
			delete(lr.lines, addr)
		}
		lr.fifo = lr.fifo[:0]
		lr.mu.Unlock()
	}
}

// Stats returns a copy of the event counters.
func (c *LLC) Stats() Stats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.stats
}
