package hw

import (
	"bytes"
	"testing"

	"cachekv/internal/hw/cache"
)

func testCfg(domain cache.Domain) Config {
	cfg := DefaultConfig()
	cfg.PMemBytes = 64 << 20
	cfg.Cache = cache.Config{SizeBytes: 256 << 10, Ways: 8, Domain: domain}
	return cfg
}

func TestAllocRegions(t *testing.T) {
	m := NewMachine(testCfg(cache.EADR))
	a := m.Alloc("pool", 1<<20, 0)
	b := m.Alloc("wal", 1<<20, 4096)
	if a.Addr == 0 {
		t.Fatal("region at address zero")
	}
	if b.Addr < a.End() {
		t.Fatalf("regions overlap: %+v %+v", a, b)
	}
	if b.Addr%4096 != 0 {
		t.Fatalf("alignment ignored: %#x", b.Addr)
	}
	if r, ok := m.LookupRegion("pool"); !ok || r != a {
		t.Fatal("LookupRegion failed")
	}
	if _, ok := m.LookupRegion("missing"); ok {
		t.Fatal("LookupRegion invented a region")
	}
}

func TestAllocDuplicatePanics(t *testing.T) {
	m := NewMachine(testCfg(cache.EADR))
	m.Alloc("x", 100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Alloc did not panic")
		}
	}()
	m.Alloc("x", 100, 0)
}

func TestCrashRecoverCycle(t *testing.T) {
	m := NewMachine(testCfg(cache.EADR))
	r := m.Alloc("data", 4096, 0)
	th := m.NewThread(0)
	m.Cache.Write(th.Clock, r.Addr, []byte("persisted"), cache.DefaultPartition)
	if m.Crashed() {
		t.Fatal("fresh machine reports crashed")
	}
	m.Crash()
	if !m.Crashed() {
		t.Fatal("Crash did not set flag")
	}
	// eADR: the dirty line drained to PMem.
	raw := make([]byte, 9)
	m.PMem.LoadRaw(r.Addr, raw)
	if !bytes.Equal(raw, []byte("persisted")) {
		t.Fatalf("eADR crash lost data: %q", raw)
	}
	m.Recover()
	if m.Crashed() {
		t.Fatal("Recover did not clear flag")
	}
	// Regions survive the crash (fixed memory map).
	if _, ok := m.LookupRegion("data"); !ok {
		t.Fatal("region lost across crash")
	}
}

func TestThreadCorePinning(t *testing.T) {
	cfg := testCfg(cache.EADR)
	cfg.Cores = 4
	m := NewMachine(cfg)
	if th := m.NewThread(6); th.Core != 2 {
		t.Fatalf("core wrap: got %d, want 2", th.Core)
	}
	if m.Cores() != 4 {
		t.Fatalf("Cores() = %d", m.Cores())
	}
}

func TestThreadCharges(t *testing.T) {
	m := NewMachine(testCfg(cache.EADR))
	th := m.NewThread(0)
	th.ChargeDRAM(3)
	want := 3 * m.Costs.DRAMAccess
	if th.Clock.Now() != want {
		t.Fatalf("DRAM charge = %d, want %d", th.Clock.Now(), want)
	}
	th.ChargeAtomic()
	th.ChargeCPU(10)
	if th.Clock.Now() <= want {
		t.Fatal("atomic/CPU charges missing")
	}
}

func TestPhaseBreakdown(t *testing.T) {
	m := NewMachine(testCfg(cache.EADR))
	th := m.NewThread(0)
	th.InPhase(PhaseLock, func() { th.ChargeDRAM(2) })
	th.InPhase(PhaseIndex, func() { th.ChargeDRAM(1) })
	th.AddPhase(PhaseOther, 50)
	b := th.PhaseBreakdown()
	if b[PhaseLock] != 2*m.Costs.DRAMAccess {
		t.Fatalf("lock phase = %d", b[PhaseLock])
	}
	if b[PhaseIndex] != m.Costs.DRAMAccess {
		t.Fatalf("index phase = %d", b[PhaseIndex])
	}
	if b.Total() != 3*m.Costs.DRAMAccess+50 {
		t.Fatalf("total = %d", b.Total())
	}
	if f := b.Fraction(PhaseLock); f <= 0 || f >= 1 {
		t.Fatalf("fraction = %v", f)
	}
	var sum Breakdown
	sum.Add(b)
	sum.Add(b)
	if sum.Total() != 2*b.Total() {
		t.Fatal("Breakdown.Add wrong")
	}
	th.ResetPhases()
	if th.PhaseBreakdown().Total() != 0 {
		t.Fatal("ResetPhases did not clear")
	}
	if PhaseWAL.String() != "wal" || PhaseFlushInstr.String() != "flush" {
		t.Fatal("phase names wrong")
	}
}

func TestBreakdownEmptyFraction(t *testing.T) {
	var b Breakdown
	if b.Fraction(PhaseLock) != 0 {
		t.Fatal("empty breakdown fraction should be 0")
	}
}
