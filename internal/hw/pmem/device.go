// Package pmem models an Intel Optane DC PMem module array closely enough to
// reproduce the two hardware effects the paper builds on:
//
//  1. The media has a fixed 256 B access granularity (the "XPLine"), so any
//     write smaller than an XPLine forces an internal read-modify-write and
//     amplifies traffic.
//  2. An on-DIMM write-combining buffer (the "XPBuffer") stages incoming 64 B
//     cachelines; lines that land in an XPLine already being staged combine
//     for free. The *write hit ratio* — combining arrivals over all arrivals —
//     is the hardware counter the paper's Figure 4 plots (via ipmwatch).
//
// The device stores real bytes (sparse, chunk-allocated) so that crash
// recovery code operates on genuine persisted state, and it charges virtual
// latencies to the accessing thread's clock so throughput experiments
// reproduce the paper's shapes. The XPBuffer sits inside the persistence
// domain on real hardware (it is on the DIMM, behind the ADR-protected write
// pending queue), so bytes accepted here are durable in every crash mode.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/hw/sim"
)

const chunkSize = 1 << 20 // sparse backing allocation unit (1 MiB)

// Counters aggregates the device's hardware event counts. All fields are
// monotonically increasing; Snapshot copies them for delta-based reporting.
type Counters struct {
	LineArrivals atomic.Int64 // 64 B lines accepted by the XPBuffer
	LineHits     atomic.Int64 // arrivals that combined into a staged XPLine
	XPLineEvicts atomic.Int64 // XPLines written to media (full or partial)
	RMWEvicts    atomic.Int64 // partial XPLines needing read-modify-write
	MediaReadB   atomic.Int64 // bytes read from media
	MediaWriteB  atomic.Int64 // bytes written to media (always XPLine multiples)
	CallerWriteB atomic.Int64 // bytes the software actually asked to write
}

// CountersSnapshot is a plain copy of Counters at one instant.
type CountersSnapshot struct {
	LineArrivals int64
	LineHits     int64
	XPLineEvicts int64
	RMWEvicts    int64
	MediaReadB   int64
	MediaWriteB  int64
	CallerWriteB int64
}

// WriteHitRatio returns XPBuffer hits over line arrivals, the paper's Fig. 4
// metric. It is 0 when nothing has been written.
func (s CountersSnapshot) WriteHitRatio() float64 {
	if s.LineArrivals == 0 {
		return 0
	}
	return float64(s.LineHits) / float64(s.LineArrivals)
}

// WriteAmplification returns media bytes written per byte the software wrote.
func (s CountersSnapshot) WriteAmplification() float64 {
	if s.CallerWriteB == 0 {
		return 0
	}
	return float64(s.MediaWriteB) / float64(s.CallerWriteB)
}

// Sub returns the delta s - o, for per-experiment windows.
func (s CountersSnapshot) Sub(o CountersSnapshot) CountersSnapshot {
	return CountersSnapshot{
		LineArrivals: s.LineArrivals - o.LineArrivals,
		LineHits:     s.LineHits - o.LineHits,
		XPLineEvicts: s.XPLineEvicts - o.XPLineEvicts,
		RMWEvicts:    s.RMWEvicts - o.RMWEvicts,
		MediaReadB:   s.MediaReadB - o.MediaReadB,
		MediaWriteB:  s.MediaWriteB - o.MediaWriteB,
		CallerWriteB: s.CallerWriteB - o.CallerWriteB,
	}
}

// xpEntry is one XPLine being staged in the write-combining buffer.
type xpEntry struct {
	addr uint64 // XPLine-aligned base address
	mask uint8  // which 64 B lines of the XPLine have arrived
	tick uint64 // insertion order, for FIFO eviction
}

// Device is the simulated PMem module array.
type Device struct {
	costs    *sim.CostModel
	capacity uint64

	chunks []atomic.Pointer[[]byte]

	// XPBuffer state: a FIFO write-combining window. Real Optane stages
	// ~16 KB per DIMM in the XPBuffer proper, but the effective coalescing
	// window observed through the iMC write-pending queues is larger; the
	// model's window is a calibration constant (see sim.CostModel).
	bufMu    sync.Mutex
	buf      map[uint64]*xpEntry
	fifo     []uint64
	bufCap   int
	bufTick  uint64
	lastRead atomic.Uint64 // last media read address, for seq/rand latency

	bw sim.Bandwidth // shared media write pipe

	Counters Counters
}

// NewDevice creates a device with the given capacity in bytes. The XPBuffer
// holds 64 XPLines per modelled DIMM.
func NewDevice(capacity uint64, cm *sim.CostModel) *Device {
	if cm == nil {
		cm = sim.DefaultCosts()
	}
	nChunks := (capacity + chunkSize - 1) / chunkSize
	bufCap := int(cm.XPBufferLines)
	if bufCap <= 0 {
		bufCap = 64 * int(cm.DIMMs)
	}
	return &Device{
		costs:    cm,
		capacity: nChunks * chunkSize,
		chunks:   make([]atomic.Pointer[[]byte], nChunks),
		buf:      make(map[uint64]*xpEntry),
		bufCap:   bufCap,
	}
}

// Capacity returns the usable byte capacity.
func (d *Device) Capacity() uint64 { return d.capacity }

func (d *Device) chunk(addr uint64) []byte {
	idx := addr / chunkSize
	if idx >= uint64(len(d.chunks)) {
		panic(fmt.Sprintf("pmem: address %#x beyond capacity %#x", addr, d.capacity))
	}
	if p := d.chunks[idx].Load(); p != nil {
		return *p
	}
	fresh := make([]byte, chunkSize)
	if d.chunks[idx].CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *d.chunks[idx].Load()
}

// storeRaw copies data into the backing array with no event accounting; it is
// the media content update shared by every write path.
func (d *Device) storeRaw(addr uint64, data []byte) {
	for len(data) > 0 {
		c := d.chunk(addr)
		off := addr % chunkSize
		n := copy(c[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// loadRaw copies backing bytes into buf with no event accounting.
func (d *Device) loadRaw(addr uint64, buf []byte) {
	for len(buf) > 0 {
		c := d.chunk(addr)
		off := addr % chunkSize
		n := copy(buf, c[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// StoreRaw writes bytes with no latency or counter accounting. It exists for
// crash-path cache drains and test setup; normal code paths must use
// WriteLines.
func (d *Device) StoreRaw(addr uint64, data []byte) { d.storeRaw(addr, data) }

// LoadRaw reads bytes with no accounting (crash recovery inspection).
func (d *Device) LoadRaw(addr uint64, buf []byte) { d.loadRaw(addr, buf) }

// lineMaskFor returns the XPLine base and the mask bit(s) covered by a 64 B
// cacheline at addr.
func (d *Device) lineMaskFor(addr uint64) (base uint64, bit uint8) {
	xls := uint64(d.costs.XPLineSize)
	base = addr &^ (xls - 1)
	slot := (addr - base) / uint64(d.costs.CacheLineSize)
	return base, 1 << slot
}

func (d *Device) fullMask() uint8 {
	lines := d.costs.XPLineSize / d.costs.CacheLineSize
	return uint8(1<<lines) - 1
}

// WriteLines accepts a run of 64 B cachelines beginning at the line-aligned
// addr. It updates backing content, performs XPBuffer accounting, and charges
// the accessing thread. This is the single entry point for every persisted
// write: cache writebacks, clflush, non-temporal stores, and the direct I/O
// path all funnel here.
func (d *Device) WriteLines(clk *sim.Clock, addr uint64, data []byte) {
	d.writeLines(clk, addr, data, true)
}

// WriteLinesPipelined is WriteLines for streaming stores (non-temporal
// copies): the XPBuffer accept latency overlaps the store pipeline, so the
// caller pays only the store issue cost plus media backpressure, not the
// per-line accept latency.
func (d *Device) WriteLinesPipelined(clk *sim.Clock, addr uint64, data []byte) {
	d.writeLines(clk, addr, data, false)
}

func (d *Device) writeLines(clk *sim.Clock, addr uint64, data []byte, chargeAccept bool) {
	cls := uint64(d.costs.CacheLineSize)
	if addr%cls != 0 || uint64(len(data))%cls != 0 {
		panic("pmem: WriteLines requires cacheline-aligned address and length")
	}
	d.storeRaw(addr, data)
	d.Counters.CallerWriteB.Add(int64(len(data)))
	if cell := clk.Cell(); cell != nil {
		cell.CallerWriteB.Add(int64(len(data)))
	}
	for off := uint64(0); off < uint64(len(data)); off += cls {
		d.acceptLine(clk, addr+off, chargeAccept)
	}
}

// acceptLine performs XPBuffer accounting for one arriving cacheline and
// charges the thread's clock.
func (d *Device) acceptLine(clk *sim.Clock, addr uint64, chargeAccept bool) {
	base, bit := d.lineMaskFor(addr)
	full := d.fullMask()
	cell := clk.Cell()

	d.bufMu.Lock()
	d.Counters.LineArrivals.Add(1)
	if cell != nil {
		cell.LineArrivals.Add(1)
	}
	e, ok := d.buf[base]
	if ok {
		d.Counters.LineHits.Add(1)
		if cell != nil {
			cell.LineHits.Add(1)
		}
		e.mask |= bit
		if e.mask == full {
			// A completed XPLine drains to media immediately; this is the
			// cheap, amplification-free path.
			delete(d.buf, base)
			d.bufMu.Unlock()
			if chargeAccept {
				clk.Advance(d.costs.XPBufferHit)
			}
			d.drainXPLine(clk, base, full)
			return
		}
		d.bufMu.Unlock()
		if chargeAccept {
			clk.Advance(d.costs.XPBufferHit)
		}
		return
	}
	// Miss: allocate a staging slot, evicting the oldest entry if the buffer
	// is full. Evicting a partial entry is the read-modify-write case.
	var evict *xpEntry
	for len(d.buf) >= d.bufCap && len(d.fifo) > 0 {
		oldestAddr := d.fifo[0]
		d.fifo = d.fifo[1:]
		if e, ok := d.buf[oldestAddr]; ok {
			evict = e
			delete(d.buf, oldestAddr)
			break
		}
	}
	d.bufTick++
	d.buf[base] = &xpEntry{addr: base, mask: bit, tick: d.bufTick}
	d.fifo = append(d.fifo, base)
	d.bufMu.Unlock()

	if chargeAccept {
		clk.Advance(d.costs.XPBufferMiss)
	}
	if evict != nil {
		d.drainXPLine(clk, evict.addr, evict.mask)
	}
}

// drainXPLine writes one XPLine to media, charging the read-modify-write
// penalty when the staged mask is partial. The media write itself is only
// accounted (counters + the shared-pipe occupancy metric): with four
// interleaved DIMMs the array sustains ~9.2 GB/s, an order of magnitude
// above any workload in the evaluation, so media bandwidth never
// backpressures writers here. A shared virtual pipe was tried and removed —
// threads at different virtual-time bases turned it into a causality
// violation rather than a throughput limit.
func (d *Device) drainXPLine(clk *sim.Clock, base uint64, mask uint8) {
	cell := clk.Cell()
	d.Counters.XPLineEvicts.Add(1)
	d.Counters.MediaWriteB.Add(d.costs.XPLineSize)
	if cell != nil {
		cell.XPLineEvicts.Add(1)
		cell.MediaWriteB.Add(d.costs.XPLineSize)
	}
	if mask != d.fullMask() {
		d.Counters.RMWEvicts.Add(1)
		d.Counters.MediaReadB.Add(d.costs.XPLineSize)
		if cell != nil {
			cell.RMWEvicts.Add(1)
			cell.MediaReadB.Add(d.costs.XPLineSize)
		}
		clk.Advance(d.costs.RMWPenalty)
	}
	perLine := d.costs.MediaWrite / d.costs.DIMMs
	if perLine < 1 {
		perLine = 1
	}
	d.bw.Acquire(clk.Now(), 1, perLine)
	_ = base
}

// Flush drains every staged XPBuffer entry to media. Real hardware does this
// continuously in the background; the model exposes it so tests and
// end-of-run accounting can reach a quiescent state.
func (d *Device) Flush(clk *sim.Clock) {
	d.bufMu.Lock()
	entries := make([]*xpEntry, 0, len(d.buf))
	for _, e := range d.buf {
		entries = append(entries, e)
	}
	d.buf = make(map[uint64]*xpEntry)
	d.fifo = d.fifo[:0]
	d.bufMu.Unlock()
	for _, e := range entries {
		d.drainXPLine(clk, e.addr, e.mask)
	}
}

// PowerCycle resets the device's volatile staging metadata to its power-on
// state. Bytes accepted by the XPBuffer are already durable (storeRaw runs
// before staging accounting, and the buffer sits inside the persistence
// domain on real hardware), but the *combining window itself* does not
// survive a power cycle: a line written after reboot must not combine with
// an XPLine staged before the failure, and the first read after reboot pays
// the random-access latency regardless of where the last pre-crash read
// landed. Machine.Recover calls this; the durable contents and the monotonic
// hardware counters are untouched.
func (d *Device) PowerCycle() {
	d.bufMu.Lock()
	d.buf = make(map[uint64]*xpEntry)
	d.fifo = d.fifo[:0]
	d.bufMu.Unlock()
	d.lastRead.Store(0)
}

// Read copies n bytes at addr into buf, charging one media read per XPLine
// touched. Sequential reads (each following the previous read address) are
// charged the lower sequential latency.
func (d *Device) Read(clk *sim.Clock, addr uint64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	d.loadRaw(addr, buf)
	cell := clk.Cell()
	xls := uint64(d.costs.XPLineSize)
	first := addr &^ (xls - 1)
	last := (addr + uint64(len(buf)) - 1) &^ (xls - 1)
	for line := first; ; line += xls {
		prev := d.lastRead.Swap(line)
		switch {
		case line == prev:
			// Same XPLine as the previous read: served from the DIMM's
			// internal read buffer, not the media.
			clk.Advance(d.costs.PMemReadSeq / 8)
		case line == prev+xls:
			clk.Advance(d.costs.PMemReadSeq)
			d.Counters.MediaReadB.Add(int64(xls))
			if cell != nil {
				cell.MediaReadB.Add(int64(xls))
			}
		default:
			clk.Advance(d.costs.PMemReadRand)
			d.Counters.MediaReadB.Add(int64(xls))
			if cell != nil {
				cell.MediaReadB.Add(int64(xls))
			}
		}
		if line == last {
			break
		}
	}
}

// Snapshot copies the hardware counters.
func (d *Device) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		LineArrivals: d.Counters.LineArrivals.Load(),
		LineHits:     d.Counters.LineHits.Load(),
		XPLineEvicts: d.Counters.XPLineEvicts.Load(),
		RMWEvicts:    d.Counters.RMWEvicts.Load(),
		MediaReadB:   d.Counters.MediaReadB.Load(),
		MediaWriteB:  d.Counters.MediaWriteB.Load(),
		CallerWriteB: d.Counters.CallerWriteB.Load(),
	}
}
