package pmem

import (
	"bytes"
	"testing"

	"cachekv/internal/hw/sim"
)

func newDev() *Device { return NewDevice(64<<20, sim.DefaultCosts()) }

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	d.WriteLines(&clk, 4096, data)
	got := make([]byte, 256)
	d.Read(&clk, 4096, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
}

func TestWriteSpansChunkBoundary(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := uint64(chunkSize - 2048) // straddles the 1 MiB chunk boundary
	d.WriteLines(&clk, addr, data)
	got := make([]byte, len(data))
	d.Read(&clk, addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("chunk-boundary write corrupted")
	}
}

func TestFullXPLineWriteIsAmplificationFree(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	// Write 1000 full, aligned XPLines sequentially.
	line := make([]byte, 256)
	for i := 0; i < 1000; i++ {
		d.WriteLines(&clk, uint64(i)*256, line)
	}
	d.Flush(&clk)
	s := d.Snapshot()
	if s.RMWEvicts != 0 {
		t.Fatalf("sequential full-line writes caused %d RMWs", s.RMWEvicts)
	}
	if wa := s.WriteAmplification(); wa != 1.0 {
		t.Fatalf("write amplification = %v, want 1.0", wa)
	}
	// 4 lines per XPLine: 3 of 4 arrivals combine.
	if hr := s.WriteHitRatio(); hr < 0.74 || hr > 0.76 {
		t.Fatalf("write hit ratio = %v, want 0.75", hr)
	}
}

func TestScatteredSmallWritesAmplify(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	rng := sim.NewRNG(1)
	line := make([]byte, 64)
	// Write isolated 64 B lines at random XPLine-spread addresses: nearly
	// every arrival misses the buffer and every eviction is a partial RMW.
	for i := 0; i < 5000; i++ {
		addr := (rng.Uint64n(1 << 16)) * 256
		d.WriteLines(&clk, addr, line)
	}
	d.Flush(&clk)
	s := d.Snapshot()
	if hr := s.WriteHitRatio(); hr > 0.2 {
		t.Fatalf("scattered writes should rarely hit; ratio = %v", hr)
	}
	if wa := s.WriteAmplification(); wa < 3.5 {
		t.Fatalf("scattered 64 B writes should amplify ~4x; got %v", wa)
	}
	if s.RMWEvicts == 0 {
		t.Fatal("expected read-modify-write evictions")
	}
}

func TestSequentialLinesCombine(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	line := make([]byte, 64)
	// Ascending 64 B lines (what ordered clflush produces): every group of 4
	// combines into one XPLine.
	for i := 0; i < 4000; i++ {
		d.WriteLines(&clk, uint64(i)*64, line)
	}
	d.Flush(&clk)
	s := d.Snapshot()
	if hr := s.WriteHitRatio(); hr < 0.74 {
		t.Fatalf("sequential line stream should combine; ratio = %v", hr)
	}
	if wa := s.WriteAmplification(); wa > 1.01 {
		t.Fatalf("sequential line stream amplified: %v", wa)
	}
}

func TestReadChargesLatency(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	buf := make([]byte, 256)
	d.Read(&clk, 0, buf)
	if clk.Now() == 0 {
		t.Fatal("read charged no latency")
	}
	before := clk.Now()
	d.Read(&clk, 0, nil)
	if clk.Now() != before {
		t.Fatal("empty read should charge nothing")
	}
}

func TestSequentialReadCheaperThanRandom(t *testing.T) {
	cm := sim.DefaultCosts()
	d := NewDevice(64<<20, cm)
	var seq, rnd sim.Clock
	buf := make([]byte, 256)
	for i := 0; i < 100; i++ {
		d.Read(&seq, uint64(i)*256, buf)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		d.Read(&rnd, rng.Uint64n(1<<16)*256, buf)
	}
	if seq.Now() >= rnd.Now() {
		t.Fatalf("sequential reads (%d) should be cheaper than random (%d)", seq.Now(), rnd.Now())
	}
}

func TestUnalignedWritePanics(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WriteLines did not panic")
		}
	}()
	d.WriteLines(&clk, 3, make([]byte, 64))
}

func TestCountersSnapshotSub(t *testing.T) {
	d := newDev()
	var clk sim.Clock
	d.WriteLines(&clk, 0, make([]byte, 512))
	before := d.Snapshot()
	d.WriteLines(&clk, 4096, make([]byte, 256))
	delta := d.Snapshot().Sub(before)
	if delta.CallerWriteB != 256 {
		t.Fatalf("delta caller bytes = %d, want 256", delta.CallerWriteB)
	}
	if delta.LineArrivals != 4 {
		t.Fatalf("delta line arrivals = %d, want 4", delta.LineArrivals)
	}
}

func TestXPBufferEvictionUnderPressure(t *testing.T) {
	cm := sim.DefaultCosts()
	d := NewDevice(64<<20, cm)
	var clk sim.Clock
	line := make([]byte, 64)
	// Touch far more XPLines than the buffer holds without completing any:
	// evictions must occur, all partial.
	n := d.bufCap * 4
	for i := 0; i < n; i++ {
		d.WriteLines(&clk, uint64(i)*256, line)
	}
	s := d.Snapshot()
	if s.XPLineEvicts == 0 {
		t.Fatal("no evictions despite buffer overflow")
	}
	if s.RMWEvicts != s.XPLineEvicts {
		t.Fatalf("all evictions should be partial: rmw=%d evicts=%d", s.RMWEvicts, s.XPLineEvicts)
	}
}

func TestWriteHitRatioEmpty(t *testing.T) {
	var s CountersSnapshot
	if s.WriteHitRatio() != 0 || s.WriteAmplification() != 0 {
		t.Fatal("empty snapshot ratios should be zero")
	}
}
