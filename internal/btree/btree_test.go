package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("fresh tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Get([]byte("x"), nil); ok {
		t.Fatal("Get on empty tree found something")
	}
	if tr.Delete([]byte("x"), nil) {
		t.Fatal("Delete on empty tree reported success")
	}
	it := tr.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator valid on empty tree")
	}
}

func TestInsertGetManySplits(t *testing.T) {
	tr := New()
	const n = 20000 // forces multiple levels of splits at order 64
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%08d", (i*2654435761)%n))
		tr.Insert(k, []byte(fmt.Sprintf("v%d", i)), nil)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 after %d inserts, got %d", n, tr.Height())
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%08d", i))
		if _, ok := tr.Get(k, nil); !ok {
			t.Fatalf("missing %s", k)
		}
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New()
	tr.Insert([]byte("k"), []byte("v1"), nil)
	tr.Insert([]byte("k"), []byte("v2"), nil)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get([]byte("k"), nil)
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%05d", i)), []byte("v"), nil)
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete([]byte(fmt.Sprintf("k%05d", i)), nil) {
			t.Fatalf("delete k%05d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get([]byte(fmt.Sprintf("k%05d", i)), nil)
		if want := i%2 == 1; ok != want {
			t.Fatalf("k%05d present=%v want %v", i, ok, want)
		}
	}
	// Iterator must skip the holes cleanly.
	it := tr.NewIterator()
	it.SeekToFirst()
	count := 0
	for it.Valid() {
		count++
		it.Next()
	}
	if count != 500 {
		t.Fatalf("iterated %d, want 500", count)
	}
}

func TestIterationSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	want := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(1<<28))
		want[k] = true
		tr.Insert([]byte(k), []byte("v"), nil)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := tr.NewIterator()
	it.SeekToFirst()
	for i, k := range keys {
		if !it.Valid() {
			t.Fatalf("ended at %d of %d", i, len(keys))
		}
		if string(it.Key()) != k {
			t.Fatalf("at %d: got %s want %s", i, it.Key(), k)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("extra entries")
	}
}

func TestSeek(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i += 10 {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte("v"), nil)
	}
	it := tr.NewIterator()
	it.Seek([]byte("k0015"), nil)
	if !it.Valid() || string(it.Key()) != "k0020" {
		t.Fatalf("Seek landed on %s", it.Key())
	}
	it.Seek([]byte("k0020"), nil)
	if !it.Valid() || string(it.Key()) != "k0020" {
		t.Fatal("exact Seek failed")
	}
	it.Seek([]byte("k9999"), nil)
	if it.Valid() {
		t.Fatal("Seek past end valid")
	}
}

func TestChargeFunc(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%08d", i)), nil, nil)
	}
	var visits int
	tr.Get([]byte("k00005000"), func(n int) { visits = n })
	if visits < 2 || visits > 6 {
		t.Fatalf("visits = %d, want small (height is %d)", visits, tr.Height())
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key    uint16
		Val    uint8
		Delete bool
	}) bool {
		tr := New()
		model := map[string][]byte{}
		for _, op := range ops {
			k := []byte(fmt.Sprintf("k%05d", op.Key))
			if op.Delete {
				want := false
				if _, ok := model[string(k)]; ok {
					want = true
					delete(model, string(k))
				}
				if tr.Delete(k, nil) != want {
					return false
				}
			} else {
				v := []byte{op.Val}
				tr.Insert(k, v, nil)
				model[string(k)] = v
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get([]byte(k), nil)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAndReverseInsert(t *testing.T) {
	// Sequential and reverse insertion are the degenerate split patterns.
	for name, gen := range map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return 9999 - i },
	} {
		tr := New()
		for i := 0; i < 10000; i++ {
			tr.Insert([]byte(fmt.Sprintf("k%05d", gen(i))), []byte("v"), nil)
		}
		if tr.Len() != 10000 {
			t.Fatalf("%s: Len = %d", name, tr.Len())
		}
		it := tr.NewIterator()
		it.SeekToFirst()
		for i := 0; i < 10000; i++ {
			if !it.Valid() || string(it.Key()) != fmt.Sprintf("k%05d", i) {
				t.Fatalf("%s: order broken at %d", name, i)
			}
			it.Next()
		}
	}
}
