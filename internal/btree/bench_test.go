package btree

import (
	"fmt"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	tr := New()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%012d", i*2654435761))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], nil, nil)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("key%012d", i)), []byte("v"), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key%012d", i%n)), nil)
	}
}
