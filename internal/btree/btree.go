// Package btree implements the B+-tree SLM-DB keeps in persistent memory to
// index KV pairs across its single-level SSTable layout. Interior nodes hold
// only separator keys; all values live in chained leaves, so range scans walk
// the leaf chain. A coarse reader/writer lock matches SLM-DB's design (its
// B+-tree is updated by one compaction/flush thread and read by queries; the
// paper's Figure 12 attributes its poor scaling to exactly this shared-index
// contention, which we reproduce with a virtual mutex at the engine level).
//
// Like the skiplist, operations accept a ChargeFunc reporting node visits so
// the engine can charge DRAM or PMem latency per hop.
package btree

import (
	"bytes"
	"sync"
)

const (
	// order is the maximum number of children of an interior node; leaves
	// hold up to order-1 entries. 64 keeps trees shallow (3 levels reach
	// ~250k entries) which matches the per-hop cost model.
	order    = 64
	minItems = order / 2
)

// ChargeFunc receives node-visit counts for latency accounting.
type ChargeFunc func(nodeVisits int)

type leaf struct {
	keys   [][]byte
	values [][]byte
	next   *leaf
}

type interior struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []interface{} // *interior or *leaf
}

// Tree is the B+-tree.
type Tree struct {
	mu     sync.RWMutex
	root   interface{} // *interior or *leaf
	height int
	length int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 1}
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.length
}

// Height returns the current tree height (1 = a single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// searchLeaf descends to the leaf that may hold key, counting visits.
func (t *Tree) searchLeaf(key []byte) (*leaf, int) {
	visits := 1
	n := t.root
	for {
		in, ok := n.(*interior)
		if !ok {
			return n.(*leaf), visits
		}
		i := lowerBound(in.keys, key)
		// children[i] covers keys < keys[i]; an exact separator match
		// belongs to the right child.
		if i < len(in.keys) && bytes.Equal(in.keys[i], key) {
			i++
		}
		n = in.children[i]
		visits++
	}
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value at key, or (nil, false).
func (t *Tree) Get(key []byte, charge ChargeFunc) ([]byte, bool) {
	t.mu.RLock()
	lf, visits := t.searchLeaf(key)
	i := lowerBound(lf.keys, key)
	var v []byte
	found := i < len(lf.keys) && bytes.Equal(lf.keys[i], key)
	if found {
		v = lf.values[i]
	}
	t.mu.RUnlock()
	if charge != nil {
		charge(visits)
	}
	return v, found
}

// Insert sets key to value, replacing any existing entry. Key and value are
// retained by reference.
func (t *Tree) Insert(key, value []byte, charge ChargeFunc) {
	t.mu.Lock()
	visits, grew := t.insertLocked(key, value)
	if grew {
		t.length++
	}
	t.mu.Unlock()
	if charge != nil {
		charge(visits)
	}
}

func (t *Tree) insertLocked(key, value []byte) (visits int, grew bool) {
	type frame struct {
		n   *interior
		idx int
	}
	var path []frame
	n := t.root
	visits = 1
	for {
		in, ok := n.(*interior)
		if !ok {
			break
		}
		i := lowerBound(in.keys, key)
		if i < len(in.keys) && bytes.Equal(in.keys[i], key) {
			i++
		}
		path = append(path, frame{in, i})
		n = in.children[i]
		visits++
	}
	lf := n.(*leaf)
	i := lowerBound(lf.keys, key)
	if i < len(lf.keys) && bytes.Equal(lf.keys[i], key) {
		lf.values[i] = value
		return visits, false
	}
	lf.keys = insertBytes(lf.keys, i, key)
	lf.values = insertBytes(lf.values, i, value)
	grew = true

	if len(lf.keys) < order {
		return visits, grew
	}
	// Split the leaf and propagate.
	mid := len(lf.keys) / 2
	right := &leaf{
		keys:   append([][]byte(nil), lf.keys[mid:]...),
		values: append([][]byte(nil), lf.values[mid:]...),
		next:   lf.next,
	}
	lf.keys = lf.keys[:mid:mid]
	lf.values = lf.values[:mid:mid]
	lf.next = right
	upKey, rightChild := right.keys[0], interface{}(right)

	for len(path) > 0 {
		f := path[len(path)-1]
		path = path[:len(path)-1]
		in := f.n
		in.keys = insertBytes(in.keys, f.idx, upKey)
		in.children = insertChild(in.children, f.idx+1, rightChild)
		if len(in.children) <= order {
			return visits, grew
		}
		midI := len(in.keys) / 2
		upKey2 := in.keys[midI]
		rightIn := &interior{
			keys:     append([][]byte(nil), in.keys[midI+1:]...),
			children: append([]interface{}(nil), in.children[midI+1:]...),
		}
		in.keys = in.keys[:midI:midI]
		in.children = in.children[: midI+1 : midI+1]
		upKey, rightChild = upKey2, rightIn
	}
	// Root split.
	t.root = &interior{
		keys:     [][]byte{upKey},
		children: []interface{}{t.root, rightChild},
	}
	t.height++
	return visits, grew
}

// Delete removes key, reporting whether it was present. Leaves are allowed
// to underflow (no rebalancing): SLM-DB only deletes during garbage
// collection where whole ranges disappear, and underfull leaves merely cost
// a little space, never correctness.
func (t *Tree) Delete(key []byte, charge ChargeFunc) bool {
	t.mu.Lock()
	lf, visits := t.searchLeaf(key)
	i := lowerBound(lf.keys, key)
	found := i < len(lf.keys) && bytes.Equal(lf.keys[i], key)
	if found {
		lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
		lf.values = append(lf.values[:i], lf.values[i+1:]...)
		t.length--
	}
	t.mu.Unlock()
	if charge != nil {
		charge(visits)
	}
	return found
}

func insertBytes(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChild(s []interface{}, i int, v interface{}) []interface{} {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Iterator walks entries in ascending key order via the leaf chain.
type Iterator struct {
	t   *Tree
	lf  *leaf
	idx int
}

// NewIterator returns an unpositioned iterator. The iterator holds no lock;
// it must not run concurrently with writers.
func (t *Tree) NewIterator() *Iterator { return &Iterator{t: t} }

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() {
	it.t.mu.RLock()
	n := it.t.root
	for {
		in, ok := n.(*interior)
		if !ok {
			break
		}
		n = in.children[0]
	}
	it.t.mu.RUnlock()
	it.lf = n.(*leaf)
	it.idx = 0
	it.skipEmpty()
}

// Seek positions at the first entry >= key.
func (it *Iterator) Seek(key []byte, charge ChargeFunc) {
	it.t.mu.RLock()
	lf, visits := it.t.searchLeaf(key)
	it.t.mu.RUnlock()
	if charge != nil {
		charge(visits)
	}
	it.lf = lf
	it.idx = lowerBound(lf.keys, key)
	it.skipEmpty()
}

func (it *Iterator) skipEmpty() {
	for it.lf != nil && it.idx >= len(it.lf.keys) {
		it.lf = it.lf.next
		it.idx = 0
	}
}

// Valid reports whether the iterator is on an entry.
func (it *Iterator) Valid() bool { return it.lf != nil && it.idx < len(it.lf.keys) }

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.lf.keys[it.idx] }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.lf.values[it.idx] }

// Next advances the iterator.
func (it *Iterator) Next() {
	it.idx++
	it.skipEmpty()
}
