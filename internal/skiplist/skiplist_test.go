package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyList(t *testing.T) {
	l := New(nil, 1)
	if l.Len() != 0 {
		t.Fatal("fresh list not empty")
	}
	if _, ok := l.Get([]byte("a"), nil); ok {
		t.Fatal("Get on empty list found something")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator valid on empty list")
	}
	it.SeekToLast()
	if it.Valid() {
		t.Fatal("SeekToLast valid on empty list")
	}
}

func TestInsertGet(t *testing.T) {
	l := New(nil, 1)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%06d", i*7%1000))
		l.Insert(k, []byte(fmt.Sprintf("val%d", i)), nil)
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if _, ok := l.Get(k, nil); !ok {
			t.Fatalf("missing %s", k)
		}
	}
	if _, ok := l.Get([]byte("nope"), nil); ok {
		t.Fatal("found nonexistent key")
	}
	if l.Len() != 1000 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestInsertReplaces(t *testing.T) {
	l := New(nil, 1)
	l.Insert([]byte("k"), []byte("v1"), nil)
	l.Insert([]byte("k"), []byte("v2"), nil)
	v, ok := l.Get([]byte("k"), nil)
	if !ok || string(v) != "v2" {
		t.Fatalf("got %q, %v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("replacement changed Len: %d", l.Len())
	}
}

func TestIterationSorted(t *testing.T) {
	l := New(nil, 2)
	rng := rand.New(rand.NewSource(42))
	want := make([]string, 0, 500)
	seen := map[string]bool{}
	for len(want) < 500 {
		k := fmt.Sprintf("k%08d", rng.Intn(1<<30))
		if seen[k] {
			continue
		}
		seen[k] = true
		want = append(want, k)
		l.Insert([]byte(k), []byte("v"), nil)
	}
	sort.Strings(want)
	it := l.NewIterator()
	it.SeekToFirst()
	for i := 0; i < len(want); i++ {
		if !it.Valid() {
			t.Fatalf("iterator ended at %d of %d", i, len(want))
		}
		if string(it.Key()) != want[i] {
			t.Fatalf("at %d: got %s want %s", i, it.Key(), want[i])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator has extra entries")
	}
}

func TestSeek(t *testing.T) {
	l := New(nil, 3)
	for i := 0; i < 100; i += 2 {
		l.Insert([]byte(fmt.Sprintf("k%03d", i)), nil, nil)
	}
	it := l.NewIterator()
	it.Seek([]byte("k051"), nil)
	if !it.Valid() || string(it.Key()) != "k052" {
		t.Fatalf("Seek(k051) landed on %s", it.Key())
	}
	it.Seek([]byte("k052"), nil)
	if !it.Valid() || string(it.Key()) != "k052" {
		t.Fatal("Seek to exact key failed")
	}
	it.Seek([]byte("k999"), nil)
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
	it.SeekToLast()
	if !it.Valid() || string(it.Key()) != "k098" {
		t.Fatalf("SeekToLast landed on %s", it.Key())
	}
}

func TestChargeFuncCalled(t *testing.T) {
	l := New(nil, 4)
	for i := 0; i < 256; i++ {
		l.Insert([]byte(fmt.Sprintf("k%04d", i)), nil, nil)
	}
	var visits int
	l.Get([]byte("k0128"), func(n int) { visits += n })
	if visits == 0 {
		t.Fatal("Get charged no visits")
	}
	// Search should be logarithmic-ish, far fewer visits than entries.
	if visits > 100 {
		t.Fatalf("suspiciously many visits: %d", visits)
	}
	visits = 0
	l.Insert([]byte("zz"), nil, func(n int) { visits += n })
	if visits == 0 {
		t.Fatal("Insert charged no visits")
	}
}

func TestCustomComparator(t *testing.T) {
	// Reverse ordering comparator.
	l := New(func(a, b []byte) int { return -bytes.Compare(a, b) }, 5)
	l.Insert([]byte("a"), nil, nil)
	l.Insert([]byte("b"), nil, nil)
	l.Insert([]byte("c"), nil, nil)
	it := l.NewIterator()
	it.SeekToFirst()
	if string(it.Key()) != "c" {
		t.Fatalf("reverse comparator: first = %s", it.Key())
	}
}

func TestConcurrentInserts(t *testing.T) {
	l := New(nil, 6)
	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := []byte(fmt.Sprintf("w%02d-%06d", w, i))
				l.Insert(k, []byte{byte(w)}, nil)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*perW)
	}
	// Every key present, list fully sorted.
	it := l.NewIterator()
	it.SeekToFirst()
	var prev []byte
	n := 0
	for it.Valid() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violation: %s !< %s", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		n++
		it.Next()
	}
	if n != writers*perW {
		t.Fatalf("iterated %d, want %d", n, writers*perW)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	l := New(nil, 7)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			l.Insert([]byte(fmt.Sprintf("k%08d", i)), []byte("v"), nil)
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 5000; i++ {
				it := l.NewIterator()
				it.Seek([]byte("k"), nil)
				for j := 0; it.Valid() && j < 10; j++ {
					it.Next()
				}
			}
		}()
	}
	readers.Wait()
	close(done)
	wg.Wait()
}

func TestPropertyMatchesSortedMap(t *testing.T) {
	f := func(keys [][]byte) bool {
		l := New(nil, 99)
		model := map[string][]byte{}
		for i, k := range keys {
			v := []byte(fmt.Sprintf("v%d", i))
			l.Insert(append([]byte(nil), k...), v, nil)
			model[string(k)] = v
		}
		if l.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := l.Get([]byte(k), nil)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		// Iteration order equals sorted model keys.
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it := l.NewIterator()
		it.SeekToFirst()
		for _, k := range want {
			if !it.Valid() || string(it.Key()) != k {
				return false
			}
			it.Next()
		}
		return !it.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
