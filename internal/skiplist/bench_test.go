package skiplist

import (
	"fmt"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	l := New(nil, 1)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%012d", i*2654435761))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys[i], nil, nil)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(nil, 1)
	const n = 100000
	for i := 0; i < n; i++ {
		l.Insert([]byte(fmt.Sprintf("key%012d", i)), []byte("v"), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("key%012d", i%n)), nil)
	}
}
