// Package skiplist implements the concurrent ordered map used for every
// memtable index in the repository: the baselines' MemTable skiplists, the
// per-sub-MemTable sub-skiplists of CacheKV's lazy index, and the global
// skiplist produced by sub-skiplist compaction.
//
// Inserts are lock-free (CAS splicing at every level, as in LevelDB's
// concurrent skiplist but allowing many writers); reads never block. Nodes
// are never physically removed — LSM semantics supersede entries with newer
// sequence numbers instead — except via whole-list replacement during
// compaction.
//
// Because the same structure lives in DRAM in some engines and in PMem in
// others (where node visits are ~3-4x slower), operations accept an optional
// ChargeFunc: the list reports how many node hops an operation made and the
// caller converts hops into virtual time at its tier's latency.
package skiplist

import (
	"bytes"
	"sync/atomic"

	"cachekv/internal/hw/sim"
)

const (
	maxHeight = 12
	branching = 4
)

// Comparator orders keys. bytes.Compare is the default.
type Comparator func(a, b []byte) int

// ChargeFunc receives the number of node visits an operation performed so the
// caller can charge memory-tier latency. A nil ChargeFunc charges nothing.
type ChargeFunc func(nodeVisits int)

type node struct {
	key   []byte
	value atomic.Pointer[[]byte]
	next  []atomic.Pointer[node] // len == node height
}

func newNode(key, value []byte, height int) *node {
	n := &node{key: key, next: make([]atomic.Pointer[node], height)}
	v := value
	n.value.Store(&v)
	return n
}

// List is the concurrent skiplist.
type List struct {
	cmp    Comparator
	head   *node
	height atomic.Int32
	length atomic.Int64
	rng    *sim.RNG
	rngMu  spinLock
}

// spinLock is a tiny mutex for the RNG; insert critical paths hold it for a
// few instructions only.
type spinLock struct{ v atomic.Int32 }

func (s *spinLock) lock() {
	for !s.v.CompareAndSwap(0, 1) {
	}
}
func (s *spinLock) unlock() { s.v.Store(0) }

// New creates an empty list ordered by cmp (bytes.Compare when nil), with a
// deterministic tower-height RNG seeded by seed.
func New(cmp Comparator, seed uint64) *List {
	if cmp == nil {
		cmp = bytes.Compare
	}
	l := &List{
		cmp:  cmp,
		head: newNode(nil, nil, maxHeight),
		rng:  sim.NewRNG(seed),
	}
	l.height.Store(1)
	return l
}

// Len returns the number of entries inserted (replacements via Insert of an
// existing key do not change the length).
func (l *List) Len() int { return int(l.length.Load()) }

func (l *List) randomHeight() int {
	l.rngMu.lock()
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	l.rngMu.unlock()
	return h
}

// findGE walks to the first node with key >= key. When prev is non-nil it is
// filled with the predecessor at every level (for splicing). Returns the node
// (or nil) and the number of node visits made.
func (l *List) findGE(key []byte, prev *[maxHeight]*node) (*node, int) {
	visits := 0
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, key) < 0 {
			x = next
			visits++
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next, visits + 1
		}
		level--
	}
}

// Insert adds key with value. If an equal key already exists its value is
// replaced atomically (last writer wins). Key and value are retained by
// reference; callers must not mutate them afterwards.
func (l *List) Insert(key, value []byte, charge ChargeFunc) {
	var prev [maxHeight]*node
	for {
		found, visits := l.findGE(key, &prev)
		if charge != nil {
			charge(visits)
		}
		if found != nil && l.cmp(found.key, key) == 0 {
			v := value
			found.value.Store(&v)
			return
		}
		h := l.randomHeight()
		if cur := int(l.height.Load()); h > cur {
			// Raise the list height; racing raisers are harmless because the
			// head has maxHeight levels and prev for new levels is the head.
			l.height.CompareAndSwap(int32(cur), int32(h))
			for i := cur; i < h; i++ {
				prev[i] = l.head
			}
		}
		n := newNode(key, value, h)
		// Splice bottom-up; level 0 makes the node reachable, so its CAS is
		// the linearization point. A failed CAS at level 0 means a racing
		// insert changed the neighborhood: re-find and retry entirely.
		succ := prev[0].next[0].Load()
		if succ != nil && l.cmp(succ.key, key) < 0 {
			continue // stale predecessor, retry
		}
		n.next[0].Store(succ)
		if !prev[0].next[0].CompareAndSwap(succ, n) {
			continue
		}
		l.length.Add(1)
		for i := 1; i < h; i++ {
			for {
				succ := prev[i].next[i].Load()
				if succ != nil && l.cmp(succ.key, key) < 0 {
					// Predecessor went stale at this level; re-locate it.
					var p2 [maxHeight]*node
					l.findGE(key, &p2)
					prev[i] = p2[i]
					continue
				}
				n.next[i].Store(succ)
				if prev[i].next[i].CompareAndSwap(succ, n) {
					break
				}
			}
		}
		return
	}
}

// Get returns the value stored at exactly key, or (nil, false).
func (l *List) Get(key []byte, charge ChargeFunc) ([]byte, bool) {
	n, visits := l.findGE(key, nil)
	if charge != nil {
		charge(visits)
	}
	if n != nil && l.cmp(n.key, key) == 0 {
		return *n.value.Load(), true
	}
	return nil, false
}

// Iterator walks the list in key order. Iterators are not safe for
// concurrent use, but may run concurrently with inserts (they observe a
// consistent, possibly slightly stale view).
type Iterator struct {
	l *List
	n *node
}

// NewIterator returns an unpositioned iterator; call Seek* before use.
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current entry's key; only valid when Valid().
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current entry's value; only valid when Valid().
func (it *Iterator) Value() []byte { return *it.n.value.Load() }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() { it.n = it.l.head.next[0].Load() }

// Seek positions at the first entry with key >= key and reports node visits
// through charge.
func (it *Iterator) Seek(key []byte, charge ChargeFunc) {
	n, visits := it.l.findGE(key, nil)
	if charge != nil {
		charge(visits)
	}
	it.n = n
}

// SeekToLast positions at the largest entry (linear at the top levels; used
// only by reverse scans, which are rare).
func (it *Iterator) SeekToLast() {
	x := it.l.head
	level := int(it.l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			break
		}
		level--
	}
	if x == it.l.head {
		it.n = nil
		return
	}
	it.n = x
}
