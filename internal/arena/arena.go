// Package arena provides bump allocators over PMem regions. Persistent
// structures (the sub-MemTable pool's ImmZone, NoveLSM's PMem memtable log,
// SLM-DB's persistent buffer) carve their space out of a region sequentially
// and reclaim it wholesale, which is exactly the allocation pattern
// log-structured stores exhibit.
package arena

import (
	"fmt"
	"sync/atomic"

	"cachekv/internal/hw"
)

// PArena hands out addresses from a PMem region, append-only, until Reset.
type PArena struct {
	region hw.Region
	next   atomic.Uint64
}

// NewPArena wraps region in a fresh allocator.
func NewPArena(region hw.Region) *PArena {
	a := &PArena{region: region}
	a.next.Store(region.Addr)
	return a
}

// Region returns the underlying region.
func (a *PArena) Region() hw.Region { return a.region }

// Alloc reserves n bytes aligned to align (power of two; 0 means 8) and
// returns the starting address. It returns an error when the region is
// exhausted — callers treat that as "time to flush".
func (a *PArena) Alloc(n uint64, align uint64) (uint64, error) {
	if align == 0 {
		align = 8
	}
	for {
		cur := a.next.Load()
		addr := (cur + align - 1) &^ (align - 1)
		end := addr + n
		if end > a.region.End() {
			return 0, fmt.Errorf("arena: region %q exhausted (%d of %d bytes used)",
				a.region.Name, cur-a.region.Addr, a.region.Size)
		}
		if a.next.CompareAndSwap(cur, end) {
			return addr, nil
		}
	}
}

// Used returns the number of bytes allocated so far.
func (a *PArena) Used() uint64 { return a.next.Load() - a.region.Addr }

// Reset reclaims the whole region (wholesale, like truncating a log).
func (a *PArena) Reset() { a.next.Store(a.region.Addr) }

// Restore positions the allocation cursor at addr, which must lie within the
// region. Crash recovery uses it after re-discovering how much of the region
// held live data.
func (a *PArena) Restore(addr uint64) {
	if addr < a.region.Addr || addr > a.region.End() {
		panic(fmt.Sprintf("arena: Restore(%#x) outside region %q", addr, a.region.Name))
	}
	a.next.Store(addr)
}
