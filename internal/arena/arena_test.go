package arena

import (
	"sync"
	"testing"

	"cachekv/internal/hw"
)

func newArena(size uint64) *PArena {
	m := hw.NewMachine(hw.Config{PMemBytes: 64 << 20})
	return NewPArena(m.Alloc("test", size, 0))
}

func TestAllocSequential(t *testing.T) {
	a := newArena(1 << 20)
	x, err := a.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := a.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if y < x+100 {
		t.Fatalf("allocations overlap: %#x then %#x", x, y)
	}
	if a.Used() < 200 {
		t.Fatalf("Used = %d", a.Used())
	}
}

func TestAllocAlignment(t *testing.T) {
	a := newArena(1 << 20)
	if _, err := a.Alloc(3, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := a.Alloc(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if addr%256 != 0 {
		t.Fatalf("alignment violated: %#x", addr)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := newArena(1024)
	if _, err := a.Alloc(1024, 8); err != nil {
		// Region start may be aligned already; either outcome below is fine
		// as long as over-allocation eventually fails.
		t.Logf("first alloc failed early: %v", err)
	}
	if _, err := a.Alloc(1, 0); err == nil {
		t.Fatal("expected exhaustion error")
	}
	a.Reset()
	if _, err := a.Alloc(512, 0); err != nil {
		t.Fatalf("alloc after Reset failed: %v", err)
	}
}

func TestAllocConcurrent(t *testing.T) {
	a := newArena(1 << 20)
	const (
		workers = 8
		each    = 1000
		size    = 64
	)
	addrs := make(chan uint64, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				addr, err := a.Alloc(size, 0)
				if err != nil {
					t.Error(err)
					return
				}
				addrs <- addr
			}
		}()
	}
	wg.Wait()
	close(addrs)
	seen := map[uint64]bool{}
	for addr := range addrs {
		if seen[addr] {
			t.Fatalf("duplicate allocation at %#x", addr)
		}
		seen[addr] = true
	}
	if len(seen) != workers*each {
		t.Fatalf("got %d unique allocations", len(seen))
	}
}
