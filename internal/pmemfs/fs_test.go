package pmemfs

import (
	"bytes"
	"fmt"
	"testing"

	"cachekv/internal/hw"
)

func newFS(t *testing.T) (*hw.Machine, *FS, *hw.Thread) {
	t.Helper()
	m := hw.NewMachine(hw.Config{PMemBytes: 256 << 20})
	th := m.NewThread(0)
	fs, err := Mount(m, m.Alloc("fs", 64<<20, 0), th)
	if err != nil {
		t.Fatal(err)
	}
	return m, fs, th
}

func TestCreateWriteRead(t *testing.T) {
	_, fs, th := newFS(t)
	w, err := fs.Create(th, "000001.sst", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello sstable world")
	if err := w.Append(th, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(th); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != uint64(len(data)) {
		t.Fatalf("Size = %d", f.Size())
	}
	got := make([]byte, len(data))
	if err := f.ReadAt(th, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestOpenUnsealedFails(t *testing.T) {
	_, fs, th := newFS(t)
	if _, err := fs.Create(th, "f", 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("f"); err != ErrNotFound {
		t.Fatalf("Open(unsealed) = %v", err)
	}
}

func TestDuplicateCreate(t *testing.T) {
	_, fs, th := newFS(t)
	if _, err := fs.Create(th, "f", 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(th, "f", 4096); err != ErrExists {
		t.Fatalf("duplicate Create = %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	_, fs, th := newFS(t)
	w, _ := fs.Create(th, "small", 100)
	if err := w.Append(th, make([]byte, 101)); err != ErrNoSpace {
		t.Fatalf("overflow Append = %v", err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	_, fs, th := newFS(t)
	w, _ := fs.Create(th, "f", 4096)
	w.Append(th, []byte("abc"))
	w.Finish(th)
	f, _ := fs.Open("f")
	if err := f.ReadAt(th, 2, make([]byte, 10)); err == nil {
		t.Fatal("read past EOF should fail")
	}
}

func TestDeleteAndReuse(t *testing.T) {
	_, fs, th := newFS(t)
	w, _ := fs.Create(th, "a", 1<<20)
	w.Append(th, []byte("aaa"))
	w.Finish(th)
	if err := fs.Delete(th, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a"); err != ErrNotFound {
		t.Fatal("deleted file still opens")
	}
	if err := fs.Delete(th, "a"); err != ErrNotFound {
		t.Fatalf("double delete = %v", err)
	}
	// The freed extent should be reusable.
	w2, err := fs.Create(th, "b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(th, []byte("bbb"))
	w2.Finish(th)
	f, _ := fs.Open("b")
	got := make([]byte, 3)
	f.ReadAt(th, 0, got)
	if string(got) != "bbb" {
		t.Fatalf("reused extent corrupted: %q", got)
	}
}

func TestAbort(t *testing.T) {
	_, fs, th := newFS(t)
	w, _ := fs.Create(th, "tmp", 4096)
	w.Append(th, []byte("x"))
	w.Abort(th)
	if _, err := fs.Open("tmp"); err != ErrNotFound {
		t.Fatal("aborted file visible")
	}
	// Name reusable after abort.
	if _, err := fs.Create(th, "tmp", 4096); err != nil {
		t.Fatal(err)
	}
}

func TestList(t *testing.T) {
	_, fs, th := newFS(t)
	for _, name := range []string{"c", "a", "b"} {
		w, _ := fs.Create(th, name, 4096)
		w.Append(th, []byte("1"))
		w.Finish(th)
	}
	w, _ := fs.Create(th, "unsealed", 4096)
	_ = w
	got := fs.List()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("List = %v", got)
	}
	if sz, err := fs.Size("a"); err != nil || sz != 1 {
		t.Fatalf("Size(a) = %d, %v", sz, err)
	}
	if _, err := fs.Size("zz"); err != ErrNotFound {
		t.Fatal("Size of missing file should fail")
	}
}

func TestRemountRecoversDirectory(t *testing.T) {
	m := hw.NewMachine(hw.Config{PMemBytes: 256 << 20})
	th := m.NewThread(0)
	region := m.Alloc("fs", 64<<20, 0)
	fs, err := Mount(m, region, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w, err := fs.Create(th, fmt.Sprintf("%06d.sst", i), 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(th, []byte(fmt.Sprintf("content-%d", i)))
		if err := w.Finish(th); err != nil {
			t.Fatal(err)
		}
	}
	fs.Delete(th, "000002.sst")
	// Crash and remount: sealed files (minus the deleted one) must reappear
	// with intact contents.
	m.Crash()
	m.Recover()
	fs2, err := Mount(m, region, th)
	if err != nil {
		t.Fatal(err)
	}
	got := fs2.List()
	if len(got) != 4 {
		t.Fatalf("recovered %d files: %v", len(got), got)
	}
	f, err := fs2.Open("000003.sst")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.Size())
	f.ReadAt(th, 0, buf)
	if string(buf) != "content-3" {
		t.Fatalf("recovered content %q", buf)
	}
	// New files allocate past recovered ones without overlap.
	w, err := fs2.Create(th, "new.sst", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(th, []byte("new"))
	w.Finish(th)
	f3, _ := fs2.Open("000003.sst")
	buf3 := make([]byte, f3.Size())
	f3.ReadAt(th, 0, buf3)
	if string(buf3) != "content-3" {
		t.Fatal("new allocation overwrote recovered file")
	}
}

func TestUnsealedFileLostOnCrash(t *testing.T) {
	m := hw.NewMachine(hw.Config{PMemBytes: 256 << 20})
	th := m.NewThread(0)
	region := m.Alloc("fs", 64<<20, 0)
	fs, _ := Mount(m, region, th)
	w, _ := fs.Create(th, "wip", 4096)
	w.Append(th, []byte("partial"))
	m.Crash()
	m.Recover()
	fs2, err := Mount(m, region, th)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Open("wip"); err != ErrNotFound {
		t.Fatal("unsealed file survived crash as openable")
	}
}

func TestMountTooSmall(t *testing.T) {
	m := hw.NewMachine(hw.Config{PMemBytes: 64 << 20})
	th := m.NewThread(0)
	if _, err := Mount(m, m.Alloc("tiny", 4096, 0), th); err == nil {
		t.Fatal("tiny region should fail to mount")
	}
}
