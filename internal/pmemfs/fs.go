// Package pmemfs provides a minimal file layer over the simulated PMem, the
// role a DAX filesystem plays on the paper's testbed (all SSTables live in
// the Optane PMem, as in NoveLSM and ChameleonDB). Files are created with a
// capacity, appended sequentially, sealed, and later read or deleted.
//
// Directory metadata is itself persisted: every create/seal/delete appends a
// CRC-protected record to an on-PMem directory log written with non-temporal
// stores, and Mount replays that log. Crash at any point loses at most the
// unsealed file being written — the same contract a real filesystem gives
// LevelDB, whose recovery discards unfinished SSTables.
package pmemfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/util"
)

// Errors returned by the filesystem.
var (
	ErrNotFound = errors.New("pmemfs: file not found")
	ErrExists   = errors.New("pmemfs: file already exists")
	ErrNoSpace  = errors.New("pmemfs: out of space")
	ErrSealed   = errors.New("pmemfs: file is sealed")
)

const (
	dirLogSize = 1 << 20 // directory log area at the head of the region
	recCreate  = 1
	recSeal    = 2
	recDelete  = 3
)

type fileMeta struct {
	name   string
	addr   uint64
	cap    uint64
	size   uint64
	sealed bool
}

type extent struct{ addr, size uint64 }

// FS is one mounted filesystem instance.
type FS struct {
	m      *hw.Machine
	region hw.Region

	mu      sync.Mutex
	files   map[string]*fileMeta
	logTail uint64 // next free byte in the directory log
	next    uint64 // bump pointer in the data area
	free    []extent
}

// Mount opens (or initializes) a filesystem on region, replaying any
// directory log found there. The thread's clock is charged for the replay
// reads.
func Mount(m *hw.Machine, region hw.Region, th *hw.Thread) (*FS, error) {
	if region.Size < dirLogSize*2 {
		return nil, fmt.Errorf("pmemfs: region too small (%d bytes)", region.Size)
	}
	fs := &FS{
		m:       m,
		region:  region,
		files:   make(map[string]*fileMeta),
		logTail: region.Addr,
		next:    region.Addr + dirLogSize,
	}
	if err := fs.replay(th); err != nil {
		return nil, err
	}
	return fs, nil
}

// replay scans the directory log until the first invalid record.
func (fs *FS) replay(th *hw.Thread) error {
	addr := fs.region.Addr
	end := fs.region.Addr + dirLogSize
	var hdr [4]byte
	for addr+4 <= end {
		fs.m.PMem.Read(th.Clock, addr, hdr[:])
		recLen := util.Fixed32(hdr[:])
		if recLen == 0 || uint64(recLen) > dirLogSize || addr+4+uint64(recLen) > end {
			break
		}
		rec := make([]byte, recLen)
		fs.m.PMem.Read(th.Clock, addr+4, rec)
		if len(rec) < 5 {
			break
		}
		stored := util.Fixed32(rec[len(rec)-4:])
		body := rec[:len(rec)-4]
		if util.UnmaskCRC(stored) != util.CRC(body) {
			break
		}
		if err := fs.apply(body); err != nil {
			return err
		}
		addr += 4 + uint64(recLen)
	}
	fs.logTail = addr
	// Rebuild the bump pointer past the highest extent in use.
	for _, f := range fs.files {
		if f.addr+f.cap > fs.next {
			fs.next = f.addr + f.cap
		}
	}
	return nil
}

func (fs *FS) apply(body []byte) error {
	typ := body[0]
	name, n, err := util.LengthPrefixed(body[1:])
	if err != nil {
		return err
	}
	rest := body[1+n:]
	switch typ {
	case recCreate:
		if len(rest) < 16 {
			return util.ErrCorrupt
		}
		fs.files[string(name)] = &fileMeta{
			name: string(name),
			addr: util.Fixed64(rest),
			cap:  util.Fixed64(rest[8:]),
		}
	case recSeal:
		if len(rest) < 8 {
			return util.ErrCorrupt
		}
		if f, ok := fs.files[string(name)]; ok {
			f.size = util.Fixed64(rest)
			f.sealed = true
		}
	case recDelete:
		delete(fs.files, string(name))
	default:
		return util.ErrCorrupt
	}
	return nil
}

// appendLog persists one directory record (caller holds fs.mu).
func (fs *FS) appendLog(th *hw.Thread, body []byte) error {
	rec := make([]byte, 0, len(body)+8)
	rec = append(rec, body...)
	rec = util.PutFixed32(rec, util.MaskCRC(util.CRC(body)))
	framed := util.PutFixed32(nil, uint32(len(rec)))
	framed = append(framed, rec...)
	if fs.logTail+uint64(len(framed)) > fs.region.Addr+dirLogSize {
		return fmt.Errorf("pmemfs: directory log full")
	}
	fs.m.Cache.NTWrite(th.Clock, fs.logTail, framed)
	fs.logTail += uint64(len(framed))
	return nil
}

func createBody(name string, addr, capacity uint64) []byte {
	b := []byte{recCreate}
	b = util.PutLengthPrefixed(b, []byte(name))
	b = util.PutFixed64(b, addr)
	return util.PutFixed64(b, capacity)
}

func sealBody(name string, size uint64) []byte {
	b := []byte{recSeal}
	b = util.PutLengthPrefixed(b, []byte(name))
	return util.PutFixed64(b, size)
}

func deleteBody(name string) []byte {
	b := []byte{recDelete}
	return util.PutLengthPrefixed(b, []byte(name))
}

// allocExtent finds space for capacity bytes (caller holds fs.mu): best-fit
// from the free list, else the bump pointer.
func (fs *FS) allocExtent(capacity uint64) (uint64, error) {
	best := -1
	for i, e := range fs.free {
		if e.size >= capacity && (best < 0 || e.size < fs.free[best].size) {
			best = i
		}
	}
	if best >= 0 {
		e := fs.free[best]
		fs.free = append(fs.free[:best], fs.free[best+1:]...)
		if e.size > capacity {
			fs.free = append(fs.free, extent{e.addr + capacity, e.size - capacity})
		}
		return e.addr, nil
	}
	addr := (fs.next + 255) &^ 255
	if addr+capacity > fs.region.End() {
		return 0, ErrNoSpace
	}
	fs.next = addr + capacity
	return addr, nil
}

// Create allocates a file with the given byte capacity and returns a writer.
func (fs *FS) Create(th *hw.Thread, name string, capacity uint64) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, ErrExists
	}
	addr, err := fs.allocExtent(capacity)
	if err != nil {
		return nil, err
	}
	f := &fileMeta{name: name, addr: addr, cap: capacity}
	if err := fs.appendLog(th, createBody(name, addr, capacity)); err != nil {
		return nil, err
	}
	fs.files[name] = f
	return &Writer{fs: fs, f: f}, nil
}

// Open returns a reader for a sealed file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok || !f.sealed {
		return nil, ErrNotFound
	}
	return &File{fs: fs, f: f}, nil
}

// Delete removes a file and recycles its extent.
func (fs *FS) Delete(th *hw.Thread, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	if err := fs.appendLog(th, deleteBody(name)); err != nil {
		return err
	}
	delete(fs.files, name)
	fs.free = append(fs.free, extent{f.addr, f.cap})
	return nil
}

// List returns the names of sealed files, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n, f := range fs.files {
		if f.sealed {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Size returns a sealed file's length.
func (fs *FS) Size(name string) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return f.size, nil
}

// Writer appends to an unsealed file. Not safe for concurrent use.
type Writer struct {
	fs  *FS
	f   *fileMeta
	err error
}

// Append writes data at the current tail using non-temporal stores (the DAX
// equivalent of buffered writes + fsync in LevelDB; sequential whole-line
// traffic that does not disturb the LLC).
func (w *Writer) Append(th *hw.Thread, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.f.sealed {
		return ErrSealed
	}
	if w.f.size+uint64(len(data)) > w.f.cap {
		w.err = ErrNoSpace
		return w.err
	}
	w.fs.m.Cache.NTWrite(th.Clock, w.f.addr+w.f.size, data)
	w.f.size += uint64(len(data))
	return nil
}

// Offset returns the current file length.
func (w *Writer) Offset() uint64 { return w.f.size }

// Finish seals the file, making it visible to Open and durable in the
// directory log.
func (w *Writer) Finish(th *hw.Thread) error {
	if w.err != nil {
		return w.err
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if err := w.fs.appendLog(th, sealBody(w.f.name, w.f.size)); err != nil {
		return err
	}
	w.f.sealed = true
	return nil
}

// Abort discards an unsealed file, recycling its extent.
func (w *Writer) Abort(th *hw.Thread) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.f.sealed {
		return
	}
	_ = w.fs.appendLog(th, deleteBody(w.f.name))
	delete(w.fs.files, w.f.name)
	w.fs.free = append(w.fs.free, extent{w.f.addr, w.f.cap})
}

// File reads a sealed file.
type File struct {
	fs *FS
	f  *fileMeta
}

// Size returns the file length.
func (f *File) Size() uint64 { return f.f.size }

// ReadAt fills buf from the given offset, going through the LLC (repeated
// reads of hot SSTable blocks hit the cache, as on real hardware).
func (f *File) ReadAt(th *hw.Thread, off uint64, buf []byte) error {
	if off+uint64(len(buf)) > f.f.size {
		return fmt.Errorf("pmemfs: read [%d,%d) beyond EOF %d", off, off+uint64(len(buf)), f.f.size)
	}
	f.fs.m.Cache.Read(th.Clock, f.f.addr+off, buf, cache.DefaultPartition)
	return nil
}
