// Package kvstore defines the engine-neutral surface every KV store in the
// repository implements — CacheKV and both baselines plus their variants —
// along with the shared memtable helper the baseline engines build on. The
// benchmark harness drives engines exclusively through this interface, which
// is what makes the paper's head-to-head comparisons meaningful.
package kvstore

import (
	"errors"

	"cachekv/internal/hw"
	"cachekv/internal/lsm"
	"cachekv/internal/util"
)

// ErrNotFound is returned by Get when the key does not exist (or its newest
// version is a tombstone).
var ErrNotFound = errors.New("kvstore: key not found")

// DB is the engine interface. Every operation executes on behalf of a
// simulated thread whose virtual clock absorbs the operation's cost.
type DB interface {
	// Put stores key -> value.
	Put(th *hw.Thread, key, value []byte) error
	// Get returns the freshest value for key, or ErrNotFound.
	Get(th *hw.Thread, key []byte) ([]byte, error)
	// Delete removes key (writes a tombstone).
	Delete(th *hw.Thread, key []byte) error
	// Scan visits up to limit live entries with key >= start in order,
	// stopping early if fn returns false. It returns the number visited.
	Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error)
	// FlushAll forces every buffered write down to the storage component and
	// waits for background work to settle (used between benchmark phases).
	FlushAll(th *hw.Thread) error
	// Close releases background resources. The machine (and its PMem
	// contents) outlive the engine, which is how crash tests reopen state.
	Close(th *hw.Thread) error
	// Name identifies the engine variant in benchmark output.
	Name() string
}

// Stats common to all engines, exposed by the concrete types (not through DB,
// so each engine can extend its own).
type Stats struct {
	Puts    int64
	Gets    int64
	Deletes int64
	Hits    int64
	Misses  int64
}

// UserGetResult resolves the multi-source freshness race: engines gather the
// best candidate per layer and keep the one with the highest sequence.
type UserGetResult struct {
	Value []byte
	Seq   uint64
	Kind  util.ValueKind
	Found bool
}

// Consider merges a candidate into r if it is fresher than what r holds.
func (r *UserGetResult) Consider(value []byte, seq uint64, kind util.ValueKind) {
	if !r.Found || seq > r.Seq {
		r.Value, r.Seq, r.Kind, r.Found = value, seq, kind, true
	}
}

// UserScan drives a merged internal-key iterator (memtables over tree) and
// yields each live user key's freshest value, skipping shadowed versions and
// tombstones. It returns the number of entries visited.
func UserScan(it lsm.Iterator, start []byte, seq uint64, limit int, fn func(key, value []byte) bool) int {
	return UserScanTombs(it, start, seq, limit, nil, fn)
}

// UserScanTombs is UserScan with range-tombstone awareness. tombs is the
// pre-collected list of every range tombstone visible at the snapshot (a Seek
// past a tombstone's start key would never visit its entry, so coverage
// cannot be derived from the iterator alone). A key's freshest visible
// version is suppressed when some tombstone spans it with a strictly higher
// sequence — the equal-seq point write survives. KindRangeDel entries
// surfacing from the sources are structural, not key versions: they neither
// shadow a point write at the same user key nor appear in the output.
func UserScanTombs(it lsm.Iterator, start []byte, seq uint64, limit int, tombs []lsm.RangeDel, fn func(key, value []byte) bool) int {
	ik := util.MakeInternalKey(nil, start, seq, util.KindValue)
	it.Seek(ik)
	var lastUser []byte
	haveLast := false
	n := 0
	for it.Valid() && (limit <= 0 || n < limit) {
		key := it.Key()
		if key.Seq() > seq || key.Kind() == util.KindRangeDel {
			it.Next()
			continue
		}
		u := key.UserKey()
		if haveLast && string(u) == string(lastUser) {
			it.Next()
			continue
		}
		lastUser = append(lastUser[:0], u...)
		haveLast = true
		if key.Kind() == util.KindDelete {
			it.Next()
			continue
		}
		covered := false
		for _, rd := range tombs {
			if rd.Seq <= seq && rd.Covers(u, key.Seq()) {
				covered = true
				break
			}
		}
		if covered {
			it.Next()
			continue
		}
		n++
		if !fn(u, it.Value()) {
			break
		}
		it.Next()
	}
	return n
}
