package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachekv/internal/arena"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/lsm"
	"cachekv/internal/skiplist"
	"cachekv/internal/util"
)

// Placement selects which memory tier a memtable's persistent image lives in.
type Placement int

// Memtable placements.
const (
	// PlaceDRAM keeps the memtable only in DRAM (volatile; the engine must
	// WAL every write, as LevelDB does).
	PlaceDRAM Placement = iota
	// PlacePMem persists every entry to a PMem log as it is inserted
	// (NoveLSM / SLM-DB style in-place durability); index node updates also
	// dirty PMem cachelines.
	PlacePMem
)

// MemtableConfig describes one baseline memtable's hardware behaviour. The
// three flush disciplines reproduce the paper's Section II variants:
//
//   - FlushInstr=true (vanilla, ADR discipline): every entry's cachelines are
//     clflushed in ascending order right after the store, so adjacent lines
//     reach the XPBuffer together and combine.
//   - FlushInstr=false (the "-w/o-flush" variants on eADR): entries stay
//     dirty in the LLC until capacity eviction pushes them out in
//     LRU-shuffled order, reawakening write amplification (Ob1).
//   - SegmentBytes>0 (the "-cache" variants): entries accumulate in a pinned
//     cache segment and are flushed wholesale, in order, when it fills (Ob2's
//     mitigation).
type MemtableConfig struct {
	Machine   *hw.Machine
	Placement Placement

	FlushInstr bool
	// NodeWrites is how many index-node cachelines each insert dirties in
	// PMem (NoveLSM and SLM-DB keep their skiplist/B+-tree in PMem). Random
	// node lines are what shuffle the eviction stream in -w/o-flush mode.
	NodeWrites int
	// NodeRegion is the PMem area node writes scatter into.
	NodeRegion hw.Region
	// EntryArena is the PMem log entries are appended to (PlacePMem).
	EntryArena *arena.PArena
	// SegmentBytes activates -cache mode with pinned segments of this size.
	SegmentBytes uint64
	// Partition is the pinned cache partition for -cache mode.
	Partition cache.PartitionID
	// Seed makes the skiplist tower heights deterministic.
	Seed uint64
	// ExtraWriteNs is charged per insert for engine-specific persistent
	// bookkeeping outside this helper's scope (e.g. SLM-DB's persistent
	// allocator and validity-bitmap maintenance).
	ExtraWriteNs int64
}

// Memtable is the baseline engines' in-memory table: a concurrent skiplist
// of internal keys whose persistent image (when PMem-placed) is an append log
// in PMem. It deliberately mirrors LevelDB's MemTable API.
type Memtable struct {
	cfg  MemtableConfig
	list *skiplist.List
	size atomic.Int64
	// seal guards the PMem append cursor for -cache segment accounting.
	segMu   sync.Mutex
	segUsed uint64
	segBase uint64
	maxSeq  atomic.Uint64
}

func icmpBytes(a, b []byte) int {
	return util.CompareInternal(util.InternalKey(a), util.InternalKey(b))
}

// NewMemtable builds an empty memtable.
func NewMemtable(cfg MemtableConfig) *Memtable {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Memtable{cfg: cfg, list: skiplist.New(icmpBytes, cfg.Seed)}
}

// ApproximateSize returns the bytes inserted so far.
func (mt *Memtable) ApproximateSize() int64 { return mt.size.Load() }

// Len returns the entry count.
func (mt *Memtable) Len() int { return mt.list.Len() }

// MaxSeq returns the highest sequence number inserted.
func (mt *Memtable) MaxSeq() uint64 { return mt.maxSeq.Load() }

// EncodeEntry renders the persistent form of one entry: a length/CRC header
// so recovery can scan the log, then klen,vlen,seq,kind,key,value.
func EncodeEntry(dst []byte, ikey util.InternalKey, value []byte) []byte {
	body := util.PutUvarint(nil, uint64(len(ikey.UserKey())))
	body = util.PutUvarint(body, uint64(len(value)))
	body = util.PutFixed64(body, ikey.Trailer())
	body = append(body, ikey.UserKey()...)
	body = append(body, value...)
	dst = util.PutFixed32(dst, uint32(len(body)))
	dst = util.PutFixed32(dst, util.MaskCRC(util.CRC(body)))
	return append(dst, body...)
}

// DecodeEntry parses one encoded entry, returning the internal key, value and
// total bytes consumed. It returns util.ErrCorrupt at a torn or absent entry.
func DecodeEntry(src []byte) (util.InternalKey, []byte, int, error) {
	if len(src) < 8 {
		return nil, nil, 0, util.ErrCorrupt
	}
	blen := int(util.Fixed32(src))
	crc := util.Fixed32(src[4:])
	if blen == 0 || len(src)-8 < blen {
		return nil, nil, 0, util.ErrCorrupt
	}
	body := src[8 : 8+blen]
	if util.UnmaskCRC(crc) != util.CRC(body) {
		return nil, nil, 0, util.ErrCorrupt
	}
	klen, n1, err := util.Uvarint(body)
	if err != nil {
		return nil, nil, 0, err
	}
	vlen, n2, err := util.Uvarint(body[n1:])
	if err != nil {
		return nil, nil, 0, err
	}
	p := n1 + n2
	if len(body) < p+8+int(klen)+int(vlen) {
		return nil, nil, 0, util.ErrCorrupt
	}
	trailer := util.Fixed64(body[p:])
	p += 8
	ukey := body[p : p+int(klen)]
	value := body[p+int(klen) : p+int(klen)+int(vlen)]
	seq, kind := util.UnpackTrailer(trailer)
	ik := util.MakeInternalKey(nil, ukey, seq, kind)
	return ik, append([]byte(nil), value...), 8 + blen, nil
}

// Insert adds an entry, persisting it per the configured discipline and
// charging th for every hardware event on the way.
func (mt *Memtable) Insert(th *hw.Thread, ikey util.InternalKey, value []byte) error {
	m := mt.cfg.Machine
	enc := EncodeEntry(nil, ikey, value)

	if mt.cfg.Placement == PlacePMem {
		addr, err := mt.cfg.EntryArena.Alloc(uint64(len(enc)), 8)
		if err != nil {
			return fmt.Errorf("memtable: %w", err)
		}
		th.InPhase(hw.PhaseAppend, func() {
			part := cache.DefaultPartition
			if mt.cfg.SegmentBytes > 0 {
				part = mt.cfg.Partition
			}
			m.Cache.Write(th.Clock, addr, enc, part)
		})
		switch {
		case mt.cfg.SegmentBytes > 0:
			// -cache variant: flush the pinned segment wholesale when full.
			mt.segMu.Lock()
			if mt.segUsed == 0 {
				mt.segBase = addr
			}
			mt.segUsed += uint64(len(enc))
			flushBase, flushLen := uint64(0), uint64(0)
			if mt.segUsed >= mt.cfg.SegmentBytes {
				flushBase, flushLen = mt.segBase, mt.segUsed
				mt.segUsed = 0
			}
			mt.segMu.Unlock()
			if flushLen > 0 {
				th.InPhase(hw.PhaseFlushInstr, func() {
					m.Cache.Flush(th.Clock, flushBase, int(flushLen))
				})
			}
		case mt.cfg.FlushInstr:
			th.InPhase(hw.PhaseFlushInstr, func() {
				m.Cache.FlushOpt(th.Clock, addr, len(enc))
			})
		}
		// Index nodes live in PMem too: each insert dirties a few node
		// cachelines at effectively random addresses. These tower-pointer
		// updates are not individually flushed even by the vanilla systems
		// (recovery rebuilds links from the logged entries), so they always
		// leave the cache via eviction.
		if mt.cfg.NodeWrites > 0 && mt.cfg.NodeRegion.Size > 0 {
			th.InPhase(hw.PhaseIndex, func() {
				var word [8]byte
				for i := 0; i < mt.cfg.NodeWrites; i++ {
					lines := mt.cfg.NodeRegion.Size / 64
					naddr := mt.cfg.NodeRegion.Addr + th.RNG.Uint64n(lines)*64
					m.Cache.Write(th.Clock, naddr, word[:], cache.DefaultPartition)
				}
			})
		}
	}

	// The lookup index itself. PMem-resident skiplists pay PMem latency per
	// node visit; DRAM-resident ones pay DRAM latency.
	perVisit := m.Costs.DRAMAccess
	if mt.cfg.Placement == PlacePMem {
		perVisit = m.Costs.PMemReadRand
	}
	th.InPhase(hw.PhaseIndex, func() {
		mt.list.Insert(ikey, value, func(visits int) {
			th.Clock.Advance(int64(visits) * (perVisit + m.Costs.SkiplistVisit) / 4)
		})
	})

	if mt.cfg.ExtraWriteNs > 0 {
		th.AddPhase(hw.PhaseOther, mt.cfg.ExtraWriteNs)
		th.Clock.Advance(mt.cfg.ExtraWriteNs)
	}
	mt.size.Add(int64(len(enc)))
	for {
		cur := mt.maxSeq.Load()
		if ikey.Seq() <= cur || mt.maxSeq.CompareAndSwap(cur, ikey.Seq()) {
			break
		}
	}
	return nil
}

// Get returns the freshest entry at or below seq for ukey.
func (mt *Memtable) Get(th *hw.Thread, ukey []byte, seq uint64) (value []byte, foundSeq uint64, kind util.ValueKind, ok bool) {
	m := mt.cfg.Machine
	perVisit := m.Costs.DRAMAccess
	if mt.cfg.Placement == PlacePMem {
		perVisit = m.Costs.PMemReadRand
	}
	target := util.MakeInternalKey(nil, ukey, seq, util.KindValue)
	it := mt.list.NewIterator()
	it.Seek(target, func(visits int) {
		th.Clock.Advance(int64(visits) * (perVisit + m.Costs.SkiplistVisit) / 4)
	})
	if !it.Valid() {
		return nil, 0, 0, false
	}
	found := util.InternalKey(it.Key())
	if string(found.UserKey()) != string(ukey) {
		return nil, 0, 0, false
	}
	return it.Value(), found.Seq(), found.Kind(), true
}

// FlushRemainingSegment force-flushes a partially filled -cache segment
// (called when the memtable seals).
func (mt *Memtable) FlushRemainingSegment(th *hw.Thread) {
	if mt.cfg.SegmentBytes == 0 {
		return
	}
	mt.segMu.Lock()
	base, n := mt.segBase, mt.segUsed
	mt.segUsed = 0
	mt.segMu.Unlock()
	if n > 0 {
		mt.cfg.Machine.Cache.Flush(th.Clock, base, int(n))
	}
}

// Iter adapts the memtable to the lsm.Iterator interface for flushes and
// merged scans.
type Iter struct{ it *skiplist.Iterator }

// NewIter returns an unpositioned internal-key iterator.
func (mt *Memtable) NewIter() *Iter { return &Iter{it: mt.list.NewIterator()} }

// Valid reports whether the iterator is positioned.
func (i *Iter) Valid() bool { return i.it.Valid() }

// SeekToFirst positions at the smallest internal key.
func (i *Iter) SeekToFirst() { i.it.SeekToFirst() }

// Seek positions at the first entry >= ik.
func (i *Iter) Seek(ik util.InternalKey) { i.it.Seek(ik, nil) }

// Next advances the iterator.
func (i *Iter) Next() { i.it.Next() }

// Key returns the current internal key.
func (i *Iter) Key() util.InternalKey { return util.InternalKey(i.it.Key()) }

// Value returns the current value.
func (i *Iter) Value() []byte { return i.it.Value() }

var _ lsm.Iterator = (*Iter)(nil)

// RecoverEntries scans a PMem entry log from the start of region, invoking fn
// for every intact entry; it stops at the first torn entry (the durable
// prefix). Engines use it to rebuild a PMem-placed memtable after a crash.
func RecoverEntries(m *hw.Machine, region hw.Region, th *hw.Thread, fn func(ik util.InternalKey, value []byte)) uint64 {
	addr := region.Addr
	end := region.End()
	var hdr [8]byte
	for addr+8 <= end {
		m.PMem.Read(th.Clock, addr, hdr[:])
		blen := uint64(util.Fixed32(hdr[:]))
		if blen == 0 || addr+8+blen > end {
			break
		}
		buf := make([]byte, 8+blen)
		m.PMem.Read(th.Clock, addr, buf)
		ik, val, n, err := DecodeEntry(buf)
		if err != nil {
			break
		}
		fn(ik, val)
		addr += uint64(n)
		addr = (addr + 7) &^ 7
	}
	return addr - region.Addr
}
