package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"cachekv/internal/arena"
	"cachekv/internal/hw"
	"cachekv/internal/util"
)

func testEnv() (*hw.Machine, *hw.Thread) {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 512 << 20
	m := hw.NewMachine(cfg)
	return m, m.NewThread(0)
}

func TestEncodeDecodeEntry(t *testing.T) {
	f := func(key, value []byte, seq uint64, del bool) bool {
		seq &= util.MaxSequence
		kind := util.KindValue
		if del {
			kind = util.KindDelete
		}
		ik := util.MakeInternalKey(nil, key, seq, kind)
		enc := EncodeEntry(nil, ik, value)
		gotIK, gotVal, n, err := DecodeEntry(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return bytes.Equal(gotIK.UserKey(), key) && gotIK.Seq() == seq &&
			gotIK.Kind() == kind && bytes.Equal(gotVal, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntryCorrupt(t *testing.T) {
	ik := util.MakeInternalKey(nil, []byte("key"), 5, util.KindValue)
	enc := EncodeEntry(nil, ik, []byte("value"))
	// Truncations.
	for _, n := range []int{0, 4, 7, len(enc) - 1} {
		if _, _, _, err := DecodeEntry(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	// Bit flip in body.
	bad := append([]byte(nil), enc...)
	bad[10] ^= 0xFF
	if _, _, _, err := DecodeEntry(bad); err == nil {
		t.Fatal("corrupted body accepted")
	}
	// Zero-length header means unwritten space.
	if _, _, _, err := DecodeEntry(make([]byte, 16)); err == nil {
		t.Fatal("zero header accepted")
	}
}

func TestMemtableDRAMInsertGet(t *testing.T) {
	m, th := testEnv()
	mt := NewMemtable(MemtableConfig{Machine: m, Placement: PlaceDRAM})
	for i := 0; i < 1000; i++ {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%05d", i)), uint64(i+1), util.KindValue)
		if err := mt.Insert(th, ik, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Len() != 1000 {
		t.Fatalf("Len = %d", mt.Len())
	}
	if mt.MaxSeq() != 1000 {
		t.Fatalf("MaxSeq = %d", mt.MaxSeq())
	}
	v, seq, kind, ok := mt.Get(th, []byte("k00042"), util.MaxSequence)
	if !ok || string(v) != "v42" || seq != 43 || kind != util.KindValue {
		t.Fatalf("Get = %q, %d, %v, %v", v, seq, kind, ok)
	}
	if _, _, _, ok := mt.Get(th, []byte("missing"), util.MaxSequence); ok {
		t.Fatal("found missing key")
	}
}

func TestMemtableSnapshotReads(t *testing.T) {
	m, th := testEnv()
	mt := NewMemtable(MemtableConfig{Machine: m, Placement: PlaceDRAM})
	k := []byte("k")
	for seq := uint64(10); seq <= 50; seq += 10 {
		ik := util.MakeInternalKey(nil, k, seq, util.KindValue)
		mt.Insert(th, ik, []byte(fmt.Sprintf("v%d", seq)))
	}
	v, seq, _, ok := mt.Get(th, k, 35)
	if !ok || seq != 30 || string(v) != "v30" {
		t.Fatalf("snapshot read: %q @ %d, %v", v, seq, ok)
	}
	if _, _, _, ok := mt.Get(th, k, 5); ok {
		t.Fatal("read below first version succeeded")
	}
}

func TestMemtablePMemPersistsEntries(t *testing.T) {
	m, th := testEnv()
	region := m.Alloc("log", 16<<20, 0)
	nodes := m.Alloc("nodes", 16<<20, 0)
	mt := NewMemtable(MemtableConfig{
		Machine:    m,
		Placement:  PlacePMem,
		FlushInstr: true,
		NodeWrites: 2,
		NodeRegion: nodes,
		EntryArena: arena.NewPArena(region),
	})
	for i := 0; i < 500; i++ {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%05d", i)), uint64(i+1), util.KindValue)
		mt.Insert(th, ik, []byte(fmt.Sprintf("v%d", i)))
	}
	// Crash: eADR drains the cache; the entry log must replay completely.
	m.Crash()
	m.Recover()
	th2 := m.NewThread(0)
	got := map[string]string{}
	RecoverEntries(m, region, th2, func(ik util.InternalKey, val []byte) {
		got[string(ik.UserKey())] = string(val)
	})
	if len(got) != 500 {
		t.Fatalf("recovered %d entries, want 500", len(got))
	}
	if got["k00123"] != "v123" {
		t.Fatalf("recovered k00123 = %q", got["k00123"])
	}
}

func TestMemtableIterSorted(t *testing.T) {
	m, th := testEnv()
	mt := NewMemtable(MemtableConfig{Machine: m, Placement: PlaceDRAM})
	for i := 500; i > 0; i-- {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%05d", i)), uint64(i), util.KindValue)
		mt.Insert(th, ik, []byte("v"))
	}
	it := mt.NewIter()
	it.SeekToFirst()
	prev := ""
	n := 0
	for it.Valid() {
		cur := string(it.Key().UserKey())
		if prev != "" && cur <= prev {
			t.Fatalf("order violation: %s after %s", cur, prev)
		}
		prev = cur
		n++
		it.Next()
	}
	if n != 500 {
		t.Fatalf("iterated %d", n)
	}
}

func TestUserGetResultConsider(t *testing.T) {
	var r UserGetResult
	r.Consider([]byte("a"), 5, util.KindValue)
	r.Consider([]byte("b"), 3, util.KindValue) // older, ignored
	if string(r.Value) != "a" || r.Seq != 5 {
		t.Fatalf("kept %q@%d", r.Value, r.Seq)
	}
	r.Consider(nil, 9, util.KindDelete) // newer tombstone wins
	if r.Kind != util.KindDelete || r.Seq != 9 {
		t.Fatalf("tombstone lost: %v@%d", r.Kind, r.Seq)
	}
}

func TestUserScanSkipsShadowsAndTombstones(t *testing.T) {
	m, th := testEnv()
	mt := NewMemtable(MemtableConfig{Machine: m, Placement: PlaceDRAM})
	insert := func(k string, seq uint64, kind util.ValueKind, v string) {
		ik := util.MakeInternalKey(nil, []byte(k), seq, kind)
		mt.Insert(th, ik, []byte(v))
	}
	insert("a", 1, util.KindValue, "a1")
	insert("a", 5, util.KindValue, "a5")
	insert("b", 2, util.KindValue, "b2")
	insert("b", 6, util.KindDelete, "")
	insert("c", 3, util.KindValue, "c3")
	var got []string
	n := UserScan(mt.NewIter(), nil, util.MaxSequence, 0, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	})
	if n != 2 || got[0] != "a=a5" || got[1] != "c=c3" {
		t.Fatalf("UserScan = %v (n=%d)", got, n)
	}
	// At a snapshot before the tombstone and the overwrite, old values show.
	got = nil
	UserScan(mt.NewIter(), nil, 4, 0, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	})
	if len(got) != 3 || got[0] != "a=a1" || got[1] != "b=b2" || got[2] != "c=c3" {
		t.Fatalf("snapshot UserScan = %v", got)
	}
}

func TestMemtableCacheSegmentsFlushOnFill(t *testing.T) {
	m, th := testEnv()
	part, err := m.Cache.Reserve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	region := m.Alloc("log", 16<<20, 0)
	mt := NewMemtable(MemtableConfig{
		Machine:      m,
		Placement:    PlacePMem,
		SegmentBytes: 64 << 10,
		Partition:    part,
		EntryArena:   arena.NewPArena(region),
	})
	before := m.Cache.Stats()
	for i := 0; i < 2000; i++ {
		ik := util.MakeInternalKey(nil, []byte(fmt.Sprintf("k%06d", i)), uint64(i+1), util.KindValue)
		mt.Insert(th, ik, make([]byte, 64))
	}
	after := m.Cache.Stats()
	if after.Flushes == before.Flushes {
		t.Fatal("segment fills never triggered wholesale clflush")
	}
}
