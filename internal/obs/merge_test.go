package obs

import (
	"testing"

	"cachekv/internal/hw"
)

// TestCollectorMergeMatchesSingleStream pins the sharded-collection contract:
// per-shard collectors folded with Merge must be indistinguishable from one
// collector that saw every span — identical totals, identical per-layer
// attribution, identical histogram summaries (and hence percentiles).
func TestCollectorMergeMatchesSingleStream(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	th := m.NewThread(0)
	single := NewCollector()
	shards := []*Collector{NewCollector(), NewCollector()}

	for i := 0; i < 300; i++ {
		op := Op(i % int(NumOps))
		// Two spans over the same clock interval observe identical deltas, so
		// the single collector and the round-robin shard see the same stream.
		sp1 := single.StartOp(th, op)
		sp2 := shards[i%len(shards)].StartOp(th, op)
		th.InPhase(hw.PhaseIndex, func() { th.Clock.Advance(int64(50 + (i*7)%400)) })
		th.Clock.Advance(int64(i % 13)) // residual lands in the direct layer
		th.Clock.AdvanceTo(th.Clock.Now() + int64(i%5))
		sp2.End()
		sp1.End()
	}

	merged := NewCollector()
	for _, s := range shards {
		merged.Merge(s)
	}
	for op := Op(0); op < NumOps; op++ {
		if got, want := merged.TotalNs(op), single.TotalNs(op); got != want {
			t.Fatalf("%s: merged total %d != single %d", op, got, want)
		}
		for l := 0; l < hw.NumLayers; l++ {
			if got, want := merged.LayerNs(op, l), single.LayerNs(op, l); got != want {
				t.Fatalf("%s/%s: merged layer ns %d != single %d", op, hw.LayerName(l), got, want)
			}
		}
		ms, ss := merged.Hist(op).Summary(), single.Hist(op).Summary()
		if ms != ss {
			t.Fatalf("%s: merged summary %+v != single %+v", op, ms, ss)
		}
	}
}

// TestCollectorMergeDoesNotMoveDossiers: dossiers are capture state tied to
// where the slow op ran, not statistics — Merge must leave them behind.
func TestCollectorMergeDoesNotMoveDossiers(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	th := m.NewThread(0)
	src := NewCollector()
	src.EnableSlowOps(SlowOpPolicy{StaticNs: 10}, nil)
	sp := src.StartOp(th, OpPut)
	th.Clock.Advance(100)
	sp.End()
	if len(src.SlowOps()) != 1 {
		t.Fatalf("source dossiers = %d, want 1", len(src.SlowOps()))
	}

	dst := NewCollector()
	dst.Merge(src)
	if len(dst.SlowOps()) != 0 {
		t.Fatalf("Merge moved %d dossiers into the target", len(dst.SlowOps()))
	}
	if len(src.SlowOps()) != 1 {
		t.Fatal("Merge disturbed the source's dossiers")
	}
	if got := dst.TotalNs(OpPut); got != 100 {
		t.Fatalf("merged put total = %d, want 100", got)
	}
}
