package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cachekv/internal/histogram"
)

// diffRun builds a plausible self-consistent run for diff tests.
func diffRun() RunReport {
	return RunReport{
		Engine:     "CacheKV",
		Workload:   "ycsb-c",
		Ops:        1000,
		Threads:    1,
		ElapsedVNs: 1_000_000,
		KopsPerSec: 1000,
		OpStats: []OpStat{
			{
				Op: "get", Count: 1000, TotalNs: 500_000,
				Latency: histogram.Summary{MeanNs: 500, P99Ns: 900, P999Ns: 1500},
				Layers: []OpLayer{
					{Layer: "direct", Ns: 100_000},
					{Layer: "index", Ns: 400_000},
				},
			},
		},
	}
}

// withDwell attaches flow-control dwell counters to a run.
func withDwell(r RunReport, slowdownNs, stopNs int64) RunReport {
	reg := NewRegistry()
	reg.Counter("flow_dwell_slowdown_ns", func() int64 { return slowdownNs })
	reg.Counter("flow_dwell_stop_ns", func() int64 { return stopNs })
	r.Metrics = reg.Gather()
	return r
}

func TestDiffSelfIsClean(t *testing.T) {
	old := []RunReport{withDwell(diffRun(), 10_000, 5_000)}
	res := DiffRuns(old, old, DiffTolerances{})
	if reg := res.Regressions(); len(reg) != 0 {
		t.Fatalf("self-diff regressed: %+v", reg)
	}
	if len(res.Deltas) == 0 {
		t.Fatal("self-diff compared nothing")
	}
	if len(res.Missing) != 0 {
		t.Fatalf("self-diff missing runs: %v", res.Missing)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("clean table mentions regression:\n%s", buf.String())
	}
}

func TestDiffDetectsRegressions(t *testing.T) {
	old := withDwell(diffRun(), 10_000, 0)
	bad := withDwell(diffRun(), 10_000, 0)
	// +30% mean get latency (tolerance 15%), -30% throughput (15%).
	bad.KopsPerSec = 700
	bad.OpStats[0].TotalNs = 650_000
	bad.OpStats[0].Latency.MeanNs = 650

	res := DiffRuns([]RunReport{old}, []RunReport{bad}, DiffTolerances{})
	reg := res.Regressions()
	byMetric := map[string]bool{}
	for _, d := range reg {
		byMetric[d.Metric] = true
	}
	if !byMetric["kops_per_sec"] || !byMetric["op/get/mean_ns"] {
		t.Fatalf("expected throughput and mean regressions, got %+v", reg)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "<< REGRESSION") {
		t.Fatalf("table missing regression mark:\n%s", buf.String())
	}
}

func TestDiffDirectionAware(t *testing.T) {
	old := diffRun()
	better := diffRun()
	// Faster AND higher throughput: improvements never regress.
	better.KopsPerSec = 2000
	better.OpStats[0].TotalNs = 250_000
	better.OpStats[0].Latency = histogram.Summary{MeanNs: 250, P99Ns: 400, P999Ns: 700}
	better.OpStats[0].Layers = []OpLayer{
		{Layer: "direct", Ns: 50_000}, {Layer: "index", Ns: 200_000},
	}
	res := DiffRuns([]RunReport{old}, []RunReport{better}, DiffTolerances{})
	if reg := res.Regressions(); len(reg) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", reg)
	}
}

func TestDiffTailAndDwellGates(t *testing.T) {
	old := withDwell(diffRun(), 100_000, 0) // dwell frac 0.1
	bad := withDwell(diffRun(), 160_000, 0) // +60% dwell
	bad.OpStats[0].Latency.P999Ns = 2100    // +40% tail (tolerance 25%)
	res := DiffRuns([]RunReport{old}, []RunReport{bad}, DiffTolerances{})
	byMetric := map[string]bool{}
	for _, d := range res.Regressions() {
		byMetric[d.Metric] = true
	}
	if !byMetric["op/get/p999_ns"] || !byMetric["stall_dwell_frac"] {
		t.Fatalf("tail/dwell regression missed: %+v", res.Regressions())
	}
}

func TestDiffSkipsAbsentMetrics(t *testing.T) {
	// Old report predates p99.9 and dwell counters: those metrics must be
	// skipped, not failed.
	old := diffRun()
	old.OpStats[0].Latency.P999Ns = 0
	newer := withDwell(diffRun(), 1<<40, 1<<40)
	newer.OpStats[0].Latency.P999Ns = 99_999_999
	res := DiffRuns([]RunReport{old}, []RunReport{newer}, DiffTolerances{})
	for _, d := range res.Deltas {
		if d.Metric == "op/get/p999_ns" || d.Metric == "stall_dwell_frac" {
			t.Fatalf("metric absent on one side was compared: %+v", d)
		}
	}
	if reg := res.Regressions(); len(reg) != 0 {
		t.Fatalf("absent metrics regressed: %+v", reg)
	}
}

func TestDiffUnmatchedRunsListedNotFailed(t *testing.T) {
	old := diffRun()
	extra := diffRun()
	extra.Workload = "ycsb-a"
	res := DiffRuns([]RunReport{old}, []RunReport{old, extra}, DiffTolerances{})
	if len(res.Missing) != 1 || !strings.Contains(res.Missing[0], "new only") {
		t.Fatalf("missing list wrong: %v", res.Missing)
	}
	if reg := res.Regressions(); len(reg) != 0 {
		t.Fatalf("unmatched run caused regression: %+v", reg)
	}
}

func TestDiffLayerAbsoluteSlack(t *testing.T) {
	// A 10 ns/op layer tripling is noise, not a regression: the 50 ns/op
	// absolute slack must absorb it.
	old := diffRun()
	old.OpStats[0].Layers = []OpLayer{{Layer: "lock", Ns: 10_000}} // 10 ns/op
	bad := diffRun()
	bad.OpStats[0].Layers = []OpLayer{{Layer: "lock", Ns: 30_000}} // 30 ns/op
	res := DiffRuns([]RunReport{old}, []RunReport{bad}, DiffTolerances{})
	for _, d := range res.Regressions() {
		if strings.HasPrefix(d.Metric, "op/get/layer/") {
			t.Fatalf("noise-scale layer shift regressed: %+v", d)
		}
	}
	// A real shift (500 -> 900 ns/op) past slack and tolerance must trip.
	old.OpStats[0].Layers = []OpLayer{{Layer: "lock", Ns: 500_000}}
	bad.OpStats[0].Layers = []OpLayer{{Layer: "lock", Ns: 900_000}}
	res = DiffRuns([]RunReport{old}, []RunReport{bad}, DiffTolerances{})
	found := false
	for _, d := range res.Regressions() {
		if d.Metric == "op/get/layer/lock_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("real layer regression missed: %+v", res.Deltas)
	}
}

func TestExtractRunsTopLevelReport(t *testing.T) {
	rep := NewReport("test")
	rep.Runs = append(rep.Runs, diffRun())
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	runs, shape, err := ExtractRuns(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Workload != "ycsb-c" {
		t.Fatalf("runs = %+v", runs)
	}
	if !strings.Contains(shape, Schema) {
		t.Fatalf("shape label = %q", shape)
	}
}

func TestExtractRunsEmbedded(t *testing.T) {
	// BENCH_overload.json shape: legs[].run carries the RunReport.
	payload := map[string]any{
		"schema": "cachekv.bench_overload/v1",
		"legs": []any{
			map[string]any{"name": "flow", "run": diffRun()},
			map[string]any{"name": "baseline", "run": diffRun()},
		},
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	runs, shape, err := ExtractRuns(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || shape != "embedded runs" {
		t.Fatalf("runs = %d, shape = %q", len(runs), shape)
	}
	// Duplicate engine/workload pairs must pair positionally, not collide.
	res := DiffRuns(runs, runs, DiffTolerances{})
	if len(res.Missing) != 0 || len(res.Regressions()) != 0 {
		t.Fatalf("positional pairing broken: missing=%v reg=%v", res.Missing, res.Regressions())
	}
}

func TestExtractRunsRejectsJunk(t *testing.T) {
	if _, _, err := ExtractRuns([]byte("not json")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, _, err := ExtractRuns([]byte(`{"hello": "world"}`)); err == nil {
		t.Fatal("run-free JSON accepted")
	}
}
