package obs

import (
	"bytes"
	"math"
	"testing"

	"cachekv/internal/hw"
)

// slowTestThread builds a one-thread machine for span-driven capture tests.
func slowTestThread() (*hw.Machine, *hw.Thread) {
	m := hw.NewMachine(hw.DefaultConfig())
	return m, m.NewThread(0)
}

func TestSlowOpStaticCapture(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 1000}, nil)

	// Fast op: below the threshold, no dossier, no threshold movement.
	sp := c.StartOp(th, OpGet)
	th.Clock.Advance(500)
	sp.End()
	if got := c.SlowOps(); len(got) != 0 {
		t.Fatalf("sub-threshold op captured: %+v", got)
	}

	// Slow op: phase time plus residual, both must appear in the dossier.
	sp = c.StartOp(th, OpPut)
	th.InPhase(hw.PhaseWAL, func() { th.Clock.Advance(3000) })
	th.Clock.Advance(500) // residual -> direct layer
	sp.End()

	ds := c.SlowOps()
	if len(ds) != 1 {
		t.Fatalf("dossiers = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Op != "put" || d.TotalNs != 3500 || d.ThresholdNs != 1000 || d.Adaptive {
		t.Fatalf("dossier header wrong: %+v", d)
	}
	if d.EndVNs-d.StartVNs != d.TotalNs {
		t.Fatalf("window inconsistent: %+v", d)
	}
	if d.WaitNs != 0 || d.BusyNs != 3500 {
		t.Fatalf("wait/busy split wrong: wait=%d busy=%d", d.WaitNs, d.BusyNs)
	}
	byLayer := map[string]int64{}
	for _, l := range d.Layers {
		byLayer[l.Layer] += l.Ns
	}
	if byLayer["wal"] != 3000 || byLayer["direct"] != 500 {
		t.Fatalf("layer breakdown wrong: %v", byLayer)
	}
	if bad := VerifySlowOps(ds); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

func TestSlowOpWaitSplit(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 100}, nil)

	sp := c.StartOp(th, OpPut)
	th.Clock.Advance(400)                    // busy
	th.Clock.AdvanceTo(th.Clock.Now() + 600) // wait (e.g. blocked on a flush)
	sp.End()

	ds := c.SlowOps()
	if len(ds) != 1 {
		t.Fatalf("dossiers = %d, want 1", len(ds))
	}
	if ds[0].WaitNs != 600 || ds[0].BusyNs != 400 || ds[0].TotalNs != 1000 {
		t.Fatalf("wait/busy split wrong: %+v", ds[0])
	}
}

func TestSlowOpPerOpThreshold(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	var pol SlowOpPolicy
	pol.StaticNs = 1000
	pol.PerOpNs[OpGet] = 50 // gets trigger far earlier than the uniform floor
	c.EnableSlowOps(pol, nil)

	if got := c.SlowOpThreshold(OpGet); got != 50 {
		t.Fatalf("get threshold = %d, want 50", got)
	}
	if got := c.SlowOpThreshold(OpPut); got != 1000 {
		t.Fatalf("put threshold = %d, want 1000", got)
	}
	sp := c.StartOp(th, OpGet)
	th.Clock.Advance(200)
	sp.End()
	sp = c.StartOp(th, OpPut)
	th.Clock.Advance(200)
	sp.End()
	ds := c.SlowOps()
	if len(ds) != 1 || ds[0].Op != "get" {
		t.Fatalf("per-op threshold not honored: %+v", ds)
	}
}

func TestSlowOpAdaptiveArming(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{MinCount: 16, RefreshEvery: 8, Quantile: 99, Multiplier: 4}, nil)

	// Disarmed until MinCount records exist.
	if got := c.SlowOpThreshold(OpGet); got != math.MaxInt64 {
		t.Fatalf("adaptive threshold armed early: %d", got)
	}
	for i := 0; i < 16; i++ {
		sp := c.StartOp(th, OpGet)
		th.Clock.Advance(100)
		sp.End()
	}
	thr := c.SlowOpThreshold(OpGet)
	if thr == math.MaxInt64 || thr <= 0 {
		t.Fatalf("adaptive threshold never armed: %d", thr)
	}
	// All samples were 100 ns, so the armed threshold is ~p99*4 = a few
	// hundred ns; an op far outside the distribution must be captured as
	// adaptive.
	sp := c.StartOp(th, OpGet)
	th.Clock.Advance(thr + 1)
	sp.End()
	ds := c.SlowOps()
	if len(ds) != 1 || !ds[0].Adaptive {
		t.Fatalf("adaptive outlier not captured: %+v", ds)
	}
	if bad := VerifySlowOps(ds); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

func TestSlowOpRingWrapDrops(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 10, Capacity: 4}, nil)

	for i := 0; i < 6; i++ {
		sp := c.StartOp(th, OpPut)
		th.Clock.Advance(100)
		sp.End()
	}
	ds := c.SlowOps()
	if len(ds) != 4 {
		t.Fatalf("retained = %d, want 4", len(ds))
	}
	if c.SlowOpsDropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.SlowOpsDropped())
	}
	// Oldest evicted: surviving seqs are 3..6 in order.
	for i, d := range ds {
		if d.Seq != uint64(i+3) {
			t.Fatalf("ring order wrong: %v", ds)
		}
	}
}

func TestSlowOpEventWindow(t *testing.T) {
	_, th := slowTestThread()
	tr := NewTrace(16)
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 100, LookbackNs: 50}, tr)
	c.SetSlowOpContext(func() string { return "slowdown" })

	th.Clock.Advance(1000)
	tr.Emit(960, "flush_start", "slot", 1) // inside the 50 ns lookback window
	tr.Emit(500, "memtable_seal")          // before the window: excluded
	sp := c.StartOp(th, OpPut)
	th.Clock.Advance(200)
	tr.Emit(1100, "write_delay", "wait_ns", 80) // during the op
	sp.End()
	tr.Emit(5000, "flush_end") // after the op: excluded

	ds := c.SlowOps()
	if len(ds) != 1 {
		t.Fatalf("dossiers = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.FlowState != "slowdown" {
		t.Fatalf("flow state not stamped: %+v", d)
	}
	if d.WindowStartVNs != d.StartVNs-50 {
		t.Fatalf("lookback window wrong: %+v", d)
	}
	if len(d.Events) != 2 || d.Events[0].Type != "flush_start" || d.Events[1].Type != "write_delay" {
		t.Fatalf("event window wrong: %+v", d.Events)
	}
	for _, ev := range d.Events {
		if ev.Seq != 0 {
			t.Fatalf("event seq not normalized: %+v", ev)
		}
	}
	if d.EventsTruncated {
		t.Fatal("window incorrectly marked truncated")
	}
	if bad := VerifySlowOps(ds); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

func TestSlowOpDisarmedIsInert(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	if got := c.SlowOpThreshold(OpPut); got != math.MaxInt64 {
		t.Fatalf("disarmed threshold = %d, want MaxInt64", got)
	}
	sp := c.StartOp(th, OpPut)
	th.Clock.Advance(1 << 40)
	sp.End()
	if c.SlowOps() != nil || c.SlowOpsDropped() != 0 {
		t.Fatal("disarmed collector captured dossiers")
	}
	var buf bytes.Buffer
	if err := c.WriteSlowOpsJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("disarmed JSONL = %q, %v", buf.String(), err)
	}
	// Nil collector: every surface is a no-op.
	var nc *Collector
	nc.EnableSlowOps(SlowOpPolicy{StaticNs: 1}, nil)
	nc.SetSlowOpContext(func() string { return "x" })
	if nc.SlowOps() != nil || nc.SlowOpsDropped() != 0 || nc.SlowOpThreshold(OpGet) != math.MaxInt64 {
		t.Fatal("nil collector not inert")
	}
}

func TestSlowOpRearmKeepsDossiers(t *testing.T) {
	_, th := slowTestThread()
	c := NewCollector()
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 10}, nil)
	sp := c.StartOp(th, OpPut)
	th.Clock.Advance(100)
	sp.End()
	// A reopen re-arms with a different policy; existing dossiers survive and
	// the original thresholds stay in force.
	c.EnableSlowOps(SlowOpPolicy{StaticNs: 1 << 60}, nil)
	if len(c.SlowOps()) != 1 {
		t.Fatal("re-arming dropped existing dossiers")
	}
	if got := c.SlowOpThreshold(OpPut); got != 10 {
		t.Fatalf("re-arming replaced thresholds: %d", got)
	}
}

func TestVerifySlowOpsCatchesCorruption(t *testing.T) {
	good := Dossier{
		Seq: 1, Op: "put", StartVNs: 100, EndVNs: 300, WindowStartVNs: 50,
		TotalNs: 200, WaitNs: 50, BusyNs: 150, ThresholdNs: 100,
		Layers: []OpLayer{{Layer: "wal", Ns: 200}},
		Events: []Event{{VNs: 120, Type: "flush_start"}},
	}
	if bad := VerifySlowOps([]Dossier{good}); len(bad) != 0 {
		t.Fatalf("clean dossier flagged: %v", bad)
	}
	cases := []struct {
		name string
		mut  func(*Dossier)
	}{
		{"layer sum over total", func(d *Dossier) { d.Layers[0].Ns = 500 }},
		{"negative wait", func(d *Dossier) { d.WaitNs, d.BusyNs = -1, 201 }},
		{"split mismatch", func(d *Dossier) { d.BusyNs = 100 }},
		{"below threshold", func(d *Dossier) { d.ThresholdNs = 10000 }},
		{"window mismatch", func(d *Dossier) { d.EndVNs = 999 }},
		{"event outside window", func(d *Dossier) { d.Events[0].VNs = 10 }},
	}
	for _, tc := range cases {
		d := good
		d.Layers = []OpLayer{good.Layers[0]}
		d.Events = []Event{good.Events[0]}
		tc.mut(&d)
		if bad := VerifySlowOps([]Dossier{d}); len(bad) == 0 {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func TestEventsBetweenTruncation(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 4; i++ {
		tr.Emit(int64(i*100), "e", "i", i)
	}
	// Unwrapped, all in window, under max: complete.
	evs, trunc := tr.EventsBetween(0, 1000, 10)
	if len(evs) != 4 || trunc {
		t.Fatalf("full window: %d events, trunc=%v", len(evs), trunc)
	}
	// More matches than max: keep the latest, flag truncation.
	evs, trunc = tr.EventsBetween(0, 1000, 2)
	if len(evs) != 2 || !trunc || evs[0].VNs != 300 || evs[1].VNs != 400 {
		t.Fatalf("max-capped window wrong: %+v trunc=%v", evs, trunc)
	}
	// Wrap the ring: events 1-2 dropped; a window reaching below the oldest
	// retained timestamp is incomplete.
	tr.Emit(500, "e", "i", 5)
	tr.Emit(600, "e", "i", 6)
	evs, trunc = tr.EventsBetween(0, 1000, 10)
	if len(evs) != 4 || !trunc {
		t.Fatalf("wrapped window: %d events, trunc=%v", len(evs), trunc)
	}
	// A window entirely above the dropped region is complete again.
	if _, trunc = tr.EventsBetween(400, 1000, 10); trunc {
		t.Fatal("window above dropped region marked truncated")
	}
	// Nil trace and zero max are inert.
	var nt *Trace
	if evs, trunc := nt.EventsBetween(0, 1, 1); evs != nil || trunc {
		t.Fatal("nil trace not inert")
	}
}
