package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
)

// Schema tags every report this package emits, so consumers can reject
// payloads from a different era. Bump on breaking changes.
const Schema = "cachekv.obs/v1"

// Canonical metric names shared by every tool's registry, so the same report
// parser works against cachekv-bench, ycsb, crashsweep, and cachekv-cli
// output. Verify's invariants are phrased over these names.
const (
	MPMemLineArrivals = "pmem_line_arrivals"
	MPMemLineHits     = "pmem_line_hits"
	MPMemXPLineEvicts = "pmem_xpline_evicts"
	MPMemRMWEvicts    = "pmem_rmw_evicts"
	MPMemMediaReadB   = "pmem_media_read_bytes"
	MPMemMediaWriteB  = "pmem_media_write_bytes"
	MPMemCallerWriteB = "pmem_caller_write_bytes"
	MPMemWriteHit     = "pmem_write_hit_ratio"
	MPMemWriteAmp     = "pmem_write_amplification"

	MLLCHits       = "llc_hits"
	MLLCMisses     = "llc_misses"
	MLLCProbes     = "llc_probes"
	MLLCEvictions  = "llc_evictions"
	MLLCWritebacks = "llc_writebacks"
	MLLCFlushes    = "llc_flush_lines"
	MLLCHitRatio   = "llc_hit_ratio"

	MBlockCacheHits   = "block_cache_hits"
	MBlockCacheMisses = "block_cache_misses"
	MBlockCacheProbes = "block_cache_probes"
	MBlockCacheRatio  = "block_cache_hit_ratio"

	MFilterProbes    = "filter_probes"
	MFilterNegatives = "filter_negatives"
	MFilterNegRatio  = "filter_negative_ratio"

	MTraceEvents  = "trace_events"
	MTraceDropped = "trace_dropped_total"
)

// RegisterMachine registers the platform's hardware counters (PMem device and
// LLC) under the canonical names.
func RegisterMachine(r *Registry, m *hw.Machine) {
	if r == nil || m == nil {
		return
	}
	dev := m.PMem
	r.Counter(MPMemLineArrivals, func() int64 { return dev.Counters.LineArrivals.Load() })
	r.Counter(MPMemLineHits, func() int64 { return dev.Counters.LineHits.Load() })
	r.Counter(MPMemXPLineEvicts, func() int64 { return dev.Counters.XPLineEvicts.Load() })
	r.Counter(MPMemRMWEvicts, func() int64 { return dev.Counters.RMWEvicts.Load() })
	r.Counter(MPMemMediaReadB, func() int64 { return dev.Counters.MediaReadB.Load() })
	r.Counter(MPMemMediaWriteB, func() int64 { return dev.Counters.MediaWriteB.Load() })
	r.Counter(MPMemCallerWriteB, func() int64 { return dev.Counters.CallerWriteB.Load() })
	r.Gauge(MPMemWriteHit, func() float64 {
		return SafeRatio(dev.Counters.LineHits.Load(), dev.Counters.LineArrivals.Load())
	})
	r.Gauge(MPMemWriteAmp, func() float64 {
		return SafeRatio(dev.Counters.MediaWriteB.Load(), dev.Counters.CallerWriteB.Load())
	})
	llc := m.Cache
	r.Counter(MLLCHits, func() int64 { return llc.Stats().Hits })
	r.Counter(MLLCMisses, func() int64 { return llc.Stats().Misses })
	r.Counter(MLLCProbes, func() int64 { s := llc.Stats(); return s.Hits + s.Misses })
	r.Counter(MLLCEvictions, func() int64 { return llc.Stats().Evictions })
	r.Counter(MLLCWritebacks, func() int64 { return llc.Stats().Writebacks })
	r.Counter(MLLCFlushes, func() int64 { return llc.Stats().Flushes })
	r.Gauge(MLLCHitRatio, func() float64 {
		s := llc.Stats()
		return SafeRatio(s.Hits, s.Hits+s.Misses)
	})
}

// ObsRegistrar is implemented by engines that publish their own counters.
type ObsRegistrar interface {
	RegisterObs(*Registry)
}

// blockCacheStatser / filterStatser mirror the optional interfaces cachekv's
// Metrics already probes on engines.
type blockCacheStatser interface {
	BlockCacheStats() (hits, misses int64)
}
type filterStatser interface {
	FilterStats() (probes, negatives int64)
}

// RegisterKV registers whatever observability surfaces the engine exposes:
// block-cache stats, filter stats, and any engine-specific counters (via
// ObsRegistrar).
func RegisterKV(r *Registry, db any) {
	if r == nil || db == nil {
		return
	}
	if bc, ok := db.(blockCacheStatser); ok {
		r.Counter(MBlockCacheHits, func() int64 { h, _ := bc.BlockCacheStats(); return h })
		r.Counter(MBlockCacheMisses, func() int64 { _, m := bc.BlockCacheStats(); return m })
		r.Counter(MBlockCacheProbes, func() int64 { h, m := bc.BlockCacheStats(); return h + m })
		r.Gauge(MBlockCacheRatio, func() float64 { h, m := bc.BlockCacheStats(); return SafeRatio(h, h+m) })
	}
	if f, ok := db.(filterStatser); ok {
		r.Counter(MFilterProbes, func() int64 { p, _ := f.FilterStats(); return p })
		r.Counter(MFilterNegatives, func() int64 { _, n := f.FilterStats(); return n })
		r.Gauge(MFilterNegRatio, func() float64 { p, n := f.FilterStats(); return SafeRatio(n, p) })
	}
	if reg, ok := db.(ObsRegistrar); ok {
		reg.RegisterObs(r)
	}
}

// RegisterTrace publishes a trace's emission counters.
func RegisterTrace(r *Registry, t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.Counter(MTraceEvents, func() int64 { return int64(t.Seq()) })
	r.Counter(MTraceDropped, func() int64 { return int64(t.Dropped()) })
}

// OpLayer is one layer's share of an op type's virtual time.
type OpLayer struct {
	Layer string `json:"layer"`
	Ns    int64  `json:"ns"`
}

// OpStat is one op type's latency distribution plus per-layer attribution.
type OpStat struct {
	Op      string            `json:"op"`
	Count   int64             `json:"count"`
	TotalNs int64             `json:"total_ns"`
	Latency histogram.Summary `json:"latency"`
	Layers  []OpLayer         `json:"layers,omitempty"`
}

// LayerStat is one attribution layer's machine-wide hardware totals.
type LayerStat struct {
	Layer             string `json:"layer"`
	Ns                int64  `json:"ns"`
	WaitNs            int64  `json:"wait_ns,omitempty"`
	MediaWriteB       int64  `json:"media_write_bytes"`
	MediaReadB        int64  `json:"media_read_bytes"`
	CallerWriteB      int64  `json:"caller_write_bytes"`
	LineArrivals      int64  `json:"line_arrivals"`
	LineHits          int64  `json:"line_hits"`
	XPLineEvicts      int64  `json:"xpline_evicts"`
	RMWEvicts         int64  `json:"rmw_evicts"`
	LLCWritebackLines int64  `json:"llc_writeback_lines"`
	LLCFlushLines     int64  `json:"llc_flush_lines"`
}

// RunReport is one workload run's full telemetry: throughput, per-op-type
// attribution, machine-wide per-layer hardware totals, the metrics snapshot,
// and (optionally) the retained event trace. It deliberately carries no
// wall-clock timestamps so identical runs produce identical reports.
type RunReport struct {
	Engine         string      `json:"engine"`
	Workload       string      `json:"workload"`
	Ops            int64       `json:"ops"`
	Threads        int         `json:"threads"`
	ElapsedVNs     int64       `json:"elapsed_v_ns"`
	ThreadVNs      int64       `json:"thread_v_ns,omitempty"`
	KopsPerSec     float64     `json:"kops_per_sec"`
	OpStats        []OpStat    `json:"op_stats,omitempty"`
	Layers         []LayerStat `json:"layers,omitempty"`
	Metrics        *Snapshot   `json:"metrics,omitempty"`
	Events         []Event     `json:"events,omitempty"`
	SlowOps        []Dossier   `json:"slow_ops,omitempty"`
	SlowOpsDropped uint64      `json:"slow_ops_dropped,omitempty"`
}

// Report is the top-level schema every tool emits.
type Report struct {
	Schema string      `json:"schema"`
	Tool   string      `json:"tool"`
	Runs   []RunReport `json:"runs"`
}

// NewReport starts a report for the named tool.
func NewReport(tool string) *Report {
	return &Report{Schema: Schema, Tool: tool}
}

// OpStats digests a collector into per-op-type stats, skipping idle op types.
func (c *Collector) OpStats() []OpStat {
	if c == nil {
		return nil
	}
	var out []OpStat
	for op := Op(0); op < NumOps; op++ {
		h := c.hist[op]
		if h.Count() == 0 {
			continue
		}
		st := OpStat{
			Op:      op.String(),
			Count:   h.Count(),
			TotalNs: c.totalNs[op].Load(),
			Latency: h.Summary(),
		}
		for l := 0; l < hw.NumLayers; l++ {
			if ns := c.layerNs[op][l].Load(); ns != 0 {
				st.Layers = append(st.Layers, OpLayer{Layer: hw.LayerName(l), Ns: ns})
			}
		}
		out = append(out, st)
	}
	return out
}

// LayersFromTally converts a tally snapshot into named layer stats, skipping
// all-zero layers.
func LayersFromTally(s sim.TallySnapshot) []LayerStat {
	var out []LayerStat
	for i := 0; i < hw.NumLayers && i < len(s); i++ {
		c := s[i]
		if c.IsZero() {
			continue
		}
		out = append(out, LayerStat{
			Layer:             hw.LayerName(i),
			Ns:                c.Ns,
			WaitNs:            c.WaitNs,
			MediaWriteB:       c.MediaWriteB,
			MediaReadB:        c.MediaReadB,
			CallerWriteB:      c.CallerWriteB,
			LineArrivals:      c.LineArrivals,
			LineHits:          c.LineHits,
			XPLineEvicts:      c.XPLineEvicts,
			RMWEvicts:         c.RMWEvicts,
			LLCWritebackLines: c.LLCWritebackLines,
			LLCFlushLines:     c.LLCFlushLines,
		})
	}
	return out
}

// within reports |a-b| ≤ tol·max(|a|,|b|), with exact match required at 0.
func within(a, b int64, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 0 {
		m = -m
	}
	return float64(d) <= tol*float64(m)
}

// Verify checks the run's internal invariants and returns a description of
// each violation (empty means the report is self-consistent):
//
//   - per-op per-layer virtual ns sums to the op's total within 1%;
//   - summed foreground op time matches ThreadVNs within 1% (when present);
//   - per-layer media/caller write bytes sum to the device's counters (the
//     layer table and the PMem counters are two views of the same events);
//   - XPBuffer hits ≤ arrivals; media write bytes ≥ caller write bytes;
//   - LLC and block-cache hits + misses == probes.
func (r *RunReport) Verify() []string {
	var bad []string
	var fgNs int64
	for _, st := range r.OpStats {
		var sum int64
		for _, l := range st.Layers {
			sum += l.Ns
		}
		if !within(sum, st.TotalNs, 0.01) {
			bad = append(bad, fmt.Sprintf("op %s: layer ns sum %d != total %d", st.Op, sum, st.TotalNs))
		}
		fg := true
		for op := Op(0); op < NumOps; op++ {
			if op.String() == st.Op {
				fg = op.foreground()
			}
		}
		if fg {
			fgNs += st.TotalNs
		}
	}
	if r.ThreadVNs > 0 && len(r.OpStats) > 0 {
		if !within(fgNs, r.ThreadVNs, 0.01) {
			bad = append(bad, fmt.Sprintf("foreground op ns %d != thread busy ns %d", fgNs, r.ThreadVNs))
		}
	}
	if len(r.Layers) > 0 && r.Metrics != nil {
		var media, caller, reads int64
		for _, l := range r.Layers {
			media += l.MediaWriteB
			caller += l.CallerWriteB
			reads += l.MediaReadB
		}
		if dev := r.Metrics.Int(MPMemMediaWriteB); !within(media, dev, 0.01) {
			bad = append(bad, fmt.Sprintf("layer media write bytes %d != device %d", media, dev))
		}
		if dev := r.Metrics.Int(MPMemCallerWriteB); !within(caller, dev, 0.01) {
			bad = append(bad, fmt.Sprintf("layer caller write bytes %d != device %d", caller, dev))
		}
		if dev := r.Metrics.Int(MPMemMediaReadB); !within(reads, dev, 0.01) {
			bad = append(bad, fmt.Sprintf("layer media read bytes %d != device %d", reads, dev))
		}
	}
	if m := r.Metrics; m != nil {
		if _, ok := m.Get(MPMemLineArrivals); ok {
			if m.Int(MPMemLineHits) > m.Int(MPMemLineArrivals) {
				bad = append(bad, "pmem line hits > arrivals")
			}
			// Every caller byte lands in some staged XPLine, each line arrival
			// carries at most one line's worth of payload, and every staged
			// line is eventually written out whole — so media bytes can fall
			// short of caller bytes only by what write combining absorbed:
			// one line per hit.
			xls := sim.DefaultCosts().XPLineSize
			if m.Int(MPMemMediaWriteB)+xls*m.Int(MPMemLineHits) < m.Int(MPMemCallerWriteB) {
				bad = append(bad, "media write bytes < caller write bytes beyond combining allowance")
			}
		}
		if _, ok := m.Get(MLLCProbes); ok {
			if m.Int(MLLCHits)+m.Int(MLLCMisses) != m.Int(MLLCProbes) {
				bad = append(bad, "llc hits+misses != probes")
			}
		}
		if _, ok := m.Get(MBlockCacheProbes); ok {
			if m.Int(MBlockCacheHits)+m.Int(MBlockCacheMisses) != m.Int(MBlockCacheProbes) {
				bad = append(bad, "block cache hits+misses != probes")
			}
		}
		if _, ok := m.Get(MFilterProbes); ok {
			if m.Int(MFilterNegatives) > m.Int(MFilterProbes) {
				bad = append(bad, "filter negatives > probes")
			}
		}
	}
	bad = append(bad, VerifySlowOps(r.SlowOps)...)
	return bad
}

// Verify checks every run in the report.
func (r *Report) Verify() []string {
	var bad []string
	if r.Schema != Schema {
		bad = append(bad, fmt.Sprintf("schema %q != %q", r.Schema, Schema))
	}
	for i := range r.Runs {
		for _, v := range r.Runs[i].Verify() {
			bad = append(bad, fmt.Sprintf("run %d (%s/%s): %s", i, r.Runs[i].Engine, r.Runs[i].Workload, v))
		}
	}
	return bad
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadReport parses a report from path and checks its schema tag.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("obs: report schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}
