package obs

import (
	"fmt"
	"io"
	"sort"

	"cachekv/internal/hw"
)

// ProfileEntry is one cell of the continuous virtual-time profile: how many
// samples a named thread spent in one attribution layer, split busy vs wait.
// Threads with the same name (e.g. the per-job flush threads of one shard)
// fold into one entry.
type ProfileEntry struct {
	Thread  string `json:"thread"`
	Kind    string `json:"kind"` // "busy" or "wait"
	Layer   string `json:"layer"`
	Samples int64  `json:"samples"`
}

// Profiles aggregates the machine's per-thread sampling profiles into named
// entries, sorted by thread, kind, layer. Empty when the machine was built
// without EnableProfiler.
func Profiles(m *hw.Machine) []ProfileEntry {
	if m == nil || m.ProfileStep() == 0 {
		return nil
	}
	acc := make(map[[3]string]int64)
	for _, th := range m.ProfiledThreads() {
		p := th.Profile()
		if p == nil {
			continue
		}
		for l := 0; l < hw.NumLayers; l++ {
			if v := p.Busy(l); v > 0 {
				acc[[3]string{th.Name(), "busy", hw.LayerName(l)}] += v
			}
			if v := p.Wait(l); v > 0 {
				acc[[3]string{th.Name(), "wait", hw.LayerName(l)}] += v
			}
		}
	}
	out := make([]ProfileEntry, 0, len(acc))
	for k, v := range acc {
		out = append(out, ProfileEntry{Thread: k[0], Kind: k[1], Layer: k[2], Samples: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// WriteFolded writes the profile in folded-stack form — one
// "thread;kind;layer count" line per entry — the input format flamegraph
// tooling (flamegraph.pl, speedscope, inferno) consumes directly.
func WriteFolded(w io.Writer, entries []ProfileEntry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", e.Thread, e.Kind, e.Layer, e.Samples); err != nil {
			return err
		}
	}
	return nil
}

// VerifyProfiles checks the profiler's exact-count invariant on every
// profiled thread: a clock at virtual time T with sample period S has crossed
// exactly floor(T/S) sample boundaries, so its busy+wait samples across all
// layers must equal that — no sample lost, none double-counted. Returns a
// description of each violation.
func VerifyProfiles(m *hw.Machine) []string {
	if m == nil || m.ProfileStep() == 0 {
		return nil
	}
	step := m.ProfileStep()
	var bad []string
	for i, th := range m.ProfiledThreads() {
		p := th.Profile()
		if p == nil {
			bad = append(bad, fmt.Sprintf("thread %d (%s): profiling enabled but no profile attached", i, th.Name()))
			continue
		}
		got := p.TotalSamples()
		want := th.Clock.Now() / step
		if got != want {
			bad = append(bad, fmt.Sprintf("thread %d (%s): %d samples, want %d (clock %d, step %d)",
				i, th.Name(), got, want, th.Clock.Now(), step))
		}
	}
	return bad
}
