// Package obs is the telemetry layer for the simulated stack: per-operation
// hardware attribution spans, a bounded lifecycle event trace, and a metrics
// registry with text and JSON exposition. It sits directly above internal/hw
// (and internal/histogram) so every engine, the bench harness, and the CLI
// tools can share one report schema.
//
// The attribution model has two coordinated halves:
//
//   - The hardware half lives in sim.MemTally: every clock the machine
//     creates (once Machine.EnableObs has run) carries a layer label, and the
//     PMem/LLC models tally each charged event — virtual ns, media bytes,
//     XPBuffer arrivals/hits, XPLine evictions — into the cell for the label
//     active at charge time. Summing cells reproduces the device's global
//     counters exactly, because every event lands in exactly one cell.
//
//   - The software half is the Span API here: a span delta-snapshots the
//     thread's virtual clock and per-phase Breakdown at operation start and
//     end, records total latency into a per-op-type histogram, and attributes
//     the per-phase deltas to layers (residual time that ran under no phase
//     goes to the "direct" layer 0), so per-layer ns sums to the span total
//     by construction.
//
// Observability adds zero virtual time: tallies and spans are host-side
// bookkeeping that never advance a clock, so enabling obs cannot perturb the
// simulated results it measures.
package obs

import (
	"sync/atomic"

	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
)

// Op classifies an operation for per-type attribution.
type Op int

// Operation types tracked by a Collector.
const (
	OpPut Op = iota
	OpGet
	OpDelete
	OpScan
	OpRMW
	OpBatch
	OpFlush
	OpRecovery
	OpDeleteRange
	OpIngest
	NumOps
)

var opNames = [NumOps]string{"put", "get", "delete", "scan", "rmw", "batch", "flush", "recovery", "delete_range", "ingest"}

// String returns the op's short name.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return "unknown"
	}
	return opNames[o]
}

// foreground reports whether the op runs on a client thread (and therefore
// counts toward the thread-busy-time invariant in Report.Verify).
func (o Op) foreground() bool { return o != OpFlush && o != OpRecovery }

// Collector accumulates per-op-type latency histograms and per-layer virtual
// time. All methods are safe for concurrent use and nil-safe, so call sites
// need no obs-enabled checks.
type Collector struct {
	hist    [NumOps]*histogram.H
	layerNs [NumOps][sim.MaxLayers]atomic.Int64
	totalNs [NumOps]atomic.Int64

	slow atomic.Pointer[slowState] // nil until EnableSlowOps
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{}
	for i := range c.hist {
		c.hist[i] = histogram.New()
	}
	return c
}

// Hist returns the latency histogram for op (nil on a nil collector).
func (c *Collector) Hist(op Op) *histogram.H {
	if c == nil || op < 0 || op >= NumOps {
		return nil
	}
	return c.hist[op]
}

// LayerNs returns the virtual ns attributed to (op, layer) so far.
func (c *Collector) LayerNs(op Op, layer int) int64 {
	if c == nil || op < 0 || op >= NumOps || layer < 0 || layer >= sim.MaxLayers {
		return 0
	}
	return c.layerNs[op][layer].Load()
}

// TotalNs returns the total virtual ns recorded for op.
func (c *Collector) TotalNs(op Op) int64 {
	if c == nil || op < 0 || op >= NumOps {
		return 0
	}
	return c.totalNs[op].Load()
}

// Span is one in-flight operation's attribution window. The zero Span is a
// no-op, so disabled paths cost nothing but two branch checks.
type Span struct {
	c      *Collector
	th     *hw.Thread
	op     Op
	start  int64
	wait   int64
	phases hw.Breakdown
}

// StartOp opens a span for op on thread th. Safe on a nil collector or nil
// thread (returns a no-op span).
func (c *Collector) StartOp(th *hw.Thread, op Op) Span {
	if c == nil || th == nil || op < 0 || op >= NumOps {
		return Span{}
	}
	return Span{c: c, th: th, op: op,
		start: th.Clock.Now(), wait: th.Clock.WaitNs(), phases: th.PhaseBreakdown()}
}

// End closes the span: the clock delta becomes the op's recorded latency, and
// the per-phase Breakdown delta is attributed to the matching layers, with
// any residual (time outside every phase) attributed to the direct layer.
// When slow-op capture is armed and the latency crosses the op's threshold,
// a Dossier is recorded; the sub-threshold check is one atomic load.
// Returns the span's total virtual ns.
func (s Span) End() int64 {
	if s.c == nil {
		return 0
	}
	total := s.th.Clock.Now() - s.start
	d := s.th.PhaseBreakdown().Sub(s.phases)
	var attributed int64
	for p := 0; p < hw.NumPhases; p++ {
		if d[p] != 0 {
			s.c.layerNs[s.op][hw.Phase(p).Layer()].Add(d[p])
			attributed += d[p]
		}
	}
	resid := total - attributed
	if resid > 0 {
		s.c.layerNs[s.op][0].Add(resid)
	}
	s.c.totalNs[s.op].Add(total)
	s.c.hist[s.op].Record(total)
	if sl := s.c.slow.Load(); sl != nil {
		sl.maybeRefresh(s.c, s.op, s.c.hist[s.op].Count())
		if thr := sl.thr[s.op].Load(); total > thr {
			var layers []OpLayer
			if resid > 0 {
				layers = append(layers, OpLayer{Layer: hw.LayerName(0), Ns: resid})
			}
			for p := 0; p < hw.NumPhases; p++ {
				if d[p] != 0 {
					layers = append(layers, OpLayer{Layer: hw.LayerName(int(hw.Phase(p).Layer())), Ns: d[p]})
				}
			}
			sl.capture(s, total, s.th.Clock.WaitNs()-s.wait, layers, thr)
		}
	}
	return total
}

// Merge folds collector o's histograms, per-layer attribution, and totals
// into c — how per-shard collectors combine into whole-DB percentiles without
// re-running. Slow-op dossiers are capture state, not statistics, and are not
// merged. Nil-safe on both sides.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	for op := Op(0); op < NumOps; op++ {
		c.hist[op].Merge(o.hist[op])
		c.totalNs[op].Add(o.totalNs[op].Load())
		for l := 0; l < sim.MaxLayers; l++ {
			if v := o.layerNs[op][l].Load(); v != 0 {
				c.layerNs[op][l].Add(v)
			}
		}
	}
}
