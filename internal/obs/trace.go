package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one lifecycle occurrence, stamped with virtual time. Events carry
// free-form attributes so emit sites stay one-liners; the type string is the
// schema (flush_start, flush_end, memtable_seal, spill_start, spill_end,
// compaction, filter_rebuild, crash, recovery_start, recovery_end,
// block_cache_pressure, crash_point, ...).
type Event struct {
	Seq   uint64         `json:"seq"`
	VNs   int64          `json:"v_ns"`
	Type  string         `json:"type"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Trace is a bounded ring of events. When full, the oldest event is
// overwritten and the drop counter advances — tracing can never grow without
// bound or stall the engine. All methods are safe for concurrent use and safe
// on a nil receiver (no-ops), so engines hold a *Trace unconditionally.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest event
	n       int // live events in buf
	seq     uint64
	dropped uint64
}

// DefaultTraceCap is the ring size tools use unless configured otherwise.
const DefaultTraceCap = 1024

// NewTrace creates a ring holding up to capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Emit appends an event at virtual time vns. kv is alternating key, value
// pairs; a trailing odd key is recorded with a nil value rather than lost.
func (t *Trace) Emit(vns int64, typ string, kv ...any) {
	if t == nil {
		return
	}
	var attrs map[string]any
	if len(kv) > 0 {
		attrs = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			k := fmt.Sprint(kv[i])
			if i+1 < len(kv) {
				attrs[k] = kv[i+1]
			} else {
				attrs[k] = nil
			}
		}
	}
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, VNs: vns, Type: typ, Attrs: attrs}
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Seq returns the total number of events ever emitted.
func (t *Trace) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// EventsBetween returns up to max retained events whose virtual timestamp
// lies in [lo, hi], in ascending VNs order, preferring the latest when more
// match. truncated reports that the returned window is incomplete: either
// more than max events matched, or the ring has already dropped events old
// enough to have fallen inside the window.
func (t *Trace) EventsBetween(lo, hi int64, max int) (evs []Event, truncated bool) {
	if t == nil || max <= 0 {
		return nil, false
	}
	t.mu.Lock()
	var oldest int64
	if t.n > 0 {
		oldest = t.buf[t.start].VNs
	}
	wrapped := t.dropped > 0
	for i := 0; i < t.n; i++ {
		e := t.buf[(t.start+i)%len(t.buf)]
		if e.VNs >= lo && e.VNs <= hi {
			evs = append(evs, e)
		}
	}
	t.mu.Unlock()
	if wrapped && lo < oldest {
		truncated = true
	}
	// Order by virtual time with type/attrs tie-breaks: ring insertion order
	// reflects host-side goroutine interleaving, so it must not influence
	// which events survive the max cut below.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].VNs != evs[j].VNs {
			return evs[i].VNs < evs[j].VNs
		}
		if evs[i].Type != evs[j].Type {
			return evs[i].Type < evs[j].Type
		}
		return fmt.Sprint(evs[i].Attrs) < fmt.Sprint(evs[j].Attrs)
	})
	if len(evs) > max {
		evs = evs[len(evs)-max:]
		truncated = true
	}
	return evs, truncated
}

// WriteJSONL writes the retained events to w, one JSON object per line. The
// first line is a trace_meta event summarizing emission state — total events
// emitted, how many the ring retains, how many wrapped out, and a truncated
// flag — so consumers know when the window is incomplete.
func (t *Trace) WriteJSONL(w io.Writer) error {
	evs := t.Events()
	dropped := t.Dropped()
	enc := json.NewEncoder(w)
	meta := Event{Type: "trace_meta", Attrs: map[string]any{
		"emitted":   t.Seq(),
		"retained":  len(evs),
		"dropped":   dropped,
		"truncated": dropped > 0,
	}}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
