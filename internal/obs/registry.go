package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// MetricKind distinguishes monotonically increasing counters (which support
// interval deltas) from point-in-time gauges (which do not).
type MetricKind string

// Metric kinds.
const (
	KindCounter MetricKind = "counter"
	KindGauge   MetricKind = "gauge"
)

// Registry maps metric names to read functions. Engines and devices register
// closures over their live counters; Gather evaluates them all into one
// Snapshot. Registration order is preserved in exposition output so reports
// are stable. Re-registering a name replaces its reader in place (the engine
// behind a name changes across SimulateCrash).
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]regEntry
}

type regEntry struct {
	kind    MetricKind
	intFn   func() int64
	floatFn func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]regEntry)}
}

// Counter registers fn as a monotonically increasing integer metric.
func (r *Registry) Counter(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.entries[name]; !ok {
		r.order = append(r.order, name)
	}
	r.entries[name] = regEntry{kind: KindCounter, intFn: fn}
	r.mu.Unlock()
}

// Gauge registers fn as a point-in-time float metric.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.entries[name]; !ok {
		r.order = append(r.order, name)
	}
	r.entries[name] = regEntry{kind: KindGauge, floatFn: fn}
	r.mu.Unlock()
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Gather evaluates every metric into a Snapshot.
func (r *Registry) Gather() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	entries := make([]regEntry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()

	s := &Snapshot{Metrics: make([]Metric, 0, len(names))}
	for i, n := range names {
		e := entries[i]
		m := Metric{Name: n, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			m.Int = e.intFn()
		case KindGauge:
			m.Float = e.floatFn()
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s
}

// Metric is one evaluated metric. Counters populate Int, gauges Float.
type Metric struct {
	Name  string     `json:"name"`
	Kind  MetricKind `json:"kind"`
	Int   int64      `json:"int,omitempty"`
	Float float64    `json:"float,omitempty"`
}

// Snapshot is one evaluation of a registry, ordered and JSON-marshalable.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get finds a metric by name.
func (s *Snapshot) Get(name string) (Metric, bool) {
	if s == nil {
		return Metric{}, false
	}
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Int returns the named counter's value (0 when absent).
func (s *Snapshot) Int(name string) int64 {
	m, _ := s.Get(name)
	return m.Int
}

// Float returns the named gauge's value (0 when absent).
func (s *Snapshot) Float(name string) float64 {
	m, _ := s.Get(name)
	return m.Float
}

// Sub returns the interval delta s - prev: counters are subtracted, gauges
// keep their current value (a ratio's delta is meaningless). Metrics absent
// from prev pass through unchanged.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	if s == nil {
		return &Snapshot{}
	}
	out := &Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	copy(out.Metrics, s.Metrics)
	if prev == nil {
		return out
	}
	for i := range out.Metrics {
		if out.Metrics[i].Kind != KindCounter {
			continue
		}
		if p, ok := prev.Get(out.Metrics[i].Name); ok && p.Kind == KindCounter {
			out.Metrics[i].Int -= p.Int
		}
	}
	return out
}

// WriteText renders the snapshot in a stable name-per-line text exposition.
func (s *Snapshot) WriteText(w io.Writer) {
	if s == nil {
		return
	}
	width := 0
	for _, m := range s.Metrics {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindGauge:
			fmt.Fprintf(w, "%-*s %.4f\n", width, m.Name, m.Float)
		default:
			fmt.Fprintf(w, "%-*s %d\n", width, m.Name, m.Int)
		}
	}
}

// MarshalSorted renders the snapshot as JSON with metrics sorted by name,
// for golden-file comparisons independent of registration order.
func (s *Snapshot) MarshalSorted() ([]byte, error) {
	c := &Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	copy(c.Metrics, s.Metrics)
	sort.Slice(c.Metrics, func(i, j int) bool { return c.Metrics[i].Name < c.Metrics[j].Name })
	return json.MarshalIndent(c, "", "  ")
}

// SafeRatio returns num/den, or a NaN-safe 0 when den is zero — reporting
// code uses it so "no traffic yet" reads as 0 instead of NaN, while the raw
// numerator and denominator are exposed alongside for disambiguation.
func SafeRatio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
