package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
)

// testMachine is a small platform (the faultinject harness scale) with the
// attribution tally enabled.
func testMachine() *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 64 << 20
	cfg.Cores = 4
	cfg.Cache = cache.Config{SizeBytes: 8 << 20, Ways: 12, Domain: cache.EADR}
	m := hw.NewMachine(cfg)
	m.EnableObs()
	return m
}

func TestSpanAttribution(t *testing.T) {
	m := testMachine()
	th := m.NewThread(0)
	col := NewCollector()

	sp := col.StartOp(th, OpPut)
	th.InPhase(hw.PhaseWAL, func() { th.Clock.Advance(100) })
	th.InPhase(hw.PhaseIndex, func() { th.Clock.Advance(40) })
	th.Clock.Advance(60) // outside every phase -> direct layer
	total := sp.End()

	if total != 200 {
		t.Fatalf("span total = %d, want 200", total)
	}
	if got := col.LayerNs(OpPut, int(hw.PhaseWAL.Layer())); got != 100 {
		t.Fatalf("wal layer ns = %d, want 100", got)
	}
	if got := col.LayerNs(OpPut, int(hw.PhaseIndex.Layer())); got != 40 {
		t.Fatalf("index layer ns = %d, want 40", got)
	}
	if got := col.LayerNs(OpPut, 0); got != 60 {
		t.Fatalf("direct layer ns = %d, want 60", got)
	}
	if got := col.TotalNs(OpPut); got != 200 {
		t.Fatalf("total ns = %d, want 200", got)
	}
	if got := col.Hist(OpPut).Count(); got != 1 {
		t.Fatalf("hist count = %d, want 1", got)
	}

	// Per-op layer sums must equal totals exactly for non-nested phases.
	for _, st := range col.OpStats() {
		var sum int64
		for _, l := range st.Layers {
			sum += l.Ns
		}
		if sum != st.TotalNs {
			t.Fatalf("op %s: layer sum %d != total %d", st.Op, sum, st.TotalNs)
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var col *Collector
	m := testMachine()
	th := m.NewThread(0)
	sp := col.StartOp(th, OpGet)
	th.Clock.Advance(10)
	if sp.End() != 0 {
		t.Fatal("nil-collector span should be a no-op")
	}
	if col.Hist(OpGet) != nil || col.LayerNs(OpGet, 0) != 0 || col.TotalNs(OpGet) != 0 {
		t.Fatal("nil collector accessors should return zero values")
	}
	var c2 Collector
	if c2.StartOp(nil, OpGet).End() != 0 {
		t.Fatal("nil-thread span should be a no-op")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	m := testMachine()
	col := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.NewThread(w)
			for i := 0; i < 2000; i++ {
				sp := col.StartOp(th, Op(i%int(NumOps)))
				th.InPhase(hw.PhaseAppend, func() { th.Clock.Advance(7) })
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = col.OpStats()
			}
		}
	}()
	wg.Wait()
	close(done)
	var n int64
	for op := Op(0); op < NumOps; op++ {
		n += col.Hist(op).Count()
	}
	if n != 8000 {
		t.Fatalf("recorded %d spans, want 8000", n)
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Emit(int64(i*10), "tick", "i", i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	if tr.Seq() != 6 {
		t.Fatalf("Seq = %d, want 6", tr.Seq())
	}
	evs := tr.Events()
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Type != "tick" || evs[0].Attrs["i"] != 2 {
		t.Fatalf("oldest event = %+v", evs[0])
	}
}

func TestTraceOddPairAndNil(t *testing.T) {
	var nilTr *Trace
	nilTr.Emit(1, "ignored") // must not panic
	if nilTr.Len() != 0 || nilTr.Events() != nil || nilTr.Dropped() != 0 || nilTr.Seq() != 0 {
		t.Fatal("nil trace should be inert")
	}
	tr := NewTrace(8)
	tr.Emit(5, "odd", "key-without-value")
	ev := tr.Events()[0]
	if v, ok := ev.Attrs["key-without-value"]; !ok || v != nil {
		t.Fatalf("odd trailing key not recorded: %+v", ev.Attrs)
	}
}

func TestTraceJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(100, "flush_start", "slot", 3)
	tr.Emit(250, "flush_end", "slot", 3, "bytes", 4096)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	sc := bufio.NewScanner(&buf)
	var lines int
	var evs []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		evs = append(evs, ev)
		lines++
	}
	// Line 0 is the trace_meta header; the events follow.
	if lines != 3 {
		t.Fatalf("JSONL lines = %d, want 3 (meta + 2 events)", lines)
	}
	if evs[0].Type != "trace_meta" {
		t.Fatalf("first line type = %q, want trace_meta", evs[0].Type)
	}
	if tru, ok := evs[0].Attrs["truncated"].(bool); !ok || tru {
		t.Fatalf("unwrapped ring meta truncated = %v, want false", evs[0].Attrs["truncated"])
	}
	if !strings.Contains(raw, `"type":"flush_start"`) {
		t.Fatalf("JSONL missing type: %s", raw)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(int64(i), "e", "w", w)
			}
		}(w)
	}
	wg.Wait()
	if tr.Seq() != 4000 {
		t.Fatalf("Seq = %d, want 4000", tr.Seq())
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tr.Len())
	}
}

func TestRegistryOrderAndReplace(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", func() int64 { return 1 })
	r.Counter("a", func() int64 { return 2 })
	r.Gauge("r", func() float64 { return 0.5 })
	// Re-registering replaces the reader but keeps position.
	r.Counter("b", func() int64 { return 10 })
	if got := r.Names(); got[0] != "b" || got[1] != "a" || got[2] != "r" {
		t.Fatalf("Names = %v", got)
	}
	s := r.Gather()
	if s.Int("b") != 10 || s.Int("a") != 2 || s.Float("r") != 0.5 {
		t.Fatalf("snapshot = %+v", s)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on absent name should report false")
	}
}

func TestSnapshotSub(t *testing.T) {
	mk := func(b, a int64) *Snapshot {
		return &Snapshot{Metrics: []Metric{
			{Name: "b", Kind: KindCounter, Int: b},
			{Name: "a", Kind: KindCounter, Int: a},
			{Name: "r", Kind: KindGauge, Float: 0.9},
		}}
	}
	d := mk(110, 25).Sub(mk(100, 20))
	if d.Int("b") != 10 || d.Int("a") != 5 {
		t.Fatalf("counter deltas = %d, %d", d.Int("b"), d.Int("a"))
	}
	if d.Float("r") != 0.9 {
		t.Fatalf("gauge should pass through, got %v", d.Float("r"))
	}
	// Metrics absent from prev pass through unchanged; nil prev is identity.
	d2 := mk(7, 3).Sub(&Snapshot{})
	if d2.Int("b") != 7 {
		t.Fatalf("absent-from-prev delta = %d", d2.Int("b"))
	}
	if mk(1, 1).Sub(nil).Int("b") != 1 {
		t.Fatal("nil prev should be identity")
	}
}

func TestSnapshotTextAndGoldenJSON(t *testing.T) {
	s := &Snapshot{Metrics: []Metric{
		{Name: "pmem_media_write_bytes", Kind: KindCounter, Int: 4096},
		{Name: "llc_hit_ratio", Kind: KindGauge, Float: 0.25},
		{Name: "block_cache_hits", Kind: KindCounter, Int: 7},
	}}
	var buf bytes.Buffer
	s.WriteText(&buf)
	want := "pmem_media_write_bytes 4096\nllc_hit_ratio          0.2500\nblock_cache_hits       7\n"
	if buf.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", buf.String(), want)
	}

	// Golden: the sorted JSON exposition is pinned so schema drift is loud.
	b, err := s.MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	golden := `{
  "metrics": [
    {
      "name": "block_cache_hits",
      "kind": "counter",
      "int": 7
    },
    {
      "name": "llc_hit_ratio",
      "kind": "gauge",
      "float": 0.25
    },
    {
      "name": "pmem_media_write_bytes",
      "kind": "counter",
      "int": 4096
    }
  ]
}`
	if string(b) != golden {
		t.Fatalf("MarshalSorted drifted:\n%s\nwant:\n%s", b, golden)
	}

	// And it must round-trip losslessly.
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Int("pmem_media_write_bytes") != 4096 || back.Float("llc_hit_ratio") != 0.25 {
		t.Fatalf("round-trip lost values: %+v", back)
	}
}

func TestSafeRatio(t *testing.T) {
	if got := SafeRatio(1, 0); got != 0 {
		t.Fatalf("SafeRatio(1, 0) = %v, want 0", got)
	}
	if got := SafeRatio(1, 4); got != 0.25 {
		t.Fatalf("SafeRatio(1, 4) = %v", got)
	}
	if got := SafeRatio(0, 5); got != 0 {
		t.Fatalf("SafeRatio(0, 5) = %v", got)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport("test")
	rep.Runs = append(rep.Runs, RunReport{
		Engine:     "cachekv",
		Workload:   "YCSB-C",
		Ops:        1000,
		Threads:    2,
		ElapsedVNs: 500000,
		ThreadVNs:  990000,
		KopsPerSec: 2000,
		OpStats: []OpStat{{
			Op: "get", Count: 1000, TotalNs: 990000,
			Layers: []OpLayer{{Layer: "direct", Ns: 490000}, {Layer: "client", Ns: 500000}},
		}},
		Metrics: &Snapshot{Metrics: []Metric{
			{Name: MPMemLineArrivals, Kind: KindCounter, Int: 100},
			{Name: MPMemLineHits, Kind: KindCounter, Int: 40},
			{Name: MPMemMediaWriteB, Kind: KindCounter, Int: 25600},
			{Name: MPMemCallerWriteB, Kind: KindCounter, Int: 20000},
		}},
	})
	if bad := rep.Verify(); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Tool != "test" || len(back.Runs) != 1 {
		t.Fatalf("round-trip header: %+v", back)
	}
	r0 := back.Runs[0]
	if r0.Engine != "cachekv" || r0.Ops != 1000 || r0.Metrics.Int(MPMemMediaWriteB) != 25600 {
		t.Fatalf("round-trip run: %+v", r0)
	}
	if bad := back.Verify(); len(bad) != 0 {
		t.Fatalf("verify after round-trip: %v", bad)
	}
}

func TestReportSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &Report{Schema: "cachekv.obs/v0", Tool: "test"}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Fatal("LoadReport accepted a foreign schema")
	}
	if bad := rep.Verify(); len(bad) == 0 {
		t.Fatal("Verify accepted a foreign schema")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	run := RunReport{
		OpStats: []OpStat{{
			Op: "get", Count: 10, TotalNs: 1000,
			Layers: []OpLayer{{Layer: "direct", Ns: 10}}, // way off
		}},
		Metrics: &Snapshot{Metrics: []Metric{
			{Name: MLLCHits, Kind: KindCounter, Int: 5},
			{Name: MLLCMisses, Kind: KindCounter, Int: 5},
			{Name: MLLCProbes, Kind: KindCounter, Int: 11}, // != 10
		}},
	}
	bad := run.Verify()
	if len(bad) < 2 {
		t.Fatalf("expected layer-sum and llc-probe violations, got %v", bad)
	}
}

func TestTraceJSONLUnmarshalAttrs(t *testing.T) {
	// Attr round-trip: ints become float64 through JSON, which consumers must
	// tolerate; the event envelope itself is stable.
	tr := NewTrace(2)
	tr.Emit(42, "memtable_seal", "slot", 1)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(buf.String()), "\n", 2)
	if len(lines) != 2 {
		t.Fatalf("want meta line + event line, got %q", buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.VNs != 42 || ev.Type != "memtable_seal" {
		t.Fatalf("envelope drifted: %+v", ev)
	}
}
