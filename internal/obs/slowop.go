package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// SlowOpPolicy configures triggered capture of outlier operations. An op
// whose total virtual latency exceeds its threshold gets a Dossier recorded.
//
// Thresholds come in two modes. Static: StaticNs (optionally refined per op
// type via PerOpNs) is the trigger for every op. Adaptive (StaticNs == 0): an
// op type's threshold is its own rolling Quantile latency times Multiplier,
// recomputed from the op's histogram every RefreshEvery records once MinCount
// records exist — so "slow" means "far outside this run's own distribution"
// without hand tuning.
type SlowOpPolicy struct {
	StaticNs     int64         // uniform static threshold (virtual ns); 0 = adaptive
	PerOpNs      [NumOps]int64 // per-op static overrides (0 = StaticNs / adaptive)
	Quantile     float64       // adaptive reference percentile (default 99)
	Multiplier   float64       // adaptive threshold = quantile × multiplier (default 8)
	MinCount     int64         // records before adaptive capture arms (default 512)
	RefreshEvery int64         // adaptive recompute period in records (default 256)
	Capacity     int           // dossier ring size (default 64)
	EventWindow  int           // max trace events copied per dossier (default 16)
	LookbackNs   int64         // extend the event window this far before op start
}

// Defaults for SlowOpPolicy zero fields.
const (
	DefaultSlowOpQuantile   = 99.0
	DefaultSlowOpMultiplier = 8.0
	DefaultSlowOpMinCount   = 512
	DefaultSlowOpRefresh    = 256
	DefaultSlowOpCapacity   = 64
	DefaultSlowOpWindow     = 16
)

func (p SlowOpPolicy) withDefaults() SlowOpPolicy {
	if p.Quantile <= 0 || p.Quantile > 100 {
		p.Quantile = DefaultSlowOpQuantile
	}
	if p.Multiplier <= 0 {
		p.Multiplier = DefaultSlowOpMultiplier
	}
	if p.MinCount <= 0 {
		p.MinCount = DefaultSlowOpMinCount
	}
	if p.RefreshEvery <= 0 {
		p.RefreshEvery = DefaultSlowOpRefresh
	}
	if p.Capacity <= 0 {
		p.Capacity = DefaultSlowOpCapacity
	}
	if p.EventWindow <= 0 {
		p.EventWindow = DefaultSlowOpWindow
	}
	if p.LookbackNs < 0 {
		p.LookbackNs = 0
	}
	return p
}

// Dossier is the forensic record of one slow operation: what it was, where
// its virtual time went (per layer, and split wait vs busy), the flow-control
// state it ran under, and every retained trace event that overlapped its
// window — the flush/seal/compaction/stall activity it collided with.
type Dossier struct {
	Seq             uint64    `json:"seq"`
	Op              string    `json:"op"`
	Thread          string    `json:"thread"`
	Core            int       `json:"core"`
	StartVNs        int64     `json:"start_v_ns"`
	EndVNs          int64     `json:"end_v_ns"`
	WindowStartVNs  int64     `json:"window_start_v_ns"` // StartVNs - policy lookback
	TotalNs         int64     `json:"total_ns"`
	WaitNs          int64     `json:"wait_ns"`
	BusyNs          int64     `json:"busy_ns"`
	ThresholdNs     int64     `json:"threshold_ns"`
	Adaptive        bool      `json:"adaptive,omitempty"`
	FlowState       string    `json:"flow_state,omitempty"`
	Layers          []OpLayer `json:"layers,omitempty"`
	Events          []Event   `json:"events,omitempty"`
	EventsTruncated bool      `json:"events_truncated,omitempty"`
}

// slowState is a Collector's capture machinery. The hot path (every Span.End)
// touches only thr[op]: one atomic load and a compare, no allocation; the
// capture path below it runs only for ops past the threshold.
type slowState struct {
	policy   SlowOpPolicy
	trace    *Trace
	ctx      atomic.Value // func() string: flow-state provider, rebindable
	thr      [NumOps]atomic.Int64
	adaptive [NumOps]bool

	mu      sync.Mutex
	ring    []Dossier
	start   int
	n       int
	seq     uint64
	dropped uint64
}

// EnableSlowOps arms triggered slow-op capture on the collector. tr (may be
// nil) supplies the overlapping-events window; thresholds follow policy.
// Calling it again on an armed collector only replaces the policy-independent
// context, so dossiers survive engine reopen. Capture adds zero virtual time:
// it never advances a clock, and the sub-threshold path allocates nothing.
func (c *Collector) EnableSlowOps(policy SlowOpPolicy, tr *Trace) {
	if c == nil {
		return
	}
	if c.slow.Load() != nil {
		return
	}
	p := policy.withDefaults()
	sl := &slowState{policy: p, trace: tr, ring: make([]Dossier, p.Capacity)}
	for op := Op(0); op < NumOps; op++ {
		switch {
		case p.PerOpNs[op] > 0:
			sl.thr[op].Store(p.PerOpNs[op])
		case p.StaticNs > 0:
			sl.thr[op].Store(p.StaticNs)
		default:
			sl.adaptive[op] = true
			sl.thr[op].Store(math.MaxInt64) // disarmed until MinCount records
		}
	}
	c.slow.Store(sl)
}

// SetSlowOpContext installs (or rebinds, e.g. after a simulated crash) the
// flow-state provider stamped into each dossier.
func (c *Collector) SetSlowOpContext(fn func() string) {
	if c == nil || fn == nil {
		return
	}
	if sl := c.slow.Load(); sl != nil {
		sl.ctx.Store(fn)
	}
}

// SlowOpThreshold returns op's current effective capture threshold in virtual
// ns (MaxInt64 when capture is disarmed or disabled).
func (c *Collector) SlowOpThreshold(op Op) int64 {
	if c == nil || op < 0 || op >= NumOps {
		return math.MaxInt64
	}
	sl := c.slow.Load()
	if sl == nil {
		return math.MaxInt64
	}
	return sl.thr[op].Load()
}

// SlowOps returns the retained dossiers, oldest first.
func (c *Collector) SlowOps() []Dossier {
	if c == nil {
		return nil
	}
	sl := c.slow.Load()
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := make([]Dossier, 0, sl.n)
	for i := 0; i < sl.n; i++ {
		out = append(out, sl.ring[(sl.start+i)%len(sl.ring)])
	}
	return out
}

// SlowOpsDropped returns how many dossiers were evicted by ring wrap.
func (c *Collector) SlowOpsDropped() uint64 {
	if c == nil {
		return 0
	}
	sl := c.slow.Load()
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.dropped
}

// WriteSlowOpsJSONL writes the retained dossiers to w, one JSON object per
// line. With a deterministic schedule (single foreground thread) and an
// unwrapped trace ring the output is byte-identical across runs.
func (c *Collector) WriteSlowOpsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range c.SlowOps() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// maybeRefresh recomputes op's adaptive threshold when due. count is the
// op histogram's record count after the current record.
func (sl *slowState) maybeRefresh(c *Collector, op Op, count int64) {
	if !sl.adaptive[op] || count < sl.policy.MinCount || count%sl.policy.RefreshEvery != 0 {
		return
	}
	q := c.hist[op].Percentile(sl.policy.Quantile)
	thr := int64(q * sl.policy.Multiplier)
	if thr < 1 {
		thr = 1
	}
	sl.thr[op].Store(thr)
}

// capture builds and stores a dossier for a span that crossed the threshold.
// Runs on the slow path only.
func (sl *slowState) capture(s Span, total, waitNs int64, layers []OpLayer, thr int64) {
	end := s.start + total
	d := Dossier{
		Op:             s.op.String(),
		Thread:         s.th.Name(),
		Core:           s.th.Core,
		StartVNs:       s.start,
		EndVNs:         end,
		WindowStartVNs: s.start - sl.policy.LookbackNs,
		TotalNs:        total,
		WaitNs:         waitNs,
		BusyNs:         total - waitNs,
		ThresholdNs:    thr,
		Adaptive:       sl.adaptive[s.op],
		Layers:         layers,
	}
	if fn, ok := sl.ctx.Load().(func() string); ok && fn != nil {
		d.FlowState = fn()
	}
	if sl.trace != nil {
		evs, truncated := sl.trace.EventsBetween(d.WindowStartVNs, end, sl.policy.EventWindow)
		// Seq numbers reflect host-side emission interleaving, not the virtual
		// schedule; zero them and order by virtual time so dossiers of a
		// deterministic run are byte-identical.
		for i := range evs {
			evs[i].Seq = 0
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].VNs != evs[j].VNs {
				return evs[i].VNs < evs[j].VNs
			}
			if evs[i].Type != evs[j].Type {
				return evs[i].Type < evs[j].Type
			}
			return fmt.Sprint(evs[i].Attrs) < fmt.Sprint(evs[j].Attrs)
		})
		d.Events = evs
		d.EventsTruncated = truncated
	}
	sl.mu.Lock()
	sl.seq++
	d.Seq = sl.seq
	if sl.n < len(sl.ring) {
		sl.ring[(sl.start+sl.n)%len(sl.ring)] = d
		sl.n++
	} else {
		sl.ring[sl.start] = d
		sl.start = (sl.start + 1) % len(sl.ring)
		sl.dropped++
	}
	sl.mu.Unlock()
}

// VerifySlowOps checks dossier invariants against the run they were captured
// in and returns a description of each violation: layer ns sums to at most
// the op latency, the wait/busy split sums exactly, every attached event lies
// inside the dossier's window, and the latency actually exceeds the recorded
// threshold.
func VerifySlowOps(ds []Dossier) []string {
	var bad []string
	for _, d := range ds {
		var sum int64
		for _, l := range d.Layers {
			sum += l.Ns
		}
		if float64(sum) > float64(d.TotalNs)*1.01 {
			bad = append(bad, fmt.Sprintf("dossier %d (%s): layer ns sum %d > total %d", d.Seq, d.Op, sum, d.TotalNs))
		}
		if d.WaitNs < 0 || d.WaitNs > d.TotalNs {
			bad = append(bad, fmt.Sprintf("dossier %d (%s): wait ns %d outside [0,%d]", d.Seq, d.Op, d.WaitNs, d.TotalNs))
		}
		if d.WaitNs+d.BusyNs != d.TotalNs {
			bad = append(bad, fmt.Sprintf("dossier %d (%s): wait %d + busy %d != total %d", d.Seq, d.Op, d.WaitNs, d.BusyNs, d.TotalNs))
		}
		if d.TotalNs < d.ThresholdNs {
			bad = append(bad, fmt.Sprintf("dossier %d (%s): total %d below threshold %d", d.Seq, d.Op, d.TotalNs, d.ThresholdNs))
		}
		if d.WindowStartVNs > d.StartVNs || d.EndVNs-d.StartVNs != d.TotalNs {
			bad = append(bad, fmt.Sprintf("dossier %d (%s): inconsistent window [%d,%d,%d]", d.Seq, d.Op, d.WindowStartVNs, d.StartVNs, d.EndVNs))
		}
		for _, ev := range d.Events {
			if ev.VNs < d.WindowStartVNs || ev.VNs > d.EndVNs {
				bad = append(bad, fmt.Sprintf("dossier %d (%s): event %s@%d outside window [%d,%d]",
					d.Seq, d.Op, ev.Type, ev.VNs, d.WindowStartVNs, d.EndVNs))
			}
		}
	}
	return bad
}
