package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cachekv/internal/hw"
)

func TestProfilerSampling(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	m.EnableProfiler(1000)
	th := m.NewThread(0).SetName("shard0/flush")

	// 2500 ns busy under the bgflush phase: crosses boundaries 1000 and 2000.
	th.InPhase(hw.PhaseBgFlush, func() { th.Clock.Advance(2500) })
	// Wait to 4700: crosses 3000 and 4000 as wait samples under direct.
	th.Clock.AdvanceTo(4700)
	// 800 ns more busy work, crossing 5000.
	th.Clock.Advance(800)

	p := th.Profile()
	if p == nil {
		t.Fatal("profiled thread has no profile")
	}
	if got := p.Busy(int(hw.PhaseBgFlush.Layer())); got != 2 {
		t.Fatalf("bgflush busy samples = %d, want 2", got)
	}
	if got := p.Wait(0); got != 2 {
		t.Fatalf("direct wait samples = %d, want 2", got)
	}
	if got := p.Busy(0); got != 1 {
		t.Fatalf("direct busy samples = %d, want 1", got)
	}
	if got, want := p.TotalSamples(), th.Clock.Now()/1000; got != want {
		t.Fatalf("total samples = %d, want %d", got, want)
	}
	if bad := VerifyProfiles(m); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}

	entries := Profiles(m)
	if len(entries) != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, entries); err != nil {
		t.Fatal(err)
	}
	// Folded lines parse as "semicolon-stack space count".
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var thread, kind, layer string
		var n int64
		if _, err := fmt.Sscanf(strings.ReplaceAll(sc.Text(), ";", " "), "%s %s %s %d",
			&thread, &kind, &layer, &n); err != nil {
			t.Fatalf("folded line %q unparseable: %v", sc.Text(), err)
		}
		if thread != "shard0/flush" || n <= 0 {
			t.Fatalf("folded line wrong: %q", sc.Text())
		}
	}
}

func TestProfilerSampleConservation(t *testing.T) {
	// Arbitrary advance patterns never lose or double-count a sample: total
	// samples per thread == floor(now/step) exactly.
	m := hw.NewMachine(hw.DefaultConfig())
	m.EnableProfiler(7) // deliberately odd step
	th := m.NewThread(0)
	steps := []int64{1, 6, 7, 8, 13, 3, 3, 1, 100, 49}
	for i, d := range steps {
		if i%3 == 2 {
			th.Clock.AdvanceTo(th.Clock.Now() + d)
		} else {
			th.Clock.Advance(d)
		}
	}
	if got, want := th.Profile().TotalSamples(), th.Clock.Now()/7; got != want {
		t.Fatalf("samples = %d, want %d", got, want)
	}
	if bad := VerifyProfiles(m); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

func TestProfilerSameNameThreadsFold(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	m.EnableProfiler(100)
	a := m.NewThread(0).SetName("worker")
	b := m.NewThread(1).SetName("worker")
	a.Clock.Advance(1000)
	b.Clock.Advance(500)
	entries := Profiles(m)
	if len(entries) != 1 {
		t.Fatalf("entries = %+v, want one folded row", entries)
	}
	if entries[0].Thread != "worker" || entries[0].Samples != 15 {
		t.Fatalf("folded row wrong: %+v", entries[0])
	}
}

func TestProfilerOffIsInert(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	th := m.NewThread(0)
	th.Clock.Advance(10_000)
	if th.Profile() != nil {
		t.Fatal("profile attached without EnableProfiler")
	}
	if Profiles(m) != nil || VerifyProfiles(m) != nil {
		t.Fatal("profiler-off machine not inert")
	}
	if Profiles(nil) != nil || VerifyProfiles(nil) != nil {
		t.Fatal("nil machine not inert")
	}
}

func TestProfilerZeroVirtualOverhead(t *testing.T) {
	// The same deterministic schedule must land on identical virtual
	// timestamps with and without the profiler.
	run := func(profile bool) int64 {
		m := hw.NewMachine(hw.DefaultConfig())
		if profile {
			m.EnableProfiler(1000)
		}
		th := m.NewThread(0)
		for i := 0; i < 500; i++ {
			th.InPhase(hw.PhaseWAL, func() { th.Clock.Advance(123) })
			th.Clock.AdvanceTo(th.Clock.Now() + int64(i%7))
		}
		return th.Clock.Now()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("profiler perturbed virtual time: %d != %d", a, b)
	}
}
