package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DiffTolerances are the per-metric relative tolerances obsdiff applies. A
// zero field takes its default. All are fractions: 0.15 means a 15% change in
// the regressing direction (latency/dwell up, throughput down) fails.
type DiffTolerances struct {
	NsPerOp    float64 // mean virtual ns per op, per op type (default 0.15)
	Tail       float64 // p99 / p99.9 latency (default 0.25)
	Layer      float64 // per-(op, layer) ns/op attribution (default 0.35)
	Dwell      float64 // flow-control stall dwell fraction (default 0.15)
	Throughput float64 // Kops/s (default 0.15)
}

func (t DiffTolerances) withDefaults() DiffTolerances {
	if t.NsPerOp <= 0 {
		t.NsPerOp = 0.15
	}
	if t.Tail <= 0 {
		t.Tail = 0.25
	}
	if t.Layer <= 0 {
		t.Layer = 0.35
	}
	if t.Dwell <= 0 {
		t.Dwell = 0.15
	}
	if t.Throughput <= 0 {
		t.Throughput = 0.15
	}
	return t
}

// Delta is one compared metric across the two reports.
type Delta struct {
	Run       string  `json:"run"`
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Pct       float64 `json:"pct"` // signed relative change vs old
	Regressed bool    `json:"regressed,omitempty"`
}

// DiffResult is a structural comparison of two report run sets.
type DiffResult struct {
	Deltas  []Delta  `json:"deltas"`
	Missing []string `json:"missing,omitempty"` // run keys present on one side only
}

// Regressions returns the deltas that exceeded tolerance.
func (d *DiffResult) Regressions() []Delta {
	var out []Delta
	for _, dl := range d.Deltas {
		if dl.Regressed {
			out = append(out, dl)
		}
	}
	return out
}

// ExtractRuns pulls RunReports out of raw JSON. A top-level cachekv.obs/v1
// report contributes its runs directly; any other JSON shape (e.g. a
// BENCH_*.json with embedded run reports) is walked recursively and every
// object carrying engine/workload/kops_per_sec keys is treated as a run. The
// returned label describes the source shape.
func ExtractRuns(raw []byte) ([]RunReport, string, error) {
	var rep Report
	if err := json.Unmarshal(raw, &rep); err == nil && rep.Schema == Schema {
		return rep.Runs, fmt.Sprintf("%s (%s)", rep.Schema, rep.Tool), nil
	}
	var any interface{}
	if err := json.Unmarshal(raw, &any); err != nil {
		return nil, "", fmt.Errorf("obs: not JSON: %w", err)
	}
	var runs []RunReport
	var walk func(v interface{})
	walk = func(v interface{}) {
		switch x := v.(type) {
		case map[string]interface{}:
			_, hasEng := x["engine"]
			_, hasWl := x["workload"]
			_, hasKops := x["kops_per_sec"]
			if hasEng && hasWl && hasKops {
				b, err := json.Marshal(x)
				if err == nil {
					var r RunReport
					if json.Unmarshal(b, &r) == nil {
						runs = append(runs, r)
						return
					}
				}
			}
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(x[k])
			}
		case []interface{}:
			for _, e := range x {
				walk(e)
			}
		}
	}
	walk(any)
	if len(runs) == 0 {
		return nil, "", fmt.Errorf("obs: no run reports found (need a %s report or embedded runs)", Schema)
	}
	return runs, "embedded runs", nil
}

// runKeys labels runs by engine/workload, disambiguating duplicates in
// encounter order so two reports from the same tool pair up positionally.
func runKeys(runs []RunReport) map[string]*RunReport {
	out := make(map[string]*RunReport, len(runs))
	seen := make(map[string]int)
	for i := range runs {
		key := runs[i].Engine + "/" + runs[i].Workload
		if n := seen[key]; n > 0 {
			key = fmt.Sprintf("%s#%d", key, n)
		}
		seen[runs[i].Engine+"/"+runs[i].Workload]++
		out[key] = &runs[i]
	}
	return out
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 1
	}
	return (newV - oldV) / oldV
}

// dwellFrac returns the run's flow-control stall dwell (slowdown + stop) as a
// fraction of elapsed virtual time, and whether the metrics exist.
func dwellFrac(r *RunReport) (float64, bool) {
	if r.Metrics == nil || r.ElapsedVNs <= 0 {
		return 0, false
	}
	slow, okS := r.Metrics.Get("flow_dwell_slowdown_ns")
	stop, okT := r.Metrics.Get("flow_dwell_stop_ns")
	if !okS && !okT {
		return 0, false
	}
	var total float64
	if okS {
		total += float64(slow.Int) + slow.Float
	}
	if okT {
		total += float64(stop.Int) + stop.Float
	}
	return total / float64(r.ElapsedVNs), true
}

// DiffRuns structurally compares two run sets: throughput, per-op mean and
// tail latency, per-(op, layer) attribution, and flow-control stall dwell.
// Latency, layer, and dwell metrics regress upward; throughput regresses
// downward. Metrics absent on either side are skipped (a report from before a
// field existed cannot fail the gate on it).
func DiffRuns(oldRuns, newRuns []RunReport, tol DiffTolerances) DiffResult {
	tol = tol.withDefaults()
	var res DiffResult
	om, nm := runKeys(oldRuns), runKeys(newRuns)
	keys := make([]string, 0, len(om))
	for k := range om {
		if _, ok := nm[k]; ok {
			keys = append(keys, k)
		} else {
			res.Missing = append(res.Missing, k+" (old only)")
		}
	}
	for k := range nm {
		if _, ok := om[k]; !ok {
			res.Missing = append(res.Missing, k+" (new only)")
		}
	}
	sort.Strings(keys)
	sort.Strings(res.Missing)

	add := func(run, metric string, oldV, newV float64, regressed bool) {
		res.Deltas = append(res.Deltas, Delta{
			Run: run, Metric: metric, Old: oldV, New: newV, Pct: pct(oldV, newV), Regressed: regressed,
		})
	}
	for _, k := range keys {
		o, n := om[k], nm[k]
		if o.KopsPerSec > 0 && n.KopsPerSec > 0 {
			add(k, "kops_per_sec", o.KopsPerSec, n.KopsPerSec,
				n.KopsPerSec < o.KopsPerSec*(1-tol.Throughput))
		}
		oOps := make(map[string]*OpStat, len(o.OpStats))
		for i := range o.OpStats {
			oOps[o.OpStats[i].Op] = &o.OpStats[i]
		}
		for i := range n.OpStats {
			ns := &n.OpStats[i]
			os, ok := oOps[ns.Op]
			if !ok || os.Count == 0 || ns.Count == 0 {
				continue
			}
			oMean := float64(os.TotalNs) / float64(os.Count)
			nMean := float64(ns.TotalNs) / float64(ns.Count)
			add(k, "op/"+ns.Op+"/mean_ns", oMean, nMean, nMean > oMean*(1+tol.NsPerOp))
			if os.Latency.P99Ns > 0 && ns.Latency.P99Ns > 0 {
				add(k, "op/"+ns.Op+"/p99_ns", os.Latency.P99Ns, ns.Latency.P99Ns,
					ns.Latency.P99Ns > os.Latency.P99Ns*(1+tol.Tail))
			}
			if os.Latency.P999Ns > 0 && ns.Latency.P999Ns > 0 {
				add(k, "op/"+ns.Op+"/p999_ns", os.Latency.P999Ns, ns.Latency.P999Ns,
					ns.Latency.P999Ns > os.Latency.P999Ns*(1+tol.Tail))
			}
			oLayers := make(map[string]int64, len(os.Layers))
			for _, l := range os.Layers {
				oLayers[l.Layer] = l.Ns
			}
			for _, l := range ns.Layers {
				oNs, ok := oLayers[l.Layer]
				if !ok {
					continue
				}
				oPer := float64(oNs) / float64(os.Count)
				nPer := float64(l.Ns) / float64(ns.Count)
				// A 50 ns/op absolute slack keeps tiny layers from tripping the
				// relative gate on noise-scale shifts.
				add(k, "op/"+ns.Op+"/layer/"+l.Layer+"_ns", oPer, nPer,
					nPer > oPer*(1+tol.Layer)+50)
			}
		}
		if oFrac, ok := dwellFrac(o); ok {
			if nFrac, ok2 := dwellFrac(n); ok2 {
				// 0.1% absolute slack: a run with near-zero dwell must not fail
				// on a microscopic increase.
				add(k, "stall_dwell_frac", oFrac, nFrac, nFrac > oFrac*(1+tol.Dwell)+0.001)
			}
		}
	}
	return res
}

// WriteTable renders the diff as an aligned human-readable table, regressions
// marked, followed by a summary line.
func (d *DiffResult) WriteTable(w io.Writer) {
	if len(d.Missing) > 0 {
		for _, m := range d.Missing {
			fmt.Fprintf(w, "unmatched run: %s\n", m)
		}
	}
	if len(d.Deltas) == 0 {
		fmt.Fprintln(w, "no comparable metrics")
		return
	}
	fmt.Fprintf(w, "%-28s %-34s %14s %14s %9s\n", "run", "metric", "old", "new", "delta")
	lastRun := ""
	for _, dl := range d.Deltas {
		run := dl.Run
		if run == lastRun {
			run = ""
		} else {
			lastRun = dl.Run
		}
		mark := ""
		if dl.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-28s %-34s %14s %14s %+8.1f%%%s\n",
			run, dl.Metric, fmtVal(dl.Metric, dl.Old), fmtVal(dl.Metric, dl.New), 100*dl.Pct, mark)
	}
	if reg := d.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed beyond tolerance\n", len(reg))
	} else {
		fmt.Fprintf(w, "\nno regressions beyond tolerance (%d metrics compared)\n", len(d.Deltas))
	}
}

func fmtVal(metric string, v float64) string {
	switch {
	case metric == "stall_dwell_frac":
		return fmt.Sprintf("%.4f", v)
	case metric == "kops_per_sec":
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
