package slmdb

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/baseline"
	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
)

func testMachine() *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 1 << 30
	return hw.NewMachine(cfg)
}

func smallOpts(v baseline.Variant) Options {
	o := DefaultOptions()
	o.Variant = v
	o.MemBytes = 256 << 10
	o.SegmentBytes = 1 << 20
	o.FSBytes = 128 << 20
	return o
}

func openDB(t *testing.T, m *hw.Machine, opts Options) (*DB, *hw.Thread) {
	t.Helper()
	th := m.NewThread(0)
	db, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	return db, th
}

func TestPutGetAllVariants(t *testing.T) {
	for _, v := range []baseline.Variant{baseline.Vanilla, baseline.WithoutFlush, baseline.CacheSegments} {
		t.Run("variant"+v.Suffix(), func(t *testing.T) {
			db, th := openDB(t, testMachine(), smallOpts(v))
			defer db.Close(th)
			for i := 0; i < 2000; i++ {
				if err := db.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2000; i += 53 {
				k := []byte(fmt.Sprintf("key%06d", i))
				v, err := db.Get(th, k)
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%s) = %q, %v", k, v, err)
				}
			}
		})
	}
}

func TestSingleLevelInvariant(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	for i := 0; i < 30000; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("key%08d", i)), make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if db.tree.NumFiles(0) != 0 {
		t.Fatal("SLM-DB put files in L0")
	}
	if db.tree.NumFiles(1) == 0 {
		t.Fatal("no single-level tables")
	}
	if db.tree.GetStats().Compactions != 0 {
		t.Fatal("SLM-DB ran hierarchical compactions")
	}
}

func TestBTreeDirectedReads(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	n := 20000
	for i := 0; i < n; i++ {
		db.Put(th, []byte(fmt.Sprintf("key%08d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if db.Index().Len() == 0 {
		t.Fatal("B+-tree never indexed flushed tables")
	}
	// Reads on flushed data go through the B+-tree to exactly one table.
	for i := 0; i < n; i += 509 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, err := db.Get(th, k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestOverwriteAcrossTables(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	// First generation flushed to a table.
	for i := 0; i < 5000; i++ {
		db.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte("old"))
	}
	db.FlushAll(th)
	// Overwrites flushed into a *different* overlapping table: the B+-tree
	// must point at the newer one.
	for i := 0; i < 5000; i++ {
		db.Put(th, []byte(fmt.Sprintf("key%06d", i)), []byte("new"))
	}
	db.FlushAll(th)
	for i := 0; i < 5000; i += 307 {
		v, err := db.Get(th, []byte(fmt.Sprintf("key%06d", i)))
		if err != nil || string(v) != "new" {
			t.Fatalf("stale read: %q, %v", v, err)
		}
	}
}

func TestDelete(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	db.Put(th, []byte("k"), []byte("v"))
	db.FlushAll(th)
	db.Delete(th, []byte("k"))
	if _, err := db.Get(th, []byte("k")); err != kvstore.ErrNotFound {
		t.Fatalf("delete over flushed data: %v", err)
	}
	db.FlushAll(th)
	if _, err := db.Get(th, []byte("k")); err != kvstore.ErrNotFound {
		t.Fatalf("tombstone lost in flush: %v", err)
	}
}

func TestScan(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	for i := 0; i < 1000; i++ {
		db.Put(th, []byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	db.FlushAll(th)
	for i := 500; i < 600; i++ {
		db.Put(th, []byte(fmt.Sprintf("k%05d", i)), []byte("v2"))
	}
	count := 0
	sawNew := false
	db.Scan(th, []byte("k00490"), 30, func(k, v []byte) bool {
		count++
		if string(k) == "k00500" && string(v) == "v2" {
			sawNew = true
		}
		return true
	})
	if count != 30 {
		t.Fatalf("scanned %d", count)
	}
	if !sawNew {
		t.Fatal("scan returned stale version")
	}
}

func TestConcurrentWriters(t *testing.T) {
	m := testMachine()
	db, th := openDB(t, m, smallOpts(baseline.Vanilla))
	defer db.Close(th)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < 2000; i++ {
				if err := db.Put(wth, []byte(fmt.Sprintf("w%d-%05d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		for i := 0; i < 2000; i += 331 {
			if _, err := db.Get(th, []byte(fmt.Sprintf("w%d-%05d", w, i))); err != nil {
				t.Fatalf("lost w%d-%05d: %v", w, i, err)
			}
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	m := testMachine()
	opts := smallOpts(baseline.Vanilla)
	db, th := openDB(t, m, opts)
	for i := 0; i < 10000; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("key%08d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash-stop the store before the platform power-fails: without Halt the
	// background goroutines race the recovery below on the host.
	db.Halt()
	m.Crash()
	m.Recover()
	th2 := m.NewThread(0)
	db2, err := Open(m, opts, th2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close(th2)
	for i := 0; i < 10000; i += 101 {
		k := []byte(fmt.Sprintf("key%08d", i))
		v, err := db2.Get(th2, k)
		if err != nil {
			t.Fatalf("lost %s: %v", k, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q", k, v)
		}
	}
}

func TestNames(t *testing.T) {
	for v, want := range map[baseline.Variant]string{
		baseline.Vanilla:       "SLM-DB",
		baseline.WithoutFlush:  "SLM-DB-w/o-flush",
		baseline.CacheSegments: "SLM-DB-cache",
	} {
		db, th := openDB(t, testMachine(), smallOpts(v))
		if db.Name() != want {
			t.Fatalf("Name() = %s", db.Name())
		}
		db.Close(th)
	}
}
