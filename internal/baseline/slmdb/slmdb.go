// Package slmdb reimplements SLM-DB (Kaiyrakhmet et al., USENIX FAST'19) as
// the paper describes and configures it: a single persistent MemTable in
// PMem (in-place durability, no WAL), a global B+-tree in PMem that maps
// every persisted key to the SSTable holding it, and a *single-level* LSM
// organization — SSTables live in one level and are located via the B+-tree
// rather than by level search, so no hierarchical compaction runs.
//
// The paper's eADR variants apply exactly as for NoveLSM: -w/o-flush drops
// the flush instructions; -cache stages the MemTable through pinned LLC
// segments (with the MemTable enlarged to 4 GiB, scaled here).
package slmdb

import (
	"sync"

	"cachekv/internal/arena"
	"cachekv/internal/baseline"
	"cachekv/internal/btree"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
	"cachekv/internal/pmemfs"
	"cachekv/internal/util"
)

// Options configure an SLM-DB instance (sizes scaled from the paper's 64 MiB
// MemTable / 4 GiB for the -cache comparison).
type Options struct {
	Variant       baseline.Variant
	MemBytes      int64  // persistent MemTable size (8 MiB scaled; paper 64 MiB)
	SegmentBytes  uint64 // pinned cache segment for -cache (12 MiB)
	NodeBytes     uint64 // PMem B+-tree node area
	FSBytes       uint64
	ManifestBytes uint64
	LSM           lsm.Options

	// Trace, when non-nil, receives lifecycle events (rotation, flush
	// start/end, recovery). Every emit site is nil-safe.
	Trace *obs.Trace
}

// DefaultOptions returns the scaled evaluation configuration.
func DefaultOptions() Options {
	return Options{
		MemBytes:      8 << 20,
		SegmentBytes:  12 << 20,
		NodeBytes:     64 << 20,
		FSBytes:       256 << 20,
		ManifestBytes: 4 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MemBytes == 0 {
		o.MemBytes = d.MemBytes
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = d.SegmentBytes
	}
	if o.NodeBytes == 0 {
		o.NodeBytes = d.NodeBytes
	}
	if o.FSBytes == 0 {
		o.FSBytes = d.FSBytes
	}
	if o.ManifestBytes == 0 {
		o.ManifestBytes = d.ManifestBytes
	}
	o.LSM.SingleLevel = true
	return o
}

// DB is an SLM-DB instance.
type DB struct {
	m    *hw.Machine
	opts Options
	part cache.PartitionID

	lock *sim.VMutex // the shared persistent-MemTable mutex

	mu     sync.Mutex
	active *kvstore.Memtable
	imms   []*kvstore.Memtable
	seq    uint64

	// The global B+-tree in PMem: user key -> SSTable number (fixed64).
	// Queries pay PMem latency per node hop; updates happen at flush time,
	// contending with reads on the tree's own lock — the paper's explanation
	// for SLM-DB's flat multi-thread read scaling.
	index      *btree.Tree
	nodeRegion hw.Region

	logs        [2]*arena.PArena
	logBusy     [2]bool
	logCur      int
	flushCh     chan flushJob
	flushWG     sync.WaitGroup
	flushServer *sim.ServerPool
	pending     sync.WaitGroup
	cond        *sync.Cond

	fs   *pmemfs.FS
	tree *lsm.Tree

	failed  error
	closed  bool
	crashed bool
}

type flushJob struct {
	mt       *kvstore.Memtable
	logIdx   int
	sealedAt int64
}

// Open creates (or recovers) an SLM-DB instance on machine m.
func Open(m *hw.Machine, opts Options, th *hw.Thread) (*DB, error) {
	opts = opts.withDefaults()
	part, err := baseline.ReservePartition(m, opts.Variant, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	db := &DB{
		m:           m,
		opts:        opts,
		part:        part,
		lock:        sim.NewVMutex(m.Costs),
		index:       btree.New(),
		flushCh:     make(chan flushJob, 8),
		flushServer: sim.NewServerPool(1),
	}
	db.cond = sync.NewCond(&db.mu)

	logR0 := baseline.LookupOrAlloc(m, "slmdb.plog0", uint64(opts.MemBytes)*2)
	logR1 := baseline.LookupOrAlloc(m, "slmdb.plog1", uint64(opts.MemBytes)*2)
	db.logs[0] = arena.NewPArena(logR0)
	db.logs[1] = arena.NewPArena(logR1)
	db.nodeRegion = baseline.LookupOrAlloc(m, "slmdb.nodes", opts.NodeBytes)
	fsRegion := baseline.LookupOrAlloc(m, "slmdb.fs", opts.FSBytes)
	manifestRegion := baseline.LookupOrAlloc(m, "slmdb.manifest", opts.ManifestBytes)

	db.fs, err = pmemfs.Mount(m, fsRegion, th)
	if err != nil {
		return nil, err
	}
	db.tree, err = lsm.Open(m, db.fs, manifestRegion, opts.LSM, th)
	if err != nil {
		return nil, err
	}
	db.seq = db.tree.LastSeq()

	// Rebuild the B+-tree from the single level's table metadata (SLM-DB
	// persists its B+-tree; our reconstruction pays the equivalent scan cost
	// once at open).
	for _, f := range db.tree.Files(1) {
		db.indexTable(th, f.Num)
	}

	// Recover the persistent MemTable from its entry logs.
	db.active = db.newMemtable(0)
	replayed := 0
	for _, log := range db.logs {
		kvstore.RecoverEntries(m, log.Region(), th, func(ik util.InternalKey, val []byte) {
			db.active.Insert(th, ik, val)
			if s := ik.Seq(); s > db.seq {
				db.seq = s
			}
			replayed++
		})
		log.Reset()
		db.zeroLogHead(th, log)
	}
	if replayed > 0 {
		opts.Trace.Emit(th.Clock.Now(), "recovery_end",
			"engine", db.Name(), "replayed", replayed, "last_seq", db.seq)
		db.logBusy[0] = true
		db.sealActiveLocked(th)
	} else {
		db.logBusy[0] = true // active memtable owns log 0
	}

	db.flushWG.Add(1)
	go db.flusher()
	return db, nil
}

func (db *DB) zeroLogHead(th *hw.Thread, log *arena.PArena) {
	zero := make([]byte, 8)
	db.m.Cache.NTWrite(th.Clock, log.Region().Addr, zero)
}

func (db *DB) newMemtable(logIdx int) *kvstore.Memtable {
	cfg := kvstore.MemtableConfig{
		Machine:    db.m,
		Placement:  kvstore.PlacePMem,
		EntryArena: db.logs[logIdx],
		NodeRegion: db.nodeRegion,
		NodeWrites: 2,
		Seed:       uint64(db.seq) + 13,
		// SLM-DB's persistent MemTable pays for allocator metadata and
		// validity-bitmap persistence on every insert; the paper measures it
		// as the slowest writer of the group (Figures 5(a), 10, 12(b)).
		ExtraWriteNs: 4000,
	}
	switch db.opts.Variant {
	case baseline.Vanilla:
		cfg.FlushInstr = true
	case baseline.WithoutFlush:
		cfg.FlushInstr = false
	case baseline.CacheSegments:
		cfg.SegmentBytes = db.opts.SegmentBytes
		cfg.Partition = db.part
	}
	return kvstore.NewMemtable(cfg)
}

// Name implements kvstore.DB.
func (db *DB) Name() string { return "SLM-DB" + db.opts.Variant.Suffix() }

// Tree exposes the storage component.
func (db *DB) Tree() *lsm.Tree { return db.tree }

// Index exposes the global B+-tree (tests).
func (db *DB) Index() *btree.Tree { return db.index }

// btCharge converts B+-tree node hops into PMem latency on th.
func (db *DB) btCharge(th *hw.Thread) btree.ChargeFunc {
	return func(visits int) {
		th.Clock.Advance(int64(visits) * db.m.Costs.PMemReadRand)
	}
}

// Put implements kvstore.DB.
func (db *DB) Put(th *hw.Thread, key, value []byte) error {
	return db.write(th, key, value, util.KindValue)
}

// Delete implements kvstore.DB.
func (db *DB) Delete(th *hw.Thread, key []byte) error {
	return db.write(th, key, nil, util.KindDelete)
}

func (db *DB) write(th *hw.Thread, key, value []byte, kind util.ValueKind) error {
	waited := db.lock.Lock(th.Clock)
	th.AddPhase(hw.PhaseLock, waited)
	db.mu.Lock()
	if db.failed != nil || db.closed {
		err := db.failed
		if err == nil {
			err = errClosed
		}
		db.mu.Unlock()
		db.lock.Unlock(th.Clock)
		return err
	}
	db.seq++
	ikey := util.MakeInternalKey(nil, key, db.seq, kind)
	mt := db.active
	db.mu.Unlock()

	if err := mt.Insert(th, ikey, value); err != nil {
		db.lock.Unlock(th.Clock)
		return err
	}

	db.mu.Lock()
	if mt == db.active && mt.ApproximateSize() >= db.opts.MemBytes {
		db.sealActiveLocked(th)
	}
	db.mu.Unlock()
	db.lock.Unlock(th.Clock)
	return nil
}

// sealActiveLocked rotates the persistent MemTable (db.mu held).
func (db *DB) sealActiveLocked(th *hw.Thread) {
	sealed := db.active
	sealedLog := db.logCur
	db.opts.Trace.Emit(th.Clock.Now(), "memtable_seal",
		"bytes", sealed.ApproximateSize(), "entries", sealed.Len())
	sealed.FlushRemainingSegment(th)
	next := db.logCur ^ 1
	for db.logBusy[next] {
		db.cond.Wait()
	}
	db.logBusy[next] = true
	db.logCur = next
	th.Clock.AdvanceTo(db.flushServer.EarliestFree())
	db.active = db.newMemtable(next)
	db.imms = append(db.imms, sealed)
	db.pending.Add(1)
	db.flushCh <- flushJob{mt: sealed, logIdx: sealedLog, sealedAt: th.Clock.Now()}
}

// Halt crash-stops the store: operations fail immediately and background
// flushes abandon their queued MemTables (a power failure, not a shutdown).
func (db *DB) Halt() {
	db.mu.Lock()
	db.crashed = true
	if db.failed == nil {
		db.failed = errClosed
	}
	db.mu.Unlock()
}

// flusher drains sealed MemTables into single-level SSTables and installs
// every flushed key into the global B+-tree.
func (db *DB) flusher() {
	defer db.flushWG.Done()
	for job := range db.flushCh {
		db.mu.Lock()
		if db.crashed {
			db.logBusy[job.logIdx] = false
			db.cond.Broadcast()
			db.mu.Unlock()
			db.pending.Done()
			continue
		}
		db.mu.Unlock()
		th := db.m.NewThread(0)
		th.Clock.SetLabel(hw.PhaseBgFlush.Layer())
		th.Clock.AdvanceTo(job.sealedAt)
		start := th.Clock.Now()
		db.opts.Trace.Emit(start, "flush_start", "entries", job.mt.Len())
		before := db.tree.Files(1)
		it := job.mt.NewIter()
		err := db.tree.Flush(th, it, job.mt.MaxSeq())
		if err == nil {
			// Index the new tables' keys in the B+-tree.
			seen := make(map[uint64]bool, len(before))
			for _, f := range before {
				seen[f.Num] = true
			}
			for _, f := range db.tree.Files(1) {
				if !seen[f.Num] {
					db.indexTable(th, f.Num)
				}
			}
		}
		db.flushServer.Submit(job.sealedAt, th.Clock.Now()-start)
		db.opts.Trace.Emit(th.Clock.Now(), "flush_end",
			"entries", job.mt.Len(), "ns", th.Clock.Now()-start)
		db.mu.Lock()
		if err != nil && db.failed == nil {
			db.failed = err
		}
		for i, mt := range db.imms {
			if mt == job.mt {
				db.imms = append(db.imms[:i], db.imms[i+1:]...)
				break
			}
		}
		db.logs[job.logIdx].Reset()
		db.zeroLogHead(th, db.logs[job.logIdx])
		db.logBusy[job.logIdx] = false
		db.cond.Broadcast()
		db.mu.Unlock()
		db.pending.Done()
	}
}

// indexTable walks one SSTable and points the B+-tree at it for every user
// key it holds.
func (db *DB) indexTable(th *hw.Thread, num uint64) {
	it, err := db.newTableIter(th, num)
	if err != nil {
		return
	}
	it.SeekToFirst()
	var lastUser []byte
	charge := db.btCharge(th)
	for it.Valid() {
		u := it.Key().UserKey()
		if lastUser == nil || string(u) != string(lastUser) {
			db.index.Insert(append([]byte(nil), u...), util.PutFixed64(nil, num), charge)
			lastUser = append(lastUser[:0], u...)
		}
		it.Next()
	}
}

func (db *DB) newTableIter(th *hw.Thread, num uint64) (lsm.Iterator, error) {
	return db.tree.TableIterator(th, num)
}

// Get implements kvstore.DB: persistent MemTable first, then one directed
// SSTable probe via the global B+-tree. As in LevelDB, the read briefly
// takes the shared DB mutex to snapshot MemTable references — the serialized
// section behind the paper's flat SLM-DB read scaling ("intensive access
// requests are prone to competing for the shared SSTable metadata").
func (db *DB) Get(th *hw.Thread, key []byte) ([]byte, error) {
	waited := db.lock.Lock(th.Clock)
	th.AddPhase(hw.PhaseLock, waited)
	th.ChargeDRAM(1)
	db.lock.Unlock(th.Clock)
	db.mu.Lock()
	if db.failed != nil {
		err := db.failed
		db.mu.Unlock()
		return nil, err
	}
	snapshot := db.seq
	tables := make([]*kvstore.Memtable, 0, 1+len(db.imms))
	tables = append(tables, db.active)
	for i := len(db.imms) - 1; i >= 0; i-- {
		tables = append(tables, db.imms[i])
	}
	db.mu.Unlock()

	var res kvstore.UserGetResult
	for _, mt := range tables {
		if v, fseq, kind, ok := mt.Get(th, key, snapshot); ok {
			res.Consider(v, fseq, kind)
		}
	}
	if !res.Found {
		var terr error
		th.InPhase(hw.PhaseSST, func() {
			if loc, ok := db.index.Get(key, db.btCharge(th)); ok {
				num := util.Fixed64(loc)
				v, fseq, kind, found, err := db.tree.GetInTable(th, num, key, snapshot)
				if err != nil {
					terr = err
					return
				}
				if found {
					res.Consider(v, fseq, kind)
				}
			}
		})
		if terr != nil {
			return nil, terr
		}
	}
	if !res.Found || res.Kind == util.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return res.Value, nil
}

// Scan implements kvstore.DB.
func (db *DB) Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	db.mu.Lock()
	snapshot := db.seq
	var its []lsm.Iterator
	its = append(its, db.active.NewIter())
	for i := len(db.imms) - 1; i >= 0; i-- {
		its = append(its, db.imms[i].NewIter())
	}
	db.mu.Unlock()
	treeIt, err := db.tree.NewIterator(th)
	if err != nil {
		return 0, err
	}
	its = append(its, treeIt)
	merged := lsm.NewMergingIterator(its...)
	return kvstore.UserScan(merged, start, snapshot, limit, fn), nil
}

// FlushAll implements kvstore.DB.
func (db *DB) FlushAll(th *hw.Thread) error {
	db.mu.Lock()
	if db.active.Len() > 0 {
		db.sealActiveLocked(th)
	}
	db.mu.Unlock()
	db.pending.Wait()
	th.Clock.AdvanceTo(db.flushServer.EarliestFree())
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failed
}

// Close implements kvstore.DB.
func (db *DB) Close(th *hw.Thread) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	db.pending.Wait()
	close(db.flushCh)
	db.flushWG.Wait()
	db.mu.Lock()
	crashed := db.crashed
	db.mu.Unlock()
	if db.opts.Variant == baseline.CacheSegments && !crashed {
		// Drain the pinned segments before surrendering the partition so a
		// graceful close is never lossier than an eADR crash.
		th := db.m.NewThread(0)
		for _, log := range db.logs {
			db.m.Cache.FlushOpt(th.Clock, log.Region().Addr, int(log.Used()))
		}
	}
	if db.opts.Variant == baseline.CacheSegments {
		db.m.Cache.Release(db.part)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failed
}

var errClosed = dbClosedError{}

type dbClosedError struct{}

func (dbClosedError) Error() string { return "slmdb: db closed" }

var _ kvstore.DB = (*DB)(nil)
