package baseline

import (
	"testing"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
)

func TestVariantSuffixes(t *testing.T) {
	if Vanilla.Suffix() != "" || WithoutFlush.Suffix() != "-w/o-flush" || CacheSegments.Suffix() != "-cache" {
		t.Fatal("variant suffixes wrong")
	}
}

func TestReservePartition(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	// Non-cache variants use the shared partition and reserve nothing.
	p, err := ReservePartition(m, Vanilla, 12<<20)
	if err != nil || p != cache.DefaultPartition {
		t.Fatalf("Vanilla: %v, %v", p, err)
	}
	p, err = ReservePartition(m, CacheSegments, 12<<20)
	if err != nil {
		t.Fatal(err)
	}
	if p == cache.DefaultPartition {
		t.Fatal("cache variant did not pin a partition")
	}
	// Impossible reservations fail cleanly.
	if _, err := ReservePartition(m, CacheSegments, 1<<30); err == nil {
		t.Fatal("oversized reservation accepted")
	}
}

func TestLookupOrAlloc(t *testing.T) {
	m := hw.NewMachine(hw.Config{PMemBytes: 64 << 20})
	a := LookupOrAlloc(m, "region-x", 1<<20)
	b := LookupOrAlloc(m, "region-x", 1<<20)
	if a != b {
		t.Fatal("second lookup allocated a fresh region")
	}
	c := LookupOrAlloc(m, "region-y", 1<<20)
	if c == a {
		t.Fatal("distinct names shared a region")
	}
}
