// Package novelsm reimplements NoveLSM (Kannan et al., USENIX ATC'18) as the
// paper describes and configures it: an LSM-tree KV store that keeps a small
// MemTable in DRAM (write-ahead logged) and a large mutable MemTable in PMem
// with in-place durability (no log). All writes serialize on a single shared
// MemTable mutex and update the skiplist index synchronously — the two
// software costs the paper's Observation 2 charges against it.
//
// The -w/o-flush and -cache variants (Sections II-C, IV-A) are selected via
// baseline.Variant: the former drops flush instructions on eADR, the latter
// stages the PMem MemTable through 12 MiB pinned cache segments flushed
// wholesale with clflush when full.
package novelsm

import (
	"sync"

	"cachekv/internal/arena"
	"cachekv/internal/baseline"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
	"cachekv/internal/pmemfs"
	"cachekv/internal/util"
	"cachekv/internal/wal"
)

// Options configure a NoveLSM instance. Sizes default to scaled-down values
// of the paper's configuration (64 MiB DRAM MemTable, 4 GiB PMem MemTable)
// chosen so experiment-sized workloads exercise every rotation path.
type Options struct {
	Variant       baseline.Variant
	DRAMMemBytes  int64  // DRAM MemTable size (4 MiB scaled; paper 64 MiB)
	PMemMemBytes  int64  // PMem MemTable size (16 MiB scaled; paper 4 GiB)
	SegmentBytes  uint64 // pinned cache segment for the -cache variant (12 MiB)
	WALBytes      uint64
	NodeBytes     uint64 // PMem skiplist-node area (its random dirty lines)
	FSBytes       uint64
	ManifestBytes uint64
	LSM           lsm.Options

	// Trace, when non-nil, receives lifecycle events (rotation, flush
	// start/end, recovery). Every emit site is nil-safe.
	Trace *obs.Trace
}

// DefaultOptions returns the scaled evaluation configuration.
func DefaultOptions() Options {
	return Options{
		DRAMMemBytes:  4 << 20,
		PMemMemBytes:  16 << 20,
		SegmentBytes:  12 << 20,
		WALBytes:      16 << 20,
		NodeBytes:     64 << 20,
		FSBytes:       256 << 20,
		ManifestBytes: 4 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.DRAMMemBytes == 0 {
		o.DRAMMemBytes = d.DRAMMemBytes
	}
	if o.PMemMemBytes == 0 {
		o.PMemMemBytes = d.PMemMemBytes
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = d.SegmentBytes
	}
	if o.WALBytes == 0 {
		o.WALBytes = d.WALBytes
	}
	if o.NodeBytes == 0 {
		o.NodeBytes = d.NodeBytes
	}
	if o.FSBytes == 0 {
		o.FSBytes = d.FSBytes
	}
	if o.ManifestBytes == 0 {
		o.ManifestBytes = d.ManifestBytes
	}
	return o
}

// tier identifies which memory holds the active MemTable.
type tier int

const (
	tierDRAM tier = iota
	tierPMem
)

// DB is a NoveLSM instance.
type DB struct {
	m    *hw.Machine
	opts Options
	part cache.PartitionID // pinned partition for the -cache variant

	// The single shared-MemTable mutex of Ob2, serializing every write in
	// virtual time.
	lock *sim.VMutex

	mu        sync.Mutex // protects rotation state (real concurrency)
	active    *kvstore.Memtable
	activeTie tier
	imms      []*kvstore.Memtable
	seq       uint64

	walW      *wal.Writer
	walRegion hw.Region
	// Ping-pong PMem entry logs: the active PMem MemTable appends to one
	// while the sealed one drains to L0.
	logs        [2]*arena.PArena
	logBusy     [2]bool
	logCur      int
	dramPending int
	nodeRegion  hw.Region

	flushCh     chan flushJob
	flushWG     sync.WaitGroup
	flushServer *sim.ServerPool
	pending     sync.WaitGroup
	cond        *sync.Cond

	fs   *pmemfs.FS
	tree *lsm.Tree

	failed  error
	closed  bool
	crashed bool
}

type flushJob struct {
	mt       *kvstore.Memtable
	logIdx   int // PMem log to recycle afterwards (-1 for DRAM tables)
	sealedAt int64
}

// Open creates (or recovers) a NoveLSM instance on machine m.
func Open(m *hw.Machine, opts Options, th *hw.Thread) (*DB, error) {
	opts = opts.withDefaults()
	part, err := baseline.ReservePartition(m, opts.Variant, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	db := &DB{
		m:           m,
		opts:        opts,
		part:        part,
		lock:        sim.NewVMutex(m.Costs),
		flushCh:     make(chan flushJob, 8),
		flushServer: sim.NewServerPool(1),
	}
	db.cond = sync.NewCond(&db.mu)

	db.walRegion = baseline.LookupOrAlloc(m, "novelsm.wal", opts.WALBytes)
	logR0 := baseline.LookupOrAlloc(m, "novelsm.plog0", uint64(opts.PMemMemBytes)*2)
	logR1 := baseline.LookupOrAlloc(m, "novelsm.plog1", uint64(opts.PMemMemBytes)*2)
	db.logs[0] = arena.NewPArena(logR0)
	db.logs[1] = arena.NewPArena(logR1)
	db.nodeRegion = baseline.LookupOrAlloc(m, "novelsm.nodes", opts.NodeBytes)
	fsRegion := baseline.LookupOrAlloc(m, "novelsm.fs", opts.FSBytes)
	manifestRegion := baseline.LookupOrAlloc(m, "novelsm.manifest", opts.ManifestBytes)

	db.fs, err = pmemfs.Mount(m, fsRegion, th)
	if err != nil {
		return nil, err
	}
	db.tree, err = lsm.Open(m, db.fs, manifestRegion, opts.LSM, th)
	if err != nil {
		return nil, err
	}
	db.seq = db.tree.LastSeq()

	// Crash recovery: replay the WAL (DRAM MemTable contents) and both PMem
	// entry logs into a fresh active MemTable generation.
	db.active = db.newMemtable(tierDRAM, 0)
	replayed := 0
	for _, log := range db.logs {
		n := kvstore.RecoverEntries(m, log.Region(), th, func(ik util.InternalKey, val []byte) {
			db.active.Insert(th, ik, val)
			if s := ik.Seq(); s > db.seq {
				db.seq = s
			}
			replayed++
		})
		_ = n
		log.Reset()
		db.zeroLogHead(th, log)
	}
	wr := wal.NewReader(m, db.walRegion)
	_ = wr.ReplayAll(th, func(rec []byte) error {
		ik, val, _, err := kvstore.DecodeEntry(rec)
		if err != nil {
			return err
		}
		db.active.Insert(th, ik, val)
		if s := ik.Seq(); s > db.seq {
			db.seq = s
		}
		replayed++
		return nil
	})
	db.walW = wal.NewWriterMode(m, db.walRegion, th, db.walMode())
	if replayed > 0 {
		opts.Trace.Emit(th.Clock.Now(), "recovery_end",
			"engine", db.Name(), "replayed", replayed, "last_seq", db.seq)
		// Push recovered data straight down to L0 so the logs stay reset.
		db.sealActiveLocked(th)
	}

	db.flushWG.Add(1)
	go db.flusher()
	return db, nil
}

// walMode maps the variant to its WAL persistence discipline: vanilla uses
// store+clwb; -w/o-flush leaves log bytes to cache eviction (the Ob1
// failure mode); -cache keeps ordered flushes.
func (db *DB) walMode() wal.Mode {
	if db.opts.Variant == baseline.WithoutFlush {
		return wal.ModeCached
	}
	return wal.ModeFlush
}

// zeroLogHead invalidates a recycled PMem entry log's first header.
func (db *DB) zeroLogHead(th *hw.Thread, log *arena.PArena) {
	zero := make([]byte, 8)
	db.m.Cache.NTWrite(th.Clock, log.Region().Addr, zero)
}

// newMemtable builds the next MemTable generation on the given tier.
func (db *DB) newMemtable(t tier, logIdx int) *kvstore.Memtable {
	cfg := kvstore.MemtableConfig{
		Machine: db.m,
		Seed:    uint64(db.seq) + 7,
	}
	if t == tierPMem {
		cfg.Placement = kvstore.PlacePMem
		cfg.EntryArena = db.logs[logIdx]
		cfg.NodeRegion = db.nodeRegion
		cfg.NodeWrites = 2
		switch db.opts.Variant {
		case baseline.Vanilla:
			cfg.FlushInstr = true
		case baseline.WithoutFlush:
			cfg.FlushInstr = false
		case baseline.CacheSegments:
			cfg.SegmentBytes = db.opts.SegmentBytes
			cfg.Partition = db.part
		}
	}
	return kvstore.NewMemtable(cfg)
}

// Name implements kvstore.DB.
func (db *DB) Name() string { return "NoveLSM" + db.opts.Variant.Suffix() }

// Tree exposes the storage component.
func (db *DB) Tree() *lsm.Tree { return db.tree }

// memLimit returns the active MemTable's size budget.
func (db *DB) memLimit() int64 {
	if db.activeTie == tierDRAM {
		return db.opts.DRAMMemBytes
	}
	return db.opts.PMemMemBytes
}

// Put implements kvstore.DB.
func (db *DB) Put(th *hw.Thread, key, value []byte) error {
	return db.write(th, key, value, util.KindValue)
}

// Delete implements kvstore.DB.
func (db *DB) Delete(th *hw.Thread, key []byte) error {
	return db.write(th, key, nil, util.KindDelete)
}

func (db *DB) write(th *hw.Thread, key, value []byte, kind util.ValueKind) error {
	// The shared-MemTable lock: Figure 5(b)'s dominant cost under
	// concurrency. Everything from WAL to index update sits inside it.
	waited := db.lock.Lock(th.Clock)
	th.AddPhase(hw.PhaseLock, waited)
	db.mu.Lock()
	if db.failed != nil || db.closed {
		err := db.failed
		if err == nil {
			err = errClosed
		}
		db.mu.Unlock()
		db.lock.Unlock(th.Clock)
		return err
	}
	// NoveLSM's PMem MemTable absorbs writes only while the DRAM MemTable is
	// being flushed; once that flush completes, rotate back to DRAM and send
	// the PMem overflow down the flush pipeline too.
	if db.activeTie == tierPMem && db.dramPending == 0 && db.active.Len() > 0 {
		db.sealActiveLocked(th)
	}
	db.seq++
	ikey := util.MakeInternalKey(nil, key, db.seq, kind)

	if db.activeTie == tierDRAM {
		// DRAM MemTables are volatile: WAL first.
		rec := kvstore.EncodeEntry(nil, ikey, value)
		var werr error
		th.InPhase(hw.PhaseWAL, func() {
			_, werr = db.walW.Append(th, rec)
		})
		if werr != nil {
			db.mu.Unlock()
			db.lock.Unlock(th.Clock)
			return werr
		}
	}
	mt := db.active
	db.mu.Unlock()

	if err := mt.Insert(th, ikey, value); err != nil {
		db.lock.Unlock(th.Clock)
		return err
	}

	db.mu.Lock()
	if mt == db.active && mt.ApproximateSize() >= db.memLimit() {
		db.sealActiveLocked(th)
	}
	db.mu.Unlock()
	db.lock.Unlock(th.Clock)
	return nil
}

// sealActiveLocked rotates the active MemTable (db.mu held): DRAM tables go
// to the flush queue and the PMem table takes over (NoveLSM's "PMem MemTable
// absorbs KV pairs once the DRAM MemTable is full"), and vice versa.
func (db *DB) sealActiveLocked(th *hw.Thread) {
	sealed := db.active
	sealedTier := db.activeTie
	sealedLog := db.logCur
	tierName := "dram"
	if sealedTier == tierPMem {
		tierName = "pmem"
	}
	db.opts.Trace.Emit(th.Clock.Now(), "memtable_seal",
		"tier", tierName, "bytes", sealed.ApproximateSize(), "entries", sealed.Len())

	db.active.FlushRemainingSegment(th)
	if sealedTier == tierDRAM {
		// Its WAL is superseded once the table is queued (the flush makes it
		// durable in SSTables; NoveLSM truncates the log at rotation).
		db.activeTie = tierPMem
		// Pick a PMem log that is not still draining; stall if both busy.
		for db.logBusy[0] && db.logBusy[1] {
			db.cond.Wait()
		}
		if db.logBusy[db.logCur] {
			db.logCur ^= 1
		}
		db.logBusy[db.logCur] = true
		th.Clock.AdvanceTo(db.flushServer.EarliestFree())
		db.active = db.newMemtable(tierPMem, db.logCur)
	} else {
		db.activeTie = tierDRAM
		// The WAL can only be truncated once every previous DRAM MemTable is
		// durable in SSTables; otherwise a crash here would lose it.
		for db.dramPending > 0 {
			db.cond.Wait()
		}
		db.walW.Reset(th)
		_ = db.walMode() // discipline is fixed at open; Reset keeps it
		db.active = db.newMemtable(tierDRAM, 0)
	}
	db.imms = append(db.imms, sealed)
	db.pending.Add(1)
	job := flushJob{mt: sealed, logIdx: -1, sealedAt: th.Clock.Now()}
	if sealedTier == tierPMem {
		job.logIdx = sealedLog
	} else {
		db.dramPending++
	}
	db.flushCh <- job
}

// Halt crash-stops the store: operations fail immediately and background
// flushes abandon their queued MemTables (a power failure, not a shutdown).
func (db *DB) Halt() {
	db.mu.Lock()
	db.crashed = true
	if db.failed == nil {
		db.failed = errClosed
	}
	db.mu.Unlock()
}

// flusher drains sealed MemTables to L0.
func (db *DB) flusher() {
	defer db.flushWG.Done()
	for job := range db.flushCh {
		db.mu.Lock()
		if db.crashed {
			db.mu.Unlock()
			db.pending.Done()
			continue
		}
		db.mu.Unlock()
		th := db.m.NewThread(0)
		th.Clock.SetLabel(hw.PhaseBgFlush.Layer())
		th.Clock.AdvanceTo(job.sealedAt)
		start := th.Clock.Now()
		db.opts.Trace.Emit(start, "flush_start", "entries", job.mt.Len())
		it := job.mt.NewIter()
		err := db.tree.Flush(th, it, job.mt.MaxSeq())
		done := db.flushServer.Submit(job.sealedAt, th.Clock.Now()-start)
		db.opts.Trace.Emit(th.Clock.Now(), "flush_end",
			"entries", job.mt.Len(), "ns", th.Clock.Now()-start)
		db.mu.Lock()
		if err != nil && db.failed == nil {
			db.failed = err
		}
		for i, mt := range db.imms {
			if mt == job.mt {
				db.imms = append(db.imms[:i], db.imms[i+1:]...)
				break
			}
		}
		if job.logIdx >= 0 {
			db.logs[job.logIdx].Reset()
			db.zeroLogHead(th, db.logs[job.logIdx])
			db.logBusy[job.logIdx] = false
		} else {
			db.dramPending--
		}
		db.cond.Broadcast()
		db.mu.Unlock()
		_ = done
		db.pending.Done()
	}
}

// Get implements kvstore.DB. Like LevelDB, the read path briefly takes the
// shared DB mutex to snapshot the MemTable references and sequence number —
// under many reader threads this serialized section (and its coherence tax)
// is what flattens the baselines' read scaling in the paper's Figure 12(a),
// while CacheKV's readers touch only per-core state and DRAM indexes.
func (db *DB) Get(th *hw.Thread, key []byte) ([]byte, error) {
	waited := db.lock.Lock(th.Clock)
	th.AddPhase(hw.PhaseLock, waited)
	th.ChargeDRAM(1) // snapshot the memtable refs + seq under the lock
	db.lock.Unlock(th.Clock)
	db.mu.Lock()
	if db.failed != nil {
		err := db.failed
		db.mu.Unlock()
		return nil, err
	}
	snapshot := db.seq
	tables := make([]*kvstore.Memtable, 0, 1+len(db.imms))
	tables = append(tables, db.active)
	for i := len(db.imms) - 1; i >= 0; i-- {
		tables = append(tables, db.imms[i])
	}
	db.mu.Unlock()

	var res kvstore.UserGetResult
	for _, mt := range tables {
		if v, fseq, kind, ok := mt.Get(th, key, snapshot); ok {
			res.Consider(v, fseq, kind)
		}
	}
	if !res.Found {
		var v []byte
		var fseq uint64
		var found, deleted bool
		var terr error
		th.InPhase(hw.PhaseSST, func() {
			v, fseq, found, deleted, terr = db.tree.Get(th, key, snapshot)
		})
		if terr != nil {
			return nil, terr
		}
		if found {
			res.Consider(v, fseq, util.KindValue)
		} else if deleted {
			res.Consider(nil, fseq, util.KindDelete)
		}
	}
	if !res.Found || res.Kind == util.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return res.Value, nil
}

// Scan implements kvstore.DB.
func (db *DB) Scan(th *hw.Thread, start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	db.mu.Lock()
	snapshot := db.seq
	var its []lsm.Iterator
	its = append(its, db.active.NewIter())
	for i := len(db.imms) - 1; i >= 0; i-- {
		its = append(its, db.imms[i].NewIter())
	}
	db.mu.Unlock()
	treeIt, err := db.tree.NewIterator(th)
	if err != nil {
		return 0, err
	}
	its = append(its, treeIt)
	merged := lsm.NewMergingIterator(its...)
	return kvstore.UserScan(merged, start, snapshot, limit, fn), nil
}

// FlushAll implements kvstore.DB.
func (db *DB) FlushAll(th *hw.Thread) error {
	db.mu.Lock()
	if db.active.Len() > 0 {
		db.sealActiveLocked(th)
	}
	db.mu.Unlock()
	db.pending.Wait()
	th.Clock.AdvanceTo(db.flushServer.EarliestFree())
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failed
}

// Close implements kvstore.DB.
func (db *DB) Close(th *hw.Thread) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	db.pending.Wait()
	close(db.flushCh)
	db.flushWG.Wait()
	db.mu.Lock()
	crashed := db.crashed
	db.mu.Unlock()
	if db.opts.Variant == baseline.CacheSegments && !crashed {
		// Drain the pinned segments before surrendering the partition so a
		// graceful close is never lossier than an eADR crash.
		th := db.m.NewThread(0)
		for _, log := range db.logs {
			db.m.Cache.FlushOpt(th.Clock, log.Region().Addr, int(log.Used()))
		}
	}
	if db.opts.Variant == baseline.CacheSegments {
		db.m.Cache.Release(db.part)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failed
}

var errClosed = kvstoreClosedError{}

type kvstoreClosedError struct{}

func (kvstoreClosedError) Error() string { return "novelsm: db closed" }

var _ kvstore.DB = (*DB)(nil)
