package novelsm

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/baseline"
	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
)

func testMachine() *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 1 << 30
	return hw.NewMachine(cfg)
}

func smallOpts(v baseline.Variant) Options {
	o := DefaultOptions()
	o.Variant = v
	o.DRAMMemBytes = 256 << 10
	o.PMemMemBytes = 512 << 10
	o.SegmentBytes = 1 << 20
	o.FSBytes = 128 << 20
	return o
}

func openDB(t *testing.T, m *hw.Machine, opts Options) (*DB, *hw.Thread) {
	t.Helper()
	th := m.NewThread(0)
	db, err := Open(m, opts, th)
	if err != nil {
		t.Fatal(err)
	}
	return db, th
}

func TestPutGetAllVariants(t *testing.T) {
	for _, v := range []baseline.Variant{baseline.Vanilla, baseline.WithoutFlush, baseline.CacheSegments} {
		t.Run(v.Suffix()+"variant", func(t *testing.T) {
			db, th := openDB(t, testMachine(), smallOpts(v))
			defer db.Close(th)
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key%06d", i))
				if err := db.Put(th, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2000; i += 37 {
				k := []byte(fmt.Sprintf("key%06d", i))
				v, err := db.Get(th, k)
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%s) = %q, %v", k, v, err)
				}
			}
			if _, err := db.Get(th, []byte("missing")); err != kvstore.ErrNotFound {
				t.Fatalf("missing key: %v", err)
			}
		})
	}
}

func TestNames(t *testing.T) {
	for v, want := range map[baseline.Variant]string{
		baseline.Vanilla:       "NoveLSM",
		baseline.WithoutFlush:  "NoveLSM-w/o-flush",
		baseline.CacheSegments: "NoveLSM-cache",
	} {
		db, th := openDB(t, testMachine(), smallOpts(v))
		if db.Name() != want {
			t.Fatalf("Name() = %s, want %s", db.Name(), want)
		}
		db.Close(th)
	}
}

func TestRotationThroughBothTiers(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	// Write enough to fill DRAM (256K) then PMem (512K) tables repeatedly.
	n := 40000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%08d", i))
		if err := db.Put(th, k, make([]byte, 48)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if db.tree.GetStats().TablesFlushed == 0 {
		t.Fatal("no tables ever flushed despite rotations")
	}
	for i := 0; i < n; i += 997 {
		k := []byte(fmt.Sprintf("key%08d", i))
		if _, err := db.Get(th, k); err != nil {
			t.Fatalf("lost %s: %v", k, err)
		}
	}
}

func TestDeleteAndOverwrite(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	db.Put(th, []byte("k"), []byte("v1"))
	db.Put(th, []byte("k"), []byte("v2"))
	v, _ := db.Get(th, []byte("k"))
	if string(v) != "v2" {
		t.Fatalf("overwrite: %q", v)
	}
	db.Delete(th, []byte("k"))
	if _, err := db.Get(th, []byte("k")); err != kvstore.ErrNotFound {
		t.Fatalf("delete: %v", err)
	}
}

func TestScan(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	for i := 0; i < 500; i++ {
		db.Put(th, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	var keys []string
	n, err := db.Scan(th, []byte("k0100"), 5, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil || n != 5 {
		t.Fatalf("scan: %d, %v", n, err)
	}
	if keys[0] != "k0100" || keys[4] != "k0104" {
		t.Fatalf("scan keys: %v", keys)
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	m := testMachine()
	db, th := openDB(t, m, smallOpts(baseline.Vanilla))
	defer db.Close(th)
	var wg sync.WaitGroup
	const writers, perW = 4, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := m.NewThread(w)
			for i := 0; i < perW; i++ {
				if err := db.Put(wth, []byte(fmt.Sprintf("w%d-%05d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	acq, waited := db.lock.Stats()
	if acq != writers*perW {
		t.Fatalf("lock acquisitions = %d", acq)
	}
	if waited == 0 {
		t.Fatal("concurrent writers never waited on the shared MemTable lock")
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i += 331 {
			if _, err := db.Get(th, []byte(fmt.Sprintf("w%d-%05d", w, i))); err != nil {
				t.Fatalf("lost w%d-%05d: %v", w, i, err)
			}
		}
	}
}

func TestCrashRecoveryPMemTable(t *testing.T) {
	m := testMachine()
	opts := smallOpts(baseline.Vanilla)
	db, th := openDB(t, m, opts)
	// Fill past the DRAM table so the active table is the PMem one, with
	// its contents only in the entry log.
	for i := 0; i < 12000; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("key%08d", i)), make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash-stop the store before the platform power-fails: without Halt the
	// flusher goroutine races the recovery below on the host, mutating shared
	// machine state while db2 replays the logs.
	db.Halt()
	m.Crash()
	m.Recover()
	th2 := m.NewThread(0)
	db2, err := Open(m, opts, th2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close(th2)
	recovered, lost := 0, 0
	for i := 0; i < 12000; i += 101 {
		if _, err := db2.Get(th2, []byte(fmt.Sprintf("key%08d", i))); err == nil {
			recovered++
		} else {
			lost++
		}
	}
	// Everything durably logged must come back; only the unsynced DRAM-WAL
	// tail could be absent, and vanilla flushes per write, so nothing is.
	if lost > 0 {
		t.Fatalf("lost %d of %d sampled keys (recovered %d)", lost, recovered+lost, recovered)
	}
}

func TestFlushAllIdempotent(t *testing.T) {
	db, th := openDB(t, testMachine(), smallOpts(baseline.Vanilla))
	defer db.Close(th)
	db.Put(th, []byte("k"), []byte("v"))
	if err := db.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushAll(th); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(th, []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("after FlushAll: %q, %v", v, err)
	}
}
