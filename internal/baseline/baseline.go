// Package baseline holds the machinery shared by the two comparison systems
// the paper evaluates against — NoveLSM (ATC'18) and SLM-DB (FAST'19) — and
// their eADR-adapted variants ("-w/o-flush" and "-cache") that the paper
// itself constructs in Sections II-C and IV-A.
package baseline

import (
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
)

// Variant selects the flush discipline of a baseline engine.
type Variant int

// The three variants of each baseline.
const (
	// Vanilla uses store + clflush/clwb, the ADR-era discipline both systems
	// shipped with.
	Vanilla Variant = iota
	// WithoutFlush drops the flush instructions, as one would naively do on
	// an eADR platform ("NoveLSM-w/o-flush", "SLM-DB-w/o-flush").
	WithoutFlush
	// CacheSegments pins memtable segments in the LLC via CAT and flushes
	// each segment wholesale when it fills ("NoveLSM-cache", "SLM-DB-cache").
	CacheSegments
)

// Suffix returns the variant's display suffix ("" / "-w/o-flush" / "-cache").
func (v Variant) Suffix() string {
	switch v {
	case WithoutFlush:
		return "-w/o-flush"
	case CacheSegments:
		return "-cache"
	default:
		return ""
	}
}

// ReservePartition pins segBytes of LLC for a -cache variant and returns the
// partition (DefaultPartition for the other variants).
func ReservePartition(m *hw.Machine, v Variant, segBytes uint64) (cache.PartitionID, error) {
	if v != CacheSegments {
		return cache.DefaultPartition, nil
	}
	part, err := m.Cache.Reserve(int(segBytes))
	if err != nil {
		return 0, fmt.Errorf("baseline: pinning cache segment: %w", err)
	}
	return part, nil
}

// LookupOrAlloc finds a named region or allocates it, so reopening a machine
// after a crash reuses the same memory map.
func LookupOrAlloc(m *hw.Machine, name string, size uint64) hw.Region {
	if r, ok := m.LookupRegion(name); ok {
		return r
	}
	return m.Alloc(name, size, 4096)
}
