package bloom

import (
	"fmt"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10)
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key%08d", i)))
	}
	filter := f.Build(keys)
	for _, k := range keys {
		if !MayContain(filter, k) {
			t.Fatalf("false negative for %s", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10)
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key%08d", i)))
	}
	filter := f.Build(keys)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if MayContain(filter, []byte(fmt.Sprintf("absent%08d", i))) {
			fp++
		}
	}
	// 10 bits/key should give ~1%; allow generous slack.
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestEmptyKeySet(t *testing.T) {
	f := New(10)
	filter := f.Build(nil)
	if MayContain(filter, []byte("anything")) {
		t.Fatal("empty filter should reject")
	}
}

func TestDegenerateFilters(t *testing.T) {
	if !MayContain(nil, []byte("k")) {
		t.Fatal("nil filter must not exclude")
	}
	if !MayContain([]byte{0}, []byte("k")) {
		t.Fatal("1-byte filter must not exclude")
	}
	// k > 30 marks a future encoding: must not exclude.
	if !MayContain([]byte{0, 0, 0, 0, 31}, []byte("k")) {
		t.Fatal("reserved k must not exclude")
	}
}

func TestClampedParameters(t *testing.T) {
	f := New(0) // clamped to 1 bit/key
	filter := f.Build([][]byte{[]byte("a")})
	if !MayContain(filter, []byte("a")) {
		t.Fatal("clamped filter lost its key")
	}
}
