// Package bloom implements LevelDB's bloom filter policy: double hashing
// derived from a single 32-bit hash, k probes chosen from bitsPerKey. SSTable
// readers consult a per-table filter block to skip tables that cannot contain
// a key, which matters most for CacheKV's L0 where tables overlap.
package bloom

import "cachekv/internal/util"

// Filter builds and queries bloom filter bit arrays.
type Filter struct {
	bitsPerKey int
	k          int
}

// New creates a policy with the given bits per key (10 is LevelDB's default,
// ~1% false positive rate).
func New(bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := int(float64(bitsPerKey) * 0.69) // ln(2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bitsPerKey: bitsPerKey, k: k}
}

// Build returns the filter bytes for keys. The final byte records k so
// MayContain works with filters built under a different policy.
func (f *Filter) Build(keys [][]byte) []byte {
	bits := len(keys) * f.bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	out := make([]byte, nBytes+1)
	out[nBytes] = byte(f.k)
	for _, key := range keys {
		h := util.Hash32(key, 0xbc9f1d34)
		delta := h>>17 | h<<15
		for j := 0; j < f.k; j++ {
			pos := h % uint32(bits)
			out[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return out
}

// MayContain reports whether key may be in the set filter was built from.
// False positives are possible; false negatives are not.
func MayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true // degenerate filter: cannot exclude anything
	}
	bits := (len(filter) - 1) * 8
	k := int(filter[len(filter)-1])
	if k > 30 {
		return true // reserved for future encodings
	}
	h := util.Hash32(key, 0xbc9f1d34)
	delta := h>>17 | h<<15
	for j := 0; j < k; j++ {
		pos := h % uint32(bits)
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
