// Package blockcache provides the shared, sharded, byte-charged LRU block
// cache that fronts SSTable data-block reads. One cache is owned by the LSM
// tree and handed to every sstable.Reader, so hot blocks survive reader
// churn across compactions and concurrent lookups spread over independent
// shard locks instead of serializing on one mutex.
//
// Values are the immutable decoded block contents; callers must not mutate
// returned slices. Capacity is charged in bytes (value length plus a fixed
// per-entry overhead), the way LevelDB's block cache charges its LRU.
package blockcache

import (
	"sync"
	"sync/atomic"
)

// Key identifies one block: the owning file's number and the block's offset
// within it. File numbers are never reused by the LSM tree, so a key can
// never alias a block from a deleted file's successor.
type Key struct {
	File   uint64
	Offset uint64
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64 // bytes currently charged
	Entries   int64
}

// HitRatio returns hits/(hits+misses), or 0 before any lookups.
func (s Stats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// entryOverhead approximates the per-entry bookkeeping cost (map slot, list
// node, key) charged against capacity on top of the block bytes.
const entryOverhead = 64

// entry is one resident block on a shard's intrusive LRU list.
type entry struct {
	key        Key
	value      []byte
	prev, next *entry
}

// shard is one independently locked slice of the cache.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	table    map[Key]*entry
	head     entry // sentinel: head.next is MRU, head.prev is LRU
	evicted  int64
}

func (s *shard) init(capacity int64) {
	s.capacity = capacity
	s.table = make(map[Key]*entry)
	s.head.next = &s.head
	s.head.prev = &s.head
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

// Cache is the shared block cache.
type Cache struct {
	shards []shard
	mask   uint64

	hits   atomic.Int64
	misses atomic.Int64
}

// New builds a cache of capacityBytes spread over shardCount shards
// (rounded up to a power of two; 16 matches the default geometry). A
// non-positive capacity returns nil, which every method tolerates — engines
// use that to disable caching.
func New(capacityBytes int64, shardCount int) *Cache {
	if capacityBytes <= 0 {
		return nil
	}
	if shardCount < 1 {
		shardCount = 16
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

// shardFor hashes the key to a shard. Offsets are block-aligned-ish and file
// numbers small, so mix both words before masking.
func (c *Cache) shardFor(k Key) *shard {
	h := k.File*0x9E3779B97F4A7C15 ^ k.Offset*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &c.shards[h&c.mask]
}

// Get returns the cached block for k, marking it most recently used.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.table[k]
	if ok {
		s.unlink(e)
		s.pushFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.value, true
}

// Put inserts (or refreshes) a block, evicting LRU entries until the shard
// fits. Blocks larger than a whole shard are not admitted.
func (c *Cache) Put(k Key, v []byte) {
	if c == nil {
		return
	}
	charge := int64(len(v)) + entryOverhead
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if charge > s.capacity {
		return
	}
	if e, ok := s.table[k]; ok {
		s.used += int64(len(v)) - int64(len(e.value))
		e.value = v
		s.unlink(e)
		s.pushFront(e)
	} else {
		e := &entry{key: k, value: v}
		s.table[k] = e
		s.pushFront(e)
		s.used += charge
	}
	for s.used > s.capacity {
		lru := s.head.prev
		if lru == &s.head {
			break
		}
		s.unlink(lru)
		delete(s.table, lru.key)
		s.used -= int64(len(lru.value)) + entryOverhead
		s.evicted++
	}
}

// EvictFile drops every block belonging to file, releasing its bytes when a
// table is deleted after compaction.
func (c *Cache) EvictFile(file uint64) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.table {
			if k.File == file {
				s.unlink(e)
				delete(s.table, k)
				s.used -= int64(len(e.value)) + entryOverhead
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit/miss counters and current occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.used
		st.Entries += int64(len(s.table))
		st.Evictions += s.evicted
		s.mu.Unlock()
	}
	return st
}
