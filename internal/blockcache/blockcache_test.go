package blockcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if c != New(0, 16) || New(-5, 16) != nil {
		t.Fatal("non-positive capacity must return a nil cache")
	}
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.Put(Key{1, 0}, []byte("x"))
	c.EvictFile(1)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(1<<20, 4)
	k := Key{File: 3, Offset: 4096}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(k, []byte("block-contents"))
	v, ok := c.Get(k)
	if !ok || string(v) != "block-contents" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", st.HitRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is fully observable.
	blk := make([]byte, 100)
	capacity := int64(3 * (len(blk) + entryOverhead))
	c := New(capacity, 1)
	for i := uint64(0); i < 3; i++ {
		c.Put(Key{File: 1, Offset: i}, blk)
	}
	// Touch block 0 so block 1 becomes LRU, then overflow by one.
	c.Get(Key{File: 1, Offset: 0})
	c.Put(Key{File: 1, Offset: 99}, blk)
	if _, ok := c.Get(Key{File: 1, Offset: 1}); ok {
		t.Fatal("LRU block survived eviction")
	}
	for _, off := range []uint64{0, 2, 99} {
		if _, ok := c.Get(Key{File: 1, Offset: off}); !ok {
			t.Fatalf("recently used block %d was evicted", off)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestByteCharging(t *testing.T) {
	c := New(1<<20, 1)
	c.Put(Key{1, 0}, make([]byte, 1000))
	if st := c.Stats(); st.Bytes != 1000+entryOverhead {
		t.Fatalf("charged %d bytes, want %d", st.Bytes, 1000+entryOverhead)
	}
	// Refreshing with a different size must re-charge, not double-charge.
	c.Put(Key{1, 0}, make([]byte, 200))
	if st := c.Stats(); st.Bytes != 200+entryOverhead {
		t.Fatalf("after refresh charged %d bytes, want %d", st.Bytes, 200+entryOverhead)
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	c := New(1024, 1)
	c.Put(Key{1, 0}, make([]byte, 4096))
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("block larger than the shard was admitted")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0", st.Entries)
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1<<20, 4)
	for off := uint64(0); off < 8; off++ {
		c.Put(Key{File: 7, Offset: off * 4096}, make([]byte, 64))
		c.Put(Key{File: 8, Offset: off * 4096}, make([]byte, 64))
	}
	c.EvictFile(7)
	st := c.Stats()
	if st.Entries != 8 {
		t.Fatalf("entries = %d after EvictFile, want 8", st.Entries)
	}
	for off := uint64(0); off < 8; off++ {
		if _, ok := c.Get(Key{File: 7, Offset: off * 4096}); ok {
			t.Fatal("block of evicted file still cached")
		}
		if _, ok := c.Get(Key{File: 8, Offset: off * 4096}); !ok {
			t.Fatal("EvictFile dropped another file's block")
		}
	}
}

func TestShardRounding(t *testing.T) {
	c := New(1<<20, 10) // rounds up to 16 shards
	if len(c.shards) != 16 {
		t.Fatalf("shards = %d, want 16", len(c.shards))
	}
	c = New(1<<20, 0)
	if len(c.shards) != 16 {
		t.Fatalf("default shards = %d, want 16", len(c.shards))
	}
}

// TestConcurrentAccess hammers the cache from many goroutines for the race
// detector; correctness here is "no races, no panics, values intact".
func TestConcurrentAccess(t *testing.T) {
	c := New(64<<10, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{File: uint64(g % 4), Offset: uint64(i % 64)}
				if v, ok := c.Get(k); ok {
					if string(v) != fmt.Sprintf("f%d-o%d", k.File, k.Offset) {
						t.Errorf("corrupt value %q for %+v", v, k)
						return
					}
				} else {
					c.Put(k, []byte(fmt.Sprintf("f%d-o%d", k.File, k.Offset)))
				}
				if i%500 == 0 {
					c.EvictFile(uint64(g % 4))
				}
			}
		}(g)
	}
	wg.Wait()
}
