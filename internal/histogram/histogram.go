// Package histogram records latency distributions the way db_bench does:
// geometric buckets from 1 ns to ~100 s, with average and percentile
// reporting. Benchmarks use virtual nanoseconds, so the same histogram
// serves simulated and wall-clock measurements.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// bucketLimits returns the ascending geometric bucket boundaries.
var bucketLimits = func() []int64 {
	var lim []int64
	v := int64(1)
	for v < int64(1e11) {
		lim = append(lim, v)
		next := v + v/4 // ~1.25x growth
		if next == v {
			next = v + 1
		}
		v = next
	}
	lim = append(lim, math.MaxInt64)
	return lim
}()

// H accumulates observations. Safe for concurrent Record calls.
type H struct {
	mu      sync.Mutex
	counts  []int64
	num     int64
	sum     int64
	min     int64
	max     int64
	started bool
}

// New returns an empty histogram.
func New() *H {
	return &H{counts: make([]int64, len(bucketLimits))}
}

// Record adds one observation of v nanoseconds.
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := sort.Search(len(bucketLimits), func(i int) bool { return bucketLimits[i] > v })
	h.mu.Lock()
	h.counts[idx]++
	h.num++
	h.sum += v
	if !h.started || v < h.min {
		h.min = v
	}
	if !h.started || v > h.max {
		h.max = v
	}
	h.started = true
	h.mu.Unlock()
}

// Merge folds o into h.
func (h *H) Merge(o *H) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.num += o.num
	h.sum += o.sum
	if o.started {
		if !h.started || o.min < h.min {
			h.min = o.min
		}
		if !h.started || o.max > h.max {
			h.max = o.max
		}
		h.started = true
	}
}

// Count returns the number of observations.
func (h *H) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.num
}

// Mean returns the average observation, or 0 when empty.
func (h *H) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.num == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.num)
}

// Percentile returns the approximate p-th percentile (0 < p <= 100) using
// linear interpolation within the containing bucket.
func (h *H) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.num == 0 {
		return 0
	}
	threshold := float64(h.num) * p / 100
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) >= threshold {
			lo := int64(0)
			if i > 0 {
				lo = bucketLimits[i-1]
			}
			hi := bucketLimits[i]
			if hi == math.MaxInt64 {
				hi = h.max
			}
			within := threshold - float64(cum)
			frac := 0.0
			if c > 0 {
				frac = within / float64(c)
			}
			v := float64(lo) + frac*float64(hi-lo)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			if v < float64(h.min) {
				v = float64(h.min)
			}
			return v
		}
		cum += c
	}
	return float64(h.max)
}

// Min returns the smallest observation, or 0 when empty.
func (h *H) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *H) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Summary is a JSON-marshalable digest of the distribution.
type Summary struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MinNs  int64   `json:"min_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Summary digests the histogram for machine-readable reports.
func (h *H) Summary() Summary {
	return Summary{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		P50Ns:  h.Percentile(50),
		P90Ns:  h.Percentile(90),
		P99Ns:  h.Percentile(99),
		P999Ns: h.Percentile(99.9),
		MinNs:  h.Min(),
		MaxNs:  h.Max(),
	}
}

// String renders a db_bench-style summary line.
func (h *H) String() string {
	return fmt.Sprintf("count=%d mean=%.1fns p50=%.0fns p99=%.0fns max=%dns",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.maxLocked())
}

func (h *H) maxLocked() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}
