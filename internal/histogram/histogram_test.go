package histogram

import (
	"strings"
	"sync"
	"testing"
)

func TestBasicStats(t *testing.T) {
	h := New()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 100)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m < 5000 || m > 5200 {
		t.Fatalf("Mean = %v", m)
	}
	p50 := h.Percentile(50)
	if p50 < 3000 || p50 > 7000 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram stats should be zero")
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
	if h.Percentile(100) != 0 {
		t.Fatalf("clamped value wrong: %v", h.Percentile(100))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if m := a.Mean(); m != 300 {
		t.Fatalf("merged mean = %v", m)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestString(t *testing.T) {
	h := New()
	h.Record(1000)
	s := h.String()
	if !strings.Contains(s, "count=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestPercentileMonotone(t *testing.T) {
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(int64(i%977) * 37)
	}
	prev := 0.0
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%.1f=%v < %v", p, v, prev)
		}
		prev = v
	}
}
