package histogram

import (
	"strings"
	"sync"
	"testing"
)

func TestBasicStats(t *testing.T) {
	h := New()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 100)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m < 5000 || m > 5200 {
		t.Fatalf("Mean = %v", m)
	}
	p50 := h.Percentile(50)
	if p50 < 3000 || p50 > 7000 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram stats should be zero")
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
	if h.Percentile(100) != 0 {
		t.Fatalf("clamped value wrong: %v", h.Percentile(100))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if m := a.Mean(); m != 300 {
		t.Fatalf("merged mean = %v", m)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestString(t *testing.T) {
	h := New()
	h.Record(1000)
	s := h.String()
	if !strings.Contains(s, "count=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSingleSample(t *testing.T) {
	h := New()
	h.Record(12345)
	for _, p := range []float64{1, 50, 99, 100} {
		if v := h.Percentile(p); v != 12345 {
			t.Fatalf("p%v of single sample = %v, want 12345", p, v)
		}
	}
	s := h.Summary()
	if s.Count != 1 || s.MinNs != 12345 || s.MaxNs != 12345 || s.MeanNs != 12345 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestMaxBucketOverflow(t *testing.T) {
	// Values beyond the last finite bucket limit (~100 s) land in the
	// MaxInt64 catch-all; percentiles must interpolate against the observed
	// max rather than the sentinel limit.
	h := New()
	huge := int64(5e11)
	h.Record(huge)
	h.Record(huge * 2)
	if got := h.Percentile(100); got != float64(huge*2) {
		t.Fatalf("p100 = %v, want %v", got, float64(huge*2))
	}
	if got := h.Percentile(50); got > float64(huge*2) || got < float64(huge) {
		t.Fatalf("p50 = %v outside observed range [%d, %d]", got, huge, huge*2)
	}
	if h.Max() != huge*2 || h.Min() != huge {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestEmptySummary(t *testing.T) {
	s := New().Summary()
	if s.Count != 0 || s.MeanNs != 0 || s.P50Ns != 0 || s.P99Ns != 0 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	// Writers hammer Record while readers take percentiles and summaries;
	// run under -race this pins the locking discipline.
	h := New()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 20000; i++ {
				h.Record(int64(w*100 + i%997))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Percentile(99)
					_ = h.Summary()
					_ = h.Mean()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestPercentileMonotone(t *testing.T) {
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(int64(i%977) * 37)
	}
	prev := 0.0
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%.1f=%v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestMergeMatchesSingleStream(t *testing.T) {
	// Sharded collection then Merge must be statistically indistinguishable
	// from recording the same stream into one histogram: identical counts land
	// in identical buckets, so every percentile matches exactly.
	single := New()
	shards := []*H{New(), New(), New(), New()}
	v := int64(1)
	for i := 0; i < 10000; i++ {
		v = (v*6364136223846793005 + 1442695040888963407) % 5_000_000
		if v < 0 {
			v = -v
		}
		single.Record(v)
		shards[i%len(shards)].Record(v)
	}
	merged := New()
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != single.Count() || merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merged envelope drifted: count %d/%d min %d/%d max %d/%d",
			merged.Count(), single.Count(), merged.Min(), single.Min(), merged.Max(), single.Max())
	}
	if merged.Mean() != single.Mean() {
		t.Fatalf("merged mean %f != single %f", merged.Mean(), single.Mean())
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 99.99, 100} {
		if m, s := merged.Percentile(p), single.Percentile(p); m != s {
			t.Fatalf("p%v: merged %f != single %f", p, m, s)
		}
	}
	ms, ss := merged.Summary(), single.Summary()
	if ms != ss {
		t.Fatalf("summaries differ: %+v vs %+v", ms, ss)
	}
}

func TestSummaryP999(t *testing.T) {
	h := New()
	// 9980 fast ops and 20 slow outliers: p99 stays low, p99.9 must reach
	// into the outlier tail.
	for i := 0; i < 9980; i++ {
		h.Record(100)
	}
	for i := 0; i < 20; i++ {
		h.Record(1_000_000)
	}
	s := h.Summary()
	if s.P999Ns < s.P99Ns {
		t.Fatalf("p99.9 %f below p99 %f", s.P999Ns, s.P99Ns)
	}
	if s.P99Ns >= 1000 {
		t.Fatalf("p99 %f should not see the 0.1%% tail", s.P99Ns)
	}
	if s.P999Ns < 100_000 {
		t.Fatalf("p99.9 %f missed the outlier tail", s.P999Ns)
	}
}
