// Package memfilter provides DRAM-resident negative filters for the memory
// component: a lock-free bloom filter plus min/max user-key fences per
// sub-MemTable slot and per flushed sub-ImmMemTable. The point-lookup path
// probes the filter before touching a table's sub-skiplist, so a Get fans
// out only to tables that may actually hold the key — the standard
// DRAM-filter-over-PM-data cure for probe fan-out.
//
// Writers call Add before publishing the entry (before the sub-MemTable's
// commit CAS), so any committed entry is always covered by the filter and a
// negative probe is sound: it can skip both the sub-skiplist search and the
// trigger-1 lazy index sync for that table. Filters are volatile by design;
// crash recovery rebuilds them from the persistent data regions before the
// engine serves reads.
package memfilter

import (
	"sync/atomic"

	"cachekv/internal/util"
)

// probes is the number of bloom probes per key. With the default sizing
// (~10 bits/key) four probes keep the false-positive rate near 1-2% while
// costing a handful of cache lines per query.
const probes = 4

// Filter is a concurrent bloom filter with user-key fences. Add and
// MayContain may be called from any number of goroutines without external
// locking: bits are set with atomic OR and the fences converge via CAS.
type Filter struct {
	words []atomic.Uint64
	mask  uint32 // bit-count - 1 (bit count is a power of two)

	min atomic.Pointer[[]byte]
	max atomic.Pointer[[]byte]

	count atomic.Uint64 // keys added (approximate under overwrites)
}

// New sizes a filter for expectedKeys at bitsPerKey bits each, rounded up to
// a power of two (minimum 512 bits so tiny tables still reject reliably).
func New(expectedKeys int, bitsPerKey int) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	bits := uint64(expectedKeys) * uint64(bitsPerKey)
	if bits < 512 {
		bits = 512
	}
	n := uint64(512)
	for n < bits {
		n <<= 1
	}
	return &Filter{words: make([]atomic.Uint64, n/64), mask: uint32(n - 1)}
}

// hash2 derives the double-hashing pair from one 32-bit hash, the LevelDB
// bloom construction.
func hash2(key []byte) (h, delta uint32) {
	h = util.Hash32(key, 0xa1b2c3d4)
	return h, h>>17 | h<<15
}

// Add records key. It must happen before the entry becomes visible to
// readers (the caller's commit point) for negative probes to be sound.
func (f *Filter) Add(key []byte) {
	h, delta := hash2(key)
	for i := 0; i < probes; i++ {
		pos := h & f.mask
		f.words[pos/64].Or(1 << (pos % 64))
		h += delta
	}
	f.count.Add(1)
	f.fenceIn(key)
}

// fenceIn widens the min/max user-key fences to cover key.
func (f *Filter) fenceIn(key []byte) {
	for {
		cur := f.min.Load()
		if cur != nil && string(*cur) <= string(key) {
			break
		}
		cp := append([]byte(nil), key...)
		if f.min.CompareAndSwap(cur, &cp) {
			break
		}
	}
	for {
		cur := f.max.Load()
		if cur != nil && string(*cur) >= string(key) {
			break
		}
		cp := append([]byte(nil), key...)
		if f.max.CompareAndSwap(cur, &cp) {
			break
		}
	}
}

// MayContain reports whether key may have been added. False positives are
// possible; false negatives are not (given the Add-before-commit protocol).
func (f *Filter) MayContain(key []byte) bool {
	min := f.min.Load()
	if min == nil {
		return false // nothing added yet
	}
	if string(key) < string(*min) {
		return false
	}
	if max := f.max.Load(); max != nil && string(key) > string(*max) {
		return false
	}
	h, delta := hash2(key)
	for i := 0; i < probes; i++ {
		pos := h & f.mask
		if f.words[pos/64].Load()&(1<<(pos%64)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Count returns the number of Add calls (an upper bound on distinct keys).
func (f *Filter) Count() uint64 { return f.count.Load() }

// SizeBytes returns the DRAM footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.words) * 8 }
