package memfilter

import (
	"fmt"
	"sync"
	"testing"
)

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(100, 10)
	for i := 0; i < 100; i++ {
		if f.MayContain([]byte(fmt.Sprintf("key%03d", i))) {
			t.Fatalf("empty filter claimed to contain key%03d", i)
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	const n = 5000
	f := New(n, 10)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("user%06d", i*7)))
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%06d", i*7))
		if !f.MayContain(k) {
			t.Fatalf("false negative for %s", k)
		}
	}
	if f.Count() != n {
		t.Fatalf("Count = %d, want %d", f.Count(), n)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 5000
	f := New(n, 10)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("in%06d", i)))
	}
	fp := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		// Keys lexically inside the fences but never added.
		if f.MayContain([]byte(fmt.Sprintf("in%06dx", i))) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f exceeds 5%% at 10 bits/key", rate)
	}
}

func TestKeyFences(t *testing.T) {
	f := New(16, 10)
	f.Add([]byte("mmm"))
	f.Add([]byte("qqq"))
	if f.MayContain([]byte("aaa")) {
		t.Fatal("key below the min fence not rejected")
	}
	if f.MayContain([]byte("zzz")) {
		t.Fatal("key above the max fence not rejected")
	}
	if !f.MayContain([]byte("mmm")) || !f.MayContain([]byte("qqq")) {
		t.Fatal("false negative for an added key")
	}
}

func TestMinimumSizing(t *testing.T) {
	f := New(1, 1)
	if f.SizeBytes() < 512/8 {
		t.Fatalf("filter smaller than the 512-bit floor: %d bytes", f.SizeBytes())
	}
	f.Add([]byte("only"))
	if !f.MayContain([]byte("only")) {
		t.Fatal("false negative on a tiny filter")
	}
}

// TestConcurrentAddProbe exercises the lock-free paths under the race
// detector: concurrent writers must never cause a false negative for a key
// that was fully added before the probe.
func TestConcurrentAddProbe(t *testing.T) {
	const writers = 8
	const perWriter = 2000
	f := New(writers*perWriter, 10)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				f.Add(k)
				if !f.MayContain(k) {
					t.Errorf("false negative for %s immediately after Add", k)
					return
				}
			}
		}(w)
	}
	// Concurrent readers on foreign keys: any answer is fine, but no panics
	// or races.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.MayContain([]byte(fmt.Sprintf("probe%d-%06d", r, i)))
			}
		}(r)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := []byte(fmt.Sprintf("w%d-%06d", w, i))
			if !f.MayContain(k) {
				t.Fatalf("false negative for %s after all writers finished", k)
			}
		}
	}
}
