package bench

import (
	"bytes"
	"strings"
	"testing"

	"cachekv/internal/obs"
)

// runObsYCSBC runs a small YCSB-C and returns the result plus the runner and
// trace (nil unless withObs). Single worker thread: with one foreground
// thread the virtual schedule is fully deterministic (multi-thread runs
// resolve lock contention in goroutine-arrival order, which varies run to
// run), so two calls with the same arguments replay identically and the
// zero-overhead comparison below can demand exact equality.
func runObsYCSBC(t *testing.T, withObs bool) (Result, *Runner, *obs.Trace) {
	return runObsYCSBCSlowOps(t, withObs, 0)
}

// runObsYCSBCSlowOps is runObsYCSBC with slow-op capture armed at a static
// threshold (0 = disarmed) for the measured phase. Requires withObs when
// slowopNs > 0.
func runObsYCSBCSlowOps(t *testing.T, withObs bool, slowopNs int64) (Result, *Runner, *obs.Trace) {
	t.Helper()
	const (
		records   = 2000
		ops       = 4000
		threads   = 1
		valueSize = 64
	)
	cfg := DefaultEngineConfig()
	cfg.DataBytes = uint64(records*2) * uint64(valueSize+40)
	var tr *obs.Trace
	if withObs {
		cfg.Obs = true
		tr = obs.NewTrace(obs.DefaultTraceCap)
		cfg.Trace = tr
	}
	m := cfg.NewMachine()
	th := m.NewThread(0)
	db, err := cfg.Open(CacheKV, m, th)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(m, db)
	if withObs {
		r.Col = obs.NewCollector()
		if slowopNs > 0 {
			r.Col.EnableSlowOps(obs.SlowOpPolicy{StaticNs: slowopNs}, tr)
		}
	} else if slowopNs > 0 {
		t.Fatal("slow-op capture requires withObs")
	}
	// Load and measure as separate phases with a settle between them: the load
	// leaves background work (spill plus its towed compaction) in flight, and
	// letting the measured reads race it would make block-cache and version
	// state — and hence virtual read cost — depend on real-time scheduling.
	col := r.Col
	r.Col = nil
	if _, err := r.Run(YCSBLoad.workload(records, records, threads, valueSize)); err != nil {
		t.Fatal(err)
	}
	if err := r.Settle(th); err != nil {
		t.Fatal(err)
	}
	r.Col = col
	res, err := r.Run(YCSBC.workload(records, ops, threads, valueSize))
	if err != nil {
		t.Fatal(err)
	}
	if withObs {
		// Drain the XPBuffer so per-layer media totals are complete before the
		// report snapshot.
		if err := r.Settle(th); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { db.Close(th) })
	return res, r, tr
}

// TestYCSBCAttributionInvariants is the PR's acceptance check: a YCSB-C run
// with attribution on must produce a report where (1) every invariant Verify
// knows about holds, (2) summed foreground per-layer virtual ns equals the
// threads' busy time within 1%, and (3) summed per-layer media write bytes
// equal the PMem device's counter.
func TestYCSBCAttributionInvariants(t *testing.T) {
	res, r, tr := runObsYCSBC(t, true)
	run := BuildRunReport(res, r, tr, false)

	if bad := run.Verify(); len(bad) != 0 {
		t.Fatalf("report invariants violated: %v", bad)
	}
	if len(run.OpStats) == 0 || len(run.Layers) == 0 {
		t.Fatalf("report missing attribution: %d op stats, %d layers", len(run.OpStats), len(run.Layers))
	}

	// (2) Foreground ops (everything YCSB-C issues is foreground) account for
	// the workers' entire busy time.
	var fgNs int64
	for _, st := range run.OpStats {
		var sum int64
		for _, l := range st.Layers {
			sum += l.Ns
		}
		if d := sum - st.TotalNs; d > st.TotalNs/100 || -d > st.TotalNs/100 {
			t.Fatalf("op %s: layer sum %d vs total %d exceeds 1%%", st.Op, sum, st.TotalNs)
		}
		fgNs += st.TotalNs
	}
	if res.ThreadVNs <= 0 {
		t.Fatalf("ThreadVNs = %d", res.ThreadVNs)
	}
	if d := fgNs - res.ThreadVNs; d > res.ThreadVNs/100 || -d > res.ThreadVNs/100 {
		t.Fatalf("foreground op ns %d vs thread busy ns %d exceeds 1%%", fgNs, res.ThreadVNs)
	}

	// (3) The layer table and the device counters are two views of the same
	// media traffic.
	var layerMedia int64
	for _, l := range run.Layers {
		layerMedia += l.MediaWriteB
	}
	devMedia := r.M.PMem.Counters.MediaWriteB.Load()
	if layerMedia != devMedia {
		t.Fatalf("layer media write bytes %d != device %d", layerMedia, devMedia)
	}
	if devMedia == 0 {
		t.Fatal("no media writes recorded — workload too small to exercise the device")
	}
}

// TestObsZeroVirtualOverhead pins the attribution design's core property: the
// simulation is deterministic and spans only read clocks, so enabling
// observability must not change virtual time at all — the same schedule, the
// same elapsed ns, the same throughput.
func TestObsZeroVirtualOverhead(t *testing.T) {
	on, _, _ := runObsYCSBC(t, true)
	off, _, _ := runObsYCSBC(t, false)
	if on.ElapsedNs != off.ElapsedNs {
		t.Fatalf("obs changed virtual elapsed time: on=%d off=%d", on.ElapsedNs, off.ElapsedNs)
	}
	if on.KopsPerSec != off.KopsPerSec {
		t.Fatalf("obs changed throughput: on=%v off=%v", on.KopsPerSec, off.KopsPerSec)
	}
	if on.Ops != off.Ops {
		t.Fatalf("op counts differ: on=%d off=%d", on.Ops, off.Ops)
	}
}

// TestSlowOpCaptureZeroVirtualOverhead sharpens the zero-overhead property for
// the slow-op path: a 1 ns static threshold forces a capture attempt on every
// measured op, and even then the virtual schedule must be bit-identical to a
// capture-off run — dossier recording reads clocks, it never advances them.
func TestSlowOpCaptureZeroVirtualOverhead(t *testing.T) {
	armed, r, _ := runObsYCSBCSlowOps(t, true, 1)
	plain, _, _ := runObsYCSBC(t, true)
	if armed.ElapsedNs != plain.ElapsedNs {
		t.Fatalf("slow-op capture changed virtual elapsed time: armed=%d plain=%d",
			armed.ElapsedNs, plain.ElapsedNs)
	}
	if armed.KopsPerSec != plain.KopsPerSec {
		t.Fatalf("slow-op capture changed throughput: armed=%v plain=%v",
			armed.KopsPerSec, plain.KopsPerSec)
	}
	if armed.Ops != plain.Ops {
		t.Fatalf("op counts differ: armed=%d plain=%d", armed.Ops, plain.Ops)
	}
	// The check is only meaningful if captures actually fired.
	if len(r.Col.SlowOps()) == 0 {
		t.Fatal("1 ns threshold captured nothing — overhead check is vacuous")
	}
}

// TestSlowOpDossierDeterminism runs the same capture-armed single-thread
// workload twice and demands byte-identical dossier JSONL: sequence numbers,
// timestamps, layer splits, and event windows must all replay exactly.
func TestSlowOpDossierDeterminism(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		_, r, tr := runObsYCSBCSlowOps(t, true, 1)
		if tr.Dropped() != 0 {
			// Ring-wrap drop order follows host-side emission arrival, which is
			// not deterministic; this workload must fit the default ring.
			t.Fatalf("trace ring wrapped (%d dropped) — workload outgrew the ring", tr.Dropped())
		}
		ds := r.Col.SlowOps()
		if len(ds) == 0 {
			t.Fatal("no dossiers captured")
		}
		if bad := obs.VerifySlowOps(ds); len(bad) != 0 {
			t.Fatalf("run %d dossiers invalid: %v", i, bad)
		}
		if err := r.Col.WriteSlowOpsJSONL(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		a := strings.Split(bufs[0].String(), "\n")
		b := strings.Split(bufs[1].String(), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("dossier JSONL diverged at line %d:\n  run0: %s\n  run1: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("dossier JSONL line counts diverged: %d vs %d", len(a), len(b))
	}
}

// TestTraceCapturesLifecycle checks the engine actually feeds the event ring
// during a write-heavy run (flushes must have happened at this data size).
func TestTraceCapturesLifecycle(t *testing.T) {
	_, _, tr := runObsYCSBC(t, true)
	if tr.Seq() == 0 {
		t.Fatal("no lifecycle events emitted")
	}
	types := map[string]bool{}
	for _, ev := range tr.Events() {
		types[ev.Type] = true
	}
	if !types["flush_start"] && !types["memtable_seal"] && !types["flush_end"] {
		t.Fatalf("no flush lifecycle events in trace; saw %v", types)
	}
}
