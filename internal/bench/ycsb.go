package bench

import "fmt"

// YCSBSpec is one YCSB workload's op mix and distribution, as configured in
// the paper's Exp#4.
type YCSBSpec struct {
	Name    string
	Reads   float64
	Updates float64 // updates and inserts both issue puts
	RMW     float64
	Dist    string // "uniform", "zipfian", or "latest"
}

// The six workloads of Figure 13.
var (
	YCSBLoad = YCSBSpec{Name: "Load", Updates: 1.0, Dist: "uniform"}
	YCSBA    = YCSBSpec{Name: "A", Reads: 0.5, Updates: 0.5, Dist: "zipfian"}
	YCSBB    = YCSBSpec{Name: "B", Reads: 0.95, Updates: 0.05, Dist: "zipfian"}
	YCSBC    = YCSBSpec{Name: "C", Reads: 1.0, Dist: "zipfian"}
	YCSBD    = YCSBSpec{Name: "D", Reads: 0.95, Updates: 0.05, Dist: "latest"}
	YCSBF    = YCSBSpec{Name: "F", Reads: 0.5, RMW: 0.5, Dist: "zipfian"}
)

// YCSBAll lists the Figure 13 workloads in order.
var YCSBAll = []YCSBSpec{YCSBLoad, YCSBA, YCSBB, YCSBC, YCSBD, YCSBF}

// workload converts the spec into a runnable phase over n loaded records.
func (s YCSBSpec) workload(records, ops int64, threads, valueSize int) Workload {
	var keys KeyGen
	switch s.Dist {
	case "zipfian":
		keys = NewZipfian(records)
	case "latest":
		keys = NewLatest(records)
	default:
		if s.Name == "Load" {
			keys = LoadKeys{}
		} else {
			keys = UniformKeys{N: records}
		}
	}
	return Workload{
		Name:      "YCSB-" + s.Name,
		Keys:      keys,
		ValueSize: valueSize,
		Ops:       ops,
		Threads:   threads,
		Mix:       Mix{PutFrac: s.Updates, RMWFrac: s.RMW},
		Seed:      uint64(len(s.Name)) + 42,
	}
}

// RunYCSB executes the load phase followed by spec (unless spec is the load
// itself) and returns the measured phase's result. When the runner carries an
// attribution collector it is detached during the load, so per-op stats (and
// the thread-busy-time invariant they must satisfy) cover exactly the
// measured phase.
func RunYCSB(r *Runner, spec YCSBSpec, records, ops int64, threads, valueSize int) (Result, error) {
	if spec.Name != "Load" {
		load := YCSBLoad.workload(records, records, threads, valueSize)
		col := r.Col
		r.Col = nil
		_, err := r.Run(load)
		r.Col = col
		if err != nil {
			return Result{}, fmt.Errorf("ycsb load: %w", err)
		}
	}
	return r.Run(spec.workload(records, ops, threads, valueSize))
}
