package bench

import "testing"

// TestCompactBenchSmoke runs a shrunken serial-vs-parallel compaction curve
// end to end: every point must complete, stay Verify-clean, keep L0 bounded,
// and the parallel points must actually run scheduler jobs. It is sized for
// CI, not for the committed BENCH_compact.json numbers (the full config runs
// via cachekv-bench -compact-out).
func TestCompactBenchSmoke(t *testing.T) {
	cfg := DefaultCompactBenchConfig()
	cfg.Ops = 4_000
	cfg.WorkersList = []int{0, 2}
	rep, err := RunCompactBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.WorkersList) {
		t.Fatalf("got %d points, want %d", len(rep.Points), len(cfg.WorkersList))
	}
	bound := 4 * cfg.L0CompactionTrigger
	for _, p := range rep.Points {
		t.Logf("workers=%d kops=%.1f dwellSlow=%d dwellStop=%d maxL0=%d jobs=%d amp=%.2f",
			p.Workers, p.KopsPerSec, p.DwellSlowdownNs, p.DwellStopNs, p.MaxL0Files, p.SchedJobs, p.CompactAmp)
		if len(p.VerifyViolations) != 0 {
			t.Fatalf("workers=%d: report invariants violated: %v", p.Workers, p.VerifyViolations)
		}
		if p.Ops != cfg.Ops {
			t.Fatalf("workers=%d: ran %d ops, want %d", p.Workers, p.Ops, cfg.Ops)
		}
		if p.MaxL0Files > bound {
			t.Fatalf("workers=%d: L0 unbounded: max %d files > %d", p.Workers, p.MaxL0Files, bound)
		}
		if p.Workers > 0 && p.SchedJobs == 0 {
			t.Fatalf("workers=%d: scheduler ran no jobs", p.Workers)
		}
		if p.Workers == 0 && p.SchedJobs != 0 {
			t.Fatalf("serial baseline reported %d scheduler jobs", p.SchedJobs)
		}
	}
}

// TestCompactBenchFull exercises the committed BENCH_compact.json config.
// Skipped under -short: it is the generation path, not a CI gate — stall
// dwell ordering between modes has real-time scheduling noise, so only
// structural properties are asserted here.
func TestCompactBenchFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full compaction bench skipped in -short mode")
	}
	rep, err := RunCompactBench(DefaultCompactBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		t.Logf("workers=%d kops=%.1f elapsed=%d dwellSlow=%d dwellStop=%d delayed=%d stopWait=%d maxL0=%d finalL0=%d jobs=%d amp=%.2f verify=%v",
			p.Workers, p.KopsPerSec, p.ElapsedVNs, p.DwellSlowdownNs, p.DwellStopNs,
			p.DelayedNs, p.StopWaitNs, p.MaxL0Files, p.FinalL0Files, p.SchedJobs, p.CompactAmp, p.VerifyViolations)
		if len(p.VerifyViolations) != 0 {
			t.Fatalf("workers=%d: report invariants violated: %v", p.Workers, p.VerifyViolations)
		}
	}
	t.Logf("stall reduction: %.2f", rep.StallReduction)
	if rep.StallReduction <= 0 {
		t.Fatalf("stall reduction not computed: %v", rep.StallReduction)
	}
}
