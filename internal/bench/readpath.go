package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"cachekv/internal/kvstore"
)

// ReadPathConfig describes one read-path benchmark run: a uniform load phase
// followed by read-only measurement phases (YCSB-C style) under uniform and
// zipfian key distributions — the paper's Exp#4 read-heavy corner, reduced to
// the two distributions that stress the memory-component filters and the
// block cache differently.
type ReadPathConfig struct {
	Records   int64 `json:"records"`
	Ops       int64 `json:"ops"`
	Threads   int   `json:"threads"`
	ValueSize int   `json:"value_size"`
}

// DefaultReadPathConfig mirrors the paper's YCSB parameters (64 B values)
// at experiment scale.
func DefaultReadPathConfig() ReadPathConfig {
	return ReadPathConfig{Records: 200000, Ops: 200000, Threads: 4, ValueSize: 64}
}

// ReadPathResult is one engine x workload measurement in virtual time.
type ReadPathResult struct {
	Engine         string  `json:"engine"`
	Workload       string  `json:"workload"`
	Ops            int64   `json:"ops"`
	Threads        int     `json:"threads"`
	VirtualNsPerOp float64 `json:"virtual_ns_per_op"`
	KopsPerSec     float64 `json:"kops_per_sec"`
	NotFound       int64   `json:"not_found"`

	// Read-acceleration counters (zero for engines without them).
	FilterProbes       int64   `json:"filter_probes,omitempty"`
	FilterNegatives    int64   `json:"filter_negatives,omitempty"`
	BlockCacheHits     int64   `json:"block_cache_hits,omitempty"`
	BlockCacheMisses   int64   `json:"block_cache_misses,omitempty"`
	BlockCacheHitRatio float64 `json:"block_cache_hit_ratio,omitempty"`
}

// ReadPathReport is the machine-readable payload written to
// BENCH_readpath.json: the current tree's numbers, optionally alongside a
// baseline run for before/after comparison.
type ReadPathReport struct {
	Config   ReadPathConfig   `json:"config"`
	Results  []ReadPathResult `json:"results"`
	Baseline *ReadPathReport  `json:"baseline,omitempty"`

	// ImprovementPct maps "engine/workload" to the percentage reduction in
	// virtual ns/op versus the baseline (positive = faster than baseline).
	ImprovementPct map[string]float64 `json:"improvement_pct,omitempty"`
}

// readPathWorkloads are the measured phases: 100% reads, uniform and zipfian.
func readPathWorkloads(cfg ReadPathConfig) []Workload {
	return []Workload{
		{
			Name:      "ycsbc-uniform",
			Keys:      UniformKeys{N: cfg.Records},
			ValueSize: cfg.ValueSize,
			Ops:       cfg.Ops,
			Threads:   cfg.Threads,
			Mix:       ReadOnly,
			Seed:      101,
		},
		{
			Name:      "ycsbc-zipfian",
			Keys:      NewZipfian(cfg.Records),
			ValueSize: cfg.ValueSize,
			Ops:       cfg.Ops,
			Threads:   cfg.Threads,
			Mix:       ReadOnly,
			Seed:      202,
		},
	}
}

// RunReadPath loads cfg.Records records into each engine and measures the
// read-only phases, returning one result per engine per workload.
func RunReadPath(engines []EngineKind, cfg ReadPathConfig) (*ReadPathReport, error) {
	report := &ReadPathReport{Config: cfg}
	for _, kind := range engines {
		ec := DefaultEngineConfig()
		ec.DataBytes = uint64(cfg.Records) * uint64(cfg.ValueSize+40)
		m := ec.NewMachine()
		th := m.NewThread(0)
		db, err := ec.Open(kind, m, th)
		if err != nil {
			return nil, fmt.Errorf("readpath open %s: %w", kind, err)
		}
		r := NewRunner(m, db)
		load := Workload{
			Name: "load", Keys: LoadKeys{}, ValueSize: cfg.ValueSize,
			Ops: cfg.Records, Threads: cfg.Threads, Mix: WriteOnly, Seed: 7,
		}
		if _, err := r.Run(load); err != nil {
			return nil, fmt.Errorf("readpath load %s: %w", kind, err)
		}
		// No settle: YCSB runs its measured phase straight after the load, so
		// the memory component is populated and the read path must fan out
		// across it — the cost the filters exist to remove.
		for _, w := range readPathWorkloads(cfg) {
			before := snapshotReadCounters(db)
			res, err := r.Run(w)
			if err != nil {
				return nil, fmt.Errorf("readpath %s/%s: %w", kind, w.Name, err)
			}
			rr := ReadPathResult{
				Engine:   res.Engine,
				Workload: w.Name,
				Ops:      res.Ops,
				Threads:  res.Threads,
				// Per-op virtual latency: virtual wall time is divided across
				// Threads concurrent sessions.
				VirtualNsPerOp: float64(res.ElapsedNs) * float64(res.Threads) / float64(res.Ops),
				KopsPerSec:     res.KopsPerSec,
				NotFound:       res.NotFound,
			}
			after := snapshotReadCounters(db)
			rr.FilterProbes = after.filterProbes - before.filterProbes
			rr.FilterNegatives = after.filterNegatives - before.filterNegatives
			rr.BlockCacheHits = after.cacheHits - before.cacheHits
			rr.BlockCacheMisses = after.cacheMisses - before.cacheMisses
			if t := rr.BlockCacheHits + rr.BlockCacheMisses; t > 0 {
				rr.BlockCacheHitRatio = float64(rr.BlockCacheHits) / float64(t)
			}
			report.Results = append(report.Results, rr)
		}
		if err := db.Close(th); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// readCounters is a point-in-time snapshot of the read-acceleration counters
// an engine may expose.
type readCounters struct {
	filterProbes, filterNegatives int64
	cacheHits, cacheMisses        int64
}

// Engines advertise read-acceleration counters through these optional
// interfaces; engines without them report zeros.
type filterStatser interface {
	FilterStats() (probes, negatives int64)
}

type blockCacheStatser interface {
	BlockCacheStats() (hits, misses int64)
}

func snapshotReadCounters(db kvstore.DB) readCounters {
	var rc readCounters
	if fs, ok := db.(filterStatser); ok {
		rc.filterProbes, rc.filterNegatives = fs.FilterStats()
	}
	if cs, ok := db.(blockCacheStatser); ok {
		rc.cacheHits, rc.cacheMisses = cs.BlockCacheStats()
	}
	return rc
}

// AttachBaseline embeds a prior report (typically the pre-change seed run)
// and computes the per-series improvement in virtual ns/op.
func (r *ReadPathReport) AttachBaseline(base *ReadPathReport) {
	r.Baseline = base
	r.ImprovementPct = map[string]float64{}
	baseBy := map[string]ReadPathResult{}
	for _, b := range base.Results {
		baseBy[b.Engine+"/"+b.Workload] = b
	}
	for _, cur := range r.Results {
		key := cur.Engine + "/" + cur.Workload
		if b, ok := baseBy[key]; ok && b.VirtualNsPerOp > 0 {
			r.ImprovementPct[key] = (b.VirtualNsPerOp - cur.VirtualNsPerOp) / b.VirtualNsPerOp * 100
		}
	}
}

// WriteJSON writes the report to path, indented for diff-friendly commits.
func (r *ReadPathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReadPathReport reads a previously written report (the baseline).
func LoadReadPathReport(path string) (*ReadPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ReadPathReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
