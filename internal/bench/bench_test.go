package bench

import (
	"strings"
	"testing"

	"cachekv/internal/hw/sim"
)

func TestKeyGenerators(t *testing.T) {
	rng := sim.NewRNG(1)
	var buf []byte
	// Sequential: ascending distinct keys.
	seq := SequentialKeys{}
	a := string(seq.Key(buf, 1, rng))
	b := string(seq.Key(buf, 2, rng))
	if len(a) != 16 || a >= b {
		t.Fatalf("sequential keys wrong: %q, %q", a, b)
	}
	// Load and uniform agree on the record universe.
	load := LoadKeys{}
	uni := UniformKeys{N: 1000}
	loaded := map[string]bool{}
	for i := int64(0); i < 1000; i++ {
		loaded[string(load.Key(buf, i, rng))] = true
	}
	for i := int64(0); i < 2000; i++ {
		k := string(uni.Key(buf, i, rng))
		if !loaded[k] {
			t.Fatalf("uniform drew key %q outside the loaded set", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000)
	rng := sim.NewRNG(7)
	counts := map[string]int{}
	var buf []byte
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[string(z.Key(buf, int64(i), rng))]++
	}
	// Zipf(0.99) over 10k items: the most popular item takes several percent
	// of draws; uniform would give 0.01%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / draws; frac < 0.01 {
		t.Fatalf("zipfian not skewed: hottest item only %.4f", frac)
	}
	if len(counts) < 1000 {
		t.Fatalf("zipfian too degenerate: only %d distinct keys", len(counts))
	}
}

func TestLatestSkewsToFrontier(t *testing.T) {
	l := NewLatest(10000)
	rng := sim.NewRNG(9)
	var buf []byte
	recent := 0
	const draws = 20000
	frontierKeys := map[string]bool{}
	for r := int64(9000); r < 10000+draws; r++ {
		frontierKeys[string(recordKey(nil, r))] = true
	}
	for i := 0; i < draws; i++ {
		k := string(l.Key(buf, int64(i), rng))
		if frontierKeys[k] {
			recent++
		}
	}
	if frac := float64(recent) / draws; frac < 0.5 {
		t.Fatalf("latest distribution not recency-skewed: %.3f", frac)
	}
}

func TestValueGenDeterministic(t *testing.T) {
	a := NewValueGen(64)
	b := NewValueGen(64)
	if string(a.Value(42)) != string(b.Value(42)) {
		t.Fatal("values not deterministic")
	}
	if a.Size() != 64 || len(a.Value(1)) != 64 {
		t.Fatal("value size wrong")
	}
}

func TestRunnerSmoke(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.PMemBytes = 1 << 30
	r, th, err := openRunner(cfg, CacheKV)
	if err != nil {
		t.Fatal(err)
	}
	defer closeRunner(r, th)
	res, err := fillRandom(r, 20000, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.KopsPerSec <= 0 || res.ElapsedNs <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Read phase continues from the write epoch.
	epoch := r.Epoch()
	rres, err := r.Run(Workload{
		Name: "read", Keys: UniformKeys{N: 20000}, ValueSize: 64,
		Ops: 20000, Threads: 2, Mix: ReadOnly, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() <= epoch {
		t.Fatal("epoch did not advance")
	}
	if rres.NotFound == 20000 {
		t.Fatal("read phase found nothing — fill/read key mismatch")
	}
}

func TestAllEnginesRunnable(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.PMemBytes = 1 << 30
	for _, kind := range AllEngines {
		r, th, err := openRunner(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := fillRandom(r, 5000, 2, 64)
		if err != nil {
			t.Fatalf("%s fill: %v", kind, err)
		}
		if res.KopsPerSec <= 0 {
			t.Fatalf("%s: zero throughput", kind)
		}
		rres, err := r.Run(Workload{
			Name: "read", Keys: UniformKeys{N: 5000}, ValueSize: 64,
			Ops: 5000, Threads: 2, Mix: ReadOnly, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s read: %v", kind, err)
		}
		if rres.NotFound == 5000 {
			t.Fatalf("%s: reads found nothing", kind)
		}
		closeRunner(r, th)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"sys", "col"},
	}
	tab.AddRow("x", "1.0")
	out := tab.String()
	for _, want := range []string{"demo", "a note", "sys", "1.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEngineKindString(t *testing.T) {
	if CacheKV.String() != "CacheKV" || SLMDBWoFlush.String() != "SLM-DB-w/o-flush" {
		t.Fatal("engine names wrong")
	}
	if EngineKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestYCSBSpecs(t *testing.T) {
	if YCSBA.Reads != 0.5 || YCSBA.Updates != 0.5 || YCSBA.Dist != "zipfian" {
		t.Fatal("YCSB-A spec wrong")
	}
	if YCSBC.Reads != 1.0 || YCSBD.Dist != "latest" || YCSBF.RMW != 0.5 {
		t.Fatal("YCSB specs wrong")
	}
	w := YCSBB.workload(1000, 500, 2, 64)
	if w.Ops != 500 || w.Threads != 2 || w.Mix.PutFrac != 0.05 {
		t.Fatalf("workload conversion wrong: %+v", w)
	}
}

func TestRunYCSBSmoke(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.PMemBytes = 1 << 30
	r, th, err := openRunner(cfg, CacheKV)
	if err != nil {
		t.Fatal(err)
	}
	defer closeRunner(r, th)
	res, err := RunYCSB(r, YCSBA, 5000, 5000, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.KopsPerSec <= 0 {
		t.Fatal("YCSB-A produced no throughput")
	}
	// Zipfian reads over loaded records should nearly always hit.
	if float64(res.NotFound) > 0.2*5000 {
		t.Fatalf("too many misses: %d", res.NotFound)
	}
}
