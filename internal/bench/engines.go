package bench

import (
	"fmt"

	"cachekv/internal/baseline"
	"cachekv/internal/baseline/novelsm"
	"cachekv/internal/baseline/slmdb"
	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

// EngineKind enumerates every system the paper evaluates.
type EngineKind int

// The nine systems of the evaluation section.
const (
	CacheKV EngineKind = iota
	PCSM
	PCSMLIU
	NoveLSM
	NoveLSMWoFlush
	NoveLSMCache
	SLMDB
	SLMDBWoFlush
	SLMDBCache
)

// AllEngines is every comparison system, in the paper's display order.
var AllEngines = []EngineKind{
	NoveLSM, NoveLSMWoFlush, NoveLSMCache,
	SLMDB, SLMDBWoFlush, SLMDBCache,
	PCSM, PCSMLIU, CacheKV,
}

// BaselineEngines is the six non-CacheKV systems (Figures 4 and 5).
var BaselineEngines = []EngineKind{
	NoveLSM, NoveLSMWoFlush, NoveLSMCache,
	SLMDB, SLMDBWoFlush, SLMDBCache,
}

// String returns the engine's display name.
func (k EngineKind) String() string {
	switch k {
	case CacheKV:
		return "CacheKV"
	case PCSM:
		return "PCSM"
	case PCSMLIU:
		return "PCSM+LIU"
	case NoveLSM:
		return "NoveLSM"
	case NoveLSMWoFlush:
		return "NoveLSM-w/o-flush"
	case NoveLSMCache:
		return "NoveLSM-cache"
	case SLMDB:
		return "SLM-DB"
	case SLMDBWoFlush:
		return "SLM-DB-w/o-flush"
	case SLMDBCache:
		return "SLM-DB-cache"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// EngineConfig carries the knobs experiments vary.
type EngineConfig struct {
	PMemBytes        uint64 // machine PMem capacity
	FSBytes          uint64 // SSTable file-layer capacity
	PoolBytes        uint64 // CacheKV sub-MemTable pool (Exp#7)
	SubMemTableBytes uint64 // CacheKV sub-MemTable size (Exp#6)
	FlushThreads     int    // CacheKV background flush threads (Exp#5)

	// Cores overrides the simulated core count (default: the testbed's 24).
	// Thread-scaling experiments past 24 threads raise it.
	Cores int
	// Shards opens the CacheKV-family engines as a sharded router with this
	// many engine shards (0 or 1: the classic single engine).
	Shards int
	// GroupCommitWindow / GroupCommitMaxOps tune the sharded router's group
	// commit (virtual ns and ops; zero takes the engine defaults).
	GroupCommitWindow int64
	GroupCommitMaxOps int
	// CompactionWorkers > 0 runs the CacheKV-family engines with the
	// background compaction scheduler (per shard when sharded); 0 keeps the
	// legacy inline compaction.
	CompactionWorkers int

	// DataBytes is the expected working-set size of the experiment. It
	// scales the baselines' memtables the way the paper configures them:
	// NoveLSM's PMem MemTable (4 GiB on the testbed) absorbs the entire
	// workload, as does SLM-DB-cache's (4 GiB); vanilla SLM-DB's 64 MiB
	// MemTable holds ~8% of a 10M-op run, kept proportional here.
	DataBytes uint64

	// Obs enables per-layer hardware attribution on the machine (NewMachine
	// calls EnableObs before any thread exists). Attribution never advances
	// virtual clocks, so results are bit-identical either way.
	Obs bool
	// Trace, when non-nil, receives engine lifecycle events.
	Trace *obs.Trace
	// ProfileStepNs > 0 enables the continuous virtual-time sampling profiler
	// with that period (NewMachine calls EnableProfiler before any thread
	// exists). Like Obs, sampling adds zero virtual time.
	ProfileStepNs int64
}

// DefaultEngineConfig sizes the platform for experiment-scale runs.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		PMemBytes: 4 << 30,
		FSBytes:   1 << 30,
	}
}

// NewMachine builds the simulated testbed platform (36 MB eADR LLC, 24
// cores) with the configured PMem capacity.
func (c EngineConfig) NewMachine() *hw.Machine {
	cfg := hw.DefaultConfig()
	if c.PMemBytes > 0 {
		cfg.PMemBytes = c.PMemBytes
	}
	if c.Cores > 0 {
		cfg.Cores = c.Cores
	}
	m := hw.NewMachine(cfg)
	if c.Obs {
		m.EnableObs()
	}
	if c.ProfileStepNs > 0 {
		m.EnableProfiler(c.ProfileStepNs)
	}
	return m
}

// Open builds engine kind on machine m.
func (c EngineConfig) Open(kind EngineKind, m *hw.Machine, th *hw.Thread) (kvstore.DB, error) {
	fsBytes := c.FSBytes
	if fsBytes == 0 {
		fsBytes = 1 << 30
	}
	if pm := c.PMemBytes; pm > 0 && fsBytes > pm/2 {
		fsBytes = pm / 2 // leave room for pool/logs/manifest regions
	}
	data := c.DataBytes
	if data == 0 {
		data = 32 << 20
	}
	switch kind {
	case CacheKV, PCSM, PCSMLIU:
		opts := core.DefaultOptions()
		opts.FSBytes = fsBytes
		// Scale the ImmZone to the workload so scaled-down runs still reach
		// the steady state where spills (and the index thread) set the pace,
		// as the paper's 10M-op runs do.
		if z := data / 3; z < opts.ImmZoneBytes {
			if z < 4<<20 {
				z = 4 << 20
			}
			opts.ImmZoneBytes = z
		}
		if c.PoolBytes > 0 {
			opts.PoolBytes = c.PoolBytes
		}
		if c.SubMemTableBytes > 0 {
			opts.SubMemTableBytes = c.SubMemTableBytes
		}
		if c.FlushThreads > 0 {
			opts.FlushThreads = c.FlushThreads
		}
		opts.CompactionWorkers = c.CompactionWorkers
		switch kind {
		case PCSM:
			opts.LazyIndex = false
			opts.SkiplistCompaction = false
		case PCSMLIU:
			opts.LazyIndex = true
			opts.SkiplistCompaction = false
		}
		opts.Trace = c.Trace
		if c.Shards > 1 {
			return core.OpenSharded(m, core.ShardedOptions{
				Shards:            c.Shards,
				GroupCommitWindow: c.GroupCommitWindow,
				GroupCommitMaxOps: c.GroupCommitMaxOps,
				Base:              opts,
			}, th)
		}
		return core.Open(m, opts, th)
	case NoveLSM, NoveLSMWoFlush, NoveLSMCache:
		opts := novelsm.DefaultOptions()
		opts.FSBytes = fsBytes
		// The paper's 4 GiB PMem MemTable never fills during a run; size it
		// to absorb the workload (rotations still happen via the DRAM table).
		if pm := int64(data + data/2); pm > opts.PMemMemBytes {
			opts.PMemMemBytes = pm
		}
		opts.Variant = map[EngineKind]baseline.Variant{
			NoveLSM:        baseline.Vanilla,
			NoveLSMWoFlush: baseline.WithoutFlush,
			NoveLSMCache:   baseline.CacheSegments,
		}[kind]
		opts.Trace = c.Trace
		return novelsm.Open(m, opts, th)
	case SLMDB, SLMDBWoFlush, SLMDBCache:
		opts := slmdb.DefaultOptions()
		opts.FSBytes = fsBytes
		if kind == SLMDBCache {
			// The paper enlarges SLM-DB-cache's MemTable to 4 GiB for a fair
			// comparison with NoveLSM-cache: it absorbs the whole workload.
			if pm := int64(data + data/2); pm > opts.MemBytes {
				opts.MemBytes = pm
			}
		} else if pm := int64(data / 12); pm > opts.MemBytes {
			// Vanilla SLM-DB's 64 MiB table holds ~8%% of a 10M-op run.
			opts.MemBytes = pm
		}
		opts.Variant = map[EngineKind]baseline.Variant{
			SLMDB:        baseline.Vanilla,
			SLMDBWoFlush: baseline.WithoutFlush,
			SLMDBCache:   baseline.CacheSegments,
		}[kind]
		opts.Trace = c.Trace
		return slmdb.Open(m, opts, th)
	default:
		return nil, fmt.Errorf("bench: unknown engine kind %d", kind)
	}
}
