package bench

// shardcurve.go measures the sharded engine's thread-scaling: for each thread
// count T it runs YCSB-A and YCSB-C against the classic single engine
// (Shards=1, the serialization baseline) and against a T-shard router
// (Shards=T), producing the 1→32 virtual-core scaling curve committed as
// BENCH_shard.json. The workload is sized so the single engine is
// flush-pipeline-bound (writes far exceed the pool), which is exactly the
// serialization sharding removes: N shards run N flush/spill pipelines.

import (
	"encoding/json"
	"fmt"
	"os"

	"cachekv/internal/core"
	"cachekv/internal/obs"
)

// ShardCurveConfig sizes the scaling experiment.
type ShardCurveConfig struct {
	Records   int64 `json:"records"`
	Ops       int64 `json:"ops"`
	ValueSize int   `json:"value_size"`
	// Threads lists the thread counts; each point pairs a 1-shard baseline
	// with a Shards=Threads run.
	Threads []int `json:"threads"`
	// PoolBytes / SubMemTableBytes shrink the memory component so the write
	// volume turns the pool over many times and the flush pipeline sets the
	// single-engine pace (the paper's steady-state write regime).
	PoolBytes        uint64 `json:"pool_bytes"`
	SubMemTableBytes uint64 `json:"sub_memtable_bytes"`
	// Group-commit knobs forwarded to the sharded runs (zero = defaults).
	GroupCommitWindow int64 `json:"group_commit_window,omitempty"`
	GroupCommitMaxOps int   `json:"group_commit_max_ops,omitempty"`
}

// DefaultShardCurveConfig is the committed BENCH_shard.json configuration:
// 4 KiB values over a 4 MiB pool, so the measured phase rewrites the pool
// several times over and the baseline runs at the flush pipeline's pace
// (a 256 KiB slot holds ~60 such entries, so the fixed per-flush cost
// dominates and the single engine's one-pipeline serialization shows).
func DefaultShardCurveConfig() ShardCurveConfig {
	return ShardCurveConfig{
		Records:          6000,
		Ops:              6000,
		ValueSize:        4096,
		Threads:          []int{1, 2, 4, 8, 16, 32},
		PoolBytes:        4 << 20,
		SubMemTableBytes: 256 << 10,
	}
}

// ShardCurvePoint is one (workload, threads, shards) measurement.
type ShardCurvePoint struct {
	Workload       string  `json:"workload"`
	Threads        int     `json:"threads"`
	Shards         int     `json:"shards"`
	KopsPerSec     float64 `json:"kops_per_sec"`
	ElapsedVNs     int64   `json:"elapsed_vns"`
	VirtualNsPerOp float64 `json:"virtual_ns_per_op"`

	// Group-commit effectiveness (zero on the 1-shard baseline).
	GroupCommits   int64   `json:"group_commits,omitempty"`
	GroupedOps     int64   `json:"grouped_ops,omitempty"`
	AvgGroupSize   float64 `json:"avg_group_size,omitempty"`
	GroupWaitP99Ns int64   `json:"group_wait_p99_ns,omitempty"`

	// SpeedupVsBaseline divides this point's throughput by the same
	// workload's 1-shard baseline at the same thread count.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`

	// Report carries the cachekv.obs/v1 payload — per-op [op][layer]
	// attribution matrices and the unified metrics registry.
	Report obs.RunReport `json:"report"`
	// VerifyViolations lists obs invariant failures (must stay empty).
	VerifyViolations []string `json:"verify_violations,omitempty"`
}

// ShardCurveReport is the BENCH_shard.json payload.
type ShardCurveReport struct {
	Schema string            `json:"schema"`
	Config ShardCurveConfig  `json:"config"`
	Points []ShardCurvePoint `json:"points"`
	// YCSBASpeedupAt8 is the acceptance headline: sharded YCSB-A throughput
	// at 8 shards / 8 threads over the 1-shard baseline at 8 threads.
	YCSBASpeedupAt8 float64 `json:"ycsb_a_speedup_at_8_shards"`
}

// runShardPoint executes one (spec, threads, shards) cell on a fresh machine.
func runShardPoint(cfg ShardCurveConfig, spec YCSBSpec, threads, shards, cores int) (ShardCurvePoint, error) {
	tr := obs.NewTrace(obs.DefaultTraceCap)
	ec := DefaultEngineConfig()
	ec.DataBytes = uint64(cfg.Records) * uint64(cfg.ValueSize+40)
	ec.PoolBytes = cfg.PoolBytes
	ec.SubMemTableBytes = cfg.SubMemTableBytes
	ec.Cores = cores
	ec.Shards = shards
	ec.GroupCommitWindow = cfg.GroupCommitWindow
	ec.GroupCommitMaxOps = cfg.GroupCommitMaxOps
	ec.Obs = true
	ec.Trace = tr

	m := ec.NewMachine()
	th := m.NewThread(0)
	db, err := ec.Open(CacheKV, m, th)
	if err != nil {
		return ShardCurvePoint{}, fmt.Errorf("shardcurve open (shards=%d): %w", shards, err)
	}
	r := NewRunner(m, db)
	r.Col = obs.NewCollector()
	res, err := RunYCSB(r, spec, cfg.Records, cfg.Ops, threads, cfg.ValueSize)
	if err != nil {
		return ShardCurvePoint{}, fmt.Errorf("shardcurve %s t=%d s=%d: %w", spec.Name, threads, shards, err)
	}
	p := ShardCurvePoint{
		Workload:       "YCSB-" + spec.Name,
		Threads:        threads,
		Shards:         shards,
		KopsPerSec:     res.KopsPerSec,
		ElapsedVNs:     res.ElapsedNs,
		VirtualNsPerOp: float64(res.ElapsedNs) * float64(threads) / float64(res.Ops),
	}
	if sh, ok := db.(*core.Sharded); ok {
		groups, ops, _ := sh.GroupCommitStats()
		p.GroupCommits, p.GroupedOps = groups, ops
		if groups > 0 {
			p.AvgGroupSize = float64(ops) / float64(groups)
		}
		_, wait := sh.GroupCommitHists()
		p.GroupWaitP99Ns = int64(wait.Percentile(0.99))
	}
	p.Report = BuildRunReport(res, r, tr, false)
	p.VerifyViolations = p.Report.Verify()
	return p, db.Close(th)
}

// RunShardCurve produces the full scaling curve for YCSB-A and YCSB-C.
func RunShardCurve(cfg ShardCurveConfig) (*ShardCurveReport, error) {
	if len(cfg.Threads) == 0 {
		cfg.Threads = DefaultShardCurveConfig().Threads
	}
	cores := 0
	for _, t := range cfg.Threads {
		if t > cores {
			cores = t
		}
	}
	if cores < 24 {
		cores = 24 // never smaller than the paper's testbed
	}
	rep := &ShardCurveReport{Schema: obs.Schema, Config: cfg}
	for _, spec := range []YCSBSpec{YCSBA, YCSBC} {
		baseline := map[int]float64{} // threads -> 1-shard kops
		for _, t := range cfg.Threads {
			base, err := runShardPoint(cfg, spec, t, 1, cores)
			if err != nil {
				return nil, err
			}
			baseline[t] = base.KopsPerSec
			base.SpeedupVsBaseline = 1
			rep.Points = append(rep.Points, base)

			if t > 1 {
				sh, err := runShardPoint(cfg, spec, t, t, cores)
				if err != nil {
					return nil, err
				}
				if b := baseline[t]; b > 0 {
					sh.SpeedupVsBaseline = sh.KopsPerSec / b
				}
				rep.Points = append(rep.Points, sh)
				if spec.Name == "A" && t == 8 {
					rep.YCSBASpeedupAt8 = sh.SpeedupVsBaseline
				}
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for diff-friendly commits.
func (r *ShardCurveReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
