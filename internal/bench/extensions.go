package bench

import (
	"fmt"

	"cachekv/internal/core"
	"cachekv/internal/hw"
)

// WriteAmp is an extension experiment (not a numbered paper figure): the
// PMem-level write amplification — media bytes written per byte stored — of
// every system under the Figure 4 workload. It is the "write amplification
// ratio" the paper's footnote 3 describes as the complement of the write hit
// ratio, and makes Ob1 visible in bytes rather than percentages.
func WriteAmp(s Scale) (*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:   "Extension - PMem write amplification (random 64B writes, 1 thread)",
		Note:    fmt.Sprintf("%d ops per cell; media bytes written per byte stored (lower is better)", s.Ops),
		Headers: []string{"system", "write-amp", "media-MiB"},
	}
	for _, kind := range AllEngines {
		cfg := DefaultEngineConfig()
		cfg.DataBytes = dataBytes(s.Ops, 64)
		r, th, err := openRunner(cfg, kind)
		if err != nil {
			return nil, err
		}
		if _, err := fillRandom(r, s.Ops/2, 1, 64); err != nil {
			closeRunner(r, th)
			return nil, fmt.Errorf("writeamp warmup %s: %w", kind, err)
		}
		res, err := r.Run(Workload{
			Name: "measure", Keys: UniformKeys{N: s.Ops}, ValueSize: 64,
			Ops: s.Ops / 2, Threads: 1, Mix: WriteOnly, Seed: 17,
		})
		if err != nil {
			closeRunner(r, th)
			return nil, fmt.Errorf("writeamp %s: %w", kind, err)
		}
		t.AddRow(kind.String(),
			fmt.Sprintf("%.2fx", res.HW.WriteAmplification()),
			fmt.Sprintf("%d", res.HW.MediaWriteB>>20))
		closeRunner(r, th)
	}
	return t, nil
}

// Recovery is an extension experiment for Section III-E: virtual recovery
// time of CacheKV after a power failure, as a function of how much data sat
// in the (persistent) sub-MemTable pool and ImmZone at the crash. Recovery
// rebuilds the DRAM sub-skiplists and the global skiplist from the surviving
// bytes.
func Recovery(s Scale) (*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:   "Extension - CacheKV crash-recovery time vs resident data",
		Note:    "virtual milliseconds to reopen after power failure (64B values)",
		Headers: []string{"ops-before-crash", "recovery-ms", "recovered-reads-ok"},
	}
	for _, ops := range []int64{10_000, 50_000, 200_000} {
		cfg := DefaultEngineConfig()
		cfg.DataBytes = dataBytes(ops, 64)
		m := cfg.NewMachine()
		th := m.NewThread(0)
		db, err := cfg.Open(CacheKV, m, th)
		if err != nil {
			return nil, err
		}
		r := NewRunner(m, db)
		if _, err := fillRandom(r, ops, 4, 64); err != nil {
			return nil, fmt.Errorf("recovery fill: %w", err)
		}
		eng := db.(*core.Engine)
		eng.Halt()
		m.Crash()
		_ = db.Close(th)
		m.Recover()

		rth := m.NewThread(0)
		reopened, err := reopenCacheKV(cfg, m, rth)
		if err != nil {
			return nil, fmt.Errorf("recovery reopen: %w", err)
		}
		recoveryMs := float64(rth.Clock.Now()) / 1e6

		// Sample reads to confirm the recovered store serves data.
		ok := 0
		probe := m.NewThread(1)
		var buf []byte
		for i := int64(0); i < 200; i++ {
			key := UniformKeys{N: ops}.Key(buf, i*37, nil)
			if _, err := reopened.Get(probe, key); err == nil {
				ok++
			}
		}
		t.AddRow(fmt.Sprintf("%d", ops), fmt.Sprintf("%.2f", recoveryMs), fmt.Sprintf("%d/200", ok))
		_ = reopened.Close(rth)
	}
	return t, nil
}

// reopenCacheKV opens a CacheKV engine over an existing (crashed) machine.
func reopenCacheKV(cfg EngineConfig, m *hw.Machine, th *hw.Thread) (*core.Engine, error) {
	opts := core.DefaultOptions()
	fsBytes := cfg.FSBytes
	if fsBytes == 0 {
		fsBytes = 1 << 30
	}
	if pm := cfg.PMemBytes; pm > 0 && fsBytes > pm/2 {
		fsBytes = pm / 2
	}
	opts.FSBytes = fsBytes
	if cfg.PoolBytes > 0 {
		opts.PoolBytes = cfg.PoolBytes
	}
	if cfg.SubMemTableBytes > 0 {
		opts.SubMemTableBytes = cfg.SubMemTableBytes
	}
	if cfg.FlushThreads > 0 {
		opts.FlushThreads = cfg.FlushThreads
	}
	if z := cfg.DataBytes / 3; z > 0 && z < opts.ImmZoneBytes {
		if z < 4<<20 {
			z = 4 << 20
		}
		opts.ImmZoneBytes = z
	}
	return core.Open(m, opts, th)
}
