package bench

import (
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
)

// Scale controls how large the experiments run. The paper uses 10 M ops per
// test (5 M for YCSB) on a physical testbed; the defaults here are scaled so
// the whole suite regenerates in minutes, and every experiment accepts the
// full counts via cmd/experiments flags.
type Scale struct {
	Ops     int64 // ops per measured phase (paper: 10,000,000)
	YCSBOps int64 // ops per YCSB phase (paper: 5,000,000)
}

// DefaultScale is the CI-friendly configuration.
func DefaultScale() Scale { return Scale{Ops: 200_000, YCSBOps: 100_000} }

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Ops == 0 {
		s.Ops = d.Ops
	}
	if s.YCSBOps == 0 {
		s.YCSBOps = d.YCSBOps
	}
	return s
}

// dataBytes estimates the working set of ops operations at valueSize.
func dataBytes(ops int64, valueSize int) uint64 {
	return uint64(ops) * uint64(valueSize+40) // key 16B + headers/padding
}

// openRunner builds a fresh machine + engine + runner for one cell.
func openRunner(cfg EngineConfig, kind EngineKind) (*Runner, *hw.Thread, error) {
	m := cfg.NewMachine()
	th := m.NewThread(0)
	db, err := cfg.Open(kind, m, th)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", kind, err)
	}
	return NewRunner(m, db), th, nil
}

// closeRunner shuts the cell's engine down.
func closeRunner(r *Runner, th *hw.Thread) { _ = r.DB.Close(th) }

// fillRandom loads ops uniform-random records of the given value size.
func fillRandom(r *Runner, ops int64, threads, valueSize int) (Result, error) {
	return r.Run(Workload{
		Name:      "fillrandom",
		Keys:      UniformKeys{N: ops},
		ValueSize: valueSize,
		Ops:       ops,
		Threads:   threads,
		Mix:       WriteOnly,
		Seed:      7,
	})
}

// Fig4 reproduces Observation 1: the XPBuffer write hit ratio of the six
// baseline systems under random 1-thread writes, value sizes 32-256 B.
// Removing the flush instructions should collapse the ratio; the -cache
// variants should nearly restore it.
func Fig4(s Scale) (*Table, error) {
	s = s.withDefaults()
	sizes := []int{32, 64, 128, 256}
	t := &Table{
		Title:   "Figure 4 - Ob1: XPBuffer write hit ratio (random writes, 1 thread)",
		Note:    fmt.Sprintf("%d ops per cell; higher is better", s.Ops),
		Headers: append([]string{"system"}, "32B", "64B", "128B", "256B"),
	}
	for _, kind := range BaselineEngines {
		row := []string{kind.String()}
		for _, vs := range sizes {
			cfg := DefaultEngineConfig()
			cfg.DataBytes = dataBytes(s.Ops, vs)
			r, th, err := openRunner(cfg, kind)
			if err != nil {
				return nil, err
			}
			// Warm the cache past capacity with the first half of the ops so
			// the measured window sees steady-state eviction traffic, the
			// regime ipmwatch observes during the paper's 10M-op runs.
			if _, err := fillRandom(r, s.Ops/2, 1, vs); err != nil {
				closeRunner(r, th)
				return nil, fmt.Errorf("fig4 warmup %s/%dB: %w", kind, vs, err)
			}
			res, err := r.Run(Workload{
				Name: "measure", Keys: UniformKeys{N: s.Ops}, ValueSize: vs,
				Ops: s.Ops / 2, Threads: 1, Mix: WriteOnly, Seed: 17,
			})
			if err != nil {
				closeRunner(r, th)
				return nil, fmt.Errorf("fig4 %s/%dB: %w", kind, vs, err)
			}
			row = append(row, fmtRatio(res.WriteHitRatio()))
			closeRunner(r, th)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5 reproduces Observation 2: (a) baseline write throughput versus user
// threads, which degrades under the shared-MemTable lock; (b) the write
// latency breakdown of NoveLSM-cache at 2 and 8 threads, where index update
// and lock dominate.
func Fig5(s Scale) (*Table, *Table, error) {
	s = s.withDefaults()
	threads := []int{1, 2, 4, 8}
	ta := &Table{
		Title:   "Figure 5(a) - Ob2: write throughput vs user threads (Kops/s, 64B values)",
		Note:    fmt.Sprintf("%d ops per cell", s.Ops),
		Headers: []string{"system", "1", "2", "4", "8"},
	}
	var breakdowns [2]hw.Breakdown // NoveLSM-cache at 2 and 8 threads
	for _, kind := range BaselineEngines {
		row := []string{kind.String()}
		for _, th := range threads {
			cfg := DefaultEngineConfig()
			cfg.DataBytes = dataBytes(s.Ops, 64)
			r, tth, err := openRunner(cfg, kind)
			if err != nil {
				return nil, nil, err
			}
			res, err := fillRandom(r, s.Ops, th, 64)
			if err != nil {
				closeRunner(r, tth)
				return nil, nil, fmt.Errorf("fig5 %s/%dT: %w", kind, th, err)
			}
			row = append(row, fmtKops(res.KopsPerSec))
			if kind == NoveLSMCache {
				if th == 2 {
					breakdowns[0] = res.Breakdown
				}
				if th == 8 {
					breakdowns[1] = res.Breakdown
				}
			}
			closeRunner(r, tth)
		}
		ta.AddRow(row...)
	}
	tb := &Table{
		Title:   "Figure 5(b) - Ob2: NoveLSM-cache write latency breakdown",
		Headers: []string{"threads", "index", "lock", "append", "flush", "wal", "others"},
	}
	for i, th := range []int{2, 8} {
		b := breakdowns[i]
		tb.AddRow(
			fmt.Sprintf("%d", th),
			fmtRatio(b.Fraction(hw.PhaseIndex)),
			fmtRatio(b.Fraction(hw.PhaseLock)),
			fmtRatio(b.Fraction(hw.PhaseAppend)),
			fmtRatio(b.Fraction(hw.PhaseFlushInstr)),
			fmtRatio(b.Fraction(hw.PhaseWAL)),
			fmtRatio(b.Fraction(hw.PhaseOther)),
		)
	}
	return ta, tb, nil
}

// Fig10 reproduces Exp#1: sequential and random write throughput across all
// nine systems at value sizes 16-256 B, single thread.
func Fig10(s Scale) (*Table, *Table, error) {
	s = s.withDefaults()
	sizes := []int{16, 64, 128, 256}
	mk := func(title string, keys func() KeyGen) (*Table, error) {
		t := &Table{
			Title:   title,
			Note:    fmt.Sprintf("%d ops per cell, 1 thread (Kops/s)", s.Ops),
			Headers: []string{"system", "16B", "64B", "128B", "256B"},
		}
		for _, kind := range AllEngines {
			row := []string{kind.String()}
			for _, vs := range sizes {
				cfg := DefaultEngineConfig()
				cfg.DataBytes = dataBytes(s.Ops, vs)
				r, th, err := openRunner(cfg, kind)
				if err != nil {
					return nil, err
				}
				res, err := r.Run(Workload{
					Name: "fill", Keys: keys(), ValueSize: vs,
					Ops: s.Ops, Threads: 1, Mix: WriteOnly, Seed: 11,
				})
				if err != nil {
					closeRunner(r, th)
					return nil, fmt.Errorf("%s/%dB: %w", kind, vs, err)
				}
				row = append(row, fmtKops(res.KopsPerSec))
				closeRunner(r, th)
			}
			t.AddRow(row...)
		}
		return t, nil
	}
	seq, err := mk("Figure 10(a) - Exp#1: sequential write throughput", func() KeyGen { return SequentialKeys{} })
	if err != nil {
		return nil, nil, err
	}
	rnd, err := mk("Figure 10(b) - Exp#1: random write throughput", func() KeyGen { return UniformKeys{N: s.Ops} })
	if err != nil {
		return nil, nil, err
	}
	return seq, rnd, nil
}

// Fig11 reproduces Exp#2: sequential and random read throughput after a
// matching fill, single thread.
func Fig11(s Scale) (*Table, *Table, error) {
	s = s.withDefaults()
	sizes := []int{16, 64, 128, 256}
	mk := func(title string, fillKeys, readKeys func() KeyGen) (*Table, error) {
		t := &Table{
			Title:   title,
			Note:    fmt.Sprintf("%d reads per cell after an equal fill, 1 thread (Kops/s)", s.Ops),
			Headers: []string{"system", "16B", "64B", "128B", "256B"},
		}
		for _, kind := range AllEngines {
			row := []string{kind.String()}
			for _, vs := range sizes {
				cfg := DefaultEngineConfig()
				cfg.DataBytes = dataBytes(s.Ops, vs)
				r, th, err := openRunner(cfg, kind)
				if err != nil {
					return nil, err
				}
				if _, err := r.Run(Workload{
					Name: "fill", Keys: fillKeys(), ValueSize: vs,
					Ops: s.Ops, Threads: 1, Mix: WriteOnly, Seed: 11,
				}); err != nil {
					closeRunner(r, th)
					return nil, fmt.Errorf("fill %s/%dB: %w", kind, vs, err)
				}
				res, err := r.Run(Workload{
					Name: "read", Keys: readKeys(), ValueSize: vs,
					Ops: s.Ops, Threads: 1, Mix: ReadOnly, Seed: 13,
				})
				if err != nil {
					closeRunner(r, th)
					return nil, fmt.Errorf("read %s/%dB: %w", kind, vs, err)
				}
				row = append(row, fmtKops(res.KopsPerSec))
				closeRunner(r, th)
			}
			t.AddRow(row...)
		}
		return t, nil
	}
	seq, err := mk("Figure 11(a) - Exp#2: sequential read throughput",
		func() KeyGen { return SequentialKeys{} }, func() KeyGen { return SequentialKeys{} })
	if err != nil {
		return nil, nil, err
	}
	rnd, err := mk("Figure 11(b) - Exp#2: random read throughput",
		func() KeyGen { return UniformKeys{N: s.Ops} }, func() KeyGen { return UniformKeys{N: s.Ops} })
	if err != nil {
		return nil, nil, err
	}
	return seq, rnd, nil
}

// Fig12 reproduces Exp#3: random read and write throughput at 4-24 user
// threads (64 B values).
func Fig12(s Scale) (*Table, *Table, error) {
	s = s.withDefaults()
	threads := []int{4, 8, 16, 24}
	cfg := DefaultEngineConfig()
	cfg.DataBytes = dataBytes(s.Ops, 64)
	systems := []EngineKind{NoveLSM, NoveLSMCache, SLMDB, SLMDBCache, CacheKV}

	reads := &Table{
		Title:   "Figure 12(a) - Exp#3: random read throughput vs user threads (Kops/s)",
		Note:    fmt.Sprintf("%d ops per cell, 64B values", s.Ops),
		Headers: []string{"system", "4", "8", "16", "24"},
	}
	writes := &Table{
		Title:   "Figure 12(b) - Exp#3: random write throughput vs user threads (Kops/s)",
		Note:    fmt.Sprintf("%d ops per cell, 64B values", s.Ops),
		Headers: []string{"system", "4", "8", "16", "24"},
	}
	for _, kind := range systems {
		rrow := []string{kind.String()}
		wrow := []string{kind.String()}
		for _, nt := range threads {
			r, th, err := openRunner(cfg, kind)
			if err != nil {
				return nil, nil, err
			}
			wres, err := fillRandom(r, s.Ops, nt, 64)
			if err != nil {
				closeRunner(r, th)
				return nil, nil, fmt.Errorf("fig12 write %s/%dT: %w", kind, nt, err)
			}
			rres, err := r.Run(Workload{
				Name: "readrandom", Keys: UniformKeys{N: s.Ops}, ValueSize: 64,
				Ops: s.Ops, Threads: nt, Mix: ReadOnly, Seed: 13,
			})
			if err != nil {
				closeRunner(r, th)
				return nil, nil, fmt.Errorf("fig12 read %s/%dT: %w", kind, nt, err)
			}
			wrow = append(wrow, fmtKops(wres.KopsPerSec))
			rrow = append(rrow, fmtKops(rres.KopsPerSec))
			closeRunner(r, th)
		}
		reads.AddRow(rrow...)
		writes.AddRow(wrow...)
	}
	return reads, writes, nil
}

// Fig13 reproduces Exp#4: the six YCSB workloads at a single user thread.
func Fig13(s Scale) (*Table, error) {
	s = s.withDefaults()
	cfg := DefaultEngineConfig()
	cfg.DataBytes = dataBytes(s.YCSBOps*2, 64)
	systems := []EngineKind{NoveLSM, NoveLSMCache, SLMDB, SLMDBCache, CacheKV}
	t := &Table{
		Title:   "Figure 13 - Exp#4: YCSB throughput (Kops/s, 1 thread, 16B keys / 64B values)",
		Note:    fmt.Sprintf("%d records loaded, %d ops per workload", s.YCSBOps, s.YCSBOps),
		Headers: []string{"system", "Load", "A", "B", "C", "D", "F"},
	}
	for _, kind := range systems {
		row := []string{kind.String()}
		for _, spec := range YCSBAll {
			r, th, err := openRunner(cfg, kind)
			if err != nil {
				return nil, err
			}
			res, err := RunYCSB(r, spec, s.YCSBOps, s.YCSBOps, 1, 64)
			if err != nil {
				closeRunner(r, th)
				return nil, fmt.Errorf("fig13 %s/%s: %w", kind, spec.Name, err)
			}
			row = append(row, fmtKops(res.KopsPerSec))
			closeRunner(r, th)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// sanity check that all engines satisfy the DB interface uniformly.
var _ = []kvstore.DB(nil)
