package bench

// compactbench.go measures what moving compaction off the write path buys: a
// sustained YCSB-A run (50/50 update/read over a uniform key space) against a
// deliberately small LSM geometry, once with the legacy inline compaction
// (CompactionWorkers=0, the spill goroutine pays for every cascade) and once
// per configured worker count with the background priority scheduler. Write
// shaping is on (ShapeLegacyWrites), so the writer pays for pressure the way
// a real blocked application thread would: Slowdown paces it with tokens,
// Stop blocks it until compaction drains, and both charge the virtual clock.
// The committed BENCH_compact.json headline is the flow-control stall dwell
// — virtual ns the engine spent in Slowdown/Stop, open segment included —
// which the parallel scheduler must strictly reduce while keeping L0
// bounded, plus the per-level write-amplification breakdown.

import (
	"encoding/json"
	"fmt"
	"os"

	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
)

// CompactBenchConfig sizes the serial-vs-parallel compaction experiment.
type CompactBenchConfig struct {
	Ops       int64 `json:"ops"`
	KeySpace  int64 `json:"key_space"`
	ValueSize int   `json:"value_size"`
	// UpdateFrac is the write share of the mix (YCSB-A = 0.5; the rest are
	// point reads over the same key space).
	UpdateFrac float64 `json:"update_frac"`
	// ShapeWrites arms admission shaping for the blocking writer: Slowdown
	// paces it with tokens, Stop blocks it until compaction drains, and both
	// charge the stall to the virtual clock (and so to stall dwell).
	ShapeWrites bool `json:"shape_writes"`
	// WorkersList holds the CompactionWorkers settings to measure; 0 is the
	// inline-compaction baseline.
	WorkersList []int `json:"workers_list"`

	// Engine memory component, shrunk so the write volume turns the pool
	// over many times and spills run throughout the workload.
	PoolBytes        uint64 `json:"pool_bytes"`
	SubMemTableBytes uint64 `json:"sub_memtable_bytes"`
	ImmZoneBytes     uint64 `json:"imm_zone_bytes"`

	// LSM geometry, shrunk so the run produces real multi-level cascades.
	L0CompactionTrigger int    `json:"l0_compaction_trigger"`
	BaseLevelBytes      int64  `json:"base_level_bytes"`
	LevelMultiplier     int64  `json:"level_multiplier"`
	MaxLevels           int    `json:"max_levels"`
	TableFileSize       uint64 `json:"table_file_size"`

	// Compaction-debt thresholds for the parallel points, sized to the whole
	// level budget rather than the (deliberately tiny) base level the core
	// default derives from: the signal should catch runaway backlog, not
	// penalize the scheduler for the transient debt every spill burst
	// creates. The serial baseline never arms the debt signal.
	DebtSlowdownBytes uint64 `json:"debt_slowdown_bytes"`
	DebtStopBytes     uint64 `json:"debt_stop_bytes"`

	// SlowdownMaxDelayNs caps the Slowdown token refill interval. The bench
	// keeps it low so paced admission (whose cost is the same whichever
	// thread compacts) stays a nudge, and the stall budget concentrates in
	// Stop blocking — the part background draining actually shortens.
	SlowdownMaxDelayNs int64 `json:"slowdown_max_delay_ns"`
}

// DefaultCompactBenchConfig is the committed BENCH_compact.json setup: a
// 24k-op YCSB-A mix (~12 MiB of updates) through a 2 MiB pool and a 2 MiB
// ImmZone into a 512 KiB base level, with overload protection armed.
func DefaultCompactBenchConfig() CompactBenchConfig {
	return CompactBenchConfig{
		Ops:                 24_000,
		KeySpace:            200_000,
		ValueSize:           1024,
		UpdateFrac:          0.5,
		ShapeWrites:         true,
		WorkersList:         []int{0, 2, 4},
		PoolBytes:           2 << 20,
		SubMemTableBytes:    128 << 10,
		ImmZoneBytes:        2 << 20,
		L0CompactionTrigger: 4,
		BaseLevelBytes:      512 << 10,
		LevelMultiplier:     4,
		MaxLevels:           5,
		TableFileSize:       128 << 10,
		DebtSlowdownBytes:   4 << 20,
		DebtStopBytes:       16 << 20,
		SlowdownMaxDelayNs:  16_000,
	}
}

// CompactLevelIO is one level's compaction traffic.
type CompactLevelIO struct {
	Level    int   `json:"level"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// CompactPoint is one measured run.
type CompactPoint struct {
	Workers    int     `json:"workers"`
	Ops        int64   `json:"ops"`
	Updates    int64   `json:"updates"`
	Reads      int64   `json:"reads"`
	ElapsedVNs int64   `json:"elapsed_vns"`
	KopsPerSec float64 `json:"kops_per_sec"`

	// Stall accounting over the measured window: state dwell includes the
	// segment still open when the window closes; DelayedNs is token-pacing
	// wait and StopWaitNs time the writer spent blocked in Stop.
	DwellSlowdownNs int64 `json:"dwell_slowdown_ns"`
	DwellStopNs     int64 `json:"dwell_stop_ns"`
	SlowdownEntries int64 `json:"slowdown_entries"`
	StopEntries     int64 `json:"stop_entries"`
	DelayedNs       int64 `json:"delayed_ns"`
	StopWaitNs      int64 `json:"stop_wait_ns"`

	// MaxL0Files is the largest L0 file count observed at the sample points.
	MaxL0Files int `json:"max_l0_files"`

	// Scheduler activity (zero on the inline baseline).
	SchedJobs   int64 `json:"sched_jobs,omitempty"`
	SchedBusyNs int64 `json:"sched_busy_ns,omitempty"`

	// Write amplification: user bytes in, compaction traffic per level, and
	// the total SST bytes rewritten per user byte (1.0 = flush only).
	UserBytes    int64            `json:"user_bytes"`
	Levels       []CompactLevelIO `json:"levels"`
	CompactAmp   float64          `json:"compact_amp"`
	FinalL0Files int              `json:"final_l0_files"`

	Report           obs.RunReport `json:"report"`
	VerifyViolations []string      `json:"verify_violations,omitempty"`
}

// CompactReport is the BENCH_compact.json payload.
type CompactReport struct {
	Schema string             `json:"schema"`
	Config CompactBenchConfig `json:"config"`
	Points []CompactPoint     `json:"points"`
	// StallReduction divides the baseline's Slowdown+Stop dwell by the best
	// parallel point's (higher is better; must exceed 1).
	StallReduction float64 `json:"stall_reduction"`
}

func runCompactPoint(cfg CompactBenchConfig, workers int) (CompactPoint, error) {
	tr := obs.NewTrace(obs.DefaultTraceCap)
	mc := hw.DefaultConfig()
	mc.PMemBytes = 4 << 30
	m := hw.NewMachine(mc)
	m.EnableObs()
	th := m.NewThread(0)

	opts := core.DefaultOptions()
	opts.PoolBytes = cfg.PoolBytes
	opts.SubMemTableBytes = cfg.SubMemTableBytes
	opts.ImmZoneBytes = cfg.ImmZoneBytes
	opts.FSBytes = 1 << 30
	opts.CompactionWorkers = workers
	opts.ShapeLegacyWrites = cfg.ShapeWrites
	opts.Flow.DebtSlowdown = cfg.DebtSlowdownBytes
	opts.Flow.DebtStop = cfg.DebtStopBytes
	opts.Flow.SlowdownMaxDelay = cfg.SlowdownMaxDelayNs
	opts.Trace = tr
	opts.LSM = lsm.Options{
		L0CompactionTrigger: cfg.L0CompactionTrigger,
		BaseLevelBytes:      cfg.BaseLevelBytes,
		LevelMultiplier:     cfg.LevelMultiplier,
		MaxLevels:           cfg.MaxLevels,
		TableFileSize:       cfg.TableFileSize,
	}
	e, err := core.Open(m, opts, th)
	if err != nil {
		return CompactPoint{}, fmt.Errorf("compactbench open (workers=%d): %w", workers, err)
	}

	r := NewRunner(m, e)
	r.Col = obs.NewCollector()
	rng := sim.NewRNG(42)
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	epoch := th.Clock.Now()
	p := CompactPoint{Workers: workers, Ops: cfg.Ops}
	sample := cfg.Ops / 64
	if sample < 1 {
		sample = 1
	}
	for i := int64(0); i < cfg.Ops; i++ {
		k := []byte(fmt.Sprintf("key%012d", rng.Uint64n(uint64(cfg.KeySpace))))
		if rng.Float64() < cfg.UpdateFrac {
			p.Updates++
			sp := r.Col.StartOp(th, obs.OpPut)
			err := e.Put(th, k, val)
			sp.End()
			if err != nil {
				return p, fmt.Errorf("compactbench put (workers=%d): %w", workers, err)
			}
		} else {
			p.Reads++
			sp := r.Col.StartOp(th, obs.OpGet)
			_, err := e.Get(th, k)
			sp.End()
			if err != nil && err != kvstore.ErrNotFound {
				return p, fmt.Errorf("compactbench get (workers=%d): %w", workers, err)
			}
		}
		if i%sample == 0 {
			if files, _ := e.Tree().L0Pressure(); files > p.MaxL0Files {
				p.MaxL0Files = files
			}
		}
	}
	elapsed := th.Clock.Now() - epoch

	fs := e.FlowStatsAt(th.Clock.Now())
	p.ElapsedVNs = elapsed
	p.KopsPerSec = float64(cfg.Ops) / float64(elapsed) * 1e6
	p.DwellSlowdownNs = fs.DwellSlowdownNs
	p.DwellStopNs = fs.DwellStopNs
	p.SlowdownEntries = fs.SlowdownEntries
	p.StopEntries = fs.StopEntries
	p.DelayedNs = fs.DelayedNs
	p.StopWaitNs = fs.StopWaitNs
	p.UserBytes = p.Updates * int64(cfg.ValueSize+15)

	// Settle the tree outside the measured window, then read the totals.
	if err := e.FlushAll(th); err != nil {
		return p, fmt.Errorf("compactbench flushall (workers=%d): %w", workers, err)
	}
	in, out := e.Tree().CompactionLevelStats()
	var totalOut int64
	for lvl := range in {
		if in[lvl] != 0 || out[lvl] != 0 {
			p.Levels = append(p.Levels, CompactLevelIO{Level: lvl, BytesIn: in[lvl], BytesOut: out[lvl]})
		}
		totalOut += out[lvl]
	}
	p.CompactAmp = 1 + float64(totalOut)/float64(p.UserBytes)
	p.FinalL0Files, _ = e.Tree().L0Pressure()
	if st := e.Tree().SchedulerStats(); st.Workers > 0 {
		p.SchedJobs = st.JobsRun
		p.SchedBusyNs = st.BusyNs
	}

	res := Result{
		Name:       "compact-ycsba",
		Engine:     e.Name(),
		Ops:        cfg.Ops,
		Threads:    1,
		ElapsedNs:  elapsed,
		ThreadVNs:  elapsed,
		KopsPerSec: p.KopsPerSec,
	}
	p.Report = BuildRunReport(res, r, tr, false)
	p.VerifyViolations = p.Report.Verify()
	return p, e.Close(th)
}

// RunCompactBench measures every configured worker count.
func RunCompactBench(cfg CompactBenchConfig) (*CompactReport, error) {
	def := DefaultCompactBenchConfig()
	if cfg.Ops == 0 {
		cfg = def
	}
	if len(cfg.WorkersList) == 0 {
		cfg.WorkersList = def.WorkersList
	}
	rep := &CompactReport{Schema: obs.Schema, Config: cfg}
	var baseDwell, bestDwell int64 = -1, -1
	for _, w := range cfg.WorkersList {
		p, err := runCompactPoint(cfg, w)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, p)
		dwell := p.DwellSlowdownNs + p.DwellStopNs
		if w == 0 {
			baseDwell = dwell
		} else if bestDwell < 0 || dwell < bestDwell {
			bestDwell = dwell
		}
	}
	if baseDwell > 0 && bestDwell >= 0 {
		if bestDwell == 0 {
			bestDwell = 1
		}
		rep.StallReduction = float64(baseDwell) / float64(bestDwell)
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for diff-friendly commits.
func (r *CompactReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
