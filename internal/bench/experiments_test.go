package bench

import "testing"

// TestExperimentsTinyScale exercises every figure function end-to-end at a
// minimal scale; this is a harness smoke test, not a reproduction run.
func TestExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness smoke test is slow")
	}
	tiny := Scale{Ops: 4000, YCSBOps: 3000}
	if tab, err := Fig4(tiny); err != nil || len(tab.Rows) != 6 {
		t.Fatalf("Fig4: %v rows=%d", err, len(tab.Rows))
	}
	a, b, err := Fig5(tiny)
	if err != nil || len(a.Rows) != 6 || len(b.Rows) != 2 {
		t.Fatalf("Fig5: %v", err)
	}
	if _, rnd, err := Fig10(tiny); err != nil || len(rnd.Rows) != 9 {
		t.Fatalf("Fig10: %v", err)
	}
	if _, rnd, err := Fig11(tiny); err != nil || len(rnd.Rows) != 9 {
		t.Fatalf("Fig11: %v", err)
	}
	if r, w, err := Fig12(tiny); err != nil || len(r.Rows) != 5 || len(w.Rows) != 5 {
		t.Fatalf("Fig12: %v", err)
	}
	if tab, err := Fig13(tiny); err != nil || len(tab.Rows) != 5 {
		t.Fatalf("Fig13: %v", err)
	}
	if tab, err := Fig14(tiny); err != nil || len(tab.Rows) != 3 {
		t.Fatalf("Fig14: %v", err)
	}
	// Fig15/Fig16 enforce large minimum op counts by design; they are
	// covered by bench_test.go's figure benches and cmd/experiments.
}

// TestExtensionsTinyScale smoke-tests the two extension experiments.
func TestExtensionsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("extension harness smoke test is slow")
	}
	tiny := Scale{Ops: 6000, YCSBOps: 3000}
	if tab, err := WriteAmp(tiny); err != nil || len(tab.Rows) != 9 {
		t.Fatalf("WriteAmp: %v", err)
	}
	tab, err := Recovery(Scale{Ops: 6000})
	if err != nil || len(tab.Rows) != 3 {
		t.Fatalf("Recovery: %v", err)
	}
	for _, row := range tab.Rows {
		if row[2] != "200/200" {
			t.Fatalf("recovery lost data: %v", row)
		}
	}
}
