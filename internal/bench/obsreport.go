package bench

import (
	"cachekv/internal/hw"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

// BuildRegistry assembles the canonical metrics registry for a bench run:
// platform hardware counters, whatever surfaces the engine exposes, and the
// trace's emission counters.
func BuildRegistry(m *hw.Machine, db kvstore.DB, tr *obs.Trace) *obs.Registry {
	r := obs.NewRegistry()
	obs.RegisterMachine(r, m)
	obs.RegisterKV(r, db)
	obs.RegisterTrace(r, tr)
	return r
}

// BuildRunReport digests one phase's Result plus the runner's obs state into
// the shared report schema. Layer stats come from the machine tally (empty
// when the machine was built without Obs); events are included only when
// includeEvents is set, since a long run's retained tail is rarely wanted in
// every report.
func BuildRunReport(res Result, r *Runner, tr *obs.Trace, includeEvents bool) obs.RunReport {
	run := obs.RunReport{
		Engine:     res.Engine,
		Workload:   res.Name,
		Ops:        res.Ops,
		Threads:    res.Threads,
		ElapsedVNs: res.ElapsedNs,
		ThreadVNs:  res.ThreadVNs,
		KopsPerSec: res.KopsPerSec,
		OpStats:    r.Col.OpStats(),
	}
	if t := r.M.ObsTally(); t != nil {
		run.Layers = obs.LayersFromTally(t.Snapshot())
	}
	run.Metrics = BuildRegistry(r.M, r.DB, tr).Gather()
	if includeEvents && tr != nil {
		run.Events = tr.Events()
	}
	run.SlowOps = r.Col.SlowOps()
	run.SlowOpsDropped = r.Col.SlowOpsDropped()
	return run
}
