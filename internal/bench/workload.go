// Package bench is the evaluation harness: db_bench-style workload drivers,
// a YCSB core, a multi-threaded runner measuring virtual-time throughput and
// latency breakdowns, an engine factory covering every system the paper
// compares, and one experiment function per figure of the evaluation
// section. cmd/experiments and the root bench_test.go are thin wrappers over
// this package.
package bench

import (
	"fmt"
	"math"

	"cachekv/internal/hw/sim"
	"cachekv/internal/util"
)

// KeyGen produces the i-th key of a workload. Implementations are stateless
// with respect to i, so concurrent threads can partition the op space.
type KeyGen interface {
	// Key writes key number i into dst (reusing its storage) and returns it.
	Key(dst []byte, i int64, rng *sim.RNG) []byte
	// Name identifies the distribution in reports.
	Name() string
}

// formatKey renders db_bench's fixed-width 16-byte numeric key.
func formatKey(dst []byte, n uint64) []byte {
	dst = dst[:0]
	return append(dst, fmt.Sprintf("%016d", n%10000000000000000)...)
}

// recordKey maps a record rank to its key: a 64-bit bijective scramble so
// ranks spread across the key space, shared by every distribution so load
// and access phases agree on which keys exist.
func recordKey(dst []byte, rank int64) []byte {
	return formatKey(dst, util.Mix64(uint64(rank)))
}

// LoadKeys inserts record 0,1,2,... in scrambled-key order (the YCSB load
// phase: each record exactly once).
type LoadKeys struct{}

// Key implements KeyGen.
func (LoadKeys) Key(dst []byte, i int64, _ *sim.RNG) []byte { return recordKey(dst, i) }

// Name implements KeyGen.
func (LoadKeys) Name() string { return "load" }

// SequentialKeys generates keys 0,1,2,... (db_bench fillseq/readseq).
type SequentialKeys struct{}

// Key implements KeyGen.
func (SequentialKeys) Key(dst []byte, i int64, _ *sim.RNG) []byte {
	return formatKey(dst, uint64(i))
}

// Name implements KeyGen.
func (SequentialKeys) Name() string { return "seq" }

// UniformKeys draws keys uniformly from a space of N keys (db_bench
// fillrandom/readrandom). The i-th draw is deterministic given the seed.
type UniformKeys struct{ N int64 }

// Key implements KeyGen.
func (u UniformKeys) Key(dst []byte, i int64, _ *sim.RNG) []byte {
	// Deterministic per-op hash: the same op index always picks the same
	// rank, so fill-then-read phases agree without sharing RNG state.
	rank := util.Mix64(uint64(i)*0x9E3779B97F4A7C15) % uint64(u.N)
	return recordKey(dst, int64(rank))
}

// Name implements KeyGen.
func (u UniformKeys) Name() string { return "uniform" }

// ZipfianKeys draws from a scrambled zipfian distribution with the YCSB
// constant (theta = 0.99), the standard Gray et al. generator.
type ZipfianKeys struct {
	N     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian builds a zipfian generator over n keys with theta = 0.99.
func NewZipfian(n int64) *ZipfianKeys {
	const theta = 0.99
	z := &ZipfianKeys{N: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 {
	// math.Pow via exp/log would be fine; use the stdlib through a tiny
	// wrapper kept local so the hot path stays obvious.
	return mathPow(x, y)
}

// next draws the zipfian rank for u in [0,1).
func (z *ZipfianKeys) next(u float64) int64 {
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.N) * pow(z.eta*u-z.eta+1, z.alpha))
}

// Key implements KeyGen. Ranks are scrambled with a hash so hot keys spread
// over the key space (YCSB's "scrambled zipfian").
func (z *ZipfianKeys) Key(dst []byte, i int64, rng *sim.RNG) []byte {
	rank := z.next(rng.Float64())
	if rank >= z.N {
		rank = z.N - 1
	}
	item := util.Mix64(uint64(rank)) % uint64(z.N) // scrambled zipfian
	return recordKey(dst, int64(item))
}

// Name implements KeyGen.
func (z *ZipfianKeys) Name() string { return "zipfian" }

// LatestKeys models YCSB's "latest" distribution: reads skew toward the most
// recently inserted keys. The insertion frontier advances as ops execute.
type LatestKeys struct {
	N    int64
	zipf *ZipfianKeys
}

// NewLatest builds a latest-distribution generator over an initial n keys.
func NewLatest(n int64) *LatestKeys {
	return &LatestKeys{N: n, zipf: NewZipfian(n)}
}

// Key implements KeyGen: key = frontier - zipfian_offset.
func (l *LatestKeys) Key(dst []byte, i int64, rng *sim.RNG) []byte {
	frontier := l.N + i
	off := l.zipf.next(rng.Float64())
	k := frontier - off
	if k < 0 {
		k = 0
	}
	return recordKey(dst, k)
}

// Name implements KeyGen.
func (l *LatestKeys) Name() string { return "latest" }

// ValueGen produces deterministic value payloads of a fixed size.
type ValueGen struct {
	size int
	buf  []byte
}

// NewValueGen creates a generator for size-byte values.
func NewValueGen(size int) *ValueGen {
	return &ValueGen{size: size, buf: make([]byte, size)}
}

// Value fills the value for op i. The returned slice is reused across calls.
func (v *ValueGen) Value(i int64) []byte {
	// Cheap deterministic fill; compressibility is irrelevant here (no
	// compression in any engine), so a repeating stamp suffices.
	stamp := byte(i)
	for j := range v.buf {
		v.buf[j] = stamp + byte(j)
	}
	return v.buf
}

// Size returns the value size.
func (v *ValueGen) Size() int { return v.size }

// mathPow is math.Pow, isolated for clarity of the zipfian hot path.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
