package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid printed as aligned text,
// matching the rows/series of the corresponding paper figure.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// fmtKops renders a throughput cell.
func fmtKops(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtRatio renders a 0..1 ratio as a percentage.
func fmtRatio(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
