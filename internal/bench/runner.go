package bench

import (
	"fmt"
	"sync"

	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/hw/pmem"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
)

// OpKind is one operation type in a mixed workload.
type OpKind int

// Operation kinds.
const (
	OpPut OpKind = iota
	OpGet
	OpDelete
	OpRMW         // read-modify-write (YCSB-F)
	OpDeleteRange // range tombstone over a narrow key interval
)

// Mix selects an operation kind per op index. Fractions are cumulative
// probabilities evaluated against a per-op deterministic draw.
type Mix struct {
	PutFrac         float64 // fraction of puts
	RMWFrac         float64 // fraction of read-modify-writes
	DeleteRangeFrac float64 // fraction of range deletes
	// remainder are gets
}

// WriteOnly is a 100% insert mix.
var WriteOnly = Mix{PutFrac: 1.0}

// ReadOnly is a 100% read mix.
var ReadOnly = Mix{}

// Workload fully describes one benchmark phase.
type Workload struct {
	Name      string
	Keys      KeyGen
	ValueSize int
	Ops       int64
	Threads   int
	Mix       Mix
	Seed      uint64
}

// Result captures one phase's outcome.
type Result struct {
	Name       string
	Engine     string
	Ops        int64
	Threads    int
	ElapsedNs  int64 // virtual wall time (max thread end - epoch)
	ThreadVNs  int64 // summed per-thread busy time (Σ end - epoch)
	KopsPerSec float64
	Breakdown  hw.Breakdown
	HW         pmem.CountersSnapshot // hardware counter delta over the phase
	NotFound   int64
	Latency    *histogram.H // per-op virtual latency distribution
}

// WriteHitRatio is the phase's XPBuffer hit ratio (Figure 4's metric).
func (r Result) WriteHitRatio() float64 { return r.HW.WriteHitRatio() }

// Runner executes workload phases against one engine, maintaining the
// virtual-time epoch across phases so background servers' timestamps from a
// fill phase cannot distort a subsequent read phase.
type Runner struct {
	M     *hw.Machine
	DB    kvstore.DB
	Col   *obs.Collector // optional per-op attribution sink (nil = off)
	epoch int64
}

// NewRunner wraps an engine for benchmarking.
func NewRunner(m *hw.Machine, db kvstore.DB) *Runner {
	return &Runner{M: m, DB: db}
}

// Epoch returns the current virtual-time baseline.
func (r *Runner) Epoch() int64 { return r.epoch }

// Run executes one workload phase and returns its result.
func (r *Runner) Run(w Workload) (Result, error) {
	if w.Threads < 1 {
		w.Threads = 1
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	res := Result{Name: w.Name, Engine: r.DB.Name(), Ops: w.Ops, Threads: w.Threads,
		Latency: histogram.New()}
	hwBefore := r.M.PMem.Snapshot()

	perThread := w.Ops / int64(w.Threads)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		maxEnd  int64
	)
	threads := make([]*hw.Thread, w.Threads)
	for t := 0; t < w.Threads; t++ {
		threads[t] = r.M.NewThread(t)
		threads[t].Clock.AdvanceTo(r.epoch)
	}
	for t := 0; t < w.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			th := threads[t]
			rng := sim.NewRNG(w.Seed + uint64(t)*0x9E3779B9)
			vals := NewValueGen(w.ValueSize)
			keyBuf := make([]byte, 0, 32)
			start := perThread * int64(t)
			var notFound int64
			for i := int64(0); i < perThread; i++ {
				op := start + i
				key := w.Keys.Key(keyBuf, op, rng)
				kind := pickOp(w.Mix, rng)
				sp := r.Col.StartOp(th, spanOp(kind))
				// The benchmark client's own per-op work (key generation,
				// dispatch, stats) — identical for every engine.
				th.InPhase(hw.PhaseClient, func() {
					th.Clock.Advance(r.M.Costs.ClientOp)
				})
				opStart := th.Clock.Now()
				var err error
				switch kind {
				case OpPut:
					err = r.DB.Put(th, key, vals.Value(op))
				case OpGet:
					_, err = r.DB.Get(th, key)
					if err == kvstore.ErrNotFound {
						notFound++
						err = nil
					}
				case OpRMW:
					_, err = r.DB.Get(th, key)
					if err == kvstore.ErrNotFound {
						notFound++
						err = nil
					}
					if err == nil {
						err = r.DB.Put(th, key, vals.Value(op))
					}
				case OpDelete:
					err = r.DB.Delete(th, key)
				case OpDeleteRange:
					if rd, ok := r.DB.(rangeDeleter); ok {
						err = rd.DeleteRange(th, key, rangeEnd(key))
					} else {
						// Engines without range tombstones model the same
						// intent as a point delete.
						err = r.DB.Delete(th, key)
					}
				}
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				res.Latency.Record(th.Clock.Now() - opStart)
				sp.End()
			}
			mu.Lock()
			if end := th.Clock.Now(); end > maxEnd {
				maxEnd = end
			}
			res.NotFound += notFound
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	if firstEr != nil {
		return res, firstEr
	}
	for _, th := range threads {
		res.Breakdown.Add(th.PhaseBreakdown())
		res.ThreadVNs += th.Clock.Now() - r.epoch
	}
	res.ElapsedNs = maxEnd - r.epoch
	if res.ElapsedNs > 0 {
		res.KopsPerSec = float64(w.Ops) / float64(res.ElapsedNs) * 1e6
	}
	res.HW = r.M.PMem.Snapshot().Sub(hwBefore)
	r.epoch = maxEnd
	return res, nil
}

// spanOp maps a workload op kind to its attribution op type.
func spanOp(k OpKind) obs.Op {
	switch k {
	case OpPut:
		return obs.OpPut
	case OpDelete:
		return obs.OpDelete
	case OpRMW:
		return obs.OpRMW
	case OpDeleteRange:
		return obs.OpDeleteRange
	default:
		return obs.OpGet
	}
}

// pickOp selects the op kind for one draw.
func pickOp(m Mix, rng *sim.RNG) OpKind {
	u := rng.Float64()
	switch {
	case u < m.PutFrac:
		return OpPut
	case u < m.PutFrac+m.RMWFrac:
		return OpRMW
	case u < m.PutFrac+m.RMWFrac+m.DeleteRangeFrac:
		return OpDeleteRange
	default:
		return OpGet
	}
}

// rangeDeleter is the optional engine surface behind OpDeleteRange (the
// CacheKV family; single engine and sharded router both implement it).
type rangeDeleter interface {
	DeleteRange(th *hw.Thread, start, end []byte) error
}

// ingester is the optional bulk-load surface behind RunIngest.
type ingester interface {
	Ingest(th *hw.Thread, entries []lsm.IngestEntry) error
}

// rangeEnd returns the tightest exclusive upper bound covering key and its
// immediate successors — a narrow range, so a delete-range mix thins the
// keyspace instead of erasing it.
func rangeEnd(key []byte) []byte {
	end := append([]byte(nil), key...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return append(end, 0xff)
}

// RunIngest bulk-loads batches of ascending pre-built entries through the
// engine's atomic Ingest path, one attribution span per batch, and returns a
// phase result. Engines without an Ingest surface get the same data via
// per-key Puts so cross-engine comparisons stay possible (their spans still
// record under the ingest op type: the workload intent is identical).
func (r *Runner) RunIngest(th *hw.Thread, batches, perBatch, valueSize int) (Result, error) {
	if batches < 1 || perBatch < 1 {
		batches, perBatch = 1, 1
	}
	res := Result{Name: "ingest", Engine: r.DB.Name(), Ops: int64(batches * perBatch),
		Threads: 1, Latency: histogram.New()}
	hwBefore := r.M.PMem.Snapshot()
	th.Clock.AdvanceTo(r.epoch)
	phasesBefore := th.PhaseBreakdown()
	vals := NewValueGen(valueSize)
	ing, hasIngest := r.DB.(ingester)
	seq := 0
	for b := 0; b < batches; b++ {
		entries := make([]lsm.IngestEntry, perBatch)
		for i := range entries {
			entries[i] = lsm.IngestEntry{
				Key:   []byte(fmt.Sprintf("zz-ingest%09d", seq)),
				Value: append([]byte(nil), vals.Value(int64(seq))...),
			}
			seq++
		}
		sp := r.Col.StartOp(th, obs.OpIngest)
		opStart := th.Clock.Now()
		var err error
		if hasIngest {
			err = ing.Ingest(th, entries)
		} else {
			for _, e := range entries {
				if err = r.DB.Put(th, e.Key, e.Value); err != nil {
					break
				}
			}
		}
		if err != nil {
			return res, err
		}
		res.Latency.Record(th.Clock.Now() - opStart)
		sp.End()
	}
	res.Breakdown = th.PhaseBreakdown().Sub(phasesBefore)
	res.ThreadVNs = th.Clock.Now() - r.epoch
	res.ElapsedNs = res.ThreadVNs
	if res.ElapsedNs > 0 {
		res.KopsPerSec = float64(res.Ops) / float64(res.ElapsedNs) * 1e6
	}
	res.HW = r.M.PMem.Snapshot().Sub(hwBefore)
	if now := th.Clock.Now(); now > r.epoch {
		r.epoch = now
	}
	return res, nil
}

// Settle flushes the engine and the XPBuffer so hardware counters quiesce
// between phases, advancing the epoch past all background work.
func (r *Runner) Settle(th *hw.Thread) error {
	th.Clock.AdvanceTo(r.epoch)
	if err := r.DB.FlushAll(th); err != nil {
		return err
	}
	th.InPhase(hw.PhaseSettle, func() {
		r.M.PMem.Flush(th.Clock)
	})
	if now := th.Clock.Now(); now > r.epoch {
		r.epoch = now
	}
	return nil
}
