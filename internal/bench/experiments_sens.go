package bench

import (
	"fmt"
	"sort"
)

// medianOf runs fn trials times and returns the per-metric medians; the
// virtual pipeline's interaction with real goroutine scheduling introduces
// run-to-run variance that a median damps.
func medianOf(trials int, fn func() ([]float64, error)) ([]float64, error) {
	var runs [][]float64
	for i := 0; i < trials; i++ {
		v, err := fn()
		if err != nil {
			return nil, err
		}
		runs = append(runs, v)
	}
	out := make([]float64, len(runs[0]))
	for m := range out {
		vals := make([]float64, 0, trials)
		for _, r := range runs {
			vals = append(vals, r[m])
		}
		sort.Float64s(vals)
		out[m] = vals[len(vals)/2]
	}
	return out, nil
}

// Fig14 reproduces Exp#5: CacheKV write throughput as background flush
// threads vary from 1 to 6, for several user-thread counts. Throughput should
// climb then saturate once user threads become the bottleneck.
func Fig14(s Scale) (*Table, error) {
	s = s.withDefaults()
	flushThreads := []int{1, 2, 4, 6}
	userThreads := []int{2, 4, 6}
	t := &Table{
		Title:   "Figure 14 - Exp#5: CacheKV write throughput vs background flush threads (Kops/s)",
		Note:    fmt.Sprintf("%d random 64B writes per cell", s.Ops),
		Headers: []string{"user-threads", "1-flush", "2-flush", "4-flush", "6-flush"},
	}
	for _, ut := range userThreads {
		row := []string{fmt.Sprintf("%d", ut)}
		for _, ft := range flushThreads {
			vals, err := medianOf(3, func() ([]float64, error) {
				cfg := DefaultEngineConfig()
				cfg.FlushThreads = ft
				cfg.DataBytes = dataBytes(s.Ops, 64)
				r, th, err := openRunner(cfg, CacheKV)
				if err != nil {
					return nil, err
				}
				defer closeRunner(r, th)
				res, err := fillRandom(r, s.Ops, ut, 64)
				if err != nil {
					return nil, fmt.Errorf("fig14 %dU/%dF: %w", ut, ft, err)
				}
				return []float64{res.KopsPerSec}, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtKops(vals[0]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig15 reproduces Exp#6: CacheKV read and write throughput as the
// sub-MemTable size varies from 0.25 to 2 MiB within a fixed 12 MiB pool
// (12 user threads, 4 flush threads). Reads should improve with larger
// tables (fewer sub-skiplists to search); writes should peak at 1 MiB.
func Fig15(s Scale) (*Table, error) {
	s = s.withDefaults()
	// The experiment is only meaningful when the dataset dwarfs the 12 MiB
	// pool, as the paper's 10M-op runs do.
	if s.Ops < 400_000 {
		s.Ops = 400_000
	}
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	t := &Table{
		Title:   "Figure 15 - Exp#6: CacheKV throughput vs sub-MemTable size (Kops/s)",
		Note:    fmt.Sprintf("12MB pool, 12 user threads, 4 flush threads, %d ops", s.Ops),
		Headers: []string{"size", "readrandom", "fillrandom"},
	}
	for _, sz := range sizes {
		sz := sz
		vals, err := medianOf(3, func() ([]float64, error) {
			cfg := DefaultEngineConfig()
			cfg.PoolBytes = 12 << 20
			cfg.SubMemTableBytes = sz
			cfg.FlushThreads = 4
			cfg.DataBytes = dataBytes(s.Ops, 64)
			r, th, err := openRunner(cfg, CacheKV)
			if err != nil {
				return nil, err
			}
			defer closeRunner(r, th)
			wres, err := fillRandom(r, s.Ops, 12, 64)
			if err != nil {
				return nil, fmt.Errorf("fig15 write %dKB: %w", sz>>10, err)
			}
			rres, err := r.Run(Workload{
				Name: "readrandom", Keys: UniformKeys{N: s.Ops}, ValueSize: 64,
				Ops: s.Ops, Threads: 12, Mix: ReadOnly, Seed: 13,
			})
			if err != nil {
				return nil, fmt.Errorf("fig15 read %dKB: %w", sz>>10, err)
			}
			return []float64{rres.KopsPerSec, wres.KopsPerSec}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.2fMB", float64(sz)/(1<<20)),
			fmtKops(vals[0]),
			fmtKops(vals[1]),
		)
	}
	return t, nil
}

// Fig16 reproduces Exp#7: CacheKV read and write throughput as the
// sub-MemTable pool grows from 3 to 30 MiB with 1 MiB tables. Reads should
// decline (more sub-skiplists to search); writes should rise then flatten
// once the background flush is the bottleneck.
func Fig16(s Scale) (*Table, error) {
	s = s.withDefaults()
	// The dataset must dwarf even the 30 MiB pool for the sweep to measure
	// steady-state behaviour rather than a fits-in-pool burst.
	if s.Ops < 400_000 {
		s.Ops = 400_000
	}
	pools := []uint64{3 << 20, 6 << 20, 12 << 20, 24 << 20, 30 << 20}
	t := &Table{
		Title:   "Figure 16 - Exp#7: CacheKV throughput vs sub-MemTable pool size (Kops/s)",
		Note:    fmt.Sprintf("1MB sub-MemTables, 12 user threads, 4 flush threads, %d ops", s.Ops),
		Headers: []string{"pool", "readrandom", "fillrandom"},
	}
	for _, pb := range pools {
		pb := pb
		vals, err := medianOf(2, func() ([]float64, error) {
			cfg := DefaultEngineConfig()
			cfg.PoolBytes = pb
			cfg.SubMemTableBytes = 1 << 20
			cfg.FlushThreads = 4
			cfg.DataBytes = dataBytes(s.Ops, 64)
			r, th, err := openRunner(cfg, CacheKV)
			if err != nil {
				return nil, err
			}
			defer closeRunner(r, th)
			wres, err := fillRandom(r, s.Ops, 12, 64)
			if err != nil {
				return nil, fmt.Errorf("fig16 write %dMB: %w", pb>>20, err)
			}
			rres, err := r.Run(Workload{
				Name: "readrandom", Keys: UniformKeys{N: s.Ops}, ValueSize: 64,
				Ops: s.Ops, Threads: 12, Mix: ReadOnly, Seed: 13,
			})
			if err != nil {
				return nil, fmt.Errorf("fig16 read %dMB: %w", pb>>20, err)
			}
			return []float64{rres.KopsPerSec, wres.KopsPerSec}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%dMB", pb>>20),
			fmtKops(vals[0]),
			fmtKops(vals[1]),
		)
	}
	return t, nil
}
