package block

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(entries [][2]string) []byte {
	b := NewBuilder()
	for _, e := range entries {
		b.Add([]byte(e[0]), []byte(e[1]))
	}
	return b.Finish()
}

func TestEmptyBuilder(t *testing.T) {
	b := NewBuilder()
	if !b.Empty() {
		t.Fatal("fresh builder not empty")
	}
	contents := b.Finish()
	it, err := NewIter(contents)
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("empty block iterates")
	}
}

func TestRoundTripManyEntries(t *testing.T) {
	var entries [][2]string
	for i := 0; i < 1000; i++ {
		entries = append(entries, [2]string{
			fmt.Sprintf("key%06d", i), fmt.Sprintf("value-%d", i*i),
		})
	}
	it, err := NewIter(buildBlock(entries))
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst()
	for i, e := range entries {
		if !it.Valid() {
			t.Fatalf("iterator died at %d", i)
		}
		if string(it.Key()) != e[0] || string(it.Value()) != e[1] {
			t.Fatalf("at %d: %q=%q", i, it.Key(), it.Value())
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("extra entries")
	}
}

func TestPrefixCompressionActuallyCompresses(t *testing.T) {
	b := NewBuilder()
	var raw int
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("commonprefix/verylongsharedpath/%06d", i)
		b.Add([]byte(k), []byte("v"))
		raw += len(k) + 1
	}
	if got := len(b.Finish()); got >= raw {
		t.Fatalf("no compression: %d >= %d", got, raw)
	}
}

func TestSeek(t *testing.T) {
	var entries [][2]string
	for i := 0; i < 500; i += 5 {
		entries = append(entries, [2]string{fmt.Sprintf("k%04d", i), "v"})
	}
	contents := buildBlock(entries)
	it, _ := NewIter(contents)

	it.Seek([]byte("k0102"), nil)
	if !it.Valid() || string(it.Key()) != "k0105" {
		t.Fatalf("Seek(k0102) -> %q", it.Key())
	}
	it.Seek([]byte("k0105"), nil)
	if !it.Valid() || string(it.Key()) != "k0105" {
		t.Fatal("exact seek failed")
	}
	it.Seek([]byte(""), nil)
	if !it.Valid() || string(it.Key()) != "k0000" {
		t.Fatal("seek to empty key should land on first entry")
	}
	it.Seek([]byte("zzz"), nil)
	if it.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestSeekEveryKey(t *testing.T) {
	// Seek must find each key exactly, across restart boundaries.
	var entries [][2]string
	for i := 0; i < 200; i++ {
		entries = append(entries, [2]string{fmt.Sprintf("key%05d", i*3), fmt.Sprintf("%d", i)})
	}
	contents := buildBlock(entries)
	it, _ := NewIter(contents)
	for _, e := range entries {
		it.Seek([]byte(e[0]), nil)
		if !it.Valid() || string(it.Key()) != e[0] || string(it.Value()) != e[1] {
			t.Fatalf("seek %q found %q=%q", e[0], it.Key(), it.Value())
		}
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder()
	b.Add([]byte("a"), []byte("1"))
	_ = b.Finish()
	b.Reset()
	if !b.Empty() {
		t.Fatal("Reset did not clear")
	}
	b.Add([]byte("b"), []byte("2"))
	it, _ := NewIter(b.Finish())
	it.SeekToFirst()
	if string(it.Key()) != "b" {
		t.Fatalf("after reset got %q", it.Key())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestCorruptBlocks(t *testing.T) {
	if _, err := NewIter(nil); err == nil {
		t.Fatal("nil block accepted")
	}
	if _, err := NewIter([]byte{1, 2}); err == nil {
		t.Fatal("short block accepted")
	}
	// Restart count pointing beyond the buffer.
	bad := make([]byte, 8)
	bad[4] = 0xFF
	if _, err := NewIter(bad); err == nil {
		t.Fatal("bogus restart count accepted")
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	b := NewBuilder()
	s0 := b.EstimatedSize()
	b.Add([]byte("key"), []byte("value"))
	if b.EstimatedSize() <= s0 {
		t.Fatal("EstimatedSize did not grow")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw map[string]string) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := NewBuilder()
		for _, k := range keys {
			b.Add([]byte(k), []byte(raw[k]))
		}
		it, err := NewIter(b.Finish())
		if err != nil {
			return false
		}
		it.SeekToFirst()
		for _, k := range keys {
			if !it.Valid() || string(it.Key()) != k || string(it.Value()) != raw[k] {
				return false
			}
			it.Next()
		}
		if it.Valid() {
			return false
		}
		// Every key findable by Seek.
		for _, k := range keys {
			it.Seek([]byte(k), nil)
			if !it.Valid() || !bytes.Equal(it.Key(), []byte(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
