// Package block implements the SSTable block format: prefix-compressed
// entries with restart points every 16 keys, terminated by the restart array
// and its count, exactly as in LevelDB. Data blocks, index blocks and meta
// blocks all share this encoding.
package block

import (
	"bytes"

	"cachekv/internal/util"
)

const restartInterval = 16

// Builder assembles one block. Keys must be added in ascending order.
type Builder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	entries  int
}

// NewBuilder returns an empty block builder.
func NewBuilder() *Builder {
	return &Builder{restarts: []uint32{0}}
}

// Add appends key/value. Keys must arrive in strictly ascending order; the
// builder prefix-compresses against the previous key within a restart run.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = util.PutUvarint(b.buf, uint64(shared))
	b.buf = util.PutUvarint(b.buf, uint64(len(key)-shared))
	b.buf = util.PutUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// Empty reports whether nothing has been added.
func (b *Builder) Empty() bool { return b.entries == 0 }

// EstimatedSize returns the finished block size so far.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Finish appends the restart array and returns the completed block contents.
// The builder must be Reset before reuse.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = util.PutFixed32(b.buf, r)
	}
	b.buf = util.PutFixed32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Reset clears the builder for a new block.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

// Iter iterates over a finished block's entries.
type Iter struct {
	data     []byte // entry area only
	restarts []uint32
	off      int // offset of current entry within data
	nextOff  int
	key      []byte
	value    []byte
	valid    bool
	err      error
}

// NewIter parses contents (a finished block) and returns an unpositioned
// iterator.
func NewIter(contents []byte) (*Iter, error) {
	if len(contents) < 4 {
		return nil, util.ErrCorrupt
	}
	n := int(util.Fixed32(contents[len(contents)-4:]))
	restartsEnd := len(contents) - 4
	restartsStart := restartsEnd - 4*n
	if n < 1 || restartsStart < 0 {
		return nil, util.ErrCorrupt
	}
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = util.Fixed32(contents[restartsStart+4*i:])
	}
	return &Iter{data: contents[:restartsStart], restarts: restarts}, nil
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid && it.err == nil }

// Err returns any corruption encountered while iterating.
func (it *Iter) Err() error { return it.err }

// Key returns the current full key.
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.value }

// SeekToFirst positions at the first entry.
func (it *Iter) SeekToFirst() {
	it.key = it.key[:0]
	it.nextOff = 0
	it.Next()
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if it.nextOff >= len(it.data) {
		it.valid = false
		return
	}
	it.off = it.nextOff
	if !it.decodeAt(it.nextOff) {
		it.valid = false
		return
	}
	it.valid = true
}

// decodeAt parses the entry at off, updating key/value/nextOff. The key is
// reconstructed using the current it.key prefix, so callers must walk
// entries in order from a restart point.
func (it *Iter) decodeAt(off int) bool {
	p := it.data[off:]
	shared, n1, err := util.Uvarint(p)
	if err != nil {
		it.err = err
		return false
	}
	unshared, n2, err := util.Uvarint(p[n1:])
	if err != nil {
		it.err = err
		return false
	}
	vlen, n3, err := util.Uvarint(p[n1+n2:])
	if err != nil {
		it.err = err
		return false
	}
	h := n1 + n2 + n3
	if uint64(len(p)-h) < unshared+vlen || uint64(len(it.key)) < shared {
		it.err = util.ErrCorrupt
		return false
	}
	it.key = append(it.key[:shared], p[h:h+int(unshared)]...)
	it.value = p[h+int(unshared) : h+int(unshared)+int(vlen)]
	it.nextOff = off + h + int(unshared) + int(vlen)
	return true
}

// Seek positions at the first entry with key >= target (by cmp; nil means
// bytes.Compare). It binary-searches the restart array then scans.
func (it *Iter) Seek(target []byte, cmp func(a, b []byte) int) {
	if cmp == nil {
		cmp = bytes.Compare
	}
	// Find the last restart whose key < target.
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		k, ok := it.keyAtRestart(mid)
		if !ok {
			it.valid = false
			return
		}
		if cmp(k, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.key = it.key[:0]
	it.nextOff = int(it.restarts[lo])
	for {
		it.Next()
		if !it.Valid() {
			return
		}
		if cmp(it.key, target) >= 0 {
			return
		}
	}
}

// keyAtRestart decodes the full key stored at restart index i (restart
// entries always have shared == 0).
func (it *Iter) keyAtRestart(i int) ([]byte, bool) {
	off := int(it.restarts[i])
	p := it.data[off:]
	_, n1, err := util.Uvarint(p) // shared, always 0 at a restart
	if err != nil {
		it.err = err
		return nil, false
	}
	unshared, n2, err := util.Uvarint(p[n1:])
	if err != nil {
		it.err = err
		return nil, false
	}
	_, n3, err := util.Uvarint(p[n1+n2:])
	if err != nil {
		it.err = err
		return nil, false
	}
	h := n1 + n2 + n3
	if uint64(len(p)-h) < unshared {
		it.err = util.ErrCorrupt
		return nil, false
	}
	return p[h : h+int(unshared)], true
}
