// Package util provides low-level encoding, hashing, and key-manipulation
// helpers shared by every storage module in the repository. The formats follow
// the LevelDB wire conventions (little-endian fixed integers, LEB128 varints,
// internal keys carrying a packed sequence/type trailer) so that any module
// can decode any other module's bytes.
package util

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned when a decoder encounters bytes that cannot be a
// valid encoding (truncated varint, bad CRC, impossible length, ...).
var ErrCorrupt = errors.New("util: corrupt encoding")

// PutUvarint appends x to dst as a LEB128 varint and returns the extended
// slice.
func PutUvarint(dst []byte, x uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	return append(dst, buf[:n]...)
}

// Uvarint decodes a varint from src, returning the value and the number of
// bytes consumed. It returns ErrCorrupt when src is truncated or malformed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	return v, n, nil
}

// PutFixed32 appends v to dst in little-endian order.
func PutFixed32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Fixed32 decodes a little-endian uint32 from the first four bytes of src.
func Fixed32(src []byte) uint32 {
	return binary.LittleEndian.Uint32(src)
}

// PutFixed64 appends v to dst in little-endian order.
func PutFixed64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// Fixed64 decodes a little-endian uint64 from the first eight bytes of src.
func Fixed64(src []byte) uint64 {
	return binary.LittleEndian.Uint64(src)
}

// PutLengthPrefixed appends a varint length followed by the bytes themselves.
func PutLengthPrefixed(dst, b []byte) []byte {
	dst = PutUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// LengthPrefixed decodes a length-prefixed byte slice, returning the slice
// (aliasing src) and the total bytes consumed.
func LengthPrefixed(src []byte) ([]byte, int, error) {
	l, n, err := Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(src)-n) < l {
		return nil, 0, ErrCorrupt
	}
	return src[n : n+int(l)], n + int(l), nil
}
