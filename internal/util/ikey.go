package util

import (
	"bytes"
	"fmt"
)

// ValueKind distinguishes live values from tombstones in internal keys. The
// numeric values match LevelDB so that ordering (deletes sort after puts at
// the same sequence) is preserved by the packed trailer comparison.
type ValueKind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete ValueKind = 0
	// KindValue marks a live value.
	KindValue ValueKind = 1
	// KindRangeDel marks a range tombstone: the internal key carries the
	// start user key, the entry's value holds the exclusive end key. The
	// trailer value 2 makes a range tombstone sort *before* a point write at
	// the same sequence (trailers order descending), but coverage is decided
	// by sequence alone: a range tombstone hides versions with a strictly
	// smaller sequence, so an equal-seq point write survives.
	KindRangeDel ValueKind = 2
)

// MaxSequence is the largest representable sequence number (56 bits, as in
// LevelDB: the trailer packs seq<<8 | kind into a uint64).
const MaxSequence = uint64(1)<<56 - 1

// PackTrailer combines a sequence number and kind into the 8-byte internal
// key trailer.
func PackTrailer(seq uint64, kind ValueKind) uint64 {
	return seq<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer into sequence number and kind.
func UnpackTrailer(t uint64) (uint64, ValueKind) {
	return t >> 8, ValueKind(t & 0xff)
}

// InternalKey is a user key with an appended 8-byte trailer holding the
// sequence number and value kind. Internal keys order by user key ascending,
// then by sequence number *descending*, so the freshest version of a key is
// encountered first during iteration.
type InternalKey []byte

// MakeInternalKey builds an internal key by appending the packed trailer to
// the user key, reusing dst's backing array when possible.
func MakeInternalKey(dst []byte, ukey []byte, seq uint64, kind ValueKind) InternalKey {
	dst = append(dst[:0], ukey...)
	return PutFixed64(dst, PackTrailer(seq, kind))
}

// UserKey returns the user-key prefix of an internal key.
func (ik InternalKey) UserKey() []byte { return ik[:len(ik)-8] }

// Trailer returns the packed sequence/kind trailer.
func (ik InternalKey) Trailer() uint64 { return Fixed64(ik[len(ik)-8:]) }

// Seq returns the sequence number embedded in the internal key.
func (ik InternalKey) Seq() uint64 { s, _ := UnpackTrailer(ik.Trailer()); return s }

// Kind returns the value kind embedded in the internal key.
func (ik InternalKey) Kind() ValueKind { _, k := UnpackTrailer(ik.Trailer()); return k }

// Valid reports whether ik is long enough to carry a trailer.
func (ik InternalKey) Valid() bool { return len(ik) >= 8 }

// String renders the internal key for debugging.
func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("badikey(%q)", []byte(ik))
	}
	return fmt.Sprintf("%q@%d#%d", ik.UserKey(), ik.Seq(), ik.Kind())
}

// CompareInternal orders internal keys: user key ascending, then trailer
// descending (higher sequence numbers sort first).
func CompareInternal(a, b InternalKey) int {
	if c := bytes.Compare(a.UserKey(), b.UserKey()); c != 0 {
		return c
	}
	at, bt := a.Trailer(), b.Trailer()
	switch {
	case at > bt:
		return -1
	case at < bt:
		return 1
	default:
		return 0
	}
}
