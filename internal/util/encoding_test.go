package util

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, ^uint64(0)}
	for _, v := range cases {
		b := PutUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Fatalf("Uvarint(%d) = %d, %d; want %d, %d", v, got, n, v, len(b))
		}
	}
}

func TestUvarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := PutUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	b := PutUvarint(nil, 1<<40)
	for i := 0; i < len(b); i++ {
		if _, _, err := Uvarint(b[:i]); err == nil {
			t.Fatalf("Uvarint of %d-byte prefix should fail", i)
		}
	}
}

func TestFixedRoundTrip(t *testing.T) {
	f32 := func(v uint32) bool { return Fixed32(PutFixed32(nil, v)) == v }
	f64 := func(v uint64) bool { return Fixed64(PutFixed64(nil, v)) == v }
	if err := quick.Check(f32, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLengthPrefixedRoundTrip(t *testing.T) {
	f := func(payload []byte, suffix []byte) bool {
		enc := PutLengthPrefixed(nil, payload)
		enc = append(enc, suffix...)
		got, n, err := LengthPrefixed(enc)
		return err == nil && bytes.Equal(got, payload) && n == len(enc)-len(suffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLengthPrefixedCorrupt(t *testing.T) {
	enc := PutLengthPrefixed(nil, []byte("hello"))
	if _, _, err := LengthPrefixed(enc[:3]); err == nil {
		t.Fatal("truncated payload should fail")
	}
	if _, _, err := LengthPrefixed(nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestCRCMasking(t *testing.T) {
	f := func(b []byte) bool {
		c := CRC(b)
		return UnmaskCRC(MaskCRC(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Masked CRC must differ from the raw CRC (that is its purpose).
	if c := CRC([]byte("abc")); MaskCRC(c) == c {
		t.Fatal("MaskCRC is the identity")
	}
}

func TestHash32Deterministic(t *testing.T) {
	a := Hash32([]byte("the quick brown fox"), 0xbc9f1d34)
	b := Hash32([]byte("the quick brown fox"), 0xbc9f1d34)
	if a != b {
		t.Fatal("Hash32 not deterministic")
	}
	if Hash32([]byte("a"), 1) == Hash32([]byte("b"), 1) {
		t.Fatal("suspicious collision on single bytes")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should change many output bits on average.
	base := Hash64([]byte("keyspace-0000001"))
	diff := Hash64([]byte("keyspace-0000002"))
	x := base ^ diff
	bits := 0
	for x != 0 {
		bits += int(x & 1)
		x >>= 1
	}
	if bits < 10 {
		t.Fatalf("weak avalanche: only %d differing bits", bits)
	}
}
