package util

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	f := func(ukey []byte, seq uint64, del bool) bool {
		seq &= MaxSequence
		kind := KindValue
		if del {
			kind = KindDelete
		}
		ik := MakeInternalKey(nil, ukey, seq, kind)
		return bytes.Equal(ik.UserKey(), ukey) && ik.Seq() == seq && ik.Kind() == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareInternalOrdering(t *testing.T) {
	mk := func(k string, seq uint64, kind ValueKind) InternalKey {
		return MakeInternalKey(nil, []byte(k), seq, kind)
	}
	// Same user key: higher sequence sorts first.
	if CompareInternal(mk("a", 10, KindValue), mk("a", 5, KindValue)) >= 0 {
		t.Fatal("higher seq should sort before lower seq")
	}
	// Different user keys dominate sequence.
	if CompareInternal(mk("a", 1, KindValue), mk("b", 100, KindValue)) >= 0 {
		t.Fatal("user key order must dominate")
	}
	// Same key and seq: delete (kind 0) sorts after put (kind 1).
	if CompareInternal(mk("a", 7, KindValue), mk("a", 7, KindDelete)) >= 0 {
		t.Fatal("at equal seq, KindValue must sort before KindDelete")
	}
	// Reflexivity.
	if CompareInternal(mk("a", 7, KindValue), mk("a", 7, KindValue)) != 0 {
		t.Fatal("equal keys must compare equal")
	}
}

func TestTrailerPacking(t *testing.T) {
	f := func(seq uint64, del bool) bool {
		seq &= MaxSequence
		kind := KindValue
		if del {
			kind = KindDelete
		}
		s, k := UnpackTrailer(PackTrailer(seq, kind))
		return s == seq && k == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInternalKeyString(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("k"), 3, KindValue)
	if got := ik.String(); got != `"k"@3#1` {
		t.Fatalf("String() = %q", got)
	}
	if got := InternalKey([]byte("abc")).String(); got != `badikey("abc")` {
		t.Fatalf("short key String() = %q", got)
	}
}
