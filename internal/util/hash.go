package util

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcMaskDelta matches LevelDB's CRC masking constant; masking stored CRCs
// guards against computing a CRC over bytes that themselves contain a CRC.
const crcMaskDelta = 0xa282ead8

// CRC computes the Castagnoli CRC32 of b.
func CRC(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// MaskCRC rotates and offsets a raw CRC before storage.
func MaskCRC(c uint32) uint32 { return ((c >> 15) | (c << 17)) + crcMaskDelta }

// UnmaskCRC inverts MaskCRC.
func UnmaskCRC(m uint32) uint32 {
	c := m - crcMaskDelta
	return (c >> 17) | (c << 15)
}

// Hash32 is LevelDB's Murmur-flavoured 32-bit hash, used by the bloom filter
// and for shard selection.
func Hash32(b []byte, seed uint32) uint32 {
	const m = 0xc6a4a793
	h := seed ^ uint32(len(b))*m
	for len(b) >= 4 {
		h += Fixed32(b)
		h *= m
		h ^= h >> 16
		b = b[4:]
	}
	switch len(b) {
	case 3:
		h += uint32(b[2]) << 16
		fallthrough
	case 2:
		h += uint32(b[1]) << 8
		fallthrough
	case 1:
		h += uint32(b[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// Hash64 is a 64-bit FNV-1a variant with an avalanche finish, used where a
// wider hash is needed (YCSB key scrambling, XPBuffer tags in tests).
func Hash64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Mix64 finalizes a uint64 with the SplitMix64 avalanche; useful for turning
// counters into well-distributed pseudo-random values deterministically.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
