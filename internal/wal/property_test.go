package wal

import (
	"bytes"
	"fmt"
	"testing"

	"cachekv/internal/hw"
)

// Property tests for the log format: (1) any sequence of record sizes —
// including sizes that straddle and exactly fill block boundaries — round-
// trips; (2) damaging the last record at ANY byte offset (truncation or a
// single bit flip) never loses an earlier record, never yields a partial or
// fabricated record, and costs at most the damaged record itself. Property
// (2) is the contract the crash harness leans on: the replayable prefix is
// exactly what was durable.

// propRNG is a tiny deterministic generator so trials are reproducible
// without seeding global state.
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func propRecord(rng *propRNG, size int) []byte {
	rec := make([]byte, size)
	for i := range rec {
		rec[i] = byte(rng.next())
	}
	return rec
}

func TestPropertyRoundTripAcrossBlocks(t *testing.T) {
	m, region, th := newLog(t, 4<<20)
	w := NewWriter(m, region, th)
	rng := &propRNG{s: 0x9e3779b9}

	// Sizes chosen to hit every chunking shape: empty, tiny, exact block
	// payload (BlockSize-headerLen, a FULL chunk filling its block), one byte
	// over (forces FIRST/LAST), multi-block, and a tail of random sizes that
	// walk the write offset across many block boundaries and pad regions.
	sizes := []int{0, 1, 7, BlockSize - headerLen, BlockSize - headerLen + 1,
		BlockSize, 2*BlockSize + 13, BlockSize - 2*headerLen - 1}
	for len(sizes) < 120 {
		sizes = append(sizes, int(rng.next()%uint64(BlockSize/2)))
	}
	var want [][]byte
	for _, n := range sizes {
		rec := propRecord(rng, n)
		if _, err := w.Append(th, rec); err != nil {
			t.Fatalf("append %d bytes: %v", n, err)
		}
		want = append(want, rec)
	}

	r := NewReader(m, region)
	for i, wrec := range want {
		rec, ok := r.Next(th)
		if !ok {
			t.Fatalf("replay stopped at record %d of %d", i, len(want))
		}
		if !bytes.Equal(rec, wrec) {
			t.Fatalf("record %d (size %d) corrupted on round trip", i, len(wrec))
		}
	}
	if rec, ok := r.Next(th); ok {
		t.Fatalf("replay fabricated a %d-byte record past the end", len(rec))
	}
}

// replayPrefix reads everything the log yields and checks it is a byte-exact
// prefix of want with at least len(want)-1 records (damage was confined to
// the last record, so every earlier one must survive; the damaged one may
// survive too when the damage landed on padding or was a no-op).
func replayPrefix(t *testing.T, m *hw.Machine, region hw.Region, th *hw.Thread, want [][]byte, trial string) {
	t.Helper()
	r := NewReader(m, region)
	i := 0
	for {
		rec, ok := r.Next(th)
		if !ok {
			break
		}
		if i >= len(want) {
			t.Fatalf("%s: fabricated record %d (%d bytes)", trial, i, len(rec))
		}
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("%s: record %d is not byte-identical to what was appended (partial record leaked)", trial, i)
		}
		i++
	}
	if i < len(want)-1 {
		t.Fatalf("%s: replay lost intact record(s): got %d, want at least %d", trial, i, len(want)-1)
	}
}

// damageSweep writes prefix records plus one final target record, then for
// every byte offset of the final record's on-media extent applies each
// damage mode, checks the replay property, and restores the media.
func damageSweep(t *testing.T, targetSize int, prefixSizes []int, stride int) {
	m, region, th := newLog(t, 4<<20)
	w := NewWriter(m, region, th)
	rng := &propRNG{s: uint64(targetSize)*2654435761 + 1}
	var want [][]byte
	for _, n := range prefixSizes {
		rec := propRecord(rng, n)
		if _, err := w.Append(th, rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	last := propRecord(rng, targetSize)
	start, err := w.Append(th, last)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, last)
	end := w.Offset()

	// NT-written bytes hit the media backing synchronously, so the extent can
	// be snapshotted and surgically damaged through the raw device interface.
	extent := make([]byte, end-start)
	m.PMem.LoadRaw(region.Addr+start, extent)

	restore := func() { m.PMem.StoreRaw(region.Addr+start, extent) }
	for off := uint64(0); off < uint64(len(extent)); off += uint64(stride) {
		// Truncation: everything from off to the tail never reached media.
		zero := make([]byte, uint64(len(extent))-off)
		m.PMem.StoreRaw(region.Addr+start+off, zero)
		replayPrefix(t, m, region, th, want,
			fmt.Sprintf("target=%dB truncate@%d", targetSize, off))
		restore()

		// Corruption: one bit flips in place.
		var b [1]byte
		m.PMem.LoadRaw(region.Addr+start+off, b[:])
		b[0] ^= 1 << (off % 8)
		m.PMem.StoreRaw(region.Addr+start+off, b[:])
		replayPrefix(t, m, region, th, want,
			fmt.Sprintf("target=%dB bitflip@%d", targetSize, off))
		restore()
	}
}

func TestPropertyDamagedTail(t *testing.T) {
	// Small last record: every byte offset, exhaustively.
	damageSweep(t, 120, []int{40, 200, 15}, 1)

	// Last record straddling a block boundary (FIRST in one block, LAST in
	// the next): exhaustive over its extent, which includes the chunk
	// headers on both sides of the boundary.
	damageSweep(t, 400, []int{BlockSize - headerLen - 300}, 1)

	// Multi-block record (FIRST/MIDDLE/LAST): stride over ~70 KiB in normal
	// mode, coarser under -short.
	stride := 509
	if testing.Short() {
		stride = 4099
	}
	damageSweep(t, 2*BlockSize+5000, []int{100, 60}, stride)
}
