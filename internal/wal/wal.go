// Package wal implements a LevelDB-format write-ahead log over a PMem
// region: 32 KiB blocks, records fragmented as FULL/FIRST/MIDDLE/LAST chunks,
// each chunk protected by a masked CRC. The same log format backs both the
// engines' write-ahead logs and the LSM manifest.
//
// Writes go through non-temporal stores (the PMem WAL path of FlatStore and
// friends); on recovery, Reader replays records up to the first corrupt or
// absent chunk, which is exactly the prefix that was durable at the crash.
package wal

import (
	"errors"
	"fmt"

	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/util"
)

const (
	// BlockSize is the log block size; chunks never span blocks.
	BlockSize = 32 << 10
	headerLen = 7 // crc(4) + length(2) + type(1)

	chunkFull   = 1
	chunkFirst  = 2
	chunkMiddle = 3
	chunkLast   = 4
)

// ErrFull is returned when the region cannot hold another record.
var ErrFull = errors.New("wal: log region full")

// Mode selects how log bytes reach the PMem.
type Mode int

const (
	// ModeNT streams records with non-temporal stores (the default: how
	// PMem-native logs and the LSM manifest are written).
	ModeNT Mode = iota
	// ModeFlush uses ordinary stores followed by clwb + fence — the ADR-era
	// discipline of the vanilla baselines.
	ModeFlush
	// ModeCached uses plain stores with no flush, as the "-w/o-flush"
	// variants do on eADR: record bytes linger dirty in the LLC and reach
	// the media only via capacity eviction.
	ModeCached
)

// Writer appends records to a region. Not safe for concurrent use; engines
// serialize WAL appends (that serialization is part of what the paper's
// Figure 5(b) charges to the write path).
type Writer struct {
	m      *hw.Machine
	region hw.Region
	mode   Mode
	off    uint64 // next write offset relative to region start
	buf    []byte
}

// NewWriter starts a fresh log at the head of region. Any previous contents
// are superseded: the first block is zeroed so stale chunks cannot be
// replayed past the new tail.
func NewWriter(m *hw.Machine, region hw.Region, th *hw.Thread) *Writer {
	return NewWriterMode(m, region, th, ModeNT)
}

// NewWriterMode starts a fresh log with an explicit persistence discipline.
func NewWriterMode(m *hw.Machine, region hw.Region, th *hw.Thread, mode Mode) *Writer {
	w := &Writer{m: m, region: region, mode: mode}
	w.zeroAhead(th)
	return w
}

// zeroAhead clears the block at the current offset so that replay stops here.
func (w *Writer) zeroAhead(th *hw.Thread) {
	blockOff := w.off - w.off%BlockSize
	if blockOff >= w.region.Size {
		return
	}
	n := uint64(BlockSize)
	if blockOff+n > w.region.Size {
		n = w.region.Size - blockOff
	}
	zero := make([]byte, n)
	w.m.Cache.NTWrite(th.Clock, w.region.Addr+blockOff, zero)
}

// Append writes one record durably and returns its starting offset.
func (w *Writer) Append(th *hw.Thread, rec []byte) (uint64, error) {
	start := w.off
	first := true
	data := rec
	for {
		blockLeft := BlockSize - w.off%BlockSize
		if blockLeft < headerLen {
			// Pad the block tail with zeros.
			if w.off+blockLeft > w.region.Size {
				return 0, ErrFull
			}
			pad := make([]byte, blockLeft)
			w.m.Cache.NTWrite(th.Clock, w.region.Addr+w.off, pad)
			w.off += blockLeft
			blockLeft = BlockSize
		}
		avail := blockLeft - headerLen
		frag := data
		if uint64(len(frag)) > avail {
			frag = frag[:avail]
		}
		var typ byte
		switch {
		case first && len(frag) == len(data):
			typ = chunkFull
		case first:
			typ = chunkFirst
		case len(frag) == len(data):
			typ = chunkLast
		default:
			typ = chunkMiddle
		}
		if err := w.emit(th, typ, frag); err != nil {
			return 0, err
		}
		data = data[len(frag):]
		first = false
		if len(data) == 0 && typ != chunkFirst && typ != chunkMiddle {
			return start, nil
		}
	}
}

func (w *Writer) emit(th *hw.Thread, typ byte, frag []byte) error {
	need := uint64(headerLen + len(frag))
	if w.off+need > w.region.Size {
		return ErrFull
	}
	w.buf = w.buf[:0]
	crcBody := append([]byte{typ}, frag...)
	w.buf = util.PutFixed32(w.buf, util.MaskCRC(util.CRC(crcBody)))
	w.buf = append(w.buf, byte(len(frag)), byte(len(frag)>>8), typ)
	w.buf = append(w.buf, frag...)
	addr := w.region.Addr + w.off
	// A WAL append is a file write + sync on the paper's systems: charge the
	// syscall/kernel-I/O share on top of the store path itself.
	th.Clock.Advance(w.m.Costs.SyscallWrite)
	switch w.mode {
	case ModeFlush:
		w.m.Cache.Write(th.Clock, addr, w.buf, cache.DefaultPartition)
		w.m.Cache.FlushOpt(th.Clock, addr, len(w.buf))
	case ModeCached:
		w.m.Cache.Write(th.Clock, addr, w.buf, cache.DefaultPartition)
	default:
		w.m.Cache.NTWrite(th.Clock, addr, w.buf)
	}
	w.off += need
	return nil
}

// Offset returns the current log tail offset.
func (w *Writer) Offset() uint64 { return w.off }

// Reset truncates the log: subsequent appends start from the head again.
func (w *Writer) Reset(th *hw.Thread) {
	w.off = 0
	w.zeroAhead(th)
}

// Reader replays records from the head of a region.
type Reader struct {
	m      *hw.Machine
	region hw.Region
	off    uint64
}

// NewReader opens region for replay.
func NewReader(m *hw.Machine, region hw.Region) *Reader {
	return &Reader{m: m, region: region}
}

// Next returns the next record, or (nil, false) at the durable end of the
// log (zero block, bad CRC, or region end). Partial trailing records —
// a FIRST chunk never completed by its LAST — also terminate replay.
func (r *Reader) Next(th *hw.Thread) ([]byte, bool) {
	var rec []byte
	assembling := false
	for {
		blockLeft := BlockSize - r.off%BlockSize
		if blockLeft < headerLen {
			r.off += blockLeft
			continue
		}
		if r.off+headerLen > r.region.Size {
			return nil, false
		}
		var hdr [headerLen]byte
		r.m.PMem.Read(th.Clock, r.region.Addr+r.off, hdr[:])
		length := uint64(hdr[4]) | uint64(hdr[5])<<8
		typ := hdr[6]
		if typ == 0 || typ > chunkLast || headerLen+length > blockLeft ||
			r.off+headerLen+length > r.region.Size {
			return nil, false
		}
		frag := make([]byte, length)
		r.m.PMem.Read(th.Clock, r.region.Addr+r.off+headerLen, frag)
		crcBody := append([]byte{typ}, frag...)
		if util.UnmaskCRC(util.Fixed32(hdr[:4])) != util.CRC(crcBody) {
			return nil, false
		}
		r.off += headerLen + length
		switch typ {
		case chunkFull:
			if assembling {
				return nil, false // FIRST without LAST: treat as torn tail
			}
			return frag, true
		case chunkFirst:
			if assembling {
				return nil, false
			}
			assembling = true
			rec = append(rec[:0], frag...)
		case chunkMiddle:
			if !assembling {
				return nil, false
			}
			rec = append(rec, frag...)
		case chunkLast:
			if !assembling {
				return nil, false
			}
			return append(rec, frag...), true
		}
	}
}

// ReplayAll reads every durable record, invoking fn on each.
func (r *Reader) ReplayAll(th *hw.Thread, fn func(rec []byte) error) error {
	for {
		rec, ok := r.Next(th)
		if !ok {
			return nil
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
	}
}
