package wal

import (
	"bytes"
	"fmt"
	"testing"

	"cachekv/internal/hw"
)

func newLog(t *testing.T, size uint64) (*hw.Machine, hw.Region, *hw.Thread) {
	t.Helper()
	m := hw.NewMachine(hw.Config{PMemBytes: 128 << 20})
	return m, m.Alloc("wal", size, 0), m.NewThread(0)
}

func TestAppendReplayRoundTrip(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), i%50)))
		want = append(want, rec)
		if _, err := w.Append(th, rec); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(m, region)
	i := 0
	for {
		rec, ok := r.Next(th)
		if !ok {
			break
		}
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d mismatch: %q", i, rec)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("replayed %d of %d records", i, len(want))
	}
}

func TestLargeRecordFragments(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	// Far larger than one 32 KiB block: forces FIRST/MIDDLE/LAST chunks.
	big := bytes.Repeat([]byte("0123456789abcdef"), 8192) // 128 KiB
	if _, err := w.Append(th, big); err != nil {
		t.Fatal(err)
	}
	small := []byte("after-big")
	if _, err := w.Append(th, small); err != nil {
		t.Fatal(err)
	}
	r := NewReader(m, region)
	rec, ok := r.Next(th)
	if !ok || !bytes.Equal(rec, big) {
		t.Fatalf("big record corrupted (ok=%v len=%d)", ok, len(rec))
	}
	rec, ok = r.Next(th)
	if !ok || !bytes.Equal(rec, small) {
		t.Fatal("record after big one lost")
	}
}

func TestEmptyRegionReplaysNothing(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	r := NewReader(m, region)
	if _, ok := r.Next(th); ok {
		t.Fatal("uninitialized region replayed a record")
	}
}

func TestResetTruncates(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	w.Append(th, []byte("old-1"))
	w.Append(th, []byte("old-2"))
	w.Reset(th)
	w.Append(th, []byte("new-1"))
	r := NewReader(m, region)
	rec, ok := r.Next(th)
	if !ok || string(rec) != "new-1" {
		t.Fatalf("first record after reset = %q, %v", rec, ok)
	}
	if rec, ok := r.Next(th); ok {
		t.Fatalf("stale record survived reset: %q", rec)
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	// Fill to within a few bytes of the block boundary so the next record
	// must pad and start a fresh block.
	fill := make([]byte, BlockSize-headerLen-3-headerLen)
	w.Append(th, fill)
	marker := []byte("boundary-record")
	w.Append(th, marker)
	r := NewReader(m, region)
	if rec, ok := r.Next(th); !ok || len(rec) != len(fill) {
		t.Fatal("fill record corrupted")
	}
	rec, ok := r.Next(th)
	if !ok || !bytes.Equal(rec, marker) {
		t.Fatalf("boundary record lost: %q, %v", rec, ok)
	}
}

func TestFullLog(t *testing.T) {
	m, region, th := newLog(t, BlockSize) // one block only
	w := NewWriter(m, region, th)
	if _, err := w.Append(th, make([]byte, BlockSize)); err != ErrFull {
		t.Fatalf("oversized append = %v", err)
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	w.Append(th, []byte("good-1"))
	off2, _ := w.Append(th, []byte("good-2"))
	w.Append(th, []byte("good-3"))
	// Corrupt record 2's payload directly in PMem.
	m.PMem.StoreRaw(region.Addr+off2+headerLen, []byte{0xFF})
	r := NewReader(m, region)
	rec, ok := r.Next(th)
	if !ok || string(rec) != "good-1" {
		t.Fatal("first record should replay")
	}
	if _, ok := r.Next(th); ok {
		t.Fatal("replay continued past corruption")
	}
}

func TestReplayAll(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	for i := 0; i < 10; i++ {
		w.Append(th, []byte{byte(i)})
	}
	var got []byte
	err := NewReader(m, region).ReplayAll(th, func(rec []byte) error {
		got = append(got, rec...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("ReplayAll visited %d records", len(got))
	}
	// Error propagation.
	err = NewReader(m, region).ReplayAll(th, func(rec []byte) error {
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("ReplayAll swallowed the callback error")
	}
}

func TestSurvivesCrash(t *testing.T) {
	m, region, th := newLog(t, 1<<20)
	w := NewWriter(m, region, th)
	w.Append(th, []byte("durable"))
	m.Crash()
	m.Recover()
	r := NewReader(m, region)
	rec, ok := r.Next(th)
	if !ok || string(rec) != "durable" {
		t.Fatalf("WAL record lost across crash: %q %v", rec, ok)
	}
}
