package wal

import (
	"testing"

	"cachekv/internal/hw"
)

func BenchmarkAppend(b *testing.B) {
	m := hw.NewMachine(hw.Config{PMemBytes: 1 << 30})
	th := m.NewThread(0)
	region := m.Alloc("wal", 512<<20, 0)
	w := NewWriter(m, region, th)
	rec := make([]byte, 100)
	b.SetBytes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(th, rec); err != nil {
			w.Reset(th)
		}
	}
}
