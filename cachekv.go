// Package cachekv is the public API of the CacheKV reproduction: an
// LSM-based key-value store designed for persistent CPU caches on
// eADR-enabled Optane platforms (Zhong et al., "Redesigning High-Performance
// LSM-based Key-Value Stores with Persistent CPU Caches", ICDE 2023),
// together with the simulated hardware it runs on and the baseline systems
// the paper compares against.
//
// Because real eADR hardware is unavailable (and unprogrammable from Go),
// every store runs on a simulated platform: an Optane PMem model with
// 256-byte XPLines and a write-combining XPBuffer, behind a persistent
// last-level cache with CAT-style pseudo-locking. Operations are charged
// virtual time on per-session clocks; wall-clock performance of the host
// machine never affects results. See DESIGN.md for the full substitution
// table.
//
// Basic use:
//
//	db, err := cachekv.Open(cachekv.Options{})
//	s := db.Session(0)
//	err = s.Put([]byte("k"), []byte("v"))
//	v, err := s.Get([]byte("k"))
//	db.Close()
//
// Each Session is a simulated thread pinned to a core; concurrent goroutines
// must use separate sessions. SimulateCrash models a power failure and
// reopens the store from its persistent state.
package cachekv

import (
	"errors"
	"fmt"
	"sync"

	"cachekv/internal/baseline"
	"cachekv/internal/baseline/novelsm"
	"cachekv/internal/baseline/slmdb"
	"cachekv/internal/core"
	"cachekv/internal/hw"
	"cachekv/internal/hw/cache"
	"cachekv/internal/kvstore"
	"cachekv/internal/lsm"
	"cachekv/internal/obs"
)

// Engine selects which store design runs on the simulated platform.
type Engine string

// The available engines: the paper's contribution, its two ablation stages,
// and the comparison systems with their eADR variants.
const (
	EngineCacheKV        Engine = "cachekv"
	EnginePCSM           Engine = "pcsm"
	EnginePCSMLIU        Engine = "pcsm+liu"
	EngineNoveLSM        Engine = "novelsm"
	EngineNoveLSMNoFlush Engine = "novelsm-w/o-flush"
	EngineNoveLSMCache   Engine = "novelsm-cache"
	EngineSLMDB          Engine = "slm-db"
	EngineSLMDBNoFlush   Engine = "slm-db-w/o-flush"
	EngineSLMDBCache     Engine = "slm-db-cache"
)

// ErrNotFound is returned by Get for missing (or deleted) keys.
var ErrNotFound = kvstore.ErrNotFound

// ErrStalled is returned by deadline-bounded writes (Options.
// WriteStallDeadline, Session.PutWithDeadline and friends) when the engine is
// overloaded and the write could not be admitted before its deadline. The
// write is fully absent — nothing was committed — so retrying later is safe.
// Test with errors.Is.
var ErrStalled = core.ErrStalled

// Options configure the platform and the chosen engine. The zero value opens
// CacheKV on the paper's testbed configuration (36 MB eADR LLC, 24 cores)
// with a 4 GiB PMem and the Section IV-A engine defaults.
type Options struct {
	// Engine selects the store design; default EngineCacheKV.
	Engine Engine

	// PMemMB is the simulated PMem capacity in MiB (default 4096).
	PMemMB int
	// VolatileCaches selects the ADR platform (volatile CPU caches) instead
	// of the default eADR. CacheKV loses unflushed data across crashes on
	// such a platform — the point of the paper.
	VolatileCaches bool
	// Cores is the simulated core count (default 24).
	Cores int

	// CacheKV-specific knobs (ignored by other engines); zero values take
	// the paper's defaults (12 MiB pool, 2 MiB sub-MemTables, 1 flush
	// thread).
	PoolMB         int
	SubMemTableKB  int
	FlushThreads   int
	DisableElastic bool
	SyncThreshold  int
	ImmZoneMB      int
	FSMB           int // SSTable file-layer capacity (default 1024)
	TableSizeKB    int // LSM SSTable target size
	L0Trigger      int // L0 compaction trigger
	BaseLevelMB    int // L1 size limit

	// Shards partitions the keyspace across N independent engine shards, each
	// with its own sub-MemTable pool, flush pipeline, and lock domain, behind
	// a router that preserves this API (CacheKV-family engines only). 0 or 1
	// opens the classic single-engine store; the group-commit knobs below only
	// take effect when Shards > 1.
	Shards int
	// GroupCommitWindow is the virtual-time window in nanoseconds within
	// which concurrently arriving writes coalesce into a single group commit
	// (one sub-MemTable append + one persistence fence). 0 takes the default
	// (10µs); negative disables coalescing so every write commits alone.
	GroupCommitWindow int
	// GroupCommitMaxOps caps the operations batched into one group commit
	// (default 64).
	GroupCommitMaxOps int

	// CompactionWorkers > 0 moves LSM compaction off the spill path onto a
	// background scheduler with that many worker threads picking jobs by
	// priority; disjoint-key-range jobs on the same level run concurrently.
	// 0 (the default) keeps the legacy inline compaction after each spill.
	// CacheKV-family engines only.
	CompactionWorkers int

	// WriteStallDeadline bounds how long a write may wait for admission when
	// the engine is overloaded (flow control in Slowdown/Stop, a full
	// sub-MemTable pool, a saturated ImmZone), in virtual nanoseconds.
	// Writes that cannot be admitted in time fail with ErrStalled instead of
	// blocking; a stalled write is fully absent. 0 (the default) keeps the
	// legacy behavior: writes wait indefinitely. Per-call overrides are
	// available via Session.PutWithDeadline and friends on CacheKV-family
	// engines.
	WriteStallDeadline int64
	// DisableFlowControl turns off write-path flow control (the
	// OK/Slowdown/Stop state machine over L0, flush-backlog and 2PC-WAL
	// pressure). Deadlines still bound pool/ImmZone waits. Useful for
	// baseline comparisons; production-shaped runs should leave it on.
	DisableFlowControl bool

	// BlockCacheMB sizes the shared DRAM block cache over SSTable blocks,
	// shared by every table reader (default 8 MiB). Negative disables it.
	BlockCacheMB int
	// FilterBitsPerKey sizes the memory component's DRAM-side negative
	// filters (default 10 bits/key). Negative disables them. The filters are
	// volatile and rebuilt during recovery, so crash semantics are unchanged.
	FilterBitsPerKey int

	// DisableObs turns off the observability layer: no per-operation
	// latency/attribution collection and no lifecycle event trace. Attribution
	// never advances virtual clocks, so disabling it only saves host-side
	// bookkeeping.
	DisableObs bool
	// TraceCap bounds the lifecycle event ring (default
	// obs.DefaultTraceCap). Ignored when DisableObs is set.
	TraceCap int

	// SlowOpThreshold controls slow-op dossier capture (virtual ns). Capture
	// is always on while observability is: 0 (the default) uses the adaptive
	// policy — an op is slow when its latency exceeds its own op type's
	// rolling p99 × 8, once enough samples exist — a positive value is a
	// static threshold applied to every op type, and a negative value
	// disables capture. Sub-threshold ops cost one atomic load and allocate
	// nothing. Ignored when DisableObs is set.
	SlowOpThreshold int64
	// SlowOpCapacity bounds the retained dossier ring (default 64; the
	// oldest dossier is evicted, and counted, when it wraps).
	SlowOpCapacity int
}

// validate rejects nonsense configurations with a descriptive error rather
// than letting a negative size wrap around in a uint64 conversion downstream.
// BlockCacheMB, FilterBitsPerKey and GroupCommitWindow are exempt: negative
// is their documented "disable" value.
func (o Options) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"PMemMB", o.PMemMB},
		{"Cores", o.Cores},
		{"PoolMB", o.PoolMB},
		{"SubMemTableKB", o.SubMemTableKB},
		{"FlushThreads", o.FlushThreads},
		{"SyncThreshold", o.SyncThreshold},
		{"ImmZoneMB", o.ImmZoneMB},
		{"FSMB", o.FSMB},
		{"TableSizeKB", o.TableSizeKB},
		{"L0Trigger", o.L0Trigger},
		{"BaseLevelMB", o.BaseLevelMB},
		{"Shards", o.Shards},
		{"GroupCommitMaxOps", o.GroupCommitMaxOps},
		{"CompactionWorkers", o.CompactionWorkers},
		{"SlowOpCapacity", o.SlowOpCapacity},
	} {
		if f.v < 0 {
			return fmt.Errorf("cachekv: Options.%s must not be negative (got %d); use 0 for the default", f.name, f.v)
		}
	}
	if o.WriteStallDeadline < 0 {
		return fmt.Errorf("cachekv: Options.WriteStallDeadline must not be negative (got %d); use 0 for no deadline", o.WriteStallDeadline)
	}
	return nil
}

// DB is an open store plus its simulated platform.
type DB struct {
	mu       sync.Mutex
	machine  *hw.Machine
	inner    kvstore.DB
	opts     Options
	sessions []*Session
	closed   bool

	// Observability (nil when Options.DisableObs): the collector and trace
	// survive SimulateCrash so post-recovery analysis sees the whole history.
	col   *obs.Collector
	trace *obs.Trace
}

// Open builds a fresh simulated platform and opens the chosen engine on it.
func Open(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	cfg := hw.DefaultConfig()
	if opts.PMemMB > 0 {
		cfg.PMemBytes = uint64(opts.PMemMB) << 20
	}
	if opts.Cores > 0 {
		cfg.Cores = opts.Cores
	}
	if opts.VolatileCaches {
		cfg.Cache.Domain = cache.ADR
	}
	m := hw.NewMachine(cfg)
	var col *obs.Collector
	var trace *obs.Trace
	if !opts.DisableObs {
		m.EnableObs()
		col = obs.NewCollector()
		cap := opts.TraceCap
		if cap <= 0 {
			cap = obs.DefaultTraceCap
		}
		trace = obs.NewTrace(cap)
		if opts.SlowOpThreshold >= 0 {
			pol := obs.SlowOpPolicy{Capacity: opts.SlowOpCapacity}
			if opts.SlowOpThreshold > 0 {
				pol.StaticNs = opts.SlowOpThreshold
			}
			col.EnableSlowOps(pol, trace)
		}
	}
	return openOn(m, opts, col, trace)
}

func openOn(m *hw.Machine, opts Options, col *obs.Collector, trace *obs.Trace) (*DB, error) {
	th := m.NewThread(0)
	inner, err := openEngine(m, opts, th, trace)
	if err != nil {
		return nil, err
	}
	// (Re)bind the dossier flow-state context to the engine instance this open
	// produced — after SimulateCrash the collector outlives the old engine.
	if fl, ok := inner.(interface{ FlowState() core.FlowState }); ok {
		col.SetSlowOpContext(func() string { return fl.FlowState().String() })
	}
	return &DB{machine: m, inner: inner, opts: opts, col: col, trace: trace}, nil
}

func openEngine(m *hw.Machine, opts Options, th *hw.Thread, trace *obs.Trace) (kvstore.DB, error) {
	fsBytes := uint64(1) << 30
	if opts.FSMB > 0 {
		fsBytes = uint64(opts.FSMB) << 20
	}
	if max := m.PMem.Capacity() / 2; fsBytes > max {
		fsBytes = max
	}
	if opts.Shards > 1 {
		switch opts.Engine {
		case EngineCacheKV, EnginePCSM, EnginePCSMLIU, "":
		default:
			return nil, fmt.Errorf("cachekv: engine %q does not support sharding (Shards=%d)", opts.Engine, opts.Shards)
		}
	}
	switch opts.Engine {
	case EngineCacheKV, EnginePCSM, EnginePCSMLIU, "":
		o := core.DefaultOptions()
		o.FSBytes = fsBytes
		if opts.PoolMB > 0 {
			o.PoolBytes = uint64(opts.PoolMB) << 20
		}
		if opts.SubMemTableKB > 0 {
			o.SubMemTableBytes = uint64(opts.SubMemTableKB) << 10
		}
		if opts.FlushThreads > 0 {
			o.FlushThreads = opts.FlushThreads
		}
		if opts.SyncThreshold > 0 {
			o.SyncThreshold = opts.SyncThreshold
		}
		if opts.ImmZoneMB > 0 {
			o.ImmZoneBytes = uint64(opts.ImmZoneMB) << 20
		}
		if opts.DisableElastic {
			o.Elastic = false
		}
		if opts.TableSizeKB > 0 {
			o.LSM.TableFileSize = uint64(opts.TableSizeKB) << 10
		}
		if opts.L0Trigger > 0 {
			o.LSM.L0CompactionTrigger = opts.L0Trigger
		}
		if opts.BaseLevelMB > 0 {
			o.LSM.BaseLevelBytes = int64(opts.BaseLevelMB) << 20
		}
		switch {
		case opts.BlockCacheMB > 0:
			o.LSM.BlockCacheBytes = int64(opts.BlockCacheMB) << 20
		case opts.BlockCacheMB < 0:
			o.LSM.BlockCacheBytes = -1 // disabled
		}
		if opts.FilterBitsPerKey != 0 {
			o.FilterBitsPerKey = opts.FilterBitsPerKey
		}
		switch opts.Engine {
		case EnginePCSM:
			o.LazyIndex = false
			o.SkiplistCompaction = false
		case EnginePCSMLIU:
			o.LazyIndex = true
			o.SkiplistCompaction = false
		}
		o.Trace = trace
		o.WriteStallDeadline = opts.WriteStallDeadline
		o.DisableFlowControl = opts.DisableFlowControl
		o.CompactionWorkers = opts.CompactionWorkers
		if opts.Shards > 1 {
			return core.OpenSharded(m, core.ShardedOptions{
				Shards:            opts.Shards,
				GroupCommitWindow: int64(opts.GroupCommitWindow),
				GroupCommitMaxOps: opts.GroupCommitMaxOps,
				Base:              o,
			}, th)
		}
		return core.Open(m, o, th)
	case EngineNoveLSM, EngineNoveLSMNoFlush, EngineNoveLSMCache:
		o := novelsm.DefaultOptions()
		o.FSBytes = fsBytes
		o.Variant = map[Engine]baseline.Variant{
			EngineNoveLSM:        baseline.Vanilla,
			EngineNoveLSMNoFlush: baseline.WithoutFlush,
			EngineNoveLSMCache:   baseline.CacheSegments,
		}[opts.Engine]
		o.Trace = trace
		return novelsm.Open(m, o, th)
	case EngineSLMDB, EngineSLMDBNoFlush, EngineSLMDBCache:
		o := slmdb.DefaultOptions()
		o.FSBytes = fsBytes
		o.Variant = map[Engine]baseline.Variant{
			EngineSLMDB:        baseline.Vanilla,
			EngineSLMDBNoFlush: baseline.WithoutFlush,
			EngineSLMDBCache:   baseline.CacheSegments,
		}[opts.Engine]
		o.Trace = trace
		return slmdb.Open(m, o, th)
	default:
		return nil, fmt.Errorf("cachekv: unknown engine %q", opts.Engine)
	}
}

// EngineName returns the open engine's display name.
func (db *DB) EngineName() string { return db.inner.Name() }

// Session creates a simulated thread pinned to the given core. The pinning is
// deterministic: the session's virtual thread runs on core % Options.Cores,
// and Session(c).Core() reports that resolved core. Sessions are not safe for
// concurrent use; create one per goroutine.
//
// On a sharded store (Options.Shards > 1) the same rule extends to the
// engine's own threads: shard k's group-commit writer is pinned to virtual
// core k % Options.Cores, so a session on core c shares a core with the
// writer of shard c (when c < Shards) and with any session on c + i*Cores.
// Writes route by key hash, not by session core — the session's core decides
// where its CPU time is modelled, never which shard its keys land in.
func (db *DB) Session(core int) *Session {
	s := &Session{db: db, th: db.machine.NewThread(core)}
	db.mu.Lock()
	db.sessions = append(db.sessions, s)
	db.mu.Unlock()
	return s
}

// Flush forces all buffered writes down to the storage component.
func (db *DB) Flush() error {
	th := db.machine.NewThread(0)
	sp := db.col.StartOp(th, obs.OpFlush)
	err := db.inner.FlushAll(th)
	sp.End()
	return err
}

// Close stops background work. The simulated PMem contents survive; a
// crashed-and-reopened view is available via SimulateCrash.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	th := db.machine.NewThread(0)
	return db.inner.Close(th)
}

// SimulateCrash models a power failure: the cache applies its persistence
// domain (eADR drains dirty lines, ADR drops them), all DRAM state is
// discarded, and the engine is recovered from the surviving bytes. It
// returns the recovered store; the receiver must not be used afterwards.
func (db *DB) SimulateCrash() (*DB, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, errors.New("cachekv: store is closed")
	}
	db.closed = true
	db.mu.Unlock()
	// The crash preempts the engine: Halt makes every background thread
	// abandon its queued work (a power failure completes nothing), then the
	// cache applies its persistence-domain rule and volatile state drops.
	if h, ok := db.inner.(interface{ Halt() }); ok {
		h.Halt()
	}
	// Crash while the partitions are still pinned (the persistence-domain
	// drain must see the pool), then tear the dead engine down.
	th0 := db.machine.NewThread(0)
	db.trace.Emit(th0.Clock.Now(), "crash", "engine", db.inner.Name())
	db.machine.Crash()
	th := db.machine.NewThread(0)
	_ = db.inner.Close(th)
	db.machine.Recover()
	ndb, err := openOn(db.machine, db.opts, db.col, db.trace)
	if err == nil {
		rth := db.machine.NewThread(0)
		ndb.trace.Emit(rth.Clock.Now(), "recovered", "engine", ndb.inner.Name())
	}
	return ndb, err
}

// Metrics is a snapshot of the simulated hardware counters plus the engine's
// read-path accelerator counters (zero for engines without them). The ratio
// fields are derived from the raw counters next to them and are 0 when the
// denominator has seen no traffic yet; use the raw fields to tell "no
// traffic" apart from a genuine 0% hit rate.
type Metrics struct {
	WriteHitRatio      float64 // XPBuffer combining ratio (paper Fig. 4)
	WriteAmplification float64 // media bytes written / bytes stored
	MediaWriteBytes    int64
	MediaReadBytes     int64
	CallerWriteBytes   int64 // bytes software asked the PMem device to write
	LineArrivals       int64 // XPBuffer line arrivals (WriteHitRatio denominator)
	LineHits           int64 // XPBuffer write-combining hits (numerator)
	XPLineEvicts       int64 // 256B XPLines evicted from the XPBuffer to media
	RMWEvicts          int64 // evictions that needed a read-modify-write
	CacheHits          int64
	CacheMisses        int64

	// Shared SSTable block cache (CacheKV-family engines).
	BlockCacheHits     int64
	BlockCacheMisses   int64
	BlockCacheHitRatio float64

	// Memory-component negative filters: probes issued and how many rejected
	// (each rejection skips a sub-skiplist search and, for active
	// sub-MemTables, the trigger-1 lazy sync).
	FilterProbes    int64
	FilterNegatives int64

	// Write-path flow control (CacheKV-family engines; zero elsewhere).
	// StallState is the current state — 0 OK, 1 Slowdown, 2 Stop (max across
	// shards on a sharded store) — and like the ratio fields it is carried,
	// not subtracted, by Sub. The rest are cumulative counters: state entries,
	// writes delayed by token pacing (and the virtual ns they waited), and
	// writes rejected with ErrStalled.
	StallState     int64
	StallSlowdowns int64
	StallStops     int64
	WritesDelayed  int64
	WriteDelayNs   int64
	WritesRejected int64
}

// Sub returns the interval delta m - prev: raw counters subtract and the
// ratio fields are recomputed from the deltas (NaN-safe zero when the
// interval saw no traffic), mirroring pmem.CountersSnapshot.Sub.
func (m Metrics) Sub(prev Metrics) Metrics {
	d := Metrics{
		MediaWriteBytes:  m.MediaWriteBytes - prev.MediaWriteBytes,
		MediaReadBytes:   m.MediaReadBytes - prev.MediaReadBytes,
		CallerWriteBytes: m.CallerWriteBytes - prev.CallerWriteBytes,
		LineArrivals:     m.LineArrivals - prev.LineArrivals,
		LineHits:         m.LineHits - prev.LineHits,
		XPLineEvicts:     m.XPLineEvicts - prev.XPLineEvicts,
		RMWEvicts:        m.RMWEvicts - prev.RMWEvicts,
		CacheHits:        m.CacheHits - prev.CacheHits,
		CacheMisses:      m.CacheMisses - prev.CacheMisses,
		BlockCacheHits:   m.BlockCacheHits - prev.BlockCacheHits,
		BlockCacheMisses: m.BlockCacheMisses - prev.BlockCacheMisses,
		FilterProbes:     m.FilterProbes - prev.FilterProbes,
		FilterNegatives:  m.FilterNegatives - prev.FilterNegatives,
		StallState:       m.StallState, // instantaneous, carried like the ratios
		StallSlowdowns:   m.StallSlowdowns - prev.StallSlowdowns,
		StallStops:       m.StallStops - prev.StallStops,
		WritesDelayed:    m.WritesDelayed - prev.WritesDelayed,
		WriteDelayNs:     m.WriteDelayNs - prev.WriteDelayNs,
		WritesRejected:   m.WritesRejected - prev.WritesRejected,
	}
	d.WriteHitRatio = obs.SafeRatio(d.LineHits, d.LineArrivals)
	if d.CallerWriteBytes > 0 {
		d.WriteAmplification = float64(d.MediaWriteBytes) / float64(d.CallerWriteBytes)
	}
	d.BlockCacheHitRatio = obs.SafeRatio(d.BlockCacheHits, d.BlockCacheHits+d.BlockCacheMisses)
	return d
}

// Metrics returns the platform's cumulative hardware counters.
func (db *DB) Metrics() Metrics {
	hwSnap := db.machine.PMem.Snapshot()
	cs := db.machine.Cache.Stats()
	m := Metrics{
		WriteHitRatio:      hwSnap.WriteHitRatio(),
		WriteAmplification: hwSnap.WriteAmplification(),
		MediaWriteBytes:    hwSnap.MediaWriteB,
		MediaReadBytes:     hwSnap.MediaReadB,
		CallerWriteBytes:   hwSnap.CallerWriteB,
		LineArrivals:       hwSnap.LineArrivals,
		LineHits:           hwSnap.LineHits,
		XPLineEvicts:       hwSnap.XPLineEvicts,
		RMWEvicts:          hwSnap.RMWEvicts,
		CacheHits:          cs.Hits,
		CacheMisses:        cs.Misses,
	}
	if bs, ok := db.inner.(interface{ BlockCacheStats() (hits, misses int64) }); ok {
		m.BlockCacheHits, m.BlockCacheMisses = bs.BlockCacheStats()
		m.BlockCacheHitRatio = obs.SafeRatio(m.BlockCacheHits, m.BlockCacheHits+m.BlockCacheMisses)
	}
	if fs, ok := db.inner.(interface {
		FilterStats() (probes, negatives int64)
	}); ok {
		m.FilterProbes, m.FilterNegatives = fs.FilterStats()
	}
	if fl, ok := db.inner.(interface{ FlowStats() core.FlowStats }); ok {
		st := fl.FlowStats()
		m.StallState = int64(st.State)
		m.StallSlowdowns = st.SlowdownEntries
		m.StallStops = st.StopEntries
		m.WritesDelayed = st.DelayedWrites
		m.WriteDelayNs = st.DelayedNs
		m.WritesRejected = st.RejectedWrites
	}
	return m
}

// Registry builds a metrics registry over the platform, the engine, and the
// event trace, ready for text or JSON exposition. Each call rebuilds gauge
// values from live counters; hold the result only briefly.
func (db *DB) Registry() *obs.Registry {
	r := obs.NewRegistry()
	obs.RegisterMachine(r, db.machine)
	obs.RegisterKV(r, db.inner)
	obs.RegisterTrace(r, db.trace)
	return r
}

// Trace returns the lifecycle event trace (nil when Options.DisableObs).
func (db *DB) Trace() *obs.Trace { return db.trace }

// Collector returns the per-op attribution collector (nil when
// Options.DisableObs).
func (db *DB) Collector() *obs.Collector { return db.col }

// SlowOps returns the retained slow-op dossiers, oldest first (nil when
// Options.DisableObs or capture is disabled). See Options.SlowOpThreshold.
func (db *DB) SlowOps() []obs.Dossier { return db.col.SlowOps() }

// Session is a simulated thread interacting with the store. Operations
// advance its virtual clock by the modelled hardware cost.
type Session struct {
	db *DB
	th *hw.Thread
}

// Put stores key -> value.
func (s *Session) Put(key, value []byte) error {
	sp := s.db.col.StartOp(s.th, obs.OpPut)
	err := s.db.inner.Put(s.th, key, value)
	sp.End()
	return err
}

// PutWithDeadline is Put with a per-call stall deadline (virtual ns),
// overriding Options.WriteStallDeadline: if the write cannot be admitted
// before the deadline it fails with ErrStalled and is fully absent. 0 waits
// indefinitely. CacheKV-family engines only.
func (s *Session) PutWithDeadline(key, value []byte, deadlineNs int64) error {
	e, ok := s.db.inner.(interface {
		PutWithDeadline(*hw.Thread, []byte, []byte, int64) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support write deadlines", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpPut)
	err := e.PutWithDeadline(s.th, key, value, deadlineNs)
	sp.End()
	return err
}

// Get returns the freshest value for key, or ErrNotFound.
func (s *Session) Get(key []byte) ([]byte, error) {
	sp := s.db.col.StartOp(s.th, obs.OpGet)
	v, err := s.db.inner.Get(s.th, key)
	sp.End()
	return v, err
}

// Delete removes key.
func (s *Session) Delete(key []byte) error {
	sp := s.db.col.StartOp(s.th, obs.OpDelete)
	err := s.db.inner.Delete(s.th, key)
	sp.End()
	return err
}

// DeleteWithDeadline is Delete with a per-call stall deadline; see
// PutWithDeadline.
func (s *Session) DeleteWithDeadline(key []byte, deadlineNs int64) error {
	e, ok := s.db.inner.(interface {
		DeleteWithDeadline(*hw.Thread, []byte, int64) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support write deadlines", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpDelete)
	err := e.DeleteWithDeadline(s.th, key, deadlineNs)
	sp.End()
	return err
}

// DeleteRange deletes every key in [start, end) by writing a single range
// tombstone — O(1) in the number of keys covered. A start >= end range is an
// empty no-op. On a sharded store the tombstone commits to every shard
// atomically via the two-phase protocol. CacheKV-family engines only.
func (s *Session) DeleteRange(start, end []byte) error {
	e, ok := s.db.inner.(interface {
		DeleteRange(*hw.Thread, []byte, []byte) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support DeleteRange", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpDeleteRange)
	err := e.DeleteRange(s.th, start, end)
	sp.End()
	return err
}

// DeleteRangeWithDeadline is DeleteRange with a per-call stall deadline; see
// PutWithDeadline.
func (s *Session) DeleteRangeWithDeadline(start, end []byte, deadlineNs int64) error {
	e, ok := s.db.inner.(interface {
		DeleteRangeWithDeadline(*hw.Thread, []byte, []byte, int64) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support write deadlines", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpDeleteRange)
	err := e.DeleteRangeWithDeadline(s.th, start, end, deadlineNs)
	sp.End()
	return err
}

// IngestEntry is one key/value pair of an Ingest batch.
type IngestEntry struct {
	Key   []byte
	Value []byte
}

// Ingest bulk-loads entries — strictly ascending unique keys — as external
// SSTables installed atomically in the LSM tree, bypassing the memory
// component entirely. The whole batch becomes the newest version of its keys.
// On a sharded store entries route to their owning shards; each shard's slice
// installs atomically, though not atomically across shards. CacheKV-family
// engines only.
func (s *Session) Ingest(entries []IngestEntry) error {
	e, ok := s.db.inner.(interface {
		Ingest(*hw.Thread, []lsm.IngestEntry) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support Ingest", s.db.EngineName())
	}
	conv := make([]lsm.IngestEntry, len(entries))
	for i, ent := range entries {
		conv[i] = lsm.IngestEntry{Key: ent.Key, Value: ent.Value}
	}
	sp := s.db.col.StartOp(s.th, obs.OpIngest)
	err := e.Ingest(s.th, conv)
	sp.End()
	return err
}

// Scan visits up to limit live keys >= start in order, stopping early when
// fn returns false; it reports how many entries were visited.
func (s *Session) Scan(start []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	sp := s.db.col.StartOp(s.th, obs.OpScan)
	n, err := s.db.inner.Scan(s.th, start, limit, fn)
	sp.End()
	return n, err
}

// Batch is an atomic multi-key write (CacheKV engines only): every entry
// lands in the session core's sub-MemTable and becomes durable with a single
// header CAS, so a crash exposes either all of the batch or none of it.
type Batch struct{ inner core.Batch }

// Put queues a write into the batch.
func (b *Batch) Put(key, value []byte) { b.inner.Put(key, value) }

// Delete queues a tombstone into the batch.
func (b *Batch) Delete(key []byte) { b.inner.Delete(key) }

// DeleteRange queues a range tombstone covering [start, end); it commits
// atomically with the rest of the batch.
func (b *Batch) DeleteRange(start, end []byte) { b.inner.DeleteRange(start, end) }

// Len reports the queued operation count.
func (b *Batch) Len() int { return b.inner.Len() }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.inner.Reset() }

// batchApplier is satisfied by the single-engine store and the sharded
// router; both commit a Batch atomically (the router uses two-phase commit
// when the batch's keys span shards).
type batchApplier interface {
	Apply(*hw.Thread, *core.Batch) error
}

// Apply commits a batch atomically. Only CacheKV-family engines support
// batches; other engines return an error. On a sharded store a batch whose
// keys hash to one shard commits with a single CAS exactly like the classic
// engine; a cross-shard batch goes through the two-phase commit protocol and
// stays all-or-nothing across crashes.
func (s *Session) Apply(b *Batch) error {
	e, ok := s.db.inner.(batchApplier)
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support atomic batches", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpBatch)
	err := e.Apply(s.th, &b.inner)
	sp.End()
	return err
}

// ApplyWithDeadline is Apply with a per-call stall deadline; see
// PutWithDeadline. A batch that stalls is rejected before any of its entries
// commit — all-or-nothing holds for cross-shard batches too, whose admission
// and deadline are checked before the first prepare record is written.
func (s *Session) ApplyWithDeadline(b *Batch, deadlineNs int64) error {
	e, ok := s.db.inner.(interface {
		ApplyWithDeadline(*hw.Thread, *core.Batch, int64) error
	})
	if !ok {
		return fmt.Errorf("cachekv: engine %s does not support write deadlines", s.db.EngineName())
	}
	sp := s.db.col.StartOp(s.th, obs.OpBatch)
	err := e.ApplyWithDeadline(s.th, &b.inner, deadlineNs)
	sp.End()
	return err
}

// VirtualNanos returns the session's virtual clock — the modelled time its
// operations have consumed on the simulated platform.
func (s *Session) VirtualNanos() int64 { return s.th.Clock.Now() }

// Core returns the simulated core this session is pinned to.
func (s *Session) Core() int { return s.th.Core }
