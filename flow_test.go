package cachekv

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cachekv/internal/core"
)

func TestWriteStallDeadlineValidation(t *testing.T) {
	if _, err := Open(Options{PMemMB: 1024, WriteStallDeadline: -1}); err == nil {
		t.Fatal("negative WriteStallDeadline accepted")
	}
}

func TestSessionDeadlineMethods(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)

	// With the engine healthy every deadline call succeeds like its
	// deadline-less twin.
	if err := s.PutWithDeadline([]byte("k"), []byte("v"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	var b Batch
	b.Put([]byte("bk"), []byte("bv"))
	if err := s.ApplyWithDeadline(&b, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteWithDeadline([]byte("k"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}

	// Under a forced Stop the same calls fail fast with ErrStalled.
	e := db.inner.(*core.Engine)
	e.DebugForceFlowState(s.VirtualNanos(), core.FlowStop)
	if err := s.PutWithDeadline([]byte("k2"), []byte("v"), 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("PutWithDeadline under Stop: %v", err)
	}
	if err := s.DeleteWithDeadline([]byte("bk"), 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("DeleteWithDeadline under Stop: %v", err)
	}
	b.Reset()
	b.Put([]byte("k3"), []byte("v"))
	if err := s.ApplyWithDeadline(&b, 1_000); !errors.Is(err, ErrStalled) {
		t.Fatalf("ApplyWithDeadline under Stop: %v", err)
	}
	e.DebugUnforceFlowState()

	m := db.Metrics()
	if m.WritesRejected != 3 {
		t.Fatalf("WritesRejected = %d, want 3", m.WritesRejected)
	}
	if m.StallState != int64(core.FlowStop) {
		t.Fatalf("StallState = %d, want %d (unforce leaves the state until a lifecycle event)", m.StallState, core.FlowStop)
	}
	if m.StallStops == 0 {
		t.Fatalf("StallStops = %d, want > 0", m.StallStops)
	}
}

func TestSessionDeadlineUnsupportedEngine(t *testing.T) {
	db, err := Open(Options{Engine: EngineNoveLSM, PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	if err := s.PutWithDeadline([]byte("k"), []byte("v"), 1_000); err == nil {
		t.Fatal("PutWithDeadline on novelsm succeeded")
	}
	if err := s.DeleteWithDeadline([]byte("k"), 1_000); err == nil {
		t.Fatal("DeleteWithDeadline on novelsm succeeded")
	}
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	if err := s.ApplyWithDeadline(&b, 1_000); err == nil {
		t.Fatal("ApplyWithDeadline on novelsm succeeded")
	}
}

// TestMetricsSubFlowFields checks the interval-delta contract by reflection:
// every int64 counter field subtracts, while StallState (a gauge, like the
// ratio fields) is carried from the newer snapshot.
func TestMetricsSubFlowFields(t *testing.T) {
	gauges := map[string]bool{
		"WriteHitRatio":      true,
		"WriteAmplification": true,
		"BlockCacheHitRatio": true,
		"StallState":         true,
	}
	var cur, prev Metrics
	cv := reflect.ValueOf(&cur).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	tt := cv.Type()
	for i := 0; i < tt.NumField(); i++ {
		if tt.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		cv.Field(i).SetInt(int64(100 + i))
		pv.Field(i).SetInt(int64(10 + i))
	}
	d := cur.Sub(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < tt.NumField(); i++ {
		f := tt.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			continue
		}
		got := dv.Field(i).Int()
		want := int64(90) // 100+i - (10+i)
		if gauges[f.Name] {
			want = int64(100 + i) // carried, not subtracted
		}
		if got != want {
			t.Fatalf("Sub field %s = %d, want %d", f.Name, got, want)
		}
	}

	// The snapshot survives a JSON round-trip unchanged (report files embed
	// these structs verbatim).
	enc, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back != cur {
		t.Fatalf("JSON round-trip mutated Metrics:\n got %+v\nwant %+v", back, cur)
	}
}

// TestRegistryFlowMetrics asserts the flow-control surface is published by
// DB.Registry for both the classic and the sharded engine.
func TestRegistryFlowMetrics(t *testing.T) {
	names := []string{
		"flow_state",
		"flow_slowdown_entries",
		"flow_stop_entries",
		"flow_writes_delayed",
		"flow_delay_ns",
		"flow_writes_rejected",
		"flow_stop_waits",
		"flow_stop_wait_ns",
		"flow_dwell_ok_ns",
		"flow_dwell_slowdown_ns",
		"flow_dwell_stop_ns",
	}
	for _, shards := range []int{1, 4} {
		db, err := Open(Options{PMemMB: 1024, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		snap := db.Registry().Gather()
		for _, n := range names {
			if _, ok := snap.Get(n); !ok {
				t.Fatalf("shards=%d: metric %q missing from registry", shards, n)
			}
		}
		if shards > 1 {
			for k := 0; k < shards; k++ {
				if _, ok := snap.Get(fmt.Sprintf("shard%d_flow_state", k)); !ok {
					t.Fatalf("per-shard gauge shard%d_flow_state missing", k)
				}
			}
		}
		db.Close()
	}
}
