module cachekv

go 1.23
