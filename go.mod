module cachekv

go 1.22
