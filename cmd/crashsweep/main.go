// Command crashsweep explores crash schedules against the simulated eADR/ADR
// platform: it numbers every persistence-relevant memory operation a scripted
// workload generates (stores, non-temporal streams, flushes — each carrying
// its fence), re-runs the workload crashing at chosen points, applies the
// persistence-domain rule plus an optional media fault, recovers the engine,
// and checks the durability oracle. Every failure prints a reproduction
// tuple; re-running with -engine/-domain/-seed/-ops/-crash-at/-fault replays
// the identical schedule.
//
// Bounded sweep (the CI shape):
//
//	crashsweep -schedules 12 -faults none,torn,flip
//
// Exhaustive sweep over every crash point (the acceptance run):
//
//	crashsweep -schedules 0
//
// Replay one schedule:
//
//	crashsweep -engine cachekv -domain eadr -crash-at 46 -fault flip
//
// Cross-shard batch sweep (the sharded router's two-phase commit path; the
// oracle demands all-or-nothing visibility for every batch):
//
//	crashsweep -cross-shard -batches 60 -schedules 10 -faults none,torn,flip
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"cachekv/internal/faultinject"
	"cachekv/internal/hw/cache"
	"cachekv/internal/obs"
)

func main() {
	engines := flag.String("engines", "all", "comma-separated engine list, or 'all'")
	engine := flag.String("engine", "", "single engine for -crash-at replay mode")
	domains := flag.String("domains", "adr,eadr", "persistence domains to sweep")
	domain := flag.String("domain", "", "single domain for -crash-at replay mode")
	ops := flag.Int("ops", 200, "workload length (70% put / 15% delete / 15% get)")
	seed := flag.Uint64("seed", 1, "workload seed")
	schedules := flag.Int("schedules", 12, "crash points sampled per engine/domain/fault; 0 = exhaustive")
	scheduleSeed := flag.Uint64("schedule-seed", 7, "seed for bounded-sweep crash-point sampling")
	faults := flag.String("faults", "none", "fault modes: none, torn (256B-torn write), flip (post-crash bit flip)")
	crashAt := flag.Int64("crash-at", 0, "replay a single schedule crashing at this event index (requires -engine and -domain)")
	fault := flag.String("fault", "none", "fault mode for -crash-at replay")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent schedule runs")
	verbose := flag.Bool("v", false, "log per-configuration event totals")
	tracePath := flag.String("trace", "", "replay mode: write the annotated lifecycle event trace as JSONL here ('-' for stdout)")
	reportPath := flag.String("report", "", "write sweep results as a cachekv.obs/v1 JSON report here")
	crossShard := flag.Bool("cross-shard", false, "sweep cross-shard atomic batches on the sharded router (all-or-nothing oracle)")
	batches := flag.Int("batches", 60, "cross-shard mode: workload length in atomic batches")
	shards := flag.Int("shards", 0, "cross-shard mode: engine shards (0 = harness default)")
	flag.Parse()

	if *crossShard {
		os.Exit(crossShardSweep(*shards, *batches, *domains, *faults, *seed,
			*schedules, *scheduleSeed, *parallel, *verbose))
	}
	if *crashAt > 0 {
		os.Exit(replay(*engine, *domain, *seed, *ops, *crashAt, *fault, *tracePath))
	}

	specs, err := parseEngines(*engines)
	if err != nil {
		fatal(err)
	}
	doms, err := parseDomains(*domains)
	if err != nil {
		fatal(err)
	}
	flts, err := parseFaults(*faults)
	if err != nil {
		fatal(err)
	}

	cfg := faultinject.SweepConfig{
		Engines:            specs,
		Domains:            doms,
		NumOps:             *ops,
		WorkloadSeed:       *seed,
		SchedulesPerConfig: *schedules,
		ScheduleSeed:       *scheduleSeed,
		Faults:             flts,
		Parallel:           *parallel,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	stats, err := faultinject.Sweep(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("crashsweep: %d schedules, %d failures\n", stats.Runs, len(stats.Failures))
	if *reportPath != "" {
		if err := writeSweepReport(*reportPath, *engines, stats); err != nil {
			fatal(err)
		}
	}
	for _, r := range stats.Failures {
		fmt.Printf("FAIL {%s}\n", r.Schedule)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("  reproduce: crashsweep -engine %q -domain %s -seed %d -ops %d -crash-at %d -fault %s\n",
			r.Schedule.Engine, strings.ToLower(r.Schedule.Domain.String()), r.Schedule.WorkloadSeed,
			r.Schedule.NumOps, r.Schedule.CrashAt, r.Schedule.Fault)
	}
	if len(stats.Failures) > 0 {
		os.Exit(1)
	}
}

// writeSweepReport emits the sweep's outcome in the shared report schema: one
// run whose metrics carry schedule/failure counts plus each configuration's
// crash-point-space size, and whose events list one entry per failure with
// its full reproduction tuple.
func writeSweepReport(path, engines string, stats *faultinject.SweepStats) error {
	snap := &obs.Snapshot{Metrics: []obs.Metric{
		{Name: "sweep_schedules", Kind: obs.KindCounter, Int: int64(stats.Runs)},
		{Name: "sweep_failures", Kind: obs.KindCounter, Int: int64(len(stats.Failures))},
	}}
	keys := make([]string, 0, len(stats.EventTotals))
	for k := range stats.EventTotals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		snap.Metrics = append(snap.Metrics, obs.Metric{
			Name: "sweep_events_" + k, Kind: obs.KindCounter, Int: stats.EventTotals[k]})
	}
	run := obs.RunReport{Engine: engines, Workload: "crashsweep", Ops: int64(stats.Runs), Metrics: snap}
	for i, f := range stats.Failures {
		run.Events = append(run.Events, obs.Event{
			Seq: uint64(i + 1), Type: "oracle_violation",
			Attrs: map[string]any{
				"schedule":  f.Schedule.String(),
				"violation": f.Violations[0],
			},
		})
	}
	rep := obs.NewReport("crashsweep")
	rep.Runs = append(rep.Runs, run)
	return rep.WriteFile(path)
}

// crossShardSweep runs the sharded router's cross-shard batch sweep: every
// workload mutation is a multi-shard atomic batch through the two-phase
// commit protocol, and the oracle rejects any half-applied group.
func crossShardSweep(shards, batches int, domains, faults string, seed uint64, schedules int, scheduleSeed uint64, parallel int, verbose bool) int {
	doms, err := parseDomains(domains)
	if err != nil {
		fatal(err)
	}
	flts, err := parseFaults(faults)
	if err != nil {
		fatal(err)
	}
	cfg := faultinject.CrossShardSweepConfig{
		Shards:             shards,
		Domains:            doms,
		NumBatches:         batches,
		WorkloadSeed:       seed,
		SchedulesPerConfig: schedules,
		ScheduleSeed:       scheduleSeed,
		Faults:             flts,
		Parallel:           parallel,
	}
	if verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	stats, err := faultinject.SweepCrossShard(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("crashsweep: cross-shard: %d schedules, %d failures\n", stats.Runs, len(stats.Failures))
	for _, r := range stats.Failures {
		fmt.Printf("FAIL {%s}\n", r.Schedule)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if len(stats.Failures) > 0 {
		return 1
	}
	return 0
}

func replay(engine, domain string, seed uint64, ops int, crashAt int64, fault, tracePath string) int {
	if engine == "" || domain == "" {
		fatal(fmt.Errorf("replay mode needs -engine and -domain"))
	}
	spec, ok := faultinject.FindEngine(engine)
	if !ok {
		fatal(fmt.Errorf("unknown engine %q", engine))
	}
	doms, err := parseDomains(domain)
	if err != nil {
		fatal(err)
	}
	flts, err := parseFaults(fault)
	if err != nil {
		fatal(err)
	}
	wl := faultinject.NewWorkload(seed, ops)
	var tr *obs.Trace
	if tracePath != "" {
		tr = obs.NewTrace(obs.DefaultTraceCap)
	}
	r := faultinject.RunScheduleTraced(spec, doms[0], wl, crashAt, flts[0], tr)
	if tr != nil {
		out := os.Stdout
		if tracePath != "-" {
			f, err := os.Create(tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := tr.WriteJSONL(out); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("schedule {%s}: frozen=%v inflight=%d events=%d streamhash=%#x\n",
		r.Schedule, r.Frozen, r.Inflight, r.Events, r.StreamHash)
	if r.RecoveryRefused != nil {
		fmt.Printf("recovery refused (acceptable under fault=flip): %v\n", r.RecoveryRefused)
	}
	if !r.Failed() {
		fmt.Println("PASS")
		return 0
	}
	for _, v := range r.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}
	return 1
}

func parseEngines(list string) ([]faultinject.EngineSpec, error) {
	if list == "all" {
		return faultinject.AllEngines(), nil
	}
	var specs []faultinject.EngineSpec
	for _, name := range strings.Split(list, ",") {
		spec, ok := faultinject.FindEngine(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown engine %q", name)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseDomains(list string) ([]cache.Domain, error) {
	var doms []cache.Domain
	for _, name := range strings.Split(list, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "adr":
			doms = append(doms, cache.ADR)
		case "eadr":
			doms = append(doms, cache.EADR)
		default:
			return nil, fmt.Errorf("unknown domain %q (want adr or eadr)", name)
		}
	}
	return doms, nil
}

func parseFaults(list string) ([]faultinject.Fault, error) {
	var flts []faultinject.Fault
	for _, name := range strings.Split(list, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "none":
			flts = append(flts, faultinject.FaultNone)
		case "torn":
			flts = append(flts, faultinject.FaultTorn)
		case "flip":
			flts = append(flts, faultinject.FaultFlip)
		default:
			return nil, fmt.Errorf("unknown fault %q (want none, torn, or flip)", name)
		}
	}
	return flts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsweep:", err)
	os.Exit(1)
}
