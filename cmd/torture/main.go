// Command torture drives the sharded engine into sustained overload on a
// degraded platform — PMem latency multiplied, the flush path throttled — and
// holds the write-path flow control to its protection oracle:
//
//   - bounded memory: flush backlog plus L0 bytes never exceed the cap while
//     flow control is on;
//   - bounded waits: no acknowledged write's latency exceeds its deadline
//     plus the commit envelope (stalled writes fail fast with ErrStalled
//     instead of waiting);
//   - bounded tails: the flow-controlled engine's p99.9 write latency stays
//     within the envelope where the no-flow-control baseline diverges;
//   - observability: the run's obs report passes Verify (per-op layer
//     attribution stays consistent even for delayed and rejected writes);
//   - crash-mid-stall: a power failure while the engine is throttled
//     recovers to a clean OK state with every acknowledged write intact
//     (eADR) and every rejected write absent.
//
// The comparison run and the oracle verdict are written as JSON
// (cachekv.bench_overload/v1), by default to BENCH_overload.json.
//
// Usage:
//
//	torture [-smoke] [-out BENCH_overload.json]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"cachekv/internal/bench"
	"cachekv/internal/core"
	"cachekv/internal/faultinject"
	"cachekv/internal/histogram"
	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
	"cachekv/internal/kvstore"
	"cachekv/internal/obs"
)

type config struct {
	Shards       int    `json:"shards"`
	Threads      int    `json:"threads"`
	Records      int64  `json:"records"`
	Ops          int64  `json:"ops"`
	ValueSize    int    `json:"value_size"`
	DeadlineNs   int64  `json:"deadline_ns"`
	EnvelopeNs   int64  `json:"envelope_ns"`
	SlowMult     int    `json:"slow_mult"`
	FlushPauseNs int64  `json:"flush_pause_ns"`
	MemCapBytes  uint64 `json:"mem_cap_bytes"`
	// CompactWorkers > 0 runs the overload under the background compaction
	// scheduler instead of inline spill-thread compaction.
	CompactWorkers int     `json:"compact_workers"`
	Divergence     float64 `json:"divergence"`
	Seed           uint64  `json:"seed"`
}

type latSummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ns"`
	P99   float64 `json:"p99_ns"`
	P999  float64 `json:"p999_ns"`
	Max   int64   `json:"max_ns"`
}

func summarize(h *histogram.H) latSummary {
	return latSummary{
		Count: h.Count(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

type legReport struct {
	Name             string         `json:"name"`
	FlowControl      bool           `json:"flow_control"`
	AckedWrites      int64          `json:"acked_writes"`
	StalledWrites    int64          `json:"stalled_writes"`
	Reads            int64          `json:"reads"`
	WriteLatency     latSummary     `json:"write_latency"`
	ReadLatency      latSummary     `json:"read_latency"`
	DeadlineOverruns int64          `json:"deadline_overruns"`
	PeakFootprint    uint64         `json:"peak_footprint_bytes"`
	ElapsedVNs       int64          `json:"elapsed_v_ns"`
	KopsPerSec       float64        `json:"kops_per_sec"`
	Flow             core.FlowStats `json:"flow"`
	VerifyViolations []string       `json:"verify_violations"`
	Run              obs.RunReport  `json:"run"`
}

type crashReport struct {
	EnteredStall bool     `json:"entered_stall"`
	StateAtCrash string   `json:"state_at_crash"`
	AckedKeys    int      `json:"acked_keys"`
	RejectedKeys int      `json:"rejected_keys"`
	Violations   []string `json:"violations"`
}

type report struct {
	Schema     string       `json:"schema"`
	Tool       string       `json:"tool"`
	Config     config       `json:"config"`
	Legs       []legReport  `json:"legs"`
	Crash      *crashReport `json:"crash,omitempty"`
	Violations []string     `json:"violations"`
	Pass       bool         `json:"pass"`
}

// slowMachine builds the degraded platform: every PMem media cost multiplied,
// each background flush job delayed.
func slowMachine(c config) *hw.Machine {
	cfg := hw.DefaultConfig()
	cfg.PMemBytes = 1 << 30
	cfg.Costs = faultinject.SlowDevice{
		PMemLatencyMult: c.SlowMult,
		FlushPauseNs:    c.FlushPauseNs,
	}.Apply(sim.DefaultCosts())
	m := hw.NewMachine(cfg)
	m.EnableObs()
	return m
}

// engineOptions shapes a store small enough that the scripted op count
// genuinely outruns the throttled flush pipeline.
func engineOptions(disableFlow bool, tr *obs.Trace, compactWorkers int) core.Options {
	o := core.DefaultOptions()
	o.FSBytes = 256 << 20
	o.PoolBytes = 4 << 20
	o.SubMemTableBytes = 256 << 10
	o.ImmZoneBytes = 8 << 20
	o.FlushThreads = 1
	o.DisableFlowControl = disableFlow
	o.CompactionWorkers = compactWorkers
	o.Trace = tr
	return o
}

// defaultMemCap derives the bounded-footprint cap from the engine shape: the
// whole ImmZone and pool may be in flight, plus the L0 debt flow control
// tolerates before Stop (4x the compaction trigger per shard, two files of
// slack each; an L0 file is one flushed sub-MemTable).
func defaultMemCap(shards int) uint64 {
	o := engineOptions(false, nil, 0)
	trigger := o.LSM.L0CompactionTrigger
	if trigger <= 0 {
		trigger = 4
	}
	l0 := uint64(shards) * uint64(4*trigger+2) * o.SubMemTableBytes
	return o.ImmZoneBytes + o.PoolBytes + l0
}

// runLeg executes load + YCSB-A overload against one engine configuration
// and returns its measurements. flowOn selects the protected engine with
// per-write deadlines; otherwise the legacy blocking baseline.
func runLeg(c config, flowOn bool) (legReport, error) {
	leg := legReport{Name: "baseline", FlowControl: flowOn}
	if flowOn {
		leg.Name = "flow"
	}
	m := slowMachine(c)
	tr := obs.NewTrace(obs.DefaultTraceCap)
	th0 := m.NewThread(0)
	db, err := core.OpenSharded(m, core.ShardedOptions{
		Shards: c.Shards,
		Base:   engineOptions(!flowOn, tr, c.CompactWorkers),
	}, th0)
	if err != nil {
		return leg, err
	}
	defer db.Close(th0)

	// Load phase: records inserted without deadlines (no attribution — the
	// report covers the overload phase only).
	var epoch int64
	{
		threads := make([]*hw.Thread, c.Threads)
		for t := range threads {
			threads[t] = m.NewThread(t)
		}
		perThread := c.Records / int64(c.Threads)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var loadErr error
		for t := range threads {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				th := threads[t]
				vals := bench.NewValueGen(c.ValueSize)
				keyBuf := make([]byte, 0, 32)
				start := perThread * int64(t)
				for i := int64(0); i < perThread; i++ {
					op := start + i
					key := bench.LoadKeys{}.Key(keyBuf, op, nil)
					if err := db.Put(th, key, vals.Value(op)); err != nil {
						mu.Lock()
						if loadErr == nil {
							loadErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(t)
		}
		wg.Wait()
		if loadErr != nil {
			return leg, fmt.Errorf("load: %w", loadErr)
		}
		for _, th := range threads {
			if end := th.Clock.Now(); end > epoch {
				epoch = end
			}
		}
	}

	// Overload phase: YCSB-A (50/50 zipfian update/read) with per-write
	// deadlines on the flow leg, legacy blocking writes on the baseline.
	col := obs.NewCollector()
	// Arm slow-op forensics well below the deadline: a delayed (paced) write
	// waits a large fraction of its deadline, so every throttled op leaves a
	// dossier naming the stall it hit. Lookback pulls in the flow-state flip
	// and flush/compaction activity just before the op started.
	col.EnableSlowOps(obs.SlowOpPolicy{
		StaticNs:   c.DeadlineNs / 4,
		LookbackNs: c.DeadlineNs,
	}, tr)
	col.SetSlowOpContext(func() string { return db.FlowState().String() })
	zipf := bench.NewZipfian(c.Records)
	deadline := c.DeadlineNs
	if !flowOn {
		deadline = 0
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		runErr   error
		maxEnd   int64
		writeLat = histogram.New()
		readLat  = histogram.New()
		acked    int64
		stalled  int64
		reads    int64
		overruns int64
		peak     uint64
		thVNs    int64
	)
	threads := make([]*hw.Thread, c.Threads)
	for t := range threads {
		threads[t] = m.NewThread(t)
		threads[t].Clock.AdvanceTo(epoch)
	}
	perThread := c.Ops / int64(c.Threads)
	for t := range threads {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			th := threads[t]
			rng := sim.NewRNG(c.Seed + uint64(t)*0x9E3779B9)
			vals := bench.NewValueGen(c.ValueSize)
			keyBuf := make([]byte, 0, 32)
			wl, rl := histogram.New(), histogram.New()
			var lAcked, lStalled, lReads, lOver int64
			var lPeak uint64
			for i := int64(0); i < perThread; i++ {
				key := zipf.Key(keyBuf, perThread*int64(t)+i, rng)
				isPut := rng.Float64() < 0.5
				op := obs.OpGet
				if isPut {
					op = obs.OpPut
				}
				sp := col.StartOp(th, op)
				th.InPhase(hw.PhaseClient, func() {
					th.Clock.Advance(m.Costs.ClientOp)
				})
				opStart := th.Clock.Now()
				if isPut {
					err := db.PutWithDeadline(th, key, vals.Value(i), deadline)
					lat := th.Clock.Now() - opStart
					switch {
					case err == nil:
						lAcked++
						wl.Record(lat)
						if deadline > 0 && lat > deadline+c.EnvelopeNs {
							lOver++
						}
					case errors.Is(err, core.ErrStalled):
						lStalled++
					default:
						mu.Lock()
						if runErr == nil {
							runErr = err
						}
						mu.Unlock()
						sp.End()
						return
					}
				} else {
					_, err := db.Get(th, key)
					if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
						mu.Lock()
						if runErr == nil {
							runErr = err
						}
						mu.Unlock()
						sp.End()
						return
					}
					lReads++
					rl.Record(th.Clock.Now() - opStart)
				}
				sp.End()
				if i%32 == 0 {
					_, l0b, backlog := db.FlowSignals()
					if fp := backlog + uint64(l0b); fp > lPeak {
						lPeak = fp
					}
				}
			}
			mu.Lock()
			writeLat.Merge(wl)
			readLat.Merge(rl)
			acked += lAcked
			stalled += lStalled
			reads += lReads
			overruns += lOver
			if lPeak > peak {
				peak = lPeak
			}
			if end := th.Clock.Now(); end > maxEnd {
				maxEnd = end
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	if runErr != nil {
		return leg, fmt.Errorf("overload phase: %w", runErr)
	}
	for _, th := range threads {
		thVNs += th.Clock.Now() - epoch
	}

	leg.AckedWrites = acked
	leg.StalledWrites = stalled
	leg.Reads = reads
	leg.WriteLatency = summarize(writeLat)
	leg.ReadLatency = summarize(readLat)
	leg.DeadlineOverruns = overruns
	leg.PeakFootprint = peak
	leg.ElapsedVNs = maxEnd - epoch
	if leg.ElapsedVNs > 0 {
		leg.KopsPerSec = float64(c.Ops) / float64(leg.ElapsedVNs) * 1e6
	}
	leg.Flow = db.FlowStats()

	leg.Run = obs.RunReport{
		Engine:     db.Name(),
		Workload:   "overload-ycsb-a",
		Ops:        c.Ops,
		Threads:    c.Threads,
		ElapsedVNs: leg.ElapsedVNs,
		ThreadVNs:  thVNs,
		KopsPerSec: leg.KopsPerSec,
		OpStats:    col.OpStats(),
	}
	if t := m.ObsTally(); t != nil {
		leg.Run.Layers = obs.LayersFromTally(t.Snapshot())
	}
	leg.Run.Metrics = bench.BuildRegistry(m, db, tr).Gather()
	leg.Run.SlowOps = col.SlowOps()
	leg.Run.SlowOpsDropped = col.SlowOpsDropped()
	leg.VerifyViolations = leg.Run.Verify()
	return leg, nil
}

// causeEvents are the trace event types that name the subsystem responsible
// for a stall: flow-control admission decisions, flush-pipeline pressure, and
// compaction jobs.
var causeEvents = map[string]bool{
	"write_stall": true, "write_delay": true, "write_stop_wait": true,
	"flow_state": true, "flush_stall": true, "flush_start": true, "flush_end": true,
	"spill_start": true, "spill_end": true, "memtable_seal": true,
	"compact_start": true, "compact_end": true, "lsm_compaction": true,
	"skiplist_compaction": true,
}

// dossierNamesCause reports whether at least one dossier's event window
// contains an event identifying the flow-control stall or compaction/flush job
// the slow op collided with — the point of the forensics.
func dossierNamesCause(ds []obs.Dossier) bool {
	for _, d := range ds {
		for _, ev := range d.Events {
			if causeEvents[ev.Type] {
				return true
			}
		}
	}
	return false
}

// runCrashLeg overloads a fresh protected engine, crashes the machine while
// the flow controller is throttling, recovers, and checks that acknowledged
// writes survived with their last acked values, rejected writes stayed
// absent, and the engine came back admitting in the OK state.
//
// The leg runs c.Threads concurrent writers over disjoint key spaces (a
// single synchronous writer cannot outrun the per-shard flush pipelines, so
// it would wedge on the pool before the flow signals ever rise). Every writer
// stops before the plug is pulled, so each key's last acked value is exact.
func runCrashLeg(c config) (*crashReport, error) {
	cr := &crashReport{StateAtCrash: core.FlowOK.String()}
	m := slowMachine(c)
	th := m.NewThread(0)
	opts := engineOptions(false, nil, c.CompactWorkers)
	open := func(t *hw.Thread) (*core.Sharded, error) {
		return core.OpenSharded(m, core.ShardedOptions{Shards: c.Shards, Base: opts}, t)
	}
	db, err := open(th)
	if err != nil {
		return cr, err
	}

	var (
		mu        sync.Mutex
		ackedVal  = make(map[string]string)
		rejected  = make(map[string]bool)
		stallSeen atomic.Bool
		stallGen  int32
		writeErr  error
	)
	// Prime volume is sized from the engine shape, not the workload flags:
	// enough blocking writes to fill the pool, the ImmZone, and the L0 debt
	// window, so the deadline phase starts against an already-behind
	// pipeline even on shrunk smoke runs.
	primeBytes := int64(defaultMemCap(c.Shards))
	universe := primeBytes/int64(c.Threads)/int64(4*c.ValueSize) + 1
	perThread := universe + 8192
	var wg sync.WaitGroup
	for t := 0; t < c.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			wth := m.NewThread(t)
			vals := bench.NewValueGen(4 * c.ValueSize)
			acked := make(map[string]string)
			rej := make(map[string]bool)
			deeper := int64(-1)
			for i := int64(0); i < perThread; i++ {
				// The first universe ops prime the flush pipeline with
				// blocking writes (the crash leg's load phase); after that
				// every op writes a FRESH key under the deadline, so a
				// rejected key is one the store never acked in any form and
				// must be fully absent after recovery.
				key := fmt.Sprintf("ck%d.%08d", t, i)
				v := vals.Value(i)
				deadline := c.DeadlineNs
				if i < universe && !stallSeen.Load() {
					// Prime writes block — until the first stall sighting,
					// after which every write carries the deadline so the
					// burst below really is doomed under Stop.
					deadline = 0
				}
				err := db.PutWithDeadline(wth, []byte(key), v, deadline)
				switch {
				case err == nil:
					acked[key] = string(v)
					delete(rej, key)
				case errors.Is(err, core.ErrStalled):
					if _, ok := acked[key]; !ok {
						rej[key] = true
					}
				default:
					mu.Lock()
					if writeErr == nil {
						writeErr = fmt.Errorf("crash leg write %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				if st := db.FlowState(); st != core.FlowOK {
					stallSeen.Store(true)
					// Record the deepest state the run reached, and keep
					// pushing after the first Slowdown so the crash has a
					// chance to land in Stop with rejected writes behind it.
					for {
						prev := atomic.LoadInt32(&stallGen)
						if int32(st) <= prev || atomic.CompareAndSwapInt32(&stallGen, prev, int32(st)) {
							break
						}
					}
					if deeper < 0 {
						deeper = i + 2048
					}
					// Once Stop is reached, a short burst of doomed writes
					// (rejected, never acked) gives the recovery oracle real
					// rejected keys to prove absent — then pull the plug.
					if st == core.FlowStop && deeper > i+256 {
						deeper = i + 256
					}
				}
				if deeper >= 0 && i >= deeper {
					break
				}
			}
			mu.Lock()
			for k, v := range acked {
				ackedVal[k] = v
			}
			for k := range rej {
				rejected[k] = true
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	if writeErr != nil {
		return cr, writeErr
	}
	cr.EnteredStall = stallSeen.Load()
	if cr.EnteredStall {
		cr.StateAtCrash = core.FlowState(atomic.LoadInt32(&stallGen)).String()
	}
	cr.AckedKeys = len(ackedVal)
	cr.RejectedKeys = len(rejected)
	if !cr.EnteredStall {
		cr.Violations = append(cr.Violations,
			"crash leg never entered Slowdown/Stop: overload too weak to test crash-mid-stall")
	}

	db.Halt()
	m.Crash()
	_ = db.Close(th)
	m.Recover()
	th2 := m.NewThread(0)
	db2, err := open(th2)
	if err != nil {
		cr.Violations = append(cr.Violations, fmt.Sprintf("recovery open failed: %v", err))
		return cr, nil
	}
	defer db2.Close(th2)

	for key, want := range ackedVal {
		v, err := db2.Get(th2, []byte(key))
		if err != nil {
			cr.Violations = append(cr.Violations, fmt.Sprintf(
				"acked key %q lost across crash-mid-stall: %v", key, err))
			continue
		}
		if string(v) != want {
			cr.Violations = append(cr.Violations, fmt.Sprintf(
				"acked key %q recovered wrong value (%d bytes, want %d)", key, len(v), len(want)))
		}
	}
	for key := range rejected {
		if _, err := db2.Get(th2, []byte(key)); err == nil {
			cr.Violations = append(cr.Violations, fmt.Sprintf(
				"rejected key %q surfaced after recovery", key))
		}
	}
	// The recovered controller may honestly start in Slowdown or Stop — the
	// L0 debt behind the crash survived with the data. Draining the pipeline
	// must walk it back to OK; staying throttled after the debt is gone (or
	// refusing a healthy write afterwards) is the violation.
	for r := 0; r < 32 && db2.FlowState() != core.FlowOK; r++ {
		if err := db2.FlushAll(th2); err != nil {
			cr.Violations = append(cr.Violations, fmt.Sprintf(
				"drain after recovery failed: %v", err))
			return cr, nil
		}
	}
	if st := db2.FlowState(); st != core.FlowOK {
		cr.Violations = append(cr.Violations, fmt.Sprintf(
			"recovered engine stuck in flow state %v after drain", st))
	}
	if err := db2.PutWithDeadline(th2, []byte("post-crash"), []byte("ok"), c.DeadlineNs); err != nil {
		cr.Violations = append(cr.Violations, fmt.Sprintf(
			"recovered engine rejected a healthy write: %v", err))
	}
	return cr, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	shards := flag.Int("shards", 4, "engine shards")
	threads := flag.Int("threads", 4, "writer threads")
	records := flag.Int64("records", 20000, "records loaded before the overload phase")
	ops := flag.Int64("ops", 80000, "overload-phase operations")
	valueSize := flag.Int("value", 256, "value size in bytes")
	deadlineUs := flag.Int64("deadline-us", 500, "per-write stall deadline (virtual µs)")
	envelopeUs := flag.Int64("envelope-us", 0, "allowed commit latency beyond the deadline (virtual µs; 0 = 4x deadline)")
	slowMult := flag.Int("slow", 8, "PMem latency multiplier of the degraded device")
	flushPauseUs := flag.Int64("flush-pause-us", 2000, "extra pause per background flush job (virtual µs)")
	memCapMB := flag.Int64("mem-cap-mb", 0, "bounded-footprint cap (MiB; 0 = derive from engine shape)")
	divergence := flag.Float64("divergence", 2, "required baseline/flow p99.9 ratio")
	baseline := flag.Bool("baseline", true, "also run the no-flow-control baseline leg")
	crash := flag.Bool("crash", true, "run the crash-mid-stall leg")
	compactWorkers := flag.Int("compaction-workers", 0, "background compaction workers per shard (0 = legacy inline compaction)")
	smoke := flag.Bool("smoke", false, "shrink the run for CI")
	out := flag.String("out", "BENCH_overload.json", "report path")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	c := config{
		Shards:         *shards,
		Threads:        *threads,
		Records:        *records,
		Ops:            *ops,
		ValueSize:      *valueSize,
		DeadlineNs:     *deadlineUs * 1000,
		EnvelopeNs:     *envelopeUs * 1000,
		SlowMult:       *slowMult,
		FlushPauseNs:   *flushPauseUs * 1000,
		CompactWorkers: *compactWorkers,
		Divergence:     *divergence,
		Seed:           *seed,
	}
	if *smoke {
		c.Records = 4000
		c.Ops = 16000
		c.Threads = 2
	}
	if c.EnvelopeNs <= 0 {
		c.EnvelopeNs = 4 * c.DeadlineNs
	}
	if *memCapMB > 0 {
		c.MemCapBytes = uint64(*memCapMB) << 20
	} else {
		c.MemCapBytes = defaultMemCap(c.Shards)
	}

	rep := report{Schema: "cachekv.bench_overload/v1", Tool: "torture", Config: c}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "torture: %v\n", err)
		os.Exit(1)
	}

	flow, err := runLeg(c, true)
	if err != nil {
		fail(err)
	}
	rep.Legs = append(rep.Legs, flow)
	fmt.Printf("flow:     acked=%d stalled=%d delayed=%d p99.9=%.0fns max=%dns peak=%dB dossiers=%d\n",
		flow.AckedWrites, flow.StalledWrites, flow.Flow.DelayedWrites,
		flow.WriteLatency.P999, flow.WriteLatency.Max, flow.PeakFootprint,
		len(flow.Run.SlowOps))

	var base legReport
	if *baseline {
		base, err = runLeg(c, false)
		if err != nil {
			fail(err)
		}
		rep.Legs = append(rep.Legs, base)
		fmt.Printf("baseline: acked=%d p99.9=%.0fns max=%dns peak=%dB\n",
			base.AckedWrites, base.WriteLatency.P999, base.WriteLatency.Max, base.PeakFootprint)
	}

	// The protection oracle.
	if flow.PeakFootprint > c.MemCapBytes {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"flow leg footprint unbounded: peak %d B exceeds cap %d B", flow.PeakFootprint, c.MemCapBytes))
	}
	if flow.DeadlineOverruns > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"%d acked writes exceeded deadline+envelope (%d ns)", flow.DeadlineOverruns, c.DeadlineNs+c.EnvelopeNs))
	}
	if p := float64(c.DeadlineNs + c.EnvelopeNs); flow.WriteLatency.P999 > p {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"flow leg write p99.9 %.0f ns above the %g ns envelope", flow.WriteLatency.P999, p))
	}
	if flow.Flow.DelayedWrites+flow.Flow.RejectedWrites == 0 {
		rep.Violations = append(rep.Violations,
			"overload never engaged flow control (no delayed or rejected writes): raise -slow or lower the zones")
	}
	if len(flow.VerifyViolations) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"flow leg obs report failed Verify: %s", flow.VerifyViolations[0]))
	}
	if len(flow.Run.SlowOps) == 0 {
		rep.Violations = append(rep.Violations,
			"overload produced no slow-op dossiers: capture threshold too high or throttling never engaged")
	} else if !dossierNamesCause(flow.Run.SlowOps) {
		rep.Violations = append(rep.Violations,
			"no slow-op dossier's event window names the flow-control stall or compaction job behind it")
	}
	if *baseline && !*smoke {
		// Divergence needs a long enough run for the baseline's unbounded
		// queueing to reach p99.9; the shortened smoke run only exercises
		// the harness and the flow leg's own bounds.
		if ratio := base.WriteLatency.P999 / flow.WriteLatency.P999; ratio < c.Divergence {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"baseline p99.9 only %.2fx the flow leg's (want >= %.1fx): overload too weak to show divergence",
				ratio, c.Divergence))
		}
	}
	if *crash {
		cr, err := runCrashLeg(c)
		if err != nil {
			fail(err)
		}
		rep.Crash = cr
		rep.Violations = append(rep.Violations, cr.Violations...)
		fmt.Printf("crash:    stall=%v state=%s acked=%d rejected=%d violations=%d\n",
			cr.EnteredStall, cr.StateAtCrash, cr.AckedKeys, cr.RejectedKeys, len(cr.Violations))
	}

	rep.Pass = len(rep.Violations) == 0
	if err := writeJSON(*out, &rep); err != nil {
		fail(err)
	}
	if !rep.Pass {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "torture: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("torture: PASS (%s)\n", *out)
}
